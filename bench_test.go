// Benchmarks, one per table/figure of the paper plus the extension
// experiments (DESIGN.md §4). Each benchmark regenerates its artifact end
// to end, so `go test -bench=.` both measures the harness and proves every
// experiment still runs. Shape assertions (who wins, by what factor) live
// in the package test suites; the benchmarks only re-derive the artifacts.
package mfdl_test

import (
	"context"
	"fmt"
	"path/filepath"
	"runtime"
	"testing"

	"mfdl/internal/adapt"
	"mfdl/internal/experiments"
	"mfdl/internal/runner"
	"mfdl/internal/scheme"
	"mfdl/internal/swarm"
)

// BenchmarkFig2 regenerates Figure 2: average online time per file vs file
// correlation, MTCD vs MTSD (experiment E2).
func BenchmarkFig2(b *testing.B) {
	grid := experiments.PGrid(0, 1, 20)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig2(experiments.PaperConfig, grid); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3 regenerates Figure 3: per-class times at p = 0.1 and 1.0
// (experiment E3).
func BenchmarkFig3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, p := range []float64{0.1, 1.0} {
			if _, err := experiments.Fig3(experiments.PaperConfig, p); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFig4A regenerates Figure 4(a): the CMFSD p × ρ surface
// (experiment E4). The grid is coarser than the CLI's to keep -bench runs
// minutes-scale; each cell is a full RK4 relaxation of the 65-state Eq. (5).
func BenchmarkFig4A(b *testing.B) {
	pGrid := []float64{0.1, 0.5, 0.9}
	rhoGrid := []float64{0, 0.5, 1}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig4A(context.Background(), experiments.PaperConfig, pGrid, rhoGrid); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepParallel measures the sweep engine on a CMFSD p × ρ grid
// (the Figure 4(a) workload) at several worker counts. The workers=1 case
// is the serial baseline; on an N-core machine the parallel cases should
// approach N× (every cell is an independent 65-state RK4 relaxation). The
// grid result is asserted byte-identical across worker counts in
// cmd/sweep's and internal/experiments' test suites; here we only record
// the time.
func BenchmarkSweepParallel(b *testing.B) {
	grid, err := runner.NewGrid(
		runner.Dim{Name: "p", Values: runner.Linspace(0.1, 1, 5)},
		runner.Dim{Name: "rho", Values: runner.Linspace(0, 1, 5)},
	)
	if err != nil {
		b.Fatal(err)
	}
	counts := []int{1, 4}
	if n := runtime.GOMAXPROCS(0); n > 4 {
		counts = append(counts, n)
	}
	for _, workers := range counts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := experiments.Sweep(context.Background(), experiments.SweepSpec{
					Config: experiments.PaperConfig, P: 0.9,
					Scheme: scheme.CMFSD, Grid: grid, Workers: workers,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSweepDiskCache measures the persistent solve cache on the
// Figure 4(a) workload: "cold" solves every cell and persists it into a
// fresh directory; "warm" replays the same grid against an already
// populated directory, so every cell is a disk decode instead of an RK4
// relaxation. The warm case should be orders of magnitude faster; the
// test suites assert the outputs are byte-identical.
func BenchmarkSweepDiskCache(b *testing.B) {
	grid, err := runner.NewGrid(
		runner.Dim{Name: "p", Values: runner.Linspace(0.1, 1, 5)},
		runner.Dim{Name: "rho", Values: runner.Linspace(0, 1, 5)},
	)
	if err != nil {
		b.Fatal(err)
	}
	spec := experiments.SweepSpec{
		Config: experiments.PaperConfig, P: 0.9, Scheme: scheme.CMFSD, Grid: grid,
	}
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			spec.CacheDir = filepath.Join(b.TempDir(), fmt.Sprintf("c%d", i))
			if _, err := experiments.Sweep(context.Background(), spec); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		spec.CacheDir = b.TempDir()
		if _, err := experiments.Sweep(context.Background(), spec); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := experiments.Sweep(context.Background(), spec)
			if err != nil {
				b.Fatal(err)
			}
			if res.Cache.Solves() != 0 {
				b.Fatalf("warm run re-solved %d cells", res.Cache.Solves())
			}
		}
	})
}

// BenchmarkFig4B regenerates Figure 4(b): per-class times at p = 0.9,
// CMFSD ρ ∈ {0.1, 0.9} vs MFCD (experiment E5).
func BenchmarkFig4B(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig4BC(experiments.PaperConfig, 0.9, 0.1, 0.9); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4C regenerates Figure 4(c): the same panel at p = 0.1
// (experiment E6).
func BenchmarkFig4C(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig4BC(experiments.PaperConfig, 0.1, 0.1, 0.9); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkValidate regenerates the K = 1 degeneracy check against the
// Qiu–Srikant closed form (experiment E7, the paper's model-correctness
// argument).
func BenchmarkValidate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Validate(experiments.PaperConfig); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAdapt regenerates the Adapt-under-cheating sweep (experiment
// E8, the paper's future-work evaluation) on the flow-level simulator.
func BenchmarkAdapt(b *testing.B) {
	set := experiments.DefaultSimSettings
	set.Horizon = 1500
	set.Warmup = 300
	ac := adapt.Config{
		Lower: -0.05, Upper: 0.05, StepUp: 0.2, StepDown: 0.1,
		Period: 5, InitialRho: 0, Consecutive: 2,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		set.Seed = uint64(i + 1)
		if _, err := experiments.AdaptSweep(context.Background(), set, 0.9, ac, []float64{0, 0.5, 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimValidate regenerates the fluid-vs-simulation comparison for
// all four schemes (experiment E9).
func BenchmarkSimValidate(b *testing.B) {
	set := experiments.DefaultSimSettings
	set.Horizon = 1500
	set.Warmup = 300
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		set.Seed = uint64(i + 1)
		if _, err := experiments.SimValidate(context.Background(), set, []float64{0.9}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSwarmCompare regenerates the chunk-level MFCD vs CMFSD
// comparison (mechanism-level replay of Figure 4(a)'s ordering).
func BenchmarkSwarmCompare(b *testing.B) {
	base := swarm.DefaultConfig
	base.Horizon = 800
	base.Warmup = 200
	for i := 0; i < b.N; i++ {
		base.Seed = uint64(i + 1)
		if _, err := experiments.SwarmCompare(context.Background(), base, []float64{0, 1}, 1, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTransient regenerates the flash-crowd transient comparison
// (experiment E13): fluid Eq. (5) trajectory vs one simulated path.
func BenchmarkTransient(b *testing.B) {
	set := experiments.DefaultSimSettings
	set.Horizon = 150
	for i := 0; i < b.N; i++ {
		set.Seed = uint64(i + 1)
		if _, err := experiments.Transient(context.Background(), set, 0.9, 0, 300); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCheatingSweep regenerates the fluid mixed-population cheating
// study (the analytic counterpart of E8).
func BenchmarkCheatingSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.CheatingSweep(experiments.PaperConfig, 0.9, 0,
			[]float64{0, 0.5, 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKScaling regenerates the collaboration-gain-vs-K study (E14).
func BenchmarkKScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.KScaling(experiments.PaperConfig, 0.9,
			[]int{2, 5, 10}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEtaAblation regenerates the η-sensitivity study (experiment
// E10).
func BenchmarkEtaAblation(b *testing.B) {
	etas := []float64{0.25, 0.5, 0.75, 1.0}
	grid := experiments.PGrid(0, 1, 20)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.EtaAblation(context.Background(), experiments.PaperConfig, etas, grid); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStability regenerates the spectral-abscissa table for the fluid
// fixed points (experiment E11).
func BenchmarkStability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.StabilityTable(experiments.PaperConfig); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCrossover regenerates the per-class MTCD/MTSD break-even
// correlations.
func BenchmarkCrossover(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Crossover(experiments.PaperConfig); err != nil {
			b.Fatal(err)
		}
	}
}
