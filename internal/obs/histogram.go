package obs

import (
	"math"
	"sort"
	"time"
)

// LatencyBuckets are the default upper bounds (in seconds) for latency
// histograms: roughly exponential from 100µs to a minute. A steady-state
// solve takes single-digit milliseconds, a replicated simulation cell
// hundreds, and a tracker request microseconds — the range covers all
// three with a few buckets of resolution each.
var LatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// normalizeBounds sorts, dedups and strips non-finite bucket bounds. An
// empty list falls back to LatencyBuckets.
func normalizeBounds(bounds []float64) []float64 {
	out := make([]float64, 0, len(bounds))
	for _, b := range bounds {
		if !math.IsNaN(b) && !math.IsInf(b, 0) {
			out = append(out, b)
		}
	}
	if len(out) == 0 {
		out = append(out, LatencyBuckets...)
	}
	sort.Float64s(out)
	dedup := out[:1]
	for _, b := range out[1:] {
		if b != dedup[len(dedup)-1] {
			dedup = append(dedup, b)
		}
	}
	return dedup
}

// Histogram counts observations into fixed buckets (plus an implicit
// +Inf overflow bucket) and tracks their sum. Observations are atomic;
// snapshots taken concurrently with observations are internally
// consistent enough for monitoring (each bucket count is exact, the
// total is the bucket sum). All methods are nil-safe no-ops on a nil
// receiver.
type Histogram struct {
	bounds []float64 // sorted upper bounds, finite
	counts []counterCell
	sum    Gauge
}

// counterCell pads nothing — it exists so the counts slice is addressable
// per bucket without sharing a Counter allocation.
type counterCell struct {
	c Counter
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]counterCell, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].c.Inc()
	h.sum.Add(v)
}

// Since observes the elapsed wall-clock since start, in seconds.
func (h *Histogram) Since(start time.Time) {
	if h != nil {
		h.Observe(time.Since(start).Seconds())
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	var n uint64
	for i := range h.counts {
		n += h.counts[i].c.Value()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.Value()
}

// Bounds returns the bucket upper bounds (shared; do not mutate).
func (h *Histogram) Bounds() []float64 {
	if h == nil {
		return nil
	}
	return h.bounds
}

// BucketCounts returns a snapshot of the per-bucket counts; the last
// element is the +Inf overflow bucket.
func (h *Histogram) BucketCounts() []uint64 {
	if h == nil {
		return nil
	}
	out := make([]uint64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].c.Value()
	}
	return out
}

// Quantile estimates the q-quantile (0 <= q <= 1) from the bucket
// counts by linear interpolation within the containing bucket, the same
// estimate Prometheus' histogram_quantile computes. Values in the +Inf
// bucket clamp to the largest finite bound. Returns NaN for an empty
// histogram or out-of-range q.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return math.NaN()
	}
	return bucketQuantile(h.bounds, h.BucketCounts(), q)
}

// bucketQuantile is the estimator behind Histogram.Quantile, shared with
// snapshot rendering: counts are per-bucket (non-cumulative), the last
// element the +Inf overflow bucket.
func bucketQuantile(bounds []float64, counts []uint64, q float64) float64 {
	if q < 0 || q > 1 || math.IsNaN(q) || len(bounds) == 0 {
		return math.NaN()
	}
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return math.NaN()
	}
	target := q * float64(total)
	var cum float64
	for i, c := range counts {
		prev := cum
		cum += float64(c)
		if cum < target || c == 0 {
			continue
		}
		if i == len(counts)-1 {
			// +Inf bucket: clamp to the largest finite bound.
			return bounds[len(bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = bounds[i-1]
		}
		hi := bounds[i]
		return lo + (hi-lo)*(target-prev)/float64(c)
	}
	return bounds[len(bounds)-1]
}
