package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

func buildRegistry() *Registry {
	r := New()
	c := r.Counter("requests_total", L("endpoint", "announce"))
	c.Add(3)
	r.Counter("requests_total", L("endpoint", "scrape")).Inc()
	r.Gauge("workers").Set(4)
	h := r.Histogram("request_seconds", []float64{0.01, 0.1, 1}, L("endpoint", "announce"))
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(0.5)
	return r
}

func TestWritePrometheusFormat(t *testing.T) {
	var sb strings.Builder
	if err := buildRegistry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE requests_total counter\n",
		`requests_total{endpoint="announce"} 3` + "\n",
		`requests_total{endpoint="scrape"} 1` + "\n",
		"# TYPE workers gauge\n",
		"workers 4\n",
		"# TYPE request_seconds histogram\n",
		`request_seconds_bucket{endpoint="announce",le="0.01"} 1` + "\n",
		`request_seconds_bucket{endpoint="announce",le="0.1"} 2` + "\n",
		`request_seconds_bucket{endpoint="announce",le="1"} 3` + "\n",
		`request_seconds_bucket{endpoint="announce",le="+Inf"} 3` + "\n",
		`request_seconds_sum{endpoint="announce"} 0.555` + "\n",
		`request_seconds_count{endpoint="announce"} 3` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Every non-comment line is "series value".
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if parts := strings.Fields(line); len(parts) != 2 {
			t.Fatalf("malformed line %q", line)
		}
	}
}

func TestPrometheusLabelEscaping(t *testing.T) {
	r := New()
	r.Counter("m_total", L("cell", `p="0.5" rho\1`)).Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `m_total{cell="p=\"0.5\" rho\\1"} 1`) {
		t.Fatalf("escaping wrong:\n%s", sb.String())
	}
}

func TestWriteJSONSnapshot(t *testing.T) {
	var sb strings.Builder
	if err := buildRegistry().WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Counters   map[string]uint64        `json:"counters"`
		Gauges     map[string]float64       `json:"gauges"`
		Histograms map[string]jsonHistogram `json:"histograms"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &snap); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v\n%s", err, sb.String())
	}
	if snap.Counters[`requests_total{endpoint="announce"}`] != 3 {
		t.Fatalf("counters: %v", snap.Counters)
	}
	if snap.Gauges["workers"] != 4 {
		t.Fatalf("gauges: %v", snap.Gauges)
	}
	h, ok := snap.Histograms[`request_seconds{endpoint="announce"}`]
	if !ok || h.Count != 3 {
		t.Fatalf("histograms: %v", snap.Histograms)
	}
	if h.Quantiles["p50"] <= 0.01 || h.Quantiles["p50"] > 0.1 {
		t.Fatalf("p50 = %g, want within (0.01, 0.1]", h.Quantiles["p50"])
	}
	if len(h.Buckets) != 4 || h.Buckets[3].LE != "+Inf" {
		t.Fatalf("buckets: %+v", h.Buckets)
	}
}

func TestHTTPHandler(t *testing.T) {
	srv := httptest.NewServer(HTTPHandler(buildRegistry()))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != ContentType {
		t.Fatalf("content type = %q, want %q", ct, ContentType)
	}
	buf := make([]byte, 1<<16)
	n, _ := resp.Body.Read(buf)
	if !strings.Contains(string(buf[:n]), "requests_total") {
		t.Fatalf("body:\n%s", buf[:n])
	}
}
