package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
)

// SnapshotSchemaVersion is bumped whenever the snapshot wire shape
// changes incompatibly. DecodeSnapshot and Merge reject other versions,
// so a fleet of mixed builds fails loudly instead of merging garbage.
const SnapshotSchemaVersion = 1

// Snapshot is a registry frozen to values: every family and series with
// its counts, gauge values and histogram buckets, detached from the live
// atomics. It is the unit of fleet telemetry — a worker snapshots its
// registry, ships the canonical JSON encoding, and the coordinator
// merges any number of such snapshots into one fleet view.
//
// Float values travel as strings in Prometheus number format
// (strconv 'g'/-1 shortest round-trip, "+Inf"/"-Inf"/"NaN"), so a
// decoded snapshot is bit-exact and the codec never depends on
// encoding/json's float behavior.
//
// A snapshot taken by Registry.Snapshot keeps the registry's creation
// order (rendering it writes the same bytes the registry would);
// EncodeSnapshot and Merge normalize to sorted order, which is what
// makes the canonical bytes — and any merge result — independent of the
// order series were created or merged in.
type Snapshot struct {
	Schema   int              `json:"schema"`
	Families []FamilySnapshot `json:"families,omitempty"`
}

// FamilySnapshot is one metric name: its kind, bucket bounds (histograms
// only) and every label variant.
type FamilySnapshot struct {
	Name   string           `json:"name"`
	Kind   string           `json:"kind"`
	Bounds []string         `json:"bounds,omitempty"`
	Series []SeriesSnapshot `json:"series,omitempty"`
}

// SeriesSnapshot is one (labels → value) series. Exactly one value group
// is meaningful, matching the family kind: Count for counters, Value for
// gauges, Buckets+Sum for histograms.
//
// Buckets are per-bucket (non-cumulative) counts, the last element being
// the +Inf overflow bucket, so merging is element-wise addition. Sum
// maps a source id to that source's contribution to the histogram sum —
// a local snapshot has the single source "" — and the rendered _sum is
// the parts reduced in sorted-source order, which keeps merged output
// independent of merge order despite float addition being
// non-associative.
type SeriesSnapshot struct {
	Labels  []Label           `json:"labels,omitempty"`
	Count   uint64            `json:"count,omitempty"`
	Value   string            `json:"value,omitempty"`
	Buckets []uint64          `json:"buckets,omitempty"`
	Sum     map[string]string `json:"sum,omitempty"`
}

// sumTotal reduces the per-source sum parts in sorted-source order.
func (se *SeriesSnapshot) sumTotal() float64 {
	keys := make([]string, 0, len(se.Sum))
	for k := range se.Sum {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var total float64
	for _, k := range keys {
		v, _ := strconv.ParseFloat(se.Sum[k], 64)
		total += v
	}
	return total
}

// boundsFloats parses the family's bucket bounds.
func (f *FamilySnapshot) boundsFloats() []float64 {
	out := make([]float64, len(f.Bounds))
	for i, b := range f.Bounds {
		out[i], _ = strconv.ParseFloat(b, 64)
	}
	return out
}

// Snapshot freezes every family and series to values. The registry lock
// is held only while the structure and atomics are copied — never across
// encoding or network writes. Families and series appear in creation
// order; labels within a series are already sorted. Nil-safe: a nil
// registry yields an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{Schema: SnapshotSchemaVersion}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, name := range r.order {
		f := r.families[name]
		fs := FamilySnapshot{Name: f.name, Kind: f.kind.String()}
		if f.kind == histogramKind {
			fs.Bounds = make([]string, len(f.bounds))
			for i, b := range f.bounds {
				fs.Bounds[i] = fnum(b)
			}
		}
		for _, sig := range f.order {
			inst := f.insts[sig]
			ss := SeriesSnapshot{Labels: append([]Label(nil), inst.labels...)}
			switch f.kind {
			case counterKind:
				ss.Count = inst.c.Value()
			case gaugeKind:
				ss.Value = fnum(inst.g.Value())
			case histogramKind:
				ss.Buckets = inst.h.BucketCounts()
				ss.Sum = map[string]string{"": fnum(inst.h.Sum())}
			}
			fs.Series = append(fs.Series, ss)
		}
		s.Families = append(s.Families, fs)
	}
	return s
}

// kindFromString is the inverse of kind.String.
func kindFromString(s string) (kind, bool) {
	switch s {
	case "counter":
		return counterKind, true
	case "gauge":
		return gaugeKind, true
	case "histogram":
		return histogramKind, true
	}
	return 0, false
}

// normalize sorts the snapshot into canonical order: labels by key
// within each series, series by label signature within each family,
// families by name. Encode and Merge call it so their results do not
// depend on creation or merge order.
func (s *Snapshot) normalize() {
	for fi := range s.Families {
		f := &s.Families[fi]
		for si := range f.Series {
			ls := f.Series[si].Labels
			sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
		}
		sort.Slice(f.Series, func(i, j int) bool {
			return signature(f.Series[i].Labels) < signature(f.Series[j].Labels)
		})
	}
	sort.Slice(s.Families, func(i, j int) bool {
		return s.Families[i].Name < s.Families[j].Name
	})
}

// validate checks structural sanity: schema version, legal names and
// label keys, known kinds, bucket slices matching the bounds, parseable
// float strings, and no duplicate families or series.
func (s *Snapshot) validate() error {
	if s.Schema != SnapshotSchemaVersion {
		return fmt.Errorf("obs: snapshot schema %d, this build speaks %d", s.Schema, SnapshotSchemaVersion)
	}
	seenFamily := map[string]bool{}
	for fi := range s.Families {
		f := &s.Families[fi]
		if !validName(f.Name) {
			return fmt.Errorf("obs: snapshot has invalid metric name %q", f.Name)
		}
		if seenFamily[f.Name] {
			return fmt.Errorf("obs: snapshot has duplicate family %q", f.Name)
		}
		seenFamily[f.Name] = true
		k, ok := kindFromString(f.Kind)
		if !ok {
			return fmt.Errorf("obs: snapshot family %q has unknown kind %q", f.Name, f.Kind)
		}
		if (k == histogramKind) != (len(f.Bounds) > 0) {
			return fmt.Errorf("obs: snapshot family %q: bounds and kind %q disagree", f.Name, f.Kind)
		}
		for _, b := range f.Bounds {
			if _, err := strconv.ParseFloat(b, 64); err != nil {
				return fmt.Errorf("obs: snapshot family %q: bad bound %q", f.Name, b)
			}
		}
		seenSeries := map[string]bool{}
		for si := range f.Series {
			se := &f.Series[si]
			for _, l := range se.Labels {
				if !validLabelKey(l.Key) {
					return fmt.Errorf("obs: snapshot family %q has invalid label key %q", f.Name, l.Key)
				}
			}
			sig := signature(sortedLabels(f.Name, se.Labels))
			if seenSeries[sig] {
				return fmt.Errorf("obs: snapshot family %q has duplicate series {%s}", f.Name, sig)
			}
			seenSeries[sig] = true
			switch k {
			case gaugeKind:
				if _, err := strconv.ParseFloat(se.Value, 64); err != nil {
					return fmt.Errorf("obs: snapshot gauge %q{%s}: bad value %q", f.Name, sig, se.Value)
				}
			case histogramKind:
				if len(se.Buckets) != len(f.Bounds)+1 {
					return fmt.Errorf("obs: snapshot histogram %q{%s}: %d buckets for %d bounds",
						f.Name, sig, len(se.Buckets), len(f.Bounds))
				}
				for src, part := range se.Sum {
					if _, err := strconv.ParseFloat(part, 64); err != nil {
						return fmt.Errorf("obs: snapshot histogram %q{%s}: bad sum part %q=%q",
							f.Name, sig, src, part)
					}
				}
			}
		}
	}
	return nil
}

// EncodeSnapshot renders the canonical JSON encoding: schema-versioned,
// families sorted by name, series by label signature, float values as
// shortest round-trip strings. Two snapshots with the same values encode
// to identical bytes regardless of creation or merge order.
func EncodeSnapshot(s Snapshot) ([]byte, error) {
	c := cloneSnapshot(s)
	c.normalize()
	if err := c.validate(); err != nil {
		return nil, err
	}
	return json.Marshal(c)
}

// DecodeSnapshot parses and validates a canonical snapshot. The decoded
// snapshot re-encodes to the same bytes (EncodeSnapshot∘DecodeSnapshot
// is the identity on canonical encodings).
func DecodeSnapshot(data []byte) (Snapshot, error) {
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return Snapshot{}, fmt.Errorf("obs: snapshot: %w", err)
	}
	s.normalize()
	if err := s.validate(); err != nil {
		return Snapshot{}, err
	}
	return s, nil
}

// Clone returns a deep copy sharing no slices or maps with s. Use it to
// try a Merge without risking the original: Merge mutates its target
// family-by-family, so a failed merge can leave the target half-merged —
// merge into a clone and keep it only when Merge returns nil.
func (s Snapshot) Clone() Snapshot {
	return cloneSnapshot(s)
}

// cloneSnapshot deep-copies s so normalization and merging never alias
// the caller's slices.
func cloneSnapshot(s Snapshot) Snapshot {
	c := Snapshot{Schema: s.Schema, Families: make([]FamilySnapshot, len(s.Families))}
	for fi, f := range s.Families {
		cf := FamilySnapshot{
			Name:   f.Name,
			Kind:   f.Kind,
			Bounds: append([]string(nil), f.Bounds...),
			Series: make([]SeriesSnapshot, len(f.Series)),
		}
		for si, se := range f.Series {
			cs := SeriesSnapshot{
				Labels:  append([]Label(nil), se.Labels...),
				Count:   se.Count,
				Value:   se.Value,
				Buckets: append([]uint64(nil), se.Buckets...),
			}
			if se.Sum != nil {
				cs.Sum = make(map[string]string, len(se.Sum))
				for k, v := range se.Sum {
					cs.Sum[k] = v
				}
			}
			cf.Series[si] = cs
		}
		c.Families[fi] = cf
	}
	return c
}

// upsertLabel returns labels with key set to value (replacing an
// existing key, inserting otherwise), sorted.
func upsertLabel(labels []Label, key, value string) []Label {
	out := make([]Label, 0, len(labels)+1)
	replaced := false
	for _, l := range labels {
		if l.Key == key {
			out = append(out, Label{Key: key, Value: value})
			replaced = true
			continue
		}
		out = append(out, l)
	}
	if !replaced {
		out = append(out, Label{Key: key, Value: value})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Merge folds a remote snapshot into s under a source identity
// (typically obs.L("worker", id)):
//
//   - counters with identical (name, labels) sum;
//   - histograms with identical (name, labels) bucket-merge — their
//     bounds must be identical, a mismatch is an error — and the remote
//     sum arrives as a new per-source part, so the rendered _sum is
//     reduced in sorted-source order;
//   - gauges (instantaneous values that cannot be summed) are re-labeled
//     with source before insertion, one series per source.
//
// Merge is associative and commutative: merging any number of snapshots
// in any order (and any grouping) yields byte-identical EncodeSnapshot
// output and byte-identical Prometheus text. Each source must be merged
// at most once — a histogram sum part or relabeled gauge arriving twice
// under one source id is an error.
func (s *Snapshot) Merge(remote Snapshot, source Label) error {
	if s.Schema == 0 && len(s.Families) == 0 {
		s.Schema = SnapshotSchemaVersion
	}
	if s.Schema != SnapshotSchemaVersion {
		return fmt.Errorf("obs: merge target schema %d, this build speaks %d", s.Schema, SnapshotSchemaVersion)
	}
	if !validLabelKey(source.Key) || source.Value == "" {
		return fmt.Errorf("obs: merge source %q=%q is not a usable label", source.Key, source.Value)
	}
	rc := cloneSnapshot(remote)
	rc.normalize()
	if err := rc.validate(); err != nil {
		return err
	}
	s.normalize()
	if err := s.validate(); err != nil {
		return err
	}
	for fi := range rc.Families {
		rf := &rc.Families[fi]
		k, _ := kindFromString(rf.Kind)
		tf := s.family(rf.Name)
		if tf == nil {
			s.Families = append(s.Families, FamilySnapshot{
				Name: rf.Name, Kind: rf.Kind,
				Bounds: append([]string(nil), rf.Bounds...),
			})
			tf = &s.Families[len(s.Families)-1]
		}
		if tf.Kind != rf.Kind {
			return fmt.Errorf("obs: merge: metric %q is a %s here, a %s in the remote snapshot",
				rf.Name, tf.Kind, rf.Kind)
		}
		if k == histogramKind && !equalStrings(tf.Bounds, rf.Bounds) {
			return fmt.Errorf("obs: merge: histogram %q bucket bounds differ (%v vs %v)",
				rf.Name, tf.Bounds, rf.Bounds)
		}
		for si := range rf.Series {
			rs := &rf.Series[si]
			switch k {
			case counterKind:
				ts := tf.series(rs.Labels)
				if ts == nil {
					tf.Series = append(tf.Series, *rs)
					continue
				}
				ts.Count += rs.Count
			case gaugeKind:
				labels := upsertLabel(rs.Labels, source.Key, source.Value)
				if tf.series(labels) != nil {
					return fmt.Errorf("obs: merge: gauge %q{%s} already present — source %q merged twice?",
						rf.Name, signature(labels), source.Value)
				}
				tf.Series = append(tf.Series, SeriesSnapshot{Labels: labels, Value: rs.Value})
			case histogramKind:
				ts := tf.series(rs.Labels)
				if ts == nil {
					tf.Series = append(tf.Series, SeriesSnapshot{
						Labels:  rs.Labels,
						Buckets: make([]uint64, len(rs.Buckets)),
						Sum:     map[string]string{},
					})
					ts = &tf.Series[len(tf.Series)-1]
				}
				for i := range rs.Buckets {
					ts.Buckets[i] += rs.Buckets[i]
				}
				if ts.Sum == nil {
					ts.Sum = map[string]string{}
				}
				for src, part := range rs.Sum {
					key := source.Value
					if src != "" {
						key = source.Value + "/" + src
					}
					if _, dup := ts.Sum[key]; dup {
						return fmt.Errorf("obs: merge: histogram %q sum part %q already present — source merged twice?",
							rf.Name, key)
					}
					ts.Sum[key] = part
				}
			}
		}
	}
	s.normalize()
	return nil
}

// family returns the named family, or nil.
func (s *Snapshot) family(name string) *FamilySnapshot {
	for i := range s.Families {
		if s.Families[i].Name == name {
			return &s.Families[i]
		}
	}
	return nil
}

// series returns the series with exactly these labels, or nil.
func (f *FamilySnapshot) series(labels []Label) *SeriesSnapshot {
	sig := signature(labels)
	for i := range f.Series {
		if signature(f.Series[i].Labels) == sig {
			return &f.Series[i]
		}
	}
	return nil
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
