package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"
)

// workerRegistry builds a registry shaped like one fleet worker's:
// shared counter/histogram names that must sum across workers, plus a
// gauge that must be re-labeled per worker.
func workerRegistry(cells uint64, lat ...float64) *Registry {
	r := New()
	r.Counter("runner_cells_completed_total").Add(cells)
	r.Counter("fabric_worker_cells_total", L("worker", "self")).Add(cells)
	r.Gauge("runner_worker_utilization").Set(float64(cells) / 10)
	h := r.Histogram("cell_seconds", []float64{0.01, 0.1, 1})
	for _, v := range lat {
		h.Observe(v)
	}
	return r
}

func promText(t *testing.T, s Snapshot) string {
	t.Helper()
	var sb strings.Builder
	if err := s.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func encode(t *testing.T, s Snapshot) []byte {
	t.Helper()
	b, err := EncodeSnapshot(s)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// Snapshot → Encode → Decode → Encode is bit-stable, and the decoded
// snapshot carries the exact values.
func TestSnapshotEncodeDecodeRoundTrip(t *testing.T) {
	r := workerRegistry(3, 0.005, 0.05, 0.5)
	r.Gauge("awkward", L("cell", `p="0.5" rho\1`)).Set(0.1 + 0.2) // non-terminating binary fraction
	s := r.Snapshot()
	b1 := encode(t, s)
	dec, err := DecodeSnapshot(b1)
	if err != nil {
		t.Fatal(err)
	}
	b2 := encode(t, dec)
	if !bytes.Equal(b1, b2) {
		t.Fatalf("re-encoding changed bytes:\n%s\n%s", b1, b2)
	}
	if got, want := promText(t, dec), promText(t, normalized(s)); got != want {
		t.Fatalf("decoded exposition differs:\n got %s\nwant %s", got, want)
	}
	g := dec.family("awkward")
	if g == nil || g.Series[0].Value != fnum(0.1+0.2) {
		t.Fatalf("gauge value not bit-exact: %+v", g)
	}
}

func normalized(s Snapshot) Snapshot {
	c := cloneSnapshot(s)
	c.normalize()
	return c
}

// The registry's own exports render from the snapshot: identical bytes.
func TestRegistryExportsMatchSnapshot(t *testing.T) {
	r := workerRegistry(5, 0.02, 0.2)
	var a, b strings.Builder
	if err := r.WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.Snapshot().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("registry and snapshot expositions differ:\n%s\n%s", a.String(), b.String())
	}
	var aj, bj strings.Builder
	if err := r.WriteJSON(&aj); err != nil {
		t.Fatal(err)
	}
	if err := r.Snapshot().WriteJSON(&bj); err != nil {
		t.Fatal(err)
	}
	if aj.String() != bj.String() {
		t.Fatalf("registry and snapshot JSON differ:\n%s\n%s", aj.String(), bj.String())
	}
}

// Merge golden: counters sum, histograms bucket-merge, gauges re-label.
func TestMergeGolden(t *testing.T) {
	a := workerRegistry(3, 0.005).Snapshot()
	b := workerRegistry(7, 0.05, 0.5).Snapshot()

	var fleet Snapshot
	if err := fleet.Merge(a, L("worker", "w0")); err != nil {
		t.Fatal(err)
	}
	if err := fleet.Merge(b, L("worker", "w1")); err != nil {
		t.Fatal(err)
	}
	out := promText(t, fleet)
	for _, want := range []string{
		"runner_cells_completed_total 10\n",           // 3 + 7
		`fabric_worker_cells_total{worker="self"} 10`, // identity-merged counter
		`runner_worker_utilization{worker="w0"} 0.3`,  // re-labeled gauge
		`runner_worker_utilization{worker="w1"} 0.7`,  //
		`cell_seconds_bucket{le="0.01"} 1`,            // bucket-merge
		`cell_seconds_bucket{le="0.1"} 2`,             //
		`cell_seconds_bucket{le="+Inf"} 3`,            //
		"cell_seconds_sum 0.555\n",                    // 0.005 + (0.05 + 0.5)
		"cell_seconds_count 3\n",                      //
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("merged exposition missing %q:\n%s", want, out)
		}
	}
}

// Merge is associative and commutative at the byte level: every grouping
// and order of the same snapshots encodes — and renders — identically.
func TestMergeAssociativeCommutative(t *testing.T) {
	snaps := []Snapshot{
		workerRegistry(1, 0.004).Snapshot(),
		workerRegistry(2, 0.04, 0.3).Snapshot(),
		workerRegistry(3, 0.4, 3, 0.001).Snapshot(),
	}
	merge := func(order ...int) []byte {
		var s Snapshot
		for _, i := range order {
			if err := s.Merge(snaps[i], L("worker", fmt.Sprintf("w%d", i))); err != nil {
				t.Fatal(err)
			}
		}
		return encode(t, s)
	}
	want := merge(0, 1, 2)
	for _, order := range [][]int{{0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}} {
		if got := merge(order...); !bytes.Equal(got, want) {
			t.Fatalf("order %v merged differently:\n%s\n%s", order, got, want)
		}
	}
	// Associativity through an intermediate: A⊕(B⊕C as a decoded remote)
	// is not meaningful for labeled sources, but grouping via a partial
	// target is: ((A into s) then (B into s)) == ((B into s') then (A into s')).
}

// Merging N randomized worker snapshots in any order yields identical
// Prometheus text and identical canonical bytes.
func TestMergeOrderInvarianceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(5)
		snaps := make([]Snapshot, n)
		for i := range snaps {
			r := New()
			for c := 0; c < 1+rng.Intn(4); c++ {
				r.Counter(fmt.Sprintf("ctr_%d_total", rng.Intn(3)), L("kind", fmt.Sprintf("k%d", rng.Intn(2)))).
					Add(uint64(rng.Intn(100)))
			}
			for g := 0; g < rng.Intn(3); g++ {
				r.Gauge(fmt.Sprintf("gauge_%d", rng.Intn(2))).Set(rng.NormFloat64())
			}
			h := r.Histogram("hist_seconds", []float64{0.01, 0.1, 1, 10})
			for o := 0; o < rng.Intn(6); o++ {
				h.Observe(rng.ExpFloat64())
			}
			snaps[i] = r.Snapshot()
		}
		var want []byte
		var wantText string
		for perm := 0; perm < 5; perm++ {
			order := rng.Perm(n)
			var s Snapshot
			for _, i := range order {
				if err := s.Merge(snaps[i], L("worker", fmt.Sprintf("w%d", i))); err != nil {
					t.Fatal(err)
				}
			}
			got := encode(t, s)
			text := promText(t, s)
			if want == nil {
				want, wantText = got, text
				continue
			}
			if !bytes.Equal(got, want) || text != wantText {
				t.Fatalf("trial %d perm %v: merge result depends on order:\n%s\n%s", trial, order, got, want)
			}
		}
	}
}

func TestMergeErrors(t *testing.T) {
	base := workerRegistry(1, 0.5).Snapshot()

	t.Run("bounds mismatch", func(t *testing.T) {
		r := New()
		r.Histogram("cell_seconds", []float64{1, 2, 3}).Observe(1)
		var s Snapshot
		if err := s.Merge(base, L("worker", "a")); err != nil {
			t.Fatal(err)
		}
		if err := s.Merge(r.Snapshot(), L("worker", "b")); err == nil ||
			!strings.Contains(err.Error(), "bounds differ") {
			t.Fatalf("bounds mismatch not rejected: %v", err)
		}
	})
	t.Run("kind mismatch", func(t *testing.T) {
		r := New()
		r.Gauge("runner_cells_completed_total").Set(1)
		var s Snapshot
		if err := s.Merge(base, L("worker", "a")); err != nil {
			t.Fatal(err)
		}
		if err := s.Merge(r.Snapshot(), L("worker", "b")); err == nil ||
			!strings.Contains(err.Error(), "is a counter") {
			t.Fatalf("kind mismatch not rejected: %v", err)
		}
	})
	t.Run("schema mismatch", func(t *testing.T) {
		bad := base
		bad.Schema = SnapshotSchemaVersion + 1
		var s Snapshot
		if err := s.Merge(bad, L("worker", "a")); err == nil ||
			!strings.Contains(err.Error(), "schema") {
			t.Fatalf("schema mismatch not rejected: %v", err)
		}
	})
	t.Run("duplicate source", func(t *testing.T) {
		var s Snapshot
		if err := s.Merge(base, L("worker", "a")); err != nil {
			t.Fatal(err)
		}
		if err := s.Merge(base, L("worker", "a")); err == nil ||
			!strings.Contains(err.Error(), "merged twice") {
			t.Fatalf("double merge of one source not rejected: %v", err)
		}
	})
	t.Run("unusable source", func(t *testing.T) {
		var s Snapshot
		if err := s.Merge(base, L("", "a")); err == nil {
			t.Fatal("empty source key accepted")
		}
		if err := s.Merge(base, L("worker", "")); err == nil {
			t.Fatal("empty source value accepted")
		}
	})
}

func TestDecodeSnapshotRejectsMalformed(t *testing.T) {
	good := encode(t, workerRegistry(1, 0.5).Snapshot())
	for name, mangle := range map[string]func(s string) string{
		"wrong schema":  func(s string) string { return strings.Replace(s, `"schema":1`, `"schema":99`, 1) },
		"bad kind":      func(s string) string { return strings.Replace(s, `"kind":"gauge"`, `"kind":"summary"`, 1) },
		"bad gauge":     func(s string) string { return strings.Replace(s, `"value":"0.1"`, `"value":"zero"`, 1) },
		"not JSON":      func(s string) string { return s[:len(s)/2] },
		"bucket length": func(s string) string { return strings.Replace(s, `"buckets":[0,0,1,0]`, `"buckets":[0,0,1]`, 1) },
	} {
		t.Run(name, func(t *testing.T) {
			mangled := mangle(string(good))
			if mangled == string(good) {
				t.Fatalf("mangle had no effect on %s", good)
			}
			if _, err := DecodeSnapshot([]byte(mangled)); err == nil {
				t.Fatalf("malformed snapshot accepted:\n%s", mangled)
			}
		})
	}
}

// SetSpanIdentity stamps pid and labels onto every span; the trace
// writer renders the pid; EmitSpan passes foreign events through
// verbatim.
func TestSpanIdentity(t *testing.T) {
	var sb strings.Builder
	tw := NewTraceWriter(&sb)
	r := New()
	r.SetSpanSink(tw)
	r.SetSpanIdentity(7, L("worker", "w7"))
	r.StartSpan("cell", L("cell", "3")).End()
	r.EmitSpan(SpanEvent{Name: "remote", Start: time.Now(), PID: 42, Labels: []Label{L("worker", "w42")}})
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	var events []struct {
		Name string            `json:"name"`
		PID  int               `json:"pid"`
		Args map[string]string `json:"args"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &events); err != nil {
		t.Fatalf("trace: %v\n%s", err, sb.String())
	}
	if len(events) != 2 {
		t.Fatalf("events = %d, want 2", len(events))
	}
	if events[0].PID != 7 || events[0].Args["worker"] != "w7" || events[0].Args["cell"] != "3" {
		t.Fatalf("identity not stamped: %+v", events[0])
	}
	if events[1].PID != 42 || events[1].Args["worker"] != "w42" {
		t.Fatalf("emitted span not preserved: %+v", events[1])
	}
}

// SpanCollector buffers until drained and bounds its memory.
func TestSpanCollector(t *testing.T) {
	c := NewSpanCollector(3)
	r := New()
	r.SetSpanSink(Tee(nil, c))
	for i := 0; i < 5; i++ {
		r.StartSpan("s").End()
	}
	if got := c.Drain(); len(got) != 3 {
		t.Fatalf("drained %d spans, want 3 (bounded)", len(got))
	}
	if c.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", c.Dropped())
	}
	if got := c.Drain(); len(got) != 0 {
		t.Fatalf("second drain returned %d spans", len(got))
	}
	r.StartSpan("again").End()
	if got := c.Drain(); len(got) != 1 {
		t.Fatalf("collector dead after drain: %d", len(got))
	}
}

// Snapshots taken while the registry is hammered are structurally sound
// (run under -race in tier2).
func TestSnapshotConcurrentWithUpdates(t *testing.T) {
	r := New()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("spin_total", L("w", fmt.Sprintf("%d", w)))
			h := r.Histogram("spin_seconds", []float64{0.01, 0.1})
			g := r.Gauge("spin_depth")
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				h.Observe(float64(i%3) * 0.05)
				g.Set(float64(i))
			}
		}(w)
	}
	for i := 0; i < 200; i++ {
		s := r.Snapshot()
		if _, err := EncodeSnapshot(s); err != nil {
			t.Fatal(err)
		}
		var fleet Snapshot
		if err := fleet.Merge(s, L("worker", "w")); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

// Clone is a deep copy: merging into the clone leaves the original's
// canonical encoding untouched.
func TestSnapshotCloneIndependent(t *testing.T) {
	r := New()
	r.Counter("a_total").Add(3)
	r.Histogram("h_seconds", []float64{1, 2}).Observe(0.5)
	r.Gauge("g").Set(1.5)
	s := r.Snapshot()
	before, err := EncodeSnapshot(s)
	if err != nil {
		t.Fatal(err)
	}
	c := s.Clone()
	if err := c.Merge(workerRegistry(7, 0.1).Snapshot(), L("worker", "w")); err != nil {
		t.Fatal(err)
	}
	after, err := EncodeSnapshot(s)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatalf("merge into clone mutated the original:\nbefore %s\nafter  %s", before, after)
	}
}
