package obs

import (
	"fmt"
	"io"
	"testing"
)

// BenchmarkNilInstrumentation pins the disabled fast path: resolving
// instruments from a nil registry and using them must cost a handful of
// nil checks and zero allocations per operation.
func BenchmarkNilInstrumentation(b *testing.B) {
	var r *Registry
	c := r.Counter("cells_total")
	g := r.Gauge("inflight")
	h := r.Histogram("lat_seconds", nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
		g.Set(1)
		h.Observe(0.01)
		sp := r.StartSpan("cell")
		sp.End()
	}
}

// BenchmarkLiveInstrumentation is the attached-registry counterpart, for
// comparison against the nil fast path.
func BenchmarkLiveInstrumentation(b *testing.B) {
	r := New()
	c := r.Counter("cells_total")
	g := r.Gauge("inflight")
	h := r.Histogram("lat_seconds", nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
		g.Set(1)
		h.Observe(0.01)
	}
}

// BenchmarkTelemetryMergeThroughput measures the coordinator-side cost
// of one fleet telemetry round: decode each worker's pushed snapshot and
// fold it into the merged registry view. The worker registries mirror
// what a real fabric worker ships — a handful of counters, gauges, and
// latency histograms across several label sets — and the encode step
// runs outside the timed region because it is paid by the workers, not
// the coordinator. The custom merges/sec metric counts worker snapshots
// absorbed per second and is what `make bench` records in BENCH_PR9.json.
func BenchmarkTelemetryMergeThroughput(b *testing.B) {
	const workers = 8
	encoded := make([][]byte, workers)
	for w := 0; w < workers; w++ {
		r := New()
		for cell := 0; cell < 16; cell++ {
			lab := L("cell", fmt.Sprint(cell))
			r.Counter("fabric_cells_completed_total", lab).Add(uint64(3 + cell))
			r.Histogram("fabric_cell_seconds", LatencyBuckets, lab).Observe(0.001 * float64(1+cell))
		}
		r.Counter("fabric_leases_total").Add(uint64(5 + w))
		r.Gauge("fabric_inflight_cells").Set(float64(w % 4))
		r.Histogram("solve_seconds", LatencyBuckets).Observe(0.25)
		buf, err := EncodeSnapshot(r.Snapshot())
		if err != nil {
			b.Fatal(err)
		}
		encoded[w] = buf
	}
	base := New()
	base.Counter("fabric_leases_granted_total").Add(7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		merged := base.Snapshot()
		for w, buf := range encoded {
			snap, err := DecodeSnapshot(buf)
			if err != nil {
				b.Fatal(err)
			}
			if err := merged.Merge(snap, L("worker", fmt.Sprintf("w%d", w))); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(workers)*float64(b.N)/b.Elapsed().Seconds(), "merges/sec")
}

// BenchmarkSpanWithTrace measures a recorded span end to end.
func BenchmarkSpanWithTrace(b *testing.B) {
	r := New()
	r.SetSpanSink(NewTraceWriter(io.Discard))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := r.StartSpan("cell", L("cell", "i"))
		sp.End()
	}
}
