package obs

import (
	"io"
	"testing"
)

// BenchmarkNilInstrumentation pins the disabled fast path: resolving
// instruments from a nil registry and using them must cost a handful of
// nil checks and zero allocations per operation.
func BenchmarkNilInstrumentation(b *testing.B) {
	var r *Registry
	c := r.Counter("cells_total")
	g := r.Gauge("inflight")
	h := r.Histogram("lat_seconds", nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
		g.Set(1)
		h.Observe(0.01)
		sp := r.StartSpan("cell")
		sp.End()
	}
}

// BenchmarkLiveInstrumentation is the attached-registry counterpart, for
// comparison against the nil fast path.
func BenchmarkLiveInstrumentation(b *testing.B) {
	r := New()
	c := r.Counter("cells_total")
	g := r.Gauge("inflight")
	h := r.Histogram("lat_seconds", nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
		g.Set(1)
		h.Observe(0.01)
	}
}

// BenchmarkSpanWithTrace measures a recorded span end to end.
func BenchmarkSpanWithTrace(b *testing.B) {
	r := New()
	r.SetSpanSink(NewTraceWriter(io.Discard))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := r.StartSpan("cell", L("cell", "i"))
		sp.End()
	}
}
