package obs

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
)

// Flags is the standard observability flag set shared by the CLIs:
//
//	-metrics-out FILE   write a JSON metrics snapshot on exit
//	-trace-out FILE     stream phase spans as Chrome trace events
//	-pprof ADDR         serve /debug/pprof and /metrics on ADDR for the
//	                    duration of the run
//
// Bind the flags with Register, then call Setup once flags are parsed.
// When no observability output is requested (and force is false) Setup
// returns a nil registry, which keeps every instrumentation site on the
// zero-cost nil fast path.
type Flags struct {
	MetricsOut string
	TraceOut   string
	Pprof      string
}

// Register binds the flags on fs.
func (f *Flags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.MetricsOut, "metrics-out", "", "write a JSON metrics snapshot (counters, gauges, histogram quantiles) to this file on exit")
	fs.StringVar(&f.TraceOut, "trace-out", "", "stream phase spans to this file as Chrome trace events (load in chrome://tracing or ui.perfetto.dev)")
	fs.StringVar(&f.Pprof, "pprof", "", "serve /debug/pprof and /metrics on this address (e.g. localhost:6060) while running")
}

// Enabled reports whether any observability output was requested.
func (f *Flags) Enabled() bool {
	return f.MetricsOut != "" || f.TraceOut != "" || f.Pprof != ""
}

// Setup wires the requested sinks. It returns the registry — nil when
// nothing was requested and force is false, so instrumented code stays
// on the nil fast path — and a finish function that snapshots
// -metrics-out and closes the trace stream; call it exactly once, after
// the run's final gauges are set. Pass force to obtain a registry even
// without output flags (e.g. because -stats or -progress render from
// it).
func (f *Flags) Setup(force bool) (*Registry, func() error, error) {
	if !f.Enabled() && !force {
		return nil, func() error { return nil }, nil
	}
	reg := New()
	var (
		traceFile *os.File
		tw        *TraceWriter
	)
	if f.TraceOut != "" {
		var err error
		traceFile, err = os.Create(f.TraceOut)
		if err != nil {
			return nil, nil, fmt.Errorf("-trace-out: %w", err)
		}
		tw = NewTraceWriter(traceFile)
		reg.SetSpanSink(tw)
	}
	if f.Pprof != "" {
		ln, err := net.Listen("tcp", f.Pprof)
		if err != nil {
			if tw != nil {
				tw.Close()
				traceFile.Close()
			}
			return nil, nil, fmt.Errorf("-pprof: %w", err)
		}
		go func() { _ = http.Serve(ln, DebugMux(reg)) }()
	}
	finish := func() error {
		var first error
		if f.MetricsOut != "" {
			out, err := os.Create(f.MetricsOut)
			if err == nil {
				err = reg.WriteJSON(out)
				if cerr := out.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				first = fmt.Errorf("-metrics-out: %w", err)
			}
		}
		if tw != nil {
			err := tw.Close()
			if cerr := traceFile.Close(); err == nil {
				err = cerr
			}
			if err != nil && first == nil {
				first = fmt.Errorf("-trace-out: %w", err)
			}
		}
		return first
	}
	return reg, finish, nil
}

// DebugMux returns a mux serving the registry at /metrics (Prometheus
// text format) and the standard pprof handlers under /debug/pprof/.
func DebugMux(reg *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", HTTPHandler(reg))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
