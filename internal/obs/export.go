package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
)

// ContentType is the Prometheus text exposition content type served by
// HTTPHandler.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// snapshot copies the family/instrument structure (not the live values)
// under the registry lock, so exports iterate deterministically in
// creation order without holding the lock across writes.
func (r *Registry) snapshot() []*family {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*family, 0, len(r.order))
	for _, name := range r.order {
		out = append(out, r.families[name])
	}
	return out
}

// instruments returns the family's instruments in creation order. The
// registry lock guards family maps too (instruments are only added
// under it), so take it around the copy.
func (r *Registry) instruments(f *family) []*instrument {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*instrument, 0, len(f.order))
	for _, sig := range f.order {
		out = append(out, f.insts[sig])
	}
	return out
}

// fnum formats a float the way the Prometheus text format expects.
func fnum(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}

// series renders name{labels} for one instrument.
func series(name string, labels []Label, suffix string, extra string) string {
	sig := signature(labels)
	if extra != "" {
		if sig != "" {
			sig += ","
		}
		sig += extra
	}
	if sig == "" {
		return name + suffix
	}
	return name + suffix + "{" + sig + "}"
}

// WritePrometheus writes every metric in the text exposition format
// (version 0.0.4): counters, gauges, and histograms with cumulative
// le-buckets, _sum and _count. Families appear in creation order, label
// variants in creation order within each family. Nil-safe: a nil
// registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.snapshot() {
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, inst := range r.instruments(f) {
			var err error
			switch f.kind {
			case counterKind:
				_, err = fmt.Fprintf(w, "%s %d\n", series(f.name, inst.labels, "", ""), inst.c.Value())
			case gaugeKind:
				_, err = fmt.Fprintf(w, "%s %s\n", series(f.name, inst.labels, "", ""), fnum(inst.g.Value()))
			case histogramKind:
				err = writePromHistogram(w, f.name, inst)
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

func writePromHistogram(w io.Writer, name string, inst *instrument) error {
	h := inst.h
	counts := h.BucketCounts()
	var cum uint64
	for i, bound := range h.Bounds() {
		cum += counts[i]
		le := fmt.Sprintf("le=%q", fnum(bound))
		if _, err := fmt.Fprintf(w, "%s %d\n", series(name, inst.labels, "_bucket", le), cum); err != nil {
			return err
		}
	}
	cum += counts[len(counts)-1]
	if _, err := fmt.Fprintf(w, "%s %d\n", series(name, inst.labels, "_bucket", `le="+Inf"`), cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s %s\n", series(name, inst.labels, "_sum", ""), fnum(h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s %d\n", series(name, inst.labels, "_count", ""), cum)
	return err
}

// jsonHistogram is the JSON shape of one histogram series.
type jsonHistogram struct {
	Count     uint64             `json:"count"`
	Sum       float64            `json:"sum"`
	Quantiles map[string]float64 `json:"quantiles,omitempty"`
	Buckets   []jsonBucket       `json:"buckets"`
}

type jsonBucket struct {
	LE    string `json:"le"`
	Count uint64 `json:"count"`
}

// WriteJSON writes an expvar-style snapshot: three top-level objects —
// counters, gauges, histograms — keyed by the metric's full series name
// (name{labels}). Histograms carry count, sum, p50/p90/p99 quantile
// estimates and the raw cumulative buckets. Keys are sorted by
// encoding/json, so the snapshot is deterministic for fixed values.
// Nil-safe: a nil registry writes an empty snapshot.
func (r *Registry) WriteJSON(w io.Writer) error {
	counters := map[string]uint64{}
	gauges := map[string]float64{}
	histograms := map[string]jsonHistogram{}
	for _, f := range r.snapshot() {
		for _, inst := range r.instruments(f) {
			key := series(f.name, inst.labels, "", "")
			switch f.kind {
			case counterKind:
				counters[key] = inst.c.Value()
			case gaugeKind:
				gauges[key] = jsonSafe(inst.g.Value())
			case histogramKind:
				histograms[key] = jsonHistogramOf(inst.h)
			}
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(map[string]any{
		"counters":   counters,
		"gauges":     gauges,
		"histograms": histograms,
	})
}

func jsonHistogramOf(h *Histogram) jsonHistogram {
	counts := h.BucketCounts()
	out := jsonHistogram{Sum: jsonSafe(h.Sum())}
	var cum uint64
	for i, bound := range h.Bounds() {
		cum += counts[i]
		out.Buckets = append(out.Buckets, jsonBucket{LE: fnum(bound), Count: cum})
	}
	cum += counts[len(counts)-1]
	out.Buckets = append(out.Buckets, jsonBucket{LE: "+Inf", Count: cum})
	out.Count = cum
	if cum > 0 {
		out.Quantiles = map[string]float64{
			"p50": jsonSafe(h.Quantile(0.50)),
			"p90": jsonSafe(h.Quantile(0.90)),
			"p99": jsonSafe(h.Quantile(0.99)),
		}
	}
	return out
}

// jsonSafe maps the float values encoding/json rejects to 0; metric
// values are never legitimately NaN or infinite.
func jsonSafe(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}

// HTTPHandler serves the registry in Prometheus text format — mount it
// at /metrics. A nil registry serves an empty (valid) exposition.
func HTTPHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		var sb strings.Builder
		if err := r.WritePrometheus(&sb); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", ContentType)
		_, _ = io.WriteString(w, sb.String())
	})
}
