package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
)

// ContentType is the Prometheus text exposition content type served by
// HTTPHandler.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// fnum formats a float the way the Prometheus text format expects.
func fnum(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}

// series renders name{labels} for one instrument.
func series(name string, labels []Label, suffix string, extra string) string {
	sig := signature(labels)
	if extra != "" {
		if sig != "" {
			sig += ","
		}
		sig += extra
	}
	if sig == "" {
		return name + suffix
	}
	return name + suffix + "{" + sig + "}"
}

// WritePrometheus writes every metric in the text exposition format
// (version 0.0.4): counters, gauges, and histograms with cumulative
// le-buckets, _sum and _count. Families appear in creation order, label
// variants in creation order within each family. The registry lock is
// held only while values are snapshotted, never across writes — a slow
// writer cannot stall concurrent metric updates. Nil-safe: a nil
// registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return r.Snapshot().WritePrometheus(w)
}

// WritePrometheus renders the snapshot in the text exposition format, in
// the snapshot's family/series order: a fresh Registry.Snapshot writes
// the exact bytes the registry would, a merged snapshot writes its
// canonical sorted order.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	for fi := range s.Families {
		f := &s.Families[fi]
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.Name, f.Kind); err != nil {
			return err
		}
		k, _ := kindFromString(f.Kind)
		for si := range f.Series {
			se := &f.Series[si]
			var err error
			switch k {
			case counterKind:
				_, err = fmt.Fprintf(w, "%s %d\n", series(f.Name, se.Labels, "", ""), se.Count)
			case gaugeKind:
				_, err = fmt.Fprintf(w, "%s %s\n", series(f.Name, se.Labels, "", ""), se.Value)
			case histogramKind:
				err = writePromHistogram(w, f, se)
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

func writePromHistogram(w io.Writer, f *FamilySnapshot, se *SeriesSnapshot) error {
	var cum uint64
	for i, bound := range f.Bounds {
		cum += se.Buckets[i]
		le := fmt.Sprintf("le=%q", bound)
		if _, err := fmt.Fprintf(w, "%s %d\n", series(f.Name, se.Labels, "_bucket", le), cum); err != nil {
			return err
		}
	}
	cum += se.Buckets[len(se.Buckets)-1]
	if _, err := fmt.Fprintf(w, "%s %d\n", series(f.Name, se.Labels, "_bucket", `le="+Inf"`), cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s %s\n", series(f.Name, se.Labels, "_sum", ""), fnum(se.sumTotal())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s %d\n", series(f.Name, se.Labels, "_count", ""), cum)
	return err
}

// jsonHistogram is the JSON shape of one histogram series.
type jsonHistogram struct {
	Count     uint64             `json:"count"`
	Sum       float64            `json:"sum"`
	Quantiles map[string]float64 `json:"quantiles,omitempty"`
	Buckets   []jsonBucket       `json:"buckets"`
}

type jsonBucket struct {
	LE    string `json:"le"`
	Count uint64 `json:"count"`
}

// WriteJSON writes an expvar-style snapshot: three top-level objects —
// counters, gauges, histograms — keyed by the metric's full series name
// (name{labels}). Histograms carry count, sum, p50/p90/p99 quantile
// estimates and the raw cumulative buckets. Keys are sorted by
// encoding/json, so the snapshot is deterministic for fixed values. Like
// WritePrometheus it renders from a value snapshot, so the registry lock
// is never held across writes. Nil-safe: a nil registry writes an empty
// snapshot.
func (r *Registry) WriteJSON(w io.Writer) error {
	return r.Snapshot().WriteJSON(w)
}

// WriteJSON renders the snapshot in the expvar-style JSON shape.
func (s Snapshot) WriteJSON(w io.Writer) error {
	counters := map[string]uint64{}
	gauges := map[string]float64{}
	histograms := map[string]jsonHistogram{}
	for fi := range s.Families {
		f := &s.Families[fi]
		k, _ := kindFromString(f.Kind)
		for si := range f.Series {
			se := &f.Series[si]
			key := series(f.Name, se.Labels, "", "")
			switch k {
			case counterKind:
				counters[key] = se.Count
			case gaugeKind:
				v, _ := strconv.ParseFloat(se.Value, 64)
				gauges[key] = jsonSafe(v)
			case histogramKind:
				histograms[key] = jsonHistogramOf(f, se)
			}
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(map[string]any{
		"counters":   counters,
		"gauges":     gauges,
		"histograms": histograms,
	})
}

func jsonHistogramOf(f *FamilySnapshot, se *SeriesSnapshot) jsonHistogram {
	out := jsonHistogram{Sum: jsonSafe(se.sumTotal())}
	var cum uint64
	for i, bound := range f.Bounds {
		cum += se.Buckets[i]
		out.Buckets = append(out.Buckets, jsonBucket{LE: bound, Count: cum})
	}
	cum += se.Buckets[len(se.Buckets)-1]
	out.Buckets = append(out.Buckets, jsonBucket{LE: "+Inf", Count: cum})
	out.Count = cum
	if cum > 0 {
		bounds := f.boundsFloats()
		out.Quantiles = map[string]float64{
			"p50": jsonSafe(bucketQuantile(bounds, se.Buckets, 0.50)),
			"p90": jsonSafe(bucketQuantile(bounds, se.Buckets, 0.90)),
			"p99": jsonSafe(bucketQuantile(bounds, se.Buckets, 0.99)),
		}
	}
	return out
}

// jsonSafe maps the float values encoding/json rejects to 0; metric
// values are never legitimately NaN or infinite.
func jsonSafe(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}

// HTTPHandler serves the registry in Prometheus text format — mount it
// at /metrics. The exposition is rendered from a value snapshot into
// memory before the first response byte is written, so a slow scrape
// never holds registry locks across network writes. A nil registry
// serves an empty (valid) exposition.
func HTTPHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		var sb strings.Builder
		if err := r.WritePrometheus(&sb); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", ContentType)
		_, _ = io.WriteString(w, sb.String())
	})
}
