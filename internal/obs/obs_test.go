package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := New()
	c := r.Counter("requests_total", L("endpoint", "announce"))
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Same (name, labels) interns to the same instrument, in any order.
	c2 := r.Counter("requests_total", Label{Key: "endpoint", Value: "announce"})
	if c2 != c {
		t.Fatal("same series returned a different counter")
	}
	g := r.Gauge("workers")
	g.Set(8)
	g.Add(-2)
	if got := g.Value(); got != 6 {
		t.Fatalf("gauge = %g, want 6", got)
	}
}

func TestLabelOrderInterning(t *testing.T) {
	r := New()
	a := r.Counter("m_total", L("b", "2"), L("a", "1"))
	b := r.Counter("m_total", L("a", "1"), L("b", "2"))
	if a != b {
		t.Fatal("label order changed series identity")
	}
	other := r.Counter("m_total", L("a", "1"), L("b", "3"))
	if other == a {
		t.Fatal("different label values shared a series")
	}
}

func TestHistogramObserveAndQuantile(t *testing.T) {
	r := New()
	h := r.Histogram("lat_seconds", []float64{0.1, 0.2, 0.4})
	for _, v := range []float64{0.05, 0.05, 0.15, 0.3, 0.3, 0.3, 0.5} {
		h.Observe(v)
	}
	if got := h.Count(); got != 7 {
		t.Fatalf("count = %d, want 7", got)
	}
	if got, want := h.Sum(), 0.05+0.05+0.15+0.3+0.3+0.3+0.5; math.Abs(got-want) > 1e-12 {
		t.Fatalf("sum = %g, want %g", got, want)
	}
	counts := h.BucketCounts()
	want := []uint64{2, 1, 3, 1}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("bucket %d = %d, want %d (all %v)", i, counts[i], want[i], want)
		}
	}
	// Median: target 3.5 of 7 lands in the (0.2, 0.4] bucket.
	q := h.Quantile(0.5)
	if q <= 0.2 || q > 0.4 {
		t.Fatalf("p50 = %g, want within (0.2, 0.4]", q)
	}
	// Everything in the overflow bucket clamps to the top finite bound.
	if q := h.Quantile(1); q != 0.4 {
		t.Fatalf("p100 = %g, want clamp to 0.4", q)
	}
	if !math.IsNaN((&Histogram{bounds: []float64{1}, counts: make([]counterCell, 2)}).Quantile(0.5)) {
		t.Fatal("empty histogram quantile should be NaN")
	}
}

func TestHistogramBoundsNormalized(t *testing.T) {
	r := New()
	h := r.Histogram("h_seconds", []float64{0.2, 0.1, 0.2, math.NaN(), math.Inf(1)})
	want := []float64{0.1, 0.2}
	got := h.Bounds()
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("bounds = %v, want %v", got, want)
	}
	// Empty bounds fall back to the default latency buckets.
	d := r.Histogram("d_seconds", nil)
	if len(d.Bounds()) != len(LatencyBuckets) {
		t.Fatalf("default bounds = %v", d.Bounds())
	}
}

func TestNilRegistryAndInstrumentsAreInert(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total")
	g := r.Gauge("x")
	h := r.Histogram("x_seconds", nil)
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry handed out live instruments")
	}
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments recorded values")
	}
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Fatal("nil histogram quantile should be NaN")
	}
	sp := r.StartSpan("phase", L("k", "v"))
	if sp.Active() {
		t.Fatal("nil registry span is active")
	}
	sp.End() // must not panic
	r.SetSpanSink(nil)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil || sb.Len() != 0 {
		t.Fatalf("nil registry prometheus: %q, %v", sb.String(), err)
	}
	sb.Reset()
	if err := r.WriteJSON(&sb); err != nil || !strings.Contains(sb.String(), "counters") {
		t.Fatalf("nil registry json: %q, %v", sb.String(), err)
	}
}

func TestSpanWithoutSinkIsInert(t *testing.T) {
	r := New()
	sp := r.StartSpan("phase")
	if sp.Active() {
		t.Fatal("span active with no sink attached")
	}
	sp.End()
}

func TestInvalidNamesPanic(t *testing.T) {
	r := New()
	for _, f := range []func(){
		func() { r.Counter("bad name") },
		func() { r.Counter("") },
		func() { r.Counter("1leading") },
		func() { r.Counter("ok_total", L("bad key", "v")) },
		func() { r.Counter("dup_total", L("k", "a"), L("k", "b")) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
	// Kind clash: registering an existing gauge name as a counter panics.
	r2 := New()
	r2.Gauge("kindclash")
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("kind clash accepted")
			}
		}()
		r2.Counter("kindclash")
	}()
}

// TestRegistryConcurrency hammers one registry from many goroutines —
// interning, counting, observing, exporting — and is run under -race by
// tier2.
func TestRegistryConcurrency(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Counter("hits_total", L("worker", "shared")).Inc()
				r.Gauge("depth").Set(float64(i))
				r.Histogram("lat_seconds", nil, L("worker", "shared")).Observe(float64(i) / 1000)
				if i%50 == 0 {
					var sb strings.Builder
					if err := r.WritePrometheus(&sb); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("hits_total", L("worker", "shared")).Value(); got != 16*200 {
		t.Fatalf("hits = %d, want %d", got, 16*200)
	}
	if got := r.Histogram("lat_seconds", nil, L("worker", "shared")).Count(); got != 16*200 {
		t.Fatalf("observations = %d, want %d", got, 16*200)
	}
}
