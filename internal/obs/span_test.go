package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceWriterChromeFormat(t *testing.T) {
	var sb strings.Builder
	tw := NewTraceWriter(&sb)
	r := New()
	r.SetSpanSink(tw)

	sp := r.StartSpan("cell", L("cell", "p=0.5"))
	if !sp.Active() {
		t.Fatal("span inactive with sink attached")
	}
	sp.End()
	r.StartSpan("reduce").End()
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}

	// The whole stream is one JSON array of complete events.
	var events []struct {
		Name string            `json:"name"`
		Ph   string            `json:"ph"`
		TS   float64           `json:"ts"`
		Dur  float64           `json:"dur"`
		Args map[string]string `json:"args"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &events); err != nil {
		t.Fatalf("trace is not a JSON array: %v\n%s", err, sb.String())
	}
	if len(events) != 2 {
		t.Fatalf("events = %d, want 2", len(events))
	}
	if events[0].Name != "cell" || events[0].Ph != "X" || events[0].Args["cell"] != "p=0.5" {
		t.Fatalf("first event: %+v", events[0])
	}
	if events[1].Name != "reduce" || events[1].TS < events[0].TS {
		t.Fatalf("second event: %+v", events[1])
	}
	// One event per line between the brackets (JSONL-ish framing).
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if lines[0] != "[" || lines[len(lines)-1] != "]" || len(lines) != 4 {
		t.Fatalf("framing:\n%s", sb.String())
	}
}

func TestTraceWriterEmptyClose(t *testing.T) {
	var sb strings.Builder
	tw := NewTraceWriter(&sb)
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	var events []any
	if err := json.Unmarshal([]byte(sb.String()), &events); err != nil || len(events) != 0 {
		t.Fatalf("empty trace: %q, %v", sb.String(), err)
	}
	// Spans after Close are dropped, not written.
	tw.RecordSpan(SpanEvent{Name: "late", Start: time.Now()})
	if strings.Contains(sb.String(), "late") {
		t.Fatal("span recorded after Close")
	}
}

func TestTraceWriterConcurrent(t *testing.T) {
	var sb strings.Builder
	tw := NewTraceWriter(&sb)
	r := New()
	r.SetSpanSink(tw)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				r.StartSpan("work").End()
			}
		}()
	}
	wg.Wait()
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &events); err != nil {
		t.Fatalf("concurrent trace corrupt: %v", err)
	}
	if len(events) != 8*50 {
		t.Fatalf("events = %d, want %d", len(events), 8*50)
	}
}

func TestSetSpanSinkDetach(t *testing.T) {
	var sb strings.Builder
	tw := NewTraceWriter(&sb)
	r := New()
	r.SetSpanSink(tw)
	r.SetSpanSink(nil)
	if r.StartSpan("x").Active() {
		t.Fatal("span active after sink detached")
	}
}
