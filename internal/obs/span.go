package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// SpanEvent is one completed phase span as delivered to a SpanSink.
type SpanEvent struct {
	// Name is the phase name, e.g. "cell" or "simulate".
	Name string
	// Start and Duration bound the span in wall-clock time.
	Start    time.Time
	Duration time.Duration
	// Labels carry the span's dimensions (cell index, replica, ...).
	Labels []Label
}

// SpanSink receives completed spans. Implementations must be safe for
// concurrent use; the registry delivers spans from whichever goroutine
// ends them.
type SpanSink interface {
	RecordSpan(SpanEvent)
}

// SetSpanSink attaches (or, with nil, detaches) the span sink. Nil-safe.
func (r *Registry) SetSpanSink(s SpanSink) {
	if r == nil {
		return
	}
	if s == nil {
		r.sink.Store(nil)
		return
	}
	r.sink.Store(&sinkBox{s: s})
}

// spanSink returns the current sink, or nil.
func (r *Registry) spanSink() SpanSink {
	if r == nil {
		return nil
	}
	if b := r.sink.Load(); b != nil {
		return b.s
	}
	return nil
}

// Tracing reports whether a span sink is attached — hot paths use it to
// skip building span labels when no one is listening. Nil-safe.
func (r *Registry) Tracing() bool { return r.spanSink() != nil }

// Span is one in-flight phase: started by Registry.StartSpan, finished
// by End. The zero Span (and any span started on a registry without a
// sink) is inert — End is a no-op and no clock is read — so span
// instrumentation costs nothing when tracing is off.
type Span struct {
	sink   SpanSink
	name   string
	labels []Label
	start  time.Time
}

// StartSpan opens a span. When the registry is nil or has no sink the
// returned span is inert and no time is read.
func (r *Registry) StartSpan(name string, labels ...Label) Span {
	sink := r.spanSink()
	if sink == nil {
		return Span{}
	}
	return Span{sink: sink, name: name, labels: labels, start: time.Now()}
}

// Active reports whether ending the span will record anything.
func (s Span) Active() bool { return s.sink != nil }

// End completes the span and delivers it to the sink. No-op on an inert
// span.
func (s Span) End() {
	if s.sink == nil {
		return
	}
	s.sink.RecordSpan(SpanEvent{
		Name: s.name, Start: s.start, Duration: time.Since(s.start), Labels: s.labels,
	})
}

// TraceWriter is a SpanSink that streams spans as Chrome trace events:
// a JSON array of complete ("ph":"X") events, one event per line, so
// the output is both line-parsable (strip the trailing comma) and loads
// directly into chrome://tracing / https://ui.perfetto.dev. Timestamps
// are microseconds relative to the first recorded span. Close finishes
// the array; Chrome also accepts an unterminated file from a crashed
// process.
type TraceWriter struct {
	mu     sync.Mutex
	w      io.Writer
	base   time.Time
	opened bool
	closed bool
	err    error
}

// NewTraceWriter returns a trace sink writing to w.
func NewTraceWriter(w io.Writer) *TraceWriter {
	return &TraceWriter{w: w}
}

// RecordSpan implements SpanSink.
func (t *TraceWriter) RecordSpan(e SpanEvent) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed || t.err != nil {
		return
	}
	if !t.opened {
		t.opened = true
		t.base = e.Start
		if _, err := io.WriteString(t.w, "[\n"); err != nil {
			t.err = err
			return
		}
	} else if _, err := io.WriteString(t.w, ",\n"); err != nil {
		t.err = err
		return
	}
	var args strings.Builder
	for i, l := range e.Labels {
		if i > 0 {
			args.WriteByte(',')
		}
		fmt.Fprintf(&args, `"%s":"%s"`, l.Key, escapeLabelValue(l.Value))
	}
	_, err := fmt.Fprintf(t.w,
		`{"name":"%s","ph":"X","pid":1,"tid":1,"ts":%d,"dur":%d,"args":{%s}}`,
		escapeLabelValue(e.Name), e.Start.Sub(t.base).Microseconds(),
		e.Duration.Microseconds(), args.String())
	if err != nil {
		t.err = err
	}
}

// Close terminates the JSON array. Safe to call once; further spans are
// dropped. Returns the first write error encountered, if any.
func (t *TraceWriter) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return t.err
	}
	t.closed = true
	if t.err != nil {
		return t.err
	}
	if !t.opened {
		if _, err := io.WriteString(t.w, "[\n"); err != nil {
			t.err = err
			return t.err
		}
	}
	if _, err := io.WriteString(t.w, "\n]\n"); err != nil {
		t.err = err
	}
	return t.err
}
