package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// SpanEvent is one completed phase span as delivered to a SpanSink.
type SpanEvent struct {
	// Name is the phase name, e.g. "cell" or "simulate".
	Name string
	// Start and Duration bound the span in wall-clock time.
	Start    time.Time
	Duration time.Duration
	// Labels carry the span's dimensions (cell index, replica, ...).
	Labels []Label
	// PID is the process the span was recorded in — stamped by
	// SetSpanIdentity, preserved verbatim by EmitSpan — so spans shipped
	// across processes keep their origin when a fleet trace is assembled.
	// Zero means "this process" and renders as pid 1.
	PID int
}

// spanIdentity is the per-registry process identity stamped onto every
// span: the pid plus extra labels (e.g. worker=<id>).
type spanIdentity struct {
	pid    int
	labels []Label
}

// SetSpanIdentity configures the process identity injected into every
// span subsequently started on this registry: the pid lands in
// SpanEvent.PID and the labels are appended to each span's own labels.
// Fleet workers call it with their worker id so a coordinator can
// assemble one cross-process trace. Nil-safe.
func (r *Registry) SetSpanIdentity(pid int, labels ...Label) {
	if r == nil {
		return
	}
	r.ident.Store(&spanIdentity{pid: pid, labels: append([]Label(nil), labels...)})
}

// SpanSink receives completed spans. Implementations must be safe for
// concurrent use; the registry delivers spans from whichever goroutine
// ends them.
type SpanSink interface {
	RecordSpan(SpanEvent)
}

// SetSpanSink attaches (or, with nil, detaches) the span sink. Nil-safe.
func (r *Registry) SetSpanSink(s SpanSink) {
	if r == nil {
		return
	}
	if s == nil {
		r.sink.Store(nil)
		return
	}
	r.sink.Store(&sinkBox{s: s})
}

// spanSink returns the current sink, or nil.
func (r *Registry) spanSink() SpanSink {
	if r == nil {
		return nil
	}
	if b := r.sink.Load(); b != nil {
		return b.s
	}
	return nil
}

// Tracing reports whether a span sink is attached — hot paths use it to
// skip building span labels when no one is listening. Nil-safe.
func (r *Registry) Tracing() bool { return r.spanSink() != nil }

// SpanSink returns the currently attached sink, or nil — callers use it
// to compose an extra sink onto whatever is already wired:
// r.SetSpanSink(Tee(r.SpanSink(), extra)). Nil-safe.
func (r *Registry) SpanSink() SpanSink { return r.spanSink() }

// Span is one in-flight phase: started by Registry.StartSpan, finished
// by End. The zero Span (and any span started on a registry without a
// sink) is inert — End is a no-op and no clock is read — so span
// instrumentation costs nothing when tracing is off.
type Span struct {
	sink   SpanSink
	name   string
	labels []Label
	start  time.Time
	pid    int
}

// StartSpan opens a span. When the registry is nil or has no sink the
// returned span is inert and no time is read. If a span identity is
// configured (SetSpanIdentity) its labels are appended and its pid
// stamped onto the completed event.
func (r *Registry) StartSpan(name string, labels ...Label) Span {
	sink := r.spanSink()
	if sink == nil {
		return Span{}
	}
	sp := Span{sink: sink, name: name, labels: labels, start: time.Now()}
	if id := r.ident.Load(); id != nil {
		sp.pid = id.pid
		if len(id.labels) > 0 {
			sp.labels = append(append([]Label(nil), labels...), id.labels...)
		}
	}
	return sp
}

// Active reports whether ending the span will record anything.
func (s Span) Active() bool { return s.sink != nil }

// End completes the span and delivers it to the sink. No-op on an inert
// span.
func (s Span) End() {
	if s.sink == nil {
		return
	}
	s.sink.RecordSpan(SpanEvent{
		Name: s.name, Start: s.start, Duration: time.Since(s.start),
		Labels: s.labels, PID: s.pid,
	})
}

// EmitSpan delivers an already-completed span event to the registry's
// sink, preserving the event verbatim (no identity stamping) — the
// ingestion path for spans shipped from another process. No-op when the
// registry is nil or has no sink.
func (r *Registry) EmitSpan(e SpanEvent) {
	if sink := r.spanSink(); sink != nil {
		sink.RecordSpan(e)
	}
}

// TraceWriter is a SpanSink that streams spans as Chrome trace events:
// a JSON array of complete ("ph":"X") events, one event per line, so
// the output is both line-parsable (strip the trailing comma) and loads
// directly into chrome://tracing / https://ui.perfetto.dev. Timestamps
// are microseconds relative to the first recorded span. Close finishes
// the array; Chrome also accepts an unterminated file from a crashed
// process.
type TraceWriter struct {
	mu     sync.Mutex
	w      io.Writer
	base   time.Time
	opened bool
	closed bool
	err    error
}

// NewTraceWriter returns a trace sink writing to w.
func NewTraceWriter(w io.Writer) *TraceWriter {
	return &TraceWriter{w: w}
}

// RecordSpan implements SpanSink.
func (t *TraceWriter) RecordSpan(e SpanEvent) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed || t.err != nil {
		return
	}
	if !t.opened {
		t.opened = true
		t.base = e.Start
		if _, err := io.WriteString(t.w, "[\n"); err != nil {
			t.err = err
			return
		}
	} else if _, err := io.WriteString(t.w, ",\n"); err != nil {
		t.err = err
		return
	}
	var args strings.Builder
	for i, l := range e.Labels {
		if i > 0 {
			args.WriteByte(',')
		}
		fmt.Fprintf(&args, `"%s":"%s"`, l.Key, escapeLabelValue(l.Value))
	}
	pid := e.PID
	if pid == 0 {
		pid = 1
	}
	_, err := fmt.Fprintf(t.w,
		`{"name":"%s","ph":"X","pid":%d,"tid":1,"ts":%d,"dur":%d,"args":{%s}}`,
		escapeLabelValue(e.Name), pid, e.Start.Sub(t.base).Microseconds(),
		e.Duration.Microseconds(), args.String())
	if err != nil {
		t.err = err
	}
}

// Tee fans one span out to several sinks; nil sinks are skipped. A
// worker uses it to both write its local trace and buffer spans for the
// telemetry envelope.
func Tee(sinks ...SpanSink) SpanSink {
	out := make(teeSink, 0, len(sinks))
	for _, s := range sinks {
		if s != nil {
			out = append(out, s)
		}
	}
	return out
}

type teeSink []SpanSink

func (t teeSink) RecordSpan(e SpanEvent) {
	for _, s := range t {
		s.RecordSpan(e)
	}
}

// SpanCollector is a SpanSink that buffers completed spans until they
// are drained — the staging area between a worker's span stream and its
// periodic telemetry pushes. The buffer is bounded: beyond the limit new
// spans are counted as dropped rather than grown without bound, so a
// worker that outpaces its heartbeat loses trace detail, never memory.
type SpanCollector struct {
	mu      sync.Mutex
	limit   int
	buf     []SpanEvent
	dropped uint64
}

// NewSpanCollector returns a collector holding at most limit undrained
// spans (limit <= 0 means the default of 4096).
func NewSpanCollector(limit int) *SpanCollector {
	if limit <= 0 {
		limit = 4096
	}
	return &SpanCollector{limit: limit}
}

// RecordSpan implements SpanSink.
func (c *SpanCollector) RecordSpan(e SpanEvent) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.buf) >= c.limit {
		c.dropped++
		return
	}
	c.buf = append(c.buf, e)
}

// Drain returns the buffered spans and resets the buffer.
func (c *SpanCollector) Drain() []SpanEvent {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := c.buf
	c.buf = nil
	return out
}

// Dropped returns how many spans were discarded because the buffer was
// full.
func (c *SpanCollector) Dropped() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dropped
}

// Close terminates the JSON array. Safe to call once; further spans are
// dropped. Returns the first write error encountered, if any.
func (t *TraceWriter) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return t.err
	}
	t.closed = true
	if t.err != nil {
		return t.err
	}
	if !t.opened {
		if _, err := io.WriteString(t.w, "[\n"); err != nil {
			t.err = err
			return t.err
		}
	}
	if _, err := io.WriteString(t.w, "\n]\n"); err != nil {
		t.err = err
	}
	return t.err
}
