// Package obs is the unified observability layer: a dependency-free,
// race-safe Registry of counters, gauges and fixed-bucket histograms,
// plus lightweight phase spans, shared by every execution layer — the
// runner pool, the two-tier solve cache, the replica engine and the
// tracker daemon — and exportable as an expvar-style JSON snapshot
// (WriteJSON), Prometheus text exposition (WritePrometheus) and a
// Chrome-trace-event span stream (TraceWriter).
//
// # Nil-registry fast path
//
// Everything in this package is safe to call on a nil receiver: a nil
// *Registry hands out nil instruments, and Add/Inc/Set/Observe on a nil
// instrument are no-ops. Instrumented code therefore carries no
// conditional wiring — it resolves its instruments once (possibly from a
// nil registry) and uses them unconditionally:
//
//	cells := reg.Counter("runner_cells_completed_total") // nil-safe
//	...
//	cells.Inc() // no-op when reg was nil
//
// A disabled (nil-registry) instrumentation site costs one nil check and
// no allocation, which keeps hot loops within benchmark noise of
// uninstrumented code.
//
// # Identity and concurrency
//
// A metric is identified by its name plus an optional label set; the
// registry interns instruments so repeated lookups return the same
// value, and all instruments are updated with atomics — any number of
// goroutines may bump the same counter or observe into the same
// histogram concurrently with exports.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one key=value dimension of a metric or span. The JSON shape
// is part of the snapshot and telemetry wire formats.
type Label struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// kind discriminates the metric families a registry can hold.
type kind int

const (
	counterKind kind = iota
	gaugeKind
	histogramKind
)

func (k kind) String() string {
	switch k {
	case counterKind:
		return "counter"
	case gaugeKind:
		return "gauge"
	default:
		return "histogram"
	}
}

// instrument is one (name, labels) series: exactly one of the typed
// pointers is set, matching the family's kind.
type instrument struct {
	labels []Label // sorted by key
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family groups every label variant of one metric name.
type family struct {
	name   string
	kind   kind
	bounds []float64 // histogram families only
	order  []string  // label signatures in creation order
	insts  map[string]*instrument
}

// Registry holds the metric families and the optional span sink. The
// zero value is not usable; call New. A nil *Registry is the disabled
// layer: every method is a cheap no-op.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string
	sink     atomic.Pointer[sinkBox]
	ident    atomic.Pointer[spanIdentity]
}

// sinkBox wraps the SpanSink interface so it can live in an
// atomic.Pointer (interfaces cannot).
type sinkBox struct{ s SpanSink }

// New returns an empty registry.
func New() *Registry {
	return &Registry{families: map[string]*family{}}
}

// validName reports whether s is a legal Prometheus metric name.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// validLabelKey reports whether s is a legal Prometheus label name.
func validLabelKey(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		ok := r == '_' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// escapeLabelValue escapes a label value for the text exposition format.
func escapeLabelValue(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

// signature renders sorted labels as `k1="v1",k2="v2"` — the interning
// key within a family and the exported label block.
func signature(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var sb strings.Builder
	for i, l := range labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, `%s="%s"`, l.Key, escapeLabelValue(l.Value))
	}
	return sb.String()
}

// sortedLabels validates and returns a sorted copy of labels.
func sortedLabels(name string, labels []Label) []Label {
	out := append([]Label(nil), labels...)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	for i, l := range out {
		if !validLabelKey(l.Key) {
			panic(fmt.Sprintf("obs: invalid label key %q on metric %q", l.Key, name))
		}
		if i > 0 && out[i-1].Key == l.Key {
			panic(fmt.Sprintf("obs: duplicate label key %q on metric %q", l.Key, name))
		}
	}
	return out
}

// lookup interns the (name, labels) instrument, creating the family
// and/or instrument on first use. bounds is only consulted for new
// histogram families.
func (r *Registry) lookup(name string, k kind, bounds []float64, labels []Label) *instrument {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	ls := sortedLabels(name, labels)
	sig := signature(ls)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, kind: k, insts: map[string]*instrument{}}
		if k == histogramKind {
			f.bounds = normalizeBounds(bounds)
		}
		r.families[name] = f
		r.order = append(r.order, name)
	}
	if f.kind != k {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.kind, k))
	}
	inst, ok := f.insts[sig]
	if !ok {
		inst = &instrument{labels: ls}
		switch k {
		case counterKind:
			inst.c = &Counter{}
		case gaugeKind:
			inst.g = &Gauge{}
		case histogramKind:
			inst.h = newHistogram(f.bounds)
		}
		f.insts[sig] = inst
		f.order = append(f.order, sig)
	}
	return inst
}

// Counter returns the counter with the given name and labels, creating
// it on first use. Nil-safe: a nil registry returns a nil counter whose
// methods are no-ops.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, counterKind, nil, labels).c
}

// Gauge returns the gauge with the given name and labels, creating it
// on first use. Nil-safe like Counter.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, gaugeKind, nil, labels).g
}

// Histogram returns the histogram with the given name and labels,
// creating it on first use with the given bucket upper bounds (shared
// by every label variant of the name; the bounds of the first call
// win). Nil-safe like Counter.
func (r *Registry) Histogram(name string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	return r.lookup(name, histogramKind, bounds, labels).h
}

// Counter is a monotonically increasing event count. All methods are
// nil-safe no-ops on a nil receiver.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n events.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous float64 value. All methods are nil-safe
// no-ops on a nil receiver.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adds delta to the gauge (atomically, via compare-and-swap).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 on a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}
