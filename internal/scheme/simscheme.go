package scheme

import "fmt"

// SimScheme is the shared numeric scheme identifier of the two simulators.
// internal/eventsim (flow-level) and internal/swarm (chunk-level) used to
// declare private copies of this enum with conflicting numberings; both now
// alias this type, so a scheme value can flow from a CLI flag through
// internal/sim into either simulator without a translation table.
//
// The numbering follows the flow-level simulator's original iota order —
// the only one of the two that covers all four schemes. The chunk-level
// swarm supports SimMFCD, SimCMFSD and SimMTSD only: MTCD runs each
// torrent in its own swarm, so inside a single shared swarm it is
// chunk-for-chunk identical to MFCD (swarm.Config.Validate rejects it).
type SimScheme int

// The four schemes of the paper, in flow-level numbering.
const (
	// SimMTCD: multi-torrent concurrent downloading (Section 3.2).
	SimMTCD SimScheme = iota
	// SimMTSD: multi-torrent sequential downloading (Section 3.3).
	SimMTSD
	// SimMFCD: multi-file torrent concurrent downloading (Section 3.4).
	SimMFCD
	// SimCMFSD: collaborative multi-file torrent sequential downloading —
	// the paper's proposal (Section 3.5).
	SimCMFSD
)

// SimSchemes lists all simulator schemes in paper order.
var SimSchemes = []SimScheme{SimMTCD, SimMTSD, SimMFCD, SimCMFSD}

// String implements fmt.Stringer with the paper's scheme names.
func (s SimScheme) String() string {
	switch s {
	case SimMTCD:
		return "MTCD"
	case SimMTSD:
		return "MTSD"
	case SimMFCD:
		return "MFCD"
	case SimCMFSD:
		return "CMFSD"
	default:
		return fmt.Sprintf("SimScheme(%d)", int(s))
	}
}

// Sym returns the analytical-model identifier with the same name, linking
// a simulator scheme to its fluid model (scheme.New / scheme.Evaluate).
func (s SimScheme) Sym() (Scheme, error) {
	switch s {
	case SimMTCD, SimMTSD, SimMFCD, SimCMFSD:
		return Scheme(s.String()), nil
	default:
		return "", fmt.Errorf("scheme: unknown scheme %d", int(s))
	}
}

// ParseSim converts a scheme name to its simulator identifier.
func ParseSim(s string) (SimScheme, error) {
	for _, sc := range SimSchemes {
		if sc.String() == s {
			return sc, nil
		}
	}
	return 0, fmt.Errorf("scheme: unknown scheme %q", s)
}
