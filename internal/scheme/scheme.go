// Package scheme provides the unified constructor for the paper's four
// downloading schemes. Every scheme package exposes its own constructor
// with a slightly different signature (mtcd.New and mtsd.New take the
// fluid parameters and a correlation model; cmfsd.New additionally takes
// the allocation ratio ρ; MFCD has no model type at all, only the
// cmfsd.EvaluateMFCD function). Callers that dispatch on a Scheme value —
// the CLIs, the experiment generators, the sweep runner — previously each
// re-implemented the same switch statement. scheme.New is that switch,
// written once: it returns a Model exposing the common Evaluate surface.
//
// The concrete constructors remain available for callers that need the
// scheme-specific machinery (ODE right-hand sides, steady-state vectors,
// stability reports).
package scheme

import (
	"fmt"
	"math"

	"mfdl/internal/cmfsd"
	"mfdl/internal/correlation"
	"mfdl/internal/fluid"
	"mfdl/internal/metrics"
	"mfdl/internal/mtcd"
	"mfdl/internal/mtsd"
)

// Scheme identifies one of the paper's downloading schemes.
type Scheme string

// The four schemes of the paper.
const (
	// MTCD: multi-torrent concurrent downloading (Section 3.2).
	MTCD Scheme = "MTCD"
	// MTSD: multi-torrent sequential downloading (Section 3.3).
	MTSD Scheme = "MTSD"
	// MFCD: multi-file torrent concurrent downloading (Section 3.4).
	MFCD Scheme = "MFCD"
	// CMFSD: collaborative multi-file torrent sequential downloading —
	// the paper's proposal (Section 3.5).
	CMFSD Scheme = "CMFSD"
)

// Schemes lists all schemes in paper order.
var Schemes = []Scheme{MTCD, MTSD, MFCD, CMFSD}

// Parse converts a string to a Scheme.
func Parse(s string) (Scheme, error) {
	for _, sc := range Schemes {
		if string(sc) == s {
			return sc, nil
		}
	}
	return "", fmt.Errorf("scheme: unknown scheme %q", s)
}

// Options carries the per-scheme knobs of New. The zero value is the
// paper's recommended initial setting for every scheme.
type Options struct {
	// Rho is the CMFSD bandwidth allocation ratio ρ ∈ [0, 1]; the other
	// schemes ignore it.
	Rho float64
	// Theta is the downloader abort rate θ ≥ 0 (Qiu–Srikant churn). All
	// four schemes honor it: θ = 0 keeps the paper's closed forms, θ > 0
	// switches each model to its numeric abort-aware steady state.
	Theta float64
}

// Model is the common evaluation surface of the four schemes: a
// constructed, validated model that can be solved into the shared metrics
// types.
type Model interface {
	// Evaluate computes the steady-state per-class metrics.
	Evaluate() (*metrics.SchemeResult, error)
}

// mfcdModel adapts the MFCD closed form (a function, not a type) to the
// Model interface.
type mfcdModel struct {
	params fluid.Params
	corr   *correlation.Model
	theta  float64
}

func (m mfcdModel) Evaluate() (*metrics.SchemeResult, error) {
	if m.theta == 0 {
		return cmfsd.EvaluateMFCD(m.params, m.corr)
	}
	// MFCD ≡ MTCD in the fluid model; the equivalence carries the abort
	// term along, so the θ > 0 path relabels the MTCD result too.
	mt, err := mtcd.New(m.params, m.corr)
	if err != nil {
		return nil, err
	}
	mt.Theta = m.theta
	res, err := mt.Evaluate()
	if err != nil {
		return nil, err
	}
	res.Scheme = cmfsd.MFCDScheme
	return res, nil
}

// New constructs the model for the named scheme. It is the single dispatch
// point over the per-package constructors.
func New(s Scheme, params fluid.Params, corr *correlation.Model, opts Options) (Model, error) {
	if opts.Theta < 0 || math.IsNaN(opts.Theta) || math.IsInf(opts.Theta, 0) {
		return nil, fmt.Errorf("scheme: θ = %v must be a finite rate >= 0", opts.Theta)
	}
	switch s {
	case MTCD:
		m, err := mtcd.New(params, corr)
		if err != nil {
			return nil, err
		}
		m.Theta = opts.Theta
		return m, nil
	case MTSD:
		m, err := mtsd.New(params, corr)
		if err != nil {
			return nil, err
		}
		m.Theta = opts.Theta
		return m, nil
	case MFCD:
		if err := params.Validate(); err != nil {
			return nil, err
		}
		if err := corr.Validate(); err != nil {
			return nil, err
		}
		return mfcdModel{params: params, corr: corr, theta: opts.Theta}, nil
	case CMFSD:
		m, err := cmfsd.New(params, corr, opts.Rho)
		if err != nil {
			return nil, err
		}
		m.Theta = opts.Theta
		return m, nil
	default:
		return nil, fmt.Errorf("scheme: unknown scheme %q", s)
	}
}

// Evaluate constructs and solves the named scheme in one call.
func Evaluate(s Scheme, params fluid.Params, corr *correlation.Model, opts Options) (*metrics.SchemeResult, error) {
	m, err := New(s, params, corr, opts)
	if err != nil {
		return nil, err
	}
	return m.Evaluate()
}
