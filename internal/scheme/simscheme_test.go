package scheme

import "testing"

// TestSimSchemeNumbering pins the shared numeric values: both simulators
// alias these constants, so renumbering them would silently change any
// caller that stores scheme values numerically.
func TestSimSchemeNumbering(t *testing.T) {
	want := map[SimScheme]int{SimMTCD: 0, SimMTSD: 1, SimMFCD: 2, SimCMFSD: 3}
	for sc, n := range want {
		if int(sc) != n {
			t.Errorf("%v = %d, want %d", sc, int(sc), n)
		}
	}
	if len(SimSchemes) != len(want) {
		t.Fatalf("SimSchemes has %d entries, want %d", len(SimSchemes), len(want))
	}
}

func TestSimSchemeStringRoundTrip(t *testing.T) {
	for _, sc := range SimSchemes {
		got, err := ParseSim(sc.String())
		if err != nil || got != sc {
			t.Errorf("ParseSim(%q) = %v, %v; want %v", sc.String(), got, err, sc)
		}
	}
	if _, err := ParseSim("FTP"); err == nil {
		t.Error("ParseSim accepted an unknown name")
	}
	if s := SimScheme(42).String(); s != "SimScheme(42)" {
		t.Errorf("invalid String() = %q", s)
	}
}

// TestSimSchemeSym checks the bridge to the analytical-model identifiers.
func TestSimSchemeSym(t *testing.T) {
	want := map[SimScheme]Scheme{SimMTCD: MTCD, SimMTSD: MTSD, SimMFCD: MFCD, SimCMFSD: CMFSD}
	for sc, sym := range want {
		got, err := sc.Sym()
		if err != nil || got != sym {
			t.Errorf("%v.Sym() = %v, %v; want %v", sc, got, err, sym)
		}
	}
	if _, err := SimScheme(-1).Sym(); err == nil {
		t.Error("Sym accepted an invalid scheme")
	}
}
