package scheme

import (
	"math"
	"testing"

	"mfdl/internal/cmfsd"
	"mfdl/internal/correlation"
	"mfdl/internal/fluid"
	"mfdl/internal/mtcd"
	"mfdl/internal/mtsd"
)

func model(t *testing.T, p float64) *correlation.Model {
	t.Helper()
	corr, err := correlation.New(10, p, 1)
	if err != nil {
		t.Fatal(err)
	}
	return corr
}

func TestParse(t *testing.T) {
	for _, sc := range Schemes {
		got, err := Parse(string(sc))
		if err != nil || got != sc {
			t.Fatalf("Parse(%q) = %v, %v", sc, got, err)
		}
	}
	if _, err := Parse("FTP"); err == nil {
		t.Fatal("unknown scheme parsed")
	}
}

// The factory must agree exactly with the concrete constructors it wraps.
func TestNewMatchesConcreteConstructors(t *testing.T) {
	corr := model(t, 0.9)
	params := fluid.PaperParams

	mc, err := mtcd.New(params, corr)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := mtsd.New(params, corr)
	if err != nil {
		t.Fatal(err)
	}
	mf, err := cmfsd.New(params, corr, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	want := map[Scheme]float64{}
	for sc, m := range map[Scheme]Model{MTCD: mc, MTSD: ms, CMFSD: mf} {
		res, err := m.Evaluate()
		if err != nil {
			t.Fatal(err)
		}
		want[sc] = res.AvgOnlinePerFile()
	}
	mfcd, err := cmfsd.EvaluateMFCD(params, corr)
	if err != nil {
		t.Fatal(err)
	}
	want[MFCD] = mfcd.AvgOnlinePerFile()

	for _, sc := range Schemes {
		res, err := Evaluate(sc, params, corr, Options{Rho: 0.3})
		if err != nil {
			t.Fatalf("%s: %v", sc, err)
		}
		if res.Scheme != string(sc) {
			t.Fatalf("%s: result labelled %q", sc, res.Scheme)
		}
		if got := res.AvgOnlinePerFile(); got != want[sc] {
			t.Fatalf("%s: factory %v != concrete %v", sc, got, want[sc])
		}
	}
}

func TestNewRejectsBadInputs(t *testing.T) {
	corr := model(t, 0.5)
	if _, err := New(Scheme("bogus"), fluid.PaperParams, corr, Options{}); err == nil {
		t.Fatal("bogus scheme constructed")
	}
	bad := fluid.Params{Mu: -1, Eta: 0.5, Gamma: 0.05}
	for _, sc := range Schemes {
		if _, err := New(sc, bad, corr, Options{}); err == nil {
			t.Fatalf("%s accepted μ<0", sc)
		}
	}
	if _, err := New(CMFSD, fluid.PaperParams, corr, Options{Rho: 2}); err == nil {
		t.Fatal("CMFSD accepted ρ=2")
	}
}

func TestEvaluateAllPositive(t *testing.T) {
	corr := model(t, 0.7)
	for _, sc := range Schemes {
		res, err := Evaluate(sc, fluid.PaperParams, corr, Options{})
		if err != nil {
			t.Fatalf("%s: %v", sc, err)
		}
		if v := res.AvgOnlinePerFile(); math.IsNaN(v) || v <= 0 {
			t.Fatalf("%s: bad average %v", sc, v)
		}
	}
}
