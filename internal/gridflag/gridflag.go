// Package gridflag parses the grid-description flag vocabulary shared by
// the sweep front-ends (cmd/sweep, cmd/sweepd): a comma-separated list of
// dimension names plus -from/-to/-steps lists that are either one value
// per dimension or a single value broadcast to all of them.
package gridflag

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"mfdl/internal/runner"
)

// Floats parses a comma-separated float list and broadcasts a single
// value to n entries. NaN and ±Inf are rejected: they would silently
// produce a degenerate grid.
func Floats(flagName, s string, n int) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, part := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("-%s: invalid value %q", flagName, part)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("-%s: value %q is not finite", flagName, part)
		}
		out = append(out, v)
	}
	return broadcast(flagName, out, n)
}

// Ints is Floats for integer lists.
func Ints(flagName, s string, n int) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, part := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("-%s: invalid value %q", flagName, part)
		}
		out = append(out, v)
	}
	return broadcast(flagName, out, n)
}

// broadcast expands a 1-element list to n entries and rejects any other
// length mismatch.
func broadcast[T any](flagName string, vals []T, n int) ([]T, error) {
	if len(vals) == n {
		return vals, nil
	}
	if len(vals) == 1 {
		out := make([]T, n)
		for i := range out {
			out[i] = vals[0]
		}
		return out, nil
	}
	return nil, fmt.Errorf("-%s: got %d values for %d dimensions", flagName, len(vals), n)
}

// Grid assembles the full -dim/-from/-to/-steps vocabulary into a
// runner.Grid: each dimension sweeps Linspace(from, to, steps).
func Grid(dim, from, to, steps string) (runner.Grid, error) {
	names := strings.Split(dim, ",")
	for i, name := range names {
		names[i] = strings.TrimSpace(name)
	}
	froms, err := Floats("from", from, len(names))
	if err != nil {
		return runner.Grid{}, err
	}
	tos, err := Floats("to", to, len(names))
	if err != nil {
		return runner.Grid{}, err
	}
	stepsN, err := Ints("steps", steps, len(names))
	if err != nil {
		return runner.Grid{}, err
	}
	dims := make([]runner.Dim, len(names))
	for i, name := range names {
		if froms[i] > tos[i] {
			return runner.Grid{}, fmt.Errorf("dimension %s: -from %g > -to %g", name, froms[i], tos[i])
		}
		if stepsN[i] < 1 {
			return runner.Grid{}, fmt.Errorf("dimension %s: steps must be >= 1, got %d", name, stepsN[i])
		}
		dims[i] = runner.Dim{Name: name, Values: runner.Linspace(froms[i], tos[i], stepsN[i])}
	}
	return runner.NewGrid(dims...)
}
