package cmfsd

import (
	"math"
	"testing"
	"testing/quick"

	"mfdl/internal/correlation"
	"mfdl/internal/fluid"
	"mfdl/internal/numeric/ode"
)

// TestMassBalanceIdentity checks that Eq. (5) preserves the global mass
// balance d/dt(ΣX + ΣY) = Σλ_i − γ·ΣY at arbitrary (positive) states, not
// just at the fixed point: the internal flux terms must telescope exactly.
func TestMassBalanceIdentity(t *testing.T) {
	m := model(t, 6, 0.8, 0.3)
	f := func(seed uint8) bool {
		state := make([]float64, m.Dim())
		v := uint32(seed) + 1
		for i := range state {
			// Cheap deterministic pseudo-random positives.
			v = v*1664525 + 1013904223
			state[i] = float64(v%1000)/100 + 0.01
		}
		dst := make([]float64, m.Dim())
		m.RHS(0, state, dst)
		var dTotal, yTotal, lambdaTotal float64
		for _, d := range dst {
			dTotal += d
		}
		for i := 1; i <= 6; i++ {
			yTotal += state[m.YIndex(i)]
			lambdaTotal += m.Corr.UserRate(i)
		}
		want := lambdaTotal - m.Gamma*yTotal
		return math.Abs(dTotal-want) < 1e-9*(1+math.Abs(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestStageFluxEqualAtSteadyState checks the pipeline property: at the
// fixed point the completion flux of every stage j of class i equals the
// class arrival rate λ_i.
func TestStageFluxEqualAtSteadyState(t *testing.T) {
	m := model(t, 8, 0.7, 0.2)
	ss, err := m.SteadyState(ode.SteadyStateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Reconstruct the flux terms exactly as RHS does.
	totalX, virtMass, seedMass := 0.0, 0.0, 0.0
	for i := 1; i <= 8; i++ {
		for j := 1; j <= i; j++ {
			x := ss[m.XIndex(i, j)]
			totalX += x
			virtMass += (1 - m.P(i, j)) * x
		}
		seedMass += ss[m.YIndex(i)]
	}
	perCapita := m.Mu * (virtMass + seedMass) / totalX
	for i := 1; i <= 8; i++ {
		lambda := m.Corr.UserRate(i)
		if lambda < 1e-12 {
			continue
		}
		for j := 1; j <= i; j++ {
			x := ss[m.XIndex(i, j)]
			flux := m.Mu*m.Eta*m.P(i, j)*x + x*perCapita
			if math.Abs(flux-lambda) > 1e-6+1e-4*lambda {
				t.Fatalf("class %d stage %d flux %v, want λ=%v", i, j, flux, lambda)
			}
		}
	}
}

// TestDOPRIAgreesWithRK4 integrates Eq. (5) with the adaptive RK45 and
// checks it lands on the same steady state as the fixed-step RK4
// relaxation.
func TestDOPRIAgreesWithRK4(t *testing.T) {
	m := model(t, 6, 0.9, 0.1)
	ssRK4, err := m.SteadyState(ode.SteadyStateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	state := m.InitialState()
	if _, err := ode.DOPRI(m.RHS, 0, 20000, state, ode.DOPRIOptions{RTol: 1e-9, ATol: 1e-11}); err != nil {
		t.Fatal(err)
	}
	for i := range state {
		if math.Abs(state[i]-ssRK4[i]) > 1e-4*(1+ssRK4[i]) {
			t.Fatalf("component %d: DOPRI %v vs RK4 %v", i, state[i], ssRK4[i])
		}
	}
}

// TestOnlineTimeDominatesSeedTime checks the structural lower bound: a
// class-i peer's online time is at least the seeding time 1/γ plus i times
// the fastest conceivable per-file download (service can't exceed the
// whole swarm's seed-like pool, but per-file time is at least 1/(μη+μ·...);
// we use the loose bound online > 1/γ).
func TestOnlineTimeDominatesSeedTime(t *testing.T) {
	for _, rho := range []float64{0, 0.5, 1} {
		m := model(t, 10, 0.9, rho)
		res, err := m.Evaluate()
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range res.Classes {
			if c.EntryRate <= 0 {
				continue
			}
			if c.OnlineTime <= 1/m.Gamma {
				t.Fatalf("ρ=%v class %d online %v not above seeding floor %v",
					rho, c.Class, c.OnlineTime, 1/m.Gamma)
			}
			if c.DownloadTime <= 0 {
				t.Fatalf("ρ=%v class %d download %v", rho, c.Class, c.DownloadTime)
			}
		}
	}
}

// TestRhoMonotonicityPerClass strengthens the figure-level check: every
// class (not just the average) weakly prefers smaller ρ at high
// correlation.
func TestRhoMonotonicityPerClass(t *testing.T) {
	corr, err := correlation.New(10, 0.9, 1)
	if err != nil {
		t.Fatal(err)
	}
	var prev []float64
	for _, rho := range []float64{0, 0.5, 1} {
		m, err := New(fluid.PaperParams, corr, rho)
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Evaluate()
		if err != nil {
			t.Fatal(err)
		}
		var cur []float64
		for _, c := range res.Classes {
			cur = append(cur, c.OnlineTime)
		}
		if prev != nil {
			for i := range cur {
				if res.Classes[i].EntryRate <= 0 {
					continue
				}
				if cur[i] < prev[i]-1e-3 {
					t.Fatalf("class %d online time decreased from ρ=%v: %v -> %v",
						i+1, rho, prev[i], cur[i])
				}
			}
		}
		prev = cur
	}
}

// TestHybridMatchesRelaxed cross-validates the Newton-polished steady
// state against the pure RK4 relaxation.
func TestHybridMatchesRelaxed(t *testing.T) {
	for _, rho := range []float64{0, 0.4, 1} {
		m := model(t, 8, 0.8, rho)
		fast, err := m.SteadyState(ode.SteadyStateOptions{})
		if err != nil {
			t.Fatal(err)
		}
		slow, err := m.SteadyStateRelaxed(ode.SteadyStateOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for i := range fast {
			if math.Abs(fast[i]-slow[i]) > 1e-5*(1+slow[i]) {
				t.Fatalf("ρ=%v component %d: hybrid %v vs relaxed %v", rho, i, fast[i], slow[i])
			}
		}
		// The polished answer must be at least as good a fixed point.
		if fluid.Residual(m, fast) > 1e-9 {
			t.Fatalf("ρ=%v hybrid residual %v", rho, fluid.Residual(m, fast))
		}
	}
}
