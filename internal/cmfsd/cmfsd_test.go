package cmfsd

import (
	"math"
	"testing"

	"mfdl/internal/correlation"
	"mfdl/internal/fluid"
	"mfdl/internal/numeric/ode"
)

func model(t *testing.T, k int, p, rho float64) *Model {
	t.Helper()
	corr, err := correlation.New(k, p, 1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(fluid.PaperParams, corr, rho)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewValidation(t *testing.T) {
	corr, _ := correlation.New(10, 0.5, 1)
	if _, err := New(fluid.PaperParams, nil, 0.5); err == nil {
		t.Fatal("nil correlation accepted")
	}
	if _, err := New(fluid.PaperParams, corr, -0.1); err == nil {
		t.Fatal("ρ<0 accepted")
	}
	if _, err := New(fluid.PaperParams, corr, 1.1); err == nil {
		t.Fatal("ρ>1 accepted")
	}
	zeroP, _ := correlation.New(10, 0, 1)
	if _, err := New(fluid.PaperParams, zeroP, 0.5); err == nil {
		t.Fatal("p=0 accepted")
	}
}

func TestPFunction(t *testing.T) {
	m := model(t, 5, 0.5, 0.3)
	if m.P(1, 1) != 1 {
		t.Fatal("P(1,1) != 1")
	}
	if m.P(3, 1) != 1 {
		t.Fatal("P(3,1) != 1")
	}
	if m.P(3, 2) != 0.3 {
		t.Fatal("P(3,2) != ρ")
	}
	if m.P(2, 2) != 0.3 {
		t.Fatal("P(2,2) != ρ")
	}
}

func TestIndexing(t *testing.T) {
	m := model(t, 4, 0.5, 0.5)
	if m.Dim() != 4*5/2+4 {
		t.Fatalf("dim = %d", m.Dim())
	}
	seen := map[int]bool{}
	for i := 1; i <= 4; i++ {
		for j := 1; j <= i; j++ {
			idx := m.XIndex(i, j)
			if idx < 0 || idx >= 10 || seen[idx] {
				t.Fatalf("XIndex(%d,%d) = %d invalid/duplicate", i, j, idx)
			}
			seen[idx] = true
		}
	}
	for i := 1; i <= 4; i++ {
		idx := m.YIndex(i)
		if idx < 10 || idx >= 14 || seen[idx] {
			t.Fatalf("YIndex(%d) = %d invalid/duplicate", i, idx)
		}
		seen[idx] = true
	}
}

func TestIndexPanics(t *testing.T) {
	m := model(t, 4, 0.5, 0.5)
	for _, fn := range []func(){
		func() { m.XIndex(2, 3) }, // j > i
		func() { m.XIndex(5, 1) }, // i > K
		func() { m.XIndex(1, 0) }, // j < 1
		func() { m.YIndex(0) },
		func() { m.YIndex(5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic for out-of-range index")
				}
			}()
			fn()
		}()
	}
}

func TestK1DegeneratesToSingleTorrent(t *testing.T) {
	// With one file, CMFSD is the plain single torrent: T = 60, online 80.
	m := model(t, 1, 0.9, 0.5)
	res, err := m.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	c, _ := res.Class(1)
	if math.Abs(c.DownloadTime-60) > 0.01 {
		t.Fatalf("K=1 download time %v, want 60", c.DownloadTime)
	}
	if math.Abs(c.OnlineTime-80) > 0.01 {
		t.Fatalf("K=1 online time %v, want 80", c.OnlineTime)
	}
}

func TestK2FullCorrelationRho0HandSolved(t *testing.T) {
	// Hand-solved steady state for K=2, p=1, ρ=0, λ₀=1 (see DESIGN.md
	// notes): x^{2,1} ≈ 37.91, x^{2,2} ≈ 61.05, y² = 20.
	m := model(t, 2, 1, 0)
	ss, err := m.SteadyState(ode.SteadyStateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	x21 := ss[m.XIndex(2, 1)]
	x22 := ss[m.XIndex(2, 2)]
	y2 := ss[m.YIndex(2)]
	// Exact root: x22 = (−70 + √36900)/2, x21 = 0.02·x22² − 0.6·x22.
	wantX22 := (-70 + math.Sqrt(36900)) / 2
	wantX21 := 0.02*wantX22*wantX22 - 0.6*wantX22
	if math.Abs(x22-wantX22) > 1e-3 {
		t.Fatalf("x^{2,2} = %v, want %v", x22, wantX22)
	}
	if math.Abs(x21-wantX21) > 1e-3 {
		t.Fatalf("x^{2,1} = %v, want %v", x21, wantX21)
	}
	if math.Abs(y2-20) > 1e-3 {
		t.Fatalf("y² = %v, want 20", y2)
	}
}

func TestRho1EquivalentToMFCD(t *testing.T) {
	// Paper Section 4.2.2: with ρ = 1 the system performs as MFCD.
	for _, p := range []float64{0.3, 0.9, 1.0} {
		m := model(t, 10, p, 1)
		res, err := m.Evaluate()
		if err != nil {
			t.Fatalf("p=%v: %v", p, err)
		}
		mfcd, err := EvaluateMFCD(fluid.PaperParams, m.Corr)
		if err != nil {
			t.Fatal(err)
		}
		got := res.AvgOnlinePerFile()
		want := mfcd.AvgOnlinePerFile()
		if math.Abs(got-want) > 0.02*want {
			t.Fatalf("p=%v: CMFSD(ρ=1) avg %v, MFCD %v", p, got, want)
		}
	}
}

func TestSeedFlowBalance(t *testing.T) {
	// At the fixed point γ·y_i = λ_i for every class with arrivals.
	m := model(t, 10, 0.7, 0.2)
	ss, err := m.SteadyState(ode.SteadyStateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 10; i++ {
		rate := m.Corr.UserRate(i)
		got := m.Gamma * ss[m.YIndex(i)]
		if math.Abs(got-rate) > 1e-6+1e-4*rate {
			t.Fatalf("class %d: γ·y = %v, λ = %v", i, got, rate)
		}
	}
}

func TestRho0BeatsMFCDAtHighCorrelation(t *testing.T) {
	// Figure 4(a) headline: at high p, ρ=0 improves markedly over MFCD.
	m := model(t, 10, 0.9, 0)
	res, err := m.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	mfcd, err := EvaluateMFCD(fluid.PaperParams, m.Corr)
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgOnlinePerFile() >= 0.8*mfcd.AvgOnlinePerFile() {
		t.Fatalf("ρ=0 avg %v not clearly better than MFCD %v",
			res.AvgOnlinePerFile(), mfcd.AvgOnlinePerFile())
	}
}

func TestAvgOnlineMonotoneInRho(t *testing.T) {
	// Figure 4(a): smaller ρ (more collaboration) is never worse.
	prev := -math.MaxFloat64
	for _, rho := range []float64{0, 0.25, 0.5, 0.75, 1} {
		m := model(t, 10, 0.9, rho)
		res, err := m.Evaluate()
		if err != nil {
			t.Fatalf("ρ=%v: %v", rho, err)
		}
		avg := res.AvgOnlinePerFile()
		if avg < prev-1e-6 {
			t.Fatalf("avg online per file not monotone at ρ=%v: %v < %v", rho, avg, prev)
		}
		prev = avg
	}
}

func TestUnfairnessAtLowCorrelationHighRho(t *testing.T) {
	// Figure 4(c): at p=0.1, class-1 peers download faster per file than
	// class-10 peers, and the gap widens with ρ large.
	m := model(t, 10, 0.1, 0.9)
	res, err := m.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	c1, _ := res.Class(1)
	c10, _ := res.Class(10)
	if c1.DownloadPerFile() >= c10.DownloadPerFile() {
		t.Fatalf("expected class-1 advantage: class1 %v, class10 %v",
			c1.DownloadPerFile(), c10.DownloadPerFile())
	}
}

func TestStabilityAtOperatingPoint(t *testing.T) {
	m := model(t, 10, 0.9, 0.1)
	ss, err := m.SteadyState(ode.SteadyStateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := m.Stability(ss)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Stable {
		t.Fatalf("CMFSD fixed point unstable: abscissa %v", rep.Abscissa)
	}
}

func TestMetricsFromStateRejectsBadDim(t *testing.T) {
	m := model(t, 5, 0.5, 0.5)
	if _, err := m.MetricsFromState(make([]float64, 3)); err == nil {
		t.Fatal("bad dimension accepted")
	}
}

func TestLambda0InvarianceOfTimes(t *testing.T) {
	// The model is homogeneous of degree 1 in populations: scaling λ₀
	// leaves all per-class times unchanged.
	corrA, _ := correlation.New(6, 0.8, 1)
	corrB, _ := correlation.New(6, 0.8, 5)
	ma, _ := New(fluid.PaperParams, corrA, 0.3)
	mb, _ := New(fluid.PaperParams, corrB, 0.3)
	ra, err := ma.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	rb, err := mb.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 6; i++ {
		ca, _ := ra.Class(i)
		cb, _ := rb.Class(i)
		if ca.EntryRate == 0 {
			continue
		}
		if math.Abs(ca.DownloadTime-cb.DownloadTime) > 1e-3*(1+ca.DownloadTime) {
			t.Fatalf("class %d time changed with λ₀: %v vs %v", i, ca.DownloadTime, cb.DownloadTime)
		}
	}
}

func TestNonNegativityAlongTrajectory(t *testing.T) {
	m := model(t, 6, 0.8, 0.2)
	samples, err := ode.Trajectory(ode.NewRK4(m.Dim()), m.RHS, 0, 2000, m.InitialState(), 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range samples {
		for idx, v := range s.X {
			if v < -1e-6 {
				t.Fatalf("state %d negative (%v) at t=%v", idx, v, s.T)
			}
		}
	}
}

func BenchmarkSteadyStateK10(b *testing.B) {
	corr, _ := correlation.New(10, 0.9, 1)
	for i := 0; i < b.N; i++ {
		m, _ := New(fluid.PaperParams, corr, 0.1)
		if _, err := m.SteadyState(ode.SteadyStateOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}
