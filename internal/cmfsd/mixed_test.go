package cmfsd

import (
	"math"
	"testing"

	"mfdl/internal/correlation"
	"mfdl/internal/fluid"
)

func mixedModel(t *testing.T, p float64, groups []Group) *Mixed {
	t.Helper()
	corr, err := correlation.New(10, p, 1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMixed(fluid.PaperParams, corr, groups)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMixedValidation(t *testing.T) {
	corr, _ := correlation.New(10, 0.9, 1)
	if _, err := NewMixed(fluid.PaperParams, corr, nil); err == nil {
		t.Fatal("no groups accepted")
	}
	if _, err := NewMixed(fluid.PaperParams, corr, []Group{{Fraction: 0.5, Rho: 0}}); err == nil {
		t.Fatal("fractions not summing to 1 accepted")
	}
	if _, err := NewMixed(fluid.PaperParams, corr, []Group{{Fraction: 1, Rho: 2}}); err == nil {
		t.Fatal("ρ=2 accepted")
	}
	if _, err := NewMixed(fluid.PaperParams, nil, []Group{{Fraction: 1, Rho: 0}}); err == nil {
		t.Fatal("nil correlation accepted")
	}
}

func TestMixedSingleGroupMatchesPlainModel(t *testing.T) {
	// One group with ρ = 0.3 must reproduce the plain CMFSD model.
	mixed := mixedModel(t, 0.9, []Group{{Name: "all", Fraction: 1, Rho: 0.3}})
	plain := model(t, 10, 0.9, 0.3)
	mr, err := mixed.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	pr, err := plain.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	got := mr.AvgOnlinePerFile()
	want := pr.AvgOnlinePerFile()
	if math.Abs(got-want) > 1e-3*want {
		t.Fatalf("single-group mixed %v != plain %v", got, want)
	}
}

func TestMixedIndexingDisjoint(t *testing.T) {
	m := mixedModel(t, 0.9, []Group{
		{Name: "a", Fraction: 0.5, Rho: 0},
		{Name: "b", Fraction: 0.5, Rho: 1},
	})
	seen := map[int]bool{}
	for g := 0; g < 2; g++ {
		for i := 1; i <= 10; i++ {
			for j := 1; j <= i; j++ {
				idx := m.XIndex(g, i, j)
				if idx < 0 || idx >= m.Dim() || seen[idx] {
					t.Fatalf("XIndex(%d,%d,%d) = %d duplicate/out of range", g, i, j, idx)
				}
				seen[idx] = true
			}
			idx := m.YIndex(g, i)
			if idx < 0 || idx >= m.Dim() || seen[idx] {
				t.Fatalf("YIndex(%d,%d) = %d duplicate/out of range", g, i, idx)
			}
			seen[idx] = true
		}
	}
	if len(seen) != m.Dim() {
		t.Fatalf("indices cover %d of %d states", len(seen), m.Dim())
	}
}

func TestCheatingPaysIndividually(t *testing.T) {
	// With obedient majority at ρ = 0, a small cheating group free-rides:
	// its multi-file classes must download faster than obedient ones.
	m := mixedModel(t, 0.9, []Group{
		{Name: "obedient", Fraction: 0.9, Rho: 0},
		{Name: "cheater", Fraction: 0.1, Rho: 1},
	})
	res, err := m.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	ob, _ := res.Groups[0].Result.Class(10)
	ch, _ := res.Groups[1].Result.Class(10)
	if ch.DownloadTime >= ob.DownloadTime {
		t.Fatalf("cheaters (%v) should beat obedient (%v)", ch.DownloadTime, ob.DownloadTime)
	}
}

func TestCheatingHurtsEveryoneCollectively(t *testing.T) {
	// System-wide performance degrades monotonically with the cheater
	// fraction (the fluid counterpart of the Adapt sweep E8).
	prev := -math.MaxFloat64
	for _, cf := range []float64{0, 0.25, 0.5, 0.75, 1} {
		groups := []Group{
			{Name: "obedient", Fraction: 1 - cf, Rho: 0},
			{Name: "cheater", Fraction: cf, Rho: 1},
		}
		if cf == 0 {
			groups = groups[:1]
			groups[0].Fraction = 1
		}
		if cf == 1 {
			groups = groups[1:]
			groups[0].Fraction = 1
		}
		m := mixedModel(t, 0.9, groups)
		res, err := m.Evaluate()
		if err != nil {
			t.Fatalf("cf=%v: %v", cf, err)
		}
		avg := res.AvgOnlinePerFile()
		if avg < prev-1e-6 {
			t.Fatalf("system average not monotone at cheater fraction %v: %v < %v", cf, avg, prev)
		}
		prev = avg
	}
}

func TestAllCheatersEqualsMFCD(t *testing.T) {
	m := mixedModel(t, 0.9, []Group{{Name: "cheater", Fraction: 1, Rho: 1}})
	res, err := m.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	corr, _ := correlation.New(10, 0.9, 1)
	mfcd, err := EvaluateMFCD(fluid.PaperParams, corr)
	if err != nil {
		t.Fatal(err)
	}
	got, want := res.AvgOnlinePerFile(), mfcd.AvgOnlinePerFile()
	if math.Abs(got-want) > 0.02*want {
		t.Fatalf("all-cheater torrent %v != MFCD %v", got, want)
	}
}

func TestMixedSeedFlowBalance(t *testing.T) {
	m := mixedModel(t, 0.7, []Group{
		{Name: "obedient", Fraction: 0.6, Rho: 0.2},
		{Name: "cheater", Fraction: 0.4, Rho: 1},
	})
	ss, err := fluid.SteadyState(m, fluid.SteadyStateOptions{Step: 1, MaxTime: 5e6, Tol: 1e-11})
	if err != nil {
		t.Fatal(err)
	}
	for g, grp := range m.Groups {
		for i := 1; i <= 10; i++ {
			rate := grp.Fraction * m.Corr.UserRate(i)
			got := m.Gamma * ss[m.YIndex(g, i)]
			if math.Abs(got-rate) > 1e-6+1e-4*rate {
				t.Fatalf("group %d class %d: γy = %v, λ = %v", g, i, got, rate)
			}
		}
	}
}
