// Package cmfsd implements Collaborative Multi-File torrent Sequential
// Downloading, the paper's proposed scheme (Section 3.5, Eq. 5), and the
// MFCD baseline it is compared against (Section 3.4).
//
// Under CMFSD, K interest-correlated files live in one torrent with K
// subtorrents. A class-i peer (requesting i files) downloads them
// sequentially with its full download bandwidth. While downloading file j,
// a peer that has already completed j−1 ≥ 1 files splits its upload: a
// fraction ρ plays tit-for-tat in its current subtorrent, and the remaining
// 1−ρ serves a completed file as a "virtual seed".
//
// State: x^{i,j}(t) = class-i peers downloading their j-th file (1 ≤ j ≤ i),
// y^i(t) = class-i real seeds. With
//
//	P(i,j) = 1 if i = 1 or j = 1, else ρ,
//	S^{i,j} = μ·x^{i,j}·(Σ(1−P(l,m))x^{l,m} + Σy^l) / Σx^{l,m},
//
// the dynamics are Eq. (5):
//
//	dx^{i,1}/dt = λ_i − μηP(i,1)x^{i,1} − S^{i,1}
//	dx^{i,j}/dt = μηP(i,j−1)x^{i,j−1} + S^{i,j−1}
//	              − μηP(i,j)x^{i,j} − S^{i,j}       (1 < j ≤ i)
//	dy^i/dt     = μηP(i,i)x^{i,i} + S^{i,i} − γ·y^i
//
// with class entry rates λ_i = λ₀·C(K,i)·pⁱ·(1−p)^{K−i}. The steady state
// has no tractable closed form; it is obtained by RK4 relaxation (the
// hand-rolled integrator in internal/numeric/ode).
package cmfsd

import (
	"errors"
	"fmt"
	"math"

	"mfdl/internal/correlation"
	"mfdl/internal/fluid"
	"mfdl/internal/metrics"
	"mfdl/internal/mtcd"
	"mfdl/internal/numeric/ode"
)

// Scheme is the scheme name reported in results.
const Scheme = "CMFSD"

// MFCDScheme is the name reported for the MFCD baseline.
const MFCDScheme = "MFCD"

// Model is the CMFSD fluid model for one multi-file torrent.
type Model struct {
	fluid.Params
	Corr *correlation.Model
	// Rho is the bandwidth allocation ratio ρ ∈ [0,1]: the fraction of a
	// collaborating downloader's upload spent on tit-for-tat in its
	// current subtorrent (1−ρ goes to its virtual seed). ρ = 1 disables
	// collaboration; the paper shows the system then performs as MFCD.
	Rho float64
	// Theta is the downloader abort rate θ ≥ 0: every downloader group
	// x^{i,j} additionally drains at θ·x^{i,j} (peers give up mid-
	// sequence and leave without seeding). θ = 0 is the paper's Eq. (5).
	Theta float64
}

// New validates and returns a CMFSD model.
func New(p fluid.Params, corr *correlation.Model, rho float64) (*Model, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if corr == nil {
		return nil, errors.New("cmfsd: nil correlation model")
	}
	if err := corr.Validate(); err != nil {
		return nil, err
	}
	if rho < 0 || rho > 1 {
		return nil, fmt.Errorf("cmfsd: ρ = %v outside [0,1]", rho)
	}
	if corr.P == 0 {
		return nil, errors.New("cmfsd: p = 0 gives an empty torrent")
	}
	return &Model{Params: p, Corr: corr, Rho: rho}, nil
}

// P returns the paper's P(i,j) bandwidth function.
func (m *Model) P(i, j int) float64 {
	if i == 1 || j == 1 {
		return 1
	}
	return m.Rho
}

// K returns the number of files/subtorrents.
func (m *Model) K() int { return m.Corr.K }

// Dim implements fluid.Model: K(K+1)/2 downloader groups plus K seed
// classes.
func (m *Model) Dim() int {
	k := m.Corr.K
	return k*(k+1)/2 + k
}

// XIndex returns the state index of x^{i,j} (1 ≤ j ≤ i ≤ K).
func (m *Model) XIndex(i, j int) int {
	if j < 1 || i < j || i > m.Corr.K {
		panic(fmt.Sprintf("cmfsd: XIndex(%d,%d) out of range for K=%d", i, j, m.Corr.K))
	}
	return (i-1)*i/2 + (j - 1)
}

// YIndex returns the state index of y^i.
func (m *Model) YIndex(i int) int {
	if i < 1 || i > m.Corr.K {
		panic(fmt.Sprintf("cmfsd: YIndex(%d) out of range for K=%d", i, m.Corr.K))
	}
	return m.Corr.K*(m.Corr.K+1)/2 + (i - 1)
}

// RHS implements fluid.Model (Eq. 5).
func (m *Model) RHS(_ float64, s, dst []float64) {
	k := m.Corr.K
	mu, eta, gamma := m.Mu, m.Eta, m.Gamma

	// Pooled quantities: total downloaders Σx, virtual-seed upload mass
	// Σ(1−P)x, and real-seed mass Σy.
	totalX, virtMass, seedMass := 0.0, 0.0, 0.0
	for i := 1; i <= k; i++ {
		for j := 1; j <= i; j++ {
			x := s[m.XIndex(i, j)]
			if x < 0 {
				x = 0
			}
			totalX += x
			virtMass += (1 - m.P(i, j)) * x
		}
		y := s[m.YIndex(i)]
		if y < 0 {
			y = 0
		}
		seedMass += y
	}
	// Seed-like service rate per unit downloader population.
	perCapitaSeedService := 0.0
	if totalX > 0 {
		perCapitaSeedService = mu * (virtMass + seedMass) / totalX
	}

	// flux(i,j) is the completion rate of group (i,j): TFT service received
	// (μηP·x) plus the pooled seed-like share S^{i,j}.
	flux := func(i, j int) float64 {
		x := s[m.XIndex(i, j)]
		if x < 0 {
			x = 0
		}
		return mu*eta*m.P(i, j)*x + x*perCapitaSeedService
	}

	for i := 1; i <= k; i++ {
		for j := 1; j <= i; j++ {
			out := flux(i, j)
			in := m.Corr.UserRate(i)
			if j > 1 {
				in = flux(i, j-1)
			}
			x := s[m.XIndex(i, j)]
			if x < 0 {
				x = 0
			}
			dst[m.XIndex(i, j)] = in - out - m.Theta*x
		}
		y := s[m.YIndex(i)]
		if y < 0 {
			y = 0
		}
		dst[m.YIndex(i)] = flux(i, i) - gamma*y
	}
}

// InitialState implements fluid.Model: a strictly positive warm start near
// the expected magnitudes so relaxation cannot divide by an empty torrent.
func (m *Model) InitialState() []float64 {
	s := make([]float64, m.Dim())
	for i := 1; i <= m.Corr.K; i++ {
		rate := m.Corr.UserRate(i)
		for j := 1; j <= i; j++ {
			s[m.XIndex(i, j)] = rate*20 + 1e-6
		}
		s[m.YIndex(i)] = rate/m.Gamma*0.5 + 1e-6
	}
	return s
}

var _ fluid.Model = (*Model)(nil)

// SteadyState finds Eq. (5)'s fixed point: a short RK4 relaxation into the
// basin followed by damped-Newton polishing (with a pure-relaxation
// fallback inside fluid.SteadyStateHybrid).
func (m *Model) SteadyState(opt ode.SteadyStateOptions) ([]float64, error) {
	if opt.Step <= 0 {
		opt.Step = 1
	}
	if opt.MaxTime <= 0 {
		opt.MaxTime = 5e6
	}
	if opt.Tol <= 0 {
		opt.Tol = 1e-11
	}
	return fluid.SteadyStateHybrid(m, opt)
}

// SteadyStateRelaxed relaxes Eq. (5) all the way down with fixed-step RK4 —
// slower than SteadyState but with no Newton step; kept for
// cross-validation.
func (m *Model) SteadyStateRelaxed(opt ode.SteadyStateOptions) ([]float64, error) {
	if opt.Step <= 0 {
		opt.Step = 1
	}
	if opt.MaxTime <= 0 {
		opt.MaxTime = 5e6
	}
	if opt.Tol <= 0 {
		opt.Tol = 1e-11
	}
	return fluid.SteadyState(m, opt)
}

// Evaluate relaxes the model and converts the fixed point into per-class
// metrics with Little's law: a class-i user spends Σ_j x^{i,j}/λ_i time
// downloading and 1/γ seeding.
func (m *Model) Evaluate() (*metrics.SchemeResult, error) {
	ss, err := m.SteadyState(ode.SteadyStateOptions{})
	if err != nil {
		return nil, err
	}
	return m.MetricsFromState(ss)
}

// MetricsFromState converts a steady-state vector into per-class metrics.
func (m *Model) MetricsFromState(ss []float64) (*metrics.SchemeResult, error) {
	if len(ss) != m.Dim() {
		return nil, errors.New("cmfsd: state dimension mismatch")
	}
	res := &metrics.SchemeResult{Scheme: Scheme}
	for i := 1; i <= m.Corr.K; i++ {
		rate := m.Corr.UserRate(i)
		pc := metrics.PerClass{Class: i, EntryRate: rate}
		if rate > 0 {
			total := 0.0
			for j := 1; j <= i; j++ {
				total += ss[m.XIndex(i, j)]
			}
			pc.DownloadTime = total / rate
			if m.Theta > 0 {
				// With aborts only a fraction of arrivals become seeds;
				// Little's law on y^i charges exactly that fraction with
				// the 1/γ seeding spell.
				pc.OnlineTime = pc.DownloadTime + ss[m.YIndex(i)]/rate
			} else {
				pc.OnlineTime = pc.DownloadTime + 1/m.Gamma
			}
		} else {
			pc.DownloadTime = math.NaN()
			pc.OnlineTime = math.NaN()
		}
		res.Classes = append(res.Classes, pc)
	}
	return res, nil
}

// EvaluateMFCD returns the MFCD baseline metrics for the same torrent: the
// paper (Section 3.4) shows MFCD is equivalent to MTCD in the fluid model,
// with subtorrent class entry rates λ_j^i = λ₀·C(K−1,i−1)·pⁱ·(1−p)^{K−i}.
func EvaluateMFCD(p fluid.Params, corr *correlation.Model) (*metrics.SchemeResult, error) {
	m, err := mtcd.New(p, corr)
	if err != nil {
		return nil, err
	}
	res, err := m.Evaluate()
	if err != nil {
		return nil, err
	}
	res.Scheme = MFCDScheme
	return res, nil
}

// Stability linearizes Eq. (5) at the supplied fixed point.
func (m *Model) Stability(ss []float64) (*fluid.StabilityReport, error) {
	return fluid.Stability(m, ss)
}
