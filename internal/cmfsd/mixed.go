package cmfsd

import (
	"errors"
	"fmt"
	"math"

	"mfdl/internal/correlation"
	"mfdl/internal/fluid"
	"mfdl/internal/metrics"
	"mfdl/internal/numeric/ode"
)

// Group is one sub-population of a mixed CMFSD torrent, with its own
// bandwidth allocation ratio. The paper's cheating peers (Section 4.3) are
// the special case Rho = 1: they "refuse to upload chunks of the files
// they have finished via the virtual seeds" — equivalently, they quit and
// rejoin as fresh single-file peers.
type Group struct {
	// Name labels the group ("obedient", "cheater").
	Name string
	// Fraction is the share of arrivals belonging to this group.
	Fraction float64
	// Rho is the group's bandwidth allocation ratio.
	Rho float64
}

// Mixed is Eq. (5) generalized to several coexisting peer groups that share
// one multi-file torrent but play different ρ. All groups draw from the
// same virtual-seed + real-seed service pool (assumption 2 treats every
// downloader identically), so the obedient groups' collaboration subsidizes
// the cheaters — the effect the Adapt mechanism exists to police.
type Mixed struct {
	fluid.Params
	Corr   *correlation.Model
	Groups []Group
}

// NewMixed validates and returns a mixed-population model. Fractions must
// sum to 1.
func NewMixed(p fluid.Params, corr *correlation.Model, groups []Group) (*Mixed, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if corr == nil {
		return nil, errors.New("cmfsd: nil correlation model")
	}
	if err := corr.Validate(); err != nil {
		return nil, err
	}
	if corr.P == 0 {
		return nil, errors.New("cmfsd: p = 0 gives an empty torrent")
	}
	if len(groups) == 0 {
		return nil, errors.New("cmfsd: no groups")
	}
	sum := 0.0
	for _, g := range groups {
		if g.Fraction < 0 || g.Fraction > 1 {
			return nil, fmt.Errorf("cmfsd: group %q fraction %v outside [0,1]", g.Name, g.Fraction)
		}
		if g.Rho < 0 || g.Rho > 1 {
			return nil, fmt.Errorf("cmfsd: group %q ρ = %v outside [0,1]", g.Name, g.Rho)
		}
		sum += g.Fraction
	}
	if math.Abs(sum-1) > 1e-9 {
		return nil, fmt.Errorf("cmfsd: group fractions sum to %v, want 1", sum)
	}
	return &Mixed{Params: p, Corr: corr, Groups: groups}, nil
}

// K returns the number of files.
func (m *Mixed) K() int { return m.Corr.K }

// perGroup is the per-group state block size: K(K+1)/2 downloader cells
// plus K seed cells.
func (m *Mixed) perGroup() int {
	k := m.Corr.K
	return k*(k+1)/2 + k
}

// Dim implements fluid.Model.
func (m *Mixed) Dim() int { return len(m.Groups) * m.perGroup() }

// XIndex returns the state index of group g's x^{i,j}.
func (m *Mixed) XIndex(g, i, j int) int {
	if g < 0 || g >= len(m.Groups) || j < 1 || i < j || i > m.Corr.K {
		panic(fmt.Sprintf("cmfsd: XIndex(%d,%d,%d) out of range", g, i, j))
	}
	return g*m.perGroup() + (i-1)*i/2 + (j - 1)
}

// YIndex returns the state index of group g's y^i.
func (m *Mixed) YIndex(g, i int) int {
	if g < 0 || g >= len(m.Groups) || i < 1 || i > m.Corr.K {
		panic(fmt.Sprintf("cmfsd: YIndex(%d,%d) out of range", g, i))
	}
	return g*m.perGroup() + m.Corr.K*(m.Corr.K+1)/2 + (i - 1)
}

// pg returns group g's P(i,j).
func (m *Mixed) pg(g, i, j int) float64 {
	if i == 1 || j == 1 {
		return 1
	}
	return m.Groups[g].Rho
}

// RHS implements fluid.Model: Eq. (5) with group-indexed P, one shared
// service pool.
func (m *Mixed) RHS(_ float64, s, dst []float64) {
	k := m.Corr.K
	mu, eta, gamma := m.Mu, m.Eta, m.Gamma
	totalX, virtMass, seedMass := 0.0, 0.0, 0.0
	for g := range m.Groups {
		for i := 1; i <= k; i++ {
			for j := 1; j <= i; j++ {
				x := s[m.XIndex(g, i, j)]
				if x < 0 {
					x = 0
				}
				totalX += x
				virtMass += (1 - m.pg(g, i, j)) * x
			}
			y := s[m.YIndex(g, i)]
			if y < 0 {
				y = 0
			}
			seedMass += y
		}
	}
	perCapita := 0.0
	if totalX > 0 {
		perCapita = mu * (virtMass + seedMass) / totalX
	}
	for g := range m.Groups {
		flux := func(i, j int) float64 {
			x := s[m.XIndex(g, i, j)]
			if x < 0 {
				x = 0
			}
			return mu*eta*m.pg(g, i, j)*x + x*perCapita
		}
		for i := 1; i <= k; i++ {
			rate := m.Groups[g].Fraction * m.Corr.UserRate(i)
			for j := 1; j <= i; j++ {
				out := flux(i, j)
				in := rate
				if j > 1 {
					in = flux(i, j-1)
				}
				dst[m.XIndex(g, i, j)] = in - out
			}
			y := s[m.YIndex(g, i)]
			if y < 0 {
				y = 0
			}
			dst[m.YIndex(g, i)] = flux(i, i) - gamma*y
		}
	}
}

// InitialState implements fluid.Model.
func (m *Mixed) InitialState() []float64 {
	s := make([]float64, m.Dim())
	for g := range m.Groups {
		for i := 1; i <= m.Corr.K; i++ {
			rate := m.Groups[g].Fraction * m.Corr.UserRate(i)
			for j := 1; j <= i; j++ {
				s[m.XIndex(g, i, j)] = rate*20 + 1e-7
			}
			s[m.YIndex(g, i)] = rate/m.Gamma*0.5 + 1e-7
		}
	}
	return s
}

var _ fluid.Model = (*Mixed)(nil)

// GroupResult pairs one group with its per-class metrics.
type GroupResult struct {
	Group  Group
	Result *metrics.SchemeResult
}

// MixedResult is the steady-state evaluation of a mixed torrent.
type MixedResult struct {
	Groups []GroupResult
}

// AvgOnlinePerFile aggregates the paper's metric over every group.
func (r *MixedResult) AvgOnlinePerFile() float64 {
	num, den := 0.0, 0.0
	for _, g := range r.Groups {
		for _, c := range g.Result.Classes {
			if c.EntryRate <= 0 {
				continue
			}
			num += c.EntryRate * c.OnlineTime
			den += c.EntryRate * float64(c.Class)
		}
	}
	if den == 0 {
		return math.NaN()
	}
	return num / den
}

// Evaluate solves the mixed model (hybrid relax-then-Newton) and reports
// per-group metrics.
func (m *Mixed) Evaluate() (*MixedResult, error) {
	opt := ode.SteadyStateOptions{Step: 1, MaxTime: 5e6, Tol: 1e-11}
	ss, err := fluid.SteadyStateHybrid(m, opt)
	if err != nil {
		return nil, err
	}
	out := &MixedResult{}
	for g, grp := range m.Groups {
		res := &metrics.SchemeResult{Scheme: Scheme + "/" + grp.Name}
		for i := 1; i <= m.Corr.K; i++ {
			rate := grp.Fraction * m.Corr.UserRate(i)
			pc := metrics.PerClass{Class: i, EntryRate: rate}
			if rate > 0 {
				total := 0.0
				for j := 1; j <= i; j++ {
					total += ss[m.XIndex(g, i, j)]
				}
				pc.DownloadTime = total / rate
				pc.OnlineTime = pc.DownloadTime + 1/m.Gamma
			} else {
				pc.DownloadTime = math.NaN()
				pc.OnlineTime = math.NaN()
			}
			res.Classes = append(res.Classes, pc)
		}
		out.Groups = append(out.Groups, GroupResult{Group: grp, Result: res})
	}
	return out, nil
}
