package faults

import (
	"math"
	"testing"

	"mfdl/internal/obs"
)

func mustPlan(t *testing.T, cfg Config) *Plan {
	t.Helper()
	p, err := NewPlan(cfg, nil)
	if err != nil {
		t.Fatalf("NewPlan(%+v): %v", cfg, err)
	}
	return p
}

// Per-entity draws are pure functions of (seed, kind, id): the same plan
// built twice answers identically, in any query order.
func TestPlanDeterministic(t *testing.T) {
	cfg := Config{
		Seed: 42, AbortRate: 0.1, SeedQuitRate: 0.05,
		SlowPeerFraction: 0.3, SlowFactor: 0.25, MessageLoss: 0.1, ConnDropRate: 0.01,
	}
	a, b := mustPlan(t, cfg), mustPlan(t, cfg)
	// Query b in reverse order to prove order independence.
	const n = 200
	for id := uint64(0); id < n; id++ {
		rev := uint64(n-1) - id
		if a.AbortAfter(rev) != b.AbortAfter(rev) {
			t.Fatalf("AbortAfter(%d) differs between identical plans", rev)
		}
	}
	for id := uint64(0); id < n; id++ {
		if a.AbortAfter(id) != b.AbortAfter(id) ||
			a.SeedQuitAfter(id) != b.SeedQuitAfter(id) ||
			a.UploadFactor(id) != b.UploadFactor(id) ||
			a.ConnDropAfter(id) != b.ConnDropAfter(id) {
			t.Fatalf("plan draws differ for id %d", id)
		}
		if a.LossStream(id).Uint64() != b.LossStream(id).Uint64() {
			t.Fatalf("LossStream(%d) differs", id)
		}
	}
}

// Different seeds and different entities draw different outcomes, and
// each kind has its own stream family.
func TestPlanIndependence(t *testing.T) {
	cfg := Config{Seed: 1, AbortRate: 0.1, SeedQuitRate: 0.1}
	a := mustPlan(t, cfg)
	cfg.Seed = 2
	b := mustPlan(t, cfg)
	same := 0
	const n = 100
	for id := uint64(0); id < n; id++ {
		if a.AbortAfter(id) == b.AbortAfter(id) {
			same++
		}
		if a.AbortAfter(id) == a.SeedQuitAfter(id) {
			t.Fatalf("abort and seed-quit streams collide for id %d", id)
		}
		if id > 0 && a.AbortAfter(id) == a.AbortAfter(id-1) {
			t.Fatalf("adjacent entities %d,%d drew identical deadlines", id-1, id)
		}
	}
	if same != 0 {
		t.Fatalf("%d/%d draws identical across different seeds", same, n)
	}
}

// Exponential deadlines must have roughly the configured mean.
func TestAbortAfterMean(t *testing.T) {
	const rate = 0.2
	p := mustPlan(t, Config{Seed: 7, AbortRate: rate})
	var sum float64
	const n = 20000
	for id := uint64(0); id < n; id++ {
		sum += p.AbortAfter(id)
	}
	mean := sum / n
	if want := 1 / rate; math.Abs(mean-want) > 0.1*want {
		t.Fatalf("mean abort deadline %.3f, want ~%.3f", mean, want)
	}
}

func TestDisabledAndNil(t *testing.T) {
	p, err := NewPlan(Config{Seed: 3}, nil)
	if err != nil {
		t.Fatalf("disabled config: %v", err)
	}
	if p != nil {
		t.Fatalf("disabled config should yield a nil plan")
	}
	// The nil plan injects nothing and never panics.
	if !math.IsInf(p.AbortAfter(1), 1) || !math.IsInf(p.SeedQuitAfter(1), 1) ||
		!math.IsInf(p.ConnDropAfter(1), 1) {
		t.Fatalf("nil plan must return +Inf deadlines")
	}
	if p.UploadFactor(1) != 1 || p.LossProb() != 0 || p.TrackerDown(5) {
		t.Fatalf("nil plan must be a no-op")
	}
	p.NoteAbort()
	p.NoteSeedQuit()
	p.NoteLoss()
	p.NoteSlowPeer()
	p.NoteConnDrop()
	p.NoteTrackerReject()
}

func TestValidateRejects(t *testing.T) {
	bad := []Config{
		{AbortRate: -1},
		{AbortRate: math.NaN()},
		{SeedQuitRate: math.Inf(1)},
		{SlowPeerFraction: 1.5},
		{SlowPeerFraction: 0.5},                  // SlowFactor unset
		{SlowPeerFraction: 0.5, SlowFactor: 1.5}, // factor > 1
		{MessageLoss: 1},
		{MessageLoss: -0.1},
		{TrackerOutages: []Window{{Start: 5, End: 5}}},
		{TrackerOutages: []Window{{Start: -1, End: 2}}},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d (%+v) should fail validation", i, cfg)
		}
	}
	good := Config{AbortRate: 0.1, SlowPeerFraction: 0.2, SlowFactor: 0.5,
		MessageLoss: 0.3, TrackerOutages: []Window{{Start: 0, End: 10}}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestTrackerDown(t *testing.T) {
	p := mustPlan(t, Config{TrackerOutages: []Window{{Start: 10, End: 20}, {Start: 30, End: 35}}})
	cases := []struct {
		t    float64
		down bool
	}{{0, false}, {10, true}, {19.9, true}, {20, false}, {32, true}, {40, false}}
	for _, c := range cases {
		if got := p.TrackerDown(c.t); got != c.down {
			t.Errorf("TrackerDown(%v) = %v, want %v", c.t, got, c.down)
		}
	}
}

// Mixed derives decorrelated plan seeds from per-replica entropy while
// staying a pure function of its inputs.
func TestMixed(t *testing.T) {
	base := Config{Seed: 9, AbortRate: 0.1}
	if base.Mixed(1).Seed == base.Mixed(2).Seed {
		t.Fatalf("Mixed(1) and Mixed(2) collide")
	}
	if base.Mixed(1).Seed != base.Mixed(1).Seed {
		t.Fatalf("Mixed is not deterministic")
	}
	if base.Mixed(1).AbortRate != base.AbortRate {
		t.Fatalf("Mixed must only change the seed")
	}
}

func TestCountersLandInRegistry(t *testing.T) {
	ob := obs.New()
	p, err := NewPlan(Config{Seed: 1, AbortRate: 0.5}, ob)
	if err != nil {
		t.Fatal(err)
	}
	p.NoteAbort()
	p.NoteAborts(2)
	p.NoteSeedQuit()
	p.NoteLoss()
	if got := ob.Counter("faults_aborts_total").Value(); got != 3 {
		t.Fatalf("faults_aborts_total = %d, want 3", got)
	}
	if got := ob.Counter("faults_seed_quits_total").Value(); got != 1 {
		t.Fatalf("faults_seed_quits_total = %d, want 1", got)
	}
	if got := ob.Counter("faults_messages_lost_total").Value(); got != 1 {
		t.Fatalf("faults_messages_lost_total = %d, want 1", got)
	}
}
