// Package faults is the deterministic fault-injection layer: it turns a
// single chaos seed into a reproducible plan of peer aborts, virtual-seed
// departures, slow-peer throttling, message loss, connection drops and
// tracker outage windows.
//
// Every per-entity draw is a pure function of (plan seed, fault kind,
// entity id), computed on a dedicated rng stream that is never shared
// with the simulators' main RNG. Two consequences follow:
//
//   - a faults-off run consumes exactly the same random numbers as before
//     this package existed, so all historical goldens stay byte-identical;
//   - a faults-on run is byte-identical at any worker count, because no
//     draw depends on scheduling order — peer #17's abort deadline is the
//     same number whether it is computed first or last, on one worker or
//     eight.
//
// The simulators (internal/eventsim, internal/swarm) consume the plan via
// small hooks at arrival/transfer time; the real stack (internal/client,
// internal/tracker) uses the retry/timeout machinery directly and the
// outage windows in tests. Observability is optional: pass an
// obs.Registry to NewPlan and the plan maintains faults_* counters, pass
// nil and every Note* call is a no-op.
package faults

import (
	"fmt"
	"math"

	"mfdl/internal/obs"
	"mfdl/internal/rng"
)

// Window is a half-open time interval [Start, End) during which the
// tracker rejects announces.
type Window struct {
	Start, End float64
}

// Config selects which faults to inject and how hard. The zero value
// injects nothing and is always valid.
type Config struct {
	// Seed derives every fault stream. Two plans with the same seed and
	// the same rates draw identical per-entity outcomes.
	Seed uint64
	// AbortRate is the paper's θ: each downloader draws an exponential
	// patience with this rate and aborts (departs without finishing) if
	// its download outlives it. 0 disables aborts.
	AbortRate float64
	// SeedQuitRate makes CMFSD virtual seeds unreliable: a peer that
	// would serve finished files at ratio ρ draws an exponential
	// patience with this rate and stops serving early. 0 disables.
	SeedQuitRate float64
	// SlowPeerFraction of peers upload at SlowFactor times their
	// nominal bandwidth (an asymmetric-DSL / throttled population).
	SlowPeerFraction float64
	// SlowFactor is the throttle multiplier in (0, 1]; it is only
	// consulted when SlowPeerFraction > 0.
	SlowFactor float64
	// MessageLoss is the probability that one chunk transfer or wire
	// message is lost in flight and must be re-sent. In [0, 1).
	MessageLoss float64
	// ConnDropRate is the rate at which established peer links fail
	// (each link draws an exponential lifetime). 0 disables.
	ConnDropRate float64
	// TrackerOutages lists windows during which the tracker is down.
	TrackerOutages []Window
}

// Enabled reports whether the configuration injects any fault at all.
func (c Config) Enabled() bool {
	return c.AbortRate > 0 || c.SeedQuitRate > 0 || c.SlowPeerFraction > 0 ||
		c.MessageLoss > 0 || c.ConnDropRate > 0 || len(c.TrackerOutages) > 0
}

// Validate rejects rates and fractions outside their domains.
func (c Config) Validate() error {
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"AbortRate", c.AbortRate},
		{"SeedQuitRate", c.SeedQuitRate},
		{"ConnDropRate", c.ConnDropRate},
	} {
		if f.v < 0 || math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			return fmt.Errorf("faults: %s must be a finite rate >= 0, got %v", f.name, f.v)
		}
	}
	if c.SlowPeerFraction < 0 || c.SlowPeerFraction > 1 || math.IsNaN(c.SlowPeerFraction) {
		return fmt.Errorf("faults: SlowPeerFraction must be in [0,1], got %v", c.SlowPeerFraction)
	}
	if c.SlowPeerFraction > 0 && (c.SlowFactor <= 0 || c.SlowFactor > 1 || math.IsNaN(c.SlowFactor)) {
		return fmt.Errorf("faults: SlowFactor must be in (0,1] when SlowPeerFraction > 0, got %v", c.SlowFactor)
	}
	if c.MessageLoss < 0 || c.MessageLoss >= 1 || math.IsNaN(c.MessageLoss) {
		return fmt.Errorf("faults: MessageLoss must be in [0,1), got %v", c.MessageLoss)
	}
	for i, w := range c.TrackerOutages {
		if w.Start < 0 || w.End <= w.Start || math.IsNaN(w.Start) || math.IsNaN(w.End) {
			return fmt.Errorf("faults: TrackerOutages[%d] must satisfy 0 <= Start < End, got [%v, %v)", i, w.Start, w.End)
		}
	}
	return nil
}

// Mixed returns a copy of c whose seed also incorporates extra entropy
// (typically the per-replica simulation seed), so that replicas of one
// cell draw independent fault plans while the pair (chaos seed, sim
// seed) still determines every outcome.
func (c Config) Mixed(entropy uint64) Config {
	// SplitMix64-style finalizer keeps nearby sim seeds from producing
	// correlated plan seeds.
	z := entropy + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	c.Seed ^= z ^ (z >> 31)
	return c
}

// Per-kind stream salts: each fault kind draws from its own family of
// streams so adding a kind never perturbs another kind's outcomes.
const (
	saltAbort    uint64 = 0xa24baed4963ee407
	saltSeedQuit uint64 = 0x9fb21c651e98df25
	saltSlow     uint64 = 0x6c62272e07bb0142
	saltLoss     uint64 = 0x27d4eb2f165667c5
	saltDrop     uint64 = 0x85ebca6b2e4f1d3b
)

// Plan answers per-entity fault queries for one configuration. A nil
// *Plan is valid and injects nothing, so call sites can hold a plan
// unconditionally.
type Plan struct {
	cfg Config

	aborts    *obs.Counter
	seedQuits *obs.Counter
	slow      *obs.Counter
	lost      *obs.Counter
	drops     *obs.Counter
	rejects   *obs.Counter
}

// NewPlan validates cfg and builds its plan; a disabled configuration
// yields nil (inject nothing) without error. The registry may be nil.
func NewPlan(cfg Config, ob *obs.Registry) (*Plan, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if !cfg.Enabled() {
		return nil, nil
	}
	return &Plan{
		cfg:       cfg,
		aborts:    ob.Counter("faults_aborts_total"),
		seedQuits: ob.Counter("faults_seed_quits_total"),
		slow:      ob.Counter("faults_slow_peers_total"),
		lost:      ob.Counter("faults_messages_lost_total"),
		drops:     ob.Counter("faults_conn_drops_total"),
		rejects:   ob.Counter("faults_tracker_rejects_total"),
	}, nil
}

// Config returns the plan's configuration (zero for a nil plan).
func (p *Plan) Config() Config {
	if p == nil {
		return Config{}
	}
	return p.cfg
}

// stream is the dedicated rng stream for one (kind, entity) pair.
func (p *Plan) stream(salt, id uint64) *rng.Source {
	return rng.NewStream(p.cfg.Seed+salt, id)
}

// AbortAfter returns entity id's downloader patience: how long after
// arrival it aborts if still downloading. +Inf when aborts are off.
func (p *Plan) AbortAfter(id uint64) float64 {
	if p == nil || p.cfg.AbortRate <= 0 {
		return math.Inf(1)
	}
	return p.stream(saltAbort, id).Exp(p.cfg.AbortRate)
}

// SeedQuitAfter returns how long entity id serves as a virtual seed
// before quitting early. +Inf when seed churn is off.
func (p *Plan) SeedQuitAfter(id uint64) float64 {
	if p == nil || p.cfg.SeedQuitRate <= 0 {
		return math.Inf(1)
	}
	return p.stream(saltSeedQuit, id).Exp(p.cfg.SeedQuitRate)
}

// UploadFactor returns entity id's bandwidth multiplier: SlowFactor for
// the throttled fraction, 1 otherwise.
func (p *Plan) UploadFactor(id uint64) float64 {
	if p == nil || p.cfg.SlowPeerFraction <= 0 {
		return 1
	}
	if p.stream(saltSlow, id).Bernoulli(p.cfg.SlowPeerFraction) {
		return p.cfg.SlowFactor
	}
	return 1
}

// ConnDropAfter returns the lifetime of entity id's connection (or
// neighbor link). +Inf when connection drops are off.
func (p *Plan) ConnDropAfter(id uint64) float64 {
	if p == nil || p.cfg.ConnDropRate <= 0 {
		return math.Inf(1)
	}
	return p.stream(saltDrop, id).Exp(p.cfg.ConnDropRate)
}

// LossStream returns a fresh per-entity stream for message-loss draws.
// A single-threaded simulator owns one (keyed by its own seed) and
// consumes it in event order; because it is distinct from the main RNG,
// enabling loss never shifts any other draw.
func (p *Plan) LossStream(id uint64) *rng.Source {
	seed := uint64(0)
	if p != nil {
		seed = p.cfg.Seed
	}
	return rng.NewStream(seed+saltLoss, id)
}

// LossProb returns the per-message loss probability (0 for a nil plan).
func (p *Plan) LossProb() float64 {
	if p == nil {
		return 0
	}
	return p.cfg.MessageLoss
}

// TrackerDown reports whether the tracker is inside an outage window at
// time t.
func (p *Plan) TrackerDown(t float64) bool {
	if p == nil {
		return false
	}
	for _, w := range p.cfg.TrackerOutages {
		if t >= w.Start && t < w.End {
			return true
		}
	}
	return false
}

// Note* record injected events on the faults_* counters. All are no-ops
// on a nil plan or a nil registry, and safe for concurrent use.

// NoteAbort records one injected downloader abort.
func (p *Plan) NoteAbort() {
	if p != nil {
		p.aborts.Inc()
	}
}

// NoteAborts records n injected downloader aborts at once.
func (p *Plan) NoteAborts(n uint64) {
	if p != nil {
		p.aborts.Add(n)
	}
}

// NoteSeedQuit records one virtual seed quitting early.
func (p *Plan) NoteSeedQuit() {
	if p != nil {
		p.seedQuits.Inc()
	}
}

// NoteSlowPeer records one peer entering throttled.
func (p *Plan) NoteSlowPeer() {
	if p != nil {
		p.slow.Inc()
	}
}

// NoteLoss records one lost message.
func (p *Plan) NoteLoss() {
	if p != nil {
		p.lost.Inc()
	}
}

// NoteConnDrop records one dropped connection.
func (p *Plan) NoteConnDrop() {
	if p != nil {
		p.drops.Inc()
	}
}

// NoteTrackerReject records one announce rejected by an outage window.
func (p *Plan) NoteTrackerReject() {
	if p != nil {
		p.rejects.Inc()
	}
}
