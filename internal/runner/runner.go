// Package runner is the parallel execution engine behind the parameter
// studies: N-dimensional grid specifications, a bounded worker pool,
// context cancellation with deterministic first-error propagation, and
// per-cell random-number streams derived by deterministic stream splitting
// so every result is bit-identical at any worker count.
//
// The paper's evaluation (Section 4) is a family of grids — p × ρ surfaces,
// η ablations, K scalings — whose cells are independent steady-state solves
// or simulation runs. Run executes any such grid:
//
//	grid, _ := runner.NewGrid(
//	    runner.Dim{Name: "p", Values: runner.Linspace(0.1, 1, 9)},
//	    runner.Dim{Name: "rho", Values: runner.Linspace(0, 1, 10)},
//	)
//	online, err := runner.Run(ctx, grid,
//	    func(ctx context.Context, pt runner.Point, src *rng.Source) (float64, error) {
//	        ...
//	    }, runner.Options{Workers: 8})
//
// Determinism contract: cell i always receives the i-th split of the base
// seed's stream and its result lands at index i of the output slice, so
// neither the worker count nor scheduling order is observable in the
// results. Errors are deterministic too — when several cells fail, Run
// reports the failure of the lowest-indexed cell.
package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"mfdl/internal/obs"
	"mfdl/internal/rng"
	"mfdl/internal/trace"
)

// Dim is one axis of a parameter grid: a name and the values swept along
// it.
type Dim struct {
	Name   string    `json:"name"`
	Values []float64 `json:"values"`
}

// Grid is the cartesian product of its dimensions, enumerated row-major
// (the last dimension varies fastest).
type Grid struct {
	dims []Dim
}

// NewGrid validates the dimensions and returns a Grid. Every dimension
// needs a unique non-empty name and at least one value.
func NewGrid(dims ...Dim) (Grid, error) {
	seen := map[string]bool{}
	for _, d := range dims {
		if d.Name == "" {
			return Grid{}, fmt.Errorf("runner: dimension with empty name")
		}
		if seen[d.Name] {
			return Grid{}, fmt.Errorf("runner: duplicate dimension %q", d.Name)
		}
		seen[d.Name] = true
		if len(d.Values) == 0 {
			return Grid{}, fmt.Errorf("runner: dimension %q has no values", d.Name)
		}
	}
	copied := make([]Dim, len(dims))
	for i, d := range dims {
		copied[i] = Dim{Name: d.Name, Values: append([]float64(nil), d.Values...)}
	}
	return Grid{dims: copied}, nil
}

// Indexed returns a one-dimensional grid whose cells are the integers
// 0..n-1 — the degenerate grid used to fan a fixed work list out over the
// pool.
func Indexed(name string, n int) (Grid, error) {
	if n < 1 {
		return Grid{}, fmt.Errorf("runner: indexed grid needs n >= 1, got %d", n)
	}
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = float64(i)
	}
	return NewGrid(Dim{Name: name, Values: vals})
}

// Linspace returns steps+1 evenly spaced values from from to to
// (inclusive). steps < 1 is treated as 1.
func Linspace(from, to float64, steps int) []float64 {
	if steps < 1 {
		steps = 1
	}
	out := make([]float64, steps+1)
	for i := 0; i <= steps; i++ {
		out[i] = from + (to-from)*float64(i)/float64(steps)
	}
	return out
}

// Dims returns the grid's dimensions (shared; do not mutate).
func (g Grid) Dims() []Dim { return g.dims }

// Size returns the number of cells (1 for a zero-dimensional grid).
func (g Grid) Size() int {
	n := 1
	for _, d := range g.dims {
		n *= len(d.Values)
	}
	return n
}

// Point returns the cell with linear index i.
func (g Grid) Point(i int) Point {
	if i < 0 || i >= g.Size() {
		panic(fmt.Sprintf("runner: cell index %d outside grid of %d", i, g.Size()))
	}
	coords := make([]int, len(g.dims))
	rem := i
	for d := len(g.dims) - 1; d >= 0; d-- {
		n := len(g.dims[d].Values)
		coords[d] = rem % n
		rem /= n
	}
	return Point{Index: i, Coords: coords, dims: g.dims}
}

// Point is one grid cell: its linear index, its per-dimension coordinates,
// and accessors for the swept values.
type Point struct {
	// Index is the linear cell index in row-major enumeration order.
	Index int
	// Coords holds the per-dimension value indices.
	Coords []int
	dims   []Dim
}

// Values returns the swept value of every dimension, in dimension order.
func (p Point) Values() []float64 {
	out := make([]float64, len(p.dims))
	for d := range p.dims {
		out[d] = p.dims[d].Values[p.Coords[d]]
	}
	return out
}

// Value returns the swept value of the named dimension.
func (p Point) Value(name string) (float64, bool) {
	for d := range p.dims {
		if p.dims[d].Name == name {
			return p.dims[d].Values[p.Coords[d]], true
		}
	}
	return 0, false
}

// Label renders the cell as "name=value name=value" for error messages.
func (p Point) Label() string {
	s := ""
	for d := range p.dims {
		if d > 0 {
			s += " "
		}
		s += fmt.Sprintf("%s=%g", p.dims[d].Name, p.dims[d].Values[p.Coords[d]])
	}
	return s
}

// Hooks observe grid execution. All hooks are invoked serially (never
// concurrently with themselves or each other), so they may touch shared
// state without locking.
type Hooks struct {
	// OnCell fires after every cell completes, successfully or not.
	OnCell func(p Point, err error)
	// Recorder, when non-nil, accumulates a "completed" (and, if any cell
	// fails, a "failed") series of cumulative counts against wall-clock
	// seconds since Run started.
	Recorder *trace.Recorder
}

// Options configure one Run call.
type Options struct {
	// Workers bounds the pool; <= 0 means runtime.GOMAXPROCS(0).
	Workers int
	// Seed is the base seed from which every cell's random stream is
	// split. Two Runs with the same seed and grid hand every cell the same
	// stream regardless of worker count.
	Seed uint64
	// Retries is how many times a panicking cell is re-attempted before
	// its CellPanicError is recorded (0 = no retries). Only panics are
	// retried — a job error is taken at face value. Every attempt runs on
	// a fresh copy of the cell's stream, so a cell that succeeds on any
	// attempt produces exactly the bits a first-attempt success would.
	Retries int
	// Checkpoint, when non-nil, persists each completed cell through the
	// disk tier and replays already-persisted cells instead of re-running
	// them, so a killed run resumes to byte-identical results. See
	// NewCheckpoint.
	Checkpoint *Checkpoint
	// Hooks observe progress.
	Hooks Hooks
	// Obs, when non-nil, receives the run's metrics: runner_cells /
	// runner_workers gauges, runner_cells_completed_total and
	// runner_cells_failed_total counters, a runner_cell_seconds latency
	// histogram, a runner_queue_wait_seconds backlog gauge and a final
	// runner_worker_utilization sample. With a span sink attached it also
	// records one "cell" span per cell. Nil disables instrumentation at
	// the cost of a few nil checks per cell (no clock reads, no
	// allocations).
	Obs *obs.Registry
}

// Run executes job over every cell of the grid with a bounded worker pool
// and returns the per-cell results indexed like the grid. The first error
// (by cell index) cancels the remaining cells and is returned.
//
// Cancellation is surfaced distinctly from cell failure, because the two
// race at shutdown: if ctx is canceled and every recorded failure is
// cancellation noise, Run returns plain ctx.Err() (a drained worker is
// not a failed sweep); if a genuine cell error raced the cancellation,
// Run returns the two joined, so errors.Is sees both; and if the
// cancellation landed only after every cell had already completed, Run
// returns the full result set — the drain arrived too late to cost
// anything.
func Run[T any](ctx context.Context, g Grid, job func(ctx context.Context, p Point, src *rng.Source) (T, error), opts Options) ([]T, error) {
	n := g.Size()
	out := make([]T, n)
	if n == 0 {
		return out, ctx.Err()
	}

	// Derive one independent stream per cell, in cell order, before any
	// worker starts: the assignment cell -> stream is then a pure function
	// of (seed, grid), untouched by scheduling. CellStream reproduces the
	// i-th stream standalone — remote fabric workers depend on the two
	// derivations staying identical.
	parent := rng.New(opts.Seed)
	srcs := make([]*rng.Source, n)
	for i := range srcs {
		srcs[i] = parent.Split()
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Instrumentation: all instruments are nil-safe no-ops when no
	// registry is attached, so the disabled path costs a few nil checks
	// per cell and reads no clocks.
	ob := opts.Obs
	var (
		cellSeconds = ob.Histogram("runner_cell_seconds", obs.LatencyBuckets)
		queueWait   = ob.Gauge("runner_queue_wait_seconds")
		completedC  = ob.Counter("runner_cells_completed_total")
		failedC     = ob.Counter("runner_cells_failed_total")
		retriedC    = ob.Counter("runner_cell_retries_total")
		resumedC    = ob.Counter("runner_cells_resumed_total")
		tracing     = ob.Tracing()
	)
	if ob != nil {
		ob.Gauge("runner_cells").Set(float64(n))
		ob.Gauge("runner_workers").Set(float64(workers))
	}

	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		mu       sync.Mutex // guards errIdx/firstErr and the hooks
		errIdx   = -1
		firstErr error
		done     int
		failed   int
		busy     time.Duration
		start    = time.Now()
	)
	finish := func(p Point, dur time.Duration, err error) {
		mu.Lock()
		defer mu.Unlock()
		busy += dur
		if err != nil {
			// Lowest-indexed failure wins, except that cancellation noise
			// (cells aborted by an earlier real error) never displaces a
			// real error.
			isCancel := errors.Is(err, context.Canceled)
			curCancel := errors.Is(firstErr, context.Canceled)
			switch {
			case firstErr == nil,
				curCancel && !isCancel,
				curCancel == isCancel && p.Index < errIdx:
				errIdx, firstErr = p.Index, err
			}
			cancel()
		}
		done++
		if err != nil {
			failed++
			failedC.Inc()
		} else {
			completedC.Inc()
		}
		if rec := opts.Hooks.Recorder; rec != nil {
			t := time.Since(start).Seconds()
			_ = rec.Record("completed", t, float64(done))
			if failed > 0 {
				_ = rec.Record("failed", t, float64(failed))
			}
		}
		if opts.Hooks.OnCell != nil {
			opts.Hooks.OnCell(p, err)
		}
	}

	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || runCtx.Err() != nil {
					return
				}
				p := g.Point(i)
				// A previously checkpointed cell is replayed, not re-run:
				// gob round-trips the floats bit-exactly, so the resumed
				// run's output is byte-identical to an uninterrupted one.
				if opts.Checkpoint.load(i, &out[i]) {
					resumedC.Inc()
					finish(p, 0, nil)
					continue
				}
				var (
					cellStart time.Time
					sp        obs.Span
				)
				if ob != nil {
					cellStart = time.Now()
					queueWait.Set(cellStart.Sub(start).Seconds())
					if tracing {
						sp = ob.StartSpan("cell", obs.L("cell", p.Label()))
					}
				}
				// Panic isolation with bounded retries: each attempt gets a
				// fresh copy of the cell's stream, so which attempt succeeds
				// is unobservable in the results.
				var (
					v   T
					err error
				)
				for attempt := 0; ; attempt++ {
					src := *srcs[i]
					v, err = runCell(runCtx, job, p, &src)
					var pe *CellPanicError
					if err == nil || !errors.As(err, &pe) || attempt >= opts.Retries {
						break
					}
					retriedC.Inc()
				}
				var dur time.Duration
				if ob != nil {
					dur = time.Since(cellStart)
					cellSeconds.Observe(dur.Seconds())
					sp.End()
				}
				if err != nil {
					finish(p, dur, fmt.Errorf("runner: cell %s: %w", p.Label(), err))
					continue
				}
				out[i] = v
				opts.Checkpoint.save(i, v)
				finish(p, dur, nil)
			}
		}()
	}
	wg.Wait()

	if ob != nil {
		// Worker utilization: busy time summed over cells against the
		// pool's total wall-clock capacity.
		if elapsed := time.Since(start).Seconds(); elapsed > 0 {
			ob.Gauge("runner_worker_utilization").Set(
				busy.Seconds() / (float64(workers) * elapsed))
		}
	}

	// Disentangle cancellation from cell failure — the two race at
	// shutdown, and a drained worker must not read as a failed sweep:
	//   - no cancellation: a real cell error (if any) is the verdict;
	//   - cancellation with every cell already completed: the grid is
	//     whole, return it — the drain arrived too late to matter;
	//   - cancellation whose only failures wrap the cancellation itself:
	//     pure drain, report ctx.Err() alone;
	//   - cancellation racing a genuine cell error: surface both, joined,
	//     so errors.Is(err, context.Canceled) and the cell failure each
	//     stay visible.
	cellErr := firstErr
	if errors.Is(cellErr, context.Canceled) || (ctx.Err() != nil && errors.Is(cellErr, ctx.Err())) {
		cellErr = nil
	}
	switch {
	case ctx.Err() == nil && cellErr == nil && firstErr == nil:
		return out, nil
	case ctx.Err() == nil && cellErr == nil:
		// A cancellation-wrapped cell error without external cancellation:
		// some job saw the pool's internal cancel (or fabricated one);
		// keep the original first-error behaviour.
		return nil, firstErr
	case ctx.Err() == nil:
		return nil, cellErr
	case cellErr == nil && done == n && failed == 0:
		return out, nil
	case cellErr == nil:
		return nil, ctx.Err()
	default:
		return nil, errors.Join(ctx.Err(), cellErr)
	}
}

// runCell executes one job attempt with panic isolation: a panic in the
// job becomes a CellPanicError instead of crashing the pool.
func runCell[T any](ctx context.Context, job func(ctx context.Context, p Point, src *rng.Source) (T, error), p Point, src *rng.Source) (v T, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &CellPanicError{Cell: p.Label(), Value: r, Stack: debug.Stack()}
		}
	}()
	return job(ctx, p, src)
}
