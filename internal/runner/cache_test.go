package runner

import (
	"context"
	"sync"
	"testing"

	"mfdl/internal/fluid"
	"mfdl/internal/rng"
	"mfdl/internal/scheme"
)

func TestCacheSolvesOnce(t *testing.T) {
	c := NewCache()
	k := Key{Scheme: scheme.MTSD, Params: fluid.PaperParams, K: 10, P: 0.9, Lambda0: 1}
	a, err := c.Evaluate(k)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Evaluate(k)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("second Evaluate did not return the cached result pointer")
	}
	if hits, misses := c.Stats(); hits != 1 || misses != 1 {
		t.Fatalf("hits=%d misses=%d", hits, misses)
	}
}

// Sweeping ρ under a scheme that ignores ρ must cost exactly one solve.
func TestCacheNormalizesRho(t *testing.T) {
	c := NewCache()
	base := Key{Scheme: scheme.MTCD, Params: fluid.PaperParams, K: 10, P: 0.9, Lambda0: 1}
	for _, rho := range []float64{0, 0.25, 0.5, 1} {
		k := base
		k.Rho = rho
		if _, err := c.Evaluate(k); err != nil {
			t.Fatal(err)
		}
	}
	if hits, misses := c.Stats(); misses != 1 || hits != 3 {
		t.Fatalf("hits=%d misses=%d, want 3/1", hits, misses)
	}
	// CMFSD does depend on ρ: distinct solves.
	cm := NewCache()
	for _, rho := range []float64{0, 0.5} {
		k := Key{Scheme: scheme.CMFSD, Params: fluid.PaperParams, K: 5, P: 0.9, Lambda0: 1, Rho: rho}
		if _, err := cm.Evaluate(k); err != nil {
			t.Fatal(err)
		}
	}
	if _, misses := cm.Stats(); misses != 2 {
		t.Fatalf("CMFSD rho collapsed: misses=%d", misses)
	}
}

func TestCacheErrorsAreCachedToo(t *testing.T) {
	c := NewCache()
	k := Key{Scheme: scheme.MTSD, Params: fluid.PaperParams, K: 10, P: 2, Lambda0: 1}
	if _, err := c.Evaluate(k); err == nil {
		t.Fatal("p=2 accepted")
	}
	if _, err := c.Evaluate(k); err == nil {
		t.Fatal("cached error lost")
	}
}

// Concurrent workers hammering the same key must agree on one result.
func TestCacheConcurrent(t *testing.T) {
	c := NewCache()
	k := Key{Scheme: scheme.CMFSD, Params: fluid.PaperParams, K: 5, P: 0.8, Lambda0: 1, Rho: 0.3}
	var wg sync.WaitGroup
	results := make([]float64, 16)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := c.Evaluate(k)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = res.AvgOnlinePerFile()
		}(i)
	}
	wg.Wait()
	for _, v := range results[1:] {
		if v != results[0] {
			t.Fatalf("divergent cached results: %v vs %v", v, results[0])
		}
	}
	if _, misses := c.Stats(); misses != 1 {
		t.Fatalf("misses=%d, want 1", misses)
	}
}

// A cache plugged into Run turns an n-cell grid over an insensitive
// dimension into one solve without changing any result.
func TestCacheInsideRun(t *testing.T) {
	g, err := NewGrid(Dim{Name: "rho", Values: Linspace(0, 1, 9)})
	if err != nil {
		t.Fatal(err)
	}
	c := NewCache()
	out, err := Run(context.Background(), g,
		func(ctx context.Context, p Point, src *rng.Source) (float64, error) {
			rho, _ := p.Value("rho")
			res, err := c.Evaluate(Key{
				Scheme: scheme.MTSD, Params: fluid.PaperParams,
				K: 10, P: 0.9, Lambda0: 1, Rho: rho,
			})
			if err != nil {
				return 0, err
			}
			return res.AvgOnlinePerFile(), nil
		}, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range out[1:] {
		if v != out[0] {
			t.Fatalf("MTSD varied with rho: %v", out)
		}
	}
	if _, misses := c.Stats(); misses != 1 {
		t.Fatalf("misses=%d, want 1", misses)
	}
}
