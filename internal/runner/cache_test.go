package runner

import (
	"context"
	"sync"
	"testing"

	"mfdl/internal/fluid"
	"mfdl/internal/rng"
	"mfdl/internal/runner/diskcache"
	"mfdl/internal/scheme"
)

func TestCacheSolvesOnce(t *testing.T) {
	c := NewCache()
	k := Key{Scheme: scheme.MTSD, Params: fluid.PaperParams, K: 10, P: 0.9, Lambda0: 1}
	a, err := c.Evaluate(k)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Evaluate(k)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("second Evaluate did not return the cached result pointer")
	}
	if s := c.Stats(); s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("hits=%d misses=%d", s.Hits, s.Misses)
	}
}

// Sweeping ρ under a scheme that ignores ρ must cost exactly one solve.
func TestCacheNormalizesRho(t *testing.T) {
	c := NewCache()
	base := Key{Scheme: scheme.MTCD, Params: fluid.PaperParams, K: 10, P: 0.9, Lambda0: 1}
	for _, rho := range []float64{0, 0.25, 0.5, 1} {
		k := base
		k.Rho = rho
		if _, err := c.Evaluate(k); err != nil {
			t.Fatal(err)
		}
	}
	if s := c.Stats(); s.Misses != 1 || s.Hits != 3 {
		t.Fatalf("hits=%d misses=%d, want 3/1", s.Hits, s.Misses)
	}
	// CMFSD does depend on ρ: distinct solves.
	cm := NewCache()
	for _, rho := range []float64{0, 0.5} {
		k := Key{Scheme: scheme.CMFSD, Params: fluid.PaperParams, K: 5, P: 0.9, Lambda0: 1, Rho: rho}
		if _, err := cm.Evaluate(k); err != nil {
			t.Fatal(err)
		}
	}
	if s := cm.Stats(); s.Misses != 2 {
		t.Fatalf("CMFSD rho collapsed: misses=%d", s.Misses)
	}
}

func TestCacheErrorsAreCachedToo(t *testing.T) {
	c := NewCache()
	k := Key{Scheme: scheme.MTSD, Params: fluid.PaperParams, K: 10, P: 2, Lambda0: 1}
	if _, err := c.Evaluate(k); err == nil {
		t.Fatal("p=2 accepted")
	}
	if _, err := c.Evaluate(k); err == nil {
		t.Fatal("cached error lost")
	}
}

// Concurrent workers hammering the same key must agree on one result.
func TestCacheConcurrent(t *testing.T) {
	c := NewCache()
	k := Key{Scheme: scheme.CMFSD, Params: fluid.PaperParams, K: 5, P: 0.8, Lambda0: 1, Rho: 0.3}
	var wg sync.WaitGroup
	results := make([]float64, 16)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := c.Evaluate(k)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = res.AvgOnlinePerFile()
		}(i)
	}
	wg.Wait()
	for _, v := range results[1:] {
		if v != results[0] {
			t.Fatalf("divergent cached results: %v vs %v", v, results[0])
		}
	}
	if s := c.Stats(); s.Misses != 1 {
		t.Fatalf("misses=%d, want 1", s.Misses)
	}
}

// A cache plugged into Run turns an n-cell grid over an insensitive
// dimension into one solve without changing any result.
func TestCacheInsideRun(t *testing.T) {
	g, err := NewGrid(Dim{Name: "rho", Values: Linspace(0, 1, 9)})
	if err != nil {
		t.Fatal(err)
	}
	c := NewCache()
	out, err := Run(context.Background(), g,
		func(ctx context.Context, p Point, src *rng.Source) (float64, error) {
			rho, _ := p.Value("rho")
			res, err := c.Evaluate(Key{
				Scheme: scheme.MTSD, Params: fluid.PaperParams,
				K: 10, P: 0.9, Lambda0: 1, Rho: rho,
			})
			if err != nil {
				return 0, err
			}
			return res.AvgOnlinePerFile(), nil
		}, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range out[1:] {
		if v != out[0] {
			t.Fatalf("MTSD varied with rho: %v", out)
		}
	}
	if s := c.Stats(); s.Misses != 1 {
		t.Fatalf("misses=%d, want 1", s.Misses)
	}
}

// Two MTCD keys differing only in ρ must share a fingerprint (ρ is dead
// under MTCD); under CMFSD they must not.
func TestFingerprintNormalizesRho(t *testing.T) {
	a := Key{Scheme: scheme.MTCD, Params: fluid.PaperParams, K: 10, P: 0.9, Lambda0: 1, Rho: 0.3}
	b := a
	b.Rho = 0.7
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("MTCD fingerprint depends on rho")
	}
	a.Scheme, b.Scheme = scheme.CMFSD, scheme.CMFSD
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("CMFSD fingerprint ignores rho")
	}
	c := a
	c.Params.Mu = a.Params.Mu * (1 + 1e-15)
	if a.Fingerprint() == c.Fingerprint() {
		t.Fatal("fingerprint not bit-exact in mu")
	}
}

// A result solved by one Cache must be decoded — not re-solved — by a
// fresh Cache sharing the same directory: the cross-process contract.
func TestDiskCacheCrossProcess(t *testing.T) {
	dir := t.TempDir()
	d1, err := diskcache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	k := Key{Scheme: scheme.CMFSD, Params: fluid.PaperParams, K: 5, P: 0.8, Lambda0: 1, Rho: 0.3}
	first := NewDiskCache(d1)
	a, err := first.Evaluate(k)
	if err != nil {
		t.Fatal(err)
	}
	if s := first.Stats(); s.Disk.Hits != 0 || s.Disk.Misses != 1 || s.Disk.Stores != 1 {
		t.Fatalf("cold stats: %+v", s.Disk)
	}
	d2, err := diskcache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	second := NewDiskCache(d2)
	b, err := second.Evaluate(k)
	if err != nil {
		t.Fatal(err)
	}
	s := second.Stats()
	if s.Misses != 1 || s.Disk.Hits != 1 || s.Disk.Misses != 0 {
		t.Fatalf("warm stats: mem=%d/%d disk=%+v", s.Hits, s.Misses, s.Disk)
	}
	if s.Solves() != 0 {
		t.Fatalf("warm run solved %d keys, want 0", s.Solves())
	}
	if a.AvgOnlinePerFile() != b.AvgOnlinePerFile() || len(a.Classes) != len(b.Classes) {
		t.Fatalf("disk round-trip changed the result: %v vs %v",
			a.AvgOnlinePerFile(), b.AvgOnlinePerFile())
	}
	for i := range a.Classes {
		if a.Classes[i] != b.Classes[i] {
			t.Fatalf("class %d changed across the disk round-trip", i+1)
		}
	}
}

// Failed solves must stay out of the persistent store.
func TestDiskCacheSkipsErrors(t *testing.T) {
	d, err := diskcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c := NewDiskCache(d)
	if _, err := c.Evaluate(Key{Scheme: scheme.MTSD, Params: fluid.PaperParams, K: 10, P: 2, Lambda0: 1}); err == nil {
		t.Fatal("p=2 accepted")
	}
	if n, err := d.Len(); err != nil || n != 0 {
		t.Fatalf("error persisted: %d entries (err=%v)", n, err)
	}
}
