package runner

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"mfdl/internal/rng"
	"mfdl/internal/trace"
)

func grid2x3(t *testing.T) Grid {
	t.Helper()
	g, err := NewGrid(
		Dim{Name: "p", Values: []float64{0.1, 0.9}},
		Dim{Name: "rho", Values: []float64{0, 0.5, 1}},
	)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGridValidation(t *testing.T) {
	if _, err := NewGrid(Dim{Name: "", Values: []float64{1}}); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := NewGrid(Dim{Name: "p", Values: nil}); err == nil {
		t.Fatal("empty values accepted")
	}
	if _, err := NewGrid(
		Dim{Name: "p", Values: []float64{1}},
		Dim{Name: "p", Values: []float64{2}},
	); err == nil {
		t.Fatal("duplicate name accepted")
	}
	if _, err := Indexed("i", 0); err == nil {
		t.Fatal("empty indexed grid accepted")
	}
}

func TestGridEnumeration(t *testing.T) {
	g := grid2x3(t)
	if g.Size() != 6 {
		t.Fatalf("size = %d", g.Size())
	}
	// Row-major: last dimension fastest.
	wantVals := [][]float64{
		{0.1, 0}, {0.1, 0.5}, {0.1, 1},
		{0.9, 0}, {0.9, 0.5}, {0.9, 1},
	}
	for i := 0; i < g.Size(); i++ {
		p := g.Point(i)
		if p.Index != i {
			t.Fatalf("point %d has index %d", i, p.Index)
		}
		if !reflect.DeepEqual(p.Values(), wantVals[i]) {
			t.Fatalf("cell %d values %v, want %v", i, p.Values(), wantVals[i])
		}
		if v, ok := p.Value("rho"); !ok || v != wantVals[i][1] {
			t.Fatalf("cell %d rho = %v, %v", i, v, ok)
		}
		if _, ok := p.Value("nope"); ok {
			t.Fatal("unknown dimension resolved")
		}
	}
	if lbl := g.Point(4).Label(); lbl != "p=0.9 rho=0.5" {
		t.Fatalf("label %q", lbl)
	}
}

func TestLinspace(t *testing.T) {
	got := Linspace(0, 1, 4)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("linspace %v", got)
	}
	if got := Linspace(2, 2, 0); !reflect.DeepEqual(got, []float64{2, 2}) {
		t.Fatalf("degenerate linspace %v", got)
	}
}

// The engine's core promise: the same (seed, grid) yields bit-identical
// results at every worker count, even when the job consumes randomness.
func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	g, err := NewGrid(
		Dim{Name: "a", Values: Linspace(0, 1, 7)},
		Dim{Name: "b", Values: Linspace(0, 1, 7)},
	)
	if err != nil {
		t.Fatal(err)
	}
	job := func(ctx context.Context, p Point, src *rng.Source) (float64, error) {
		// Mix the swept values with draws from the per-cell stream.
		s := 0.0
		for i := 0; i < 100; i++ {
			s += src.Float64()
		}
		a, _ := p.Value("a")
		b, _ := p.Value("b")
		return a + 10*b + s, nil
	}
	var base []float64
	for _, workers := range []int{1, 2, 8} {
		got, err := Run(context.Background(), g, job, Options{Workers: workers, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		if base == nil {
			base = got
			continue
		}
		if !reflect.DeepEqual(got, base) {
			t.Fatalf("workers=%d diverged from workers=1", workers)
		}
	}
}

func TestRunSeedChangesStreams(t *testing.T) {
	g, err := Indexed("i", 4)
	if err != nil {
		t.Fatal(err)
	}
	job := func(ctx context.Context, p Point, src *rng.Source) (uint64, error) {
		return src.Uint64(), nil
	}
	a, err := Run(context.Background(), g, job, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), g, job, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, b) {
		t.Fatal("different seeds produced identical streams")
	}
	seen := map[uint64]bool{}
	for _, v := range a {
		if seen[v] {
			t.Fatal("two cells drew the same value from split streams")
		}
		seen[v] = true
	}
}

// When several cells fail, the reported error must be the lowest-indexed
// one — otherwise the error depends on scheduling.
func TestRunFirstErrorDeterministic(t *testing.T) {
	g, err := Indexed("i", 32)
	if err != nil {
		t.Fatal(err)
	}
	job := func(ctx context.Context, p Point, src *rng.Source) (int, error) {
		if p.Index%3 == 2 { // cells 2, 5, 8, ... fail
			return 0, fmt.Errorf("boom %d", p.Index)
		}
		return p.Index, nil
	}
	for _, workers := range []int{1, 8} {
		_, err := Run(context.Background(), g, job, Options{Workers: workers})
		if err == nil || !strings.Contains(err.Error(), "boom 2") {
			t.Fatalf("workers=%d: err = %v, want boom 2", workers, err)
		}
	}
}

func TestRunCancellation(t *testing.T) {
	g, err := Indexed("i", 1000)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	job := func(ctx context.Context, p Point, src *rng.Source) (int, error) {
		if started.Add(1) == 3 {
			cancel()
		}
		select {
		case <-ctx.Done():
			return 0, ctx.Err()
		case <-time.After(time.Millisecond):
			return p.Index, nil
		}
	}
	startT := time.Now()
	_, runErr := Run(ctx, g, job, Options{Workers: 4})
	if !errors.Is(runErr, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", runErr)
	}
	if d := time.Since(startT); d > 2*time.Second {
		t.Fatalf("cancellation took %v", d)
	}
	if n := started.Load(); n >= 1000 {
		t.Fatalf("all %d cells ran despite cancellation", n)
	}
}

func TestRunHooks(t *testing.T) {
	g := grid2x3(t)
	rec := trace.NewRecorder()
	var cells int
	var fails int
	_, err := Run(context.Background(), g, func(ctx context.Context, p Point, src *rng.Source) (int, error) {
		if p.Index == 3 {
			return 0, errors.New("bad cell")
		}
		return p.Index, nil
	}, Options{Workers: 2, Hooks: Hooks{
		OnCell: func(p Point, err error) {
			cells++
			if err != nil {
				fails++
			}
		},
		Recorder: rec,
	}})
	if err == nil {
		t.Fatal("error swallowed")
	}
	if cells == 0 || fails == 0 {
		t.Fatalf("hooks saw %d cells, %d failures", cells, fails)
	}
	s := rec.Series("completed")
	if s == nil || s.Final() != float64(cells) {
		t.Fatalf("recorder completed series = %v, want %d", s, cells)
	}
	if f := rec.Series("failed"); f == nil || f.Final() != float64(fails) {
		t.Fatalf("recorder failed series = %v, want %d", f, fails)
	}
}

func TestRunDefaultWorkerCount(t *testing.T) {
	g, err := Indexed("i", 3)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(context.Background(), g, func(ctx context.Context, p Point, src *rng.Source) (int, error) {
		return 2 * p.Index, nil
	}, Options{}) // Workers unset
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []int{0, 2, 4}) {
		t.Fatalf("results %v", got)
	}
}
