package runner

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"math"

	"mfdl/internal/rng"
)

// init registers the fluid-sweep kind: one steady-state solve per grid
// cell, payload gob-encoded CellValue — exactly the bytes the checkpoint
// store and the fabric wire have always carried.
func init() {
	RegisterJobKind(JobKind{
		Name:     JobKindFluidSweep,
		Validate: validateFluidSweep,
		Cells: func(s JobSpec) (int, error) {
			g, err := s.Grid()
			if err != nil {
				return 0, err
			}
			return g.Size(), nil
		},
		Evaluate: evaluateFluidCell,
	})
}

// validateFluidSweep holds the fluid-specific half of JobSpec.Validate:
// the base operating point must be finite, every swept dimension must name
// a knob of the solve Key, and there is no params payload to carry.
func validateFluidSweep(s JobSpec) error {
	if len(s.Params) > 0 {
		return fmt.Errorf("runner: %s jobs carry no params", JobKindFluidSweep)
	}
	for _, v := range []float64{
		s.Base.Params.Mu, s.Base.Params.Eta, s.Base.Params.Gamma,
		s.Base.P, s.Base.Lambda0, s.Base.Rho, s.Base.Theta,
	} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("runner: job base parameter %v is not finite", v)
		}
	}
	probe := s.Base
	for _, d := range s.Dims {
		if err := SetKeyDim(&probe, d.Name, d.Values[0]); err != nil {
			return err
		}
	}
	return nil
}

func evaluateFluidCell(_ context.Context, spec JobSpec, env JobEnv, cell int, src *rng.Source) ([]byte, error) {
	g, err := spec.Grid()
	if err != nil {
		return nil, err
	}
	v, err := spec.EvaluateCell(env.Cache, g.Point(cell), src)
	if err != nil {
		return nil, err
	}
	return EncodeCellValue(v)
}

// EncodeCellValue renders one fluid cell as its payload bytes. Gob
// round-trips float64 bit patterns (including NaN) exactly, so a decoded
// cell is bit-identical to the computed one.
func EncodeCellValue(v CellValue) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("runner: cell value: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeCellValue parses a fluid cell payload.
func DecodeCellValue(payload []byte) (CellValue, error) {
	var v CellValue
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&v); err != nil {
		return CellValue{}, fmt.Errorf("runner: cell value: %w", err)
	}
	return v, nil
}
