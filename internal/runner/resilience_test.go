package runner

import (
	"context"
	"errors"
	"fmt"
	"os"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"mfdl/internal/obs"
	"mfdl/internal/rng"
	"mfdl/internal/runner/diskcache"
)

// cleanJob is a deterministic job whose result depends on both the cell
// value and the cell's stream, so any retry or resume bug that replays a
// wrong stream shows up in the bits.
func cleanJob(_ context.Context, p Point, src *rng.Source) (float64, error) {
	v, _ := p.Value("i")
	return v + src.Float64(), nil
}

func indexedGrid(t *testing.T, n int) Grid {
	t.Helper()
	g, err := Indexed("i", n)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestRunPanicBecomesCellError(t *testing.T) {
	g := indexedGrid(t, 8)
	_, err := Run(context.Background(), g,
		func(ctx context.Context, p Point, src *rng.Source) (float64, error) {
			if p.Index == 3 {
				panic("boom")
			}
			return cleanJob(ctx, p, src)
		}, Options{Workers: 4, Seed: 1})
	if err == nil {
		t.Fatal("panicking cell did not fail the run")
	}
	var pe *CellPanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error is not a CellPanicError: %v", err)
	}
	if pe.Value != "boom" || !strings.Contains(pe.Cell, "i=3") {
		t.Fatalf("wrong panic payload: cell %q value %v", pe.Cell, pe.Value)
	}
	if len(pe.Stack) == 0 {
		t.Fatal("no stack captured")
	}
}

func TestRunRetriesTransientPanic(t *testing.T) {
	g := indexedGrid(t, 8)
	want, err := Run(context.Background(), g, cleanJob, Options{Workers: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	var attempts atomic.Int64
	ob := obs.New()
	got, err := Run(context.Background(), g,
		func(ctx context.Context, p Point, src *rng.Source) (float64, error) {
			if p.Index == 5 && attempts.Add(1) == 1 {
				panic("transient")
			}
			return cleanJob(ctx, p, src)
		}, Options{Workers: 3, Seed: 7, Retries: 2, Obs: ob})
	if err != nil {
		t.Fatal(err)
	}
	// Each attempt runs on a fresh copy of the cell's stream, so the
	// retried run must be bit-identical to the clean one.
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("retried run diverged:\n got %v\nwant %v", got, want)
	}
	if n := ob.Counter("runner_cell_retries_total").Value(); n != 1 {
		t.Fatalf("retries counter = %d, want 1", n)
	}
}

func TestRunRetriesAreBounded(t *testing.T) {
	g := indexedGrid(t, 1)
	var attempts atomic.Int64
	_, err := Run(context.Background(), g,
		func(context.Context, Point, *rng.Source) (int, error) {
			attempts.Add(1)
			panic("always")
		}, Options{Workers: 1, Retries: 2})
	var pe *CellPanicError
	if !errors.As(err, &pe) {
		t.Fatalf("want CellPanicError, got %v", err)
	}
	if n := attempts.Load(); n != 3 { // 1 try + 2 retries
		t.Fatalf("attempts = %d, want 3", n)
	}
}

func TestRunDoesNotRetryPlainErrors(t *testing.T) {
	g := indexedGrid(t, 1)
	var attempts atomic.Int64
	_, err := Run(context.Background(), g,
		func(context.Context, Point, *rng.Source) (int, error) {
			attempts.Add(1)
			return 0, errors.New("deterministic failure")
		}, Options{Workers: 1, Retries: 5})
	if err == nil {
		t.Fatal("want error")
	}
	if n := attempts.Load(); n != 1 {
		t.Fatalf("plain error was retried: attempts = %d", n)
	}
}

// TestRunCheckpointResume is the crash-safety contract: a run killed
// mid-grid resumes from the checkpointed cells and produces results
// bit-identical to an uninterrupted run, without re-running the cells
// that had completed.
func TestRunCheckpointResume(t *testing.T) {
	g := indexedGrid(t, 10)
	want, err := Run(context.Background(), g, cleanJob, Options{Workers: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}

	store, err := diskcache.OpenCheckpoint(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const runKey = "resilience-test seed=3 n=10"

	// First run "crashes": cell 6 fails after cells 0..5 completed and
	// were flushed (Workers=1 makes the completed prefix deterministic).
	_, err = Run(context.Background(), g,
		func(ctx context.Context, p Point, src *rng.Source) (float64, error) {
			if p.Index == 6 {
				return 0, errors.New("simulated crash")
			}
			return cleanJob(ctx, p, src)
		}, Options{Workers: 1, Seed: 3, Checkpoint: NewCheckpoint(store, runKey)})
	if err == nil {
		t.Fatal("crashing run reported success")
	}
	ck := NewCheckpoint(store, runKey)
	if n, err := ck.Len(); err != nil || n != 6 {
		t.Fatalf("checkpointed cells = %d (%v), want 6", n, err)
	}

	// Resume: the persisted cells replay, the rest compute fresh.
	var ran atomic.Int64
	ob := obs.New()
	got, err := Run(context.Background(), g,
		func(ctx context.Context, p Point, src *rng.Source) (float64, error) {
			ran.Add(1)
			return cleanJob(ctx, p, src)
		}, Options{Workers: 4, Seed: 3, Checkpoint: ck, Obs: ob})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("resumed run diverged:\n got %v\nwant %v", got, want)
	}
	if n := ran.Load(); n != 4 {
		t.Fatalf("resume re-ran %d cells, want 4", n)
	}
	if n := ob.Counter("runner_cells_resumed_total").Value(); n != 6 {
		t.Fatalf("resumed counter = %d, want 6", n)
	}
	if err := ck.Clear(); err != nil {
		t.Fatal(err)
	}
	if n, _ := ck.Len(); n != 0 {
		t.Fatalf("Clear left %d cells", n)
	}
}

// TestRunCheckpointIgnoresForeignRun: a different run key never replays
// another run's cells, even over the same store.
func TestRunCheckpointIgnoresForeignRun(t *testing.T) {
	g := indexedGrid(t, 4)
	store, err := diskcache.OpenCheckpoint(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(context.Background(), g, cleanJob,
		Options{Workers: 2, Seed: 1, Checkpoint: NewCheckpoint(store, "run A")}); err != nil {
		t.Fatal(err)
	}
	var ran atomic.Int64
	if _, err := Run(context.Background(), g,
		func(ctx context.Context, p Point, src *rng.Source) (float64, error) {
			ran.Add(1)
			return cleanJob(ctx, p, src)
		}, Options{Workers: 2, Seed: 1, Checkpoint: NewCheckpoint(store, "run B")}); err != nil {
		t.Fatal(err)
	}
	if n := ran.Load(); n != 4 {
		t.Fatalf("foreign checkpoints were replayed: ran %d cells, want 4", n)
	}
}

func TestCheckpointNilIsDisabled(t *testing.T) {
	ck := NewCheckpoint(nil, "anything")
	if ck != nil {
		t.Fatal("nil store must yield a nil checkpoint")
	}
	if ck.Key() != "" {
		t.Fatal("nil checkpoint key")
	}
	if n, err := ck.Len(); err != nil || n != 0 {
		t.Fatalf("nil checkpoint Len = %d, %v", n, err)
	}
	if err := ck.Clear(); err != nil {
		t.Fatal(err)
	}
	var v float64
	if ck.load(0, &v) {
		t.Fatal("nil checkpoint reported a hit")
	}
	ck.save(0, 1.0) // must not panic
	g := indexedGrid(t, 3)
	if _, err := Run(context.Background(), g, cleanJob, Options{Workers: 2, Checkpoint: ck}); err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointUndecodablePayloadIsMiss(t *testing.T) {
	store, err := diskcache.OpenCheckpoint(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const key = "gob-mismatch"
	if err := store.Put(key, 0, []byte("not gob at all")); err != nil {
		t.Fatal(err)
	}
	ck := NewCheckpoint(store, key)
	var v float64
	if ck.load(0, &v) {
		t.Fatal("undecodable payload read as a hit")
	}
}

func ExampleNewCheckpoint() {
	dir, _ := os.MkdirTemp("", "ckpt")
	defer os.RemoveAll(dir)
	store, _ := diskcache.OpenCheckpoint(dir)
	g, _ := Indexed("i", 3)
	out, _ := Run(context.Background(), g,
		func(_ context.Context, p Point, _ *rng.Source) (float64, error) {
			v, _ := p.Value("i")
			return v * v, nil
		}, Options{Checkpoint: NewCheckpoint(store, "example-run v1")})
	fmt.Println(out)
	// Output: [0 1 4]
}
