package runner

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"mfdl/internal/runner/diskcache"
)

// CellPanicError is the failure Run reports for a cell whose job
// panicked: the panic is recovered on the worker, so a crashing cell
// fails that cell (and, through the usual first-error rule, the run's
// error value) instead of killing the whole process.
type CellPanicError struct {
	// Cell is the panicking cell's label.
	Cell string
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack captured at recovery.
	Stack []byte
}

func (e *CellPanicError) Error() string {
	return fmt.Sprintf("runner: cell %s panicked: %v", e.Cell, e.Value)
}

// Checkpoint binds a diskcache.CheckpointStore to one run identity so Run
// can persist each completed cell and replay persisted cells on a re-run.
// The run key must capture everything that determines the cell values —
// parameters, grid shape, solver revision — exactly as a cache key would;
// two Runs with the same key must compute bit-identical cells.
//
// Payloads cross the disk as gob, which round-trips float64 bit patterns
// (including NaN) exactly, so a resumed run emits byte-identical output.
type Checkpoint struct {
	store *diskcache.CheckpointStore
	key   string
}

// NewCheckpoint binds store to runKey. A nil store yields a nil
// checkpoint (checkpointing disabled).
func NewCheckpoint(store *diskcache.CheckpointStore, runKey string) *Checkpoint {
	if store == nil {
		return nil
	}
	return &Checkpoint{store: store, key: runKey}
}

// Key returns the run key the checkpoint is bound to.
func (c *Checkpoint) Key() string {
	if c == nil {
		return ""
	}
	return c.key
}

// Len returns how many cells are currently checkpointed for this run.
func (c *Checkpoint) Len() (int, error) {
	if c == nil {
		return 0, nil
	}
	return c.store.Len(c.key)
}

// Clear drops the run's checkpoints; call it once the run has fully
// completed and its results are delivered.
func (c *Checkpoint) Clear() error {
	if c == nil {
		return nil
	}
	return c.store.Clear(c.key)
}

// LoadRaw returns cell's checkpointed payload bytes verbatim, reporting
// whether one existed — the replay path for payloads that are already an
// encoding of their own (see RunJobPayloads), where the gob layer of
// load/save would wrap the bytes a second time.
func (c *Checkpoint) LoadRaw(cell int) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	return c.store.Get(c.key, cell)
}

// SaveRaw persists cell's payload bytes verbatim, best-effort like save.
func (c *Checkpoint) SaveRaw(cell int, payload []byte) {
	if c == nil {
		return
	}
	_ = c.store.Put(c.key, cell, payload)
}

// load decodes cell's checkpointed result into v (a pointer), reporting
// whether a valid checkpoint existed. Undecodable payloads read as
// misses, so a stale or foreign entry re-runs the cell instead of
// failing the run.
func (c *Checkpoint) load(cell int, v any) bool {
	if c == nil {
		return false
	}
	payload, ok := c.store.Get(c.key, cell)
	if !ok {
		return false
	}
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(v); err != nil {
		return false
	}
	return true
}

// save persists cell's result best-effort: a full or read-only disk costs
// the resume capability, never the run.
func (c *Checkpoint) save(cell int, v any) {
	if c == nil {
		return
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return
	}
	_ = c.store.Put(c.key, cell, buf.Bytes())
}
