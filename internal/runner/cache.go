package runner

import (
	"fmt"
	"math"
	"sync"
	"time"

	"mfdl/internal/correlation"
	"mfdl/internal/fluid"
	"mfdl/internal/metrics"
	"mfdl/internal/obs"
	"mfdl/internal/runner/diskcache"
	"mfdl/internal/scheme"
)

// Key identifies one steady-state solve: the scheme plus everything that
// determines its fixed point. Grid cells that map to the same Key share
// one solve.
type Key struct {
	Scheme scheme.Scheme `json:"scheme"`
	Params fluid.Params  `json:"params"`
	// K, P and Lambda0 determine the correlation model.
	K       int     `json:"k"`
	P       float64 `json:"p"`
	Lambda0 float64 `json:"lambda0"`
	// Rho is the CMFSD allocation ratio; the other schemes normalize it
	// to 0 so that sweeping ρ under them costs one solve, not one per
	// cell.
	Rho float64 `json:"rho"`
	// Theta is the downloader abort rate θ; every scheme honors it.
	Theta float64 `json:"theta"`
}

// normalize collapses key components the scheme does not depend on.
func (k Key) normalize() Key {
	if k.Scheme != scheme.CMFSD {
		k.Rho = 0
	}
	return k
}

// solveTolerance is the steady-state convergence tolerance the scheme
// solvers run at (the ode.SteadyStateOptions default). It is baked into
// every fingerprint so that a future tolerance change invalidates disk
// entries solved under the old numerics instead of silently reusing them.
const solveTolerance = 1e-10

// Fingerprint renders the normalized key as a stable string for the
// persistent cache. Floats are encoded as their exact IEEE-754 bits, so
// two keys share a fingerprint iff they solve bit-identically.
func (k Key) Fingerprint() string {
	k = k.normalize()
	b := math.Float64bits
	return fmt.Sprintf("tol=%g scheme=%s k=%d mu=%016x eta=%016x gamma=%016x p=%016x lambda0=%016x rho=%016x theta=%016x",
		solveTolerance, k.Scheme, k.K,
		b(k.Params.Mu), b(k.Params.Eta), b(k.Params.Gamma),
		b(k.P), b(k.Lambda0), b(k.Rho), b(k.Theta))
}

// CacheStats aggregates the counters of both cache tiers.
type CacheStats struct {
	// Hits and Misses count Evaluate calls against the in-memory tier.
	Hits, Misses int
	// Disk holds the persistent tier's counters; all zero when no disk
	// store is attached.
	Disk diskcache.Stats
}

// Solves returns the number of keys that actually ran a solver: memory
// misses not served by the disk tier.
func (s CacheStats) Solves() int { return s.Misses - s.Disk.Hits }

// Cache memoizes scheme solves across grid cells, optionally backed by a
// persistent cross-process tier. It is safe for concurrent use; when
// several workers request the same key the solve runs once and the rest
// block on it — the disk tier is consulted inside that single flight, so
// each key costs at most one disk read and one solve per process.
// Results are shared — callers must treat them as immutable.
type Cache struct {
	mu      sync.Mutex
	entries map[Key]*cacheEntry
	misses  int
	hits    int
	disk    *diskcache.Store

	// Observability: when a registry is attached via WithObs the cache
	// reports its traffic through solvecache_* counters and a
	// solvecache_solve_seconds histogram. All fields are nil (no-op)
	// until then.
	obsHits      *obs.Counter
	obsMisses    *obs.Counter
	obsSolves    *obs.Counter
	solveSeconds *obs.Histogram
}

type cacheEntry struct {
	once sync.Once
	res  *metrics.SchemeResult
	err  error
}

// NewCache returns an empty in-memory cache.
func NewCache() *Cache {
	return &Cache{entries: map[Key]*cacheEntry{}}
}

// NewDiskCache returns a cache whose misses fall through to (and whose
// solves populate) the persistent store.
func NewDiskCache(disk *diskcache.Store) *Cache {
	c := NewCache()
	c.disk = disk
	return c
}

// Disk returns the attached persistent store, or nil.
func (c *Cache) Disk() *diskcache.Store { return c.disk }

// WithObs routes the cache's counters through the registry —
// solvecache_hits_total / solvecache_misses_total / solvecache_solves_total
// plus a solvecache_solve_seconds latency histogram — and wires the disk
// tier's diskcache_* counters too. CacheStats remains available as a
// compatibility view of the same traffic. A nil registry is a no-op.
// Returns the cache for chaining.
func (c *Cache) WithObs(reg *obs.Registry) *Cache {
	c.obsHits = reg.Counter("solvecache_hits_total")
	c.obsMisses = reg.Counter("solvecache_misses_total")
	c.obsSolves = reg.Counter("solvecache_solves_total")
	c.solveSeconds = reg.Histogram("solvecache_solve_seconds", obs.LatencyBuckets)
	if c.disk != nil {
		c.disk.WithObs(reg)
	}
	return c
}

// Evaluate returns the steady-state metrics for the key, solving it at
// most once per cache lifetime. With a disk tier attached, a key already
// solved by any previous process is decoded instead of re-solved; fresh
// solves are persisted best-effort (a full disk never fails the solve).
func (c *Cache) Evaluate(k Key) (*metrics.SchemeResult, error) {
	k = k.normalize()
	c.mu.Lock()
	e, ok := c.entries[k]
	if !ok {
		e = &cacheEntry{}
		c.entries[k] = e
		c.misses++
	} else {
		c.hits++
	}
	c.mu.Unlock()
	if !ok {
		c.obsMisses.Inc()
	} else {
		c.obsHits.Inc()
	}
	e.once.Do(func() {
		if c.disk != nil {
			if res, ok := c.disk.Get(k.Fingerprint()); ok {
				e.res = res
				return
			}
		}
		c.obsSolves.Inc()
		var solveStart time.Time
		if c.solveSeconds != nil {
			solveStart = time.Now()
		}
		corr, err := correlation.New(k.K, k.P, k.Lambda0)
		if err != nil {
			e.err = err
			return
		}
		e.res, e.err = scheme.Evaluate(k.Scheme, k.Params, corr, scheme.Options{Rho: k.Rho, Theta: k.Theta})
		if c.solveSeconds != nil {
			c.solveSeconds.Since(solveStart)
		}
		if e.err == nil && c.disk != nil {
			_ = c.disk.Put(k.Fingerprint(), e.res)
		}
	})
	return e.res, e.err
}

// Stats reports both tiers' counters: how many Evaluate calls collapsed
// into an in-memory entry, and how the fall-through traffic fared against
// the persistent store.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	hits, misses := c.hits, c.misses
	c.mu.Unlock()
	s := CacheStats{Hits: hits, Misses: misses}
	if c.disk != nil {
		s.Disk = c.disk.Stats()
	}
	return s
}
