package runner

import (
	"sync"

	"mfdl/internal/correlation"
	"mfdl/internal/fluid"
	"mfdl/internal/metrics"
	"mfdl/internal/scheme"
)

// Key identifies one steady-state solve: the scheme plus everything that
// determines its fixed point. Grid cells that map to the same Key share
// one solve.
type Key struct {
	Scheme scheme.Scheme
	Params fluid.Params
	// K, P and Lambda0 determine the correlation model.
	K       int
	P       float64
	Lambda0 float64
	// Rho is the CMFSD allocation ratio; the other schemes normalize it
	// to 0 so that sweeping ρ under them costs one solve, not one per
	// cell.
	Rho float64
}

// normalize collapses key components the scheme does not depend on.
func (k Key) normalize() Key {
	if k.Scheme != scheme.CMFSD {
		k.Rho = 0
	}
	return k
}

// Cache memoizes scheme solves across grid cells. It is safe for
// concurrent use; when several workers request the same key the solve runs
// once and the rest block on it. Results are shared — callers must treat
// them as immutable.
type Cache struct {
	mu      sync.Mutex
	entries map[Key]*cacheEntry
	misses  int
	hits    int
}

type cacheEntry struct {
	once sync.Once
	res  *metrics.SchemeResult
	err  error
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	return &Cache{entries: map[Key]*cacheEntry{}}
}

// Evaluate returns the steady-state metrics for the key, solving it at
// most once per cache lifetime.
func (c *Cache) Evaluate(k Key) (*metrics.SchemeResult, error) {
	k = k.normalize()
	c.mu.Lock()
	e, ok := c.entries[k]
	if !ok {
		e = &cacheEntry{}
		c.entries[k] = e
		c.misses++
	} else {
		c.hits++
	}
	c.mu.Unlock()
	e.once.Do(func() {
		corr, err := correlation.New(k.K, k.P, k.Lambda0)
		if err != nil {
			e.err = err
			return
		}
		e.res, e.err = scheme.Evaluate(k.Scheme, k.Params, corr, scheme.Options{Rho: k.Rho})
	})
	return e.res, e.err
}

// Stats reports how many Evaluate calls hit an existing entry and how many
// had to solve.
func (c *Cache) Stats() (hits, misses int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
