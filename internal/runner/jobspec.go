package runner

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"math"
	"strings"

	"mfdl/internal/rng"
)

// JobSpecSchemaVersion is embedded in every encoded JobSpec and checked on
// decode, so a coordinator and a worker built from different revisions of
// the job model refuse to exchange work instead of silently computing
// different cells.
const JobSpecSchemaVersion = 1

// JobKindFluidSweep is the job kind of a fluid parameter sweep: an
// N-dimensional grid of steady-state solves over one scheme's operating
// point. It is registered in this package's init; simulation-backed kinds
// register themselves the same way (see RegisterJobKind) and join the wire
// protocol without a schema break.
const JobKindFluidSweep = "fluid-sweep"

// JobSpec is the serializable description of one parameter-study run: the
// base operating point, the swept grid, and the execution identity (seed,
// replicas). It is the single type the local runner, the distributed
// coordinator, its workers and the checkpoint store all speak — a sweep is
// no longer a closure, it is data.
//
// Everything that determines a cell's value is inside the spec, so two
// processes holding equal specs compute bit-identical cells; Fingerprint
// renders that identity as a stable string (built on Key.Fingerprint, with
// every float encoded as its exact IEEE-754 bits). The JSON encoding is
// canonical — field order is fixed and encoding/json's shortest-round-trip
// float rendering restores every finite float64 bit-exactly — so a spec
// can cross the wire, the disk, or both, and still fingerprint the same.
type JobSpec struct {
	// Schema is the job-model revision; see JobSpecSchemaVersion.
	Schema int `json:"schema"`
	// Kind names the cell computation; see JobKindFluidSweep.
	Kind string `json:"kind"`
	// Base is the operating point the swept dimensions override cell by
	// cell.
	Base Key `json:"base"`
	// Dims are the swept dimensions in grid order; names come from
	// KeyDims.
	Dims []Dim `json:"dims"`
	// Seed is the base seed from which every cell's random stream is
	// split (see CellStream). Fluid solves draw nothing from it, but it is
	// part of the job identity so that simulation-backed kinds inherit the
	// same resume and distribution semantics unchanged.
	Seed uint64 `json:"seed"`
	// Replicas is carried for the same reason: fluid cells ignore it, a
	// simulation-backed kind fans each cell into this many independently
	// seeded replicas.
	Replicas int `json:"replicas"`
	// Params is the kind-specific payload (absent for fluid sweeps). It
	// must itself be canonical JSON — produced by one json.Marshal of the
	// kind's params struct — so that equal specs still encode to equal
	// bytes; the kind's Validate enforces whatever structure it expects.
	Params json.RawMessage `json:"params,omitempty"`
}

// KeyDims lists the dimension names a JobSpec may sweep: every axis maps
// onto one knob of the solve Key.
var KeyDims = []string{"p", "rho", "k", "mu", "gamma", "eta", "lambda0", "theta"}

// SetKeyDim overrides one named knob of a solve key. The name must come
// from KeyDims.
func SetKeyDim(key *Key, name string, v float64) error {
	switch name {
	case "p":
		key.P = v
	case "rho":
		key.Rho = v
	case "k":
		key.K = int(math.Round(v))
	case "mu":
		key.Params.Mu = v
	case "gamma":
		key.Params.Gamma = v
	case "eta":
		key.Params.Eta = v
	case "lambda0":
		key.Lambda0 = v
	case "theta":
		key.Theta = v
	default:
		return fmt.Errorf("runner: unknown job dimension %q (have %s)",
			name, strings.Join(KeyDims, ", "))
	}
	return nil
}

// Validate checks the spec's schema, kind, grid and dimension values —
// every number must be finite (NaN or ±Inf would break the canonical JSON
// encoding and can never name a meaningful cell) — and then hands off to
// the registered kind's own Validate for kind-specific invariants.
func (s JobSpec) Validate() error {
	if s.Schema != JobSpecSchemaVersion {
		return fmt.Errorf("runner: job schema %d, this build speaks %d", s.Schema, JobSpecSchemaVersion)
	}
	kind, ok := LookupJobKind(s.Kind)
	if !ok {
		return errUnknownKind(s.Kind)
	}
	if s.Replicas < 0 {
		return fmt.Errorf("runner: job replicas %d must be >= 0", s.Replicas)
	}
	if _, err := s.Grid(); err != nil {
		return err
	}
	for _, d := range s.Dims {
		for _, v := range d.Values {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("runner: job dimension %q value %v is not finite", d.Name, v)
			}
		}
	}
	if kind.Validate != nil {
		if err := kind.Validate(s); err != nil {
			return err
		}
	}
	return nil
}

// CellCount returns how many executable cells the spec fans out to under
// its registered kind — the unit the fabric leases and the checkpoint
// store indexes. For a fluid sweep this is the grid size; replicated kinds
// multiply in their replica count.
func (s JobSpec) CellCount() (int, error) {
	kind, ok := LookupJobKind(s.Kind)
	if !ok {
		return 0, errUnknownKind(s.Kind)
	}
	return kind.Cells(s)
}

// Grid returns the spec's swept grid.
func (s JobSpec) Grid() (Grid, error) {
	return NewGrid(s.Dims...)
}

// CellKey returns the solve key of one grid cell: the base operating point
// with every swept dimension overridden by the cell's value.
func (s JobSpec) CellKey(p Point) (Key, error) {
	key := s.Base
	for _, d := range s.Dims {
		v, ok := p.Value(d.Name)
		if !ok {
			return Key{}, fmt.Errorf("runner: cell %s misses job dimension %q", p.Label(), d.Name)
		}
		if err := SetKeyDim(&key, d.Name, v); err != nil {
			return Key{}, err
		}
	}
	return key, nil
}

// CellValue is the evaluation of one JobSpec cell — the payload that
// crosses checkpoint files and the fabric wire. Floats travel as gob,
// which round-trips their bit patterns exactly.
type CellValue struct {
	// Values are the swept dimension values, in grid dimension order.
	Values []float64
	// AvgOnline and AvgDownload are the paper's per-file aggregates.
	AvgOnline, AvgDownload float64
}

// EvaluateCell computes one cell of the job through the given solve cache
// (which must be non-nil; share one cache across cells to pool coinciding
// solves). src is the cell's split random stream — a fluid solve draws
// nothing from it, but deriving it (see CellStream) is part of the
// determinism contract every executor honors, so simulation-backed kinds
// can rely on it.
func (s JobSpec) EvaluateCell(cache *Cache, p Point, src *rng.Source) (CellValue, error) {
	_ = src
	key, err := s.CellKey(p)
	if err != nil {
		return CellValue{}, err
	}
	res, err := cache.Evaluate(key)
	if err != nil {
		return CellValue{}, err
	}
	return CellValue{
		Values:      p.Values(),
		AvgOnline:   res.AvgOnlinePerFile(),
		AvgDownload: res.AvgDownloadPerFile(),
	}, nil
}

// Fingerprint renders the job's identity as a stable string: the schema
// and kind, the base Key.Fingerprint, every dimension's values as exact
// IEEE-754 bits, and the seed/replica setting. Two specs share a
// fingerprint iff they compute bit-identical cell sets, so the fingerprint
// keys both the checkpoint store and the fabric wire — a worker can never
// deliver a cell into the wrong run.
func (s JobSpec) Fingerprint() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "job v%d %s ", s.Schema, s.Kind)
	sb.WriteString(s.Base.Fingerprint())
	for _, d := range s.Dims {
		fmt.Fprintf(&sb, " %s=[", d.Name)
		for i, v := range d.Values {
			if i > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "%016x", math.Float64bits(v))
		}
		sb.WriteByte(']')
	}
	fmt.Fprintf(&sb, " seed=%d replicas=%d", s.Seed, s.Replicas)
	// The params component appears only when a kind carries params, so the
	// fingerprints of pre-existing fluid jobs — and with them every
	// checkpoint directory and fabric run identity — are unchanged.
	if len(s.Params) > 0 {
		sum := sha256.Sum256(s.Params)
		fmt.Fprintf(&sb, " params=sha256:%x", sum)
	}
	return sb.String()
}

// Canonical returns the spec's canonical JSON encoding. The encoding is a
// pure function of the spec value, so equal specs encode to equal bytes.
func (s JobSpec) Canonical() ([]byte, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return json.Marshal(s)
}

// ParseJobSpec decodes and validates a JobSpec from its JSON encoding.
func ParseJobSpec(data []byte) (JobSpec, error) {
	var s JobSpec
	if err := json.Unmarshal(data, &s); err != nil {
		return JobSpec{}, fmt.Errorf("runner: job spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return JobSpec{}, err
	}
	return s, nil
}

// CellStream returns the random stream cell i receives under base seed —
// the i-th split of the seed's parent stream, exactly what Run hands cell
// i at any worker count. A remote worker can therefore rebuild any cell's
// stream without seeing the other cells, which is what makes a
// distributed run byte-identical to a local one.
func CellStream(seed uint64, i int) *rng.Source {
	parent := rng.New(seed)
	var src *rng.Source
	for j := 0; j <= i; j++ {
		src = parent.Split()
	}
	return src
}

// RunJob executes a fluid-sweep job locally over the runner pool and
// returns the per-cell values in grid order. cache may be nil (a private
// in-memory cache is used); opts.Seed is overridden by the spec's seed,
// everything else (workers, retries, checkpointing, hooks, obs) applies as
// in Run. The output is byte-identical to a distributed execution of the
// same spec at any worker count. Other kinds return their payloads through
// RunJobPayloads and decode them themselves.
func RunJob(ctx context.Context, spec JobSpec, cache *Cache, opts Options) ([]CellValue, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.Kind != JobKindFluidSweep {
		return nil, fmt.Errorf("runner: RunJob decodes %q cells only (got %q); use RunJobPayloads",
			JobKindFluidSweep, spec.Kind)
	}
	g, err := spec.Grid()
	if err != nil {
		return nil, err
	}
	if cache == nil {
		cache = NewCache()
	}
	opts.Seed = spec.Seed
	return Run(ctx, g, func(_ context.Context, p Point, src *rng.Source) (CellValue, error) {
		return spec.EvaluateCell(cache, p, src)
	}, opts)
}
