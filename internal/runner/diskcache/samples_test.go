package diskcache

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestSampleStorePutGetRoundTrip(t *testing.T) {
	s, err := OpenSamples(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const key = "sample v1 {config}"
	if _, ok := s.Get(key, 7); ok {
		t.Fatal("hit on empty store")
	}
	want := []byte(`{"values":{"x":"1p+0"}}`)
	if err := s.Put(key, 7, want); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(key, 7)
	if !ok {
		t.Fatal("miss after Put")
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("round trip mangled payload: %q", got)
	}
	// A different seed under the same key is its own entry.
	if _, ok := s.Get(key, 8); ok {
		t.Fatal("seed 8 served seed 7's sample")
	}
	if err := s.Put(key, 8, want); err != nil {
		t.Fatal(err)
	}
	if n, err := s.Len(key); err != nil || n != 2 {
		t.Fatalf("Len = %d (%v), want 2", n, err)
	}
	if st := s.Stats(); st.Hits != 1 || st.Misses != 2 || st.Stores != 2 {
		t.Fatalf("stats %+v", st)
	}
	if err := s.Clear(key); err != nil {
		t.Fatal(err)
	}
	if n, err := s.Len(key); err != nil || n != 0 {
		t.Fatalf("Len after Clear = %d (%v), want 0", n, err)
	}
}

func TestSampleStoreRejectsNilPayload(t *testing.T) {
	s, err := OpenSamples(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k", 1, nil); err == nil {
		t.Fatal("nil payload accepted")
	}
}

// Garbage and truncated sample entries must read as misses (never errors)
// and be evicted so the next Put can repair them — the same discipline as
// the solve cache and checkpoint store.
func TestSampleStoreCorruptEntryIsMiss(t *testing.T) {
	for name, corrupt := range map[string]func([]byte) []byte{
		"garbage":     func([]byte) []byte { return []byte("not json at all {{{") },
		"truncated":   func(b []byte) []byte { return b[:len(b)/2] },
		"empty":       func([]byte) []byte { return nil },
		"nullpayload": func([]byte) []byte { return []byte(`{"schema":1,"key":"k","seed":"0000000000000007","payload":null}`) },
		"badseed":     func([]byte) []byte { return []byte(`{"schema":1,"key":"k","seed":"not-hex","payload":"eA=="}`) },
	} {
		t.Run(name, func(t *testing.T) {
			s, err := OpenSamples(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Put("k", 7, []byte("x")); err != nil {
				t.Fatal(err)
			}
			path := s.samplePath("k", 7)
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, corrupt(data), 0o644); err != nil {
				t.Fatal(err)
			}
			if _, ok := s.Get("k", 7); ok {
				t.Fatal("corrupt entry served as a hit")
			}
			st := s.Stats()
			if st.Corrupt != 1 || st.Evicted != 1 {
				t.Fatalf("stats %+v, want 1 corrupt / 1 evicted", st)
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Fatal("corrupt entry not evicted from disk")
			}
			// The store must heal: a fresh Put followed by a Get hits.
			if err := s.Put("k", 7, []byte("x")); err != nil {
				t.Fatal(err)
			}
			if _, ok := s.Get("k", 7); !ok {
				t.Fatal("store did not heal after eviction")
			}
		})
	}
}

// An entry written under a different schema version is stale: miss + evict.
func TestSampleStoreSchemaBumpInvalidates(t *testing.T) {
	s, err := OpenSamples(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	stale, err := json.Marshal(sampleEntry{
		Schema: SampleStoreSchemaVersion + 1, Key: "k",
		Seed: "0000000000000007", Payload: []byte("x"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(s.keyDir("k"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.samplePath("k", 7), stale, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("k", 7); ok {
		t.Fatal("stale-schema entry served as a hit")
	}
	if st := s.Stats(); st.Evicted != 1 || st.Misses != 1 {
		t.Fatalf("stats %+v, want evicted=1 misses=1", st)
	}
}

// The full key is echoed in every entry, so even a directory-name hash
// collision (simulated here by writing a foreign-key entry at this key's
// path) can never serve a sample from a different configuration.
func TestSampleStoreKeyEchoMismatchIsMiss(t *testing.T) {
	s, err := OpenSamples(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	foreign, err := json.Marshal(sampleEntry{
		Schema: SampleStoreSchemaVersion, Key: "some other configuration",
		Seed: "0000000000000007", Payload: []byte("x"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(s.keyDir("k"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.samplePath("k", 7), foreign, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("k", 7); ok {
		t.Fatal("foreign-key entry served as a hit")
	}
	if _, err := os.Stat(s.samplePath("k", 7)); !os.IsNotExist(err) {
		t.Fatal("foreign-key entry not evicted")
	}
}

// A file whose embedded seed disagrees with its name is stale: miss + evict.
func TestSampleStoreSeedMismatchIsMiss(t *testing.T) {
	s, err := OpenSamples(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k", 9, []byte("x")); err != nil {
		t.Fatal(err)
	}
	// Move seed 9's entry onto seed 7's path.
	if err := os.Rename(s.samplePath("k", 9), s.samplePath("k", 7)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("k", 7); ok {
		t.Fatal("mismatched-seed entry served as a hit")
	}
	if st := s.Stats(); st.Evicted != 1 {
		t.Fatalf("stats %+v, want evicted=1", st)
	}
}

// Writes are temp-file + rename: after any number of Puts no temporary
// files linger, and a Put over an existing entry replaces it atomically.
func TestSampleStoreAtomicWrites(t *testing.T) {
	s, err := OpenSamples(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.Put("k", 7, []byte{byte('a' + i)}); err != nil {
			t.Fatal(err)
		}
	}
	if got, ok := s.Get("k", 7); !ok || !bytes.Equal(got, []byte("c")) {
		t.Fatalf("overwrite lost: %q (%v)", got, ok)
	}
	tmp, err := filepath.Glob(filepath.Join(s.keyDir("k"), "put-*.tmp"))
	if err != nil {
		t.Fatal(err)
	}
	if len(tmp) != 0 {
		t.Fatalf("temp files left behind: %v", tmp)
	}
}
