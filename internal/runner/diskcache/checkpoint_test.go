package diskcache

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func openCheckpoint(t *testing.T) *CheckpointStore {
	t.Helper()
	s, err := OpenCheckpoint(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCheckpointRoundTrip(t *testing.T) {
	s := openCheckpoint(t)
	const key = "run key with spaces and θ=0.1"
	if err := s.Put(key, 7, []byte("payload-7")); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(key, 7)
	if !ok || !bytes.Equal(got, []byte("payload-7")) {
		t.Fatalf("Get = %q, %v", got, ok)
	}
	if _, ok := s.Get(key, 8); ok {
		t.Fatal("hit for a cell never stored")
	}
	if n, err := s.Len(key); err != nil || n != 1 {
		t.Fatalf("Len = %d, %v", n, err)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Stores != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCheckpointCorruptEntryEvicted(t *testing.T) {
	s := openCheckpoint(t)
	const key = "corrupt-run"
	if err := s.Put(key, 0, []byte("ok")); err != nil {
		t.Fatal(err)
	}
	path := s.cellPath(key, 0)
	if err := os.WriteFile(path, []byte("{truncated"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(key, 0); ok {
		t.Fatal("corrupt entry read as a hit")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("corrupt entry not evicted")
	}
	st := s.Stats()
	if st.Corrupt != 1 || st.Evicted != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCheckpointSchemaMismatchIsMiss(t *testing.T) {
	s := openCheckpoint(t)
	const key = "schema-run"
	if err := s.Put(key, 0, []byte("v")); err != nil {
		t.Fatal(err)
	}
	path := s.cellPath(key, 0)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var e Entry
	if err := json.Unmarshal(data, &e); err != nil {
		t.Fatal(err)
	}
	e.Schema = CheckpointSchemaVersion + 1
	out, _ := json.Marshal(e)
	if err := os.WriteFile(path, out, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(key, 0); ok {
		t.Fatal("future-schema entry read as a hit")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("stale entry not evicted")
	}
}

// TestCheckpointKeyCollisionSafe: even if two run keys landed in the same
// directory, the full-key echo inside the entry refuses the foreign cell.
func TestCheckpointKeyCollisionSafe(t *testing.T) {
	s := openCheckpoint(t)
	if err := s.Put("run A", 0, []byte("a")); err != nil {
		t.Fatal(err)
	}
	// Simulate a directory-hash collision by copying A's entry into B's
	// run directory.
	src, err := os.ReadFile(s.cellPath("run A", 0))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(s.runDir("run B"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.cellPath("run B", 0), src, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("run B", 0); ok {
		t.Fatal("foreign run's cell read as a hit")
	}
	if got, ok := s.Get("run A", 0); !ok || !bytes.Equal(got, []byte("a")) {
		t.Fatal("original entry damaged")
	}
}

func TestCheckpointClearIsScoped(t *testing.T) {
	s := openCheckpoint(t)
	if err := s.Put("run A", 0, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("run B", 0, []byte("b")); err != nil {
		t.Fatal(err)
	}
	if err := s.Clear("run A"); err != nil {
		t.Fatal(err)
	}
	if n, _ := s.Len("run A"); n != 0 {
		t.Fatalf("run A kept %d cells", n)
	}
	if got, ok := s.Get("run B", 0); !ok || !bytes.Equal(got, []byte("b")) {
		t.Fatal("Clear removed another run's cells")
	}
}

func TestCheckpointPutOverwrites(t *testing.T) {
	s := openCheckpoint(t)
	const key = "overwrite-run"
	if err := s.Put(key, 3, []byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(key, 3, []byte("new")); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(key, 3)
	if !ok || !bytes.Equal(got, []byte("new")) {
		t.Fatalf("Get = %q, %v", got, ok)
	}
	if n, _ := s.Len(key); n != 1 {
		t.Fatalf("Len = %d after overwrite", n)
	}
}

func TestCheckpointRejectsNilPayload(t *testing.T) {
	s := openCheckpoint(t)
	if err := s.Put("run", 0, nil); err == nil {
		t.Fatal("nil payload accepted")
	}
}

func TestCheckpointPutLeavesNoTempFiles(t *testing.T) {
	s := openCheckpoint(t)
	const key = "tmp-run"
	if err := s.Put(key, 0, []byte("v")); err != nil {
		t.Fatal(err)
	}
	stray, err := filepath.Glob(filepath.Join(s.runDir(key), "put-*.tmp"))
	if err != nil {
		t.Fatal(err)
	}
	if len(stray) != 0 {
		t.Fatalf("stray temp files: %v", stray)
	}
}
