package diskcache

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mfdl/internal/metrics"
)

func sample() *metrics.SchemeResult {
	return &metrics.SchemeResult{
		Scheme: "MTSD",
		Classes: []metrics.PerClass{
			{Class: 1, EntryRate: 0.5, DownloadTime: 50, OnlineTime: 70},
			{Class: 2, EntryRate: 0.25, DownloadTime: 100, OnlineTime: 120},
		},
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("k1"); ok {
		t.Fatal("hit on empty store")
	}
	want := sample()
	if err := s.Put("k1", want); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get("k1")
	if !ok {
		t.Fatal("miss after Put")
	}
	if got.Scheme != want.Scheme || len(got.Classes) != len(want.Classes) {
		t.Fatalf("round trip mangled result: %+v", got)
	}
	for i := range want.Classes {
		if got.Classes[i] != want.Classes[i] {
			t.Fatalf("class %d mangled: %+v vs %+v", i+1, got.Classes[i], want.Classes[i])
		}
	}
	if st := s.Stats(); st.Hits != 1 || st.Misses != 1 || st.Stores != 1 {
		t.Fatalf("stats %+v", st)
	}
	if n, err := s.Len(); err != nil || n != 1 {
		t.Fatalf("Len = %d (%v)", n, err)
	}
}

// Garbage and truncated entries must read as misses (never errors) and be
// evicted so the next Put can repair them.
func TestCorruptEntryIsMiss(t *testing.T) {
	for name, corrupt := range map[string]func([]byte) []byte{
		"garbage":   func([]byte) []byte { return []byte("not json at all {{{") },
		"truncated": func(b []byte) []byte { return b[:len(b)/2] },
		"empty":     func([]byte) []byte { return nil },
		"nullres":   func([]byte) []byte { return []byte(`{"schema":1,"key":"k","result":null}`) },
	} {
		t.Run(name, func(t *testing.T) {
			s, err := Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Put("k", sample()); err != nil {
				t.Fatal(err)
			}
			path := s.path("k")
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, corrupt(data), 0o644); err != nil {
				t.Fatal(err)
			}
			if _, ok := s.Get("k"); ok {
				t.Fatal("corrupt entry served as a hit")
			}
			st := s.Stats()
			if st.Corrupt != 1 || st.Evicted != 1 {
				t.Fatalf("stats %+v, want 1 corrupt / 1 evicted", st)
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Fatal("corrupt entry not evicted from disk")
			}
			// The store must heal: a fresh Put followed by a Get hits.
			if err := s.Put("k", sample()); err != nil {
				t.Fatal(err)
			}
			if _, ok := s.Get("k"); !ok {
				t.Fatal("store did not heal after eviction")
			}
		})
	}
}

// An entry written under a different schema version is stale: miss + evict.
func TestSchemaBumpInvalidates(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	old, err := json.Marshal(entry{Schema: SchemaVersion + 1, Key: "k", Result: toWire(sample())})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.path("k"), old, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("k"); ok {
		t.Fatal("stale-schema entry served as a hit")
	}
	if st := s.Stats(); st.Evicted != 1 || st.Misses != 1 {
		t.Fatalf("stats %+v, want evicted=1 misses=1", st)
	}
	if _, err := os.Stat(s.path("k")); !os.IsNotExist(err) {
		t.Fatal("stale entry left on disk")
	}
}

// A hash collision (same file, different recorded key) must miss rather
// than serve the wrong solve.
func TestKeyMismatchIsMiss(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	forged, err := json.Marshal(entry{Schema: SchemaVersion, Key: "other", Result: toWire(sample())})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.path("k"), forged, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("k"); ok {
		t.Fatal("colliding entry served as a hit")
	}
}

// Put must never leave temp files behind, and every entry must land under
// its final .json name.
func TestPutIsAtomic(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"a", "b", "a"} {
		if err := s.Put(k, sample()); err != nil {
			t.Fatal(err)
		}
	}
	names, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 {
		t.Fatalf("dir has %d files, want 2", len(names))
	}
	for _, e := range names {
		if !strings.HasSuffix(e.Name(), ".json") {
			t.Fatalf("leftover non-entry file %s", e.Name())
		}
	}
}

func TestOpenRejectsEmptyDir(t *testing.T) {
	if _, err := Open(""); err == nil {
		t.Fatal("empty dir accepted")
	}
}

func TestOpenCreatesNestedDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "a", "b", "cache")
	if _, err := Open(dir); err != nil {
		t.Fatal(err)
	}
	if info, err := os.Stat(dir); err != nil || !info.IsDir() {
		t.Fatalf("nested cache dir missing (%v)", err)
	}
}

// Classes with zero entry rate carry NaN times (metrics.PerClass's
// contract); plain JSON rejects NaN, so the wire format must round-trip
// every IEEE-754 value bit-exactly, including NaN and ±Inf.
func TestNonFiniteFloatsRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	want := &metrics.SchemeResult{
		Scheme: "CMFSD",
		Classes: []metrics.PerClass{
			{Class: 1, EntryRate: 0, DownloadTime: math.NaN(), OnlineTime: math.NaN()},
			{Class: 2, EntryRate: 0.25, DownloadTime: 100, OnlineTime: math.Inf(1)},
		},
	}
	if err := s.Put("k", want); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get("k")
	if !ok {
		t.Fatal("miss after Put")
	}
	for i := range want.Classes {
		w, g := want.Classes[i], got.Classes[i]
		for name, pair := range map[string][2]float64{
			"lambda":   {w.EntryRate, g.EntryRate},
			"download": {w.DownloadTime, g.DownloadTime},
			"online":   {w.OnlineTime, g.OnlineTime},
		} {
			if math.Float64bits(pair[0]) != math.Float64bits(pair[1]) {
				t.Fatalf("class %d %s not bit-identical: %v vs %v", i+1, name, pair[0], pair[1])
			}
		}
	}
}
