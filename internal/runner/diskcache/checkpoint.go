package diskcache

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"mfdl/internal/obs"
)

// CheckpointSchemaVersion is recorded in every checkpoint entry and
// checked on read, independently of the solve cache's SchemaVersion.
const CheckpointSchemaVersion = 1

// Entry is the envelope of one completed cell — both the on-disk
// checkpoint format and the fabric wire format (a worker POSTs exactly
// these bytes, the coordinator persists exactly these bytes). The payload
// is opaque to this package (the runner encodes it with gob, which unlike
// JSON round-trips NaN and ±Inf bit-exactly); the envelope carries the
// identity needed to never deliver a cell into the wrong run.
type Entry struct {
	Schema int `json:"schema"`
	// Key is the full (unhashed) run key: everything that determines the
	// run's cell values. A directory-name hash collision can therefore
	// never resume from a different run's cells.
	Key string `json:"key"`
	// Cell is the linear cell index the payload belongs to.
	Cell int `json:"cell"`
	// Payload is the caller-encoded cell result.
	Payload []byte `json:"payload"`
}

// Encode renders the entry as its canonical JSON envelope.
func (e Entry) Encode() ([]byte, error) {
	if e.Payload == nil {
		return nil, fmt.Errorf("diskcache: nil checkpoint payload")
	}
	data, err := json.Marshal(e)
	if err != nil {
		return nil, fmt.Errorf("diskcache: %w", err)
	}
	return data, nil
}

// DecodeEntry parses an entry envelope. It rejects structural garbage
// (unparsable JSON, missing payload) but leaves schema and identity checks
// to the caller, which knows which run the entry is supposed to belong to.
func DecodeEntry(data []byte) (Entry, error) {
	var e Entry
	if err := json.Unmarshal(data, &e); err != nil {
		return Entry{}, fmt.Errorf("diskcache: entry: %w", err)
	}
	if e.Payload == nil {
		return Entry{}, fmt.Errorf("diskcache: entry has no payload")
	}
	return e, nil
}

// Matches reports whether the entry carries the current schema and belongs
// to (runKey, cell).
func (e Entry) Matches(runKey string, cell int) bool {
	return e.Schema == CheckpointSchemaVersion && e.Key == runKey && e.Cell == cell
}

// CheckpointStore persists per-cell results of interrupted runs: one
// subdirectory per run key, one file per completed cell. It follows the
// same discipline as Store — atomic temp-file + rename writes, and reads
// that treat truncated, garbled, foreign or stale entries as misses and
// evict them — so a run killed at any instant resumes cleanly.
//
// Safe for concurrent use by any number of goroutines and processes.
type CheckpointStore struct {
	dir string

	mu    sync.Mutex
	stats Stats

	obsHits    *obs.Counter
	obsMisses  *obs.Counter
	obsStores  *obs.Counter
	obsCorrupt *obs.Counter
	obsEvicted *obs.Counter
}

// OpenCheckpoint ensures dir exists and returns a checkpoint store over
// it. The directory may be shared with (or distinct from) a solve-cache
// Store; checkpoints live in per-run subdirectories and never collide
// with cache entries.
func OpenCheckpoint(dir string) (*CheckpointStore, error) {
	if dir == "" {
		return nil, fmt.Errorf("diskcache: empty checkpoint directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("diskcache: %w", err)
	}
	return &CheckpointStore{dir: dir}, nil
}

// Dir returns the backing directory.
func (s *CheckpointStore) Dir() string { return s.dir }

// WithObs routes the store's counters through the registry as
// checkpoint_hits_total, checkpoint_misses_total, checkpoint_stores_total,
// checkpoint_corrupt_total and checkpoint_evicted_total. A nil registry
// is a no-op. Returns the store for chaining.
func (s *CheckpointStore) WithObs(reg *obs.Registry) *CheckpointStore {
	s.obsHits = reg.Counter("checkpoint_hits_total")
	s.obsMisses = reg.Counter("checkpoint_misses_total")
	s.obsStores = reg.Counter("checkpoint_stores_total")
	s.obsCorrupt = reg.Counter("checkpoint_corrupt_total")
	s.obsEvicted = reg.Counter("checkpoint_evicted_total")
	return s
}

// runDir maps a run key to its per-run subdirectory.
func (s *CheckpointStore) runDir(runKey string) string {
	sum := sha256.Sum256([]byte(runKey))
	return filepath.Join(s.dir, "run-"+hex.EncodeToString(sum[:]))
}

// cellPath maps (run key, cell) to the entry file.
func (s *CheckpointStore) cellPath(runKey string, cell int) string {
	return filepath.Join(s.runDir(runKey), fmt.Sprintf("cell-%d.json", cell))
}

// Get returns the payload checkpointed for (runKey, cell), or false on
// any kind of miss. Unreadable or stale entries are evicted.
func (s *CheckpointStore) Get(runKey string, cell int) ([]byte, bool) {
	path := s.cellPath(runKey, cell)
	data, err := os.ReadFile(path)
	if err != nil {
		s.count(func(st *Stats) { st.Misses++ })
		s.obsMisses.Inc()
		return nil, false
	}
	e, derr := DecodeEntry(data)
	if derr != nil {
		s.evict(path)
		s.count(func(st *Stats) { st.Misses++; st.Corrupt++ })
		s.obsMisses.Inc()
		s.obsCorrupt.Inc()
		return nil, false
	}
	if !e.Matches(runKey, cell) {
		s.evict(path)
		s.count(func(st *Stats) { st.Misses++ })
		s.obsMisses.Inc()
		return nil, false
	}
	s.count(func(st *Stats) { st.Hits++ })
	s.obsHits.Inc()
	return e.Payload, true
}

// Put checkpoints one cell's payload, atomically replacing any previous
// entry for the same (runKey, cell).
func (s *CheckpointStore) Put(runKey string, cell int, payload []byte) error {
	return s.PutEntry(Entry{
		Schema: CheckpointSchemaVersion, Key: runKey, Cell: cell, Payload: payload,
	})
}

// PutEntry persists a pre-assembled entry — the path a fabric coordinator
// takes with an envelope received off the wire. The entry must carry the
// current schema; its key and cell index address the file it lands in.
func (s *CheckpointStore) PutEntry(e Entry) error {
	if e.Schema != CheckpointSchemaVersion {
		return fmt.Errorf("diskcache: entry schema %d, this build speaks %d", e.Schema, CheckpointSchemaVersion)
	}
	data, err := e.Encode()
	if err != nil {
		return err
	}
	runKey, cell := e.Key, e.Cell
	dir := s.runDir(runKey)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("diskcache: %w", err)
	}
	tmp, err := os.CreateTemp(dir, "put-*.tmp")
	if err != nil {
		return fmt.Errorf("diskcache: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("diskcache: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("diskcache: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.cellPath(runKey, cell)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("diskcache: %w", err)
	}
	s.count(func(st *Stats) { st.Stores++ })
	s.obsStores.Inc()
	return nil
}

// Len returns the number of cells checkpointed under runKey.
func (s *CheckpointStore) Len(runKey string) (int, error) {
	names, err := filepath.Glob(filepath.Join(s.runDir(runKey), "cell-*.json"))
	if err != nil {
		return 0, err
	}
	return len(names), nil
}

// Clear removes every checkpoint of the run — called after a run
// completes so finished runs leave nothing behind.
func (s *CheckpointStore) Clear(runKey string) error {
	dir := s.runDir(runKey)
	if !strings.HasPrefix(filepath.Base(dir), "run-") {
		return fmt.Errorf("diskcache: refusing to clear %q", dir)
	}
	if err := os.RemoveAll(dir); err != nil {
		return fmt.Errorf("diskcache: %w", err)
	}
	return nil
}

// Stats returns a snapshot of the counters.
func (s *CheckpointStore) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

func (s *CheckpointStore) count(f func(*Stats)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	f(&s.stats)
}

func (s *CheckpointStore) evict(path string) {
	if os.Remove(path) == nil {
		s.count(func(st *Stats) { st.Evicted++ })
		s.obsEvicted.Inc()
	}
}
