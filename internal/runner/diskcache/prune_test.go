package diskcache

import (
	"fmt"
	"os"
	"testing"
	"time"
)

// fill stores n entries under distinct keys and returns the keys.
func fill(t *testing.T, s *Store, n int) []string {
	t.Helper()
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i)
		if err := s.Put(keys[i], sample()); err != nil {
			t.Fatal(err)
		}
	}
	return keys
}

// age rewinds an entry's mtime by d.
func age(t *testing.T, s *Store, key string, d time.Duration) {
	t.Helper()
	past := time.Now().Add(-d)
	if err := os.Chtimes(s.path(key), past, past); err != nil {
		t.Fatal(err)
	}
}

func TestUsage(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	entries, bytes, err := s.Usage()
	if err != nil {
		t.Fatal(err)
	}
	if entries != 0 || bytes != 0 {
		t.Fatalf("empty store reports %d entries, %d bytes", entries, bytes)
	}
	fill(t, s, 3)
	entries, bytes, err = s.Usage()
	if err != nil {
		t.Fatal(err)
	}
	if entries != 3 {
		t.Errorf("entries = %d, want 3", entries)
	}
	if bytes <= 0 {
		t.Errorf("bytes = %d, want > 0", bytes)
	}
	n, err := s.Len()
	if err != nil {
		t.Fatal(err)
	}
	if n != entries {
		t.Errorf("Len = %d disagrees with Usage entries = %d", n, entries)
	}
}

func TestPruneByAge(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	keys := fill(t, s, 4)
	age(t, s, keys[0], 2*time.Hour)
	age(t, s, keys[1], 3*time.Hour)
	st, err := s.Prune(PruneOptions{MaxAge: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if st.Removed != 2 || st.Kept != 2 {
		t.Fatalf("removed %d kept %d, want 2/2", st.Removed, st.Kept)
	}
	if _, ok := s.Get(keys[0]); ok {
		t.Error("aged-out entry still readable")
	}
	if _, ok := s.Get(keys[2]); !ok {
		t.Error("fresh entry was pruned")
	}
	if got := s.Stats().Evicted; got != 2 {
		t.Errorf("Evicted counter = %d, want 2", got)
	}
}

func TestPruneBySizeEvictsLRU(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	keys := fill(t, s, 4)
	// Stagger recency: keys[0] oldest ... keys[3] newest.
	for i, k := range keys {
		age(t, s, k, time.Duration(len(keys)-i)*time.Hour)
	}
	_, total, err := s.Usage()
	if err != nil {
		t.Fatal(err)
	}
	per := total / 4
	// Budget for two entries: the two least recently used must go.
	st, err := s.Prune(PruneOptions{MaxBytes: 2 * per})
	if err != nil {
		t.Fatal(err)
	}
	if st.Removed != 2 || st.Kept != 2 {
		t.Fatalf("removed %d kept %d, want 2/2", st.Removed, st.Kept)
	}
	for _, k := range keys[:2] {
		if _, ok := s.Get(k); ok {
			t.Errorf("LRU entry %s survived a size prune", k)
		}
	}
	for _, k := range keys[2:] {
		if _, ok := s.Get(k); !ok {
			t.Errorf("recent entry %s was evicted", k)
		}
	}
	if st.Remaining > 2*per {
		t.Errorf("remaining %d bytes exceeds budget %d", st.Remaining, 2*per)
	}
}

// TestGetRefreshesRecency pins the LRU approximation: a hit touches the
// entry, so a recently read entry outlives an unread one of the same age.
func TestGetRefreshesRecency(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	keys := fill(t, s, 2)
	for _, k := range keys {
		age(t, s, k, 2*time.Hour)
	}
	if _, ok := s.Get(keys[1]); !ok {
		t.Fatal("warm read missed")
	}
	st, err := s.Prune(PruneOptions{MaxAge: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if st.Removed != 1 {
		t.Fatalf("removed %d, want 1 (only the unread entry)", st.Removed)
	}
	if _, ok := s.Get(keys[1]); !ok {
		t.Error("recently read entry was pruned")
	}
}

func TestPruneZeroOptionsIsNoop(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	keys := fill(t, s, 3)
	age(t, s, keys[0], 1000*time.Hour)
	st, err := s.Prune(PruneOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Removed != 0 || st.Kept != 3 {
		t.Fatalf("zero options removed %d kept %d, want 0/3", st.Removed, st.Kept)
	}
}

func TestPruneRemovesStaleTempFiles(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	tmp, err := os.CreateTemp(s.Dir(), "put-*.tmp")
	if err != nil {
		t.Fatal(err)
	}
	tmp.Close()
	past := time.Now().Add(-2 * time.Hour)
	if err := os.Chtimes(tmp.Name(), past, past); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Prune(PruneOptions{MaxAge: time.Hour}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(tmp.Name()); !os.IsNotExist(err) {
		t.Errorf("stale temp file survived: %v", err)
	}
}
