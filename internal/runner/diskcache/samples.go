package diskcache

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"mfdl/internal/obs"
)

// SampleStoreSchemaVersion is recorded in every sample entry and checked
// on read, independently of the solve cache's SchemaVersion and the
// checkpoint store's CheckpointSchemaVersion.
const SampleStoreSchemaVersion = 1

// sampleEntry is the on-disk envelope of one simulator replica sample.
// The seed crosses JSON as a hex string because a uint64 does not survive
// a float64-typed JSON number.
type sampleEntry struct {
	Schema int `json:"schema"`
	// Key is the full (unhashed) sample key: everything that determines
	// the sample except the replica seed. A directory-name hash collision
	// can therefore never serve a sample from a different configuration.
	Key string `json:"key"`
	// Seed is the replica's derived seed, in hex.
	Seed string `json:"seed"`
	// Payload is the caller-encoded sample (see replica.EncodeSample).
	Payload []byte `json:"payload"`
}

// SampleStore persists individual simulator replica samples keyed by
// (configuration key, replica seed): one subdirectory per key, one file
// per seed. Because a sample is a pure function of its key and seed, a
// sweep re-run with a larger replica count finds every previously drawn
// sample already on disk and only simulates the new seeds — replicas
// extend, they never resample. The same store backs local runs, sequential
// stopping, and the distributed fabric.
//
// It follows the same discipline as Store and CheckpointStore — atomic
// temp-file + rename writes, and reads that treat truncated, garbled,
// foreign or stale entries as misses and evict them — so any process may
// die at any instant without poisoning the store. Safe for concurrent use
// by any number of goroutines and processes.
type SampleStore struct {
	dir string

	mu    sync.Mutex
	stats Stats

	obsHits    *obs.Counter
	obsMisses  *obs.Counter
	obsStores  *obs.Counter
	obsCorrupt *obs.Counter
	obsEvicted *obs.Counter
}

// OpenSamples ensures dir exists and returns a sample store over it. The
// directory may be shared with a solve cache or checkpoint store; samples
// live in per-key subdirectories and never collide with either.
func OpenSamples(dir string) (*SampleStore, error) {
	if dir == "" {
		return nil, fmt.Errorf("diskcache: empty sample directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("diskcache: %w", err)
	}
	return &SampleStore{dir: dir}, nil
}

// Dir returns the backing directory.
func (s *SampleStore) Dir() string { return s.dir }

// WithObs routes the store's counters through the registry as
// samplestore_hits_total, samplestore_misses_total,
// samplestore_stores_total, samplestore_corrupt_total and
// samplestore_evicted_total. A nil registry is a no-op. Returns the store
// for chaining.
func (s *SampleStore) WithObs(reg *obs.Registry) *SampleStore {
	s.obsHits = reg.Counter("samplestore_hits_total")
	s.obsMisses = reg.Counter("samplestore_misses_total")
	s.obsStores = reg.Counter("samplestore_stores_total")
	s.obsCorrupt = reg.Counter("samplestore_corrupt_total")
	s.obsEvicted = reg.Counter("samplestore_evicted_total")
	return s
}

// keyDir maps a sample key to its per-key subdirectory.
func (s *SampleStore) keyDir(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(s.dir, "samples-"+hex.EncodeToString(sum[:]))
}

// samplePath maps (key, seed) to the entry file.
func (s *SampleStore) samplePath(key string, seed uint64) string {
	return filepath.Join(s.keyDir(key), fmt.Sprintf("s-%016x.json", seed))
}

// Get returns the payload stored for (key, seed), or false on any kind of
// miss. Unreadable or stale entries are evicted so the next Put replaces
// them.
func (s *SampleStore) Get(key string, seed uint64) ([]byte, bool) {
	path := s.samplePath(key, seed)
	data, err := os.ReadFile(path)
	if err != nil {
		s.count(func(st *Stats) { st.Misses++ })
		s.obsMisses.Inc()
		return nil, false
	}
	var e sampleEntry
	if err := json.Unmarshal(data, &e); err != nil || e.Payload == nil {
		s.evict(path)
		s.count(func(st *Stats) { st.Misses++; st.Corrupt++ })
		s.obsMisses.Inc()
		s.obsCorrupt.Inc()
		return nil, false
	}
	storedSeed, err := strconv.ParseUint(e.Seed, 16, 64)
	if err != nil {
		s.evict(path)
		s.count(func(st *Stats) { st.Misses++; st.Corrupt++ })
		s.obsMisses.Inc()
		s.obsCorrupt.Inc()
		return nil, false
	}
	if e.Schema != SampleStoreSchemaVersion || e.Key != key || storedSeed != seed {
		s.evict(path)
		s.count(func(st *Stats) { st.Misses++ })
		s.obsMisses.Inc()
		return nil, false
	}
	// Touch the entry so mtime approximates recency of use and Prune's
	// size-based eviction is LRU rather than write-order — the same
	// discipline as the solve cache. Best effort: a read-only sample
	// directory still serves hits.
	now := time.Now()
	_ = os.Chtimes(path, now, now)
	s.count(func(st *Stats) { st.Hits++ })
	s.obsHits.Inc()
	return e.Payload, true
}

// Put stores one sample payload, atomically replacing any previous entry
// for the same (key, seed).
func (s *SampleStore) Put(key string, seed uint64, payload []byte) error {
	if payload == nil {
		return fmt.Errorf("diskcache: nil sample payload")
	}
	data, err := json.Marshal(sampleEntry{
		Schema: SampleStoreSchemaVersion, Key: key,
		Seed: fmt.Sprintf("%016x", seed), Payload: payload,
	})
	if err != nil {
		return fmt.Errorf("diskcache: %w", err)
	}
	dir := s.keyDir(key)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("diskcache: %w", err)
	}
	tmp, err := os.CreateTemp(dir, "put-*.tmp")
	if err != nil {
		return fmt.Errorf("diskcache: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("diskcache: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("diskcache: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.samplePath(key, seed)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("diskcache: %w", err)
	}
	s.count(func(st *Stats) { st.Stores++ })
	s.obsStores.Inc()
	return nil
}

// Len returns the number of samples currently stored under key.
func (s *SampleStore) Len(key string) (int, error) {
	names, err := filepath.Glob(filepath.Join(s.keyDir(key), "s-*.json"))
	if err != nil {
		return 0, err
	}
	return len(names), nil
}

// Clear removes every sample stored under key.
func (s *SampleStore) Clear(key string) error {
	dir := s.keyDir(key)
	if !strings.HasPrefix(filepath.Base(dir), "samples-") {
		return fmt.Errorf("diskcache: refusing to clear %q", dir)
	}
	if err := os.RemoveAll(dir); err != nil {
		return fmt.Errorf("diskcache: %w", err)
	}
	return nil
}

// Usage reports how many samples the store holds across every key
// subdirectory and how many bytes they occupy. Entries that vanish
// mid-scan (a concurrent prune or eviction) are skipped, not errors.
func (s *SampleStore) Usage() (entries int, bytes int64, err error) {
	names, err := filepath.Glob(filepath.Join(s.dir, "samples-*", "s-*.json"))
	if err != nil {
		return 0, 0, err
	}
	for _, name := range names {
		info, err := os.Stat(name)
		if err != nil {
			continue
		}
		entries++
		bytes += info.Size()
	}
	return entries, bytes, nil
}

// Prune removes samples by age and/or total size across every key
// subdirectory, oldest mtime first — approximately least recently used,
// since Get touches entries on a hit. The accounting mirrors the solve
// cache's Prune: entries that disappear mid-pass are treated as already
// pruned, stray temp files from crashed writers older than MaxAge are
// removed, and key subdirectories left empty are cleaned up.
func (s *SampleStore) Prune(opts PruneOptions) (PruneStats, error) {
	var st PruneStats
	names, err := filepath.Glob(filepath.Join(s.dir, "samples-*", "s-*.json"))
	if err != nil {
		return st, err
	}
	type fileInfo struct {
		path  string
		size  int64
		mtime time.Time
	}
	var files []fileInfo
	now := time.Now()
	for _, name := range names {
		info, err := os.Stat(name)
		if err != nil {
			continue
		}
		files = append(files, fileInfo{path: name, size: info.Size(), mtime: info.ModTime()})
	}
	sort.Slice(files, func(i, j int) bool { return files[i].mtime.Before(files[j].mtime) })
	var total int64
	for _, f := range files {
		total += f.size
	}
	remove := func(f fileInfo) {
		if os.Remove(f.path) == nil {
			st.Removed++
			st.Freed += f.size
			s.count(func(c *Stats) { c.Evicted++ })
			s.obsEvicted.Inc()
		}
		total -= f.size
	}
	for _, f := range files {
		switch {
		case opts.MaxAge > 0 && now.Sub(f.mtime) > opts.MaxAge:
			remove(f)
		case opts.MaxBytes > 0 && total > opts.MaxBytes:
			remove(f)
		default:
			st.Kept++
			st.Remaining += f.size
		}
	}
	if opts.MaxAge > 0 {
		tmps, err := filepath.Glob(filepath.Join(s.dir, "samples-*", "put-*.tmp"))
		if err == nil {
			for _, name := range tmps {
				info, err := os.Stat(name)
				if err != nil || now.Sub(info.ModTime()) <= opts.MaxAge {
					continue
				}
				os.Remove(name)
			}
		}
	}
	// Drop key directories the pass emptied; os.Remove refuses non-empty
	// directories, so a concurrent Put can never lose its samples here.
	if dirs, err := filepath.Glob(filepath.Join(s.dir, "samples-*")); err == nil {
		for _, dir := range dirs {
			_ = os.Remove(dir)
		}
	}
	return st, nil
}

// Stats returns a snapshot of the counters.
func (s *SampleStore) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

func (s *SampleStore) count(f func(*Stats)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	f(&s.stats)
}

func (s *SampleStore) evict(path string) {
	if os.Remove(path) == nil {
		s.count(func(st *Stats) { st.Evicted++ })
		s.obsEvicted.Inc()
	}
}
