package diskcache

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// fillSamples stores one sample per key under seeds 0..n-1 and returns
// the keys.
func fillSamples(t *testing.T, s *SampleStore, n int) []string {
	t.Helper()
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("sim key %d", i)
		if err := s.Put(keys[i], uint64(i), []byte(fmt.Sprintf(`{"v":%d}`, i))); err != nil {
			t.Fatal(err)
		}
	}
	return keys
}

// ageSample rewinds one sample's mtime by d.
func ageSample(t *testing.T, s *SampleStore, key string, seed uint64, d time.Duration) {
	t.Helper()
	past := time.Now().Add(-d)
	if err := os.Chtimes(s.samplePath(key, seed), past, past); err != nil {
		t.Fatal(err)
	}
}

func TestSampleStoreUsage(t *testing.T) {
	s, err := OpenSamples(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	entries, bytes, err := s.Usage()
	if err != nil {
		t.Fatal(err)
	}
	if entries != 0 || bytes != 0 {
		t.Fatalf("empty store reports %d entries, %d bytes", entries, bytes)
	}
	fillSamples(t, s, 3)
	entries, bytes, err = s.Usage()
	if err != nil {
		t.Fatal(err)
	}
	if entries != 3 {
		t.Errorf("entries = %d, want 3", entries)
	}
	if bytes <= 0 {
		t.Errorf("bytes = %d, want > 0", bytes)
	}
}

func TestSampleStorePruneByAge(t *testing.T) {
	s, err := OpenSamples(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	keys := fillSamples(t, s, 4)
	ageSample(t, s, keys[0], 0, 2*time.Hour)
	ageSample(t, s, keys[1], 1, 3*time.Hour)
	st, err := s.Prune(PruneOptions{MaxAge: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if st.Removed != 2 || st.Kept != 2 {
		t.Fatalf("removed %d kept %d, want 2/2", st.Removed, st.Kept)
	}
	if _, ok := s.Get(keys[0], 0); ok {
		t.Error("aged-out sample still readable")
	}
	if _, ok := s.Get(keys[2], 2); !ok {
		t.Error("fresh sample was pruned")
	}
	if got := s.Stats().Evicted; got != 2 {
		t.Errorf("Evicted counter = %d, want 2", got)
	}
	// The emptied per-key subdirectories are cleaned up; survivors keep
	// theirs.
	for i, k := range keys {
		_, err := os.Stat(s.keyDir(k))
		if gone := os.IsNotExist(err); gone != (i < 2) {
			t.Errorf("key dir %d: gone=%v, want %v", i, gone, i < 2)
		}
	}
}

func TestSampleStorePruneBySizeEvictsLRU(t *testing.T) {
	s, err := OpenSamples(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	keys := fillSamples(t, s, 4)
	// Stagger recency: keys[0] oldest ... keys[3] newest.
	for i, k := range keys {
		ageSample(t, s, k, uint64(i), time.Duration(len(keys)-i)*time.Hour)
	}
	_, total, err := s.Usage()
	if err != nil {
		t.Fatal(err)
	}
	per := total / 4
	st, err := s.Prune(PruneOptions{MaxBytes: 2 * per})
	if err != nil {
		t.Fatal(err)
	}
	if st.Removed != 2 || st.Kept != 2 {
		t.Fatalf("removed %d kept %d, want 2/2", st.Removed, st.Kept)
	}
	for i, k := range keys[:2] {
		if _, ok := s.Get(k, uint64(i)); ok {
			t.Errorf("LRU sample %s survived a size prune", k)
		}
	}
	for i, k := range keys[2:] {
		if _, ok := s.Get(k, uint64(i+2)); !ok {
			t.Errorf("recent sample %s was evicted", k)
		}
	}
	if st.Remaining > 2*per {
		t.Errorf("remaining %d bytes exceeds budget %d", st.Remaining, 2*per)
	}
}

// TestSampleStoreGetRefreshesRecency pins the LRU approximation: a hit
// touches the sample, so a recently read sample outlives an unread one
// of the same age.
func TestSampleStoreGetRefreshesRecency(t *testing.T) {
	s, err := OpenSamples(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	keys := fillSamples(t, s, 2)
	for i, k := range keys {
		ageSample(t, s, k, uint64(i), 2*time.Hour)
	}
	if _, ok := s.Get(keys[1], 1); !ok {
		t.Fatal("warm read missed")
	}
	st, err := s.Prune(PruneOptions{MaxAge: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if st.Removed != 1 {
		t.Fatalf("removed %d, want 1 (only the unread sample)", st.Removed)
	}
	if _, ok := s.Get(keys[1], 1); !ok {
		t.Error("recently read sample was pruned")
	}
}

func TestSampleStorePruneZeroOptionsIsNoop(t *testing.T) {
	s, err := OpenSamples(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	keys := fillSamples(t, s, 3)
	ageSample(t, s, keys[0], 0, 1000*time.Hour)
	st, err := s.Prune(PruneOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Removed != 0 || st.Kept != 3 {
		t.Fatalf("zero options removed %d kept %d, want 0/3", st.Removed, st.Kept)
	}
}

func TestSampleStorePruneRemovesStaleTempFiles(t *testing.T) {
	s, err := OpenSamples(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	fillSamples(t, s, 1)
	kd := s.keyDir("sim key 0")
	tmp, err := os.CreateTemp(kd, "put-*.tmp")
	if err != nil {
		t.Fatal(err)
	}
	tmp.Close()
	past := time.Now().Add(-2 * time.Hour)
	if err := os.Chtimes(tmp.Name(), past, past); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Prune(PruneOptions{MaxAge: time.Hour}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(tmp.Name()); !os.IsNotExist(err) {
		t.Errorf("stale temp file survived: %v", err)
	}
	// The fresh sample itself survives alongside the removed temp file.
	if _, ok := s.Get("sim key 0", 0); !ok {
		t.Error("fresh sample vanished with the temp file")
	}
	if got, _ := filepath.Glob(filepath.Join(s.Dir(), "samples-*", "put-*.tmp")); len(got) != 0 {
		t.Errorf("%d temp files remain", len(got))
	}
}
