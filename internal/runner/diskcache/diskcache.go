// Package diskcache is the persistent tier of the solve cache: a
// directory of JSON entries, one per solved steady state, shared by every
// process that points at the same directory. Repeated cmd/sweep or
// cmd/mfdl invocations over the same grid then skip straight to decoding
// instead of re-running the RK4 relaxations and closed forms.
//
// The store is deliberately forgiving. Writes are atomic (temp file +
// rename), so a killed process never leaves a half-written entry under the
// final name. Reads are corruption-tolerant: a truncated, garbled or
// foreign file decodes into a miss — never an error — and the offending
// entry is evicted so the next Put replaces it. Entries record the schema
// version and the full key string they were stored under; a version bump
// or a (vanishingly unlikely) hash collision also reads as a miss.
//
// Keys are opaque strings. The caller is expected to fold everything the
// solve depends on — scheme, parameters, solver tolerance — into the key
// (see runner.Key.Fingerprint); the store itself only hashes the string
// into a file name.
//
// Floats cross the JSON boundary as IEEE-754 bit patterns, so every value
// round-trips bit-exactly — including the NaN times that classes with zero
// entry rate legitimately carry, which plain JSON numbers cannot encode.
package diskcache

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"time"

	"mfdl/internal/metrics"
	"mfdl/internal/obs"
)

// SchemaVersion is recorded in every entry and checked on read. Bump it
// whenever the entry format or the meaning of stored results changes;
// entries written under any other version are evicted as stale.
const SchemaVersion = 1

// entry is the on-disk representation of one cached solve.
type entry struct {
	// Schema is the SchemaVersion the entry was written under.
	Schema int `json:"schema"`
	// Key is the full (unhashed) cache key, kept so that a file-name hash
	// collision can never serve the wrong result.
	Key string `json:"key"`
	// Result is the cached solve.
	Result *wireResult `json:"result"`
}

// bits carries a float64 across JSON as its IEEE-754 bit pattern in hex.
// encoding/json rejects NaN and ±Inf, but classes with zero entry rate
// legitimately carry NaN times (see metrics.PerClass), and bit patterns
// round-trip every value bit-exactly by construction — the byte-identical
// output guarantee does not hinge on float formatting.
type bits float64

func (b bits) MarshalJSON() ([]byte, error) {
	return json.Marshal(strconv.FormatUint(math.Float64bits(float64(b)), 16))
}

func (b *bits) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	u, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return err
	}
	*b = bits(math.Float64frombits(u))
	return nil
}

// wireResult mirrors metrics.SchemeResult with bit-pattern floats.
type wireResult struct {
	Scheme  string      `json:"scheme"`
	Classes []wireClass `json:"classes"`
}

type wireClass struct {
	Class        int  `json:"class"`
	EntryRate    bits `json:"lambda"`
	DownloadTime bits `json:"download"`
	OnlineTime   bits `json:"online"`
}

func toWire(r *metrics.SchemeResult) *wireResult {
	w := &wireResult{Scheme: r.Scheme, Classes: make([]wireClass, len(r.Classes))}
	for i, c := range r.Classes {
		w.Classes[i] = wireClass{
			Class:     c.Class,
			EntryRate: bits(c.EntryRate), DownloadTime: bits(c.DownloadTime), OnlineTime: bits(c.OnlineTime),
		}
	}
	return w
}

func (w *wireResult) result() *metrics.SchemeResult {
	r := &metrics.SchemeResult{Scheme: w.Scheme, Classes: make([]metrics.PerClass, len(w.Classes))}
	for i, c := range w.Classes {
		r.Classes[i] = metrics.PerClass{
			Class:     c.Class,
			EntryRate: float64(c.EntryRate), DownloadTime: float64(c.DownloadTime), OnlineTime: float64(c.OnlineTime),
		}
	}
	return r
}

// Stats counts the store's traffic since Open.
type Stats struct {
	// Hits and Misses count Get outcomes.
	Hits, Misses int
	// Stores counts successful Puts.
	Stores int
	// Corrupt counts entries that existed but failed to decode or
	// validate; each is also a miss.
	Corrupt int
	// Evicted counts entries removed because they were corrupt, written
	// under another schema version, or stored under a colliding key.
	Evicted int
}

// Store is a directory-backed result cache. Safe for concurrent use by
// any number of goroutines; concurrent processes are safe too because
// every write is a rename.
type Store struct {
	dir string

	mu    sync.Mutex
	stats Stats

	// Observability mirrors of the Stats counters, attached by WithObs;
	// nil (no-op) until then. Stats stays the compatibility view.
	obsHits    *obs.Counter
	obsMisses  *obs.Counter
	obsStores  *obs.Counter
	obsCorrupt *obs.Counter
	obsEvicted *obs.Counter
}

// Open ensures dir exists and returns a store over it.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("diskcache: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("diskcache: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the backing directory.
func (s *Store) Dir() string { return s.dir }

// WithObs routes the store's counters through the registry as
// diskcache_hits_total, diskcache_misses_total, diskcache_stores_total,
// diskcache_corrupt_total and diskcache_evicted_total. Stats remains
// available as a compatibility view of the same traffic. A nil registry
// is a no-op. Returns the store for chaining.
func (s *Store) WithObs(reg *obs.Registry) *Store {
	s.obsHits = reg.Counter("diskcache_hits_total")
	s.obsMisses = reg.Counter("diskcache_misses_total")
	s.obsStores = reg.Counter("diskcache_stores_total")
	s.obsCorrupt = reg.Counter("diskcache_corrupt_total")
	s.obsEvicted = reg.Counter("diskcache_evicted_total")
	return s
}

// path maps a key to its entry file.
func (s *Store) path(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(s.dir, hex.EncodeToString(sum[:])+".json")
}

// Get returns the cached result for key, or false on any kind of miss.
// Unreadable or stale entries are evicted so they do not stay in the way.
func (s *Store) Get(key string) (*metrics.SchemeResult, bool) {
	path := s.path(key)
	data, err := os.ReadFile(path)
	if err != nil {
		s.count(func(st *Stats) { st.Misses++ })
		s.obsMisses.Inc()
		return nil, false
	}
	var e entry
	if err := json.Unmarshal(data, &e); err != nil || e.Result == nil {
		s.evict(path)
		s.count(func(st *Stats) { st.Misses++; st.Corrupt++ })
		s.obsMisses.Inc()
		s.obsCorrupt.Inc()
		return nil, false
	}
	res := e.Result.result()
	if res.Validate() != nil {
		s.evict(path)
		s.count(func(st *Stats) { st.Misses++; st.Corrupt++ })
		s.obsMisses.Inc()
		s.obsCorrupt.Inc()
		return nil, false
	}
	if e.Schema != SchemaVersion || e.Key != key {
		s.evict(path)
		s.count(func(st *Stats) { st.Misses++ })
		s.obsMisses.Inc()
		return nil, false
	}
	// Touch the entry so mtime approximates recency of use and Prune's
	// size-based eviction is LRU rather than write-order. Best effort: a
	// read-only cache directory still serves hits.
	now := time.Now()
	_ = os.Chtimes(path, now, now)
	s.count(func(st *Stats) { st.Hits++ })
	s.obsHits.Inc()
	return res, true
}

// Put stores the result under key, atomically replacing any previous
// entry. The temp file lives in the cache directory itself so the rename
// never crosses a filesystem boundary.
func (s *Store) Put(key string, res *metrics.SchemeResult) error {
	if res == nil {
		return fmt.Errorf("diskcache: nil result")
	}
	data, err := json.Marshal(entry{Schema: SchemaVersion, Key: key, Result: toWire(res)})
	if err != nil {
		return fmt.Errorf("diskcache: %w", err)
	}
	tmp, err := os.CreateTemp(s.dir, "put-*.tmp")
	if err != nil {
		return fmt.Errorf("diskcache: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("diskcache: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("diskcache: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.path(key)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("diskcache: %w", err)
	}
	s.count(func(st *Stats) { st.Stores++ })
	s.obsStores.Inc()
	return nil
}

// Len returns the number of entries currently on disk.
func (s *Store) Len() (int, error) {
	names, err := filepath.Glob(filepath.Join(s.dir, "*.json"))
	if err != nil {
		return 0, err
	}
	return len(names), nil
}

// Usage reports how many entries the store holds and how many bytes they
// occupy. Entries that vanish mid-scan (a concurrent prune or eviction)
// are skipped, not errors.
func (s *Store) Usage() (entries int, bytes int64, err error) {
	names, err := filepath.Glob(filepath.Join(s.dir, "*.json"))
	if err != nil {
		return 0, 0, err
	}
	for _, name := range names {
		info, err := os.Stat(name)
		if err != nil {
			continue
		}
		entries++
		bytes += info.Size()
	}
	return entries, bytes, nil
}

// PruneOptions selects what Prune removes. Zero values disable the
// corresponding criterion; with both zero, Prune removes nothing.
type PruneOptions struct {
	// MaxAge evicts entries not read or written for longer than this
	// (recency is tracked by mtime; Get touches entries it serves).
	MaxAge time.Duration
	// MaxBytes caps the store's total size: least-recently-used entries
	// are evicted until the remainder fits.
	MaxBytes int64
}

// PruneStats reports what one Prune pass did.
type PruneStats struct {
	// Removed counts evicted entries; Freed sums their sizes in bytes.
	Removed int
	Freed   int64
	// Kept counts surviving entries; Remaining sums their sizes.
	Kept      int
	Remaining int64
}

// Prune removes entries by age and/or total size (oldest mtime first —
// approximately least recently used, since Get touches entries on a hit).
// Entries that disappear mid-pass are treated as already pruned. Stray
// temp files from crashed writers older than MaxAge are removed too.
func (s *Store) Prune(opts PruneOptions) (PruneStats, error) {
	var st PruneStats
	names, err := filepath.Glob(filepath.Join(s.dir, "*.json"))
	if err != nil {
		return st, err
	}
	type fileInfo struct {
		path  string
		size  int64
		mtime time.Time
	}
	var files []fileInfo
	now := time.Now()
	for _, name := range names {
		info, err := os.Stat(name)
		if err != nil {
			continue
		}
		files = append(files, fileInfo{path: name, size: info.Size(), mtime: info.ModTime()})
	}
	sort.Slice(files, func(i, j int) bool { return files[i].mtime.Before(files[j].mtime) })
	var total int64
	for _, f := range files {
		total += f.size
	}
	remove := func(f fileInfo) {
		if os.Remove(f.path) == nil {
			st.Removed++
			st.Freed += f.size
			s.count(func(c *Stats) { c.Evicted++ })
			s.obsEvicted.Inc()
		}
		total -= f.size
	}
	for _, f := range files {
		switch {
		case opts.MaxAge > 0 && now.Sub(f.mtime) > opts.MaxAge:
			remove(f)
		case opts.MaxBytes > 0 && total > opts.MaxBytes:
			remove(f)
		default:
			st.Kept++
			st.Remaining += f.size
		}
	}
	if opts.MaxAge > 0 {
		tmps, err := filepath.Glob(filepath.Join(s.dir, "put-*.tmp"))
		if err == nil {
			for _, name := range tmps {
				info, err := os.Stat(name)
				if err != nil || now.Sub(info.ModTime()) <= opts.MaxAge {
					continue
				}
				os.Remove(name)
			}
		}
	}
	return st, nil
}

// Stats returns a snapshot of the counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

func (s *Store) count(f func(*Stats)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	f(&s.stats)
}

func (s *Store) evict(path string) {
	if os.Remove(path) == nil {
		s.count(func(st *Stats) { st.Evicted++ })
		s.obsEvicted.Inc()
	}
}
