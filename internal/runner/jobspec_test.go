package runner

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"mfdl/internal/fluid"
	"mfdl/internal/rng"
	"mfdl/internal/scheme"
)

func testJobSpec() JobSpec {
	return JobSpec{
		Schema: JobSpecSchemaVersion,
		Kind:   JobKindFluidSweep,
		Base: Key{
			Scheme: scheme.MTCD, Params: fluid.PaperParams,
			K: 10, P: 0.9, Lambda0: 1.0,
		},
		Dims: []Dim{
			{Name: "p", Values: []float64{0.1, 0.5, 0.9}},
			{Name: "lambda0", Values: []float64{0.5, 2}},
		},
		Seed: 42,
	}
}

func TestJobSpecCanonicalRoundTrip(t *testing.T) {
	spec := testJobSpec()
	data, err := spec.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseJobSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(spec, back) {
		t.Fatalf("round trip changed the spec:\n  in  %+v\n  out %+v", spec, back)
	}
	if spec.Fingerprint() != back.Fingerprint() {
		t.Fatalf("fingerprint changed across the wire:\n  %s\n  %s",
			spec.Fingerprint(), back.Fingerprint())
	}
	again, err := back.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(again) {
		t.Fatalf("canonical encoding is not stable:\n  %s\n  %s", data, again)
	}
}

func TestJobSpecFingerprintSeparatesIdentity(t *testing.T) {
	base := testJobSpec()
	mutations := map[string]func(*JobSpec){
		"seed":      func(s *JobSpec) { s.Seed++ },
		"replicas":  func(s *JobSpec) { s.Replicas++ },
		"dim value": func(s *JobSpec) { s.Dims[0].Values[1] = 0.25 },
		"base":      func(s *JobSpec) { s.Base.K++ },
	}
	for name, mutate := range mutations {
		other := testJobSpec()
		mutate(&other)
		if base.Fingerprint() == other.Fingerprint() {
			t.Errorf("%s change did not change the fingerprint", name)
		}
	}
}

func TestJobSpecValidateRejects(t *testing.T) {
	cases := map[string]func(*JobSpec){
		"schema":      func(s *JobSpec) { s.Schema++ },
		"kind":        func(s *JobSpec) { s.Kind = "mystery" },
		"replicas":    func(s *JobSpec) { s.Replicas = -1 },
		"unknown dim": func(s *JobSpec) { s.Dims[0].Name = "zeta" },
		"dup dim":     func(s *JobSpec) { s.Dims[1].Name = s.Dims[0].Name },
		"empty dim":   func(s *JobSpec) { s.Dims[0].Values = nil },
		"nan value":   func(s *JobSpec) { s.Dims[0].Values[0] = nan() },
		"nan base":    func(s *JobSpec) { s.Base.Theta = nan() },
	}
	for name, mutate := range cases {
		spec := testJobSpec()
		mutate(&spec)
		if err := spec.Validate(); err == nil {
			t.Errorf("%s: Validate accepted an invalid spec", name)
		}
	}
}

func nan() float64 {
	zero := 0.0
	return zero / zero
}

func TestSetKeyDimUnknown(t *testing.T) {
	var key Key
	err := SetKeyDim(&key, "zeta", 1)
	if err == nil {
		t.Fatal("expected an error for an unknown dimension")
	}
	if !strings.Contains(err.Error(), `"zeta"`) || !strings.Contains(err.Error(), "lambda0") {
		t.Fatalf("unhelpful error: %v", err)
	}
}

// TestCellStreamMatchesRun pins the distribution contract: the standalone
// CellStream derivation hands cell i exactly the stream Run does, at any
// worker count.
func TestCellStreamMatchesRun(t *testing.T) {
	const seed = 99
	g, err := NewGrid(Dim{Name: "x", Values: []float64{1, 2, 3, 4, 5}})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 3} {
		got, err := Run(context.Background(), g,
			func(_ context.Context, _ Point, src *rng.Source) (uint64, error) {
				return src.Uint64(), nil
			}, Options{Seed: seed, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range got {
			if want := CellStream(seed, i).Uint64(); v != want {
				t.Fatalf("workers=%d cell %d drew %d, CellStream gives %d", workers, i, v, want)
			}
		}
	}
}

// TestRunJobMatchesManualEvaluation checks RunJob against evaluating each
// cell by hand through CellKey — the job API computes the cells it claims.
func TestRunJobMatchesManualEvaluation(t *testing.T) {
	spec := testJobSpec()
	cells, err := RunJob(context.Background(), spec, nil, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	g, err := spec.Grid()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != g.Size() {
		t.Fatalf("got %d cells for a grid of %d", len(cells), g.Size())
	}
	cache := NewCache()
	for i := range cells {
		want, err := spec.EvaluateCell(cache, g.Point(i), nil)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(cells[i], want) {
			t.Fatalf("cell %d: RunJob %+v, manual %+v", i, cells[i], want)
		}
	}
}
