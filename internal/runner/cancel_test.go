package runner

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"mfdl/internal/rng"
)

func cancelGrid(t *testing.T, n int) Grid {
	t.Helper()
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = float64(i)
	}
	g, err := NewGrid(Dim{Name: "x", Values: vals})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// A worker drained by cancellation is not a failed sweep: when every
// recorded failure is just the cancellation propagating, Run reports
// plain ctx.Err() with no cell error attached.
func TestRunCancellationDrainIsNotCellFailure(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int32
	_, err := Run(ctx, cancelGrid(t, 8),
		func(ctx context.Context, _ Point, _ *rng.Source) (int, error) {
			if started.Add(1) == 1 {
				cancel()
			}
			<-ctx.Done()
			return 0, ctx.Err()
		}, Options{Workers: 4})
	if err != context.Canceled {
		t.Fatalf("err = %v, want exactly context.Canceled", err)
	}
}

// A genuine cell error racing the cancellation must stay visible: the
// result is the two joined, so errors.Is sees the cancellation AND the
// message carries the cell failure.
func TestRunCancellationRacingCellErrorSurfacesBoth(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	boom := errors.New("solver blew up")
	_, err := Run(ctx, cancelGrid(t, 8),
		func(ctx context.Context, p Point, _ *rng.Source) (int, error) {
			if p.Index == 0 {
				cancel() // external shutdown and a real failure, same instant
				return 0, boom
			}
			<-ctx.Done()
			return 0, ctx.Err()
		}, Options{Workers: 4})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, cancellation invisible", err)
	}
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, cell failure invisible", err)
	}
}

// A cancellation that lands only after every cell has completed costs
// nothing: the grid is whole, so Run returns it.
func TestRunCancellationAfterCompletionReturnsResults(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const n = 5
	out, err := Run(ctx, cancelGrid(t, n),
		func(_ context.Context, p Point, _ *rng.Source) (int, error) {
			if p.Index == n-1 { // sequential with Workers: 1 — the last cell
				cancel()
			}
			return p.Index, nil
		}, Options{Workers: 1})
	if err != nil {
		t.Fatalf("err = %v, want the completed grid", err)
	}
	for i, v := range out {
		if v != i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

// A job that fabricates a cancellation-wrapped error without the run's
// context being canceled keeps the plain first-error contract.
func TestRunWrappedCancelErrorWithoutCancellation(t *testing.T) {
	_, err := Run(context.Background(), cancelGrid(t, 3),
		func(_ context.Context, p Point, _ *rng.Source) (int, error) {
			if p.Index == 1 {
				return 0, fmt.Errorf("gave up waiting: %w", context.Canceled)
			}
			return p.Index, nil
		}, Options{Workers: 1})
	if err == nil || !strings.Contains(err.Error(), "gave up waiting") {
		t.Fatalf("err = %v, want the job's own error", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v lost its cause chain", err)
	}
}
