package runner

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"mfdl/internal/obs"
	"mfdl/internal/rng"
	"mfdl/internal/runner/diskcache"
)

// JobEnv carries the shared process-local resources a job kind may draw on
// while evaluating cells. Every field is optional from the caller's point
// of view — executors fill in an in-memory Cache when none is given, and
// kinds must tolerate a nil Samples store (compute instead of reuse) and a
// nil Obs registry.
type JobEnv struct {
	// Cache pools steady-state solves across cells (fluid kinds).
	Cache *Cache
	// Samples, when non-nil, is the keyed replica-sample store: kinds that
	// draw stochastic replicas look each (key, seed) up before simulating
	// and persist what they had to compute, so growing the replica count
	// extends earlier runs instead of resampling them.
	Samples *diskcache.SampleStore
	// Obs, when non-nil, receives kind-specific instrumentation.
	Obs *obs.Registry
}

// JobKind defines one registrable cell computation — how a JobSpec of this
// kind validates, how many executable cells it fans out to, and how one
// cell evaluates to a payload. The payload is opaque bytes chosen by the
// kind (gob for fluid cells, canonical JSON for replica samples); it is
// what crosses checkpoint files and the fabric wire, so it must be a pure
// function of (spec, cell): two processes evaluating the same cell of
// equal specs must produce identical bytes.
type JobKind struct {
	// Name is the kind's wire name (JobSpec.Kind).
	Name string
	// Validate checks kind-specific invariants beyond the generic schema,
	// grid and replica checks. Optional.
	Validate func(spec JobSpec) error
	// Cells returns how many executable cells the spec fans out to. For a
	// plain sweep this is the grid size; a replicated kind multiplies in
	// its replica count.
	Cells func(spec JobSpec) (int, error)
	// Evaluate computes cell i's payload. src is the cell's pre-split
	// random stream (see CellStream); kinds that draw nothing from it must
	// still accept it, because deriving it is part of the determinism
	// contract every executor honors.
	Evaluate func(ctx context.Context, spec JobSpec, env JobEnv, cell int, src *rng.Source) ([]byte, error)
	// SampleRef, when non-nil, maps a cell to its sample-store identity —
	// the (key, seed) pair under which the cell's payload is persisted in
	// a diskcache.SampleStore. Executors that hold a sample store use it
	// to skip cells whose samples already exist and to write completed
	// cells back, locally and through the fabric. ok=false means the cell
	// has no store identity and is always computed.
	SampleRef func(spec JobSpec, cell int) (key string, seed uint64, ok bool)
}

var (
	jobKindMu sync.RWMutex
	jobKinds  = map[string]JobKind{}
)

// RegisterJobKind adds a kind to the registry, typically from a package
// init. It panics on a duplicate name or a structurally incomplete kind —
// both are programmer errors that no run should limp past.
func RegisterJobKind(k JobKind) {
	if k.Name == "" || k.Cells == nil || k.Evaluate == nil {
		panic("runner: RegisterJobKind needs a name, a Cells func and an Evaluate func")
	}
	jobKindMu.Lock()
	defer jobKindMu.Unlock()
	if _, dup := jobKinds[k.Name]; dup {
		panic(fmt.Sprintf("runner: job kind %q registered twice", k.Name))
	}
	jobKinds[k.Name] = k
}

// LookupJobKind returns the registered kind by name.
func LookupJobKind(name string) (JobKind, bool) {
	jobKindMu.RLock()
	defer jobKindMu.RUnlock()
	k, ok := jobKinds[name]
	return k, ok
}

// JobKindNames returns the registered kind names, sorted — for error
// messages and CLI help.
func JobKindNames() []string {
	jobKindMu.RLock()
	defer jobKindMu.RUnlock()
	names := make([]string, 0, len(jobKinds))
	for name := range jobKinds {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// errUnknownKind is the one rejection every consumer of a spec must agree
// on — ParseJobSpec, the fabric's job fetch, and its completion endpoint
// all funnel through Validate and therefore through this message.
func errUnknownKind(kind string) error {
	return fmt.Errorf("runner: unknown job kind %q (have %s)",
		kind, strings.Join(JobKindNames(), ", "))
}

// EvaluateJobCell evaluates one cell of a validated spec through its
// registered kind, deriving the cell's stream exactly as a local Run
// would (CellStream) — the single entry point remote fabric workers use,
// which is what keeps a distributed run byte-identical to a local one.
func EvaluateJobCell(ctx context.Context, spec JobSpec, env JobEnv, cell int) ([]byte, error) {
	kind, ok := LookupJobKind(spec.Kind)
	if !ok {
		return nil, errUnknownKind(spec.Kind)
	}
	if env.Cache == nil {
		env.Cache = NewCache()
	}
	return kind.Evaluate(ctx, spec, env, cell, CellStream(spec.Seed, cell))
}

// RunJobPayloads executes every cell of the job locally over the runner
// pool and returns the raw per-cell payloads in cell order — the generic
// executor every kind shares. opts.Seed is overridden by the spec's seed;
// opts.Checkpoint, when set, replays and persists the payload bytes
// verbatim (no re-encoding), so a checkpoint written by a fabric
// coordinator and one written here are interchangeable.
func RunJobPayloads(ctx context.Context, spec JobSpec, env JobEnv, opts Options) ([][]byte, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	kind, ok := LookupJobKind(spec.Kind)
	if !ok {
		return nil, errUnknownKind(spec.Kind)
	}
	n, err := kind.Cells(spec)
	if err != nil {
		return nil, err
	}
	g, err := Indexed("cell", n)
	if err != nil {
		return nil, err
	}
	if env.Cache == nil {
		env.Cache = NewCache()
	}
	// The generic Run checkpoint layer would gob-wrap the payload bytes;
	// replay and persist them raw instead, keeping Entry.Payload the one
	// payload encoding everywhere.
	ckpt := opts.Checkpoint
	opts.Checkpoint = nil
	opts.Seed = spec.Seed
	resumed := opts.Obs.Counter("runner_cells_resumed_total")
	return Run(ctx, g, func(ctx context.Context, p Point, src *rng.Source) ([]byte, error) {
		if payload, ok := ckpt.LoadRaw(p.Index); ok {
			resumed.Inc()
			return payload, nil
		}
		payload, err := kind.Evaluate(ctx, spec, env, p.Index, src)
		if err != nil {
			return nil, err
		}
		ckpt.SaveRaw(p.Index, payload)
		return payload, nil
	}, opts)
}
