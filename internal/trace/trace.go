// Package trace records named time series from simulations and fluid
// integrations — population trajectories, ρ evolution — and compares or
// exports them. It backs the transient (flash-crowd) experiments, where
// the object of interest is the path to steady state rather than the fixed
// point itself.
package trace

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
)

// Series is one named time series with strictly increasing times.
type Series struct {
	Name string
	T    []float64
	V    []float64
}

// Append adds one sample; times must be non-decreasing (equal times
// overwrite the last value).
func (s *Series) Append(t, v float64) error {
	if n := len(s.T); n > 0 {
		last := s.T[n-1]
		if t < last {
			return fmt.Errorf("trace: time %v before last %v in %q", t, last, s.Name)
		}
		if t == last {
			s.V[n-1] = v
			return nil
		}
	}
	s.T = append(s.T, t)
	s.V = append(s.V, v)
	return nil
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.T) }

// At linearly interpolates the series at time t, clamping outside the
// recorded range. NaN for an empty series.
func (s *Series) At(t float64) float64 {
	n := len(s.T)
	if n == 0 {
		return math.NaN()
	}
	if t <= s.T[0] {
		return s.V[0]
	}
	if t >= s.T[n-1] {
		return s.V[n-1]
	}
	i := sort.SearchFloat64s(s.T, t)
	// s.T[i-1] < t <= s.T[i]
	t0, t1 := s.T[i-1], s.T[i]
	v0, v1 := s.V[i-1], s.V[i]
	return v0 + (v1-v0)*(t-t0)/(t1-t0)
}

// Max returns the largest value and its time (NaNs for empty series).
func (s *Series) Max() (t, v float64) {
	if len(s.T) == 0 {
		return math.NaN(), math.NaN()
	}
	t, v = s.T[0], s.V[0]
	for i := range s.T {
		if s.V[i] > v {
			t, v = s.T[i], s.V[i]
		}
	}
	return t, v
}

// Final returns the last value (NaN for an empty series).
func (s *Series) Final() float64 {
	if len(s.V) == 0 {
		return math.NaN()
	}
	return s.V[len(s.V)-1]
}

// RMSDistance compares two series by sampling both at n evenly spaced
// times over their overlapping range and returning the root-mean-square
// difference. An error is returned when the ranges do not overlap.
func RMSDistance(a, b *Series, n int) (float64, error) {
	if a.Len() == 0 || b.Len() == 0 {
		return 0, errors.New("trace: empty series")
	}
	lo := math.Max(a.T[0], b.T[0])
	hi := math.Min(a.T[a.Len()-1], b.T[b.Len()-1])
	if hi <= lo {
		return 0, errors.New("trace: series do not overlap in time")
	}
	if n < 2 {
		n = 2
	}
	sum := 0.0
	for i := 0; i < n; i++ {
		t := lo + (hi-lo)*float64(i)/float64(n-1)
		d := a.At(t) - b.At(t)
		sum += d * d
	}
	return math.Sqrt(sum / float64(n)), nil
}

// Recorder collects several series under one clock.
type Recorder struct {
	order  []string
	series map[string]*Series
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{series: map[string]*Series{}}
}

// Record appends a sample to the named series, creating it on first use.
func (r *Recorder) Record(name string, t, v float64) error {
	s, ok := r.series[name]
	if !ok {
		s = &Series{Name: name}
		r.series[name] = s
		r.order = append(r.order, name)
	}
	return s.Append(t, v)
}

// Series returns the named series, or nil.
func (r *Recorder) Series(name string) *Series { return r.series[name] }

// Names returns the series names in creation order.
func (r *Recorder) Names() []string { return append([]string(nil), r.order...) }

// WriteCSV exports all series resampled onto the union time grid of the
// first series (columns: t, then one per series, linearly interpolated).
func (r *Recorder) WriteCSV(w io.Writer) error {
	if len(r.order) == 0 {
		return errors.New("trace: nothing recorded")
	}
	base := r.series[r.order[0]]
	cw := csv.NewWriter(w)
	header := append([]string{"t"}, r.order...)
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, len(header))
	for i, t := range base.T {
		_ = i
		row[0] = strconv.FormatFloat(t, 'g', -1, 64)
		for j, name := range r.order {
			row[j+1] = strconv.FormatFloat(r.series[name].At(t), 'g', -1, 64)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
