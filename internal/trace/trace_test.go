package trace

import (
	"math"
	"strings"
	"testing"
)

func TestAppendOrdering(t *testing.T) {
	var s Series
	if err := s.Append(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(0.5, 3); err == nil {
		t.Fatal("time regression accepted")
	}
	// Equal time overwrites.
	if err := s.Append(1, 9); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 || s.V[1] != 9 {
		t.Fatalf("overwrite failed: %+v", s)
	}
}

func TestAtInterpolation(t *testing.T) {
	s := Series{T: []float64{0, 10}, V: []float64{0, 100}}
	if got := s.At(5); math.Abs(got-50) > 1e-12 {
		t.Fatalf("At(5) = %v", got)
	}
	// Clamping.
	if s.At(-1) != 0 || s.At(11) != 100 {
		t.Fatal("clamping failed")
	}
	// Exact sample.
	if s.At(10) != 100 {
		t.Fatal("exact sample wrong")
	}
	var empty Series
	if !math.IsNaN(empty.At(1)) {
		t.Fatal("empty series should give NaN")
	}
}

func TestMaxAndFinal(t *testing.T) {
	s := Series{T: []float64{0, 1, 2}, V: []float64{3, 7, 5}}
	tm, vm := s.Max()
	if tm != 1 || vm != 7 {
		t.Fatalf("Max = (%v, %v)", tm, vm)
	}
	if s.Final() != 5 {
		t.Fatalf("Final = %v", s.Final())
	}
	var empty Series
	if _, v := empty.Max(); !math.IsNaN(v) {
		t.Fatal("empty Max should be NaN")
	}
	if !math.IsNaN(empty.Final()) {
		t.Fatal("empty Final should be NaN")
	}
}

func TestRMSDistance(t *testing.T) {
	a := &Series{T: []float64{0, 10}, V: []float64{0, 10}}
	b := &Series{T: []float64{0, 10}, V: []float64{1, 11}}
	d, err := RMSDistance(a, b, 100)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-1) > 1e-9 {
		t.Fatalf("RMS = %v, want 1", d)
	}
	// Identical series have zero distance.
	d2, err := RMSDistance(a, a, 10)
	if err != nil || d2 != 0 {
		t.Fatalf("self distance %v, %v", d2, err)
	}
	// Non-overlapping ranges rejected.
	c := &Series{T: []float64{20, 30}, V: []float64{0, 0}}
	if _, err := RMSDistance(a, c, 10); err == nil {
		t.Fatal("non-overlapping accepted")
	}
	var empty Series
	if _, err := RMSDistance(a, &empty, 10); err == nil {
		t.Fatal("empty accepted")
	}
}

func TestRecorder(t *testing.T) {
	r := NewRecorder()
	for i := 0; i < 5; i++ {
		ti := float64(i)
		if err := r.Record("x", ti, ti*2); err != nil {
			t.Fatal(err)
		}
		if err := r.Record("y", ti, ti*ti); err != nil {
			t.Fatal(err)
		}
	}
	if got := r.Names(); len(got) != 2 || got[0] != "x" || got[1] != "y" {
		t.Fatalf("names = %v", got)
	}
	if r.Series("x").Len() != 5 || r.Series("missing") != nil {
		t.Fatal("series lookup wrong")
	}
	var b strings.Builder
	if err := r.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "t,x,y\n") {
		t.Fatalf("csv header wrong:\n%s", out)
	}
	if !strings.Contains(out, "2,4,4\n") {
		t.Fatalf("csv row missing:\n%s", out)
	}
}

func TestRecorderEmptyCSV(t *testing.T) {
	var b strings.Builder
	if err := NewRecorder().WriteCSV(&b); err == nil {
		t.Fatal("empty recorder exported")
	}
}
