package swarm

import "testing"

// TestStepAllocsSteadyState pins the SoA refactor's core promise: once the
// peer table, the scratch buffers and the per-slot pools are warm, a
// rechoke round allocates nothing. The measured swarm is a constant
// population caught mid-download — arrivals are suppressed (they
// legitimately allocate while pools grow to a new population high-water
// mark) and the files are long enough that nobody completes or departs
// inside the window. The received-chunk logs are pre-grown to a generous
// capacity: growing a pool past its high-water mark is allowed to
// allocate, appending within capacity is not.
func TestStepAllocsSteadyState(t *testing.T) {
	cfg := benchConfig()
	cfg.Lambda0 = 1e-300    // Poisson draw still happens; arrivals never do
	cfg.ChunksPerFile = 512 // nobody finishes a file inside the window
	s := newBenchSwarm(t, cfg)
	injectBench(s, 1000)
	for i := 0; i < 20; i++ {
		s.step()
		s.round++
	}
	for i := range s.t.recvNow {
		if cap(s.t.recvNow[i]) < 64 {
			s.t.recvNow[i] = append(make([]recvPair, 0, 64), s.t.recvNow[i]...)
		}
		if cap(s.t.recvLast[i]) < 64 {
			s.t.recvLast[i] = append(make([]recvPair, 0, 64), s.t.recvLast[i]...)
		}
	}
	before := len(s.order)
	avg := testing.AllocsPerRun(50, func() {
		s.step()
		s.round++
	})
	if avg != 0 {
		t.Errorf("steady-state round allocates %v times, want 0", avg)
	}
	if len(s.order) != before {
		t.Fatalf("population moved %d -> %d during measurement; test is not steady-state", before, len(s.order))
	}
}

// TestSwarmSmoke100k drives a 10^5-peer swarm through a few rechoke rounds
// — the million-peer trajectory's first waypoint. Skipped in -short runs.
func TestSwarmSmoke100k(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	s := newBenchSwarm(t, benchConfig())
	injectBench(s, 100_000)
	for i := 0; i < 3; i++ {
		s.step()
		s.round++
	}
	if len(s.order) < 90_000 {
		t.Fatalf("population collapsed to %d peers", len(s.order))
	}
	if s.res.ChunksTransferred == 0 {
		t.Fatal("no chunks moved in three rounds")
	}
}
