package swarm

import "mfdl/internal/adapt"

// The swarm engine keeps peer state in struct-of-arrays form: every peer
// field is a dense column indexed by slot, and departed peers return their
// slot to a free list so a steady-state swarm allocates nothing per round.
// Slots are recycled; the generation column disambiguates recycled slots
// from stale references (the optimistic-unchoke target is the only
// reference that may outlive a peer). Unique peer ids (the id column)
// never recycle — they key the tit-for-tat receive log and the
// fault-plan streams exactly as the pre-SoA pointer-based engine did.

// noSlot marks an empty slot reference.
const noSlot = int32(-1)

// recvPair is one entry of a peer's per-round receive log: how many
// chunks arrived from the peer with the given unique id. The log replaces
// the former per-round map[int]int, reusing its backing array across
// rounds; lookups are linear scans over a handful of uploaders.
type recvPair struct {
	from int64
	n    int32
}

// peerTable is the struct-of-arrays peer store.
type peerTable struct {
	k          int // files per torrent
	chunks     int // total chunks
	chunkWords int // bitset words per peer

	// Scalar columns, one entry per slot.
	id             []int64
	gen            []uint32
	class          []int32
	state          []peerState
	cursor         []int32
	finished       []int32
	arrival        []int
	counted        []bool
	cheater        []bool
	vsQuit         []bool
	aborted        []bool
	schedDirty     []bool
	rho            []float64
	uploadFactor   []float64
	downloadRounds []int
	seedLeft       []int
	fileSeedLeft   []int
	abortLeft      []int
	vsQuitLeft     []int
	optSlot        []int32
	optGen         []uint32
	optAge         []int32
	adaptAge       []int32
	virtUp         []int32
	virtDown       []int32
	ctrl           []*adapt.Controller

	// Pooled per-slot slices: truncated on reuse, capacity survives.
	files     [][]int32
	neighbors [][]int32
	recvLast  [][]recvPair
	recvNow   [][]recvPair

	// Flat strided columns.
	haveCount []int32  // stride k: chunks held per file
	have      []uint64 // stride chunkWords: chunk bitset
	sched     []uint64 // stride chunkWords: chunks scheduled this round

	free []int32 // recycled slots, LIFO
}

func newPeerTable(k, chunks int) *peerTable {
	return &peerTable{
		k:          k,
		chunks:     chunks,
		chunkWords: (chunks + 63) / 64,
	}
}

// len returns the number of slots ever allocated (live + free).
func (t *peerTable) len() int { return len(t.id) }

// alloc returns a zeroed slot, recycling a free one when available.
func (t *peerTable) alloc() int32 {
	if n := len(t.free); n > 0 {
		s := t.free[n-1]
		t.free = t.free[:n-1]
		t.resetSlot(s)
		return s
	}
	s := int32(len(t.id))
	t.id = append(t.id, 0)
	t.gen = append(t.gen, 0)
	t.class = append(t.class, 0)
	t.state = append(t.state, stateDownloading)
	t.cursor = append(t.cursor, 0)
	t.finished = append(t.finished, 0)
	t.arrival = append(t.arrival, 0)
	t.counted = append(t.counted, false)
	t.cheater = append(t.cheater, false)
	t.vsQuit = append(t.vsQuit, false)
	t.aborted = append(t.aborted, false)
	t.schedDirty = append(t.schedDirty, false)
	t.rho = append(t.rho, 0)
	t.uploadFactor = append(t.uploadFactor, 0)
	t.downloadRounds = append(t.downloadRounds, 0)
	t.seedLeft = append(t.seedLeft, 0)
	t.fileSeedLeft = append(t.fileSeedLeft, 0)
	t.abortLeft = append(t.abortLeft, 0)
	t.vsQuitLeft = append(t.vsQuitLeft, 0)
	t.optSlot = append(t.optSlot, noSlot)
	t.optGen = append(t.optGen, 0)
	t.optAge = append(t.optAge, 0)
	t.adaptAge = append(t.adaptAge, 0)
	t.virtUp = append(t.virtUp, 0)
	t.virtDown = append(t.virtDown, 0)
	t.ctrl = append(t.ctrl, nil)
	t.files = append(t.files, nil)
	t.neighbors = append(t.neighbors, nil)
	t.recvLast = append(t.recvLast, nil)
	t.recvNow = append(t.recvNow, nil)
	t.haveCount = append(t.haveCount, make([]int32, t.k)...)
	t.have = append(t.have, make([]uint64, t.chunkWords)...)
	t.sched = append(t.sched, make([]uint64, t.chunkWords)...)
	return s
}

// resetSlot clears a recycled slot back to the zero state alloc promises.
// The generation was already bumped by freeSlot, so stale references to
// the previous occupant can never match.
func (t *peerTable) resetSlot(s int32) {
	t.id[s] = 0
	t.class[s] = 0
	t.state[s] = stateDownloading
	t.cursor[s] = 0
	t.finished[s] = 0
	t.arrival[s] = 0
	t.counted[s] = false
	t.cheater[s] = false
	t.vsQuit[s] = false
	t.aborted[s] = false
	t.schedDirty[s] = false
	t.rho[s] = 0
	t.uploadFactor[s] = 0
	t.downloadRounds[s] = 0
	t.seedLeft[s] = 0
	t.fileSeedLeft[s] = 0
	t.abortLeft[s] = 0
	t.vsQuitLeft[s] = 0
	t.optSlot[s] = noSlot
	t.optGen[s] = 0
	t.optAge[s] = 0
	t.adaptAge[s] = 0
	t.virtUp[s] = 0
	t.virtDown[s] = 0
	t.ctrl[s] = nil
	t.files[s] = t.files[s][:0]
	t.neighbors[s] = t.neighbors[s][:0]
	t.recvLast[s] = t.recvLast[s][:0]
	t.recvNow[s] = t.recvNow[s][:0]
	hc := t.haveCountOf(s)
	for i := range hc {
		hc[i] = 0
	}
	hv := t.haveOf(s)
	for i := range hv {
		hv[i] = 0
	}
	// sched is cleared at the end of every planning phase; keep the
	// invariant cheap to trust.
	sc := t.schedOf(s)
	for i := range sc {
		sc[i] = 0
	}
}

// freeSlot returns a slot to the free list and bumps its generation.
func (t *peerTable) freeSlot(s int32) {
	t.gen[s]++
	t.free = append(t.free, s)
}

func (t *peerTable) haveCountOf(s int32) []int32 {
	base := int(s) * t.k
	return t.haveCount[base : base+t.k]
}

func (t *peerTable) haveOf(s int32) []uint64 {
	base := int(s) * t.chunkWords
	return t.have[base : base+t.chunkWords]
}

func (t *peerTable) schedOf(s int32) []uint64 {
	base := int(s) * t.chunkWords
	return t.sched[base : base+t.chunkWords]
}

func (t *peerTable) hasChunk(s int32, c int32) bool {
	return t.have[int(s)*t.chunkWords+int(c>>6)]&(1<<(uint(c)&63)) != 0
}

func (t *peerTable) setChunk(s int32, c int32) {
	t.have[int(s)*t.chunkWords+int(c>>6)] |= 1 << (uint(c) & 63)
}

func (t *peerTable) schedChunk(s int32, c int32) bool {
	return t.sched[int(s)*t.chunkWords+int(c>>6)]&(1<<(uint(c)&63)) != 0
}

func (t *peerTable) setSched(s int32, c int32) {
	t.sched[int(s)*t.chunkWords+int(c>>6)] |= 1 << (uint(c) & 63)
}

func (t *peerTable) clearSched(s int32) {
	sc := t.schedOf(s)
	for i := range sc {
		sc[i] = 0
	}
	t.schedDirty[s] = false
}

// recvNowAdd counts one chunk received by slot s from the peer with
// unique id from, this round.
func (t *peerTable) recvNowAdd(s int32, from int64) {
	log := t.recvNow[s]
	for i := range log {
		if log[i].from == from {
			log[i].n++
			return
		}
	}
	t.recvNow[s] = append(log, recvPair{from: from, n: 1})
}

// recvCount returns how many chunks slot s received from the peer with
// unique id from during the previous round (the tit-for-tat ranking key).
func (t *peerTable) recvCount(s int32, from int64) int32 {
	for _, p := range t.recvLast[s] {
		if p.from == from {
			return p.n
		}
	}
	return 0
}

// rotateRecv makes this round's receive log the ranking key for the next
// round, reusing the previous log's backing array.
func (t *peerTable) rotateRecv(s int32) {
	t.recvLast[s], t.recvNow[s] = t.recvNow[s], t.recvLast[s][:0]
}
