// Package swarm is a chunk-level, round-based BitTorrent simulator for the
// multi-file torrent scenario (Sections 3.4–3.5 of the paper): one torrent
// carries K files split into chunks; peers exchange chunks under tit-for-tat
// choking with an optimistic unchoke slot and rarest-first piece selection.
//
// It simulates three schemes at the mechanism level the fluid model
// abstracts away:
//
//   - MFCD: a peer wants every missing chunk of every file it requested and
//     picks rarest-first across all of them — exactly the "download the
//     chunks randomly" behaviour of real clients the paper describes.
//   - CMFSD: a peer downloads its files sequentially, wanting only chunks of
//     the current file, and once it has completed at least one file it acts
//     as a partial seed: a fraction ρ of its upload plays tit-for-tat in its
//     current subtorrent and 1−ρ altruistically serves chunks of its
//     finished files.
//   - MTSD: sequential with a dedicated per-file seeding pause — the
//     multi-torrent sequential behaviour embedded in one swarm.
//
// MTCD is covered by the flow-level simulator in internal/eventsim (in a
// shared swarm it is chunk-for-chunk identical to MFCD); chunk-level
// realism matters most inside a single multi-file torrent, where piece
// selection couples the subtorrents.
//
// Simplifications (documented in DESIGN.md): time advances in rechoke
// rounds; bandwidth is an integer number of chunks per round; each peer
// knows a bounded random neighbor set plus the origin seed; an origin seed
// (the publisher) holds all chunks permanently, which is how real torrents
// bootstrap.
//
// Peer state lives in a struct-of-arrays table (soa.go) so a steady-state
// round allocates nothing; the layout and the determinism contract the
// refactor preserves are documented in DESIGN.md.
package swarm

import (
	"errors"
	"fmt"
	"math"
	"math/bits"

	"mfdl/internal/adapt"
	"mfdl/internal/correlation"
	"mfdl/internal/faults"
	"mfdl/internal/rng"
	"mfdl/internal/scheme"
	"mfdl/internal/stats"
	"mfdl/internal/trace"
)

// Scheme selects the downloading scheme. It aliases the shared
// scheme.SimScheme identifier, so one scheme value addresses both
// simulators. The chunk-level swarm supports MFCD, CMFSD and MTSD;
// Validate rejects MTCD, which is flow-level only (in a single shared
// swarm it is chunk-for-chunk identical to MFCD).
type Scheme = scheme.SimScheme

// The chunk-level schemes.
//
// Deprecated: these local names are aliases kept so existing callers
// compile unchanged; new code should use the scheme.Sim* constants.
const (
	// MFCD wants every chunk of every requested file at once.
	MFCD = scheme.SimMFCD
	// CMFSD downloads files sequentially and partial-seeds finished ones
	// while downloading.
	CMFSD = scheme.SimCMFSD
	// MTSD downloads files sequentially with a dedicated seeding pause
	// of mean 1/γ rounds after each file — the multi-torrent sequential
	// behaviour embedded in one swarm (a peer in an MTSD pause is
	// indistinguishable from a per-file seed).
	MTSD = scheme.SimMTSD
)

// Config parameterizes one swarm simulation.
type Config struct {
	// K is the number of files in the torrent.
	K int
	// ChunksPerFile is the number of chunks per file.
	ChunksPerFile int
	// Lambda0 is the user visiting rate in users per round.
	Lambda0 float64
	// P is the file correlation.
	P float64
	// Scheme is MFCD, CMFSD or MTSD.
	Scheme Scheme
	// Rho is the CMFSD partial-seed allocation ratio when Adapt is nil.
	Rho float64
	// Adapt, when non-nil, runs the Adapt controller per obedient peer.
	Adapt *adapt.Config
	// CheaterFraction is the fraction of CMFSD peers pinning ρ = 1.
	CheaterFraction float64
	// UploadPerRound is each peer's upload bandwidth in chunks per round.
	UploadPerRound int
	// TFTEfficiency is the paper's η: the probability that a chunk sent
	// over a tit-for-tat link between two downloaders is actually useful
	// (duplicate blocks, choking churn and request latency waste the
	// rest). Seed and virtual-seed uploads are altruistic and always
	// land, matching the fluid model's μηP·x vs μ(1−P)·x asymmetry.
	TFTEfficiency float64
	// Slots is the number of unchoke slots (including the optimistic one).
	Slots int
	// OptimisticEvery is the optimistic-unchoke rotation period in rounds.
	OptimisticEvery int
	// Gamma is the per-round seed departure probability parameter: seeds
	// stay for a geometric number of rounds with mean 1/Gamma.
	Gamma float64
	// MaxNeighbors bounds each peer's neighbor set (the origin seed is
	// always known).
	MaxNeighbors int
	// OriginUpload is the origin seed's upload bandwidth (defaults to
	// UploadPerRound).
	OriginUpload int
	// Horizon is the number of rounds to simulate.
	Horizon int
	// Warmup discards users arriving before this round from statistics.
	Warmup int
	// Seed drives the deterministic RNG.
	Seed uint64
	// SampleEvery, when positive, records downloader and seed population
	// series into Result.Trace every that many rounds.
	SampleEvery int
	// Faults injects deterministic churn: downloader aborts (rate per
	// downloading round), virtual-seed quits (CMFSD), slow-peer
	// throttling, and chunk-delivery loss. Fault draws come from
	// dedicated streams keyed by Faults.Seed mixed with Seed, so a
	// faults-off run is bit-identical to the pre-fault simulator.
	Faults faults.Config
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.K < 1 {
		return fmt.Errorf("swarm: K = %d must be >= 1", c.K)
	}
	if c.ChunksPerFile < 1 {
		return errors.New("swarm: ChunksPerFile must be >= 1")
	}
	if c.Lambda0 <= 0 {
		return errors.New("swarm: Lambda0 must be positive")
	}
	if c.P <= 0 || c.P > 1 {
		return fmt.Errorf("swarm: p = %v outside (0,1]", c.P)
	}
	switch c.Scheme {
	case MFCD, CMFSD, MTSD:
	default:
		// MTCD in particular: one swarm per torrent makes it flow-level
		// only (internal/eventsim); in a shared swarm it would be MFCD.
		return fmt.Errorf("swarm: unknown scheme %d", int(c.Scheme))
	}
	if c.Rho < 0 || c.Rho > 1 {
		return fmt.Errorf("swarm: ρ = %v outside [0,1]", c.Rho)
	}
	if c.Adapt != nil {
		if err := c.Adapt.Validate(); err != nil {
			return err
		}
	}
	if c.CheaterFraction < 0 || c.CheaterFraction > 1 {
		return errors.New("swarm: cheater fraction outside [0,1]")
	}
	if c.UploadPerRound < 1 {
		return errors.New("swarm: UploadPerRound must be >= 1")
	}
	if c.TFTEfficiency <= 0 || c.TFTEfficiency > 1 {
		return fmt.Errorf("swarm: η = %v outside (0,1]", c.TFTEfficiency)
	}
	if c.Slots < 2 {
		return errors.New("swarm: need at least 2 unchoke slots")
	}
	if c.OptimisticEvery < 1 {
		return errors.New("swarm: OptimisticEvery must be >= 1")
	}
	if c.Gamma <= 0 || c.Gamma > 1 {
		return fmt.Errorf("swarm: Gamma = %v outside (0,1]", c.Gamma)
	}
	if c.MaxNeighbors < 1 {
		return errors.New("swarm: MaxNeighbors must be >= 1")
	}
	if c.Horizon < 1 {
		return errors.New("swarm: Horizon must be >= 1")
	}
	if c.Warmup < 0 || c.Warmup >= c.Horizon {
		return errors.New("swarm: Warmup outside [0, Horizon)")
	}
	if c.SampleEvery < 0 {
		return errors.New("swarm: SampleEvery must be non-negative")
	}
	if err := c.Faults.Validate(); err != nil {
		return err
	}
	return nil
}

// DefaultConfig is a small but realistic operating point used by the
// examples and tests.
var DefaultConfig = Config{
	K:               5,
	ChunksPerFile:   16,
	Lambda0:         0.5,
	P:               0.9,
	Scheme:          CMFSD,
	Rho:             0,
	UploadPerRound:  4,
	TFTEfficiency:   0.5,
	Slots:           4,
	OptimisticEvery: 3,
	Gamma:           0.1,
	MaxNeighbors:    25,
	Horizon:         1500,
	Warmup:          300,
	Seed:            1,
}

// ClassStats aggregates completed users of one class.
type ClassStats struct {
	Class          int
	Completed      int
	OnlineRounds   stats.Summary
	DownloadRounds stats.Summary
}

// Result is the outcome of one swarm run.
type Result struct {
	Config Config
	// Classes holds classes 1..K.
	Classes []ClassStats
	// ArrivedUsers / CompletedUsers count post-warmup users.
	ArrivedUsers, CompletedUsers int
	// AvgOnlinePerFile and AvgDownloadPerFile are the paper's aggregation
	// in rounds per file.
	AvgOnlinePerFile, AvgDownloadPerFile float64
	// MeanDownloaders / MeanSeeds are time-averaged populations.
	MeanDownloaders, MeanSeeds float64
	// FinalRho summarizes completed obedient multi-file peers' final ρ.
	FinalRho stats.Summary
	// ChunksTransferred counts every chunk delivery (excluding origin).
	ChunksTransferred int
	// AbortedUsers counts counted users removed by an injected abort;
	// their partial online/download rounds stay in the averages but not
	// in Completed.
	AbortedUsers int
	// SeedQuits counts injected virtual-seed departures (CMFSD).
	SeedQuits int
	// ChunksLost counts scheduled deliveries dropped by injected loss.
	ChunksLost int
	// Trace holds "downloaders" and "seeds" series when
	// Config.SampleEvery > 0, else nil.
	Trace *trace.Recorder
}

type peerState uint8

const (
	stateDownloading peerState = iota
	stateSeeding
)

// wantsFile reports whether slot p currently wants chunks of file f.
func (s *sim) wantsFile(p int32, f int) bool {
	t := s.t
	if t.state[p] != stateDownloading {
		return false
	}
	if t.haveCountOf(p)[f] == int32(s.cfg.ChunksPerFile) {
		return false
	}
	switch s.cfg.Scheme {
	case MFCD:
		for _, rf := range t.files[p] {
			if int(rf) == f {
				return true
			}
		}
		return false
	default: // CMFSD/MTSD: only the current file, and not during a pause
		if t.fileSeedLeft[p] > 0 {
			return false
		}
		cur := int(t.cursor[p])
		return cur < len(t.files[p]) && int(t.files[p][cur]) == f
	}
}

// interested reports whether q could use any chunk p is offering from file
// set judged at file granularity (cheap over-approximation; a useless
// unchoke just transfers nothing).
//
// This is the hottest predicate in the simulator (every unchoke decision
// scans it across the neighbor set), so it inlines wantsFile: sequential
// schemes can only want the cursor file, and for MFCD the existence check
// is order-independent, so scanning q's requested files instead of all K
// returns the same boolean with fewer haveCount probes.
func (s *sim) interested(q, p int32, virtualOnly bool) bool {
	t := s.t
	if t.state[q] != stateDownloading {
		return false
	}
	pc := t.haveCountOf(p)
	qc := t.haveCountOf(q)
	cpf := int32(s.cfg.ChunksPerFile)
	if s.cfg.Scheme == MFCD {
		for _, rf := range t.files[q] {
			f := int(rf)
			if qc[f] == cpf {
				continue
			}
			if virtualOnly && pc[f] != cpf {
				continue
			}
			if pc[f] > 0 {
				return true
			}
		}
		return false
	}
	// CMFSD/MTSD: q wants only its current file, and none mid-pause.
	if t.fileSeedLeft[q] > 0 {
		return false
	}
	cur := int(t.cursor[q])
	if cur >= len(t.files[q]) {
		return false
	}
	f := int(t.files[q][cur])
	if qc[f] == cpf {
		return false
	}
	if virtualOnly && pc[f] != cpf {
		return false
	}
	return pc[f] > 0
}

// fileFinished reports whether slot p holds all chunks of file f.
func (s *sim) fileFinished(p int32, f int) bool {
	return s.t.haveCountOf(p)[f] == int32(s.cfg.ChunksPerFile)
}

type sim struct {
	cfg     Config
	corr    *correlation.Model
	rng     *rng.Source
	plan    *faults.Plan // nil when faults are disabled
	lossSrc *rng.Source  // dedicated stream for delivery-loss draws
	t       *peerTable
	order   []int32 // live slots in arrival order (the former peer list)
	origin  int32
	nextID  int64
	round   int

	chunkCount []int32 // global availability per chunk (including origin)

	// Round scratch, reused every round so a steady-state step allocates
	// nothing (ownership rules in DESIGN.md).
	planned       []transfer
	schedTouched  []int32 // slots whose sched bitset needs clearing
	interestedBuf []int32
	targetsBuf    []int32
	poolBuf       []int32
	permBuf       []int
	rank          ranker

	res       *Result
	dlPop     stats.TimeWeighted
	seedPop   stats.TimeWeighted
	sumOnline float64
	sumDl     float64
	sumFiles  int
	classCDF  []float64
	totalRate float64
}

// Run executes one swarm simulation.
func Run(cfg Config) (*Result, error) {
	if cfg.OriginUpload == 0 {
		cfg.OriginUpload = cfg.UploadPerRound
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	corr, err := correlation.New(cfg.K, cfg.P, cfg.Lambda0)
	if err != nil {
		return nil, err
	}
	// Mixing the sim seed into the chaos seed decorrelates replicas while
	// keeping each (seed, chaos-seed) pair fully deterministic.
	plan, err := faults.NewPlan(cfg.Faults.Mixed(cfg.Seed), nil)
	if err != nil {
		return nil, err
	}
	s := &sim{
		cfg:  cfg,
		corr: corr,
		rng:  rng.New(cfg.Seed),
		plan: plan,
		res:  &Result{Config: cfg, Classes: make([]ClassStats, cfg.K)},
	}
	if plan != nil && plan.LossProb() > 0 {
		s.lossSrc = plan.LossStream(0)
	}
	for i := range s.res.Classes {
		s.res.Classes[i].Class = i + 1
	}
	s.setup()
	for s.round = 0; s.round < cfg.Horizon; s.round++ {
		s.step()
	}
	s.finish()
	return s.res, nil
}

func (s *sim) totalChunks() int { return s.cfg.K * s.cfg.ChunksPerFile }

func (s *sim) setup() {
	n := s.totalChunks()
	s.chunkCount = make([]int32, n)
	s.t = newPeerTable(s.cfg.K, n)
	origin := s.t.alloc()
	s.t.id[origin] = 0
	s.t.state[origin] = stateSeeding
	s.t.seedLeft[origin] = math.MaxInt32
	hv := s.t.haveOf(origin)
	for c := 0; c < n; c++ {
		hv[c>>6] |= 1 << (uint(c) & 63)
		s.chunkCount[c]++
	}
	hc := s.t.haveCountOf(origin)
	for f := 0; f < s.cfg.K; f++ {
		hc[f] = int32(s.cfg.ChunksPerFile)
	}
	s.origin = origin
	s.nextID = 1
	acc := 0.0
	s.classCDF = make([]float64, s.cfg.K)
	for i := 1; i <= s.cfg.K; i++ {
		acc += s.corr.UserRate(i)
		s.classCDF[i-1] = acc
	}
	s.totalRate = acc
}

func (s *sim) sampleClass() int {
	u := s.rng.Float64() * s.totalRate
	for i, c := range s.classCDF {
		if u <= c {
			return i + 1
		}
	}
	return s.cfg.K
}

func (s *sim) arrive() {
	n := s.rng.Poisson(s.totalRate)
	for i := 0; i < n; i++ {
		s.addPeer()
	}
}

// addPeer admits one new downloader: class and file draws, fault plan
// lookups, and a bounded random symmetric neighbor sample. The RNG draw
// sequence is identical to the pre-SoA engine's (see DESIGN.md).
func (s *sim) addPeer() {
	t := s.t
	class := s.sampleClass()
	s.permBuf = s.rng.PermInto(s.permBuf, s.cfg.K)
	slot := t.alloc()
	t.id[slot] = s.nextID
	s.nextID++
	t.class[slot] = int32(class)
	fl := t.files[slot]
	for _, f := range s.permBuf[:class] {
		fl = append(fl, int32(f))
	}
	t.files[slot] = fl
	t.arrival[slot] = s.round
	t.counted[slot] = s.round >= s.cfg.Warmup
	t.rho[slot] = s.cfg.Rho
	if s.plan != nil {
		// Per-peer draws keyed by id: the main RNG sees exactly the
		// faults-off sequence.
		id := uint64(t.id[slot])
		if a := s.plan.AbortAfter(id); a < math.MaxInt32 {
			t.abortLeft[slot] = 1 + int(a)
		}
		if s.cfg.Scheme == CMFSD && class > 1 {
			if q := s.plan.SeedQuitAfter(id); q < math.MaxInt32 {
				t.vsQuitLeft[slot] = 1 + int(q)
			}
		}
		if f := s.plan.UploadFactor(id); f < 1 {
			t.uploadFactor[slot] = f
			s.plan.NoteSlowPeer()
		}
	}
	if s.cfg.Scheme == CMFSD {
		if s.rng.Bernoulli(s.cfg.CheaterFraction) {
			t.cheater[slot] = true
			t.rho[slot] = 1
		} else if s.cfg.Adapt != nil {
			if ctrl, err := adapt.NewController(*s.cfg.Adapt); err == nil {
				t.ctrl[slot] = ctrl
				t.rho[slot] = ctrl.Rho()
			}
		}
	}
	// Neighbor set: a bounded random sample of current peers, plus the
	// origin seed. Links are symmetric.
	cand := len(s.order)
	want := s.cfg.MaxNeighbors
	if want > cand {
		want = cand
	}
	s.permBuf = s.rng.PermInto(s.permBuf, cand)
	for _, idx := range s.permBuf[:want] {
		q := s.order[idx]
		t.neighbors[slot] = append(t.neighbors[slot], q)
		t.neighbors[q] = append(t.neighbors[q], slot)
	}
	t.neighbors[slot] = append(t.neighbors[slot], s.origin)
	if t.counted[slot] {
		s.res.ArrivedUsers++
	}
	s.order = append(s.order, slot)
}

// uploadBudgets returns the TFT and virtual-seed chunk budgets of slot p
// this round.
func (s *sim) uploadBudgets(p int32) (tft, virtual int) {
	t := s.t
	u := s.cfg.UploadPerRound
	if p == s.origin {
		return 0, s.cfg.OriginUpload
	}
	if f := t.uploadFactor[p]; f > 0 && f < 1 {
		// Injected slow-peer throttling.
		u = int(math.Round(f * float64(u)))
	}
	if t.state[p] == stateSeeding {
		return 0, u
	}
	if s.cfg.Scheme == MTSD && t.fileSeedLeft[p] > 0 {
		// Per-file seeding pause: the whole upload serves finished files.
		return 0, u
	}
	if s.cfg.Scheme == CMFSD && t.class[p] > 1 && t.finished[p] >= 1 {
		if t.vsQuit[p] {
			// An injected virtual-seed quit: the peer turns selfish and
			// spends its whole upload on tit-for-tat.
			return u, 0
		}
		v := int(math.Round((1 - t.rho[p]) * float64(u)))
		return u - v, v
	}
	return u, 0
}

// transfer is one scheduled chunk delivery, applied at the end of the round.
type transfer struct {
	to      int32
	from    int32
	chunk   int32
	virtual bool
}

// step simulates one rechoke round.
func (s *sim) step() {
	s.arrive()
	t := s.t

	// Record populations at the start of the round.
	if s.round >= s.cfg.Warmup || (s.cfg.SampleEvery > 0 && s.round%s.cfg.SampleEvery == 0) {
		dl, sd := 0, 0
		for _, p := range s.order {
			if t.state[p] == stateDownloading {
				dl++
			} else {
				sd++
			}
		}
		if s.round >= s.cfg.Warmup {
			s.dlPop.Observe(float64(s.round-s.cfg.Warmup), float64(dl))
			s.seedPop.Observe(float64(s.round-s.cfg.Warmup), float64(sd))
		}
		if s.cfg.SampleEvery > 0 && s.round%s.cfg.SampleEvery == 0 {
			if s.res.Trace == nil {
				s.res.Trace = trace.NewRecorder()
			}
			_ = s.res.Trace.Record("downloaders", float64(s.round), float64(dl))
			_ = s.res.Trace.Record("seeds", float64(s.round), float64(sd))
		}
	}

	// Plan all transfers with the pre-round state, then apply. The origin
	// uploads first, then every live peer in arrival order — the same
	// uploader order the former append([]*peer{origin}, peers...) built,
	// without rebuilding a slice.
	s.planned = s.planned[:0]
	for i := -1; i < len(s.order); i++ {
		p := s.origin
		if i >= 0 {
			p = s.order[i]
		}
		tftBudget, virtBudget := s.uploadBudgets(p)
		if tftBudget > 0 {
			targets := s.tftUnchoke(p)
			s.serve(p, targets, tftBudget, false, s.cfg.TFTEfficiency)
		}
		if virtBudget > 0 {
			isVirtual := p != s.origin && t.state[p] == stateDownloading
			targets := s.altruisticUnchoke(p, isVirtual)
			s.serve(p, targets, virtBudget, isVirtual, 1)
		}
	}
	for _, tr := range s.planned {
		if t.hasChunk(tr.to, tr.chunk) {
			continue
		}
		if s.lossSrc != nil && s.lossSrc.Bernoulli(s.plan.LossProb()) {
			// Injected delivery loss: the chunk is sent but never lands.
			s.res.ChunksLost++
			s.plan.NoteLoss()
			continue
		}
		t.setChunk(tr.to, tr.chunk)
		t.haveCountOf(tr.to)[int(tr.chunk)/s.cfg.ChunksPerFile]++
		s.chunkCount[tr.chunk]++
		t.recvNowAdd(tr.to, t.id[tr.from])
		s.res.ChunksTransferred++
		if tr.virtual {
			t.virtUp[tr.from]++
			t.virtDown[tr.to]++
		}
	}
	for _, p := range s.schedTouched {
		t.clearSched(p)
	}
	s.schedTouched = s.schedTouched[:0]

	// Post-transfer bookkeeping: completions, seeding transitions,
	// departures, TFT history rotation, Adapt. The live list is filtered
	// in place; departed slots return to the table's free list.
	w := 0
	for _, p := range s.order {
		t.rotateRecv(p)
		if t.state[p] == stateDownloading {
			if t.fileSeedLeft[p] > 0 {
				// MTSD per-file seeding pause.
				t.fileSeedLeft[p]--
				if t.fileSeedLeft[p] == 0 {
					t.cursor[p]++
				}
			} else {
				t.downloadRounds[p]++
				s.checkCompletion(p)
			}
		}
		if t.state[p] == stateDownloading && s.plan != nil {
			// Injected churn ticks on downloading rounds only, mirroring
			// the fluid θ·x clock. The virtual-seed-quit clock ticks while
			// the peer actually virtual-seeds.
			if !t.vsQuit[p] && t.vsQuitLeft[p] > 0 && t.class[p] > 1 && t.finished[p] >= 1 {
				t.vsQuitLeft[p]--
				if t.vsQuitLeft[p] == 0 {
					t.vsQuit[p] = true
					s.res.SeedQuits++
					s.plan.NoteSeedQuit()
				}
			}
			if t.abortLeft[p] > 0 {
				t.abortLeft[p]--
				if t.abortLeft[p] == 0 {
					t.aborted[p] = true
					s.plan.NoteAbort()
					s.depart(p)
					t.freeSlot(p)
					continue
				}
			}
		}
		if t.state[p] == stateSeeding {
			t.seedLeft[p]--
			if t.seedLeft[p] <= 0 {
				s.depart(p)
				t.freeSlot(p)
				continue
			}
		}
		if t.ctrl[p] != nil && t.state[p] == stateDownloading {
			t.adaptAge[p]++
			if float64(t.adaptAge[p]) >= t.ctrl[p].Period() {
				if t.finished[p] >= 1 && t.class[p] > 1 {
					delta := float64(t.virtUp[p]-t.virtDown[p]) / float64(t.adaptAge[p])
					t.rho[p] = t.ctrl[p].Observe(delta)
				}
				t.virtUp[p], t.virtDown[p], t.adaptAge[p] = 0, 0, 0
			}
		}
		s.order[w] = p
		w++
	}
	s.order = s.order[:w]
}

// checkCompletion advances a downloader whose current goal is met.
func (s *sim) checkCompletion(p int32) {
	t := s.t
	switch s.cfg.Scheme {
	case MFCD:
		for _, f := range t.files[p] {
			if !s.fileFinished(p, int(f)) {
				return
			}
		}
		t.finished[p] = int32(len(t.files[p]))
		s.startSeeding(p)
	case MTSD:
		if t.fileSeedLeft[p] > 0 {
			return // mid-pause; cursor advances when the pause ends
		}
		cur := int(t.cursor[p])
		if cur >= len(t.files[p]) || !s.fileFinished(p, int(t.files[p][cur])) {
			return
		}
		t.finished[p]++
		if cur+1 >= len(t.files[p]) {
			s.startSeeding(p)
			return
		}
		t.fileSeedLeft[p] = 1 + int(s.rng.Exp(s.cfg.Gamma))
	default: // CMFSD
		for int(t.cursor[p]) < len(t.files[p]) && s.fileFinished(p, int(t.files[p][t.cursor[p]])) {
			t.cursor[p]++
			t.finished[p]++
		}
		if int(t.cursor[p]) >= len(t.files[p]) {
			s.startSeeding(p)
		}
	}
}

func (s *sim) startSeeding(p int32) {
	s.t.state[p] = stateSeeding
	// Geometric residence with mean 1/γ rounds.
	s.t.seedLeft[p] = 1 + int(s.rng.Exp(s.cfg.Gamma))
}

// depart removes a peer from the swarm bookkeeping (the caller drops it
// from the live list and frees its slot) and records its statistics.
func (s *sim) depart(dead int32) {
	t := s.t
	hv := t.haveOf(dead)
	for w, word := range hv {
		for word != 0 {
			c := w<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			s.chunkCount[c]--
		}
	}
	// Remove the departed peer from its neighbors' lists eagerly, to keep
	// neighbor scans cheap.
	for _, q := range t.neighbors[dead] {
		nb := t.neighbors[q]
		for i, r := range nb {
			if r == dead {
				nb[i] = nb[len(nb)-1]
				t.neighbors[q] = nb[:len(nb)-1]
				break
			}
		}
	}
	if !t.counted[dead] {
		return
	}
	online := float64(s.round - t.arrival[dead] + 1)
	cs := &s.res.Classes[t.class[dead]-1]
	if t.aborted[dead] {
		s.res.AbortedUsers++
	} else {
		cs.Completed++
		s.res.CompletedUsers++
	}
	cs.OnlineRounds.Add(online)
	cs.DownloadRounds.Add(float64(t.downloadRounds[dead]))
	s.sumOnline += online
	s.sumDl += float64(t.downloadRounds[dead])
	// Per-file averages divide by files actually started (the fluid
	// model's per-torrent-entry accounting): an aborted sequential
	// downloader never charges the files past its cursor. MFCD starts
	// every file at arrival, and completed users started them all.
	files := int(t.class[dead])
	if t.aborted[dead] && s.cfg.Scheme != MFCD {
		files = int(t.cursor[dead]) + 1
		if files > int(t.class[dead]) {
			files = int(t.class[dead])
		}
	}
	s.sumFiles += files
	if s.cfg.Scheme == CMFSD && t.class[dead] > 1 && !t.cheater[dead] {
		s.res.FinalRho.Add(t.rho[dead])
	}
}

// tftUnchoke returns the peers p unchokes with its tit-for-tat budget: the
// top Slots−1 contributors among interested neighbors plus one optimistic.
// The returned slice is round scratch, valid until the next unchoke call.
func (s *sim) tftUnchoke(p int32) []int32 {
	t := s.t
	s.interestedBuf = s.interestedBuf[:0]
	for _, q := range t.neighbors[p] {
		if q == p || t.state[q] != stateDownloading {
			continue
		}
		if s.interested(q, p, false) {
			s.interestedBuf = append(s.interestedBuf, q)
		}
	}
	if len(s.interestedBuf) == 0 {
		return nil
	}
	s.rank.e = s.rank.e[:0]
	for _, q := range s.interestedBuf {
		s.rank.e = append(s.rank.e, rankEntry{
			slot: q,
			key:  t.recvCount(p, t.id[q]),
			id:   t.id[q],
		})
	}
	s.rank.sortRanked()
	for i, e := range s.rank.e {
		s.interestedBuf[i] = e.slot
	}
	n := s.cfg.Slots - 1
	if n > len(s.interestedBuf) {
		n = len(s.interestedBuf)
	}
	s.targetsBuf = append(s.targetsBuf[:0], s.interestedBuf[:n]...)
	// Optimistic slot: rotate a random interested peer not already chosen.
	// The target is remembered as (slot, generation); a generation mismatch
	// means the peer departed — exactly when the former *peer pointer
	// stopped appearing in any neighbor list.
	t.optAge[p]++
	if t.optSlot[p] == noSlot || int(t.optAge[p]) >= s.cfg.OptimisticEvery || !s.stillInterested(p, t.optSlot[p], t.optGen[p]) {
		t.optSlot[p] = noSlot
		t.optAge[p] = 0
		pool := s.interestedBuf[n:]
		if len(pool) > 0 {
			q := pool[s.rng.Intn(len(pool))]
			t.optSlot[p] = q
			t.optGen[p] = t.gen[q]
		}
	}
	if t.optSlot[p] != noSlot {
		s.targetsBuf = append(s.targetsBuf, t.optSlot[p])
	}
	return s.targetsBuf
}

// stillInterested reports whether the remembered optimistic target (slot q
// at generation qGen) is still a downloading neighbor of p that wants
// something p has.
func (s *sim) stillInterested(p, q int32, qGen uint32) bool {
	t := s.t
	if t.gen[q] != qGen {
		return false // departed (and possibly recycled)
	}
	if t.state[q] != stateDownloading {
		return false
	}
	for _, r := range t.neighbors[p] {
		if r == q {
			return s.interested(q, p, false)
		}
	}
	return false
}

// altruisticUnchoke picks random interested peers for a seed (or, with
// virtualOnly, for a partial seed's finished files). The returned slice is
// round scratch, valid until the next unchoke call.
func (s *sim) altruisticUnchoke(p int32, virtualOnly bool) []int32 {
	t := s.t
	s.poolBuf = s.poolBuf[:0]
	neighbors := t.neighbors[p]
	if p == s.origin {
		neighbors = s.order
	}
	for _, q := range neighbors {
		if q == p || t.state[q] != stateDownloading {
			continue
		}
		if s.interested(q, p, virtualOnly) {
			s.poolBuf = append(s.poolBuf, q)
		}
	}
	if len(s.poolBuf) == 0 {
		return nil
	}
	n := s.cfg.Slots
	if n > len(s.poolBuf) {
		n = len(s.poolBuf)
	}
	// Inline Fisher–Yates, draw-for-draw identical to rng.Shuffle without
	// the swap closure allocation.
	for i := len(s.poolBuf) - 1; i > 0; i-- {
		j := s.rng.Intn(i + 1)
		s.poolBuf[i], s.poolBuf[j] = s.poolBuf[j], s.poolBuf[i]
	}
	return s.poolBuf[:n]
}

// serve splits budget chunks across targets and schedules rarest-first
// picks for each. Each chunk lands with the given efficiency; misses model
// the sharing loss η of downloader-to-downloader exchange and consume the
// slot's budget without delivering.
func (s *sim) serve(p int32, targets []int32, budget int, virtual bool, efficiency float64) {
	if len(targets) == 0 || budget <= 0 {
		return
	}
	t := s.t
	base := budget / len(targets)
	extra := budget % len(targets)
	for i, q := range targets {
		n := base
		if i < extra {
			n++
		}
		for j := 0; j < n; j++ {
			if efficiency < 1 && !s.rng.Bernoulli(efficiency) {
				continue
			}
			c := s.pickChunk(q, p, virtual)
			if c < 0 {
				break
			}
			if !t.schedDirty[q] {
				t.schedDirty[q] = true
				s.schedTouched = append(s.schedTouched, q)
			}
			t.setSched(q, c)
			s.planned = append(s.planned, transfer{to: q, from: p, chunk: c, virtual: virtual})
		}
	}
}

// pickChunk selects the rarest chunk q wants that p can offer (restricted
// to p's finished files when virtual), excluding chunks already scheduled
// to q this round. Candidates are scanned in ascending chunk order with a
// strict < on availability, so the first minimum wins — the same pick the
// former boolean-slice scan made.
func (s *sim) pickChunk(q, p int32, virtual bool) int32 {
	t := s.t
	best := int32(-1)
	bestCount := int32(math.MaxInt32)
	cpf := s.cfg.ChunksPerFile
	pHave := t.haveOf(p)
	qHave := t.haveOf(q)
	qSched := t.schedOf(q)
	pCount := t.haveCountOf(p)
	for f := 0; f < s.cfg.K; f++ {
		if !s.wantsFile(q, f) {
			continue
		}
		if virtual && pCount[f] != int32(cpf) {
			continue
		}
		if pCount[f] == 0 {
			continue
		}
		lo := int32(f * cpf)
		hi := lo + int32(cpf)
		for w := int(lo) >> 6; w <= int(hi-1)>>6; w++ {
			cand := pHave[w] &^ qHave[w] &^ qSched[w]
			base := int32(w << 6)
			if base < lo {
				cand &^= 1<<uint(lo-base) - 1
			}
			if base+64 > hi {
				cand &= 1<<uint(hi-base) - 1
			}
			for cand != 0 {
				c := base + int32(bits.TrailingZeros64(cand))
				cand &= cand - 1
				if s.chunkCount[c] < bestCount {
					bestCount = s.chunkCount[c]
					best = c
				}
			}
		}
	}
	return best
}

// finish aggregates the run.
func (s *sim) finish() {
	if s.sumFiles > 0 {
		s.res.AvgOnlinePerFile = s.sumOnline / float64(s.sumFiles)
		s.res.AvgDownloadPerFile = s.sumDl / float64(s.sumFiles)
	} else {
		s.res.AvgOnlinePerFile = math.NaN()
		s.res.AvgDownloadPerFile = math.NaN()
	}
	span := float64(s.cfg.Horizon - s.cfg.Warmup)
	s.res.MeanDownloaders = s.dlPop.MeanUntil(span)
	s.res.MeanSeeds = s.seedPop.MeanUntil(span)
}
