// Package swarm is a chunk-level, round-based BitTorrent simulator for the
// multi-file torrent scenario (Sections 3.4–3.5 of the paper): one torrent
// carries K files split into chunks; peers exchange chunks under tit-for-tat
// choking with an optimistic unchoke slot and rarest-first piece selection.
//
// It simulates three schemes at the mechanism level the fluid model
// abstracts away:
//
//   - MFCD: a peer wants every missing chunk of every file it requested and
//     picks rarest-first across all of them — exactly the "download the
//     chunks randomly" behaviour of real clients the paper describes.
//   - CMFSD: a peer downloads its files sequentially, wanting only chunks of
//     the current file, and once it has completed at least one file it acts
//     as a partial seed: a fraction ρ of its upload plays tit-for-tat in its
//     current subtorrent and 1−ρ altruistically serves chunks of its
//     finished files.
//   - MTSD: sequential with a dedicated per-file seeding pause — the
//     multi-torrent sequential behaviour embedded in one swarm.
//
// MTCD is covered by the flow-level simulator in internal/eventsim (in a
// shared swarm it is chunk-for-chunk identical to MFCD); chunk-level
// realism matters most inside a single multi-file torrent, where piece
// selection couples the subtorrents.
//
// Simplifications (documented in DESIGN.md): time advances in rechoke
// rounds; bandwidth is an integer number of chunks per round; each peer
// knows a bounded random neighbor set plus the origin seed; an origin seed
// (the publisher) holds all chunks permanently, which is how real torrents
// bootstrap.
package swarm

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"mfdl/internal/adapt"
	"mfdl/internal/correlation"
	"mfdl/internal/faults"
	"mfdl/internal/rng"
	"mfdl/internal/stats"
	"mfdl/internal/trace"
)

// Scheme selects the downloading scheme.
type Scheme int

// The chunk-level schemes.
const (
	// MFCD wants every chunk of every requested file at once.
	MFCD Scheme = iota
	// CMFSD downloads files sequentially and partial-seeds finished ones
	// while downloading.
	CMFSD
	// MTSD downloads files sequentially with a dedicated seeding pause
	// of mean 1/γ rounds after each file — the multi-torrent sequential
	// behaviour embedded in one swarm (a peer in an MTSD pause is
	// indistinguishable from a per-file seed).
	MTSD
)

// String implements fmt.Stringer.
func (s Scheme) String() string {
	switch s {
	case MFCD:
		return "MFCD"
	case CMFSD:
		return "CMFSD"
	case MTSD:
		return "MTSD"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// Config parameterizes one swarm simulation.
type Config struct {
	// K is the number of files in the torrent.
	K int
	// ChunksPerFile is the number of chunks per file.
	ChunksPerFile int
	// Lambda0 is the user visiting rate in users per round.
	Lambda0 float64
	// P is the file correlation.
	P float64
	// Scheme is MFCD, CMFSD or MTSD.
	Scheme Scheme
	// Rho is the CMFSD partial-seed allocation ratio when Adapt is nil.
	Rho float64
	// Adapt, when non-nil, runs the Adapt controller per obedient peer.
	Adapt *adapt.Config
	// CheaterFraction is the fraction of CMFSD peers pinning ρ = 1.
	CheaterFraction float64
	// UploadPerRound is each peer's upload bandwidth in chunks per round.
	UploadPerRound int
	// TFTEfficiency is the paper's η: the probability that a chunk sent
	// over a tit-for-tat link between two downloaders is actually useful
	// (duplicate blocks, choking churn and request latency waste the
	// rest). Seed and virtual-seed uploads are altruistic and always
	// land, matching the fluid model's μηP·x vs μ(1−P)·x asymmetry.
	TFTEfficiency float64
	// Slots is the number of unchoke slots (including the optimistic one).
	Slots int
	// OptimisticEvery is the optimistic-unchoke rotation period in rounds.
	OptimisticEvery int
	// Gamma is the per-round seed departure probability parameter: seeds
	// stay for a geometric number of rounds with mean 1/Gamma.
	Gamma float64
	// MaxNeighbors bounds each peer's neighbor set (the origin seed is
	// always known).
	MaxNeighbors int
	// OriginUpload is the origin seed's upload bandwidth (defaults to
	// UploadPerRound).
	OriginUpload int
	// Horizon is the number of rounds to simulate.
	Horizon int
	// Warmup discards users arriving before this round from statistics.
	Warmup int
	// Seed drives the deterministic RNG.
	Seed uint64
	// SampleEvery, when positive, records downloader and seed population
	// series into Result.Trace every that many rounds.
	SampleEvery int
	// Faults injects deterministic churn: downloader aborts (rate per
	// downloading round), virtual-seed quits (CMFSD), slow-peer
	// throttling, and chunk-delivery loss. Fault draws come from
	// dedicated streams keyed by Faults.Seed mixed with Seed, so a
	// faults-off run is bit-identical to the pre-fault simulator.
	Faults faults.Config
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.K < 1 {
		return fmt.Errorf("swarm: K = %d must be >= 1", c.K)
	}
	if c.ChunksPerFile < 1 {
		return errors.New("swarm: ChunksPerFile must be >= 1")
	}
	if c.Lambda0 <= 0 {
		return errors.New("swarm: Lambda0 must be positive")
	}
	if c.P <= 0 || c.P > 1 {
		return fmt.Errorf("swarm: p = %v outside (0,1]", c.P)
	}
	if c.Scheme < MFCD || c.Scheme > MTSD {
		return fmt.Errorf("swarm: unknown scheme %d", int(c.Scheme))
	}
	if c.Rho < 0 || c.Rho > 1 {
		return fmt.Errorf("swarm: ρ = %v outside [0,1]", c.Rho)
	}
	if c.Adapt != nil {
		if err := c.Adapt.Validate(); err != nil {
			return err
		}
	}
	if c.CheaterFraction < 0 || c.CheaterFraction > 1 {
		return errors.New("swarm: cheater fraction outside [0,1]")
	}
	if c.UploadPerRound < 1 {
		return errors.New("swarm: UploadPerRound must be >= 1")
	}
	if c.TFTEfficiency <= 0 || c.TFTEfficiency > 1 {
		return fmt.Errorf("swarm: η = %v outside (0,1]", c.TFTEfficiency)
	}
	if c.Slots < 2 {
		return errors.New("swarm: need at least 2 unchoke slots")
	}
	if c.OptimisticEvery < 1 {
		return errors.New("swarm: OptimisticEvery must be >= 1")
	}
	if c.Gamma <= 0 || c.Gamma > 1 {
		return fmt.Errorf("swarm: Gamma = %v outside (0,1]", c.Gamma)
	}
	if c.MaxNeighbors < 1 {
		return errors.New("swarm: MaxNeighbors must be >= 1")
	}
	if c.Horizon < 1 {
		return errors.New("swarm: Horizon must be >= 1")
	}
	if c.Warmup < 0 || c.Warmup >= c.Horizon {
		return errors.New("swarm: Warmup outside [0, Horizon)")
	}
	if c.SampleEvery < 0 {
		return errors.New("swarm: SampleEvery must be non-negative")
	}
	if err := c.Faults.Validate(); err != nil {
		return err
	}
	return nil
}

// DefaultConfig is a small but realistic operating point used by the
// examples and tests.
var DefaultConfig = Config{
	K:               5,
	ChunksPerFile:   16,
	Lambda0:         0.5,
	P:               0.9,
	Scheme:          CMFSD,
	Rho:             0,
	UploadPerRound:  4,
	TFTEfficiency:   0.5,
	Slots:           4,
	OptimisticEvery: 3,
	Gamma:           0.1,
	MaxNeighbors:    25,
	Horizon:         1500,
	Warmup:          300,
	Seed:            1,
}

// ClassStats aggregates completed users of one class.
type ClassStats struct {
	Class          int
	Completed      int
	OnlineRounds   stats.Summary
	DownloadRounds stats.Summary
}

// Result is the outcome of one swarm run.
type Result struct {
	Config Config
	// Classes holds classes 1..K.
	Classes []ClassStats
	// ArrivedUsers / CompletedUsers count post-warmup users.
	ArrivedUsers, CompletedUsers int
	// AvgOnlinePerFile and AvgDownloadPerFile are the paper's aggregation
	// in rounds per file.
	AvgOnlinePerFile, AvgDownloadPerFile float64
	// MeanDownloaders / MeanSeeds are time-averaged populations.
	MeanDownloaders, MeanSeeds float64
	// FinalRho summarizes completed obedient multi-file peers' final ρ.
	FinalRho stats.Summary
	// ChunksTransferred counts every chunk delivery (excluding origin).
	ChunksTransferred int
	// AbortedUsers counts counted users removed by an injected abort;
	// their partial online/download rounds stay in the averages but not
	// in Completed.
	AbortedUsers int
	// SeedQuits counts injected virtual-seed departures (CMFSD).
	SeedQuits int
	// ChunksLost counts scheduled deliveries dropped by injected loss.
	ChunksLost int
	// Trace holds "downloaders" and "seeds" series when
	// Config.SampleEvery > 0, else nil.
	Trace *trace.Recorder
}

type peerState uint8

const (
	stateDownloading peerState = iota
	stateSeeding
)

type peer struct {
	id        int
	class     int
	files     []int // requested files in download order
	have      []bool
	haveCount []int // per file
	state     peerState
	cursor    int // current file index (CMFSD)
	finished  int
	arrival   int
	counted   bool
	cheater   bool
	rho       float64
	ctrl      *adapt.Controller

	neighbors []*peer
	received  map[int]int // peer id -> chunks received last round (TFT)
	recvNow   map[int]int // accumulating this round
	optPeer   *peer
	optAge    int

	downloadRounds int
	seedLeft       int
	fileSeedLeft   int // MTSD: rounds left in the current per-file pause

	// Fault state: downloading rounds left until an injected abort and
	// virtual-seeding rounds left until an injected quit (0 = never),
	// the slow-peer upload factor (0 or 1 = full speed), and the
	// outcome flags.
	abortLeft    int
	vsQuitLeft   int
	vsQuit       bool
	aborted      bool
	uploadFactor float64

	virtUp, virtDown int // chunks via virtual seeding this adapt window
	adaptAge         int
}

// wantsFile reports whether the peer currently wants chunks of file f.
func (s *sim) wantsFile(p *peer, f int) bool {
	if p.state != stateDownloading {
		return false
	}
	if p.haveCount[f] == s.cfg.ChunksPerFile {
		return false
	}
	switch s.cfg.Scheme {
	case MFCD:
		for _, rf := range p.files {
			if rf == f {
				return true
			}
		}
		return false
	default: // CMFSD/MTSD: only the current file, and not during a pause
		if p.fileSeedLeft > 0 {
			return false
		}
		return p.cursor < len(p.files) && p.files[p.cursor] == f
	}
}

// interested reports whether q could use any chunk p is offering from file
// set judged at file granularity (cheap over-approximation; a useless
// unchoke just transfers nothing).
func (s *sim) interested(q, p *peer, virtualOnly bool) bool {
	for f := 0; f < s.cfg.K; f++ {
		if !s.wantsFile(q, f) {
			continue
		}
		if virtualOnly && !s.fileFinished(p, f) {
			continue
		}
		if p.haveCount[f] > 0 && q.haveCount[f] < s.cfg.ChunksPerFile {
			return true
		}
	}
	return false
}

// fileFinished reports whether p holds all chunks of file f.
func (s *sim) fileFinished(p *peer, f int) bool {
	return p.haveCount[f] == s.cfg.ChunksPerFile
}

type sim struct {
	cfg     Config
	corr    *correlation.Model
	rng     *rng.Source
	plan    *faults.Plan // nil when faults are disabled
	lossSrc *rng.Source  // dedicated stream for delivery-loss draws
	peers   []*peer
	origin  *peer
	nextID  int
	round   int

	chunkCount []int // global availability per chunk (including origin)

	res       *Result
	dlPop     stats.TimeWeighted
	seedPop   stats.TimeWeighted
	sumOnline float64
	sumDl     float64
	sumFiles  int
	classCDF  []float64
	totalRate float64
}

// Run executes one swarm simulation.
func Run(cfg Config) (*Result, error) {
	if cfg.OriginUpload == 0 {
		cfg.OriginUpload = cfg.UploadPerRound
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	corr, err := correlation.New(cfg.K, cfg.P, cfg.Lambda0)
	if err != nil {
		return nil, err
	}
	// Mixing the sim seed into the chaos seed decorrelates replicas while
	// keeping each (seed, chaos-seed) pair fully deterministic.
	plan, err := faults.NewPlan(cfg.Faults.Mixed(cfg.Seed), nil)
	if err != nil {
		return nil, err
	}
	s := &sim{
		cfg:  cfg,
		corr: corr,
		rng:  rng.New(cfg.Seed),
		plan: plan,
		res:  &Result{Config: cfg, Classes: make([]ClassStats, cfg.K)},
	}
	if plan != nil && plan.LossProb() > 0 {
		s.lossSrc = plan.LossStream(0)
	}
	for i := range s.res.Classes {
		s.res.Classes[i].Class = i + 1
	}
	s.setup()
	for s.round = 0; s.round < cfg.Horizon; s.round++ {
		s.step()
	}
	s.finish()
	return s.res, nil
}

func (s *sim) totalChunks() int { return s.cfg.K * s.cfg.ChunksPerFile }

func (s *sim) setup() {
	n := s.totalChunks()
	s.chunkCount = make([]int, n)
	origin := &peer{
		id:        0,
		class:     0,
		have:      make([]bool, n),
		haveCount: make([]int, s.cfg.K),
		state:     stateSeeding,
		seedLeft:  math.MaxInt32,
		received:  map[int]int{},
		recvNow:   map[int]int{},
	}
	for i := range origin.have {
		origin.have[i] = true
		s.chunkCount[i]++
	}
	for f := 0; f < s.cfg.K; f++ {
		origin.haveCount[f] = s.cfg.ChunksPerFile
	}
	s.origin = origin
	s.nextID = 1
	acc := 0.0
	s.classCDF = make([]float64, s.cfg.K)
	for i := 1; i <= s.cfg.K; i++ {
		acc += s.corr.UserRate(i)
		s.classCDF[i-1] = acc
	}
	s.totalRate = acc
}

func (s *sim) sampleClass() int {
	u := s.rng.Float64() * s.totalRate
	for i, c := range s.classCDF {
		if u <= c {
			return i + 1
		}
	}
	return s.cfg.K
}

func (s *sim) arrive() {
	n := s.rng.Poisson(s.totalRate)
	for i := 0; i < n; i++ {
		class := s.sampleClass()
		files := s.rng.Perm(s.cfg.K)[:class]
		p := &peer{
			id:        s.nextID,
			class:     class,
			files:     files,
			have:      make([]bool, s.totalChunks()),
			haveCount: make([]int, s.cfg.K),
			arrival:   s.round,
			counted:   s.round >= s.cfg.Warmup,
			rho:       s.cfg.Rho,
			received:  map[int]int{},
			recvNow:   map[int]int{},
		}
		s.nextID++
		if s.plan != nil {
			// Per-peer draws keyed by id: the main RNG sees exactly the
			// faults-off sequence.
			id := uint64(p.id)
			if a := s.plan.AbortAfter(id); a < math.MaxInt32 {
				p.abortLeft = 1 + int(a)
			}
			if s.cfg.Scheme == CMFSD && p.class > 1 {
				if q := s.plan.SeedQuitAfter(id); q < math.MaxInt32 {
					p.vsQuitLeft = 1 + int(q)
				}
			}
			if f := s.plan.UploadFactor(id); f < 1 {
				p.uploadFactor = f
				s.plan.NoteSlowPeer()
			}
		}
		if s.cfg.Scheme == CMFSD {
			if s.rng.Bernoulli(s.cfg.CheaterFraction) {
				p.cheater = true
				p.rho = 1
			} else if s.cfg.Adapt != nil {
				if ctrl, err := adapt.NewController(*s.cfg.Adapt); err == nil {
					p.ctrl = ctrl
					p.rho = ctrl.Rho()
				}
			}
		}
		// Neighbor set: a bounded random sample of current peers, plus
		// the origin seed. Links are symmetric.
		cand := s.peers
		want := s.cfg.MaxNeighbors
		if want > len(cand) {
			want = len(cand)
		}
		for _, idx := range s.rng.Perm(len(cand))[:want] {
			q := cand[idx]
			p.neighbors = append(p.neighbors, q)
			q.neighbors = append(q.neighbors, p)
		}
		p.neighbors = append(p.neighbors, s.origin)
		if p.counted {
			s.res.ArrivedUsers++
		}
		s.peers = append(s.peers, p)
	}
}

// uploadBudgets returns the TFT and virtual-seed chunk budgets of p this
// round.
func (s *sim) uploadBudgets(p *peer) (tft, virtual int) {
	u := s.cfg.UploadPerRound
	if p == s.origin {
		return 0, s.cfg.OriginUpload
	}
	if p.uploadFactor > 0 && p.uploadFactor < 1 {
		// Injected slow-peer throttling.
		u = int(math.Round(p.uploadFactor * float64(u)))
	}
	if p.state == stateSeeding {
		return 0, u
	}
	if s.cfg.Scheme == MTSD && p.fileSeedLeft > 0 {
		// Per-file seeding pause: the whole upload serves finished files.
		return 0, u
	}
	if s.cfg.Scheme == CMFSD && p.class > 1 && p.finished >= 1 {
		if p.vsQuit {
			// An injected virtual-seed quit: the peer turns selfish and
			// spends its whole upload on tit-for-tat.
			return u, 0
		}
		v := int(math.Round((1 - p.rho) * float64(u)))
		return u - v, v
	}
	return u, 0
}

// transfer is one scheduled chunk delivery, applied at the end of the round.
type transfer struct {
	to      *peer
	from    *peer
	chunk   int
	virtual bool
}

// step simulates one rechoke round.
func (s *sim) step() {
	s.arrive()

	// Record populations at the start of the round.
	if s.round >= s.cfg.Warmup || (s.cfg.SampleEvery > 0 && s.round%s.cfg.SampleEvery == 0) {
		dl, sd := 0, 0
		for _, p := range s.peers {
			if p.state == stateDownloading {
				dl++
			} else {
				sd++
			}
		}
		if s.round >= s.cfg.Warmup {
			s.dlPop.Observe(float64(s.round-s.cfg.Warmup), float64(dl))
			s.seedPop.Observe(float64(s.round-s.cfg.Warmup), float64(sd))
		}
		if s.cfg.SampleEvery > 0 && s.round%s.cfg.SampleEvery == 0 {
			if s.res.Trace == nil {
				s.res.Trace = trace.NewRecorder()
			}
			_ = s.res.Trace.Record("downloaders", float64(s.round), float64(dl))
			_ = s.res.Trace.Record("seeds", float64(s.round), float64(sd))
		}
	}

	// Plan all transfers with the pre-round state, then apply.
	var planned []transfer
	incoming := map[int]map[int]bool{} // receiver id -> chunk set scheduled
	uploaders := append([]*peer{s.origin}, s.peers...)
	for _, p := range uploaders {
		tftBudget, virtBudget := s.uploadBudgets(p)
		if tftBudget > 0 {
			targets := s.tftUnchoke(p)
			planned = s.serve(planned, incoming, p, targets, tftBudget, false, s.cfg.TFTEfficiency)
		}
		if virtBudget > 0 {
			isVirtual := p != s.origin && p.state == stateDownloading
			targets := s.altruisticUnchoke(p, isVirtual)
			planned = s.serve(planned, incoming, p, targets, virtBudget, isVirtual, 1)
		}
	}
	for _, tr := range planned {
		if tr.to.have[tr.chunk] {
			continue
		}
		if s.lossSrc != nil && s.lossSrc.Bernoulli(s.plan.LossProb()) {
			// Injected delivery loss: the chunk is sent but never lands.
			s.res.ChunksLost++
			s.plan.NoteLoss()
			continue
		}
		tr.to.have[tr.chunk] = true
		tr.to.haveCount[tr.chunk/s.cfg.ChunksPerFile]++
		s.chunkCount[tr.chunk]++
		tr.to.recvNow[tr.from.id] += 1
		s.res.ChunksTransferred++
		if tr.virtual {
			tr.from.virtUp++
			tr.to.virtDown++
		}
	}

	// Post-transfer bookkeeping: completions, seeding transitions,
	// departures, TFT history rotation, Adapt.
	var alive []*peer
	for _, p := range s.peers {
		p.received, p.recvNow = p.recvNow, map[int]int{}
		if p.state == stateDownloading {
			if p.fileSeedLeft > 0 {
				// MTSD per-file seeding pause.
				p.fileSeedLeft--
				if p.fileSeedLeft == 0 {
					p.cursor++
				}
			} else {
				p.downloadRounds++
				s.checkCompletion(p)
			}
		}
		if p.state == stateDownloading && s.plan != nil {
			// Injected churn ticks on downloading rounds only, mirroring
			// the fluid θ·x clock. The virtual-seed-quit clock ticks while
			// the peer actually virtual-seeds.
			if !p.vsQuit && p.vsQuitLeft > 0 && p.class > 1 && p.finished >= 1 {
				p.vsQuitLeft--
				if p.vsQuitLeft == 0 {
					p.vsQuit = true
					s.res.SeedQuits++
					s.plan.NoteSeedQuit()
				}
			}
			if p.abortLeft > 0 {
				p.abortLeft--
				if p.abortLeft == 0 {
					p.aborted = true
					s.plan.NoteAbort()
					s.depart(p)
					continue
				}
			}
		}
		if p.state == stateSeeding {
			p.seedLeft--
			if p.seedLeft <= 0 {
				s.depart(p)
				continue
			}
		}
		if p.ctrl != nil && p.state == stateDownloading {
			p.adaptAge++
			if float64(p.adaptAge) >= p.ctrl.Period() {
				if p.finished >= 1 && p.class > 1 {
					delta := float64(p.virtUp-p.virtDown) / float64(p.adaptAge)
					p.rho = p.ctrl.Observe(delta)
				}
				p.virtUp, p.virtDown, p.adaptAge = 0, 0, 0
			}
		}
		alive = append(alive, p)
	}
	s.peers = alive
}

// checkCompletion advances a downloader whose current goal is met.
func (s *sim) checkCompletion(p *peer) {
	switch s.cfg.Scheme {
	case MFCD:
		for _, f := range p.files {
			if !s.fileFinished(p, f) {
				return
			}
		}
		p.finished = len(p.files)
		s.startSeeding(p)
	case MTSD:
		if p.fileSeedLeft > 0 {
			return // mid-pause; cursor advances when the pause ends
		}
		if p.cursor >= len(p.files) || !s.fileFinished(p, p.files[p.cursor]) {
			return
		}
		p.finished++
		if p.cursor+1 >= len(p.files) {
			s.startSeeding(p)
			return
		}
		p.fileSeedLeft = 1 + int(s.rng.Exp(s.cfg.Gamma))
	default: // CMFSD
		for p.cursor < len(p.files) && s.fileFinished(p, p.files[p.cursor]) {
			p.cursor++
			p.finished++
		}
		if p.cursor >= len(p.files) {
			s.startSeeding(p)
		}
	}
}

func (s *sim) startSeeding(p *peer) {
	p.state = stateSeeding
	// Geometric residence with mean 1/γ rounds.
	p.seedLeft = 1 + int(s.rng.Exp(s.cfg.Gamma))
}

// depart removes a seed from the swarm bookkeeping (the caller drops it
// from the peer list) and records its statistics.
func (s *sim) depart(dead *peer) {
	for c, h := range dead.have {
		if h {
			s.chunkCount[c]--
		}
	}
	// Remove from neighbor lists lazily: links to departed peers are
	// skipped because they are no longer in s.peers; to keep neighbor
	// scans cheap we filter here.
	for _, q := range dead.neighbors {
		for i, r := range q.neighbors {
			if r == dead {
				q.neighbors[i] = q.neighbors[len(q.neighbors)-1]
				q.neighbors = q.neighbors[:len(q.neighbors)-1]
				break
			}
		}
	}
	if !dead.counted {
		return
	}
	online := float64(s.round - dead.arrival + 1)
	cs := &s.res.Classes[dead.class-1]
	if dead.aborted {
		s.res.AbortedUsers++
	} else {
		cs.Completed++
		s.res.CompletedUsers++
	}
	cs.OnlineRounds.Add(online)
	cs.DownloadRounds.Add(float64(dead.downloadRounds))
	s.sumOnline += online
	s.sumDl += float64(dead.downloadRounds)
	// Per-file averages divide by files actually started (the fluid
	// model's per-torrent-entry accounting): an aborted sequential
	// downloader never charges the files past its cursor. MFCD starts
	// every file at arrival, and completed users started them all.
	files := dead.class
	if dead.aborted && s.cfg.Scheme != MFCD {
		files = dead.cursor + 1
		if files > dead.class {
			files = dead.class
		}
	}
	s.sumFiles += files
	if s.cfg.Scheme == CMFSD && dead.class > 1 && !dead.cheater {
		s.res.FinalRho.Add(dead.rho)
	}
}

// tftUnchoke returns the peers p unchokes with its tit-for-tat budget: the
// top Slots−1 contributors among interested neighbors plus one optimistic.
func (s *sim) tftUnchoke(p *peer) []*peer {
	var interested []*peer
	for _, q := range p.neighbors {
		if q == p || q.state != stateDownloading {
			continue
		}
		if s.interested(q, p, false) {
			interested = append(interested, q)
		}
	}
	if len(interested) == 0 {
		return nil
	}
	sort.Slice(interested, func(i, j int) bool {
		ri := p.received[interested[i].id]
		rj := p.received[interested[j].id]
		if ri != rj {
			return ri > rj
		}
		return interested[i].id < interested[j].id
	})
	n := s.cfg.Slots - 1
	if n > len(interested) {
		n = len(interested)
	}
	targets := append([]*peer(nil), interested[:n]...)
	// Optimistic slot: rotate a random interested peer not already chosen.
	p.optAge++
	if p.optPeer == nil || p.optAge >= s.cfg.OptimisticEvery || !s.stillInterested(p, p.optPeer) {
		p.optPeer = nil
		p.optAge = 0
		var pool []*peer
		for _, q := range interested[n:] {
			pool = append(pool, q)
		}
		if len(pool) > 0 {
			p.optPeer = pool[s.rng.Intn(len(pool))]
		}
	}
	if p.optPeer != nil {
		targets = append(targets, p.optPeer)
	}
	return targets
}

func (s *sim) stillInterested(p, q *peer) bool {
	if q.state != stateDownloading {
		return false
	}
	for _, r := range p.neighbors {
		if r == q {
			return s.interested(q, p, false)
		}
	}
	return false
}

// altruisticUnchoke picks random interested peers for a seed (or, with
// virtualOnly, for a partial seed's finished files).
func (s *sim) altruisticUnchoke(p *peer, virtualOnly bool) []*peer {
	var pool []*peer
	neighbors := p.neighbors
	if p == s.origin {
		neighbors = s.peers
	}
	for _, q := range neighbors {
		if q == p || q.state != stateDownloading {
			continue
		}
		if s.interested(q, p, virtualOnly) {
			pool = append(pool, q)
		}
	}
	if len(pool) == 0 {
		return nil
	}
	n := s.cfg.Slots
	if n > len(pool) {
		n = len(pool)
	}
	s.rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	return pool[:n]
}

// serve splits budget chunks across targets and schedules rarest-first
// picks for each. Each chunk lands with the given efficiency; misses model
// the sharing loss η of downloader-to-downloader exchange and consume the
// slot's budget without delivering.
func (s *sim) serve(planned []transfer, incoming map[int]map[int]bool, p *peer, targets []*peer, budget int, virtual bool, efficiency float64) []transfer {
	if len(targets) == 0 || budget <= 0 {
		return planned
	}
	base := budget / len(targets)
	extra := budget % len(targets)
	for i, q := range targets {
		n := base
		if i < extra {
			n++
		}
		for j := 0; j < n; j++ {
			if efficiency < 1 && !s.rng.Bernoulli(efficiency) {
				continue
			}
			c := s.pickChunk(q, p, incoming[q.id], virtual)
			if c < 0 {
				break
			}
			if incoming[q.id] == nil {
				incoming[q.id] = map[int]bool{}
			}
			incoming[q.id][c] = true
			planned = append(planned, transfer{to: q, from: p, chunk: c, virtual: virtual})
		}
	}
	return planned
}

// pickChunk selects the rarest chunk q wants that p can offer (restricted
// to p's finished files when virtual), excluding chunks already scheduled.
func (s *sim) pickChunk(q, p *peer, scheduled map[int]bool, virtual bool) int {
	best := -1
	bestCount := math.MaxInt32
	cpf := s.cfg.ChunksPerFile
	for f := 0; f < s.cfg.K; f++ {
		if !s.wantsFile(q, f) {
			continue
		}
		if virtual && !s.fileFinished(p, f) {
			continue
		}
		if p.haveCount[f] == 0 {
			continue
		}
		baseIdx := f * cpf
		for c := baseIdx; c < baseIdx+cpf; c++ {
			if q.have[c] || !p.have[c] || scheduled[c] {
				continue
			}
			if s.chunkCount[c] < bestCount {
				bestCount = s.chunkCount[c]
				best = c
			}
		}
	}
	return best
}

// finish aggregates the run.
func (s *sim) finish() {
	if s.sumFiles > 0 {
		s.res.AvgOnlinePerFile = s.sumOnline / float64(s.sumFiles)
		s.res.AvgDownloadPerFile = s.sumDl / float64(s.sumFiles)
	} else {
		s.res.AvgOnlinePerFile = math.NaN()
		s.res.AvgDownloadPerFile = math.NaN()
	}
	span := float64(s.cfg.Horizon - s.cfg.Warmup)
	s.res.MeanDownloaders = s.dlPop.MeanUntil(span)
	s.res.MeanSeeds = s.seedPop.MeanUntil(span)
}
