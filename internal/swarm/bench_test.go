package swarm

import (
	"testing"

	"mfdl/internal/correlation"
	"mfdl/internal/rng"
)

// benchConfig is the fixed operating point of BenchmarkSwarmStep: the
// default scheme mix at CMFSD with moderate chunk counts. Population size
// is controlled by the benchmark, not by the arrival rate.
func benchConfig() Config {
	cfg := DefaultConfig
	cfg.Scheme = CMFSD
	cfg.Rho = 0.3
	cfg.Horizon = 1 << 30
	cfg.Warmup = 0
	return cfg
}

// newBenchSwarm builds a sim without running it (mirrors Run's setup).
func newBenchSwarm(b testing.TB, cfg Config) *sim {
	b.Helper()
	if cfg.OriginUpload == 0 {
		cfg.OriginUpload = cfg.UploadPerRound
	}
	corr, err := correlation.New(cfg.K, cfg.P, cfg.Lambda0)
	if err != nil {
		b.Fatal(err)
	}
	s := &sim{
		cfg:  cfg,
		corr: corr,
		rng:  rng.New(cfg.Seed),
		res:  &Result{Config: cfg, Classes: make([]ClassStats, cfg.K)},
	}
	for i := range s.res.Classes {
		s.res.Classes[i].Class = i + 1
	}
	s.setup()
	return s
}

// injectBench adds n synthetic peers. It mirrors addPeer's wiring but
// samples neighbors with bounded draws instead of a full permutation, so
// building a 10^5-peer swarm stays O(n·MaxNeighbors) — the production
// draw sequence does not matter for a benchmark population.
func injectBench(s *sim, n int) {
	t := s.t
	for i := 0; i < n; i++ {
		class := s.sampleClass()
		s.permBuf = s.rng.PermInto(s.permBuf, s.cfg.K)
		slot := t.alloc()
		t.id[slot] = s.nextID
		s.nextID++
		t.class[slot] = int32(class)
		fl := t.files[slot]
		for _, f := range s.permBuf[:class] {
			fl = append(fl, int32(f))
		}
		t.files[slot] = fl
		t.arrival[slot] = s.round
		t.counted[slot] = true
		t.rho[slot] = s.cfg.Rho
		want := s.cfg.MaxNeighbors
		if want > len(s.order) {
			want = len(s.order)
		}
		for j := 0; j < want; j++ {
			q := s.order[s.rng.Intn(len(s.order))]
			dup := false
			for _, r := range t.neighbors[slot] {
				if r == q {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			t.neighbors[slot] = append(t.neighbors[slot], q)
			t.neighbors[q] = append(t.neighbors[q], slot)
		}
		t.neighbors[slot] = append(t.neighbors[slot], s.origin)
		s.order = append(s.order, slot)
	}
}

// benchmarkSwarmStep measures one rechoke round at a population held near
// n peers: departures are topped up with fresh synthetic arrivals, so the
// steady-state cost of peer creation (pooled post-refactor) is part of the
// measured loop.
func benchmarkSwarmStep(b *testing.B, n int) {
	s := newBenchSwarm(b, benchConfig())
	injectBench(s, n)
	// Let populations, chunk distribution and TFT history settle.
	for i := 0; i < 5; i++ {
		s.step()
		s.round++
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(s.order) < n {
			injectBench(s, n-len(s.order))
		}
		s.step()
		s.round++
	}
	b.StopTimer()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(n)*float64(b.N)/secs, "peers/sec")
	}
}

func BenchmarkSwarmStep(b *testing.B) {
	b.Run("n=1000", func(b *testing.B) { benchmarkSwarmStep(b, 1_000) })
	b.Run("n=10000", func(b *testing.B) { benchmarkSwarmStep(b, 10_000) })
	b.Run("n=100000", func(b *testing.B) {
		if testing.Short() {
			b.Skip("short mode")
		}
		benchmarkSwarmStep(b, 100_000)
	})
}
