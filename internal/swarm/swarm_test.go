package swarm

import (
	"math"
	"testing"

	"mfdl/internal/adapt"
)

func cfgWith(mutate func(*Config)) Config {
	c := DefaultConfig
	if mutate != nil {
		mutate(&c)
	}
	return c
}

func run(t *testing.T, c Config) *Result {
	t.Helper()
	res, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestValidation(t *testing.T) {
	if err := DefaultConfig.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []func(*Config){
		func(c *Config) { c.K = 0 },
		func(c *Config) { c.ChunksPerFile = 0 },
		func(c *Config) { c.Lambda0 = 0 },
		func(c *Config) { c.P = 0 },
		func(c *Config) { c.Scheme = Scheme(7) },
		func(c *Config) { c.Rho = 2 },
		func(c *Config) { c.CheaterFraction = -1 },
		func(c *Config) { c.UploadPerRound = 0 },
		func(c *Config) { c.Slots = 1 },
		func(c *Config) { c.OptimisticEvery = 0 },
		func(c *Config) { c.Gamma = 0 },
		func(c *Config) { c.MaxNeighbors = 0 },
		func(c *Config) { c.Horizon = 0 },
		func(c *Config) { c.Warmup = c.Horizon },
	}
	for i, mutate := range cases {
		bad := cfgWith(mutate)
		if bad.Validate() == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
}

func TestSchemeString(t *testing.T) {
	if MFCD.String() != "MFCD" || CMFSD.String() != "CMFSD" {
		t.Fatal("scheme names wrong")
	}
}

func TestSimulationProducesCompletions(t *testing.T) {
	res := run(t, DefaultConfig)
	if res.CompletedUsers < 50 {
		t.Fatalf("only %d completions", res.CompletedUsers)
	}
	if res.ChunksTransferred == 0 {
		t.Fatal("no chunks moved")
	}
	if math.IsNaN(res.AvgOnlinePerFile) || res.AvgOnlinePerFile <= 0 {
		t.Fatalf("bad average online per file %v", res.AvgOnlinePerFile)
	}
	// Online includes the seeding tail: must exceed download.
	if res.AvgOnlinePerFile <= res.AvgDownloadPerFile {
		t.Fatalf("online %v <= download %v", res.AvgOnlinePerFile, res.AvgDownloadPerFile)
	}
}

func TestDeterministicBySeed(t *testing.T) {
	c := cfgWith(func(c *Config) { c.Horizon = 400; c.Warmup = 100 })
	a := run(t, c)
	b := run(t, c)
	if a.CompletedUsers != b.CompletedUsers || a.ChunksTransferred != b.ChunksTransferred {
		t.Fatal("same seed diverged")
	}
	c.Seed = 99
	d := run(t, c)
	if d.ChunksTransferred == a.ChunksTransferred && d.CompletedUsers == a.CompletedUsers {
		t.Fatal("different seeds identical")
	}
}

func TestClassTotalsConsistent(t *testing.T) {
	res := run(t, DefaultConfig)
	total := 0
	for _, cs := range res.Classes {
		total += cs.Completed
		if cs.Completed > 0 && cs.OnlineRounds.Mean() < cs.DownloadRounds.Mean() {
			t.Fatalf("class %d online < download", cs.Class)
		}
	}
	if total != res.CompletedUsers {
		t.Fatalf("class totals %d != %d", total, res.CompletedUsers)
	}
}

func TestDownloadScalesWithClass(t *testing.T) {
	// A class-3 user needs 3× the chunks of a class-1 user; its download
	// time must be clearly larger under either scheme.
	for _, scheme := range []Scheme{MFCD, CMFSD} {
		c := cfgWith(func(c *Config) {
			c.Scheme = scheme
			c.P = 0.5
			c.Horizon = 2000
			c.Warmup = 300
		})
		res := run(t, c)
		c1, c3 := res.Classes[0], res.Classes[2]
		if c1.Completed < 20 || c3.Completed < 20 {
			t.Fatalf("%v: thin classes (%d, %d)", scheme, c1.Completed, c3.Completed)
		}
		if c3.DownloadRounds.Mean() <= c1.DownloadRounds.Mean() {
			t.Fatalf("%v: class-3 download %v not larger than class-1 %v",
				scheme, c3.DownloadRounds.Mean(), c1.DownloadRounds.Mean())
		}
	}
}

func TestCMFSDCollaborationBeatsMFCDAtHighCorrelation(t *testing.T) {
	// The paper's central claim at the mechanism level: with high file
	// correlation, sequential downloading with partial seeding (ρ = 0)
	// beats concurrent random-chunk downloading.
	mfcd := run(t, cfgWith(func(c *Config) { c.Scheme = MFCD; c.P = 0.9; c.Horizon = 2500; c.Warmup = 400 }))
	cmfsd := run(t, cfgWith(func(c *Config) { c.Scheme = CMFSD; c.Rho = 0; c.P = 0.9; c.Horizon = 2500; c.Warmup = 400 }))
	if cmfsd.CompletedUsers < 100 || mfcd.CompletedUsers < 100 {
		t.Fatalf("thin runs: %d, %d", cmfsd.CompletedUsers, mfcd.CompletedUsers)
	}
	if cmfsd.AvgOnlinePerFile >= mfcd.AvgOnlinePerFile {
		t.Fatalf("CMFSD ρ=0 (%v rounds/file) not better than MFCD (%v)",
			cmfsd.AvgOnlinePerFile, mfcd.AvgOnlinePerFile)
	}
}

func TestRho1CMFSDCloseToMFCDOrdering(t *testing.T) {
	// With ρ = 1 there is no collaboration; CMFSD loses its advantage
	// (it may differ from MFCD through sequential piece selection, but
	// must be clearly worse than ρ = 0).
	rho0 := run(t, cfgWith(func(c *Config) { c.Scheme = CMFSD; c.Rho = 0; c.Horizon = 2000; c.Warmup = 300 }))
	rho1 := run(t, cfgWith(func(c *Config) { c.Scheme = CMFSD; c.Rho = 1; c.Horizon = 2000; c.Warmup = 300 }))
	if rho0.AvgOnlinePerFile >= rho1.AvgOnlinePerFile {
		t.Fatalf("ρ=0 (%v) should beat ρ=1 (%v)", rho0.AvgOnlinePerFile, rho1.AvgOnlinePerFile)
	}
}

func TestChunkConservation(t *testing.T) {
	// ChunksTransferred must equal the sum of all chunks ever held by
	// departed+alive peers (each chunk a peer holds arrived exactly once).
	c := cfgWith(func(c *Config) { c.Horizon = 300; c.Warmup = 0 })
	res := run(t, c)
	if res.ChunksTransferred <= 0 {
		t.Fatal("no transfers recorded")
	}
	// Upload budget sanity: total transfers cannot exceed the total
	// upload capacity ever offered (peers + origin).
	maxCapacity := (c.Horizon) * (c.UploadPerRound*(res.ArrivedUsers+200) + c.OriginUpload + c.UploadPerRound)
	if res.ChunksTransferred > maxCapacity {
		t.Fatalf("transfers %d exceed plausible capacity %d", res.ChunksTransferred, maxCapacity)
	}
}

func TestAdaptRunsInSwarm(t *testing.T) {
	ac := adapt.Config{
		Lower: -1, Upper: 1, StepUp: 0.2, StepDown: 0.1,
		Period: 5, InitialRho: 0, Consecutive: 1,
	}
	c := cfgWith(func(c *Config) {
		c.Scheme = CMFSD
		c.Adapt = &ac
		c.Horizon = 1200
		c.Warmup = 200
	})
	res := run(t, c)
	if res.FinalRho.N() == 0 {
		t.Fatal("no adaptive peers recorded")
	}
	if res.FinalRho.Mean() < 0 || res.FinalRho.Mean() > 1 {
		t.Fatalf("mean ρ %v outside [0,1]", res.FinalRho.Mean())
	}
}

func TestCheatersRaiseObedientRho(t *testing.T) {
	// With many cheaters, the adaptive obedient peers must end with a
	// higher ρ than in an all-obedient swarm.
	ac := adapt.Config{
		Lower: -0.3, Upper: 0.3, StepUp: 0.25, StepDown: 0.25,
		Period: 10, InitialRho: 0, Consecutive: 1,
	}
	clean := run(t, cfgWith(func(c *Config) {
		c.Scheme = CMFSD
		c.Adapt = &ac
		c.Horizon = 2000
		c.Warmup = 300
	}))
	cheated := run(t, cfgWith(func(c *Config) {
		c.Scheme = CMFSD
		c.Adapt = &ac
		c.CheaterFraction = 0.8
		c.Horizon = 2000
		c.Warmup = 300
	}))
	if clean.FinalRho.N() == 0 || cheated.FinalRho.N() == 0 {
		t.Fatal("missing adaptive peers")
	}
	if cheated.FinalRho.Mean() <= clean.FinalRho.Mean() {
		t.Fatalf("cheaters should raise ρ: clean %v, cheated %v",
			clean.FinalRho.Mean(), cheated.FinalRho.Mean())
	}
}

func TestK1SingleFileTorrent(t *testing.T) {
	c := cfgWith(func(c *Config) {
		c.K = 1
		c.P = 0.9
		c.Scheme = MFCD
		c.Horizon = 800
		c.Warmup = 150
	})
	res := run(t, c)
	if res.CompletedUsers < 30 {
		t.Fatalf("single-file torrent starved: %d completions", res.CompletedUsers)
	}
	if res.Classes[0].Completed != res.CompletedUsers {
		t.Fatal("K=1 should only have class-1 users")
	}
}

func TestMeanPopulationsPositive(t *testing.T) {
	res := run(t, DefaultConfig)
	if res.MeanDownloaders <= 0 || res.MeanSeeds <= 0 {
		t.Fatalf("populations: dl=%v seeds=%v", res.MeanDownloaders, res.MeanSeeds)
	}
}

func BenchmarkSwarmRound(b *testing.B) {
	c := DefaultConfig
	c.Horizon = 200
	c.Warmup = 50
	for i := 0; i < b.N; i++ {
		c.Seed = uint64(i + 1)
		if _, err := Run(c); err != nil {
			b.Fatal(err)
		}
	}
}

func TestSequentialPeersFinishFilesInRequestOrder(t *testing.T) {
	// Under CMFSD, any snapshot of a downloading peer must show its
	// completed files forming a prefix of its request order — the
	// partial-seed invariant. We verify through the simulator's own
	// bookkeeping: cursor equals the number of finished files.
	c := cfgWith(func(c *Config) {
		c.Scheme = CMFSD
		c.Horizon = 400
		c.Warmup = 0
	})
	res := run(t, c)
	if res.CompletedUsers == 0 {
		t.Fatal("nothing completed")
	}
	// Behavioral check via per-class download ordering: by construction
	// cursor advances only when files complete in order, so a violated
	// invariant would deadlock progress; completion is the signal.
	if res.Classes[len(res.Classes)-1].Completed == 0 && res.Classes[0].Completed == 0 {
		t.Fatal("no class completed")
	}
}

func TestHigherEtaSpeedsSwarm(t *testing.T) {
	slow := run(t, cfgWith(func(c *Config) { c.TFTEfficiency = 0.3; c.Scheme = MFCD }))
	fast := run(t, cfgWith(func(c *Config) { c.TFTEfficiency = 1.0; c.Scheme = MFCD }))
	if fast.AvgOnlinePerFile >= slow.AvgOnlinePerFile {
		t.Fatalf("η=1 (%v) should beat η=0.3 (%v)",
			fast.AvgOnlinePerFile, slow.AvgOnlinePerFile)
	}
}

func TestMTSDSchemeRuns(t *testing.T) {
	c := cfgWith(func(c *Config) {
		c.Scheme = MTSD
		c.Horizon = 2000
		c.Warmup = 300
	})
	res := run(t, c)
	if res.CompletedUsers < 100 {
		t.Fatalf("MTSD thin: %d completions", res.CompletedUsers)
	}
	// Online time includes the per-file pauses: clearly above download.
	if res.AvgOnlinePerFile < res.AvgDownloadPerFile+0.5/c.Gamma {
		t.Fatalf("MTSD pauses missing: online %v vs download %v",
			res.AvgOnlinePerFile, res.AvgDownloadPerFile)
	}
	if MTSD.String() != "MTSD" {
		t.Fatal("scheme name")
	}
}

func TestChunkLevelSchemeOrderingByRegime(t *testing.T) {
	// The MTSD-vs-MFCD ordering is regime-dependent at the chunk level.
	// The paper's fluid regime has per-file download time dominating seed
	// residence (T = 60 vs 1/γ = 20): sequential wins. In a seed-rich
	// swarm where files download in a couple of rounds, MTSD's per-file
	// pauses (mean 1/γ) dominate its online time and the ordering flips.
	mk := func(scheme Scheme, gamma float64) *Result {
		c := cfgWith(func(c *Config) {
			c.Scheme = scheme
			c.Rho = 0
			c.P = 0.9
			c.Gamma = gamma
			c.Horizon = 2500
			c.Warmup = 400
		})
		return run(t, c)
	}
	// Seed-rich regime (γ = 0.1 → 10-round pauses, ~2-round files):
	// MTSD loses on online time but wins on download time per file
	// (focused downloading), exactly the fluid model's split.
	mfcdRich := mk(MFCD, 0.1)
	mtsdRich := mk(MTSD, 0.1)
	if mtsdRich.AvgOnlinePerFile <= mfcdRich.AvgOnlinePerFile {
		t.Fatalf("seed-rich regime: MTSD online %v should exceed MFCD %v (pauses dominate)",
			mtsdRich.AvgOnlinePerFile, mfcdRich.AvgOnlinePerFile)
	}
	if mtsdRich.AvgDownloadPerFile >= mfcdRich.AvgDownloadPerFile {
		t.Fatalf("MTSD download/file %v should beat MFCD %v (focused downloading)",
			mtsdRich.AvgDownloadPerFile, mfcdRich.AvgDownloadPerFile)
	}
	// Seed-scarce regime (γ = 0.8): the paper's ordering appears —
	// sequential beats concurrent on online time too.
	mfcdScarce := mk(MFCD, 0.8)
	mtsdScarce := mk(MTSD, 0.8)
	if mtsdScarce.AvgOnlinePerFile >= mfcdScarce.AvgOnlinePerFile {
		t.Fatalf("seed-scarce regime: MTSD %v should beat MFCD %v",
			mtsdScarce.AvgOnlinePerFile, mfcdScarce.AvgOnlinePerFile)
	}
	t.Logf("rich: MFCD %.2f MTSD %.2f; scarce: MFCD %.2f MTSD %.2f (online/file)",
		mfcdRich.AvgOnlinePerFile, mtsdRich.AvgOnlinePerFile,
		mfcdScarce.AvgOnlinePerFile, mtsdScarce.AvgOnlinePerFile)
}

func TestTraceRecording(t *testing.T) {
	c := cfgWith(func(c *Config) {
		c.Horizon = 300
		c.Warmup = 50
		c.SampleEvery = 10
	})
	res := run(t, c)
	if res.Trace == nil {
		t.Fatal("trace missing")
	}
	dl := res.Trace.Series("downloaders")
	if dl == nil || dl.Len() != 30 {
		t.Fatalf("downloader series %v", dl)
	}
	if res.Trace.Series("seeds") == nil {
		t.Fatal("seed series missing")
	}
	// Populations grow from the empty start.
	if dl.At(0) != 0 {
		t.Fatalf("swarm not empty at round 0: %v", dl.At(0))
	}
	if dl.Final() <= 0 {
		t.Fatal("no downloaders at the horizon")
	}
}
