package swarm

import (
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mfdl/internal/adapt"
	"mfdl/internal/faults"
)

var updateBitGolden = flag.Bool("update-bitgolden", false, "rewrite the bit-exact simulator goldens")

// bitGoldenCases is a matrix of configurations spanning every scheme,
// fault injection, the Adapt controller, cheaters and trace sampling. The
// digests pin the simulator bit-for-bit: any change to RNG draw order,
// float arithmetic order or peer iteration order shows up here before it
// reaches the experiment goldens.
func bitGoldenCases() map[string]Config {
	adaptCfg := adapt.Config{
		Lower: -0.3, Upper: 0.3, StepUp: 0.25, StepDown: 0.25,
		Period: 10, InitialRho: 0, Consecutive: 1,
	}
	chaos := faults.Config{
		Seed:             7,
		AbortRate:        0.002,
		SeedQuitRate:     0.02,
		SlowPeerFraction: 0.1,
		SlowFactor:       0.5,
		MessageLoss:      0.01,
	}
	mk := func(mutate func(*Config)) Config {
		c := DefaultConfig
		c.Horizon = 500
		c.Warmup = 100
		mutate(&c)
		return c
	}
	return map[string]Config{
		"mfcd": mk(func(c *Config) { c.Scheme = MFCD }),
		"cmfsd-rho03": mk(func(c *Config) {
			c.Scheme = CMFSD
			c.Rho = 0.3
		}),
		"cmfsd-adapt-cheaters": mk(func(c *Config) {
			c.Scheme = CMFSD
			c.Adapt = &adaptCfg
			c.CheaterFraction = 0.3
			c.Horizon = 600
		}),
		"mtsd": mk(func(c *Config) {
			c.Scheme = MTSD
			c.Horizon = 600
		}),
		"mfcd-faults": mk(func(c *Config) {
			c.Scheme = MFCD
			c.Faults = chaos
		}),
		"cmfsd-faults": mk(func(c *Config) {
			c.Scheme = CMFSD
			c.Rho = 0.4
			c.Faults = chaos
		}),
		"k1-mfcd": mk(func(c *Config) {
			c.K = 1
			c.Scheme = MFCD
			c.Horizon = 400
		}),
		"cmfsd-trace": mk(func(c *Config) {
			c.Scheme = CMFSD
			c.SampleEvery = 7
			c.Horizon = 400
		}),
	}
}

func digestResult(r *Result) string {
	b := func(v float64) string {
		return fmt.Sprintf("%016x", math.Float64bits(v))
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "arrived=%d completed=%d aborted=%d seedquits=%d chunks=%d lost=%d",
		r.ArrivedUsers, r.CompletedUsers, r.AbortedUsers, r.SeedQuits,
		r.ChunksTransferred, r.ChunksLost)
	fmt.Fprintf(&sb, " online=%s dl=%s meandl=%s meansd=%s rho=%s rhon=%d",
		b(r.AvgOnlinePerFile), b(r.AvgDownloadPerFile),
		b(r.MeanDownloaders), b(r.MeanSeeds), b(r.FinalRho.Mean()), r.FinalRho.N())
	for _, cs := range r.Classes {
		fmt.Fprintf(&sb, " c%d=%d/%s/%s", cs.Class, cs.Completed,
			b(cs.OnlineRounds.Mean()), b(cs.DownloadRounds.Mean()))
	}
	if r.Trace != nil {
		for _, name := range []string{"downloaders", "seeds"} {
			s := r.Trace.Series(name)
			sum := 0.0
			for _, v := range s.V {
				sum += v
			}
			fmt.Fprintf(&sb, " %s=%d/%s", name, s.Len(), b(sum))
		}
	}
	return sb.String()
}

// TestBitGolden pins the chunk-level simulator bit-for-bit across the
// configuration matrix. Regenerate (a reviewed act) with
// go test ./internal/swarm -run BitGolden -update-bitgolden.
func TestBitGolden(t *testing.T) {
	cases := bitGoldenCases()
	names := make([]string, 0, len(cases))
	for name := range cases {
		names = append(names, name)
	}
	// Sorted for a stable golden file.
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			if names[j] < names[i] {
				names[i], names[j] = names[j], names[i]
			}
		}
	}
	var sb strings.Builder
	for _, name := range names {
		res, err := Run(cases[name])
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		fmt.Fprintf(&sb, "%s: %s\n", name, digestResult(res))
	}
	got := sb.String()
	path := filepath.Join("testdata", "bitgolden.txt")
	if *updateBitGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing bit golden (run with -update-bitgolden): %v", err)
	}
	if got != string(want) {
		t.Errorf("bit-exact simulator golden drifted.\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}
