package swarm

import "sort"

// rankEntry is one candidate of the tit-for-tat unchoke ranking.
type rankEntry struct {
	slot int32
	key  int32 // chunks received from the candidate last round
	id   int64 // unique id: deterministic ascending tiebreak
}

// ranker sorts unchoke candidates by (received desc, id asc). It lives on
// the sim and reuses its entry buffer, so ranking allocates nothing — the
// former sort.Slice closure allocated per call. The comparator is a
// strict total order (ids are unique), so any sorting algorithm produces
// the byte-identical ranking the goldens pin.
//
// The ranking is a full sort, not a top-(Slots−1) partial sort, on
// purpose: the tail beyond the unchoke slots is the optimistic-unchoke
// candidate pool, and the RNG index drawn against it only reproduces the
// pre-SoA engine if the tail order matches the fully sorted order (see
// the determinism contract in DESIGN.md).
type ranker struct {
	e []rankEntry
}

func (r *ranker) Len() int { return len(r.e) }

func (r *ranker) Less(i, j int) bool {
	if r.e[i].key != r.e[j].key {
		return r.e[i].key > r.e[j].key
	}
	return r.e[i].id < r.e[j].id
}

func (r *ranker) Swap(i, j int) { r.e[i], r.e[j] = r.e[j], r.e[i] }

// sortRanked sorts the filled entries.
func (r *ranker) sortRanked() { sort.Sort(r) }
