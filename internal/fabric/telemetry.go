// Fleet telemetry: workers periodically push snapshot+heartbeat
// envelopes to the coordinator, which keeps a per-worker liveness table,
// merges the fleet's metric registries into one view, and re-emits
// shipped spans into its own trace sink so one Chrome trace shows every
// process. Telemetry is strictly fire-and-forget — it rides a separate
// goroutine, a push failure is counted and dropped, and nothing on the
// lease/complete path ever waits on it — so results stay byte-identical
// with telemetry on or off.
package fabric

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"time"

	"mfdl/internal/obs"
)

// telemetrySchemaVersion is bumped whenever the envelope shape changes
// incompatibly; the coordinator rejects other versions.
const telemetrySchemaVersion = 1

// wireSpan is obs.SpanEvent flattened for the telemetry envelope.
type wireSpan struct {
	Name      string      `json:"name"`
	Pid       int         `json:"pid,omitempty"`
	StartNano int64       `json:"start_ns"`
	DurNano   int64       `json:"dur_ns"`
	Labels    []obs.Label `json:"labels,omitempty"`
}

func toWireSpans(events []obs.SpanEvent) []wireSpan {
	out := make([]wireSpan, len(events))
	for i, e := range events {
		out[i] = wireSpan{
			Name: e.Name, Pid: e.PID,
			StartNano: e.Start.UnixNano(), DurNano: int64(e.Duration),
			Labels: e.Labels,
		}
	}
	return out
}

func (s wireSpan) event() obs.SpanEvent {
	return obs.SpanEvent{
		Name: s.Name, PID: s.Pid,
		Start: time.Unix(0, s.StartNano), Duration: time.Duration(s.DurNano),
		Labels: s.Labels,
	}
}

// telemetryEnvelope is one worker push: heartbeat (identity, pace,
// inflight lease), a canonical registry snapshot, and the span batch
// completed since the previous push.
type telemetryEnvelope struct {
	Schema        int             `json:"schema"`
	Fingerprint   string          `json:"fingerprint,omitempty"`
	Worker        string          `json:"worker"`
	Pid           int             `json:"pid,omitempty"`
	Epoch         int64           `json:"epoch,omitempty"`
	Seq           int64           `json:"seq"`
	IntervalMilli int64           `json:"interval_ms,omitempty"`
	CellsTotal    uint64          `json:"cells_total"`
	CellsPerSec   float64         `json:"cells_per_sec,omitempty"`
	LeaseID       string          `json:"lease,omitempty"`
	InflightCells int             `json:"inflight_cells,omitempty"`
	Parked        bool            `json:"parked,omitempty"`
	ParkedSeconds float64         `json:"parked_seconds,omitempty"`
	Snapshot      json.RawMessage `json:"snapshot,omitempty"`
	Spans         []wireSpan      `json:"spans,omitempty"`
}

// workerTelemetry is the coordinator's record of one worker's latest
// push.
type workerTelemetry struct {
	env      telemetryEnvelope
	lastSeen time.Time
	snap     obs.Snapshot
	hasSnap  bool
}

// Worker liveness states, judged from heartbeat age against the lease
// TTL: a worker is healthy while its last push is younger than half the
// TTL, stale until a full TTL, and lost beyond it — the same horizon at
// which its leases are forfeited, so "lost" and "cells re-issued" line
// up. A worker whose latest envelope says it is parked (riding out a
// coordinator outage with capped backoff, see WorkerOptions.MaxOutage)
// shows as parked instead, until its heartbeats age into lost.
const (
	WorkerHealthy = "healthy"
	WorkerStale   = "stale"
	WorkerParked  = "parked"
	WorkerLost    = "lost"
)

// FleetWorker is one worker's row in the fleet view.
type FleetWorker struct {
	Worker         string  `json:"worker"`
	Pid            int     `json:"pid,omitempty"`
	State          string  `json:"state"`
	AgeSeconds     float64 `json:"age_seconds"`
	CellsTotal     uint64  `json:"cells_total"`
	CellsPerSec    float64 `json:"cells_per_sec"`
	CellSecondsP50 float64 `json:"cell_seconds_p50,omitempty"`
	Straggler      bool    `json:"straggler,omitempty"`
	LeaseID        string  `json:"lease,omitempty"`
	InflightCells  int     `json:"inflight_cells,omitempty"`
	ParkedSeconds  float64 `json:"parked_seconds,omitempty"`
}

// Fleet is the machine-readable fleet view served on GET /v1/fleet: job
// progress plus every worker that has ever pushed telemetry, with
// liveness state, observed rates and the straggler flag (a worker whose
// median cell seconds exceed StragglerFactor times the fleet median).
type Fleet struct {
	Status          Status        `json:"status"`
	Workers         []FleetWorker `json:"workers"`
	Healthy         int           `json:"healthy"`
	Stale           int           `json:"stale"`
	Parked          int           `json:"parked"`
	Lost            int           `json:"lost"`
	CellsPerSec     float64       `json:"cells_per_sec"`
	CellSecondsP50  float64       `json:"cell_seconds_p50,omitempty"`
	StragglerFactor float64       `json:"straggler_factor"`
}

// ingestTelemetry records one pushed envelope: the heartbeat lands in
// the liveness table, the snapshot replaces the worker's previous one,
// and shipped spans are re-emitted into the coordinator's trace sink.
func (c *Coordinator) ingestTelemetry(env telemetryEnvelope) error {
	if env.Schema != telemetrySchemaVersion {
		c.obsTelemetryBad.Inc()
		return fmt.Errorf("fabric: telemetry schema %d, this coordinator speaks %d",
			env.Schema, telemetrySchemaVersion)
	}
	if env.Worker == "" {
		c.obsTelemetryBad.Inc()
		return fmt.Errorf("fabric: telemetry without a worker id")
	}
	wt := &workerTelemetry{env: env, lastSeen: c.opts.Clock()}
	if len(env.Snapshot) > 0 {
		snap, err := obs.DecodeSnapshot(env.Snapshot)
		if err != nil {
			c.obsTelemetryBad.Inc()
			return err
		}
		wt.snap, wt.hasSnap = snap, true
	}
	if math.IsNaN(wt.env.CellsPerSec) || math.IsInf(wt.env.CellsPerSec, 0) || wt.env.CellsPerSec < 0 {
		wt.env.CellsPerSec = 0
	}
	if math.IsNaN(wt.env.ParkedSeconds) || math.IsInf(wt.env.ParkedSeconds, 0) || wt.env.ParkedSeconds < 0 {
		wt.env.ParkedSeconds = 0
	}
	c.tmu.Lock()
	prev := c.telemetry[env.Worker]
	// Out-of-order pushes (an old beat racing a newer one) keep the
	// newest sequence number — but only within one worker run. Epoch is
	// stamped once per run, so a worker restarting under the same name
	// (seq back at 1, newer epoch) supersedes its previous run instead
	// of being dropped until seq catches up to the old value.
	if prev == nil || env.Epoch > prev.env.Epoch ||
		(env.Epoch == prev.env.Epoch && env.Seq >= prev.env.Seq) {
		c.telemetry[env.Worker] = wt
	}
	c.tmu.Unlock()
	c.obsTelemetry.Inc()
	if len(env.Spans) > 0 {
		c.obsTelemetrySpans.Add(uint64(len(env.Spans)))
		for _, s := range env.Spans {
			c.treg.EmitSpan(s.event())
		}
	}
	return nil
}

// workerState classifies a heartbeat age.
func (c *Coordinator) workerState(age time.Duration) string {
	switch {
	case age > c.opts.LeaseTTL:
		return WorkerLost
	case age > c.opts.LeaseTTL/2:
		return WorkerStale
	default:
		return WorkerHealthy
	}
}

// Fleet assembles the fleet view and refreshes the
// fabric_workers_{healthy,stale,lost} gauges. The straggler flag
// compares each worker's median observed cell seconds (from the
// coordinator-side fabric_cell_seconds histograms fed by completion
// headers) against the fleet median.
func (c *Coordinator) Fleet() Fleet {
	now := c.opts.Clock()
	fleetP50 := c.treg.Histogram("fabric_cell_seconds", obs.LatencyBuckets).Quantile(0.5)
	f := Fleet{
		Status:          c.Status(),
		CellSecondsP50:  finiteOrZero(fleetP50),
		StragglerFactor: c.opts.StragglerFactor,
	}
	c.tmu.Lock()
	workers := make([]string, 0, len(c.telemetry))
	for w := range c.telemetry {
		workers = append(workers, w)
	}
	sort.Strings(workers)
	for _, w := range workers {
		wt := c.telemetry[w]
		age := now.Sub(wt.lastSeen)
		p50 := c.treg.Histogram("fabric_cell_seconds", obs.LatencyBuckets, obs.L("worker", w)).Quantile(0.5)
		fw := FleetWorker{
			Worker: w, Pid: wt.env.Pid,
			State:          c.workerState(age),
			AgeSeconds:     age.Seconds(),
			CellsTotal:     wt.env.CellsTotal,
			CellsPerSec:    wt.env.CellsPerSec,
			CellSecondsP50: finiteOrZero(p50),
			LeaseID:        wt.env.LeaseID,
			InflightCells:  wt.env.InflightCells,
			ParkedSeconds:  wt.env.ParkedSeconds,
		}
		// A self-reported park overrides healthy/stale — the worker is
		// alive but deliberately idle — but never lost: a parked worker
		// that stops beating ages into lost like any other.
		if wt.env.Parked && fw.State != WorkerLost {
			fw.State = WorkerParked
		}
		if p50 > c.opts.StragglerFactor*fleetP50 && fleetP50 > 0 {
			fw.Straggler = true
		}
		switch fw.State {
		case WorkerHealthy:
			f.Healthy++
			f.CellsPerSec += fw.CellsPerSec
		case WorkerStale:
			f.Stale++
			f.CellsPerSec += fw.CellsPerSec
		case WorkerParked:
			f.Parked++
		default:
			f.Lost++
		}
		f.Workers = append(f.Workers, fw)
	}
	c.tmu.Unlock()
	c.treg.Gauge("fabric_workers_healthy").Set(float64(f.Healthy))
	c.treg.Gauge("fabric_workers_stale").Set(float64(f.Stale))
	c.treg.Gauge("fabric_workers_parked").Set(float64(f.Parked))
	c.treg.Gauge("fabric_workers_lost").Set(float64(f.Lost))
	return f
}

func finiteOrZero(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}

// MergedSnapshot folds every worker's latest registry snapshot into the
// coordinator's own: counters sum, histograms bucket-merge, gauges gain
// a worker=<id> label. A worker whose snapshot cannot be merged (e.g.
// histogram bounds from a different build) is skipped and counted, so
// one bad worker cannot take /metrics down.
func (c *Coordinator) MergedSnapshot() obs.Snapshot {
	s := c.treg.Snapshot()
	c.tmu.Lock()
	defer c.tmu.Unlock()
	for w, wt := range c.telemetry {
		if !wt.hasSnap {
			continue
		}
		// Merge into a scratch clone and commit only on success: Merge
		// mutates its target family-by-family, so a snapshot failing on
		// a later family (e.g. histogram bounds from a different build)
		// must not leave half-merged data in the served view.
		scratch := s.Clone()
		if err := scratch.Merge(wt.snap, obs.L("worker", w)); err != nil {
			c.obsTelemetryUnmerged.Inc()
			continue
		}
		s = scratch
	}
	return s
}
