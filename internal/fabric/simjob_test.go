package fabric

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"mfdl/internal/eventsim"
	"mfdl/internal/fluid"
	"mfdl/internal/obs"
	"mfdl/internal/replica"
	"mfdl/internal/runner"
	"mfdl/internal/runner/diskcache"
	"mfdl/internal/scheme"
	"mfdl/internal/sim"
)

// simTestSpec is a small sim-replica job: two flow-level MTCD cells
// (p = 0.5, 0.9) at the given base seed and replica count.
func simTestSpec(t testing.TB, seed uint64, replicas int) runner.JobSpec {
	t.Helper()
	mk := func(p float64) sim.JobCell {
		cfg := &eventsim.Config{
			Params:  fluid.Params{Mu: 0.2, Eta: 0.5, Gamma: 0.5},
			K:       4,
			Lambda0: 1,
			P:       p,
			Horizon: 120,
			Warmup:  20,
		}
		return sim.JobCell{Scheme: scheme.SimMTCD, Config: sim.Config{Flow: cfg}}
	}
	spec, err := sim.NewJobSpec([]sim.JobCell{mk(0.5), mk(0.9)}, seed, replicas)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// A sim-replica job distributed over several workers assembles the exact
// payload bytes — and therefore the exact aggregates — of a local run.
func TestSimJobDistributedMatchesLocal(t *testing.T) {
	spec := simTestSpec(t, 11, 3)
	ctx := context.Background()
	wantPayloads, err := runner.RunJobPayloads(ctx, spec, runner.JobEnv{}, runner.Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantAggs, err := sim.ReduceJob(spec, wantPayloads)
	if err != nil {
		t.Fatal(err)
	}

	reg := obs.New()
	coord, srv := newFabric(t, spec, t.TempDir(), CoordinatorOptions{Obs: reg, LeaseCells: 2})
	errs := make(chan error, 3)
	for i := 0; i < 3; i++ {
		go func(i int) {
			errs <- Work(ctx, srv.URL, WorkerOptions{
				Name: fmt.Sprintf("sim-w%d", i), Parallelism: 2, Obs: reg,
			})
		}(i)
	}
	for i := 0; i < 3; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	gotPayloads, err := coord.Payloads(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotPayloads) != len(wantPayloads) {
		t.Fatalf("distributed run shipped %d payloads, want %d", len(gotPayloads), len(wantPayloads))
	}
	for i := range wantPayloads {
		if !bytes.Equal(gotPayloads[i], wantPayloads[i]) {
			t.Fatalf("payload %d differs from the local bytes:\n got %s\nwant %s",
				i, gotPayloads[i], wantPayloads[i])
		}
	}
	gotAggs, err := sim.ReduceJob(spec, gotPayloads)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotAggs, wantAggs) {
		t.Fatal("distributed aggregates differ from the local run")
	}
}

// Growing R across coordinators reuses every stored sample: a fresh
// coordinator (fresh checkpoint store) over the same sample store marks
// the already-drawn replicas done at startup and only distributes the new
// ones.
func TestSimJobSampleReuseAcrossCoordinators(t *testing.T) {
	ctx := context.Background()
	samples, err := diskcache.OpenSamples(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}

	// First campaign: R = 2, both cells' samples end up in the store.
	small := simTestSpec(t, 11, 2)
	_, srv1 := newFabric(t, small, t.TempDir(), CoordinatorOptions{Samples: samples})
	if err := Work(ctx, srv1.URL, WorkerOptions{Name: "r2", Samples: samples}); err != nil {
		t.Fatal(err)
	}
	if n, err := samples.Len(sampleKeyOf(t, small, 0)); err != nil || n != 2 {
		t.Fatalf("cell 0 holds %d samples (%v), want 2", n, err)
	}

	// Second campaign doubles R with a brand-new checkpoint store: the only
	// carrier between the runs is the sample store.
	big := simTestSpec(t, 11, 4)
	reg := obs.New()
	coord2, srv2 := newFabric(t, big, t.TempDir(), CoordinatorOptions{Samples: samples, Obs: reg})
	if resumed := int(reg.Counter("fabric_cells_resumed_total").Value()); resumed != 4 {
		t.Fatalf("resumed %d executable cells, want the 4 stored replicas (2 cells × R=2)", resumed)
	}
	if err := Work(ctx, srv2.URL, WorkerOptions{Name: "r4", Samples: samples}); err != nil {
		t.Fatal(err)
	}
	payloads, err := coord2.Payloads(ctx)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sim.ReduceJob(big, payloads)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sim.RunJob(ctx, big, runner.JobEnv{}, runner.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("grown distributed run differs from a from-scratch local run")
	}
}

func sampleKeyOf(t *testing.T, spec runner.JobSpec, cell int) string {
	t.Helper()
	p, err := sim.Params(spec)
	if err != nil {
		t.Fatal(err)
	}
	key, err := p.Cells[cell].SampleKey()
	if err != nil {
		t.Fatal(err)
	}
	return key
}

// A worker presented with a job kind its build does not register refuses
// up front — it never leases cells it cannot execute.
func TestWorkerRejectsUnknownKind(t *testing.T) {
	spec := simTestSpec(t, 1, 1)
	data, err := spec.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	data = bytes.Replace(data, []byte(`"sim-replica"`), []byte(`"mystery-kind"`), 1)
	var leased bool
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == pathJob {
			w.Write(data)
			return
		}
		leased = true
		http.Error(w, "should never get here", http.StatusInternalServerError)
	}))
	defer srv.Close()
	err = Work(context.Background(), srv.URL, WorkerOptions{Name: "wary"})
	if err == nil || !strings.Contains(err.Error(), "unknown job kind") {
		t.Fatalf("Work() = %v, want an unknown-kind rejection", err)
	}
	if leased {
		t.Fatal("worker tried to lease cells of a kind it cannot execute")
	}
}

// The completion gate is kind-agnostic: a sim-replica coordinator rejects
// foreign fingerprints with 409 and wrong envelope schemas with 400, and
// neither touches its state.
func TestSimCoordinatorRejectsForeignCompletions(t *testing.T) {
	spec := simTestSpec(t, 1, 2)
	reg := obs.New()
	coord, srv := newFabric(t, spec, t.TempDir(), CoordinatorOptions{Obs: reg})

	post := func(e diskcache.Entry) int {
		t.Helper()
		body, err := e.Encode()
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(srv.URL+pathComplete, "application/json", strings.NewReader(string(body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	foreign := diskcache.Entry{
		Schema: diskcache.CheckpointSchemaVersion,
		Key:    "job v1 sim-replica from-another-study", Cell: 0, Payload: []byte("x"),
	}
	if code := post(foreign); code != http.StatusConflict {
		t.Fatalf("foreign completion got %d, want %d", code, http.StatusConflict)
	}
	badSchema := diskcache.Entry{
		Schema: diskcache.CheckpointSchemaVersion + 1,
		Key:    coord.Fingerprint(), Cell: 0, Payload: []byte("x"),
	}
	if code := post(badSchema); code != http.StatusBadRequest {
		t.Fatalf("wrong-schema completion got %d, want %d", code, http.StatusBadRequest)
	}
	if n := reg.Counter("fabric_cells_foreign_total").Value(); n != 1 {
		t.Fatalf("foreign counter = %d, want 1", n)
	}
	if st := coord.Status(); st.Done != 0 {
		t.Fatalf("rejected completions marked %d cells done", st.Done)
	}
}

// R = 1 through the fabric is the unreplicated golden: each grid cell's
// aggregate collapses to the single sample drawn under the base seed.
func TestSimJobFabricR1MatchesUnreplicated(t *testing.T) {
	ctx := context.Background()
	spec := simTestSpec(t, 5, 1)
	coord, srv := newFabric(t, spec, t.TempDir(), CoordinatorOptions{})
	if err := Work(ctx, srv.URL, WorkerOptions{Name: "solo"}); err != nil {
		t.Fatal(err)
	}
	payloads, err := coord.Payloads(ctx)
	if err != nil {
		t.Fatal(err)
	}
	aggs, err := sim.ReduceJob(spec, payloads)
	if err != nil {
		t.Fatal(err)
	}
	p, err := sim.Params(spec)
	if err != nil {
		t.Fatal(err)
	}
	for cell, c := range p.Cells {
		s, err := sim.New(c.Scheme, c.Config)
		if err != nil {
			t.Fatal(err)
		}
		direct, err := s.Simulate(ctx, replica.Rep{Cell: cell, Replica: 0, Seed: spec.Seed})
		if err != nil {
			t.Fatal(err)
		}
		if got := aggs[cell].Mean(replica.OnlinePerFile); got != direct.Values[replica.OnlinePerFile] {
			t.Errorf("cell %d: fabric R=1 mean %v, want unreplicated %v",
				cell, got, direct.Values[replica.OnlinePerFile])
		}
	}
}
