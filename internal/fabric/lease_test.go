package fabric

import (
	"math"
	"testing"

	"mfdl/internal/runner/diskcache"
)

// newCoord builds a coordinator without a server — the adaptive-lease
// policy is pure coordinator state.
func newCoord(t *testing.T, opts CoordinatorOptions) *Coordinator {
	t.Helper()
	store, err := diskcache.OpenCheckpoint(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	coord, err := NewCoordinator(testSpec(t), store, opts)
	if err != nil {
		t.Fatal(err)
	}
	return coord
}

// mustLease grants a lease and returns its cell count.
func mustLease(t *testing.T, c *Coordinator, worker string, max int) int {
	t.Helper()
	grant, _, done := c.Lease(worker, max)
	if done || grant == nil {
		t.Fatalf("Lease(%q) granted nothing (done=%v)", worker, done)
	}
	return len(grant.cells)
}

// The adaptive policy sizes each worker's batch from its observed pace:
// slow workers get smaller leases (down to a single cell), fast workers
// get the full batch, and a worker with no history falls back to the
// fixed LeaseCells.
func TestAdaptiveLeaseSizing(t *testing.T) {
	// testSpec has 10 cells; LeaseCells 8 keeps every scenario below the
	// pending count so sizes reflect policy, not depletion.
	opts := CoordinatorOptions{LeaseCells: 8, TargetLeaseSeconds: 1}

	t.Run("no-observations-falls-back", func(t *testing.T) {
		c := newCoord(t, opts)
		if n := mustLease(t, c, "fresh", 0); n != 8 {
			t.Fatalf("unobserved worker got %d cells, want LeaseCells=8", n)
		}
	})

	t.Run("slow-worker-gets-one-cell", func(t *testing.T) {
		c := newCoord(t, opts)
		c.ObserveCellSeconds("slow", 2.0) // 1s target / 2s mean -> floor at 1
		if n := mustLease(t, c, "slow", 0); n != 1 {
			t.Fatalf("slow worker got %d cells, want 1", n)
		}
	})

	t.Run("pace-is-a-running-mean", func(t *testing.T) {
		c := newCoord(t, opts)
		c.ObserveCellSeconds("steady", 0.2)
		c.ObserveCellSeconds("steady", 0.3) // mean 0.25s -> 4 cells
		if n := mustLease(t, c, "steady", 0); n != 4 {
			t.Fatalf("steady worker got %d cells, want 4", n)
		}
	})

	t.Run("fast-worker-clamps-to-lease-cells", func(t *testing.T) {
		c := newCoord(t, opts)
		c.ObserveCellSeconds("fast", 0.01) // 100 cells by pace, clamped
		if n := mustLease(t, c, "fast", 0); n != 8 {
			t.Fatalf("fast worker got %d cells, want LeaseCells=8", n)
		}
	})

	t.Run("worker-max-still-caps", func(t *testing.T) {
		c := newCoord(t, opts)
		c.ObserveCellSeconds("fast", 0.01)
		if n := mustLease(t, c, "fast", 2); n != 2 {
			t.Fatalf("capped worker got %d cells, want its own max 2", n)
		}
	})

	t.Run("paces-are-per-worker", func(t *testing.T) {
		c := newCoord(t, opts)
		c.ObserveCellSeconds("slow", 1.0)
		c.ObserveCellSeconds("fast", 0.05)
		slow := mustLease(t, c, "slow", 0)
		fast := mustLease(t, c, "fast", 0)
		if slow != 1 || fast != 8 {
			t.Fatalf("slow/fast got %d/%d cells, want 1/8", slow, fast)
		}
	})

	t.Run("junk-observations-are-ignored", func(t *testing.T) {
		c := newCoord(t, opts)
		for _, sec := range []float64{0, -1, math.NaN(), math.Inf(1), math.Inf(-1)} {
			c.ObserveCellSeconds("junk", sec)
		}
		c.ObserveCellSeconds("", 0.5) // anonymous observations dropped too
		if n := mustLease(t, c, "junk", 0); n != 8 {
			t.Fatalf("junk-fed worker got %d cells, want the 8-cell fallback", n)
		}
	})

	t.Run("disabled-policy-is-fixed", func(t *testing.T) {
		c := newCoord(t, CoordinatorOptions{LeaseCells: 8})
		c.ObserveCellSeconds("slow", 5.0)
		if n := mustLease(t, c, "slow", 0); n != 8 {
			t.Fatalf("fixed policy granted %d cells, want LeaseCells=8", n)
		}
	})
}
