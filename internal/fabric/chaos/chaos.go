// Package chaos is the deterministic fault layer for the sweep fabric's
// HTTP plane: one chaos seed becomes a reproducible schedule of dropped,
// delayed, error-substituted and corrupted fabric messages, plus
// wall-clock windows during which the coordinator blacks out entirely.
//
// It follows internal/faults' split-RNG discipline. Every injected fault
// is a pure function of (seed, fault kind, worker, endpoint, attempt):
// each kind draws from its own salted stream family, and the stream id is
// a stable hash of (worker, endpoint, attempt). Consequences:
//
//   - the fault schedule is identical at any parallelism — whether worker
//     "w3" issues its 7th /v1/lease request first or last, that request
//     meets the same fate;
//   - re-running with the same seed replays the identical schedule, so a
//     chaos soak that passes is a reproducible claim, not a lucky roll;
//   - adding a fault kind never perturbs another kind's outcomes.
//
// The plan is consumed from both sides of the wire. Workers wrap their
// HTTP client in Transport, which drops requests before or after they
// reach the server, delays them, substitutes 503 responses, and corrupts
// response bodies. Coordinators wrap their handler in Middleware, which
// rejects every request with 503 during blackout windows (a coordinator
// restart or network partition as seen by the fleet) and can inject
// delays and 5xx responses server-side.
//
// Only responses are ever corrupted, never request bodies: a corrupted
// completion request would be indistinguishable from a worker from a
// different build and correctly rejected with a 4xx, which is a protocol
// disagreement, not weather. Chaos models the network's weather;
// request integrity stays the transport's job.
package chaos

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"sync"
	"time"

	"mfdl/internal/obs"
	"mfdl/internal/rng"
)

// Window is a half-open interval [Start, End) of elapsed plan time during
// which the coordinator is blacked out.
type Window struct {
	Start, End time.Duration
}

// Config selects which faults to inject and how hard. The zero value
// injects nothing and is always valid.
type Config struct {
	// Seed derives every fault stream. Two plans with the same seed and
	// the same rates schedule identical per-request outcomes.
	Seed uint64
	// DropProb is the probability that one request is dropped: the caller
	// sees a transport error. Half of the drops (a further deterministic
	// draw) happen after the request reached the server — the classic
	// "did my write land?" failure that exercises idempotent completions.
	// In [0, 1).
	DropProb float64
	// DelayMax delays each request by a uniform draw from [0, DelayMax).
	// 0 disables delays.
	DelayMax time.Duration
	// Error5xxProb is the probability that a response is replaced with an
	// injected 503 after the server processed the request. In [0, 1).
	Error5xxProb float64
	// CorruptProb is the probability that a response body is corrupted in
	// flight (the status survives, the bytes do not). In [0, 1).
	CorruptProb float64
	// BlackoutWindows lists elapsed-time windows during which Middleware
	// rejects every request with 503 — the fleet's view of a coordinator
	// outage. The plan's clock starts at the first request it sees.
	BlackoutWindows []Window
}

// Enabled reports whether the configuration injects any fault at all.
func (c Config) Enabled() bool {
	return c.DropProb > 0 || c.DelayMax > 0 || c.Error5xxProb > 0 ||
		c.CorruptProb > 0 || len(c.BlackoutWindows) > 0
}

// Validate rejects probabilities and windows outside their domains.
func (c Config) Validate() error {
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"DropProb", c.DropProb},
		{"Error5xxProb", c.Error5xxProb},
		{"CorruptProb", c.CorruptProb},
	} {
		if f.v < 0 || f.v >= 1 || math.IsNaN(f.v) {
			return fmt.Errorf("chaos: %s must be in [0,1), got %v", f.name, f.v)
		}
	}
	if c.DelayMax < 0 {
		return fmt.Errorf("chaos: DelayMax must be >= 0, got %v", c.DelayMax)
	}
	for i, w := range c.BlackoutWindows {
		if w.Start < 0 || w.End <= w.Start {
			return fmt.Errorf("chaos: BlackoutWindows[%d] must satisfy 0 <= Start < End, got [%v, %v)", i, w.Start, w.End)
		}
	}
	return nil
}

// Per-kind stream salts, in the internal/faults discipline: each fault
// kind draws from its own family of streams so adding a kind never
// perturbs another kind's outcomes.
const (
	saltDrop    uint64 = 0xc3a5c85c97cb3127
	saltDelay   uint64 = 0xb492b66fbe98f273
	saltError   uint64 = 0x9ae16a3b2f90404f
	saltCorrupt uint64 = 0x3c6ef372fe94f82a
)

// Decision is what the plan injects for one request. The zero value
// passes the request through untouched.
type Decision struct {
	// Drop fails the request with a transport error.
	Drop bool
	// DropAfterSend, meaningful only with Drop, lets the request reach
	// the server first — the response is lost, not the request.
	DropAfterSend bool
	// Delay postpones the request.
	Delay time.Duration
	// Error5xx replaces the response with an injected 503.
	Error5xx bool
	// Corrupt garbles the response body.
	Corrupt bool
}

// Faulty reports whether the decision injects anything.
func (d Decision) Faulty() bool {
	return d.Drop || d.Delay > 0 || d.Error5xx || d.Corrupt
}

// Plan is a compiled chaos configuration. A nil *Plan is valid and
// injects nothing: Transport returns the base transport and Middleware
// returns the next handler, so call sites can hold a plan
// unconditionally.
type Plan struct {
	cfg Config

	startOnce sync.Once
	start     time.Time
	clock     func() time.Time

	dropped   *obs.Counter
	delayed   *obs.Counter
	injected  *obs.Counter
	corrupted *obs.Counter
	blackouts *obs.Counter
}

// NewPlan validates cfg and compiles its plan; a disabled configuration
// yields nil (inject nothing) without error. The registry may be nil.
func NewPlan(cfg Config, reg *obs.Registry) (*Plan, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if !cfg.Enabled() {
		return nil, nil
	}
	return &Plan{
		cfg:       cfg,
		clock:     time.Now,
		dropped:   reg.Counter("chaos_requests_dropped_total"),
		delayed:   reg.Counter("chaos_requests_delayed_total"),
		injected:  reg.Counter("chaos_errors_injected_total"),
		corrupted: reg.Counter("chaos_responses_corrupted_total"),
		blackouts: reg.Counter("chaos_blackout_rejects_total"),
	}, nil
}

// Config returns the plan's configuration (zero for a nil plan).
func (p *Plan) Config() Config {
	if p == nil {
		return Config{}
	}
	return p.cfg
}

// streamID hashes (worker, endpoint, attempt) into a stable stream id
// (FNV-1a over the framed triple; the separators keep ("ab","c") and
// ("a","bc") apart).
func streamID(worker, endpoint string, attempt uint64) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= prime64
		}
		h ^= 0xff // frame separator, outside any byte value a string contributes
		h *= prime64
	}
	mix(worker)
	mix(endpoint)
	for i := 0; i < 8; i++ {
		h ^= (attempt >> (8 * i)) & 0xff
		h *= prime64
	}
	return h
}

// Decide returns the fault injected for the attempt-th request worker
// makes to endpoint. It is a pure function of (seed, worker, endpoint,
// attempt): the same triple meets the same fate in every run, at any
// parallelism, which is what makes a chaos schedule replayable from its
// seed alone.
func (p *Plan) Decide(worker, endpoint string, attempt uint64) Decision {
	if p == nil {
		return Decision{}
	}
	id := streamID(worker, endpoint, attempt)
	var d Decision
	if p.cfg.DropProb > 0 {
		s := rng.NewStream(p.cfg.Seed+saltDrop, id)
		if s.Bernoulli(p.cfg.DropProb) {
			d.Drop = true
			d.DropAfterSend = s.Bernoulli(0.5)
		}
	}
	if p.cfg.DelayMax > 0 {
		s := rng.NewStream(p.cfg.Seed+saltDelay, id)
		d.Delay = time.Duration(s.Float64() * float64(p.cfg.DelayMax))
	}
	if p.cfg.Error5xxProb > 0 && !d.Drop {
		s := rng.NewStream(p.cfg.Seed+saltError, id)
		d.Error5xx = s.Bernoulli(p.cfg.Error5xxProb)
	}
	if p.cfg.CorruptProb > 0 && !d.Drop && !d.Error5xx {
		s := rng.NewStream(p.cfg.Seed+saltCorrupt, id)
		d.Corrupt = s.Bernoulli(p.cfg.CorruptProb)
	}
	return d
}

// elapsed returns time since the plan first saw traffic, latching the
// start on first use so blackout windows are relative to when the run
// actually began, not when the flags were parsed.
func (p *Plan) elapsed() time.Duration {
	p.startOnce.Do(func() { p.start = p.clock() })
	return p.clock().Sub(p.start)
}

// Blackout reports whether elapsed plan time t falls inside a blackout
// window.
func (p *Plan) Blackout(t time.Duration) bool {
	if p == nil {
		return false
	}
	for _, w := range p.cfg.BlackoutWindows {
		if t >= w.Start && t < w.End {
			return true
		}
	}
	return false
}

// SetClock overrides the plan's wall clock (for tests). Call it before
// the plan sees traffic.
func (p *Plan) SetClock(clock func() time.Time) {
	if p != nil && clock != nil {
		p.clock = clock
	}
}

// Transport wraps base (nil = http.DefaultTransport) in the plan's
// worker-side fault injection. Each wrapped client counts its own
// attempts per endpoint, so two workers sharing a plan still consume
// their own schedules. A nil plan returns base unchanged.
func (p *Plan) Transport(worker string, base http.RoundTripper) http.RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	if p == nil {
		return base
	}
	return &transport{plan: p, worker: worker, base: base, attempts: map[string]uint64{}}
}

type transport struct {
	plan   *Plan
	worker string
	base   http.RoundTripper

	mu       sync.Mutex
	attempts map[string]uint64
}

// chaosError is the transport error injected for dropped requests.
// It is deliberately a distinct type so tests can tell injected loss
// from real loss.
type chaosError struct{ msg string }

func (e *chaosError) Error() string { return e.msg }

// IsInjected reports whether err is a fault this package injected,
// unwrapping any *url.Error the HTTP client layered on top.
func IsInjected(err error) bool {
	var ce *chaosError
	return errors.As(err, &ce)
}

func (t *transport) RoundTrip(req *http.Request) (*http.Response, error) {
	endpoint := req.URL.Path
	t.mu.Lock()
	n := t.attempts[endpoint]
	t.attempts[endpoint] = n + 1
	t.mu.Unlock()
	d := t.plan.Decide(t.worker, endpoint, n)
	if d.Delay > 0 {
		timer := time.NewTimer(d.Delay)
		select {
		case <-req.Context().Done():
			timer.Stop()
			return nil, req.Context().Err()
		case <-timer.C:
		}
		t.plan.delayed.Inc()
	}
	if d.Drop && !d.DropAfterSend {
		t.plan.dropped.Inc()
		return nil, &chaosError{fmt.Sprintf("chaos: request dropped (%s %s attempt %d)", t.worker, endpoint, n)}
	}
	resp, err := t.base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	switch {
	case d.Drop: // after send: the server saw it, the caller never will
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		t.plan.dropped.Inc()
		return nil, &chaosError{fmt.Sprintf("chaos: response dropped (%s %s attempt %d)", t.worker, endpoint, n)}
	case d.Error5xx:
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		t.plan.injected.Inc()
		return injected503(req), nil
	case d.Corrupt:
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			return nil, rerr
		}
		t.plan.corrupted.Inc()
		resp.Body = io.NopCloser(bytes.NewReader(corrupt(body)))
		resp.ContentLength = -1
		resp.Header.Del("Content-Length")
		return resp, nil
	}
	return resp, nil
}

// injected503 builds the substitute response for an Error5xx decision.
func injected503(req *http.Request) *http.Response {
	body := "chaos: injected server error\n"
	return &http.Response{
		Status:        "503 Service Unavailable",
		StatusCode:    http.StatusServiceUnavailable,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        http.Header{"Content-Type": []string{"text/plain; charset=utf-8"}},
		Body:          io.NopCloser(bytes.NewReader([]byte(body))),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}

// corrupt deterministically garbles a response body: the first byte is
// inverted (0x7b '{' becomes an invalid JSON lead byte) and the tail is
// truncated, so both structured decoders and length-sensitive consumers
// notice. An empty body gains a garbage byte instead.
func corrupt(body []byte) []byte {
	if len(body) == 0 {
		return []byte{0xff}
	}
	out := make([]byte, (len(body)+1)/2)
	copy(out, body)
	out[0] ^= 0xff
	return out
}

// Middleware wraps next in the plan's coordinator-side fault injection:
// during blackout windows every request is rejected with 503, and the
// delay / Error5xx draws (attributed to the pseudo-worker
// "coordinator") apply server-side. Drop and Corrupt decisions are
// worker-transport faults and are ignored here. A nil plan returns next
// unchanged.
func (p *Plan) Middleware(next http.Handler) http.Handler {
	if p == nil {
		return next
	}
	srv := &transport{plan: p, worker: "coordinator", attempts: map[string]uint64{}}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if p.Blackout(p.elapsed()) {
			p.blackouts.Inc()
			http.Error(w, "chaos: coordinator blackout", http.StatusServiceUnavailable)
			return
		}
		endpoint := r.URL.Path
		srv.mu.Lock()
		n := srv.attempts[endpoint]
		srv.attempts[endpoint] = n + 1
		srv.mu.Unlock()
		d := p.Decide("coordinator", endpoint, n)
		if d.Delay > 0 {
			timer := time.NewTimer(d.Delay)
			select {
			case <-r.Context().Done():
				timer.Stop()
				return
			case <-timer.C:
			}
			p.delayed.Inc()
		}
		if d.Error5xx {
			p.injected.Inc()
			http.Error(w, "chaos: injected server error", http.StatusServiceUnavailable)
			return
		}
		next.ServeHTTP(w, r)
	})
}
