package chaos

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"mfdl/internal/obs"
)

var update = flag.Bool("update", false, "rewrite the golden fault schedule")

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{DropProb: -0.1},
		{DropProb: 1},
		{Error5xxProb: 1.5},
		{CorruptProb: -1},
		{DelayMax: -time.Second},
		{BlackoutWindows: []Window{{Start: -1, End: 1}}},
		{BlackoutWindows: []Window{{Start: 2 * time.Second, End: time.Second}}},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d validated: %+v", i, cfg)
		}
	}
	if err := (Config{}).Validate(); err != nil {
		t.Fatalf("zero config rejected: %v", err)
	}
	if p, err := NewPlan(Config{}, nil); err != nil || p != nil {
		t.Fatalf("disabled config gave plan %v, err %v; want nil, nil", p, err)
	}
}

// goldenConfig exercises every probabilistic fault kind at rates high
// enough that the enumerated schedule contains each at least once.
func goldenConfig() Config {
	return Config{
		Seed:         42,
		DropProb:     0.3,
		DelayMax:     100 * time.Millisecond,
		Error5xxProb: 0.3,
		CorruptProb:  0.3,
	}
}

// formatSchedule renders the deterministic fault schedule for a fixed
// enumeration of (worker, endpoint, attempt) triples — the canonical
// fault log a seed compiles to.
func formatSchedule(p *Plan) string {
	var sb strings.Builder
	for _, worker := range []string{"w0", "w1"} {
		for _, endpoint := range []string{"/v1/job", "/v1/lease", "/v1/complete", "/v1/renew"} {
			for attempt := uint64(0); attempt < 8; attempt++ {
				d := p.Decide(worker, endpoint, attempt)
				fmt.Fprintf(&sb, "%s %s %d drop=%v after=%v delay=%dus err5xx=%v corrupt=%v\n",
					worker, endpoint, attempt,
					d.Drop, d.DropAfterSend, d.Delay.Microseconds(), d.Error5xx, d.Corrupt)
			}
		}
	}
	return sb.String()
}

// The fault schedule is a pure function of the seed: the rendered log is
// pinned byte-for-byte to a committed golden, so any change to the
// derivation discipline (salts, stream ids, draw order) is a visible,
// deliberate break rather than a silent reshuffle of every soak.
func TestFaultScheduleGolden(t *testing.T) {
	p, err := NewPlan(goldenConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	got := formatSchedule(p)
	path := filepath.Join("testdata", "schedule_golden.txt")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden: %v (run with -update to create it)", err)
	}
	if got != string(want) {
		t.Fatalf("fault schedule drifted from the golden:\n got:\n%s\nwant:\n%s", got, want)
	}
	// Sanity: the golden exercises every kind at least once.
	for _, kind := range []string{"drop=true", "err5xx=true", "corrupt=true"} {
		if !strings.Contains(got, kind) {
			t.Fatalf("golden schedule never injects %s; raise the rates", kind)
		}
	}
}

// Same seed ⇒ identical decisions; different seeds ⇒ different schedules.
func TestScheduleSeedDeterminism(t *testing.T) {
	a, err := NewPlan(goldenConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewPlan(goldenConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if formatSchedule(a) != formatSchedule(b) {
		t.Fatal("two plans with the same seed disagree")
	}
	cfg := goldenConfig()
	cfg.Seed = 43
	c, err := NewPlan(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if formatSchedule(a) == formatSchedule(c) {
		t.Fatal("different seeds produced the same schedule")
	}
}

// Decisions for one (worker, endpoint, attempt) triple are identical no
// matter which goroutine computes them or in what order — the property
// that makes the schedule independent of parallelism.
func TestDecideIsOrderFree(t *testing.T) {
	p, err := NewPlan(goldenConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	want := p.Decide("w0", "/v1/lease", 3)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				p.Decide("w1", "/v1/complete", uint64(j)) // interleave other draws
				if got := p.Decide("w0", "/v1/lease", 3); got != want {
					t.Errorf("Decide drifted: got %+v, want %+v", got, want)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// Transport injects exactly what the schedule says: a dropped request
// never reaches the server, a drop-after-send reaches it and loses the
// response, an injected 503 replaces a served response, and a corrupted
// body no longer decodes.
func TestTransportInjectsSchedule(t *testing.T) {
	var served int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served++
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, `{"ok":true}`)
	}))
	defer srv.Close()

	reg := obs.New()
	p, err := NewPlan(goldenConfig(), reg)
	if err != nil {
		t.Fatal(err)
	}
	client := &http.Client{Transport: p.Transport("w0", nil)}
	const endpoint = "/v1/lease"
	var drops, after, errs5xx, corrupts, clean int
	for attempt := uint64(0); attempt < 64; attempt++ {
		d := p.Decide("w0", endpoint, attempt)
		before := served
		resp, err := client.Get(srv.URL + endpoint)
		switch {
		case d.Drop && !d.DropAfterSend:
			drops++
			if !IsInjected(err) {
				t.Fatalf("attempt %d: dropped request returned (%v, %v), want injected transport error", attempt, resp, err)
			}
			if served != before {
				t.Fatalf("attempt %d: dropped-before-send request reached the server", attempt)
			}
		case d.Drop:
			after++
			if !IsInjected(err) {
				t.Fatalf("attempt %d: drop-after-send returned (%v, %v), want injected transport error", attempt, resp, err)
			}
			if served != before+1 {
				t.Fatalf("attempt %d: drop-after-send never reached the server", attempt)
			}
		case d.Error5xx:
			errs5xx++
			if err != nil || resp.StatusCode != http.StatusServiceUnavailable {
				t.Fatalf("attempt %d: injected 5xx returned (%v, %v)", attempt, resp, err)
			}
			resp.Body.Close()
		case d.Corrupt:
			corrupts++
			if err != nil {
				t.Fatalf("attempt %d: corrupt attempt errored: %v", attempt, err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if string(body) == `{"ok":true}` {
				t.Fatalf("attempt %d: corrupt response survived intact", attempt)
			}
		default:
			clean++
			if err != nil || resp.StatusCode != http.StatusOK {
				t.Fatalf("attempt %d: clean request returned (%v, %v)", attempt, resp, err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if string(body) != `{"ok":true}` {
				t.Fatalf("attempt %d: clean response body %q", attempt, body)
			}
		}
	}
	for name, n := range map[string]int{
		"drops": drops, "after": after, "5xx": errs5xx, "corrupts": corrupts, "clean": clean,
	} {
		if n == 0 {
			t.Fatalf("schedule never exercised %s in 64 attempts; raise the rates", name)
		}
	}
	if got := reg.Counter("chaos_requests_dropped_total").Value(); got != uint64(drops+after) {
		t.Fatalf("chaos_requests_dropped_total = %d, want %d", got, drops+after)
	}
}

// Middleware blacks the coordinator out for exactly the configured
// windows of plan time and serves normally outside them.
func TestMiddlewareBlackout(t *testing.T) {
	reg := obs.New()
	p, err := NewPlan(Config{
		Seed:            7,
		BlackoutWindows: []Window{{Start: 100 * time.Millisecond, End: 200 * time.Millisecond}},
	}, reg)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(1000, 0)
	var mu sync.Mutex
	p.SetClock(func() time.Time { mu.Lock(); defer mu.Unlock(); return now })
	advance := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }

	h := p.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	}))
	srv := httptest.NewServer(h)
	defer srv.Close()

	get := func() int {
		resp, err := http.Get(srv.URL + "/v1/status")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode
	}
	if code := get(); code != http.StatusOK { // latches start at elapsed 0
		t.Fatalf("before the window: %d, want 200", code)
	}
	advance(150 * time.Millisecond)
	if code := get(); code != http.StatusServiceUnavailable {
		t.Fatalf("inside the window: %d, want 503", code)
	}
	advance(100 * time.Millisecond)
	if code := get(); code != http.StatusOK {
		t.Fatalf("after the window: %d, want 200", code)
	}
	if n := reg.Counter("chaos_blackout_rejects_total").Value(); n != 1 {
		t.Fatalf("blackout rejects = %d, want 1", n)
	}
}

// A nil plan is a transparent no-op on both sides of the wire.
func TestNilPlanIsTransparent(t *testing.T) {
	var p *Plan
	if d := p.Decide("w", "/v1/job", 0); d.Faulty() {
		t.Fatalf("nil plan decided %+v", d)
	}
	if p.Blackout(time.Hour) {
		t.Fatal("nil plan blacked out")
	}
	base := http.DefaultTransport
	if got := p.Transport("w", base); got != base {
		t.Fatal("nil plan wrapped the transport")
	}
	h := http.NewServeMux()
	if got := p.Middleware(h); got != http.Handler(h) {
		t.Fatal("nil plan wrapped the handler")
	}
}
