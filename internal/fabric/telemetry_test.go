package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"mfdl/internal/obs"
)

// fakeClock is a mutex-guarded manual clock safe to advance from the
// test goroutine while the coordinator reads it from handler goroutines.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{now: time.Unix(1_700_000_000, 0)} }

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

func (f *fakeClock) Advance(d time.Duration) {
	f.mu.Lock()
	f.now = f.now.Add(d)
	f.mu.Unlock()
}

// postTelemetry pushes one envelope over the wire, the way a worker does.
func postTelemetry(t *testing.T, url string, env telemetryEnvelope) *http.Response {
	t.Helper()
	body, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+pathTelemetry, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func getFleet(t *testing.T, url string) Fleet {
	t.Helper()
	resp, err := http.Get(url + pathFleet)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var f Fleet
	if err := json.NewDecoder(resp.Body).Decode(&f); err != nil {
		t.Fatal(err)
	}
	return f
}

func getMetrics(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + pathMetrics)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// Two real workers, each with its own registry: after the run the
// coordinator's /metrics carries every per-worker series (gauges
// relabeled worker=<id>), and the merged counters equal the sum of the
// per-worker registries — the acceptance identity for fleet metrics.
func TestTelemetryMergedMetrics(t *testing.T) {
	spec := testSpec(t)
	want := localCells(t, spec)
	coord, srv := newFabric(t, spec, t.TempDir(), CoordinatorOptions{})

	regA, regB := obs.New(), obs.New()
	regA.Gauge("fleettest_last_temp").Set(0.25)
	regB.Gauge("fleettest_last_temp").Set(0.75)

	ctx := context.Background()
	errs := make(chan error, 2)
	go func() {
		errs <- Work(ctx, srv.URL, WorkerOptions{Name: "wa", Parallelism: 2, Obs: regA})
	}()
	go func() {
		errs <- Work(ctx, srv.URL, WorkerOptions{Name: "wb", Parallelism: 2, Obs: regB})
	}()
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}

	// Work's deferred final flush ran before it returned, so the
	// coordinator already holds both workers' terminal snapshots.
	text := getMetrics(t, srv.URL)
	wantSum := regA.Counter("fabric_worker_cells_total", obs.L("worker", "wa")).Value() +
		regB.Counter("fabric_worker_cells_total", obs.L("worker", "wb")).Value()
	if int(wantSum) != len(want) {
		t.Fatalf("workers completed %d cells between them, want %d", wantSum, len(want))
	}
	for _, line := range []string{
		fmt.Sprintf(`fabric_worker_cells_total{worker="wa"} %d`,
			regA.Counter("fabric_worker_cells_total", obs.L("worker", "wa")).Value()),
		fmt.Sprintf(`fabric_worker_cells_total{worker="wb"} %d`,
			regB.Counter("fabric_worker_cells_total", obs.L("worker", "wb")).Value()),
		`fleettest_last_temp{worker="wa"} 0.25`,
		`fleettest_last_temp{worker="wb"} 0.75`,
		fmt.Sprintf(`fabric_cells_completed_total %d`, len(want)),
	} {
		if !strings.Contains(text, line+"\n") {
			t.Fatalf("merged /metrics missing %q:\n%s", line, text)
		}
	}

	// The fleet view saw both workers and their pushes landed.
	f := getFleet(t, srv.URL)
	if len(f.Workers) != 2 {
		t.Fatalf("fleet lists %d workers, want 2", len(f.Workers))
	}
	got, err := coord.Result(ctx)
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, got, want)
}

// Liveness is judged from heartbeat age against the lease TTL, and the
// straggler flag from per-worker vs fleet median cell seconds: a slowed
// worker is flagged while healthy, a silent worker decays healthy →
// stale → lost within one TTL.
func TestTelemetryLivenessAndStraggler(t *testing.T) {
	spec := testSpec(t)
	clock := newFakeClock()
	coord, srv := newFabric(t, spec, t.TempDir(), CoordinatorOptions{
		LeaseTTL: 10 * time.Second, Clock: clock.Now,
	})

	for i := 0; i < 6; i++ {
		coord.ObserveCellSeconds("fast", 0.001)
	}
	coord.ObserveCellSeconds("slow", 0.5)
	coord.ObserveCellSeconds("slow", 0.5)
	if resp := postTelemetry(t, srv.URL, telemetryEnvelope{
		Schema: telemetrySchemaVersion, Worker: "fast", Seq: 1, CellsTotal: 6, CellsPerSec: 60,
	}); resp.StatusCode != http.StatusOK {
		t.Fatalf("telemetry push: %s", resp.Status)
	}
	postTelemetry(t, srv.URL, telemetryEnvelope{
		Schema: telemetrySchemaVersion, Worker: "slow", Seq: 1, CellsTotal: 2, CellsPerSec: 2,
	})

	f := getFleet(t, srv.URL)
	if f.Healthy != 2 || f.Stale != 0 || f.Lost != 0 {
		t.Fatalf("fresh fleet = %d/%d/%d healthy/stale/lost, want 2/0/0", f.Healthy, f.Stale, f.Lost)
	}
	if f.CellsPerSec != 62 {
		t.Fatalf("fleet cells/sec = %v, want 62", f.CellsPerSec)
	}
	byName := map[string]FleetWorker{}
	for _, w := range f.Workers {
		byName[w.Worker] = w
	}
	if !byName["slow"].Straggler {
		t.Fatalf("slow worker not flagged as straggler: %+v (fleet p50 %v)", byName["slow"], f.CellSecondsP50)
	}
	if byName["fast"].Straggler {
		t.Fatalf("fast worker wrongly flagged as straggler: %+v", byName["fast"])
	}

	// Silence both workers past half the TTL: stale, still counted in
	// the fleet rate denominator.
	clock.Advance(6 * time.Second)
	if f = getFleet(t, srv.URL); f.Healthy != 0 || f.Stale != 2 || f.Lost != 0 {
		t.Fatalf("aged fleet = %d/%d/%d healthy/stale/lost, want 0/2/0", f.Healthy, f.Stale, f.Lost)
	}
	// One more beat revives "fast"; "slow" crosses the full TTL and is
	// lost — within one TTL of its last heartbeat, as required.
	clock.Advance(5 * time.Second)
	postTelemetry(t, srv.URL, telemetryEnvelope{
		Schema: telemetrySchemaVersion, Worker: "fast", Seq: 2, CellsTotal: 6,
	})
	if f = getFleet(t, srv.URL); f.Healthy != 1 || f.Stale != 0 || f.Lost != 1 {
		t.Fatalf("decayed fleet = %d/%d/%d healthy/stale/lost, want 1/0/1", f.Healthy, f.Stale, f.Lost)
	}

	// The liveness gauges land in /metrics alongside the push counters.
	text := getMetrics(t, srv.URL)
	for _, line := range []string{
		"fabric_workers_healthy 1", "fabric_workers_lost 1",
		"fabric_telemetry_pushes_total 3",
	} {
		if !strings.Contains(text, line+"\n") {
			t.Fatalf("/metrics missing %q:\n%s", line, text)
		}
	}
}

// Bad envelopes are rejected and counted, never stored.
func TestTelemetryRejectsBadEnvelopes(t *testing.T) {
	spec := testSpec(t)
	coord, srv := newFabric(t, spec, t.TempDir(), CoordinatorOptions{})
	if resp := postTelemetry(t, srv.URL, telemetryEnvelope{Schema: 99, Worker: "w"}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("wrong-schema push: %s, want 400", resp.Status)
	}
	if resp := postTelemetry(t, srv.URL, telemetryEnvelope{Schema: telemetrySchemaVersion}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("anonymous push: %s, want 400", resp.Status)
	}
	env := telemetryEnvelope{Schema: telemetrySchemaVersion, Worker: "w"}
	env.Snapshot = json.RawMessage(`{"schema":42}`)
	if resp := postTelemetry(t, srv.URL, env); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad-snapshot push: %s, want 400", resp.Status)
	}
	if f := getFleet(t, srv.URL); len(f.Workers) != 0 {
		t.Fatalf("rejected pushes created %d fleet entries", len(f.Workers))
	}
	if n := coord.obsTelemetryBad.Value(); n != 3 {
		t.Fatalf("bad-push counter = %d, want 3", n)
	}
}

// Spans shipped inside telemetry envelopes are re-emitted into the
// coordinator's trace sink with their origin pids intact, so one Chrome
// trace interleaves every process of the fleet.
func TestTelemetryTraceAssembly(t *testing.T) {
	spec := testSpec(t)
	reg := obs.New()
	var trace bytes.Buffer
	tw := obs.NewTraceWriter(&trace)
	reg.SetSpanSink(tw)
	_, srv := newFabric(t, spec, t.TempDir(), CoordinatorOptions{Obs: reg})

	base := time.Unix(1_700_000_000, 0)
	postTelemetry(t, srv.URL, telemetryEnvelope{
		Schema: telemetrySchemaVersion, Worker: "wa", Seq: 1,
		Spans: []wireSpan{{
			Name: "cell", Pid: 101, StartNano: base.UnixNano(),
			DurNano: int64(5 * time.Millisecond),
			Labels:  []obs.Label{obs.L("worker", "wa")},
		}},
	})
	postTelemetry(t, srv.URL, telemetryEnvelope{
		Schema: telemetrySchemaVersion, Worker: "wb", Seq: 1,
		Spans: []wireSpan{{
			Name: "cell", Pid: 202, StartNano: base.Add(time.Millisecond).UnixNano(),
			DurNano: int64(3 * time.Millisecond),
		}},
	})
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	out := trace.String()
	if !strings.Contains(out, `"pid":101`) || !strings.Contains(out, `"pid":202`) {
		t.Fatalf("assembled trace missing per-process pids:\n%s", out)
	}
	var events []map[string]any
	if err := json.Unmarshal(trace.Bytes(), &events); err != nil {
		t.Fatalf("assembled trace is not valid JSON: %v\n%s", err, out)
	}
	if len(events) != 2 {
		t.Fatalf("assembled trace has %d events, want 2", len(events))
	}
}

// End to end: a worker's SpanCollector drains into its heartbeat pushes
// and the spans land in the coordinator's trace.
func TestWorkerShipsCollectedSpans(t *testing.T) {
	spec := testSpec(t)
	creg := obs.New()
	var trace bytes.Buffer
	tw := obs.NewTraceWriter(&trace)
	creg.SetSpanSink(tw)
	_, srv := newFabric(t, spec, t.TempDir(), CoordinatorOptions{Obs: creg})

	wreg := obs.New()
	col := obs.NewSpanCollector(0)
	wreg.SetSpanSink(col)
	wreg.SetSpanIdentity(4242, obs.L("worker", "wa"))
	sp := wreg.StartSpan("warmup")
	sp.End()

	if err := Work(context.Background(), srv.URL, WorkerOptions{
		Name: "wa", Obs: wreg, Spans: col,
	}); err != nil {
		t.Fatal(err)
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	out := trace.String()
	if !strings.Contains(out, `"name":"warmup"`) || !strings.Contains(out, `"pid":4242`) {
		t.Fatalf("worker spans never reached the coordinator trace:\n%s", out)
	}
}

// alwaysDrop fails every /complete post without delivering it: the cell
// result is genuinely lost and the worker must say so rather than count
// the cell as done.
type alwaysDrop struct{}

func (alwaysDrop) RoundTrip(req *http.Request) (*http.Response, error) {
	if strings.HasSuffix(req.URL.Path, pathComplete) {
		return nil, fmt.Errorf("connection reset before write")
	}
	return http.DefaultTransport.RoundTrip(req)
}

// Satellite fix: a completion post that fails after all retries is
// surfaced — counted in fabric_completions_failed_total and returned as
// an error — instead of the pre-fix silent loss.
func TestWorkerCompletionLossSurfaces(t *testing.T) {
	spec := testSpec(t)
	reg := obs.New()
	_, srv := newFabric(t, spec, t.TempDir(), CoordinatorOptions{})

	err := Work(context.Background(), srv.URL, WorkerOptions{
		Name: "lossy", Obs: reg, Heartbeat: -1,
		Client:  &http.Client{Transport: alwaysDrop{}},
		Retries: 1, Backoff: time.Millisecond,
	})
	if err == nil || !strings.Contains(err.Error(), "completion lost") {
		t.Fatalf("lost completion returned %v, want a completion-lost error", err)
	}
	if n := reg.Counter("fabric_completions_failed_total", obs.L("worker", "lossy")).Value(); n == 0 {
		t.Fatal("fabric_completions_failed_total never incremented")
	}
	if n := reg.Counter("fabric_worker_cells_total", obs.L("worker", "lossy")).Value(); n != 0 {
		t.Fatalf("worker counted %d cells as done despite losing them", n)
	}
}

// Telemetry traffic is pure observation: with fast heartbeats, span
// shipping and concurrent /metrics + /v1/fleet scrapes hammering the
// coordinator, the assembled grid is still bit-identical to a local run.
// This is the tier-2 -race hammer.
func TestTelemetryConcurrentWithTraffic(t *testing.T) {
	spec := testSpec(t)
	want := localCells(t, spec)
	creg := obs.New()
	var trace bytes.Buffer
	creg.SetSpanSink(obs.NewTraceWriter(&trace))
	coord, srv := newFabric(t, spec, t.TempDir(), CoordinatorOptions{Obs: creg})

	stop := make(chan struct{})
	var scrapes sync.WaitGroup
	scrapes.Add(1)
	go func() {
		defer scrapes.Done()
		for {
			select {
			case <-stop:
				return
			default:
				getMetrics(t, srv.URL)
				getFleet(t, srv.URL)
			}
		}
	}()

	ctx := context.Background()
	errs := make(chan error, 3)
	for i := 0; i < 3; i++ {
		go func(i int) {
			wreg := obs.New()
			col := obs.NewSpanCollector(0)
			wreg.SetSpanSink(col)
			wreg.SetSpanIdentity(1000+i, obs.L("worker", fmt.Sprintf("w%d", i)))
			errs <- Work(ctx, srv.URL, WorkerOptions{
				Name: fmt.Sprintf("w%d", i), Parallelism: 2,
				Obs: wreg, Spans: col, Heartbeat: time.Millisecond,
			})
		}(i)
	}
	for i := 0; i < 3; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	scrapes.Wait()

	got, err := coord.Result(ctx)
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, got, want)
}

// A worker restarting under the same name starts a new epoch with seq
// back at 1; the coordinator accepts the new run immediately instead of
// dropping its pushes until seq outruns the previous run's counter.
func TestTelemetryRestartedWorkerSupersedes(t *testing.T) {
	spec := testSpec(t)
	_, srv := newFabric(t, spec, t.TempDir(), CoordinatorOptions{})
	postTelemetry(t, srv.URL, telemetryEnvelope{
		Schema: telemetrySchemaVersion, Worker: "w", Epoch: 100, Seq: 57, CellsTotal: 40,
	})
	// The restarted run: newer epoch, sequence reset to 1.
	postTelemetry(t, srv.URL, telemetryEnvelope{
		Schema: telemetrySchemaVersion, Worker: "w", Epoch: 200, Seq: 1, CellsTotal: 3,
	})
	f := getFleet(t, srv.URL)
	if len(f.Workers) != 1 || f.Workers[0].CellsTotal != 3 {
		t.Fatalf("fleet after restart = %+v, want the new run's 3 cells", f.Workers)
	}
	// A straggling beat from the dead run must not roll the table back.
	postTelemetry(t, srv.URL, telemetryEnvelope{
		Schema: telemetrySchemaVersion, Worker: "w", Epoch: 100, Seq: 58, CellsTotal: 41,
	})
	if f = getFleet(t, srv.URL); f.Workers[0].CellsTotal != 3 {
		t.Fatalf("stale-epoch push rolled the table back: %+v", f.Workers)
	}
}

// A snapshot that fails to merge partway through (a counter family that
// merges cleanly sorted ahead of a histogram whose bounds conflict) must
// leave no trace in the served /metrics view — all or nothing per worker.
func TestTelemetryUnmergeableSnapshotLeavesNoPartialData(t *testing.T) {
	spec := testSpec(t)
	coord, srv := newFabric(t, spec, t.TempDir(), CoordinatorOptions{})
	// The coordinator already owns fabric_cell_seconds with the standard
	// bounds.
	coord.ObserveCellSeconds("w", 0.01)
	wreg := obs.New()
	wreg.Counter("aaa_canary_total").Add(5)
	wreg.Histogram("fabric_cell_seconds", []float64{1, 2, 3}).Observe(0.5)
	snap, err := obs.EncodeSnapshot(wreg.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	postTelemetry(t, srv.URL, telemetryEnvelope{
		Schema: telemetrySchemaVersion, Worker: "w", Seq: 1, Snapshot: snap,
	})
	if text := getMetrics(t, srv.URL); strings.Contains(text, "aaa_canary_total") {
		t.Fatalf("half-merged worker data leaked into /metrics:\n%s", text)
	}
	if n := coord.obsTelemetryUnmerged.Value(); n != 1 {
		t.Fatalf("unmerged counter = %d, want 1", n)
	}
}
