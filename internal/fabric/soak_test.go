package fabric

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"mfdl/internal/fabric/chaos"
	"mfdl/internal/obs"
	"mfdl/internal/runner"
)

// The chaos soak: a full distributed sim-replica sweep under sustained
// seeded chaos — dropped, delayed, 5xx-substituted and corrupted fabric
// messages on the worker side, server-side injected errors plus a
// coordinator blackout window, and one worker killed mid-run — must
// yield payload bytes identical to a clean single-process run, with no
// surviving worker exiting non-parked. The fault schedule itself is a
// pure function of the chaos seed (pinned byte-for-byte by the chaos
// package's golden test), so a green soak is a reproducible claim.
func TestChaosSoakDistributedSimReplica(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak skipped in -short mode")
	}
	spec := simTestSpec(t, 11, 8) // 2 flow cells × 8 replicas = 16 cells
	ctx := context.Background()
	want, err := runner.RunJobPayloads(ctx, spec, runner.JobEnv{}, runner.Options{})
	if err != nil {
		t.Fatal(err)
	}

	// Server-side chaos: injected 5xx and delays, plus a blackout window
	// early in the run — every request during it is rejected, long enough
	// to blow through every worker's retry budget and force a park.
	serverReg := obs.New()
	serverPlan, err := chaos.NewPlan(chaos.Config{
		Seed:         23,
		Error5xxProb: 0.05,
		DelayMax:     3 * time.Millisecond,
		BlackoutWindows: []chaos.Window{
			{Start: 50 * time.Millisecond, End: 300 * time.Millisecond},
		},
	}, serverReg)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.New()
	coord, _ := newFabric(t, spec, t.TempDir(), CoordinatorOptions{
		Obs: reg, LeaseCells: 3, LeaseTTL: 500 * time.Millisecond,
	})
	srv := httptest.NewServer(serverPlan.Middleware(coord.Handler()))
	defer srv.Close()

	// Worker-side chaos: one seeded plan, per-worker transports — the
	// schedule is keyed by (worker, endpoint, attempt), so every worker
	// meets its own reproducible weather.
	workerReg := obs.New()
	workerPlan, err := chaos.NewPlan(chaos.Config{
		Seed:         23,
		DropProb:     0.15,
		DelayMax:     5 * time.Millisecond,
		Error5xxProb: 0.1,
		CorruptProb:  0.1,
	}, workerReg)
	if err != nil {
		t.Fatal(err)
	}

	const workers = 4
	errs := make(chan error, workers)
	for i := 0; i < workers; i++ {
		name := fmt.Sprintf("soak-w%d", i)
		go func() {
			errs <- Work(ctx, srv.URL, WorkerOptions{
				Name: name, Parallelism: 2, Obs: reg,
				Client:    &http.Client{Transport: workerPlan.Transport(name, nil)},
				Retries:   3,
				Backoff:   2 * time.Millisecond,
				MaxOutage: 60 * time.Second,
				Heartbeat: 40 * time.Millisecond,
			})
		}()
	}
	// The casualty: killed the moment it is granted its first lease, so
	// its cells have to be reaped and stolen mid-chaos.
	dctx, kill := context.WithCancel(ctx)
	doomed := Work(dctx, srv.URL, WorkerOptions{
		Name: "soak-doomed", Parallelism: 2, Obs: reg,
		Client:    &http.Client{Transport: workerPlan.Transport("soak-doomed", nil)},
		Retries:   3,
		Backoff:   2 * time.Millisecond,
		MaxOutage: 60 * time.Second,
		OnLease:   func(id string, cells []int) { kill() },
	})
	if doomed != context.Canceled {
		t.Fatalf("doomed worker returned %v, want context.Canceled", doomed)
	}
	for i := 0; i < workers; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("a surviving worker exited non-parked: %v", err)
		}
	}

	got, err := coord.Payloads(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("soak shipped %d payloads, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("payload %d differs from the clean local run under chaos", i)
		}
	}

	// The chaos must actually have happened: every worker-side fault kind
	// fired, the blackout rejected traffic, and at least one worker rode
	// it out parked.
	for _, c := range []struct {
		reg  *obs.Registry
		name string
	}{
		{workerReg, "chaos_requests_dropped_total"},
		{workerReg, "chaos_errors_injected_total"},
		{workerReg, "chaos_responses_corrupted_total"},
		{workerReg, "chaos_requests_delayed_total"},
		{serverReg, "chaos_blackout_rejects_total"},
	} {
		if c.reg.Counter(c.name).Value() == 0 {
			t.Errorf("%s = 0; the soak never exercised that fault", c.name)
		}
	}
	if sec := reg.Gauge("fabric_worker_parked_seconds").Value(); sec <= 0 {
		t.Error("no worker ever parked; the blackout missed the run")
	}
	if n := reg.Counter("fabric_leases_expired_total").Value(); n == 0 {
		t.Error("the doomed worker's lease was never reaped")
	}
}
