package fabric

import (
	"context"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"mfdl/internal/fluid"
	"mfdl/internal/runner"
	"mfdl/internal/runner/diskcache"
	"mfdl/internal/scheme"
)

// BenchmarkFabricThroughput measures end-to-end grid throughput through
// the fabric protocol — coordinator HTTP server, lease grants, cell
// evaluation, completion posts, result assembly — at several worker
// counts. The custom cells/sec metric is what `make bench` records in
// the benchmark-trajectory JSON; ns/op is a full job at that worker
// count.
func BenchmarkFabricThroughput(b *testing.B) {
	spec := runner.JobSpec{
		Schema: runner.JobSpecSchemaVersion,
		Kind:   runner.JobKindFluidSweep,
		Base: runner.Key{
			Scheme: scheme.MTCD, Params: fluid.PaperParams,
			K: 5, P: 0.9, Lambda0: 1,
		},
		Dims: []runner.Dim{
			{Name: "p", Values: runner.Linspace(0.05, 0.95, 16)},
			{Name: "lambda0", Values: []float64{0.5, 1, 2}},
		},
		Seed: 11,
	}
	if err := spec.Validate(); err != nil {
		b.Fatal(err)
	}
	grid, err := spec.Grid()
	if err != nil {
		b.Fatal(err)
	}
	cells := grid.Size()

	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			ctx := context.Background()
			for i := 0; i < b.N; i++ {
				store, err := diskcache.OpenCheckpoint(b.TempDir())
				if err != nil {
					b.Fatal(err)
				}
				// A short lease TTL keeps the workers' empty-queue retry
				// poll (TTL/4) from dwarfing the compute being measured;
				// cells finish in well under the TTL, so nothing expires.
				coord, err := NewCoordinator(spec, store, CoordinatorOptions{
					LeaseTTL: 250 * time.Millisecond,
				})
				if err != nil {
					b.Fatal(err)
				}
				srv := httptest.NewServer(coord.Handler())
				errs := make(chan error, workers)
				for w := 0; w < workers; w++ {
					go func(w int) {
						errs <- Work(ctx, srv.URL, WorkerOptions{
							Name: fmt.Sprintf("bench-w%d", w),
						})
					}(w)
				}
				for w := 0; w < workers; w++ {
					if err := <-errs; err != nil {
						b.Fatal(err)
					}
				}
				if _, err := coord.Result(ctx); err != nil {
					b.Fatal(err)
				}
				srv.Close()
			}
			b.ReportMetric(float64(cells*b.N)/b.Elapsed().Seconds(), "cells/sec")
		})
	}
}

// BenchmarkSimReplicaThroughput is the same end-to-end protocol
// measurement for the sim-replica kind: executable cells are
// (grid cell × replica) pairs, each a full flow-level simulation, so this
// tracks how fast the fabric ships simulator replicas rather than fluid
// solves.
func BenchmarkSimReplicaThroughput(b *testing.B) {
	spec := simTestSpec(b, 11, 32) // 2 grid cells × R=32 = 64 executable cells
	cells, err := spec.CellCount()
	if err != nil {
		b.Fatal(err)
	}

	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			ctx := context.Background()
			for i := 0; i < b.N; i++ {
				store, err := diskcache.OpenCheckpoint(b.TempDir())
				if err != nil {
					b.Fatal(err)
				}
				coord, err := NewCoordinator(spec, store, CoordinatorOptions{
					LeaseTTL: 250 * time.Millisecond,
				})
				if err != nil {
					b.Fatal(err)
				}
				srv := httptest.NewServer(coord.Handler())
				errs := make(chan error, workers)
				for w := 0; w < workers; w++ {
					go func(w int) {
						errs <- Work(ctx, srv.URL, WorkerOptions{
							Name: fmt.Sprintf("bench-w%d", w), Parallelism: 2,
						})
					}(w)
				}
				// The job is done when the last cell lands; the workers'
				// final "anything left?" poll (up to TTL/4 of idle sleep) is
				// protocol wind-down, not throughput, so it stays off the
				// clock.
				if err := coord.Wait(ctx); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				for w := 0; w < workers; w++ {
					if err := <-errs; err != nil {
						b.Fatal(err)
					}
				}
				if _, err := coord.Payloads(ctx); err != nil {
					b.Fatal(err)
				}
				srv.Close()
				b.StartTimer()
			}
			b.ReportMetric(float64(cells*b.N)/b.Elapsed().Seconds(), "cells/sec")
		})
	}
}
