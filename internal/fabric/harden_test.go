package fabric

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"mfdl/internal/fabric/chaos"
	"mfdl/internal/fluid"
	"mfdl/internal/obs"
	"mfdl/internal/rng"
	"mfdl/internal/runner"
	"mfdl/internal/runner/diskcache"
	"mfdl/internal/scheme"
)

// slowKind is a test-only job kind whose cells sleep for a configured
// time before returning a trivially deterministic payload — the knob the
// lease-renewal tests turn to make a cell outlast the lease TTL without
// touching any real simulator.
const slowKindName = "fabric-test-slow"

type slowParams struct {
	SleepMilli int `json:"sleep_ms"`
}

func init() {
	runner.RegisterJobKind(runner.JobKind{
		Name:  slowKindName,
		Cells: func(spec runner.JobSpec) (int, error) { return len(spec.Dims[0].Values), nil },
		Evaluate: func(ctx context.Context, spec runner.JobSpec, env runner.JobEnv, cell int, src *rng.Source) ([]byte, error) {
			var p slowParams
			if err := json.Unmarshal(spec.Params, &p); err != nil {
				return nil, err
			}
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(time.Duration(p.SleepMilli) * time.Millisecond):
			}
			return []byte(fmt.Sprintf(`{"cell":%d}`, cell)), nil
		},
	})
}

// slowSpec is a job of `cells` slow cells sleeping sleepMilli each.
func slowSpec(t *testing.T, cells, sleepMilli int) runner.JobSpec {
	t.Helper()
	params, err := json.Marshal(slowParams{SleepMilli: sleepMilli})
	if err != nil {
		t.Fatal(err)
	}
	values := make([]float64, cells)
	for i := range values {
		values[i] = 0.1 + 0.8*float64(i)/float64(cells)
	}
	spec := runner.JobSpec{
		Schema: runner.JobSpecSchemaVersion,
		Kind:   slowKindName,
		Base: runner.Key{
			Scheme: scheme.MTCD, Params: fluid.PaperParams,
			K: 5, P: 0.9, Lambda0: 1,
		},
		Dims:   []runner.Dim{{Name: "p", Values: values}},
		Seed:   3,
		Params: params,
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	return spec
}

// A deliberately slow worker holding one lease longer than the TTL is
// kept alive by TTL/2 renewals: the lease is never reaped, no thief ever
// steals a cell, and nothing is computed twice.
func TestLeaseRenewalKeepsSlowWorkerAlive(t *testing.T) {
	const ttl = 300 * time.Millisecond
	spec := slowSpec(t, 2, 450) // each cell outlasts the TTL half over
	reg := obs.New()
	coord, srv := newFabric(t, spec, t.TempDir(), CoordinatorOptions{
		LeaseTTL: ttl, LeaseCells: 2, Obs: reg,
	})

	ctx := context.Background()
	errs := make(chan error, 2)
	leased := make(chan struct{})
	var leasedOnce atomic.Bool
	go func() {
		errs <- Work(ctx, srv.URL, WorkerOptions{
			Name: "tortoise", Parallelism: 2, Obs: reg,
			OnLease: func(id string, cells []int) {
				if !leasedOnce.Swap(true) {
					close(leased)
				}
			},
		})
	}()
	// The thief only starts polling once the tortoise holds the whole
	// job; renewal means it never gets a cell.
	<-leased
	go func() {
		errs <- Work(ctx, srv.URL, WorkerOptions{Name: "thief", Parallelism: 4, Obs: reg})
	}()
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if _, err := coord.Payloads(ctx); err != nil {
		t.Fatal(err)
	}
	if n := reg.Counter("fabric_leases_expired_total").Value(); n != 0 {
		t.Fatalf("%d leases expired despite renewal", n)
	}
	if n := reg.Counter("fabric_cells_duplicate_total").Value(); n != 0 {
		t.Fatalf("%d duplicate completions; a cell was computed twice", n)
	}
	if n := reg.Counter("fabric_leases_renewed_total").Value(); n == 0 {
		t.Fatal("no lease was ever renewed; the slow worker survived by luck")
	}
	if n := reg.Counter("fabric_worker_cells_total", obs.L("worker", "thief")).Value(); n != 0 {
		t.Fatalf("thief computed %d cells that renewal should have protected", n)
	}
}

// dropPath fails every request to one path with a transport error,
// passing everything else through.
type dropPath struct {
	path string
}

func (d *dropPath) RoundTrip(req *http.Request) (*http.Response, error) {
	if strings.HasSuffix(req.URL.Path, d.path) {
		return nil, fmt.Errorf("renewal suppressed")
	}
	return http.DefaultTransport.RoundTrip(req)
}

// The contrast run: with renewals suppressed, the same slow lease is
// reaped at the TTL — proving the renewal path, not timing luck, is what
// kept the tortoise alive above.
func TestLeaseExpiresWithoutRenewal(t *testing.T) {
	const ttl = 300 * time.Millisecond
	spec := slowSpec(t, 2, 450)
	reg := obs.New()
	coord, srv := newFabric(t, spec, t.TempDir(), CoordinatorOptions{
		LeaseTTL: ttl, LeaseCells: 2, Obs: reg,
	})
	err := Work(context.Background(), srv.URL, WorkerOptions{
		Name: "mute", Parallelism: 2, Obs: reg,
		Client: &http.Client{Transport: &dropPath{path: pathRenew}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := coord.Payloads(context.Background()); err != nil {
		t.Fatal(err)
	}
	if n := reg.Counter("fabric_leases_expired_total").Value(); n == 0 {
		t.Fatal("lease survived without renewal; the renewal test proves nothing")
	}
}

// A renewal for an expired (or stolen) lease is refused with 409 — it
// cannot be revived once its cells may be in another worker's hands.
func TestRenewExpiredLeaseRefused(t *testing.T) {
	spec := testSpec(t)
	now := time.Unix(0, 0)
	store, err := diskcache.OpenCheckpoint(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	coord, err := NewCoordinator(spec, store, CoordinatorOptions{
		LeaseTTL: time.Second,
		Clock:    func() time.Time { return now },
	})
	if err != nil {
		t.Fatal(err)
	}
	l, _, _ := coord.Lease("w", 2)
	if l == nil {
		t.Fatal("no lease granted")
	}
	if err := coord.Renew("other", l.id); err == nil {
		t.Fatal("another worker renewed someone else's lease")
	}
	if err := coord.Renew("w", l.id); err != nil {
		t.Fatalf("live renewal refused: %v", err)
	}
	now = now.Add(2 * time.Second) // past the renewed TTL
	if err := coord.Renew("w", l.id); err == nil {
		t.Fatal("expired lease was revived by renewal")
	}
}

// swapHandler atomically redirects an httptest server between handlers —
// the same address serving a sequence of coordinators, like a restarted
// process behind one host:port.
type swapHandler struct {
	v atomic.Value // handlerBox, so differing concrete handler types coexist
}

type handlerBox struct{ h http.Handler }

func (s *swapHandler) Set(h http.Handler) { s.v.Store(handlerBox{h}) }
func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.v.Load().(handlerBox).h.ServeHTTP(w, r)
}

// A completion POSTed exactly as the coordinator restarts is never
// silently dropped: the in-flight request fails, the worker retries
// (through a lossy chaos transport for good measure), and the successor
// coordinator — same address, same checkpoint store — absorbs it.
func TestCoordinatorRestartAbsorbsInflightCompletions(t *testing.T) {
	spec := testSpec(t)
	want := localCells(t, spec)
	dir := t.TempDir()
	// A chaos-dropped lease *grant* orphans its cells until the TTL reaps
	// them — keep the TTL short so that recovery is part of the test, not
	// a 30s stall.
	restartOpts := CoordinatorOptions{LeaseTTL: 500 * time.Millisecond}
	store1, err := diskcache.OpenCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	coord1, err := NewCoordinator(spec, store1, restartOpts)
	if err != nil {
		t.Fatal(err)
	}
	sh := &swapHandler{}
	var coord2 atomic.Pointer[Coordinator]
	var restartErr atomic.Value
	var tripped atomic.Bool
	gate := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == pathComplete && !tripped.Swap(true) {
			// The restart happens under this completion: the old
			// coordinator vanishes, a successor opens the same store, and
			// this request is answered with the 503 a dying process would
			// produce. The worker must retry it into the successor.
			store2, err := diskcache.OpenCheckpoint(dir)
			if err == nil {
				var c2 *Coordinator
				c2, err = NewCoordinator(spec, store2, restartOpts)
				if err == nil {
					coord2.Store(c2)
					sh.Set(c2.Handler())
				}
			}
			if err != nil {
				restartErr.Store(err)
			}
			http.Error(w, "coordinator restarting", http.StatusServiceUnavailable)
			return
		}
		sh.ServeHTTP(w, r)
	})
	sh.Set(coord1.Handler())
	srv := httptest.NewServer(gate)
	defer srv.Close()

	plan, err := chaos.NewPlan(chaos.Config{
		Seed: 17, DropProb: 0.1, DelayMax: 2 * time.Millisecond,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	err = Work(context.Background(), srv.URL, WorkerOptions{
		Name: "persistent", Parallelism: 2,
		Client:  &http.Client{Transport: plan.Transport("persistent", nil)},
		Retries: 8, Backoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if e := restartErr.Load(); e != nil {
		t.Fatalf("restart failed: %v", e)
	}
	c2 := coord2.Load()
	if c2 == nil {
		t.Fatal("no completion ever hit the restart window")
	}
	got, err := c2.Result(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, got, want)
}

// A coordinator outage longer than the retry budget but shorter than
// MaxOutage parks the worker instead of killing it: the worker rides out
// the blackout, rejoins, and finishes the job — and the parked time is
// on the gauge.
func TestParkedWorkerRejoinsAfterBlackout(t *testing.T) {
	spec := testSpec(t)
	want := localCells(t, spec)
	reg := obs.New()
	coord, _ := newFabric(t, spec, t.TempDir(), CoordinatorOptions{Obs: reg})

	sh := &swapHandler{}
	live := coord.Handler()
	down := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "blackout", http.StatusServiceUnavailable)
	})
	sh.Set(live)
	outage := httptest.NewServer(sh)
	defer outage.Close()

	// Black the coordinator out after the first completed cell, for well
	// past the worker's entire retry budget.
	var once atomic.Bool
	err := Work(context.Background(), outage.URL, WorkerOptions{
		Name: "patient", Obs: reg,
		Retries: 1, Backoff: time.Millisecond,
		MaxOutage: 30 * time.Second,
		OnCell: func(cell int) {
			if !once.Swap(true) {
				sh.Set(down)
				time.AfterFunc(250*time.Millisecond, func() { sh.Set(live) })
			}
		},
	})
	if err != nil {
		t.Fatalf("worker died instead of parking: %v", err)
	}
	got, err := coord.Result(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, got, want)
	if sec := reg.Gauge("fabric_worker_parked_seconds").Value(); sec <= 0 {
		t.Fatal("worker finished without ever parking; the blackout missed")
	}
}

// An outage outlasting MaxOutage still kills the worker — parking is a
// bounded grace, not an infinite hang.
func TestParkGivesUpPastMaxOutage(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "gone for good", http.StatusServiceUnavailable)
	}))
	defer srv.Close()
	start := time.Now()
	err := Work(context.Background(), srv.URL, WorkerOptions{
		Name: "abandoned", Retries: -1, Backoff: time.Millisecond,
		MaxOutage: 150 * time.Millisecond,
	})
	if err == nil || !strings.Contains(err.Error(), "max outage") {
		t.Fatalf("Work() = %v, want a max-outage error", err)
	}
	if e := time.Since(start); e > 5*time.Second {
		t.Fatalf("park took %s to give up on a 150ms MaxOutage", e)
	}
}

// A parked worker advertises its state: the telemetry envelope carries
// parked=true, and /v1/fleet classifies the worker as parked rather than
// healthy or stale.
func TestFleetShowsParkedWorker(t *testing.T) {
	spec := testSpec(t)
	store, err := diskcache.OpenCheckpoint(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	coord, err := NewCoordinator(spec, store, CoordinatorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	env := telemetryEnvelope{
		Schema: telemetrySchemaVersion, Worker: "limbo", Seq: 1,
		Parked: true, ParkedSeconds: 2.5,
	}
	if err := coord.ingestTelemetry(env); err != nil {
		t.Fatal(err)
	}
	f := coord.Fleet()
	if f.Parked != 1 || len(f.Workers) != 1 {
		t.Fatalf("fleet = %+v, want one parked worker", f)
	}
	if w := f.Workers[0]; w.State != WorkerParked || w.ParkedSeconds != 2.5 {
		t.Fatalf("worker row = %+v, want state=parked parked_seconds=2.5", w)
	}
}

// WorkLoop survives transient probe failures: one blip between rounds no
// longer reads as "coordinator retired", only GonePolls consecutive
// failures do.
func TestWorkLoopToleratesTransientProbeFailures(t *testing.T) {
	spec := testSpec(t)
	coord, _ := newFabric(t, spec, t.TempDir(), CoordinatorOptions{})
	live := coord.Handler()

	// The job endpoint fails twice in a row (under GonePolls=3), then
	// recovers. Fetch 1 is the loop's first probe, fetch 2 is Work's own
	// spec download, so the blips land on the post-round probes 3 and 4.
	var probes atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == pathJob {
			if n := probes.Add(1); n == 3 || n == 4 {
				http.Error(w, "blip", http.StatusServiceUnavailable)
				return
			}
		}
		live.ServeHTTP(w, r)
	}))
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- WorkLoop(ctx, srv.URL, WorkerOptions{
			Name: "loop", Retries: -1, Backoff: time.Millisecond,
		})
	}()
	// The loop must complete the job despite the blips, then keep polling
	// (not return nil) until cancelled.
	if err := coord.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		t.Fatalf("WorkLoop ended early with %v; transient blips read as retirement", err)
	case <-time.After(200 * time.Millisecond):
	}
	cancel()
	if err := <-done; err != context.Canceled {
		t.Fatalf("cancelled WorkLoop returned %v", err)
	}
}

// Once the coordinator is down for GonePolls consecutive probes, the
// loop concludes the service retired and returns nil.
func TestWorkLoopEndsAfterSustainedProbeFailure(t *testing.T) {
	spec := testSpec(t)
	coord, srv := newFabric(t, spec, t.TempDir(), CoordinatorOptions{})
	if err := Work(context.Background(), srv.URL, WorkerOptions{Name: "pre"}); err != nil {
		t.Fatal(err)
	}
	if err := coord.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	srv.Close() // the coordinator retires for good
	done := make(chan error, 1)
	go func() {
		done <- WorkLoop(context.Background(), srv.URL, WorkerOptions{
			Name: "loop", Retries: -1, Backoff: time.Millisecond,
		})
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("WorkLoop returned %v, want nil after sustained failure", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("WorkLoop never concluded the coordinator retired")
	}
}

// Oversized bodies on the control endpoints are refused by the cap, not
// buffered.
func TestFabricBodyCaps(t *testing.T) {
	spec := testSpec(t)
	_, srv := newFabric(t, spec, t.TempDir(), CoordinatorOptions{})
	huge := strings.Repeat("x", maxControlBody+1)
	resp, err := http.Post(srv.URL+pathLease, "application/json", strings.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest && resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized lease body got %d, want a 4xx rejection", resp.StatusCode)
	}
}
