package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"mfdl/internal/obs"
	"mfdl/internal/runner"
	"mfdl/internal/runner/diskcache"
)

// WorkerOptions tune one worker loop.
type WorkerOptions struct {
	// Name identifies the worker in leases and metrics (default
	// "worker-<pid>").
	Name string
	// Parallelism bounds how many cells of a lease are computed
	// concurrently, and is also the lease size the worker asks for
	// (default 1).
	Parallelism int
	// Client is the HTTP client (default http.DefaultClient).
	Client *http.Client
	// Retries is how many times a transport error or 5xx response is
	// retried with exponential backoff before the worker gives up
	// (default 4; negative disables retries). 4xx responses never retry —
	// they mean this worker and the coordinator disagree about the job.
	Retries int
	// Backoff is the initial retry delay (default 50ms), doubling per
	// attempt.
	Backoff time.Duration
	// Obs, when non-nil, receives the worker's fabric_worker_cells_total
	// counter plus the solve cache's counters.
	Obs *obs.Registry
	// Samples, when non-nil, is the worker's replica-sample store:
	// sim-replica cells whose samples are already stored are replayed
	// instead of simulated, and freshly simulated samples are persisted
	// for later runs. Fluid cells ignore it.
	Samples *diskcache.SampleStore
	// OnLease, when non-nil, observes every granted lease.
	OnLease func(id string, cells []int)
	// OnCell, when non-nil, observes every completed cell before its
	// result is posted.
	OnCell func(cell int)
}

// withDefaults fills in the zero-value defaults.
func (o WorkerOptions) withDefaults() WorkerOptions {
	if o.Name == "" {
		o.Name = fmt.Sprintf("worker-%d", os.Getpid())
	}
	if o.Parallelism <= 0 {
		o.Parallelism = 1
	}
	if o.Client == nil {
		o.Client = http.DefaultClient
	}
	if o.Retries == 0 {
		o.Retries = 4
	}
	if o.Retries < 0 {
		o.Retries = 0
	}
	if o.Backoff <= 0 {
		o.Backoff = 50 * time.Millisecond
	}
	return o
}

// Work runs one worker against the coordinator at baseURL until the job
// completes (returns nil), the context is cancelled (returns ctx.Err()),
// or a cell or protocol error is hit. The worker fetches the job spec
// once, then loops: lease a batch of cells, compute each through the
// spec's registered job kind (runner.EvaluateJobCell) with its pre-split
// random stream, and post each result as the same diskcache.Entry
// envelope the checkpoint store persists. A spec whose kind this build
// does not register is rejected up front — a worker never leases cells it
// cannot execute.
func Work(ctx context.Context, baseURL string, opts WorkerOptions) error {
	opts = opts.withDefaults()
	w := &worker{opts: opts, base: strings.TrimSuffix(baseURL, "/")}
	w.cells = opts.Obs.Counter("fabric_worker_cells_total", obs.L("worker", opts.Name))

	data, err := w.do(ctx, http.MethodGet, pathJob, nil, nil)
	if err != nil {
		return err
	}
	spec, err := runner.ParseJobSpec(data)
	if err != nil {
		return err
	}
	w.spec = spec
	w.fp = spec.Fingerprint()
	w.env = runner.JobEnv{
		Cache:   runner.NewCache().WithObs(opts.Obs),
		Samples: opts.Samples,
		Obs:     opts.Obs,
	}

	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		body, _ := json.Marshal(leaseRequest{Worker: opts.Name, Max: opts.Parallelism})
		data, err := w.do(ctx, http.MethodPost, pathLease, body, nil)
		if err != nil {
			return err
		}
		var resp leaseResponse
		if err := json.Unmarshal(data, &resp); err != nil {
			return fmt.Errorf("fabric: lease response: %w", err)
		}
		switch {
		case resp.Done:
			return nil
		case resp.Lease == nil:
			retry := time.Duration(resp.RetryMilli) * time.Millisecond
			if retry <= 0 {
				retry = 25 * time.Millisecond
			}
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(retry):
			}
		default:
			if opts.OnLease != nil {
				opts.OnLease(resp.Lease.ID, resp.Lease.Cells)
			}
			if err := w.runLease(ctx, resp.Lease.Cells); err != nil {
				return err
			}
		}
	}
}

// WorkLoop serves a coordinator address that hands out a sequence of jobs
// over time — e.g. the growing rounds of a sequential-stopping sweep,
// where each round is a fresh coordinator (new replica count, new
// fingerprint) at the same address. It runs Work on the current job, then
// polls the job endpoint until a spec with a new fingerprint appears and
// works on that, and so on. It returns nil once the coordinator goes away
// (the serve process shut down after its last round), ctx.Err() on
// cancellation, or the first cell/protocol error.
func WorkLoop(ctx context.Context, baseURL string, opts WorkerOptions) error {
	opts = opts.withDefaults()
	poll := 2 * opts.Backoff
	last := ""
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		// Probe the job endpoint directly: a transport failure here means
		// the coordinator is gone, which for a loop worker is the normal
		// end of service, not an error.
		probe := &worker{opts: opts, base: strings.TrimSuffix(baseURL, "/")}
		data, err := probe.do(ctx, http.MethodGet, pathJob, nil, nil)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return nil
		}
		spec, err := runner.ParseJobSpec(data)
		if err != nil {
			return err
		}
		if fp := spec.Fingerprint(); fp != last {
			if err := Work(ctx, baseURL, opts); err != nil {
				return err
			}
			last = fp
			continue
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(poll):
		}
	}
}

type worker struct {
	opts  WorkerOptions
	base  string
	spec  runner.JobSpec
	fp    string
	env   runner.JobEnv
	cells *obs.Counter
}

// runLease computes and posts every cell of one lease, at most
// Parallelism at a time. The first failure cancels the rest.
func (w *worker) runLease(ctx context.Context, cells []int) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	sem := make(chan struct{}, w.opts.Parallelism)
	errs := make(chan error, len(cells))
	var wg sync.WaitGroup
	for _, cell := range cells {
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			errs <- ctx.Err()
			goto drain
		}
		wg.Add(1)
		go func(cell int) {
			defer wg.Done()
			defer func() { <-sem }()
			if err := w.runCell(ctx, cell); err != nil {
				errs <- err
				cancel()
			}
		}(cell)
	}
drain:
	wg.Wait()
	select {
	case err := <-errs:
		return err
	default:
		return nil
	}
}

// runCell computes one cell through the job kind and posts its Entry
// envelope.
func (w *worker) runCell(ctx context.Context, cell int) error {
	start := time.Now()
	payload, err := runner.EvaluateJobCell(ctx, w.spec, w.env, cell)
	if err != nil {
		return err
	}
	entry := diskcache.Entry{
		Schema: diskcache.CheckpointSchemaVersion,
		Key:    w.fp, Cell: cell, Payload: payload,
	}
	body, err := entry.Encode()
	if err != nil {
		return err
	}
	hdr := http.Header{}
	hdr.Set(headerWorker, w.opts.Name)
	hdr.Set(headerCellSeconds, strconv.FormatFloat(time.Since(start).Seconds(), 'g', -1, 64))
	if w.opts.OnCell != nil {
		w.opts.OnCell(cell)
	}
	if _, err := w.do(ctx, http.MethodPost, pathComplete, body, hdr); err != nil {
		return err
	}
	w.cells.Inc()
	return nil
}

// do issues one request, retrying transport errors and 5xx responses with
// exponential backoff. 4xx responses fail immediately.
func (w *worker) do(ctx context.Context, method, path string, body []byte, hdr http.Header) ([]byte, error) {
	backoff := w.opts.Backoff
	var lastErr error
	for attempt := 0; attempt <= w.opts.Retries; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(backoff):
			}
			backoff *= 2
		}
		req, err := http.NewRequestWithContext(ctx, method, w.base+path, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		for k, vs := range hdr {
			req.Header[k] = vs
		}
		if method == http.MethodPost {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := w.opts.Client.Do(req)
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			lastErr = err
			continue
		}
		data, rerr := readAll(resp)
		switch {
		case rerr != nil:
			lastErr = rerr
		case resp.StatusCode < 300:
			return data, nil
		case resp.StatusCode >= 500:
			lastErr = fmt.Errorf("fabric: %s %s: %s: %s",
				method, path, resp.Status, strings.TrimSpace(string(data)))
		default:
			return nil, fmt.Errorf("fabric: %s %s: %s: %s",
				method, path, resp.Status, strings.TrimSpace(string(data)))
		}
	}
	return nil, lastErr
}

func readAll(resp *http.Response) ([]byte, error) {
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, err := buf.ReadFrom(resp.Body)
	return buf.Bytes(), err
}
