package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"mfdl/internal/obs"
	"mfdl/internal/rng"
	"mfdl/internal/runner"
	"mfdl/internal/runner/diskcache"
)

// WorkerOptions tune one worker loop.
type WorkerOptions struct {
	// Name identifies the worker in leases and metrics (default
	// "worker-<pid>").
	Name string
	// Parallelism bounds how many cells of a lease are computed
	// concurrently, and is also the lease size the worker asks for
	// (default 1).
	Parallelism int
	// Client is the HTTP client (default http.DefaultClient).
	Client *http.Client
	// Retries is how many times a transport error, 5xx response or
	// undecodable response body is retried with exponential backoff
	// before the worker gives up (default 4; negative disables retries).
	// 4xx responses never retry — they mean this worker and the
	// coordinator disagree about the job.
	Retries int
	// Backoff is the initial retry delay (default 50ms), doubling per
	// attempt. Each sleep is jittered to a uniform draw in
	// [backoff/2, backoff) from a per-worker deterministic stream, so N
	// workers retrying a restarted coordinator fan out instead of
	// stampeding in lockstep.
	Backoff time.Duration
	// MaxOutage, when positive, turns an exhausted retry budget on a
	// retryable failure (transport error, 5xx, undecodable body — never a
	// 4xx) into a park instead of a worker death: the worker keeps
	// re-trying the request with capped jittered backoff for up to this
	// long, surfacing the state as fabric_worker_parked_seconds and a
	// "parked" row in /v1/fleet, and rejoins seamlessly when the
	// coordinator answers again. Zero (the default) keeps the fail-fast
	// behavior.
	MaxOutage time.Duration
	// GonePolls is how many consecutive failed job probes WorkLoop
	// tolerates before concluding the coordinator has retired (default
	// 3). A single transient failure between rounds no longer ends the
	// loop.
	GonePolls int
	// Obs, when non-nil, receives the worker's fabric_worker_cells_total
	// counter plus the solve cache's counters, and its full snapshot is
	// shipped with every telemetry push so the coordinator can merge it
	// into the fleet /metrics view.
	Obs *obs.Registry
	// Heartbeat is how often the worker pushes a telemetry envelope —
	// heartbeat, registry snapshot and completed spans — to the
	// coordinator's /v1/telemetry endpoint (default 1s; negative
	// disables telemetry). Pushes are fire-and-forget: one attempt off
	// the work path, failures counted in
	// fabric_telemetry_push_errors_total and dropped, never retried and
	// never blocking a lease or completion.
	Heartbeat time.Duration
	// Spans, when non-nil, is drained into each telemetry push so the
	// coordinator can assemble one fleet-wide trace. Attach it to the
	// registry's span sink (obs.Tee with any local trace writer).
	Spans *obs.SpanCollector
	// Samples, when non-nil, is the worker's replica-sample store:
	// sim-replica cells whose samples are already stored are replayed
	// instead of simulated, and freshly simulated samples are persisted
	// for later runs. Fluid cells ignore it.
	Samples *diskcache.SampleStore
	// OnLease, when non-nil, observes every granted lease.
	OnLease func(id string, cells []int)
	// OnCell, when non-nil, observes every completed cell before its
	// result is posted.
	OnCell func(cell int)
}

// withDefaults fills in the zero-value defaults.
func (o WorkerOptions) withDefaults() WorkerOptions {
	if o.Name == "" {
		o.Name = fmt.Sprintf("worker-%d", os.Getpid())
	}
	if o.Parallelism <= 0 {
		o.Parallelism = 1
	}
	if o.Client == nil {
		o.Client = http.DefaultClient
	}
	if o.Retries == 0 {
		o.Retries = 4
	}
	if o.Retries < 0 {
		o.Retries = 0
	}
	if o.Backoff <= 0 {
		o.Backoff = 50 * time.Millisecond
	}
	if o.Heartbeat == 0 {
		o.Heartbeat = time.Second
	}
	if o.GonePolls <= 0 {
		o.GonePolls = 3
	}
	return o
}

// backoffSalt seeds the per-worker jitter stream; a distinct constant so
// the draw sequence is decoupled from every other RNG consumer.
const backoffSalt = 0x6a09e667f3bcc908

// newWorker builds the shared per-run worker state. The jitter stream is
// seeded from the worker's name, so a named worker's backoff schedule is
// reproducible run to run while distinct workers fan out.
func newWorker(opts WorkerOptions, baseURL string) *worker {
	h := fnv.New64a()
	h.Write([]byte(opts.Name))
	return &worker{
		opts:   opts,
		base:   strings.TrimSuffix(baseURL, "/"),
		jitter: rng.NewStream(backoffSalt, h.Sum64()),
	}
}

// jitterSleep sleeps a uniform draw in [d/2, d) — "equal jitter": enough
// spread to break retry lockstep, never less than half the intended
// backoff. Returns ctx.Err() if cancelled mid-sleep.
func (w *worker) jitterSleep(ctx context.Context, d time.Duration) error {
	w.jmu.Lock()
	f := w.jitter.Float64()
	w.jmu.Unlock()
	d = d/2 + time.Duration(f*float64(d/2))
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-time.After(d):
		return nil
	}
}

// Work runs one worker against the coordinator at baseURL until the job
// completes (returns nil), the context is cancelled (returns ctx.Err()),
// or a cell or protocol error is hit. The worker fetches the job spec
// once, then loops: lease a batch of cells, compute each through the
// spec's registered job kind (runner.EvaluateJobCell) with its pre-split
// random stream, and post each result as the same diskcache.Entry
// envelope the checkpoint store persists. A spec whose kind this build
// does not register is rejected up front — a worker never leases cells it
// cannot execute.
func Work(ctx context.Context, baseURL string, opts WorkerOptions) error {
	opts = opts.withDefaults()
	w := newWorker(opts, baseURL)
	// One epoch per run: a worker that restarts under the same name (a
	// new process, or the next WorkLoop round) resets seq to 1, and the
	// coordinator uses the newer epoch to accept it instead of dropping
	// its pushes until seq catches up to the previous run's.
	w.epoch = time.Now().UnixNano()
	w.cells = opts.Obs.Counter("fabric_worker_cells_total", obs.L("worker", opts.Name))
	w.failed = opts.Obs.Counter("fabric_completions_failed_total", obs.L("worker", opts.Name))
	w.pushErrs = opts.Obs.Counter("fabric_telemetry_push_errors_total", obs.L("worker", opts.Name))
	w.parkedG = opts.Obs.Gauge("fabric_worker_parked_seconds")

	// The job spec decode rides inside the retry loop: a corrupted or
	// truncated response body is network weather, exactly like a 5xx, not
	// a protocol disagreement.
	var spec runner.JobSpec
	_, err := w.do(ctx, http.MethodGet, pathJob, nil, nil, func(data []byte) error {
		var perr error
		spec, perr = runner.ParseJobSpec(data)
		return perr
	})
	if err != nil {
		return err
	}
	w.spec = spec
	w.fp = spec.Fingerprint()
	w.env = runner.JobEnv{
		Cache:   runner.NewCache().WithObs(opts.Obs),
		Samples: opts.Samples,
		Obs:     opts.Obs,
	}

	if opts.Heartbeat > 0 {
		// Seed the rate window so even the first beat reports cells/sec.
		w.lastBeat = time.Now()
		hctx, hcancel := context.WithCancel(ctx)
		hdone := make(chan struct{})
		go func() {
			defer close(hdone)
			t := time.NewTicker(opts.Heartbeat)
			defer t.Stop()
			for {
				select {
				case <-hctx.Done():
					return
				case <-t.C:
					w.pushTelemetry(hctx)
				}
			}
		}()
		defer func() {
			hcancel()
			<-hdone
			// Final flush so the coordinator sees the worker's terminal
			// counters and remaining spans even when the work loop ends
			// between beats. Detached from ctx — a cancelled worker still
			// gets one bounded farewell push.
			fctx, fcancel := context.WithTimeout(context.Background(), opts.Heartbeat)
			w.pushTelemetry(fctx)
			fcancel()
		}()
	}

	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		body, _ := json.Marshal(leaseRequest{Worker: opts.Name, Max: opts.Parallelism})
		var resp leaseResponse
		_, err := w.do(ctx, http.MethodPost, pathLease, body, nil, func(data []byte) error {
			resp = leaseResponse{}
			if err := json.Unmarshal(data, &resp); err != nil {
				return fmt.Errorf("fabric: lease response: %w", err)
			}
			return nil
		})
		if err != nil {
			return err
		}
		switch {
		case resp.Done:
			return nil
		case resp.Lease == nil:
			retry := time.Duration(resp.RetryMilli) * time.Millisecond
			if retry <= 0 {
				retry = 25 * time.Millisecond
			}
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(retry):
			}
		default:
			if opts.OnLease != nil {
				opts.OnLease(resp.Lease.ID, resp.Lease.Cells)
			}
			w.setLease(resp.Lease.ID, len(resp.Lease.Cells))
			// Renew at TTL/2 for as long as the lease is being worked, so
			// a slow-but-alive worker is never reaped mid-cell and its
			// work recomputed by a thief.
			rctx, rcancel := context.WithCancel(ctx)
			var rdone chan struct{}
			if ttl := time.Duration(resp.Lease.TTLMilli) * time.Millisecond; ttl > 0 {
				rdone = make(chan struct{})
				go func() {
					defer close(rdone)
					w.renewLease(rctx, resp.Lease.ID, ttl)
				}()
			}
			err := w.runLease(ctx, resp.Lease.Cells)
			rcancel()
			if rdone != nil {
				<-rdone
			}
			w.setLease("", 0)
			if err != nil {
				return err
			}
		}
	}
}

// renewLease POSTs a renewal every TTL/2 until ctx is cancelled or the
// coordinator says the lease is gone (409 — expired and possibly stolen;
// retrying cannot revive it, and idempotent completes make the race
// harmless). Renewals are best-effort single attempts: a dropped one
// just leaves the next tick to succeed, well inside the TTL.
func (w *worker) renewLease(ctx context.Context, leaseID string, ttl time.Duration) {
	body, _ := json.Marshal(renewRequest{Worker: w.opts.Name, Lease: leaseID})
	t := time.NewTicker(ttl / 2)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		rctx, cancel := context.WithTimeout(ctx, ttl/2)
		req, err := http.NewRequestWithContext(rctx, http.MethodPost, w.base+pathRenew, bytes.NewReader(body))
		if err != nil {
			cancel()
			return
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := w.opts.Client.Do(req)
		cancel()
		if err != nil {
			continue
		}
		_, _ = readAll(resp)
		if resp.StatusCode == http.StatusConflict {
			return
		}
	}
}

// WorkLoop serves a coordinator address that hands out a sequence of jobs
// over time — e.g. the growing rounds of a sequential-stopping sweep,
// where each round is a fresh coordinator (new replica count, new
// fingerprint) at the same address. It runs Work on the current job, then
// polls the job endpoint until a spec with a new fingerprint appears and
// works on that, and so on. It returns nil once the coordinator goes away
// (the serve process shut down after its last round), ctx.Err() on
// cancellation, or the first cell/protocol error.
func WorkLoop(ctx context.Context, baseURL string, opts WorkerOptions) error {
	opts = opts.withDefaults()
	poll := 2 * opts.Backoff
	last := ""
	probe := newWorker(opts, baseURL)
	fails := 0
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		// Probe the job endpoint. A failed probe might mean the
		// coordinator retired — the normal end of service for a loop
		// worker — or might be one transient network blip between rounds,
		// so the loop only concludes "gone" after GonePolls consecutive
		// failures.
		var spec runner.JobSpec
		_, err := probe.do(ctx, http.MethodGet, pathJob, nil, nil, func(data []byte) error {
			var perr error
			spec, perr = runner.ParseJobSpec(data)
			return perr
		})
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			fails++
			if fails >= opts.GonePolls {
				return nil
			}
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(poll):
			}
			continue
		}
		fails = 0
		if fp := spec.Fingerprint(); fp != last {
			if err := Work(ctx, baseURL, opts); err != nil {
				return err
			}
			last = fp
			continue
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(poll):
		}
	}
}

type worker struct {
	opts     WorkerOptions
	base     string
	spec     runner.JobSpec
	fp       string
	env      runner.JobEnv
	cells    *obs.Counter
	failed   *obs.Counter
	pushErrs *obs.Counter
	parkedG  *obs.Gauge

	// jitter is the worker's deterministic backoff stream; jmu guards it
	// because parallel runCell goroutines retry concurrently.
	jmu    sync.Mutex
	jitter *rng.Source

	// Telemetry state, all guarded by tmu and touched only off the
	// completion hot path.
	tmu       sync.Mutex
	leaseID   string
	inflight  int
	epoch     int64
	seq       int64
	lastBeat  time.Time
	lastCells uint64
	done      uint64 // cells completed, independent of opts.Obs
	parked    int    // request paths currently riding out an outage
	parkedSec float64
}

// setParked tracks how many request paths are parked and accumulates
// parked wall-time for telemetry and the fabric_worker_parked_seconds
// gauge (created without a worker label — the coordinator-side snapshot
// merge adds worker=<id>).
func (w *worker) setParked(delta int, sec float64) {
	w.tmu.Lock()
	w.parked += delta
	w.parkedSec += sec
	total := w.parkedSec
	w.tmu.Unlock()
	w.parkedG.Set(total)
}

// setLease records the lease currently being worked for the heartbeat.
func (w *worker) setLease(id string, cells int) {
	w.tmu.Lock()
	w.leaseID, w.inflight = id, cells
	w.tmu.Unlock()
}

// pushTelemetry builds and fires one telemetry envelope: a single
// attempt bounded by the heartbeat interval, with failures counted and
// swallowed — telemetry must never back-pressure the work loop or fail
// the job.
func (w *worker) pushTelemetry(ctx context.Context) {
	now := time.Now()
	w.tmu.Lock()
	w.seq++
	env := telemetryEnvelope{
		Schema:        telemetrySchemaVersion,
		Fingerprint:   w.fp,
		Worker:        w.opts.Name,
		Pid:           os.Getpid(),
		Epoch:         w.epoch,
		Seq:           w.seq,
		IntervalMilli: w.opts.Heartbeat.Milliseconds(),
		CellsTotal:    w.done,
		LeaseID:       w.leaseID,
		InflightCells: w.inflight,
		Parked:        w.parked > 0,
		ParkedSeconds: w.parkedSec,
	}
	if !w.lastBeat.IsZero() {
		if dt := now.Sub(w.lastBeat).Seconds(); dt > 0 {
			env.CellsPerSec = float64(w.done-w.lastCells) / dt
		}
	}
	w.lastBeat, w.lastCells = now, w.done
	w.tmu.Unlock()
	if w.opts.Obs != nil {
		if data, err := obs.EncodeSnapshot(w.opts.Obs.Snapshot()); err == nil {
			env.Snapshot = data
		}
	}
	if w.opts.Spans != nil {
		if events := w.opts.Spans.Drain(); len(events) > 0 {
			env.Spans = toWireSpans(events)
		}
	}
	body, err := json.Marshal(env)
	if err != nil {
		w.pushErrs.Inc()
		return
	}
	pctx, cancel := context.WithTimeout(ctx, w.opts.Heartbeat)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodPost, w.base+pathTelemetry, bytes.NewReader(body))
	if err != nil {
		w.pushErrs.Inc()
		return
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.opts.Client.Do(req)
	if err != nil {
		w.pushErrs.Inc()
		return
	}
	if _, err := readAll(resp); err != nil || resp.StatusCode >= 300 {
		w.pushErrs.Inc()
	}
}

// runLease computes and posts every cell of one lease, at most
// Parallelism at a time. The first failure cancels the rest.
func (w *worker) runLease(ctx context.Context, cells []int) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	sem := make(chan struct{}, w.opts.Parallelism)
	errs := make(chan error, len(cells))
	var wg sync.WaitGroup
	for _, cell := range cells {
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			errs <- ctx.Err()
			goto drain
		}
		wg.Add(1)
		go func(cell int) {
			defer wg.Done()
			defer func() { <-sem }()
			if err := w.runCell(ctx, cell); err != nil {
				errs <- err
				cancel()
			}
		}(cell)
	}
drain:
	wg.Wait()
	select {
	case err := <-errs:
		return err
	default:
		return nil
	}
}

// runCell computes one cell through the job kind and posts its Entry
// envelope.
func (w *worker) runCell(ctx context.Context, cell int) error {
	start := time.Now()
	// Remote cells bypass the runner pool's span site, so span them here;
	// inert (no clock read) unless a sink is attached.
	sp := w.opts.Obs.StartSpan("cell", obs.L("cell", strconv.Itoa(cell)))
	payload, err := runner.EvaluateJobCell(ctx, w.spec, w.env, cell)
	sp.End()
	if err != nil {
		return err
	}
	entry := diskcache.Entry{
		Schema: diskcache.CheckpointSchemaVersion,
		Key:    w.fp, Cell: cell, Payload: payload,
	}
	body, err := entry.Encode()
	if err != nil {
		return err
	}
	hdr := http.Header{}
	hdr.Set(headerWorker, w.opts.Name)
	hdr.Set(headerCellSeconds, strconv.FormatFloat(time.Since(start).Seconds(), 'g', -1, 64))
	if w.opts.OnCell != nil {
		w.opts.OnCell(cell)
	}
	if _, err := w.do(ctx, http.MethodPost, pathComplete, body, hdr, nil); err != nil {
		// A cancelled worker is shutdown, not loss — report it as such.
		if ctx.Err() != nil {
			return ctx.Err()
		}
		// The cell was computed but its result never reached the
		// coordinator: that is lost work (someone else will recompute it),
		// not a silent skip — count it and surface the post error.
		w.failed.Inc()
		return fmt.Errorf("fabric: cell %d completion lost after retries: %w", cell, err)
	}
	w.cells.Inc()
	w.tmu.Lock()
	w.done++
	if w.inflight > 0 {
		w.inflight--
	}
	w.tmu.Unlock()
	return nil
}

// do issues one request, retrying transport errors, 5xx responses and
// decode failures with jittered exponential backoff; 4xx responses fail
// immediately. decode, when non-nil, validates (and captures) the
// response body inside the retry loop, so a corrupted body is retried
// like any other transient fault instead of killing the worker. When the
// retry budget runs out on a retryable failure and MaxOutage is set, the
// request parks — capped jittered backoff for up to MaxOutage — instead
// of failing.
func (w *worker) do(ctx context.Context, method, path string, body []byte, hdr http.Header, decode func([]byte) error) ([]byte, error) {
	backoff := w.opts.Backoff
	var lastErr error
	for attempt := 0; attempt <= w.opts.Retries; attempt++ {
		if attempt > 0 {
			if err := w.jitterSleep(ctx, backoff); err != nil {
				return nil, err
			}
			backoff *= 2
		}
		data, err, retryable := w.attempt(ctx, method, path, body, hdr, decode)
		if err == nil {
			return data, nil
		}
		if !retryable {
			return nil, err
		}
		lastErr = err
	}
	if w.opts.MaxOutage <= 0 {
		return nil, lastErr
	}
	return w.park(ctx, method, path, body, hdr, decode, lastErr)
}

// park rides out a coordinator outage: keep retrying with backoff capped
// at parkBackoffCap until the request succeeds, fails terminally, or
// MaxOutage elapses. The worker advertises the state through its parked
// telemetry fields and the fabric_worker_parked_seconds gauge.
func (w *worker) park(ctx context.Context, method, path string, body []byte, hdr http.Header, decode func([]byte) error, lastErr error) ([]byte, error) {
	const parkBackoffCap = 2 * time.Second
	ceil := parkBackoffCap
	if q := w.opts.MaxOutage / 4; q > 0 && ceil > q {
		ceil = q
	}
	if ceil < w.opts.Backoff {
		ceil = w.opts.Backoff
	}
	start := time.Now()
	w.setParked(+1, 0)
	last := start
	tick := func() {
		now := time.Now()
		w.setParked(0, now.Sub(last).Seconds())
		last = now
	}
	defer func() {
		tick()
		w.setParked(-1, 0)
	}()
	for {
		if time.Since(start) >= w.opts.MaxOutage {
			return nil, fmt.Errorf("fabric: parked %s past max outage %s: %w",
				time.Since(start).Round(time.Millisecond), w.opts.MaxOutage, lastErr)
		}
		if err := w.jitterSleep(ctx, ceil); err != nil {
			return nil, err
		}
		tick()
		data, err, retryable := w.attempt(ctx, method, path, body, hdr, decode)
		if err == nil {
			return data, nil
		}
		if !retryable {
			return nil, err
		}
		lastErr = err
	}
}

// attempt issues a single request. retryable reports whether the failure
// is transient network weather (transport error, 5xx, short read,
// undecodable body) as opposed to terminal (4xx: a protocol
// disagreement; or context cancellation).
func (w *worker) attempt(ctx context.Context, method, path string, body []byte, hdr http.Header, decode func([]byte) error) (data []byte, err error, retryable bool) {
	req, err := http.NewRequestWithContext(ctx, method, w.base+path, bytes.NewReader(body))
	if err != nil {
		return nil, err, false
	}
	for k, vs := range hdr {
		req.Header[k] = vs
	}
	if method == http.MethodPost {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := w.opts.Client.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err(), false
		}
		return nil, err, true
	}
	data, rerr := readAll(resp)
	switch {
	case rerr != nil:
		return nil, rerr, true
	case resp.StatusCode < 300:
		if decode != nil {
			if derr := decode(data); derr != nil {
				return nil, derr, true
			}
		}
		return data, nil, false
	case resp.StatusCode >= 500:
		return nil, fmt.Errorf("fabric: %s %s: %s: %s",
			method, path, resp.Status, strings.TrimSpace(string(data))), true
	default:
		return nil, fmt.Errorf("fabric: %s %s: %s: %s",
			method, path, resp.Status, strings.TrimSpace(string(data))), false
	}
}

func readAll(resp *http.Response) ([]byte, error) {
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, err := buf.ReadFrom(resp.Body)
	return buf.Bytes(), err
}
