package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"mfdl/internal/obs"
	"mfdl/internal/runner"
	"mfdl/internal/runner/diskcache"
)

// WorkerOptions tune one worker loop.
type WorkerOptions struct {
	// Name identifies the worker in leases and metrics (default
	// "worker-<pid>").
	Name string
	// Parallelism bounds how many cells of a lease are computed
	// concurrently, and is also the lease size the worker asks for
	// (default 1).
	Parallelism int
	// Client is the HTTP client (default http.DefaultClient).
	Client *http.Client
	// Retries is how many times a transport error or 5xx response is
	// retried with exponential backoff before the worker gives up
	// (default 4; negative disables retries). 4xx responses never retry —
	// they mean this worker and the coordinator disagree about the job.
	Retries int
	// Backoff is the initial retry delay (default 50ms), doubling per
	// attempt.
	Backoff time.Duration
	// Obs, when non-nil, receives the worker's fabric_worker_cells_total
	// counter plus the solve cache's counters, and its full snapshot is
	// shipped with every telemetry push so the coordinator can merge it
	// into the fleet /metrics view.
	Obs *obs.Registry
	// Heartbeat is how often the worker pushes a telemetry envelope —
	// heartbeat, registry snapshot and completed spans — to the
	// coordinator's /v1/telemetry endpoint (default 1s; negative
	// disables telemetry). Pushes are fire-and-forget: one attempt off
	// the work path, failures counted in
	// fabric_telemetry_push_errors_total and dropped, never retried and
	// never blocking a lease or completion.
	Heartbeat time.Duration
	// Spans, when non-nil, is drained into each telemetry push so the
	// coordinator can assemble one fleet-wide trace. Attach it to the
	// registry's span sink (obs.Tee with any local trace writer).
	Spans *obs.SpanCollector
	// Samples, when non-nil, is the worker's replica-sample store:
	// sim-replica cells whose samples are already stored are replayed
	// instead of simulated, and freshly simulated samples are persisted
	// for later runs. Fluid cells ignore it.
	Samples *diskcache.SampleStore
	// OnLease, when non-nil, observes every granted lease.
	OnLease func(id string, cells []int)
	// OnCell, when non-nil, observes every completed cell before its
	// result is posted.
	OnCell func(cell int)
}

// withDefaults fills in the zero-value defaults.
func (o WorkerOptions) withDefaults() WorkerOptions {
	if o.Name == "" {
		o.Name = fmt.Sprintf("worker-%d", os.Getpid())
	}
	if o.Parallelism <= 0 {
		o.Parallelism = 1
	}
	if o.Client == nil {
		o.Client = http.DefaultClient
	}
	if o.Retries == 0 {
		o.Retries = 4
	}
	if o.Retries < 0 {
		o.Retries = 0
	}
	if o.Backoff <= 0 {
		o.Backoff = 50 * time.Millisecond
	}
	if o.Heartbeat == 0 {
		o.Heartbeat = time.Second
	}
	return o
}

// Work runs one worker against the coordinator at baseURL until the job
// completes (returns nil), the context is cancelled (returns ctx.Err()),
// or a cell or protocol error is hit. The worker fetches the job spec
// once, then loops: lease a batch of cells, compute each through the
// spec's registered job kind (runner.EvaluateJobCell) with its pre-split
// random stream, and post each result as the same diskcache.Entry
// envelope the checkpoint store persists. A spec whose kind this build
// does not register is rejected up front — a worker never leases cells it
// cannot execute.
func Work(ctx context.Context, baseURL string, opts WorkerOptions) error {
	opts = opts.withDefaults()
	w := &worker{opts: opts, base: strings.TrimSuffix(baseURL, "/")}
	// One epoch per run: a worker that restarts under the same name (a
	// new process, or the next WorkLoop round) resets seq to 1, and the
	// coordinator uses the newer epoch to accept it instead of dropping
	// its pushes until seq catches up to the previous run's.
	w.epoch = time.Now().UnixNano()
	w.cells = opts.Obs.Counter("fabric_worker_cells_total", obs.L("worker", opts.Name))
	w.failed = opts.Obs.Counter("fabric_completions_failed_total", obs.L("worker", opts.Name))
	w.pushErrs = opts.Obs.Counter("fabric_telemetry_push_errors_total", obs.L("worker", opts.Name))

	data, err := w.do(ctx, http.MethodGet, pathJob, nil, nil)
	if err != nil {
		return err
	}
	spec, err := runner.ParseJobSpec(data)
	if err != nil {
		return err
	}
	w.spec = spec
	w.fp = spec.Fingerprint()
	w.env = runner.JobEnv{
		Cache:   runner.NewCache().WithObs(opts.Obs),
		Samples: opts.Samples,
		Obs:     opts.Obs,
	}

	if opts.Heartbeat > 0 {
		// Seed the rate window so even the first beat reports cells/sec.
		w.lastBeat = time.Now()
		hctx, hcancel := context.WithCancel(ctx)
		hdone := make(chan struct{})
		go func() {
			defer close(hdone)
			t := time.NewTicker(opts.Heartbeat)
			defer t.Stop()
			for {
				select {
				case <-hctx.Done():
					return
				case <-t.C:
					w.pushTelemetry(hctx)
				}
			}
		}()
		defer func() {
			hcancel()
			<-hdone
			// Final flush so the coordinator sees the worker's terminal
			// counters and remaining spans even when the work loop ends
			// between beats. Detached from ctx — a cancelled worker still
			// gets one bounded farewell push.
			fctx, fcancel := context.WithTimeout(context.Background(), opts.Heartbeat)
			w.pushTelemetry(fctx)
			fcancel()
		}()
	}

	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		body, _ := json.Marshal(leaseRequest{Worker: opts.Name, Max: opts.Parallelism})
		data, err := w.do(ctx, http.MethodPost, pathLease, body, nil)
		if err != nil {
			return err
		}
		var resp leaseResponse
		if err := json.Unmarshal(data, &resp); err != nil {
			return fmt.Errorf("fabric: lease response: %w", err)
		}
		switch {
		case resp.Done:
			return nil
		case resp.Lease == nil:
			retry := time.Duration(resp.RetryMilli) * time.Millisecond
			if retry <= 0 {
				retry = 25 * time.Millisecond
			}
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(retry):
			}
		default:
			if opts.OnLease != nil {
				opts.OnLease(resp.Lease.ID, resp.Lease.Cells)
			}
			w.setLease(resp.Lease.ID, len(resp.Lease.Cells))
			err := w.runLease(ctx, resp.Lease.Cells)
			w.setLease("", 0)
			if err != nil {
				return err
			}
		}
	}
}

// WorkLoop serves a coordinator address that hands out a sequence of jobs
// over time — e.g. the growing rounds of a sequential-stopping sweep,
// where each round is a fresh coordinator (new replica count, new
// fingerprint) at the same address. It runs Work on the current job, then
// polls the job endpoint until a spec with a new fingerprint appears and
// works on that, and so on. It returns nil once the coordinator goes away
// (the serve process shut down after its last round), ctx.Err() on
// cancellation, or the first cell/protocol error.
func WorkLoop(ctx context.Context, baseURL string, opts WorkerOptions) error {
	opts = opts.withDefaults()
	poll := 2 * opts.Backoff
	last := ""
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		// Probe the job endpoint directly: a transport failure here means
		// the coordinator is gone, which for a loop worker is the normal
		// end of service, not an error.
		probe := &worker{opts: opts, base: strings.TrimSuffix(baseURL, "/")}
		data, err := probe.do(ctx, http.MethodGet, pathJob, nil, nil)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return nil
		}
		spec, err := runner.ParseJobSpec(data)
		if err != nil {
			return err
		}
		if fp := spec.Fingerprint(); fp != last {
			if err := Work(ctx, baseURL, opts); err != nil {
				return err
			}
			last = fp
			continue
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(poll):
		}
	}
}

type worker struct {
	opts     WorkerOptions
	base     string
	spec     runner.JobSpec
	fp       string
	env      runner.JobEnv
	cells    *obs.Counter
	failed   *obs.Counter
	pushErrs *obs.Counter

	// Telemetry state, all guarded by tmu and touched only off the
	// completion hot path.
	tmu       sync.Mutex
	leaseID   string
	inflight  int
	epoch     int64
	seq       int64
	lastBeat  time.Time
	lastCells uint64
	done      uint64 // cells completed, independent of opts.Obs
}

// setLease records the lease currently being worked for the heartbeat.
func (w *worker) setLease(id string, cells int) {
	w.tmu.Lock()
	w.leaseID, w.inflight = id, cells
	w.tmu.Unlock()
}

// pushTelemetry builds and fires one telemetry envelope: a single
// attempt bounded by the heartbeat interval, with failures counted and
// swallowed — telemetry must never back-pressure the work loop or fail
// the job.
func (w *worker) pushTelemetry(ctx context.Context) {
	now := time.Now()
	w.tmu.Lock()
	w.seq++
	env := telemetryEnvelope{
		Schema:        telemetrySchemaVersion,
		Fingerprint:   w.fp,
		Worker:        w.opts.Name,
		Pid:           os.Getpid(),
		Epoch:         w.epoch,
		Seq:           w.seq,
		IntervalMilli: w.opts.Heartbeat.Milliseconds(),
		CellsTotal:    w.done,
		LeaseID:       w.leaseID,
		InflightCells: w.inflight,
	}
	if !w.lastBeat.IsZero() {
		if dt := now.Sub(w.lastBeat).Seconds(); dt > 0 {
			env.CellsPerSec = float64(w.done-w.lastCells) / dt
		}
	}
	w.lastBeat, w.lastCells = now, w.done
	w.tmu.Unlock()
	if w.opts.Obs != nil {
		if data, err := obs.EncodeSnapshot(w.opts.Obs.Snapshot()); err == nil {
			env.Snapshot = data
		}
	}
	if w.opts.Spans != nil {
		if events := w.opts.Spans.Drain(); len(events) > 0 {
			env.Spans = toWireSpans(events)
		}
	}
	body, err := json.Marshal(env)
	if err != nil {
		w.pushErrs.Inc()
		return
	}
	pctx, cancel := context.WithTimeout(ctx, w.opts.Heartbeat)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodPost, w.base+pathTelemetry, bytes.NewReader(body))
	if err != nil {
		w.pushErrs.Inc()
		return
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.opts.Client.Do(req)
	if err != nil {
		w.pushErrs.Inc()
		return
	}
	if _, err := readAll(resp); err != nil || resp.StatusCode >= 300 {
		w.pushErrs.Inc()
	}
}

// runLease computes and posts every cell of one lease, at most
// Parallelism at a time. The first failure cancels the rest.
func (w *worker) runLease(ctx context.Context, cells []int) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	sem := make(chan struct{}, w.opts.Parallelism)
	errs := make(chan error, len(cells))
	var wg sync.WaitGroup
	for _, cell := range cells {
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			errs <- ctx.Err()
			goto drain
		}
		wg.Add(1)
		go func(cell int) {
			defer wg.Done()
			defer func() { <-sem }()
			if err := w.runCell(ctx, cell); err != nil {
				errs <- err
				cancel()
			}
		}(cell)
	}
drain:
	wg.Wait()
	select {
	case err := <-errs:
		return err
	default:
		return nil
	}
}

// runCell computes one cell through the job kind and posts its Entry
// envelope.
func (w *worker) runCell(ctx context.Context, cell int) error {
	start := time.Now()
	// Remote cells bypass the runner pool's span site, so span them here;
	// inert (no clock read) unless a sink is attached.
	sp := w.opts.Obs.StartSpan("cell", obs.L("cell", strconv.Itoa(cell)))
	payload, err := runner.EvaluateJobCell(ctx, w.spec, w.env, cell)
	sp.End()
	if err != nil {
		return err
	}
	entry := diskcache.Entry{
		Schema: diskcache.CheckpointSchemaVersion,
		Key:    w.fp, Cell: cell, Payload: payload,
	}
	body, err := entry.Encode()
	if err != nil {
		return err
	}
	hdr := http.Header{}
	hdr.Set(headerWorker, w.opts.Name)
	hdr.Set(headerCellSeconds, strconv.FormatFloat(time.Since(start).Seconds(), 'g', -1, 64))
	if w.opts.OnCell != nil {
		w.opts.OnCell(cell)
	}
	if _, err := w.do(ctx, http.MethodPost, pathComplete, body, hdr); err != nil {
		// A cancelled worker is shutdown, not loss — report it as such.
		if ctx.Err() != nil {
			return ctx.Err()
		}
		// The cell was computed but its result never reached the
		// coordinator: that is lost work (someone else will recompute it),
		// not a silent skip — count it and surface the post error.
		w.failed.Inc()
		return fmt.Errorf("fabric: cell %d completion lost after retries: %w", cell, err)
	}
	w.cells.Inc()
	w.tmu.Lock()
	w.done++
	if w.inflight > 0 {
		w.inflight--
	}
	w.tmu.Unlock()
	return nil
}

// do issues one request, retrying transport errors and 5xx responses with
// exponential backoff. 4xx responses fail immediately.
func (w *worker) do(ctx context.Context, method, path string, body []byte, hdr http.Header) ([]byte, error) {
	backoff := w.opts.Backoff
	var lastErr error
	for attempt := 0; attempt <= w.opts.Retries; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(backoff):
			}
			backoff *= 2
		}
		req, err := http.NewRequestWithContext(ctx, method, w.base+path, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		for k, vs := range hdr {
			req.Header[k] = vs
		}
		if method == http.MethodPost {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := w.opts.Client.Do(req)
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			lastErr = err
			continue
		}
		data, rerr := readAll(resp)
		switch {
		case rerr != nil:
			lastErr = rerr
		case resp.StatusCode < 300:
			return data, nil
		case resp.StatusCode >= 500:
			lastErr = fmt.Errorf("fabric: %s %s: %s: %s",
				method, path, resp.Status, strings.TrimSpace(string(data)))
		default:
			return nil, fmt.Errorf("fabric: %s %s: %s: %s",
				method, path, resp.Status, strings.TrimSpace(string(data)))
		}
	}
	return nil, lastErr
}

func readAll(resp *http.Response) ([]byte, error) {
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, err := buf.ReadFrom(resp.Body)
	return buf.Bytes(), err
}
