// Package fabric distributes one runner.JobSpec across many processes: a
// coordinator partitions the job's grid into short-lived cell leases, and
// any number of workers pull leases over HTTP, compute cells, and post the
// results back. The protocol is deliberately small — four endpoints, JSON
// bodies, no worker registration — and leans entirely on the job model's
// determinism guarantees:
//
//   - The job travels as runner.JobSpec's canonical JSON; its Fingerprint
//     is the run identity on the wire and on disk.
//   - A completed cell travels as the diskcache.Entry envelope — the exact
//     bytes the coordinator persists, so the checkpoint store doubles as
//     the wire format and the shared resume state.
//   - Cell streams are pre-split per cell (runner.CellStream), so a grid
//     computed by one process or twenty, in any interleaving, is
//     byte-identical.
//
// Leases expire: a worker that dies mid-lease simply stops renewing, and
// its cells are re-issued to whoever asks next (work stealing). Because
// completions are idempotent — keyed by (fingerprint, cell), duplicates
// acknowledged and dropped — a slow worker racing its thief is harmless.
package fabric

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"mfdl/internal/obs"
	"mfdl/internal/runner"
	"mfdl/internal/runner/diskcache"
)

// Wire paths and headers.
const (
	pathJob       = "/v1/job"
	pathLease     = "/v1/lease"
	pathRenew     = "/v1/renew"
	pathComplete  = "/v1/complete"
	pathStatus    = "/v1/status"
	pathTelemetry = "/v1/telemetry"
	pathFleet     = "/v1/fleet"
	pathMetrics   = "/metrics"

	headerWorker      = "X-Fabric-Worker"
	headerCellSeconds = "X-Fabric-Cell-Seconds"

	// maxTelemetryBody bounds a POST /v1/telemetry body. A real envelope
	// (snapshot + span batch) is tens of kilobytes; 8 MiB leaves room for
	// very large fleets' registries without letting one client make the
	// coordinator buffer arbitrary data.
	maxTelemetryBody = 8 << 20
	// maxCompleteBody bounds a POST /v1/complete body: one cell's Entry
	// envelope. Sim-replica event samples run to a few megabytes at long
	// horizons; 32 MiB is far above any real cell yet still a cap.
	maxCompleteBody = 32 << 20
	// maxControlBody bounds the small control bodies (/v1/lease,
	// /v1/renew): a worker name and a few integers.
	maxControlBody = 1 << 16
)

// CoordinatorOptions tune lease granularity and expiry.
type CoordinatorOptions struct {
	// LeaseCells is the maximum cells granted per lease (default 8). A
	// worker never receives more than it asks for.
	LeaseCells int
	// LeaseTTL is how long a lease stays exclusive (default 30s). A lease
	// older than this is reaped and its unfinished cells re-issued.
	LeaseTTL time.Duration
	// TargetLeaseSeconds, when positive, sizes each worker's lease from
	// its observed mean cell duration so a lease takes roughly this long
	// of wall-time: slow workers get smaller batches (down to 1 cell) and
	// forfeit less on a mid-lease death, fast workers get bigger ones (up
	// to LeaseCells) and spend less time on protocol round trips. A worker
	// with no observations yet falls back to the fixed LeaseCells batch.
	TargetLeaseSeconds float64
	// Samples, when non-nil, bridges the checkpoint store to the keyed
	// replica-sample store for kinds that declare a SampleRef: cells whose
	// samples are already stored are marked done at startup without ever
	// being leased, and every completed cell's payload is written back, so
	// a re-run with a larger replica count only distributes the new
	// replicas.
	Samples *diskcache.SampleStore
	// Obs, when non-nil, receives the coordinator's counters
	// (fabric_leases_*, fabric_cells_*) and the per-worker
	// fabric_cell_seconds latency histograms. The fleet telemetry table
	// works even when Obs is nil: the coordinator then keeps a private
	// registry so /metrics and /v1/fleet still render.
	Obs *obs.Registry
	// StragglerFactor flags a worker as a straggler on /v1/fleet when its
	// median cell seconds exceed this multiple of the fleet median
	// (default 2).
	StragglerFactor float64
	// RequestTimeout bounds how long any one fabric request may hold a
	// handler goroutine before being answered with 503 (default 30s;
	// negative disables the wrapper). Every endpoint is a quick
	// lock-compute-respond, so a request this old is a stuck client or a
	// lost connection, not legitimate work.
	RequestTimeout time.Duration
	// Clock overrides time.Now for lease-expiry tests.
	Clock func() time.Time
}

type cellState uint8

const (
	cellIdle cellState = iota
	cellLeased
	cellDone
)

type lease struct {
	id      string
	worker  string
	cells   []int
	expires time.Time
}

// Coordinator owns the authoritative state of one distributed job: which
// cells are idle, leased or done. All completed cells live in the
// checkpoint store under the job's fingerprint, which makes the
// coordinator itself restartable — reopening the same store resumes with
// every previously completed cell already marked done.
// pace accumulates one worker's observed cell durations for the adaptive
// lease policy.
type pace struct {
	sum float64
	n   int
}

type Coordinator struct {
	spec     runner.JobSpec
	specJSON []byte
	fp       string
	kind     runner.JobKind
	store    *diskcache.CheckpointStore
	opts     CoordinatorOptions

	mu        sync.Mutex
	state     []cellState
	pending   []int // FIFO queue of idle cells
	leases    map[string]*lease
	nextLease int
	done      int
	doneCh    chan struct{}
	closed    bool
	pace      map[string]*pace

	obsGranted   *obs.Counter
	obsExpired   *obs.Counter
	obsCompleted *obs.Counter
	obsDuplicate *obs.Counter
	obsResumed   *obs.Counter
	obsForeign   *obs.Counter
	obsRenewed   *obs.Counter

	// treg is the telemetry registry: opts.Obs when set, otherwise a
	// private registry, so fleet metrics exist even with observability
	// "off". Guarded by tmu, the telemetry table is deliberately separate
	// from mu — a slow /metrics render never contends with the lease path.
	treg                 *obs.Registry
	tmu                  sync.Mutex
	telemetry            map[string]*workerTelemetry
	obsTelemetry         *obs.Counter
	obsTelemetryBad      *obs.Counter
	obsTelemetrySpans    *obs.Counter
	obsTelemetryUnmerged *obs.Counter
}

// NewCoordinator validates the spec and prepares the job for distribution.
// The store is required: it is both where completions land and what a
// restarted coordinator resumes from. Cells already checkpointed under the
// job's fingerprint are marked done immediately (counted as
// fabric_cells_resumed_total).
func NewCoordinator(spec runner.JobSpec, store *diskcache.CheckpointStore, opts CoordinatorOptions) (*Coordinator, error) {
	if store == nil {
		return nil, fmt.Errorf("fabric: nil checkpoint store")
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	specJSON, err := spec.Canonical()
	if err != nil {
		return nil, err
	}
	kind, ok := runner.LookupJobKind(spec.Kind)
	if !ok {
		return nil, fmt.Errorf("fabric: unknown job kind %q", spec.Kind)
	}
	n, err := spec.CellCount()
	if err != nil {
		return nil, err
	}
	if opts.LeaseCells <= 0 {
		opts.LeaseCells = 8
	}
	if opts.LeaseTTL <= 0 {
		opts.LeaseTTL = 30 * time.Second
	}
	if opts.Clock == nil {
		opts.Clock = time.Now
	}
	if opts.StragglerFactor <= 0 {
		opts.StragglerFactor = 2
	}
	if opts.RequestTimeout == 0 {
		opts.RequestTimeout = 30 * time.Second
	}
	treg := opts.Obs
	if treg == nil {
		treg = obs.New()
	}
	c := &Coordinator{
		spec: spec, specJSON: specJSON, fp: spec.Fingerprint(), kind: kind,
		store: store, opts: opts,
		state:  make([]cellState, n),
		leases: map[string]*lease{},
		doneCh: make(chan struct{}),
		pace:   map[string]*pace{},

		obsGranted:   treg.Counter("fabric_leases_granted_total"),
		obsExpired:   treg.Counter("fabric_leases_expired_total"),
		obsCompleted: treg.Counter("fabric_cells_completed_total"),
		obsDuplicate: treg.Counter("fabric_cells_duplicate_total"),
		obsResumed:   treg.Counter("fabric_cells_resumed_total"),
		obsForeign:   treg.Counter("fabric_cells_foreign_total"),
		obsRenewed:   treg.Counter("fabric_leases_renewed_total"),

		treg:                 treg,
		telemetry:            map[string]*workerTelemetry{},
		obsTelemetry:         treg.Counter("fabric_telemetry_pushes_total"),
		obsTelemetryBad:      treg.Counter("fabric_telemetry_bad_total"),
		obsTelemetrySpans:    treg.Counter("fabric_telemetry_spans_total"),
		obsTelemetryUnmerged: treg.Counter("fabric_telemetry_unmerged_total"),
	}
	for i := range c.state {
		if _, ok := store.Get(c.fp, i); ok {
			c.state[i] = cellDone
			c.done++
			c.obsResumed.Inc()
			continue
		}
		// A cell whose sample is already in the replica-sample store needs
		// no worker: copy the stored payload into the checkpoint so the
		// run's own bookkeeping (and Result/Payloads assembly) sees it as
		// done. This is what makes a doubled -replicas re-run distribute
		// only the new replicas.
		if opts.Samples != nil && kind.SampleRef != nil {
			if key, seed, ok := kind.SampleRef(spec, i); ok {
				if payload, hit := opts.Samples.Get(key, seed); hit {
					if store.Put(c.fp, i, payload) == nil {
						c.state[i] = cellDone
						c.done++
						c.obsResumed.Inc()
						continue
					}
				}
			}
		}
		c.pending = append(c.pending, i)
	}
	if c.done == len(c.state) {
		c.closed = true
		close(c.doneCh)
	}
	return c, nil
}

// Fingerprint returns the job identity workers must echo on every
// completion.
func (c *Coordinator) Fingerprint() string { return c.fp }

// Spec returns the job being distributed.
func (c *Coordinator) Spec() runner.JobSpec { return c.spec }

// reapLocked re-queues the unfinished cells of every expired lease.
func (c *Coordinator) reapLocked(now time.Time) {
	for id, l := range c.leases {
		if now.Before(l.expires) {
			continue
		}
		for _, cell := range l.cells {
			if c.state[cell] == cellLeased {
				c.state[cell] = cellIdle
				c.pending = append(c.pending, cell)
			}
		}
		delete(c.leases, id)
		c.obsExpired.Inc()
	}
}

// Lease grants up to max idle cells to worker. It returns exactly one of:
// a grant, a positive retry hint (cells are in flight elsewhere — ask
// again after this long), or done=true (every cell is complete).
func (c *Coordinator) Lease(worker string, max int) (grant *lease, retry time.Duration, done bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.opts.Clock()
	c.reapLocked(now)
	if c.done == len(c.state) {
		return nil, 0, true
	}
	if len(c.pending) == 0 {
		retry = c.opts.LeaseTTL / 4
		if retry < 25*time.Millisecond {
			retry = 25 * time.Millisecond
		}
		return nil, retry, false
	}
	n := c.batchSizeLocked(worker)
	if max > 0 && max < n {
		n = max
	}
	if n > len(c.pending) {
		n = len(c.pending)
	}
	cells := make([]int, n)
	copy(cells, c.pending[:n])
	c.pending = append(c.pending[:0], c.pending[n:]...)
	for _, cell := range cells {
		c.state[cell] = cellLeased
	}
	c.nextLease++
	l := &lease{
		id: fmt.Sprintf("lease-%d", c.nextLease), worker: worker,
		cells: cells, expires: now.Add(c.opts.LeaseTTL),
	}
	c.leases[l.id] = l
	c.obsGranted.Inc()
	return l, 0, false
}

// Renew extends a live lease by a fresh TTL. A slow-but-alive worker
// renews at TTL/2 so a long cell is never reaped out from under it; a
// lease that has already expired (or was never granted) cannot be
// revived — its cells may be in another worker's hands, so the renewing
// worker is told no and falls back on idempotent completion.
func (c *Coordinator) Renew(worker, leaseID string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.opts.Clock()
	c.reapLocked(now)
	l, ok := c.leases[leaseID]
	if !ok {
		return fmt.Errorf("fabric: lease %q expired or unknown", leaseID)
	}
	if l.worker != worker {
		return fmt.Errorf("fabric: lease %q belongs to %q", leaseID, l.worker)
	}
	l.expires = now.Add(c.opts.LeaseTTL)
	c.obsRenewed.Inc()
	return nil
}

// batchSizeLocked returns the lease size for worker: LeaseCells under the
// fixed policy, or TargetLeaseSeconds divided by the worker's observed
// mean cell duration (clamped to [1, LeaseCells]) once the adaptive
// policy has at least one observation for it.
func (c *Coordinator) batchSizeLocked(worker string) int {
	limit := c.opts.LeaseCells
	if c.opts.TargetLeaseSeconds <= 0 {
		return limit
	}
	p, ok := c.pace[worker]
	if !ok || p.n == 0 || p.sum <= 0 {
		return limit
	}
	mean := p.sum / float64(p.n)
	batch := int(c.opts.TargetLeaseSeconds / mean)
	if batch < 1 {
		return 1
	}
	if batch > limit {
		return limit
	}
	return batch
}

// ObserveCellSeconds feeds the adaptive lease policy and the straggler
// histograms one observed cell duration for worker: the per-worker
// fabric_cell_seconds{worker=...} series and the unlabeled fleet series
// whose medians /v1/fleet compares. The HTTP handler calls it for every
// non-duplicate completion carrying the X-Fabric-Cell-Seconds header;
// non-positive and non-finite observations are ignored.
func (c *Coordinator) ObserveCellSeconds(worker string, sec float64) {
	if worker == "" || sec <= 0 || math.IsNaN(sec) || math.IsInf(sec, 0) {
		return
	}
	c.treg.Histogram("fabric_cell_seconds", obs.LatencyBuckets).Observe(sec)
	c.treg.Histogram("fabric_cell_seconds", obs.LatencyBuckets,
		obs.L("worker", worker)).Observe(sec)
	c.mu.Lock()
	defer c.mu.Unlock()
	p := c.pace[worker]
	if p == nil {
		p = &pace{}
		c.pace[worker] = p
	}
	p.sum += sec
	p.n++
}

// Complete records one finished cell. The entry must carry the current
// checkpoint schema and this job's fingerprint as its key — anything else
// is rejected before it can touch the store. Completions are accepted
// regardless of lease state (a worker outliving its stolen lease still
// contributes), and repeats are acknowledged as duplicates rather than
// errors.
func (c *Coordinator) Complete(e diskcache.Entry) (duplicate bool, err error) {
	if e.Schema != diskcache.CheckpointSchemaVersion {
		return false, fmt.Errorf("fabric: entry schema %d, this coordinator speaks %d",
			e.Schema, diskcache.CheckpointSchemaVersion)
	}
	if e.Key != c.fp {
		c.obsForeign.Inc()
		return false, fmt.Errorf("fabric: completion for a different job")
	}
	if e.Cell < 0 || e.Cell >= len(c.state) {
		return false, fmt.Errorf("fabric: cell %d outside grid of %d", e.Cell, len(c.state))
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.state[e.Cell] == cellDone {
		c.obsDuplicate.Inc()
		return true, nil
	}
	if err := c.store.PutEntry(e); err != nil {
		return false, err
	}
	// Write the payload through to the replica-sample store (best-effort):
	// a later run over the same configurations — even a different grid or
	// spec — finds the sample without redistributing it.
	if c.opts.Samples != nil && c.kind.SampleRef != nil {
		if key, seed, ok := c.kind.SampleRef(c.spec, e.Cell); ok {
			_ = c.opts.Samples.Put(key, seed, e.Payload)
		}
	}
	if c.state[e.Cell] == cellIdle {
		// The cell had been reaped back into the queue; pull it out so it
		// is not granted again.
		for i, cell := range c.pending {
			if cell == e.Cell {
				c.pending = append(c.pending[:i], c.pending[i+1:]...)
				break
			}
		}
	}
	c.state[e.Cell] = cellDone
	c.done++
	c.obsCompleted.Inc()
	if c.done == len(c.state) && !c.closed {
		c.closed = true
		close(c.doneCh)
	}
	return false, nil
}

// Status is a point-in-time summary of the job's progress.
type Status struct {
	Fingerprint string `json:"fingerprint"`
	Total       int    `json:"total"`
	Done        int    `json:"done"`
	Leased      int    `json:"leased"`
	Idle        int    `json:"idle"`
	Leases      int    `json:"leases"`
}

// Status reaps expired leases and reports progress.
func (c *Coordinator) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reapLocked(c.opts.Clock())
	leased := 0
	for _, s := range c.state {
		if s == cellLeased {
			leased++
		}
	}
	return Status{
		Fingerprint: c.fp, Total: len(c.state), Done: c.done,
		Leased: leased, Idle: len(c.pending), Leases: len(c.leases),
	}
}

// Done returns a channel closed once every cell is complete.
func (c *Coordinator) Done() <-chan struct{} { return c.doneCh }

// Wait blocks until the job completes or ctx is cancelled.
func (c *Coordinator) Wait(ctx context.Context) error {
	select {
	case <-c.doneCh:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Result waits for completion and assembles the final cell slice by
// replaying every checkpointed cell through the local runner — the same
// decode path a resumed single-process run takes, so the result is
// byte-identical to runner.RunJob of the same spec. On success the job's
// checkpoints are cleared.
func (c *Coordinator) Result(ctx context.Context) ([]runner.CellValue, error) {
	if err := c.Wait(ctx); err != nil {
		return nil, err
	}
	ckpt := runner.NewCheckpoint(c.store, c.fp)
	cells, err := runner.RunJob(ctx, c.spec, nil, runner.Options{Checkpoint: ckpt})
	if err != nil {
		return nil, err
	}
	_ = ckpt.Clear()
	return cells, nil
}

// Payloads waits for completion and returns every cell's raw payload
// bytes in cell order — the kind-agnostic result path (sim-replica
// callers hand the slice to sim.ReduceJob; Result is the fluid-sweep
// decoding of the same bytes). On success the job's checkpoints are
// cleared.
func (c *Coordinator) Payloads(ctx context.Context) ([][]byte, error) {
	if err := c.Wait(ctx); err != nil {
		return nil, err
	}
	out := make([][]byte, len(c.state))
	for i := range out {
		payload, ok := c.store.Get(c.fp, i)
		if !ok {
			return nil, fmt.Errorf("fabric: cell %d missing from the checkpoint store", i)
		}
		out[i] = payload
	}
	_ = c.store.Clear(c.fp)
	return out, nil
}

// Wire bodies.
type leaseRequest struct {
	Worker string `json:"worker"`
	Max    int    `json:"max"`
}

type leaseGrant struct {
	ID       string `json:"id"`
	Cells    []int  `json:"cells"`
	TTLMilli int64  `json:"ttl_ms"`
}

type leaseResponse struct {
	Done       bool        `json:"done,omitempty"`
	RetryMilli int64       `json:"retry_ms,omitempty"`
	Lease      *leaseGrant `json:"lease,omitempty"`
}

type renewRequest struct {
	Worker string `json:"worker"`
	Lease  string `json:"lease"`
}

// Handler returns the coordinator's HTTP surface:
//
//	GET  /v1/job      → the job's canonical JSON (what workers execute)
//	POST /v1/lease    → {"worker","max"} → grant | retry hint | done
//	POST /v1/renew    → {"worker","lease"} → ok | 409 (expired/stolen)
//	POST /v1/complete → a diskcache.Entry envelope; idempotent
//	GET  /v1/status   → progress summary
//
// Every body-carrying endpoint is capped (maxControlBody for the small
// control messages, maxCompleteBody for cell payloads, maxTelemetryBody
// for telemetry), and the whole surface sits behind RequestTimeout — a
// hung client gets 503, never a handler goroutine forever.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET "+pathJob, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write(c.specJSON)
	})
	mux.HandleFunc("POST "+pathLease, func(w http.ResponseWriter, r *http.Request) {
		r.Body = http.MaxBytesReader(w, r.Body, maxControlBody)
		var req leaseRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, "fabric: bad lease request: "+err.Error(), http.StatusBadRequest)
			return
		}
		l, retry, done := c.Lease(req.Worker, req.Max)
		resp := leaseResponse{Done: done, RetryMilli: retry.Milliseconds()}
		if l != nil {
			resp.Lease = &leaseGrant{
				ID: l.id, Cells: l.cells, TTLMilli: c.opts.LeaseTTL.Milliseconds(),
			}
		}
		writeJSON(w, resp)
	})
	mux.HandleFunc("POST "+pathRenew, func(w http.ResponseWriter, r *http.Request) {
		r.Body = http.MaxBytesReader(w, r.Body, maxControlBody)
		var req renewRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, "fabric: bad renew request: "+err.Error(), http.StatusBadRequest)
			return
		}
		if err := c.Renew(req.Worker, req.Lease); err != nil {
			// 409, not 5xx: the lease is gone for good and retrying the
			// renewal cannot bring it back — the worker should stop
			// renewing, finish its cells, and rely on idempotent completes.
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		writeJSON(w, map[string]bool{"ok": true})
	})
	mux.HandleFunc("POST "+pathComplete, func(w http.ResponseWriter, r *http.Request) {
		r.Body = http.MaxBytesReader(w, r.Body, maxCompleteBody)
		data, err := io.ReadAll(r.Body)
		if err != nil {
			http.Error(w, "fabric: "+err.Error(), http.StatusBadRequest)
			return
		}
		e, err := diskcache.DecodeEntry(data)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		dup, err := c.Complete(e)
		if err != nil {
			status := http.StatusBadRequest
			if e.Key != c.fp {
				status = http.StatusConflict
			}
			http.Error(w, err.Error(), status)
			return
		}
		if sec, err := strconv.ParseFloat(r.Header.Get(headerCellSeconds), 64); err == nil && !dup {
			c.ObserveCellSeconds(r.Header.Get(headerWorker), sec)
		}
		writeJSON(w, map[string]bool{"ok": true, "duplicate": dup})
	})
	mux.HandleFunc("GET "+pathStatus, func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, c.Status())
	})
	mux.HandleFunc("POST "+pathTelemetry, func(w http.ResponseWriter, r *http.Request) {
		// Telemetry is best-effort input from the network: cap the body
		// so one misbehaving client cannot make the coordinator buffer
		// an arbitrarily large envelope.
		r.Body = http.MaxBytesReader(w, r.Body, maxTelemetryBody)
		var env telemetryEnvelope
		if err := json.NewDecoder(r.Body).Decode(&env); err != nil {
			c.obsTelemetryBad.Inc()
			http.Error(w, "fabric: bad telemetry envelope: "+err.Error(), http.StatusBadRequest)
			return
		}
		if err := c.ingestTelemetry(env); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeJSON(w, map[string]bool{"ok": true})
	})
	mux.HandleFunc("GET "+pathFleet, func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, c.Fleet())
	})
	mux.HandleFunc("GET "+pathMetrics, func(w http.ResponseWriter, r *http.Request) {
		c.Fleet() // refresh the fabric_workers_* gauges before rendering
		var sb strings.Builder
		if err := c.MergedSnapshot().WritePrometheus(&sb); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", obs.ContentType)
		io.WriteString(w, sb.String())
	})
	if c.opts.RequestTimeout > 0 {
		return http.TimeoutHandler(mux, c.opts.RequestTimeout, "fabric: request timed out")
	}
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}
