package fabric

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"mfdl/internal/fluid"
	"mfdl/internal/obs"
	"mfdl/internal/runner"
	"mfdl/internal/runner/diskcache"
	"mfdl/internal/scheme"
)

func testSpec(t *testing.T) runner.JobSpec {
	t.Helper()
	spec := runner.JobSpec{
		Schema: runner.JobSpecSchemaVersion,
		Kind:   runner.JobKindFluidSweep,
		Base: runner.Key{
			Scheme: scheme.MTCD, Params: fluid.PaperParams,
			K: 5, P: 0.9, Lambda0: 1,
		},
		Dims: []runner.Dim{
			{Name: "p", Values: runner.Linspace(0.1, 0.9, 5)},
			{Name: "lambda0", Values: []float64{0.5, 2}},
		},
		Seed: 7,
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	return spec
}

// localCells is the single-process ground truth every distributed run
// must reproduce bit for bit.
func localCells(t *testing.T, spec runner.JobSpec) []runner.CellValue {
	t.Helper()
	cells, err := runner.RunJob(context.Background(), spec, nil, runner.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return cells
}

func newFabric(t *testing.T, spec runner.JobSpec, dir string, opts CoordinatorOptions) (*Coordinator, *httptest.Server) {
	t.Helper()
	store, err := diskcache.OpenCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	coord, err := NewCoordinator(spec, store, opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	t.Cleanup(srv.Close)
	return coord, srv
}

// assertIdentical demands bit-identical cells (reflect.DeepEqual compares
// float64s exactly; the values here are finite).
func assertIdentical(t *testing.T, got, want []runner.CellValue) {
	t.Helper()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("distributed cells differ from the local run:\n got %+v\nwant %+v", got, want)
	}
}

// Three healthy workers, arbitrary interleaving: the assembled grid is
// bit-identical to a single-process run of the same JobSpec.
func TestDistributedMatchesLocal(t *testing.T) {
	spec := testSpec(t)
	want := localCells(t, spec)
	reg := obs.New()
	coord, srv := newFabric(t, spec, t.TempDir(), CoordinatorOptions{Obs: reg})

	ctx := context.Background()
	errs := make(chan error, 3)
	for i := 0; i < 3; i++ {
		go func(i int) {
			errs <- Work(ctx, srv.URL, WorkerOptions{
				Name: fmt.Sprintf("w%d", i), Parallelism: 2, Obs: reg,
			})
		}(i)
	}
	for i := 0; i < 3; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	got, err := coord.Result(ctx)
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, got, want)
	if n := reg.Counter("fabric_cells_completed_total").Value(); int(n) != len(want) {
		t.Fatalf("completed counter = %d, want %d", n, len(want))
	}
}

// A worker killed mid-lease forfeits its cells after the TTL: another
// worker steals them and the final grid is still bit-identical.
func TestWorkerKilledMidLeaseIsStolen(t *testing.T) {
	spec := testSpec(t)
	want := localCells(t, spec)
	reg := obs.New()
	coord, srv := newFabric(t, spec, t.TempDir(), CoordinatorOptions{
		LeaseTTL: 100 * time.Millisecond, Obs: reg,
	})

	// Worker A dies the instant it is granted its first lease: the cells
	// stay leased — never computed, never released — until the TTL reaps
	// them.
	ctxA, killA := context.WithCancel(context.Background())
	errA := Work(ctxA, srv.URL, WorkerOptions{
		Name: "doomed", Parallelism: 4,
		OnLease: func(id string, cells []int) { killA() },
	})
	if errA != context.Canceled {
		t.Fatalf("killed worker returned %v, want context.Canceled", errA)
	}
	if st := coord.Status(); st.Done != 0 {
		t.Fatalf("doomed worker completed %d cells, want 0", st.Done)
	}

	if err := Work(context.Background(), srv.URL, WorkerOptions{
		Name: "thief", Parallelism: 2,
	}); err != nil {
		t.Fatal(err)
	}
	got, err := coord.Result(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, got, want)
	if n := reg.Counter("fabric_leases_expired_total").Value(); n == 0 {
		t.Fatal("no lease expired; the steal path never ran")
	}
}

// dropAfterSend lets one /complete request reach the coordinator and then
// reports a transport error to the caller — the classic "did my write
// land?" failure. The worker must retry and the coordinator must absorb
// the duplicate.
type dropAfterSend struct {
	dropped atomic.Bool
}

func (d *dropAfterSend) RoundTrip(req *http.Request) (*http.Response, error) {
	resp, err := http.DefaultTransport.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if strings.HasSuffix(req.URL.Path, pathComplete) && !d.dropped.Swap(true) {
		resp.Body.Close()
		return nil, fmt.Errorf("connection reset after write")
	}
	return resp, nil
}

func TestWorkerKilledMidWriteDuplicatesAreAbsorbed(t *testing.T) {
	spec := testSpec(t)
	want := localCells(t, spec)
	reg := obs.New()
	coord, srv := newFabric(t, spec, t.TempDir(), CoordinatorOptions{Obs: reg})

	err := Work(context.Background(), srv.URL, WorkerOptions{
		Name: "flaky", Parallelism: 2,
		Client:  &http.Client{Transport: &dropAfterSend{}},
		Backoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := coord.Result(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, got, want)
	if n := reg.Counter("fabric_cells_duplicate_total").Value(); n == 0 {
		t.Fatal("no duplicate completion recorded; the retry never happened")
	}
}

// A coordinator restarted over the same checkpoint store resumes from the
// cells already delivered instead of recomputing them.
func TestCoordinatorRestartResumes(t *testing.T) {
	spec := testSpec(t)
	want := localCells(t, spec)
	dir := t.TempDir()
	coord1, srv1 := newFabric(t, spec, dir, CoordinatorOptions{})

	// The first worker posts a few cells, then its process dies.
	ctx1, kill := context.WithCancel(context.Background())
	var posted atomic.Int32
	err := Work(ctx1, srv1.URL, WorkerOptions{
		Name: "partial",
		OnCell: func(cell int) {
			if posted.Add(1) > 3 {
				kill()
			}
		},
	})
	if err != context.Canceled {
		t.Fatalf("partial worker returned %v, want context.Canceled", err)
	}
	partial := coord1.Status().Done
	if partial == 0 || partial == len(want) {
		t.Fatalf("partial run completed %d/%d cells; the test needs a strict subset", partial, len(want))
	}
	srv1.Close()

	// Restart: a fresh coordinator over the same store.
	reg := obs.New()
	coord2, srv2 := newFabric(t, spec, dir, CoordinatorOptions{Obs: reg})
	if resumed := int(reg.Counter("fabric_cells_resumed_total").Value()); resumed != partial {
		t.Fatalf("resumed %d cells, want the %d completed before the restart", resumed, partial)
	}
	if err := Work(context.Background(), srv2.URL, WorkerOptions{Name: "finisher"}); err != nil {
		t.Fatal(err)
	}
	got, err := coord2.Result(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, got, want)
}

// Completions carrying a foreign fingerprint or a wrong schema must never
// reach the store.
func TestCoordinatorRejectsForeignCompletions(t *testing.T) {
	spec := testSpec(t)
	reg := obs.New()
	coord, srv := newFabric(t, spec, t.TempDir(), CoordinatorOptions{Obs: reg})

	post := func(e diskcache.Entry) int {
		t.Helper()
		body, err := e.Encode()
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(srv.URL+pathComplete, "application/json", strings.NewReader(string(body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	foreign := diskcache.Entry{
		Schema: diskcache.CheckpointSchemaVersion,
		Key:    "job v1 fluid-sweep from-some-other-study", Cell: 0, Payload: []byte("x"),
	}
	if code := post(foreign); code != http.StatusConflict {
		t.Fatalf("foreign completion got %d, want %d", code, http.StatusConflict)
	}
	badSchema := diskcache.Entry{
		Schema: diskcache.CheckpointSchemaVersion + 1,
		Key:    coord.Fingerprint(), Cell: 0, Payload: []byte("x"),
	}
	if code := post(badSchema); code != http.StatusBadRequest {
		t.Fatalf("wrong-schema completion got %d, want %d", code, http.StatusBadRequest)
	}
	if n := reg.Counter("fabric_cells_foreign_total").Value(); n != 1 {
		t.Fatalf("foreign counter = %d, want 1", n)
	}
	if st := coord.Status(); st.Done != 0 {
		t.Fatalf("rejected completions marked %d cells done", st.Done)
	}
}
