package metrics

import (
	"math"
	"testing"
)

func twoClassResult() *SchemeResult {
	return &SchemeResult{
		Scheme: "TEST",
		Classes: []PerClass{
			{Class: 1, EntryRate: 2, DownloadTime: 60, OnlineTime: 80},
			{Class: 2, EntryRate: 1, DownloadTime: 120, OnlineTime: 140},
		},
	}
}

func TestPerFileHelpers(t *testing.T) {
	c := PerClass{Class: 4, DownloadTime: 100, OnlineTime: 120}
	if c.DownloadPerFile() != 25 || c.OnlinePerFile() != 30 {
		t.Fatalf("per-file = %v/%v", c.DownloadPerFile(), c.OnlinePerFile())
	}
}

func TestAvgOnlinePerFile(t *testing.T) {
	r := twoClassResult()
	// (2·80 + 1·140) / (2·1 + 1·2) = 300/4 = 75.
	if got := r.AvgOnlinePerFile(); math.Abs(got-75) > 1e-12 {
		t.Fatalf("avg online per file = %v, want 75", got)
	}
	// (2·60 + 1·120) / 4 = 60.
	if got := r.AvgDownloadPerFile(); math.Abs(got-60) > 1e-12 {
		t.Fatalf("avg download per file = %v, want 60", got)
	}
}

func TestAvgSkipsZeroRateClasses(t *testing.T) {
	r := &SchemeResult{
		Scheme: "TEST",
		Classes: []PerClass{
			{Class: 1, EntryRate: 0, DownloadTime: math.NaN(), OnlineTime: math.NaN()},
			{Class: 2, EntryRate: 1, DownloadTime: 100, OnlineTime: 120},
		},
	}
	if got := r.AvgOnlinePerFile(); math.Abs(got-60) > 1e-12 {
		t.Fatalf("avg = %v, want 60", got)
	}
}

func TestAvgEmptyIsNaN(t *testing.T) {
	r := &SchemeResult{Scheme: "TEST"}
	if !math.IsNaN(r.AvgOnlinePerFile()) || !math.IsNaN(r.AvgDownloadPerFile()) {
		t.Fatal("empty result should average to NaN")
	}
}

func TestClassLookup(t *testing.T) {
	r := twoClassResult()
	c, ok := r.Class(2)
	if !ok || c.Class != 2 {
		t.Fatal("class 2 lookup failed")
	}
	if _, ok := r.Class(0); ok {
		t.Fatal("class 0 lookup succeeded")
	}
	if _, ok := r.Class(3); ok {
		t.Fatal("class 3 lookup succeeded")
	}
}

func TestValidate(t *testing.T) {
	if err := twoClassResult().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := twoClassResult()
	bad.Scheme = ""
	if bad.Validate() == nil {
		t.Fatal("empty scheme accepted")
	}
	bad = twoClassResult()
	bad.Classes[1].Class = 5
	if bad.Validate() == nil {
		t.Fatal("misnumbered class accepted")
	}
	bad = twoClassResult()
	bad.Classes[0].OnlineTime = 10 // below download time
	if bad.Validate() == nil {
		t.Fatal("online < download accepted")
	}
	bad = twoClassResult()
	bad.Classes[0].EntryRate = -1
	if bad.Validate() == nil {
		t.Fatal("negative rate accepted")
	}
}
