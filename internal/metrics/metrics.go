// Package metrics defines the shared performance-metric types all four
// downloading schemes report, and the aggregation rule the paper uses:
// "average online time per file = the sum of the online time for all the
// peers divided by the total number of files the peers have requested"
// (Section 4.2.1).
//
// Conventions: a class-i user requests i files. DownloadTime and OnlineTime
// are the user's wall-clock residence times (download phase, and download
// plus seeding). The per-file variants divide by the number of files i.
package metrics

import (
	"errors"
	"fmt"
	"math"
)

// PerClass holds the steady-state times for peers of one class.
type PerClass struct {
	// Class is i, the number of files the user requested (1-based).
	Class int
	// EntryRate is λ_i, the arrival rate of this class (users per time
	// unit). Classes with zero entry rate carry NaN times.
	EntryRate float64
	// DownloadTime is the user's expected wall-clock time in the
	// downloading phase.
	DownloadTime float64
	// OnlineTime is DownloadTime plus the expected seeding time.
	OnlineTime float64
}

// DownloadPerFile returns DownloadTime / Class.
func (c PerClass) DownloadPerFile() float64 { return c.DownloadTime / float64(c.Class) }

// OnlinePerFile returns OnlineTime / Class.
func (c PerClass) OnlinePerFile() float64 { return c.OnlineTime / float64(c.Class) }

// SchemeResult is the steady-state evaluation of one downloading scheme.
type SchemeResult struct {
	// Scheme is the scheme name ("MTCD", "MTSD", "MFCD", "CMFSD").
	Scheme string
	// Classes holds per-class metrics for classes 1..K in order.
	Classes []PerClass
}

// Validate checks structural consistency.
func (r *SchemeResult) Validate() error {
	if r.Scheme == "" {
		return errors.New("metrics: empty scheme name")
	}
	for idx, c := range r.Classes {
		if c.Class != idx+1 {
			return fmt.Errorf("metrics: class at index %d has Class=%d", idx, c.Class)
		}
		if c.EntryRate < 0 {
			return fmt.Errorf("metrics: class %d negative entry rate", c.Class)
		}
		if c.EntryRate > 0 && (c.DownloadTime < 0 || c.OnlineTime < c.DownloadTime) {
			return fmt.Errorf("metrics: class %d inconsistent times (dl=%v online=%v)",
				c.Class, c.DownloadTime, c.OnlineTime)
		}
	}
	return nil
}

// Class returns the PerClass entry for class i (1-based), or false.
func (r *SchemeResult) Class(i int) (PerClass, bool) {
	if i < 1 || i > len(r.Classes) {
		return PerClass{}, false
	}
	return r.Classes[i-1], true
}

// totalWeighted returns Σ λ_i·f(class_i) over classes with positive rate,
// and Σ i·λ_i (the file-request rate).
func (r *SchemeResult) totalWeighted(f func(PerClass) float64) (num, files float64) {
	for _, c := range r.Classes {
		if c.EntryRate <= 0 {
			continue
		}
		num += c.EntryRate * f(c)
		files += c.EntryRate * float64(c.Class)
	}
	return num, files
}

// AvgOnlinePerFile returns the paper's headline metric: total user online
// time per unit time, divided by the total file-request rate. NaN when no
// class has a positive entry rate.
func (r *SchemeResult) AvgOnlinePerFile() float64 {
	num, files := r.totalWeighted(func(c PerClass) float64 { return c.OnlineTime })
	if files == 0 {
		return math.NaN()
	}
	return num / files
}

// AvgDownloadPerFile is the same aggregation over download times.
func (r *SchemeResult) AvgDownloadPerFile() float64 {
	num, files := r.totalWeighted(func(c PerClass) float64 { return c.DownloadTime })
	if files == 0 {
		return math.NaN()
	}
	return num / files
}
