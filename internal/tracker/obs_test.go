package tracker

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"mfdl/internal/metainfo"
	"mfdl/internal/obs"
)

// observedServer publishes one demo torrent behind an ObservedHandler and
// returns the test server, the torrent's info-hash and the registry. The
// uninstrumented variant of this wiring lives in http_test.go.
func observedServer(t *testing.T) (*httptest.Server, InfoHash, *obs.Registry) {
	t.Helper()
	reg := NewRegistry(1)
	m, err := metainfo.Build("obs", "/announce", 256,
		[]metainfo.FileEntry{{Path: "obs/a.bin", Length: 1024}},
		metainfo.BytesSource(make([]byte, 1024)))
	if err != nil {
		t.Fatal(err)
	}
	h, err := reg.Publish(m)
	if err != nil {
		t.Fatal(err)
	}
	ob := obs.New()
	srv := httptest.NewServer(ObservedHandler(reg, ob))
	t.Cleanup(srv.Close)
	return srv, h, ob
}

func TestMetricsContentType(t *testing.T) {
	srv, _, _ := observedServer(t)
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("Content-Type"); got != obs.ContentType {
		t.Fatalf("Content-Type = %q, want %q", got, obs.ContentType)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestRequestCountersMonotonic(t *testing.T) {
	srv, h, ob := observedServer(t)
	counter := func(endpoint string) uint64 {
		return ob.Counter("tracker_requests_total", obs.L("endpoint", endpoint)).Value()
	}
	if _, body := get(t, announceURL(srv, h, "peer1", "512", "started")); strings.Contains(string(body), "failure") {
		t.Fatalf("announce failed: %s", body)
	}
	if got := counter("announce"); got != 1 {
		t.Fatalf("announce counter after 1 request = %d", got)
	}
	get(t, announceURL(srv, h, "peer2", "512", "started"))
	get(t, srv.URL+"/scrape")
	get(t, srv.URL+"/index")
	for endpoint, want := range map[string]uint64{"announce": 2, "scrape": 1, "index": 1} {
		if got := counter(endpoint); got != want {
			t.Fatalf("%s counter = %d, want %d", endpoint, got, want)
		}
	}
	// Latency histograms observe one sample per request.
	hist := ob.Histogram("tracker_request_seconds", obs.LatencyBuckets, obs.L("endpoint", "announce"))
	if hist.Count() != 2 {
		t.Fatalf("announce latency samples = %d, want 2", hist.Count())
	}
	// The /metrics endpoint reports the same values in Prometheus text,
	// and fetching it never decreases any counter.
	_, body := get(t, srv.URL+"/metrics")
	want := `tracker_requests_total{endpoint="announce"} 2`
	if !strings.Contains(string(body), want) {
		t.Fatalf("/metrics missing %q:\n%s", want, body)
	}
	get(t, srv.URL+"/metrics")
	if got := counter("announce"); got != 2 {
		t.Fatalf("announce counter moved to %d after /metrics fetches", got)
	}
}

// TestObservedConcurrentAnnounces hammers the instrumented handler from
// many goroutines; run under -race it checks the registry's thread
// safety on the serving path, and the final counter checks the
// accounting.
func TestObservedConcurrentAnnounces(t *testing.T) {
	srv, h, ob := observedServer(t)
	const goroutines, perG = 8, 25
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				id := fmt.Sprintf("peer-%d-%d", g, i)
				resp, err := http.Get(announceURL(srv, h, id, "512", "started"))
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(g)
	}
	// Concurrent scrapes exercise the exporter against live writers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			resp, err := http.Get(srv.URL + "/metrics")
			if err != nil {
				t.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	wg.Wait()
	if got := ob.Counter("tracker_requests_total", obs.L("endpoint", "announce")).Value(); got != goroutines*perG {
		t.Fatalf("announce counter = %d, want %d", got, goroutines*perG)
	}
}
