package tracker

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"mfdl/internal/metainfo"
)

// publishTestTorrent registers a small 2-file torrent and returns its hash.
func publishTestTorrent(t *testing.T, r *Registry, name string) InfoHash {
	t.Helper()
	data := make([]byte, 600)
	for i := range data {
		data[i] = byte(i * 7)
	}
	m, err := metainfo.Build(name, "http://t/announce", 256, []metainfo.FileEntry{
		{Path: name + "/a.bin", Length: 400},
		{Path: name + "/b.bin", Length: 200},
	}, metainfo.BytesSource(data))
	if err != nil {
		t.Fatal(err)
	}
	h, err := r.Publish(m)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func announce(t *testing.T, r *Registry, h InfoHash, id string, left int64, ev Event) *AnnounceResponse {
	t.Helper()
	resp, err := r.Announce(AnnounceRequest{
		InfoHash: h, PeerID: id, IP: "10.0.0.1", Port: 6881, Left: left, Event: ev,
	})
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestPublishIdempotent(t *testing.T) {
	r := NewRegistry(1)
	h1 := publishTestTorrent(t, r, "x")
	h2 := publishTestTorrent(t, r, "x")
	if h1 != h2 {
		t.Fatal("same torrent published twice with different hashes")
	}
	if _, err := r.Publish(nil); err == nil {
		t.Fatal("nil metainfo accepted")
	}
}

func TestAnnounceLifecycle(t *testing.T) {
	r := NewRegistry(1)
	h := publishTestTorrent(t, r, "x")

	resp := announce(t, r, h, "peer1", 600, EventStarted)
	if resp.Incomplete != 1 || resp.Complete != 0 {
		t.Fatalf("after start: %d/%d", resp.Complete, resp.Incomplete)
	}
	if len(resp.Peers) != 0 {
		t.Fatal("peer saw itself")
	}

	resp = announce(t, r, h, "peer2", 600, EventStarted)
	if resp.Incomplete != 2 {
		t.Fatalf("incomplete = %d", resp.Incomplete)
	}
	if len(resp.Peers) != 1 || resp.Peers[0].ID != "peer1" {
		t.Fatalf("peer list %v", resp.Peers)
	}

	resp = announce(t, r, h, "peer1", 0, EventCompleted)
	if resp.Complete != 1 || resp.Incomplete != 1 {
		t.Fatalf("after complete: %d/%d", resp.Complete, resp.Incomplete)
	}

	resp = announce(t, r, h, "peer1", 0, EventStopped)
	if resp.Complete != 0 || resp.Incomplete != 1 {
		t.Fatalf("after stop: %d/%d", resp.Complete, resp.Incomplete)
	}
}

func TestAnnounceValidation(t *testing.T) {
	r := NewRegistry(1)
	h := publishTestTorrent(t, r, "x")
	if _, err := r.Announce(AnnounceRequest{InfoHash: h, PeerID: "", Port: 1}); err == nil {
		t.Fatal("empty peer id accepted")
	}
	if _, err := r.Announce(AnnounceRequest{InfoHash: h, PeerID: "p", Port: 0}); err == nil {
		t.Fatal("port 0 accepted")
	}
	var unknown InfoHash
	if _, err := r.Announce(AnnounceRequest{InfoHash: unknown, PeerID: "p", Port: 1}); err != ErrUnknownTorrent {
		t.Fatalf("unknown torrent: %v", err)
	}
}

func TestNumWantCapsPeerList(t *testing.T) {
	r := NewRegistry(1)
	h := publishTestTorrent(t, r, "x")
	for i := 0; i < 80; i++ {
		announce(t, r, h, "peer"+string(rune('A'+i%26))+string(rune('a'+i/26)), 100, EventStarted)
	}
	resp, err := r.Announce(AnnounceRequest{
		InfoHash: h, PeerID: "me", Port: 1, Left: 100, NumWant: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Peers) != 10 {
		t.Fatalf("numwant ignored: %d peers", len(resp.Peers))
	}
	// Default cap is 50.
	resp, err = r.Announce(AnnounceRequest{InfoHash: h, PeerID: "me2", Port: 1, Left: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Peers) != 50 {
		t.Fatalf("default cap: %d peers", len(resp.Peers))
	}
}

func TestPruneExpiredPeers(t *testing.T) {
	r := NewRegistry(1)
	now := time.Unix(1000000, 0)
	r.Now = func() time.Time { return now }
	h := publishTestTorrent(t, r, "x")
	announce(t, r, h, "old", 100, EventStarted)
	now = now.Add(3 * r.Interval) // past the 2×interval deadline
	resp := announce(t, r, h, "new", 100, EventStarted)
	if resp.Incomplete != 1 {
		t.Fatalf("stale peer not pruned: incomplete = %d", resp.Incomplete)
	}
}

func TestScrape(t *testing.T) {
	r := NewRegistry(1)
	ha := publishTestTorrent(t, r, "alpha")
	hb := publishTestTorrent(t, r, "beta")
	announce(t, r, ha, "p1", 0, EventCompleted)
	announce(t, r, ha, "p2", 100, EventStarted)
	announce(t, r, hb, "p3", 100, EventStarted)

	all := r.Scrape()
	if len(all) != 2 || all[0].Name != "alpha" || all[1].Name != "beta" {
		t.Fatalf("scrape all: %+v", all)
	}
	if all[0].Complete != 1 || all[0].Incomplete != 1 || all[0].Downloaded != 1 {
		t.Fatalf("alpha stats: %+v", all[0])
	}
	one := r.Scrape(hb)
	if len(one) != 1 || one[0].Name != "beta" || one[0].Incomplete != 1 {
		t.Fatalf("scrape one: %+v", one)
	}
}

func TestTorrentRetrieval(t *testing.T) {
	r := NewRegistry(1)
	h := publishTestTorrent(t, r, "x")
	m, err := r.Torrent(h)
	if err != nil || m.Info.Name != "x" {
		t.Fatalf("torrent lookup: %v %v", m, err)
	}
	var unknown InfoHash
	if _, err := r.Torrent(unknown); err != ErrUnknownTorrent {
		t.Fatalf("unknown lookup: %v", err)
	}
}

func TestHexHashRoundTrip(t *testing.T) {
	r := NewRegistry(1)
	h := publishTestTorrent(t, r, "x")
	back, err := ParseHexHash(HexHash(h))
	if err != nil || back != h {
		t.Fatalf("hex round trip: %v %v", back, err)
	}
	if _, err := ParseHexHash("zz"); err == nil {
		t.Fatal("bad hex accepted")
	}
	if _, err := ParseHexHash("abcd"); err == nil {
		t.Fatal("short hex accepted")
	}
}

func TestConcurrentAnnounces(t *testing.T) {
	r := NewRegistry(1)
	h := publishTestTorrent(t, r, "x")
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := fmt.Sprintf("peer-%02d", w)
			for i := 0; i < 50; i++ {
				if _, err := r.Announce(AnnounceRequest{
					InfoHash: h, PeerID: id, IP: "10.0.0.1", Port: 6881,
					Left: int64(50 - i), Event: EventNone,
				}); err != nil {
					t.Error(err)
					return
				}
			}
			if _, err := r.Announce(AnnounceRequest{
				InfoHash: h, PeerID: id, IP: "10.0.0.1", Port: 6881,
				Left: 0, Event: EventCompleted,
			}); err != nil {
				t.Error(err)
			}
		}(w)
	}
	wg.Wait()
	entries := r.Scrape(h)
	if len(entries) != 1 || entries[0].Complete != 16 || entries[0].Downloaded != 16 {
		t.Fatalf("after concurrent announces: %+v", entries)
	}
}
