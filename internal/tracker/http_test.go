package tracker

import (
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"mfdl/internal/bencode"
	"mfdl/internal/metainfo"
)

func newServer(t *testing.T) (*httptest.Server, *Registry, InfoHash) {
	t.Helper()
	r := NewRegistry(1)
	h := publishTestTorrent(t, r, "season")
	srv := httptest.NewServer(Handler(r))
	t.Cleanup(srv.Close)
	return srv, r, h
}

func get(t *testing.T, rawURL string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(rawURL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func announceURL(srv *httptest.Server, h InfoHash, id string, left, event string) string {
	q := url.Values{}
	q.Set("info_hash", string(h[:])) // binary form, URL-encoded by Values
	q.Set("peer_id", id)
	q.Set("port", "6881")
	q.Set("left", left)
	if event != "" {
		q.Set("event", event)
	}
	return srv.URL + "/announce?" + q.Encode()
}

func TestHTTPAnnounce(t *testing.T) {
	srv, _, h := newServer(t)
	code, body := get(t, announceURL(srv, h, "peerA", "600", "started"))
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	v, err := bencode.Unmarshal(body)
	if err != nil {
		t.Fatalf("response not bencoded: %v\n%s", err, body)
	}
	d := v.(map[string]any)
	if d["incomplete"].(int64) != 1 || d["complete"].(int64) != 0 {
		t.Fatalf("counts wrong: %v", d)
	}
	if d["interval"].(int64) <= 0 {
		t.Fatal("no interval")
	}

	// Second peer sees the first.
	_, body = get(t, announceURL(srv, h, "peerB", "600", "started"))
	v, err = bencode.Unmarshal(body)
	if err != nil {
		t.Fatal(err)
	}
	peers := v.(map[string]any)["peers"].([]any)
	if len(peers) != 1 {
		t.Fatalf("peer list %v", peers)
	}
	p := peers[0].(map[string]any)
	if p["peer id"].(string) != "peerA" || p["port"].(int64) != 6881 {
		t.Fatalf("peer entry %v", p)
	}
}

func TestHTTPAnnounceHexHash(t *testing.T) {
	srv, _, h := newServer(t)
	u := srv.URL + "/announce?info_hash=" + HexHash(h) + "&peer_id=x&port=1&left=0"
	_, body := get(t, u)
	if strings.Contains(string(body), "failure") {
		t.Fatalf("hex hash rejected: %s", body)
	}
}

func TestHTTPAnnounceFailures(t *testing.T) {
	srv, _, h := newServer(t)
	cases := []string{
		srv.URL + "/announce?info_hash=short&peer_id=x&port=1",
		srv.URL + "/announce?info_hash=" + HexHash(h) + "&peer_id=x&port=bad",
		srv.URL + "/announce?info_hash=" + HexHash(h) + "&peer_id=x&port=1&event=exploded",
		srv.URL + "/announce?info_hash=" + HexHash(h) + "&peer_id=x&port=1&left=xyz",
		srv.URL + "/announce?info_hash=" + HexHash(h) + "&peer_id=x&port=1&numwant=xyz",
		srv.URL + "/announce?info_hash=" + strings.Repeat("00", 20) + "&peer_id=x&port=1",
	}
	for i, u := range cases {
		code, body := get(t, u)
		if code != http.StatusOK {
			t.Fatalf("case %d: status %d (failures use 200 + failure reason)", i, code)
		}
		v, err := bencode.Unmarshal(body)
		if err != nil {
			t.Fatalf("case %d: response not bencoded: %s", i, body)
		}
		if _, ok := v.(map[string]any)["failure reason"]; !ok {
			t.Fatalf("case %d: no failure reason: %s", i, body)
		}
	}
}

func TestHTTPScrapeAndIndex(t *testing.T) {
	srv, _, h := newServer(t)
	get(t, announceURL(srv, h, "peerA", "0", "completed"))

	_, body := get(t, srv.URL+"/scrape")
	v, err := bencode.Unmarshal(body)
	if err != nil {
		t.Fatal(err)
	}
	files := v.(map[string]any)["files"].(map[string]any)
	entry, ok := files[string(h[:])].(map[string]any)
	if !ok {
		t.Fatalf("scrape missing torrent: %v", files)
	}
	if entry["complete"].(int64) != 1 || entry["downloaded"].(int64) != 1 {
		t.Fatalf("scrape stats %v", entry)
	}

	code, idx := get(t, srv.URL+"/index")
	if code != http.StatusOK || !strings.Contains(string(idx), "season") {
		t.Fatalf("index:\n%s", idx)
	}
	if !strings.Contains(string(idx), HexHash(h)) {
		t.Fatal("index missing info-hash")
	}
}

func TestHTTPTorrentDownload(t *testing.T) {
	srv, reg, h := newServer(t)
	code, body := get(t, srv.URL+"/torrent/"+HexHash(h))
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	m, err := metainfo.Unmarshal(body)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := reg.Torrent(h)
	gotHash, _ := m.Info.InfoHash()
	wantHash, _ := want.Info.InfoHash()
	if gotHash != wantHash {
		t.Fatal("served torrent has different identity")
	}

	if code, _ := get(t, srv.URL+"/torrent/nothex"); code != http.StatusBadRequest {
		t.Fatalf("bad hash status %d", code)
	}
	if code, _ := get(t, srv.URL+"/torrent/"+strings.Repeat("00", 20)); code != http.StatusNotFound {
		t.Fatalf("unknown hash status %d", code)
	}
}

func TestHTTPFullClientFlow(t *testing.T) {
	// The complete §3.1 loop: browse the index, fetch the metadata,
	// announce, get peers.
	srv, _, h := newServer(t)
	_, idx := get(t, srv.URL+"/index")
	line := ""
	for _, l := range strings.Split(string(idx), "\n") {
		if strings.Contains(l, "season") {
			line = l
		}
	}
	if line == "" {
		t.Fatal("torrent not on index")
	}
	fields := strings.Fields(line)
	hexHash := fields[1]
	if hexHash != HexHash(h) {
		t.Fatalf("index hash %s", hexHash)
	}
	_, torrentBytes := get(t, srv.URL+"/torrent/"+hexHash)
	m, err := metainfo.Unmarshal(torrentBytes)
	if err != nil {
		t.Fatal(err)
	}
	parsedHash, _ := m.Info.InfoHash()
	_, body := get(t, announceURL(srv, parsedHash, "newcomer", "600", "started"))
	if strings.Contains(string(body), "failure") {
		t.Fatalf("announce after metadata fetch failed: %s", body)
	}
}

func TestHTTPCompactAnnounce(t *testing.T) {
	srv, _, h := newServer(t)
	// Two peers with IPv4 addresses; one with an unparseable address.
	for _, p := range []struct{ id, ip, port string }{
		{"p1", "10.0.0.1", "6881"},
		{"p2", "10.0.0.2", "6882"},
		{"p3", "not-an-ip", "6883"},
	} {
		q := url.Values{}
		q.Set("info_hash", string(h[:]))
		q.Set("peer_id", p.id)
		q.Set("ip", p.ip)
		q.Set("port", p.port)
		q.Set("left", "100")
		get(t, srv.URL+"/announce?"+q.Encode())
	}
	q := url.Values{}
	q.Set("info_hash", string(h[:]))
	q.Set("peer_id", "me")
	q.Set("ip", "10.0.0.9")
	q.Set("port", "7000")
	q.Set("left", "100")
	q.Set("compact", "1")
	_, body := get(t, srv.URL+"/announce?"+q.Encode())
	v, err := bencode.Unmarshal(body)
	if err != nil {
		t.Fatal(err)
	}
	packed, ok := v.(map[string]any)["peers"].(string)
	if !ok {
		t.Fatalf("compact peers not a string: %T", v.(map[string]any)["peers"])
	}
	if len(packed)%6 != 0 || len(packed) != 12 { // 2 parseable peers
		t.Fatalf("packed length %d, want 12", len(packed))
	}
	// First entry decodes back to an IP:port we announced.
	ip := net.IPv4(packed[0], packed[1], packed[2], packed[3]).String()
	port := int(packed[4])<<8 | int(packed[5])
	if (ip != "10.0.0.1" && ip != "10.0.0.2") || (port != 6881 && port != 6882) {
		t.Fatalf("decoded %s:%d", ip, port)
	}
}
