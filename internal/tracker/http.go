package tracker

import (
	"fmt"
	"net"
	"net/http"
	"strconv"
	"time"

	"mfdl/internal/bencode"
	"mfdl/internal/obs"
)

// Handler exposes the registry over HTTP with BEP-3-style endpoints:
//
//	GET /announce?info_hash=..&peer_id=..&port=..&left=..&event=..
//	GET /scrape[?info_hash=..]
//	GET /index                     human-readable torrent listing
//	GET /torrent/<hex info-hash>   the bencoded .torrent file
//
// Announce and scrape respond with bencoded dictionaries; errors use the
// standard "failure reason" key with HTTP 200, as real clients expect.
func Handler(r *Registry) http.Handler { return ObservedHandler(r, nil) }

// ObservedHandler is Handler instrumented against ob: every endpoint
// counts requests in tracker_requests_total{endpoint=...} and samples
// latency into tracker_request_seconds{endpoint=...}, and the registry
// itself is served at /metrics in Prometheus text format. A nil ob
// yields the plain uninstrumented handler (no /metrics endpoint).
func ObservedHandler(r *Registry, ob *obs.Registry) http.Handler {
	mux := http.NewServeMux()
	handle := func(pattern, endpoint string, h http.HandlerFunc) {
		mux.HandleFunc(pattern, instrument(ob, endpoint, h))
	}
	if ob != nil {
		mux.Handle("/metrics", obs.HTTPHandler(ob))
	}
	handle("/announce", "announce", func(w http.ResponseWriter, req *http.Request) {
		resp, err := announceFromQuery(r, req)
		if err != nil {
			writeBencoded(w, map[string]any{"failure reason": err.Error()})
			return
		}
		out := map[string]any{
			"interval":   int64(resp.Interval.Seconds()),
			"complete":   int64(resp.Complete),
			"incomplete": int64(resp.Incomplete),
		}
		if req.URL.Query().Get("compact") == "1" {
			// BEP-23: packed 6-byte (IPv4 + port) entries; peers without a
			// parseable IPv4 address are omitted, as real trackers do.
			var packed []byte
			for _, p := range resp.Peers {
				ip4 := net.ParseIP(p.IP).To4()
				if ip4 == nil {
					continue
				}
				packed = append(packed, ip4...)
				packed = append(packed, byte(p.Port>>8), byte(p.Port))
			}
			out["peers"] = string(packed)
		} else {
			peers := make([]any, 0, len(resp.Peers))
			for _, p := range resp.Peers {
				peers = append(peers, map[string]any{
					"peer id": p.ID,
					"ip":      p.IP,
					"port":    int64(p.Port),
				})
			}
			out["peers"] = peers
		}
		writeBencoded(w, out)
	})
	handle("/scrape", "scrape", func(w http.ResponseWriter, req *http.Request) {
		var hashes []InfoHash
		for _, raw := range req.URL.Query()["info_hash"] {
			h, err := hashFromRaw(raw)
			if err != nil {
				writeBencoded(w, map[string]any{"failure reason": err.Error()})
				return
			}
			hashes = append(hashes, h)
		}
		files := map[string]any{}
		for _, e := range r.Scrape(hashes...) {
			files[string(e.InfoHash[:])] = map[string]any{
				"complete":   int64(e.Complete),
				"incomplete": int64(e.Incomplete),
				"downloaded": int64(e.Downloaded),
				"name":       e.Name,
			}
		}
		writeBencoded(w, map[string]any{"files": files})
	})
	handle("/index", "index", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "%-20s %-42s %8s %12s %10s\n", "name", "info-hash", "seeds", "downloaders", "downloads")
		for _, e := range r.Scrape() {
			fmt.Fprintf(w, "%-20s %-42s %8d %12d %10d\n",
				e.Name, HexHash(e.InfoHash), e.Complete, e.Incomplete, e.Downloaded)
		}
	})
	handle("/torrent/", "torrent", func(w http.ResponseWriter, req *http.Request) {
		hexHash := req.URL.Path[len("/torrent/"):]
		h, err := ParseHexHash(hexHash)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		m, err := r.Torrent(h)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		data, err := m.Marshal()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/x-bittorrent")
		_, _ = w.Write(data)
	})
	return mux
}

// instrument wraps an endpoint handler with a request counter and a
// latency histogram; with a nil registry the handler is returned as-is,
// so the uninstrumented path has zero per-request overhead.
func instrument(ob *obs.Registry, endpoint string, h http.HandlerFunc) http.HandlerFunc {
	if ob == nil {
		return h
	}
	requests := ob.Counter("tracker_requests_total", obs.L("endpoint", endpoint))
	latency := ob.Histogram("tracker_request_seconds", obs.LatencyBuckets, obs.L("endpoint", endpoint))
	return func(w http.ResponseWriter, req *http.Request) {
		start := time.Now()
		h(w, req)
		requests.Inc()
		latency.Since(start)
	}
}

// announceFromQuery decodes an announce request from URL parameters.
func announceFromQuery(r *Registry, req *http.Request) (*AnnounceResponse, error) {
	q := req.URL.Query()
	h, err := hashFromRaw(q.Get("info_hash"))
	if err != nil {
		return nil, err
	}
	port, err := strconv.Atoi(q.Get("port"))
	if err != nil {
		return nil, fmt.Errorf("bad port %q", q.Get("port"))
	}
	left := int64(0)
	if s := q.Get("left"); s != "" {
		left, err = strconv.ParseInt(s, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad left %q", s)
		}
	}
	event, err := ParseEvent(q.Get("event"))
	if err != nil {
		return nil, err
	}
	numWant := 0
	if s := q.Get("numwant"); s != "" {
		numWant, err = strconv.Atoi(s)
		if err != nil {
			return nil, fmt.Errorf("bad numwant %q", s)
		}
	}
	ip := q.Get("ip")
	if ip == "" {
		ip = req.RemoteAddr
	}
	return r.Announce(AnnounceRequest{
		InfoHash: h,
		PeerID:   q.Get("peer_id"),
		IP:       ip,
		Port:     port,
		Left:     left,
		Event:    event,
		NumWant:  numWant,
	})
}

// hashFromRaw accepts either the raw 20-byte binary form (as URL-decoded by
// net/url) or 40 hex characters.
func hashFromRaw(raw string) (InfoHash, error) {
	var h InfoHash
	switch len(raw) {
	case 20:
		copy(h[:], raw)
		return h, nil
	case 40:
		return ParseHexHash(raw)
	default:
		return h, fmt.Errorf("bad info_hash length %d", len(raw))
	}
}

func writeBencoded(w http.ResponseWriter, v map[string]any) {
	data, err := bencode.Marshal(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=iso-8859-1")
	_, _ = w.Write(data)
}
