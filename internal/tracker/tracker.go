// Package tracker implements the two centralized components of the paper's
// server–torrent architecture (Section 3.1, Figure 1): the tracker, which
// coordinates each torrent's swarm through announce/scrape, and the web
// server, which indexes published torrents and hands out their metadata.
// Both are in-process Go services with an HTTP front end (BEP-3 style,
// bencoded responses) so they can be run standalone (cmd/trackerd) or
// embedded in simulations and tests.
package tracker

import (
	"crypto/sha1"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"mfdl/internal/metainfo"
	"mfdl/internal/rng"
)

// InfoHash identifies a torrent.
type InfoHash = [sha1.Size]byte

// Event is the announce event.
type Event int

// Announce events per BEP-3.
const (
	// EventNone is a periodic keep-alive announce.
	EventNone Event = iota
	// EventStarted announces a new peer.
	EventStarted
	// EventCompleted marks the transition from downloader to seed.
	EventCompleted
	// EventStopped removes the peer.
	EventStopped
)

// ParseEvent maps the wire strings ("", "started", "completed", "stopped").
func ParseEvent(s string) (Event, error) {
	switch s {
	case "":
		return EventNone, nil
	case "started":
		return EventStarted, nil
	case "completed":
		return EventCompleted, nil
	case "stopped":
		return EventStopped, nil
	default:
		return EventNone, fmt.Errorf("tracker: unknown event %q", s)
	}
}

// PeerInfo is one swarm member as returned to announcers.
type PeerInfo struct {
	ID   string
	IP   string
	Port int
	// Seed reports whether the peer has completed the download.
	Seed bool
}

// AnnounceRequest is one tracker announce.
type AnnounceRequest struct {
	InfoHash InfoHash
	PeerID   string
	IP       string
	Port     int
	Left     int64
	Event    Event
	// NumWant caps the returned peer list (default 50).
	NumWant int
}

// AnnounceResponse is the tracker's reply.
type AnnounceResponse struct {
	// Interval is the requested re-announce interval.
	Interval time.Duration
	// Complete and Incomplete are the seed and downloader counts — the
	// numbers the paper says users read off the index before joining.
	Complete, Incomplete int
	Peers                []PeerInfo
}

type peerEntry struct {
	info     PeerInfo
	lastSeen time.Time
}

type swarm struct {
	meta  *metainfo.MetaInfo
	peers map[string]*peerEntry
	// downloadsCompleted counts EventCompleted announces for the index.
	downloadsCompleted int
}

// Registry is the in-memory tracker + index state. Safe for concurrent use.
type Registry struct {
	mu     sync.Mutex
	swarms map[InfoHash]*swarm
	rng    *rng.Source
	// Interval is handed to announcers; a peer silent for 2×Interval is
	// pruned lazily.
	Interval time.Duration
	// Now is the clock (replaceable in tests).
	Now func() time.Time
}

// NewRegistry returns an empty registry with a 30-minute announce interval.
func NewRegistry(seed uint64) *Registry {
	return &Registry{
		swarms:   map[InfoHash]*swarm{},
		rng:      rng.New(seed),
		Interval: 30 * time.Minute,
		Now:      time.Now,
	}
}

// ErrUnknownTorrent is returned for announces against unpublished torrents.
var ErrUnknownTorrent = errors.New("tracker: unknown info-hash")

// Publish registers a torrent (the web-server upload step). Re-publishing
// the same info-hash is idempotent.
func (r *Registry) Publish(m *metainfo.MetaInfo) (InfoHash, error) {
	if m == nil {
		return InfoHash{}, errors.New("tracker: nil metainfo")
	}
	if err := m.Info.Validate(); err != nil {
		return InfoHash{}, err
	}
	h, err := m.Info.InfoHash()
	if err != nil {
		return InfoHash{}, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.swarms[h]; !ok {
		r.swarms[h] = &swarm{meta: m, peers: map[string]*peerEntry{}}
	}
	return h, nil
}

// Torrent returns the metadata for an info-hash (the web-server download
// step).
func (r *Registry) Torrent(h InfoHash) (*metainfo.MetaInfo, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	sw, ok := r.swarms[h]
	if !ok {
		return nil, ErrUnknownTorrent
	}
	return sw.meta, nil
}

// Announce processes one announce and returns a random peer sample.
func (r *Registry) Announce(req AnnounceRequest) (*AnnounceResponse, error) {
	if req.PeerID == "" {
		return nil, errors.New("tracker: empty peer id")
	}
	if req.Port <= 0 || req.Port > 65535 {
		return nil, fmt.Errorf("tracker: invalid port %d", req.Port)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	sw, ok := r.swarms[req.InfoHash]
	if !ok {
		return nil, ErrUnknownTorrent
	}
	now := r.Now()
	r.prune(sw, now)
	switch req.Event {
	case EventStopped:
		delete(sw.peers, req.PeerID)
	case EventCompleted:
		sw.downloadsCompleted++
		fallthrough
	default:
		e, ok := sw.peers[req.PeerID]
		if !ok {
			e = &peerEntry{}
			sw.peers[req.PeerID] = e
		}
		e.info = PeerInfo{ID: req.PeerID, IP: req.IP, Port: req.Port, Seed: req.Left == 0}
		e.lastSeen = now
	}
	resp := &AnnounceResponse{Interval: r.Interval}
	others := make([]PeerInfo, 0, len(sw.peers))
	for id, e := range sw.peers {
		if e.info.Seed {
			resp.Complete++
		} else {
			resp.Incomplete++
		}
		if id != req.PeerID {
			others = append(others, e.info)
		}
	}
	// Deterministic order before sampling so results depend only on the
	// registry's RNG stream.
	sort.Slice(others, func(i, j int) bool { return others[i].ID < others[j].ID })
	want := req.NumWant
	if want <= 0 || want > 50 {
		want = 50
	}
	if want > len(others) {
		want = len(others)
	}
	r.rng.Shuffle(len(others), func(i, j int) { others[i], others[j] = others[j], others[i] })
	resp.Peers = others[:want]
	return resp, nil
}

// prune drops peers not seen for two intervals. Caller holds the lock.
func (r *Registry) prune(sw *swarm, now time.Time) {
	deadline := now.Add(-2 * r.Interval)
	for id, e := range sw.peers {
		if e.lastSeen.Before(deadline) {
			delete(sw.peers, id)
		}
	}
}

// ScrapeEntry summarizes one swarm.
type ScrapeEntry struct {
	Name                 string
	InfoHash             InfoHash
	Complete, Incomplete int
	Downloaded           int
}

// Scrape returns summaries for the requested hashes (all when empty) in
// name order — the index listing a user consults before entering torrents.
func (r *Registry) Scrape(hashes ...InfoHash) []ScrapeEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.Now()
	var out []ScrapeEntry
	include := func(h InfoHash) bool {
		if len(hashes) == 0 {
			return true
		}
		for _, want := range hashes {
			if want == h {
				return true
			}
		}
		return false
	}
	for h, sw := range r.swarms {
		if !include(h) {
			continue
		}
		r.prune(sw, now)
		e := ScrapeEntry{Name: sw.meta.Info.Name, InfoHash: h, Downloaded: sw.downloadsCompleted}
		for _, pe := range sw.peers {
			if pe.info.Seed {
				e.Complete++
			} else {
				e.Incomplete++
			}
		}
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// HexHash renders an info-hash as lowercase hex.
func HexHash(h InfoHash) string { return hex.EncodeToString(h[:]) }

// ParseHexHash parses a 40-character hex info-hash.
func ParseHexHash(s string) (InfoHash, error) {
	var h InfoHash
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != sha1.Size {
		return h, fmt.Errorf("tracker: bad info-hash %q", s)
	}
	copy(h[:], b)
	return h, nil
}
