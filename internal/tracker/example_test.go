package tracker_test

import (
	"fmt"
	"log"

	"mfdl/internal/metainfo"
	"mfdl/internal/tracker"
)

// Publish a torrent, announce two peers, and read the swarm state — the
// whole Figure-1 control plane without HTTP.
func ExampleRegistry() {
	reg := tracker.NewRegistry(1)
	data := make([]byte, 2048)
	meta, err := metainfo.Build("demo", "/announce", 1024,
		[]metainfo.FileEntry{{Path: "demo/file.bin", Length: 2048}},
		metainfo.BytesSource(data))
	if err != nil {
		log.Fatal(err)
	}
	hash, err := reg.Publish(meta)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := reg.Announce(tracker.AnnounceRequest{
		InfoHash: hash, PeerID: "seed-1", IP: "10.0.0.1", Port: 6881,
		Left: 0, Event: tracker.EventCompleted,
	}); err != nil {
		log.Fatal(err)
	}
	resp, err := reg.Announce(tracker.AnnounceRequest{
		InfoHash: hash, PeerID: "leech-1", IP: "10.0.0.2", Port: 6881,
		Left: 2048, Event: tracker.EventStarted,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("seeds=%d downloaders=%d peers=%d\n",
		resp.Complete, resp.Incomplete, len(resp.Peers))
	// Output:
	// seeds=1 downloaders=1 peers=1
}
