package rootfind

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBisectSqrt2(t *testing.T) {
	f := func(x float64) float64 { return x*x - 2 }
	root, err := Bisect(f, 0, 2, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(root-math.Sqrt2) > 1e-10 {
		t.Fatalf("root = %v", root)
	}
}

func TestBisectEndpointRoot(t *testing.T) {
	f := func(x float64) float64 { return x }
	if r, err := Bisect(f, 0, 1, 1e-12); err != nil || r != 0 {
		t.Fatalf("r=%v err=%v", r, err)
	}
	if r, err := Bisect(f, -1, 0, 1e-12); err != nil || r != 0 {
		t.Fatalf("r=%v err=%v", r, err)
	}
}

func TestBisectNoBracket(t *testing.T) {
	f := func(x float64) float64 { return x*x + 1 }
	if _, err := Bisect(f, -1, 1, 1e-12); err != ErrNoBracket {
		t.Fatalf("err = %v", err)
	}
}

func TestNewtonCubeRoot(t *testing.T) {
	f := func(x float64) float64 { return x*x*x - 27 }
	df := func(x float64) float64 { return 3 * x * x }
	root, err := Newton(f, df, 5, 1e-13)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(root-3) > 1e-10 {
		t.Fatalf("root = %v", root)
	}
}

func TestNewtonZeroDerivative(t *testing.T) {
	f := func(x float64) float64 { return x*x + 1 }
	df := func(x float64) float64 { return 2 * x }
	if _, err := Newton(f, df, 0, 1e-12); err == nil {
		t.Fatal("zero derivative not reported")
	}
}

func TestBrentAgainstKnownRoots(t *testing.T) {
	cases := []struct {
		f    Func
		a, b float64
		want float64
	}{
		{func(x float64) float64 { return x*x - 2 }, 0, 2, math.Sqrt2},
		{func(x float64) float64 { return math.Cos(x) - x }, 0, 1, 0.7390851332151607},
		{func(x float64) float64 { return math.Exp(x) - 5 }, 0, 3, math.Log(5)},
		{func(x float64) float64 { return x*x*x - x - 2 }, 1, 2, 1.5213797068045676},
	}
	for i, c := range cases {
		root, err := Brent(c.f, c.a, c.b, 1e-14)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if math.Abs(root-c.want) > 1e-9 {
			t.Fatalf("case %d: root = %v, want %v", i, root, c.want)
		}
	}
}

func TestBrentNoBracket(t *testing.T) {
	f := func(x float64) float64 { return 1 + x*x }
	if _, err := Brent(f, -1, 1, 1e-12); err != ErrNoBracket {
		t.Fatalf("err = %v", err)
	}
}

func TestBrentMatchesBisectProperty(t *testing.T) {
	// For monotone cubics with a root in the interval, Brent and Bisect
	// must agree.
	f := func(cRaw int8) bool {
		c := float64(cRaw%50) / 10
		fn := func(x float64) float64 { return x*x*x + x - c }
		a, b := -5.0, 5.0
		rBrent, err1 := Brent(fn, a, b, 1e-13)
		rBisect, err2 := Bisect(fn, a, b, 1e-13)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(rBrent-rBisect) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFindBracket(t *testing.T) {
	f := func(x float64) float64 { return x - 0.37 }
	a, b, ok := FindBracket(f, 0, 1, 100)
	if !ok {
		t.Fatal("no bracket found")
	}
	if !(a <= 0.37 && 0.37 <= b) {
		t.Fatalf("bracket [%v, %v] misses root", a, b)
	}
	if _, _, ok := FindBracket(func(x float64) float64 { return 1 }, 0, 1, 10); ok {
		t.Fatal("bracket reported for rootless function")
	}
}
