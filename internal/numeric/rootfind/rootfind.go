// Package rootfind provides scalar root-finding used by the crossover
// analysis (where one downloading scheme starts beating another as the file
// correlation p varies): bisection, Newton's method, and Brent's method.
package rootfind

import (
	"errors"
	"math"
)

// Func is a scalar function f(x).
type Func func(x float64) float64

// ErrNoBracket is returned when [a, b] does not bracket a sign change.
var ErrNoBracket = errors.New("rootfind: interval does not bracket a root")

// ErrNoConvergence is returned when the iteration budget is exhausted.
var ErrNoConvergence = errors.New("rootfind: did not converge")

// Bisect finds a root of f in [a, b] by bisection to absolute tolerance tol.
// f(a) and f(b) must have opposite signs.
func Bisect(f Func, a, b, tol float64) (float64, error) {
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if fa*fb > 0 {
		return 0, ErrNoBracket
	}
	if tol <= 0 {
		tol = 1e-12
	}
	for i := 0; i < 200; i++ {
		m := 0.5 * (a + b)
		fm := f(m)
		if fm == 0 || 0.5*(b-a) < tol {
			return m, nil
		}
		if fa*fm < 0 {
			b = m
		} else {
			a, fa = m, fm
		}
	}
	return 0.5 * (a + b), ErrNoConvergence
}

// Newton finds a root of f starting at x0 using the analytic derivative df,
// to absolute step tolerance tol.
func Newton(f, df Func, x0, tol float64) (float64, error) {
	if tol <= 0 {
		tol = 1e-12
	}
	x := x0
	for i := 0; i < 100; i++ {
		fx := f(x)
		if fx == 0 {
			return x, nil
		}
		d := df(x)
		if d == 0 || math.IsNaN(d) || math.IsInf(d, 0) {
			return x, errors.New("rootfind: zero or invalid derivative")
		}
		step := fx / d
		x -= step
		if math.Abs(step) < tol {
			return x, nil
		}
	}
	return x, ErrNoConvergence
}

// Brent finds a root of f in the bracketing interval [a, b] using Brent's
// method (inverse quadratic interpolation with bisection fallback).
func Brent(f Func, a, b, tol float64) (float64, error) {
	if tol <= 0 {
		tol = 1e-12
	}
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if fa*fb > 0 {
		return 0, ErrNoBracket
	}
	c, fc := a, fa
	d, e := b-a, b-a
	for i := 0; i < 200; i++ {
		if math.Abs(fc) < math.Abs(fb) {
			a, b, c = b, c, b
			fa, fb, fc = fb, fc, fb
		}
		tol1 := 2*math.Nextafter(math.Abs(b), math.Inf(1)) - 2*math.Abs(b) + 0.5*tol
		xm := 0.5 * (c - b)
		if math.Abs(xm) <= tol1 || fb == 0 {
			return b, nil
		}
		if math.Abs(e) >= tol1 && math.Abs(fa) > math.Abs(fb) {
			// Attempt inverse quadratic interpolation.
			s := fb / fa
			var p, q float64
			if a == c {
				p = 2 * xm * s
				q = 1 - s
			} else {
				qq := fa / fc
				r := fb / fc
				p = s * (2*xm*qq*(qq-r) - (b-a)*(r-1))
				q = (qq - 1) * (r - 1) * (s - 1)
			}
			if p > 0 {
				q = -q
			}
			p = math.Abs(p)
			min1 := 3*xm*q - math.Abs(tol1*q)
			min2 := math.Abs(e * q)
			if 2*p < math.Min(min1, min2) {
				e, d = d, p/q
			} else {
				d, e = xm, xm
			}
		} else {
			d, e = xm, xm
		}
		a, fa = b, fb
		if math.Abs(d) > tol1 {
			b += d
		} else {
			b += math.Copysign(tol1, xm)
		}
		fb = f(b)
		if (fb > 0) == (fc > 0) {
			c, fc = a, fa
			d, e = b-a, b-a
		}
	}
	return b, ErrNoConvergence
}

// FindBracket scans [lo, hi] in n equal steps and returns the first
// subinterval on which f changes sign. ok is false if none exists.
func FindBracket(f Func, lo, hi float64, n int) (a, b float64, ok bool) {
	if n < 1 {
		n = 1
	}
	prevX := lo
	prevF := f(lo)
	for i := 1; i <= n; i++ {
		x := lo + (hi-lo)*float64(i)/float64(n)
		fx := f(x)
		if prevF == 0 {
			return prevX, prevX, true
		}
		if prevF*fx <= 0 {
			return prevX, x, true
		}
		prevX, prevF = x, fx
	}
	return 0, 0, false
}
