package ode

import (
	"math"
	"testing"
	"testing/quick"
)

// expDecay is dx/dt = -x with solution x(t) = x0·e^{-t}.
func expDecay(t float64, x, dst []float64) {
	for i := range x {
		dst[i] = -x[i]
	}
}

// circle is the harmonic oscillator x” = -x written as a system; the
// solution preserves x² + v².
func circle(t float64, x, dst []float64) {
	dst[0] = x[1]
	dst[1] = -x[0]
}

// logistic dx/dt = x(1-x), steady state 1.
func logistic(t float64, x, dst []float64) {
	dst[0] = x[0] * (1 - x[0])
}

func TestExactOnLinearProblem(t *testing.T) {
	// All steppers integrate dx/dt = c exactly.
	rhs := func(t float64, x, dst []float64) { dst[0] = 3 }
	for _, name := range []string{"euler", "heun", "rk4"} {
		s, err := NewStepper(name, 1)
		if err != nil {
			t.Fatal(err)
		}
		x := []float64{1}
		if _, err := Integrate(s, rhs, 0, 2, x, 0.1); err != nil {
			t.Fatal(err)
		}
		if math.Abs(x[0]-7) > 1e-12 {
			t.Fatalf("%s: x(2) = %v, want 7", name, x[0])
		}
	}
}

func TestNewStepperUnknown(t *testing.T) {
	if _, err := NewStepper("rk9000", 1); err == nil {
		t.Fatal("expected error for unknown stepper")
	}
}

func TestConvergenceOrders(t *testing.T) {
	// Measure empirical order on exp decay by halving h; the error ratio
	// must approach 2^order.
	cases := []struct {
		name      string
		order     float64
		tolerance float64
	}{{"euler", 1, 0.15}, {"heun", 2, 0.15}, {"rk4", 4, 0.25}}
	for _, c := range cases {
		errAt := func(h float64) float64 {
			s, _ := NewStepper(c.name, 1)
			x := []float64{1}
			if _, err := Integrate(s, expDecay, 0, 1, x, h); err != nil {
				t.Fatal(err)
			}
			return math.Abs(x[0] - math.Exp(-1))
		}
		e1, e2 := errAt(0.02), errAt(0.01)
		gotOrder := math.Log2(e1 / e2)
		if math.Abs(gotOrder-c.order) > c.tolerance {
			t.Fatalf("%s empirical order %.3f, want ~%v (e1=%g e2=%g)",
				c.name, gotOrder, c.order, e1, e2)
		}
	}
}

func TestRK4Accuracy(t *testing.T) {
	s := NewRK4(2)
	x := []float64{1, 0}
	if _, err := Integrate(s, circle, 0, 2*math.Pi, x, 0.01); err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-8 || math.Abs(x[1]) > 1e-8 {
		t.Fatalf("one revolution: got (%v,%v), want (1,0)", x[0], x[1])
	}
}

func TestIntegrateFinalPartialStep(t *testing.T) {
	// t1 not a multiple of h: must land exactly on t1.
	s := NewRK4(1)
	x := []float64{1}
	tEnd, err := Integrate(s, expDecay, 0, 1.05, x, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if tEnd != 1.05 {
		t.Fatalf("final time %v, want 1.05", tEnd)
	}
	if math.Abs(x[0]-math.Exp(-1.05)) > 1e-6 {
		t.Fatalf("x = %v, want %v", x[0], math.Exp(-1.05))
	}
}

func TestIntegrateRejectsBadArgs(t *testing.T) {
	s := NewRK4(1)
	x := []float64{1}
	if _, err := Integrate(s, expDecay, 0, 1, x, 0); err == nil {
		t.Fatal("h=0 accepted")
	}
	if _, err := Integrate(s, expDecay, 1, 0, x, 0.1); err == nil {
		t.Fatal("t1 < t0 accepted")
	}
}

func TestTrajectoryRecordsEndpoints(t *testing.T) {
	s := NewRK4(1)
	samples, err := Trajectory(s, expDecay, 0, 1, []float64{1}, 0.1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if samples[0].T != 0 || samples[0].X[0] != 1 {
		t.Fatalf("first sample %v", samples[0])
	}
	last := samples[len(samples)-1]
	if last.T != 1 {
		t.Fatalf("last sample at t=%v, want 1", last.T)
	}
	if math.Abs(last.X[0]-math.Exp(-1)) > 1e-6 {
		t.Fatalf("x(1) = %v", last.X[0])
	}
}

func TestTrajectoryDoesNotMutateInput(t *testing.T) {
	s := NewRK4(1)
	x := []float64{5}
	if _, err := Trajectory(s, expDecay, 0, 1, x, 0.1, 1); err != nil {
		t.Fatal(err)
	}
	if x[0] != 5 {
		t.Fatalf("input state mutated to %v", x[0])
	}
}

func TestSteadyStateLogistic(t *testing.T) {
	x := []float64{0.01}
	tEnd, err := SteadyState(NewRK4(1), logistic, x, SteadyStateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-8 {
		t.Fatalf("steady state %v (t=%v), want 1", x[0], tEnd)
	}
}

func TestSteadyStateLinearSystem(t *testing.T) {
	// dx/dt = A x + b with A = -I, b = (2,3): fixed point (2,3).
	rhs := func(t float64, x, dst []float64) {
		dst[0] = 2 - x[0]
		dst[1] = 3 - x[1]
	}
	x := []float64{0, 0}
	if _, err := SteadyState(NewRK4(2), rhs, x, SteadyStateOptions{}); err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-2) > 1e-8 || math.Abs(x[1]-3) > 1e-8 {
		t.Fatalf("steady state %v, want (2,3)", x)
	}
}

func TestSteadyStateNoConvergence(t *testing.T) {
	// Pure rotation never converges.
	x := []float64{1, 0}
	_, err := SteadyState(NewRK4(2), circle, x, SteadyStateOptions{MaxTime: 100})
	if err != ErrNoConvergence {
		t.Fatalf("err = %v, want ErrNoConvergence", err)
	}
}

func TestSteadyStateDivergenceDetected(t *testing.T) {
	rhs := func(t float64, x, dst []float64) { dst[0] = x[0] * x[0] }
	x := []float64{10}
	_, err := SteadyState(NewRK4(1), rhs, x, SteadyStateOptions{Step: 1, MaxTime: 1e5})
	if err == nil {
		t.Fatal("divergence not reported")
	}
}

func TestMaxNorm(t *testing.T) {
	if MaxNorm(nil) != 0 {
		t.Fatal("MaxNorm(nil) != 0")
	}
	if got := MaxNorm([]float64{1, -7, 3}); got != 7 {
		t.Fatalf("MaxNorm = %v", got)
	}
}

func TestDOPRIExpDecay(t *testing.T) {
	x := []float64{1}
	st, err := DOPRI(expDecay, 0, 5, x, DOPRIOptions{RTol: 1e-10, ATol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-math.Exp(-5)) > 1e-9 {
		t.Fatalf("x(5) = %v, want %v (stats %+v)", x[0], math.Exp(-5), st)
	}
	if st.Accepted == 0 {
		t.Fatal("no accepted steps recorded")
	}
}

func TestDOPRIOscillatorEnergy(t *testing.T) {
	x := []float64{1, 0}
	if _, err := DOPRI(circle, 0, 20*math.Pi, x, DOPRIOptions{RTol: 1e-9, ATol: 1e-11}); err != nil {
		t.Fatal(err)
	}
	energy := x[0]*x[0] + x[1]*x[1]
	if math.Abs(energy-1) > 1e-6 {
		t.Fatalf("energy drift: %v", energy)
	}
}

func TestDOPRIToleranceScaling(t *testing.T) {
	// Tighter tolerance must not give a larger error.
	run := func(rtol float64) float64 {
		x := []float64{1, 0}
		if _, err := DOPRI(circle, 0, 2*math.Pi, x, DOPRIOptions{RTol: rtol, ATol: rtol * 1e-2}); err != nil {
			t.Fatal(err)
		}
		return math.Hypot(x[0]-1, x[1])
	}
	loose, tight := run(1e-4), run(1e-10)
	if tight > loose {
		t.Fatalf("tight tolerance error %g > loose %g", tight, loose)
	}
	if tight > 1e-7 {
		t.Fatalf("tight run error %g too large", tight)
	}
}

func TestDOPRIZeroSpan(t *testing.T) {
	x := []float64{4}
	st, err := DOPRI(expDecay, 2, 2, x, DOPRIOptions{})
	if err != nil || x[0] != 4 || st.Accepted != 0 {
		t.Fatalf("zero-span integration: x=%v err=%v st=%+v", x[0], err, st)
	}
}

func TestDOPRIRejectsReversedSpan(t *testing.T) {
	x := []float64{1}
	if _, err := DOPRI(expDecay, 1, 0, x, DOPRIOptions{}); err == nil {
		t.Fatal("reversed span accepted")
	}
}

func TestDOPRIMatchesRK4(t *testing.T) {
	// Both integrators on a nonlinear problem must agree to ~1e-8.
	rhs := func(t float64, x, dst []float64) {
		dst[0] = math.Sin(t) - 0.3*x[0]
		dst[1] = x[0] - x[1]
	}
	a := []float64{1, 0}
	b := []float64{1, 0}
	if _, err := Integrate(NewRK4(2), rhs, 0, 10, a, 1e-3); err != nil {
		t.Fatal(err)
	}
	if _, err := DOPRI(rhs, 0, 10, b, DOPRIOptions{RTol: 1e-11, ATol: 1e-13}); err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-7 {
			t.Fatalf("component %d: rk4=%v dopri=%v", i, a[i], b[i])
		}
	}
}

func TestRK4LinearityProperty(t *testing.T) {
	// For the linear system dx/dt = -x the flow is linear: integrating a
	// scaled initial condition scales the result.
	f := func(x0Raw uint16) bool {
		x0 := float64(x0Raw%1000)/100 + 0.1
		a := []float64{x0}
		b := []float64{2 * x0}
		if _, err := Integrate(NewRK4(1), expDecay, 0, 1, a, 0.05); err != nil {
			return false
		}
		if _, err := Integrate(NewRK4(1), expDecay, 0, 1, b, 0.05); err != nil {
			return false
		}
		return math.Abs(b[0]-2*a[0]) < 1e-9*(1+math.Abs(b[0]))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRK4Step(b *testing.B) {
	s := NewRK4(65)
	x := make([]float64, 65)
	for i := range x {
		x[i] = 1
	}
	rhs := func(t float64, x, dst []float64) {
		for i := range x {
			dst[i] = -0.01 * x[i]
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step(rhs, 0, x, 0.5)
	}
}

func BenchmarkDOPRIDecay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		x := []float64{1}
		if _, err := DOPRI(expDecay, 0, 10, x, DOPRIOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}
