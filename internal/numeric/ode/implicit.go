package ode

import (
	"errors"
	"fmt"
	"math"

	"mfdl/internal/numeric/linalg"
)

// ImplicitEuler is the backward Euler method: x₁ solves
// x₁ = x₀ + h·f(t+h, x₁), found by Newton iteration with a
// finite-difference Jacobian and LU solves. First order but A-stable, so
// it tolerates step sizes far beyond the explicit stability limits — the
// integrator of last resort for stiff parameter corners of the fluid
// models.
type ImplicitEuler struct {
	dim     int
	fx, rhs []float64
	xTrial  []float64
	// MaxNewton bounds the Newton iterations per step (default 20).
	MaxNewton int
	// Tol is the Newton residual tolerance (default 1e-12).
	Tol float64
}

// NewImplicitEuler returns an implicit Euler stepper for dimension dim.
func NewImplicitEuler(dim int) *ImplicitEuler {
	return &ImplicitEuler{
		dim:       dim,
		fx:        make([]float64, dim),
		rhs:       make([]float64, dim),
		xTrial:    make([]float64, dim),
		MaxNewton: 20,
		Tol:       1e-12,
	}
}

// Order implements Stepper.
func (s *ImplicitEuler) Order() int { return 1 }

// Name implements Stepper.
func (s *ImplicitEuler) Name() string { return "implicit-euler" }

// Step implements Stepper. If the Newton iteration fails to converge or
// meets a singular matrix, it falls back to one explicit Euler step (the
// caller keeps integrating; fluid relaxations only need eventual
// contraction).
func (s *ImplicitEuler) Step(f RHS, t float64, x []float64, h float64) {
	copy(s.xTrial, x)
	tNew := t + h
	converged := false
	for it := 0; it < s.MaxNewton; it++ {
		// Residual g(x₁) = x₁ − x₀ − h·f(t+h, x₁).
		f(tNew, s.xTrial, s.fx)
		norm := 0.0
		for i := 0; i < s.dim; i++ {
			s.rhs[i] = -(s.xTrial[i] - x[i] - h*s.fx[i])
			if a := math.Abs(s.rhs[i]); a > norm {
				norm = a
			}
		}
		if norm <= s.Tol*(1+MaxNorm(s.xTrial)) {
			converged = true
			break
		}
		// J_g = I − h·J_f (finite differences).
		jac := numericalJacobian(f, tNew, s.xTrial)
		for r := 0; r < s.dim; r++ {
			for c := 0; c < s.dim; c++ {
				v := -h * jac.At(r, c)
				if r == c {
					v += 1
				}
				jac.Set(r, c, v)
			}
		}
		delta, err := linalg.Solve(jac, s.rhs)
		if err != nil {
			break
		}
		for i := 0; i < s.dim; i++ {
			s.xTrial[i] += delta[i]
		}
	}
	if converged {
		copy(x, s.xTrial)
		return
	}
	// Fallback: explicit Euler.
	f(t, x, s.fx)
	for i := range x {
		x[i] += h * s.fx[i]
	}
}

// numericalJacobian computes ∂f/∂x by central differences.
func numericalJacobian(f RHS, t float64, x []float64) *linalg.Matrix {
	n := len(x)
	j := linalg.NewMatrix(n, n)
	fp := make([]float64, n)
	fm := make([]float64, n)
	xp := append([]float64(nil), x...)
	for c := 0; c < n; c++ {
		h := 1e-7 * math.Max(1, math.Abs(x[c]))
		orig := xp[c]
		xp[c] = orig + h
		f(t, xp, fp)
		xp[c] = orig - h
		f(t, xp, fm)
		xp[c] = orig
		for r := 0; r < n; r++ {
			j.Set(r, c, (fp[r]-fm[r])/(2*h))
		}
	}
	return j
}

// NewtonOptions configures NewtonSteadyState.
type NewtonOptions struct {
	// Tol is the residual tolerance ‖f(x)‖∞ (default 1e-12).
	Tol float64
	// MaxIter bounds the Newton iterations (default 200).
	MaxIter int
	// Damping is the backtracking shrink factor (default 0.5) applied
	// until the residual decreases; at most 30 halvings per iteration.
	Damping float64
}

func (o *NewtonOptions) defaults() {
	if o.Tol <= 0 {
		o.Tol = 1e-12
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 200
	}
	if o.Damping <= 0 || o.Damping >= 1 {
		o.Damping = 0.5
	}
}

// ErrNewtonFailed is returned when the damped Newton iteration stalls.
var ErrNewtonFailed = errors.New("ode: Newton steady-state iteration failed")

// NewtonSteadyState solves f(x) = 0 directly by damped Newton iteration
// from the supplied starting state (modified in place). It is vastly
// faster than time relaxation when the starting point is in the basin —
// callers typically warm-start it with a short relaxation.
func NewtonSteadyState(f RHS, x []float64, opt NewtonOptions) error {
	opt.defaults()
	n := len(x)
	fx := make([]float64, n)
	trial := make([]float64, n)
	f(0, x, fx)
	resid := MaxNorm(fx)
	for it := 0; it < opt.MaxIter; it++ {
		if resid <= opt.Tol {
			return nil
		}
		jac := numericalJacobian(f, 0, x)
		rhs := make([]float64, n)
		for i := range rhs {
			rhs[i] = -fx[i]
		}
		delta, err := linalg.Solve(jac, rhs)
		if err != nil {
			return fmt.Errorf("ode: Newton Jacobian solve: %w", err)
		}
		// Backtracking line search on the residual norm.
		step := 1.0
		improved := false
		for back := 0; back < 30; back++ {
			for i := range trial {
				trial[i] = x[i] + step*delta[i]
			}
			f(0, trial, fx)
			if newResid := MaxNorm(fx); newResid < resid {
				copy(x, trial)
				resid = newResid
				improved = true
				break
			}
			step *= opt.Damping
		}
		if !improved {
			return ErrNewtonFailed
		}
	}
	if resid <= opt.Tol {
		return nil
	}
	return ErrNewtonFailed
}
