// Package ode implements the ordinary-differential-equation machinery the
// fluid models need: explicit fixed-step integrators (Euler, Heun, the
// classic fourth-order Runge–Kutta), an adaptive Dormand–Prince RK45
// integrator with PI step control, trajectory sampling, and a relaxation
// driver that integrates a system until it reaches steady state.
//
// Everything is hand-rolled over float64 slices; there are no external
// dependencies. Systems are autonomous or time-dependent via the RHS
// signature f(t, x, dst).
package ode

import (
	"errors"
	"fmt"
	"math"
)

// RHS evaluates the right-hand side dx/dt = f(t, x) into dst. dst and x are
// the same length and never alias. Implementations must not retain either
// slice.
type RHS func(t float64, x, dst []float64)

// Stepper advances a state by one step of size h. Implementations write the
// new state into x in place, using scratch storage owned by the Stepper, so
// a Stepper is not safe for concurrent use.
type Stepper interface {
	// Step advances x from time t by h in place.
	Step(f RHS, t float64, x []float64, h float64)
	// Order returns the classical order of accuracy.
	Order() int
	// Name returns a short identifier ("rk4", "euler", ...).
	Name() string
}

// Euler is the explicit first-order Euler method.
type Euler struct{ k, tmp []float64 }

// NewEuler returns an Euler stepper for systems of dimension dim.
func NewEuler(dim int) *Euler { return &Euler{k: make([]float64, dim)} }

// Step implements Stepper.
func (e *Euler) Step(f RHS, t float64, x []float64, h float64) {
	f(t, x, e.k)
	for i := range x {
		x[i] += h * e.k[i]
	}
}

// Order implements Stepper.
func (e *Euler) Order() int { return 1 }

// Name implements Stepper.
func (e *Euler) Name() string { return "euler" }

// Heun is the explicit second-order trapezoidal (improved Euler) method.
type Heun struct{ k1, k2, tmp []float64 }

// NewHeun returns a Heun stepper for systems of dimension dim.
func NewHeun(dim int) *Heun {
	return &Heun{
		k1:  make([]float64, dim),
		k2:  make([]float64, dim),
		tmp: make([]float64, dim),
	}
}

// Step implements Stepper.
func (s *Heun) Step(f RHS, t float64, x []float64, h float64) {
	f(t, x, s.k1)
	for i := range x {
		s.tmp[i] = x[i] + h*s.k1[i]
	}
	f(t+h, s.tmp, s.k2)
	for i := range x {
		x[i] += 0.5 * h * (s.k1[i] + s.k2[i])
	}
}

// Order implements Stepper.
func (s *Heun) Order() int { return 2 }

// Name implements Stepper.
func (s *Heun) Name() string { return "heun" }

// RK4 is the classic fourth-order Runge–Kutta method — the integrator named
// in the reproduction plan for the CMFSD model (Eq. 5 of the paper).
type RK4 struct{ k1, k2, k3, k4, tmp []float64 }

// NewRK4 returns an RK4 stepper for systems of dimension dim.
func NewRK4(dim int) *RK4 {
	return &RK4{
		k1:  make([]float64, dim),
		k2:  make([]float64, dim),
		k3:  make([]float64, dim),
		k4:  make([]float64, dim),
		tmp: make([]float64, dim),
	}
}

// Step implements Stepper.
func (s *RK4) Step(f RHS, t float64, x []float64, h float64) {
	f(t, x, s.k1)
	for i := range x {
		s.tmp[i] = x[i] + 0.5*h*s.k1[i]
	}
	f(t+0.5*h, s.tmp, s.k2)
	for i := range x {
		s.tmp[i] = x[i] + 0.5*h*s.k2[i]
	}
	f(t+0.5*h, s.tmp, s.k3)
	for i := range x {
		s.tmp[i] = x[i] + h*s.k3[i]
	}
	f(t+h, s.tmp, s.k4)
	for i := range x {
		x[i] += h / 6 * (s.k1[i] + 2*s.k2[i] + 2*s.k3[i] + s.k4[i])
	}
}

// Order implements Stepper.
func (s *RK4) Order() int { return 4 }

// Name implements Stepper.
func (s *RK4) Name() string { return "rk4" }

// NewStepper returns a stepper by name: "euler", "heun", or "rk4".
func NewStepper(name string, dim int) (Stepper, error) {
	switch name {
	case "euler":
		return NewEuler(dim), nil
	case "heun":
		return NewHeun(dim), nil
	case "rk4":
		return NewRK4(dim), nil
	default:
		return nil, fmt.Errorf("ode: unknown stepper %q", name)
	}
}

// Integrate advances x in place from t0 to t1 with fixed steps of size h
// (the final step is shortened to land exactly on t1). It returns the final
// time. h must be positive and t1 >= t0.
func Integrate(s Stepper, f RHS, t0, t1 float64, x []float64, h float64) (float64, error) {
	if h <= 0 {
		return t0, errors.New("ode: step size must be positive")
	}
	if t1 < t0 {
		return t0, errors.New("ode: t1 must be >= t0")
	}
	t := t0
	for t < t1 {
		step := h
		if t+step > t1 {
			step = t1 - t
		}
		s.Step(f, t, x, step)
		t += step
	}
	return t, nil
}

// Sample holds one trajectory point.
type Sample struct {
	T float64
	X []float64
}

// Trajectory integrates from t0 to t1 with fixed step h, recording the state
// every 'every' steps (and always the initial and final states). The initial
// state x is not modified; the returned samples own their storage.
func Trajectory(s Stepper, f RHS, t0, t1 float64, x []float64, h float64, every int) ([]Sample, error) {
	if every <= 0 {
		every = 1
	}
	cur := append([]float64(nil), x...)
	out := []Sample{{T: t0, X: append([]float64(nil), cur...)}}
	if h <= 0 {
		return nil, errors.New("ode: step size must be positive")
	}
	if t1 < t0 {
		return nil, errors.New("ode: t1 must be >= t0")
	}
	t := t0
	n := 0
	for t < t1 {
		step := h
		if t+step > t1 {
			step = t1 - t
		}
		s.Step(f, t, cur, step)
		t += step
		n++
		if n%every == 0 || t >= t1 {
			out = append(out, Sample{T: t, X: append([]float64(nil), cur...)})
		}
	}
	return out, nil
}

// MaxNorm returns the infinity norm of v.
func MaxNorm(v []float64) float64 {
	m := 0.0
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// SteadyStateOptions configures SteadyState.
type SteadyStateOptions struct {
	// Step is the fixed integration step (default 0.5).
	Step float64
	// Tol is the convergence tolerance: the run stops when
	// ‖f(x)‖∞ <= Tol · max(1, ‖x‖∞) (default 1e-10).
	Tol float64
	// MaxTime bounds the simulated time (default 1e6).
	MaxTime float64
	// CheckEvery is the number of steps between convergence checks
	// (default 16).
	CheckEvery int
}

func (o *SteadyStateOptions) defaults() {
	if o.Step <= 0 {
		o.Step = 0.5
	}
	if o.Tol <= 0 {
		o.Tol = 1e-10
	}
	if o.MaxTime <= 0 {
		o.MaxTime = 1e6
	}
	if o.CheckEvery <= 0 {
		o.CheckEvery = 16
	}
}

// ErrNoConvergence is returned when relaxation hits MaxTime before the
// residual drops below tolerance.
var ErrNoConvergence = errors.New("ode: steady state not reached within MaxTime")

// SteadyState integrates dx/dt = f(x) from x until the residual ‖f(x)‖∞ is
// below tolerance, returning the fixed point and the simulated time spent.
// x is modified in place. The RHS must be autonomous in the sense that its
// explicit t-dependence vanishes in the long run (all fluid models here are
// autonomous).
func SteadyState(s Stepper, f RHS, x []float64, opt SteadyStateOptions) (float64, error) {
	opt.defaults()
	dim := len(x)
	resid := make([]float64, dim)
	t := 0.0
	for t < opt.MaxTime {
		for i := 0; i < opt.CheckEvery && t < opt.MaxTime; i++ {
			s.Step(f, t, x, opt.Step)
			t += opt.Step
		}
		for _, v := range x {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return t, fmt.Errorf("ode: state diverged at t=%g", t)
			}
		}
		f(t, x, resid)
		if MaxNorm(resid) <= opt.Tol*math.Max(1, MaxNorm(x)) {
			return t, nil
		}
	}
	return t, ErrNoConvergence
}
