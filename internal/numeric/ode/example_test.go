package ode_test

import (
	"fmt"
	"log"

	"mfdl/internal/numeric/ode"
)

// Integrate exponential decay with the classic RK4.
func ExampleRK4() {
	decay := func(t float64, x, dst []float64) { dst[0] = -x[0] }
	x := []float64{1}
	if _, err := ode.Integrate(ode.NewRK4(1), decay, 0, 1, x, 0.01); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("x(1) = %.6f\n", x[0])
	// Output:
	// x(1) = 0.367879
}

// Relax a system to its fixed point.
func ExampleSteadyState() {
	logistic := func(t float64, x, dst []float64) { dst[0] = x[0] * (1 - x[0]) }
	x := []float64{0.01}
	if _, err := ode.SteadyState(ode.NewRK4(1), logistic, x, ode.SteadyStateOptions{}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("x* = %.4f\n", x[0])
	// Output:
	// x* = 1.0000
}
