package ode

import (
	"errors"
	"fmt"
	"math"
)

// Dormand–Prince 5(4) coefficients (the RKDP tableau used by MATLAB's ode45
// and SciPy's RK45). The fifth-order solution is propagated; the embedded
// fourth-order solution provides the local error estimate.
var (
	dpC = [7]float64{0, 1.0 / 5, 3.0 / 10, 4.0 / 5, 8.0 / 9, 1, 1}
	dpA = [7][6]float64{
		{},
		{1.0 / 5},
		{3.0 / 40, 9.0 / 40},
		{44.0 / 45, -56.0 / 15, 32.0 / 9},
		{19372.0 / 6561, -25360.0 / 2187, 64448.0 / 6561, -212.0 / 729},
		{9017.0 / 3168, -355.0 / 33, 46732.0 / 5247, 49.0 / 176, -5103.0 / 18656},
		{35.0 / 384, 0, 500.0 / 1113, 125.0 / 192, -2187.0 / 6784, 11.0 / 84},
	}
	// 5th-order weights (same as the last A row: FSAL property).
	dpB5 = [7]float64{35.0 / 384, 0, 500.0 / 1113, 125.0 / 192, -2187.0 / 6784, 11.0 / 84, 0}
	// 4th-order (embedded) weights.
	dpB4 = [7]float64{5179.0 / 57600, 0, 7571.0 / 16695, 393.0 / 640, -92097.0 / 339200, 187.0 / 2100, 1.0 / 40}
)

// DOPRIOptions configures the adaptive integrator.
type DOPRIOptions struct {
	// RTol and ATol are the relative and absolute error tolerances
	// (defaults 1e-8 and 1e-10).
	RTol, ATol float64
	// InitialStep is the first trial step (default: chosen automatically).
	InitialStep float64
	// MaxStep bounds the step size (default: unbounded).
	MaxStep float64
	// MaxSteps bounds the number of accepted+rejected steps (default 1e7).
	MaxSteps int
}

func (o *DOPRIOptions) defaults() {
	if o.RTol <= 0 {
		o.RTol = 1e-8
	}
	if o.ATol <= 0 {
		o.ATol = 1e-10
	}
	if o.MaxSteps <= 0 {
		o.MaxSteps = 1e7
	}
}

// DOPRIStats reports integrator effort.
type DOPRIStats struct {
	Accepted, Rejected int
	Evaluations        int
}

// ErrStepTooSmall is returned when error control forces the step below the
// representable resolution at the current time.
var ErrStepTooSmall = errors.New("ode: adaptive step underflow (stiff system or unreachable tolerance?)")

// DOPRI integrates dx/dt = f(t,x) from t0 to t1 with adaptive Dormand–Prince
// RK45, advancing x in place. It returns effort statistics.
func DOPRI(f RHS, t0, t1 float64, x []float64, opt DOPRIOptions) (DOPRIStats, error) {
	opt.defaults()
	var st DOPRIStats
	if t1 < t0 {
		return st, errors.New("ode: t1 must be >= t0")
	}
	if t1 == t0 {
		return st, nil
	}
	dim := len(x)
	var k [7][]float64
	for i := range k {
		k[i] = make([]float64, dim)
	}
	tmp := make([]float64, dim)
	xNew := make([]float64, dim)
	errVec := make([]float64, dim)

	t := t0
	f(t, x, k[0])
	st.Evaluations++

	h := opt.InitialStep
	if h <= 0 {
		h = initialStep(f, t, x, k[0], opt, &st)
	}
	if opt.MaxStep > 0 && h > opt.MaxStep {
		h = opt.MaxStep
	}

	for t < t1 {
		if st.Accepted+st.Rejected >= opt.MaxSteps {
			return st, fmt.Errorf("ode: exceeded %d steps", opt.MaxSteps)
		}
		if t+h > t1 {
			h = t1 - t
		}
		if h <= math.Nextafter(t, math.Inf(1))-t {
			return st, ErrStepTooSmall
		}
		// Stages 2..7.
		for s := 1; s < 7; s++ {
			for i := 0; i < dim; i++ {
				sum := 0.0
				for j := 0; j < s; j++ {
					sum += dpA[s][j] * k[j][i]
				}
				tmp[i] = x[i] + h*sum
			}
			f(t+dpC[s]*h, tmp, k[s])
			st.Evaluations++
		}
		// 5th-order solution and embedded error.
		errNorm := 0.0
		for i := 0; i < dim; i++ {
			sum5, sum4 := 0.0, 0.0
			for s := 0; s < 7; s++ {
				sum5 += dpB5[s] * k[s][i]
				sum4 += dpB4[s] * k[s][i]
			}
			xNew[i] = x[i] + h*sum5
			errVec[i] = h * (sum5 - sum4)
			sc := opt.ATol + opt.RTol*math.Max(math.Abs(x[i]), math.Abs(xNew[i]))
			e := errVec[i] / sc
			errNorm += e * e
		}
		errNorm = math.Sqrt(errNorm / float64(dim))

		if errNorm <= 1 {
			// Accept. FSAL: k7 of this step is k1 of the next.
			t += h
			copy(x, xNew)
			copy(k[0], k[6])
			st.Accepted++
		} else {
			st.Rejected++
		}
		// PI-style step update with safety factor and clamps.
		factor := 0.9 * math.Pow(errNorm, -0.2)
		if factor < 0.2 {
			factor = 0.2
		}
		if factor > 5 {
			factor = 5
		}
		h *= factor
		if opt.MaxStep > 0 && h > opt.MaxStep {
			h = opt.MaxStep
		}
	}
	return st, nil
}

// initialStep implements the standard Hairer–Nørsett–Wanner starting step
// heuristic (algorithm II.4 in "Solving Ordinary Differential Equations I").
func initialStep(f RHS, t float64, x, f0 []float64, opt DOPRIOptions, st *DOPRIStats) float64 {
	dim := len(x)
	d0, d1 := 0.0, 0.0
	for i := 0; i < dim; i++ {
		sc := opt.ATol + opt.RTol*math.Abs(x[i])
		d0 += (x[i] / sc) * (x[i] / sc)
		d1 += (f0[i] / sc) * (f0[i] / sc)
	}
	d0, d1 = math.Sqrt(d0/float64(dim)), math.Sqrt(d1/float64(dim))
	var h0 float64
	if d0 < 1e-5 || d1 < 1e-5 {
		h0 = 1e-6
	} else {
		h0 = 0.01 * d0 / d1
	}
	x1 := make([]float64, dim)
	f1 := make([]float64, dim)
	for i := range x1 {
		x1[i] = x[i] + h0*f0[i]
	}
	f(t+h0, x1, f1)
	st.Evaluations++
	d2 := 0.0
	for i := 0; i < dim; i++ {
		sc := opt.ATol + opt.RTol*math.Abs(x[i])
		d := (f1[i] - f0[i]) / sc
		d2 += d * d
	}
	d2 = math.Sqrt(d2/float64(dim)) / h0
	var h1 float64
	if math.Max(d1, d2) <= 1e-15 {
		h1 = math.Max(1e-6, h0*1e-3)
	} else {
		h1 = math.Pow(0.01/math.Max(d1, d2), 1.0/5)
	}
	return math.Min(100*h0, h1)
}
