package ode

import (
	"math"
	"testing"
)

// stiffDecay is dx/dt = -1000(x - cos(t)) — classically stiff.
func stiffDecay(t float64, x, dst []float64) {
	dst[0] = -1000 * (x[0] - math.Cos(t))
}

func TestImplicitEulerStableOnStiffProblem(t *testing.T) {
	// Explicit Euler with h = 0.01 blows up (|1 + h·λ| = 9 > 1);
	// implicit Euler must stay bounded and track cos(t).
	s := NewImplicitEuler(1)
	x := []float64{0}
	if _, err := Integrate(s, stiffDecay, 0, 2, x, 0.01); err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-math.Cos(2)) > 0.02 {
		t.Fatalf("x(2) = %v, want ≈%v", x[0], math.Cos(2))
	}
	// Demonstrate the explicit failure for contrast.
	e := NewEuler(1)
	xe := []float64{0}
	if _, err := Integrate(e, stiffDecay, 0, 2, xe, 0.01); err != nil {
		t.Fatal(err)
	}
	if !(math.IsInf(xe[0], 0) || math.IsNaN(xe[0]) || math.Abs(xe[0]) > 1e10) {
		t.Fatalf("explicit Euler unexpectedly stable: %v", xe[0])
	}
}

func TestImplicitEulerAccuracyOnSmoothProblem(t *testing.T) {
	s := NewImplicitEuler(1)
	x := []float64{1}
	if _, err := Integrate(s, expDecay, 0, 1, x, 0.001); err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-math.Exp(-1)) > 1e-3 {
		t.Fatalf("x(1) = %v", x[0])
	}
	if s.Order() != 1 || s.Name() != "implicit-euler" {
		t.Fatal("metadata wrong")
	}
}

func TestImplicitEulerSystem(t *testing.T) {
	// Two-dimensional stiff-ish linear system relaxing to (2, 3).
	rhs := func(t float64, x, dst []float64) {
		dst[0] = -50 * (x[0] - 2)
		dst[1] = -0.5 * (x[1] - 3)
	}
	s := NewImplicitEuler(2)
	x := []float64{0, 0}
	if _, err := Integrate(s, rhs, 0, 40, x, 0.5); err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-2) > 1e-6 || math.Abs(x[1]-3) > 1e-6 {
		t.Fatalf("steady state %v", x)
	}
}

func TestNewtonSteadyStateLinear(t *testing.T) {
	rhs := func(t float64, x, dst []float64) {
		dst[0] = 2 - x[0]
		dst[1] = 3 - x[1]
	}
	x := []float64{100, -100}
	if err := NewtonSteadyState(rhs, x, NewtonOptions{}); err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-2) > 1e-10 || math.Abs(x[1]-3) > 1e-10 {
		t.Fatalf("fixed point %v", x)
	}
}

func TestNewtonSteadyStateNonlinear(t *testing.T) {
	// Logistic: f(x) = x(1-x); from 0.2 Newton must find x = 1 or x = 0 —
	// with damping from 0.2 it converges to a root with zero residual.
	x := []float64{0.2}
	if err := NewtonSteadyState(logistic, x, NewtonOptions{}); err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]) > 1e-9 && math.Abs(x[0]-1) > 1e-9 {
		t.Fatalf("root %v", x[0])
	}
}

func TestNewtonSteadyStateFailsOnRootlessSystem(t *testing.T) {
	rhs := func(t float64, x, dst []float64) { dst[0] = 1 + x[0]*x[0] }
	x := []float64{0}
	if err := NewtonSteadyState(rhs, x, NewtonOptions{MaxIter: 30}); err == nil {
		t.Fatal("rootless system converged")
	}
}

func TestNewtonMatchesRelaxation(t *testing.T) {
	// 3-state contrived nonlinear system: Newton and RK4 relaxation must
	// find the same fixed point.
	rhs := func(t float64, x, dst []float64) {
		dst[0] = 1 - x[0] - 0.1*x[0]*x[1]
		dst[1] = x[0] - 0.5*x[1]
		dst[2] = x[1] - 0.2*x[2]
	}
	a := []float64{1, 1, 1}
	if _, err := SteadyState(NewRK4(3), rhs, a, SteadyStateOptions{Tol: 1e-13}); err != nil {
		t.Fatal(err)
	}
	b := []float64{1, 1, 1}
	if err := NewtonSteadyState(rhs, b, NewtonOptions{}); err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-8 {
			t.Fatalf("component %d: relaxation %v vs Newton %v", i, a[i], b[i])
		}
	}
}

func BenchmarkNewtonSteadyState(b *testing.B) {
	rhs := func(t float64, x, dst []float64) {
		for i := range x {
			dst[i] = 1 - x[i] - 0.01*x[i]*x[(i+1)%len(x)]
		}
	}
	for i := 0; i < b.N; i++ {
		x := make([]float64, 20)
		if err := NewtonSteadyState(rhs, x, NewtonOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}
