// Package linalg provides the small dense linear-algebra kernel used by the
// fluid-model stability analysis (E11 in DESIGN.md): vectors, row-major
// matrices, LU factorization with partial pivoting, Householder QR, and
// eigenvalue computation (cyclic Jacobi for symmetric matrices, Hessenberg
// reduction plus Francis double-shift QR for general real matrices).
//
// The matrices involved are tiny (the largest fluid model here has 65
// states), so clarity is preferred over blocking or SIMD tricks.
package linalg

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// NewMatrix returns a zero r×c matrix.
func NewMatrix(r, c int) *Matrix {
	if r <= 0 || c <= 0 {
		panic("linalg: non-positive matrix dimensions")
	}
	return &Matrix{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// FromRows builds a matrix from row slices (all the same length).
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 || len(rows[0]) == 0 {
		panic("linalg: empty rows")
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic("linalg: ragged rows")
		}
		copy(m.Data[i*m.Cols:(i+1)*m.Cols], r)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Mul returns m·o.
func (m *Matrix) Mul(o *Matrix) *Matrix {
	if m.Cols != o.Rows {
		panic(fmt.Sprintf("linalg: dimension mismatch %dx%d · %dx%d", m.Rows, m.Cols, o.Rows, o.Cols))
	}
	out := NewMatrix(m.Rows, o.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			for j := 0; j < o.Cols; j++ {
				out.Data[i*out.Cols+j] += a * o.At(k, j)
			}
		}
	}
	return out
}

// MulVec returns m·v.
func (m *Matrix) MulVec(v []float64) []float64 {
	if m.Cols != len(v) {
		panic("linalg: dimension mismatch in MulVec")
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		s := 0.0
		for j := 0; j < m.Cols; j++ {
			s += m.At(i, j) * v[j]
		}
		out[i] = s
	}
	return out
}

// Add returns m + o.
func (m *Matrix) Add(o *Matrix) *Matrix {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		panic("linalg: dimension mismatch in Add")
	}
	out := m.Clone()
	for i := range out.Data {
		out.Data[i] += o.Data[i]
	}
	return out
}

// Scale returns s·m.
func (m *Matrix) Scale(s float64) *Matrix {
	out := m.Clone()
	for i := range out.Data {
		out.Data[i] *= s
	}
	return out
}

// MaxAbs returns the largest absolute entry.
func (m *Matrix) MaxAbs() float64 {
	mx := 0.0
	for _, v := range m.Data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			fmt.Fprintf(&b, "%12.5g", m.At(i, j))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// ErrSingular is returned when a factorization meets an (effectively)
// singular matrix.
var ErrSingular = errors.New("linalg: matrix is singular to working precision")

// LU is an LU factorization with partial pivoting: P·A = L·U.
type LU struct {
	lu    *Matrix
	pivot []int
	sign  float64
}

// NewLU factors the square matrix a. a is not modified.
func NewLU(a *Matrix) (*LU, error) {
	if a.Rows != a.Cols {
		return nil, errors.New("linalg: LU requires a square matrix")
	}
	n := a.Rows
	f := &LU{lu: a.Clone(), pivot: make([]int, n), sign: 1}
	lu := f.lu
	for i := range f.pivot {
		f.pivot[i] = i
	}
	for k := 0; k < n; k++ {
		// Partial pivot: largest |entry| in column k at/below the diagonal.
		p, maxVal := k, math.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if v := math.Abs(lu.At(i, k)); v > maxVal {
				p, maxVal = i, v
			}
		}
		if maxVal == 0 {
			return nil, ErrSingular
		}
		if p != k {
			for j := 0; j < n; j++ {
				lu.Data[p*n+j], lu.Data[k*n+j] = lu.Data[k*n+j], lu.Data[p*n+j]
			}
			f.pivot[p], f.pivot[k] = f.pivot[k], f.pivot[p]
			f.sign = -f.sign
		}
		inv := 1 / lu.At(k, k)
		for i := k + 1; i < n; i++ {
			m := lu.At(i, k) * inv
			lu.Set(i, k, m)
			if m == 0 {
				continue
			}
			for j := k + 1; j < n; j++ {
				lu.Data[i*n+j] -= m * lu.Data[k*n+j]
			}
		}
	}
	return f, nil
}

// Solve returns x with A·x = b.
func (f *LU) Solve(b []float64) ([]float64, error) {
	n := f.lu.Rows
	if len(b) != n {
		return nil, errors.New("linalg: rhs length mismatch")
	}
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = b[f.pivot[i]]
	}
	// Forward substitution (unit lower triangle).
	for i := 1; i < n; i++ {
		s := x[i]
		for j := 0; j < i; j++ {
			s -= f.lu.At(i, j) * x[j]
		}
		x[i] = s
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= f.lu.At(i, j) * x[j]
		}
		d := f.lu.At(i, i)
		if d == 0 {
			return nil, ErrSingular
		}
		x[i] = s / d
	}
	return x, nil
}

// Det returns det(A).
func (f *LU) Det() float64 {
	d := f.sign
	for i := 0; i < f.lu.Rows; i++ {
		d *= f.lu.At(i, i)
	}
	return d
}

// Solve solves A·x = b by LU with partial pivoting.
func Solve(a *Matrix, b []float64) ([]float64, error) {
	f, err := NewLU(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}

// Inverse returns A⁻¹.
func Inverse(a *Matrix) (*Matrix, error) {
	f, err := NewLU(a)
	if err != nil {
		return nil, err
	}
	n := a.Rows
	inv := NewMatrix(n, n)
	e := make([]float64, n)
	for j := 0; j < n; j++ {
		for i := range e {
			e[i] = 0
		}
		e[j] = 1
		col, err := f.Solve(e)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			inv.Set(i, j, col[i])
		}
	}
	return inv, nil
}

// QR holds a Householder QR factorization A = Q·R.
type QR struct {
	Q, R *Matrix
}

// NewQR computes the (thin, here full since square-or-tall inputs only)
// QR factorization by Householder reflections. Requires Rows >= Cols.
func NewQR(a *Matrix) (*QR, error) {
	if a.Rows < a.Cols {
		return nil, errors.New("linalg: QR requires rows >= cols")
	}
	m, n := a.Rows, a.Cols
	r := a.Clone()
	q := Identity(m)
	v := make([]float64, m)
	for k := 0; k < n && k < m-1; k++ {
		// Householder vector for column k.
		norm := 0.0
		for i := k; i < m; i++ {
			norm = math.Hypot(norm, r.At(i, k))
		}
		if norm == 0 {
			continue
		}
		alpha := -norm
		if r.At(k, k) < 0 {
			alpha = norm
		}
		vnorm := 0.0
		for i := k; i < m; i++ {
			v[i] = r.At(i, k)
			if i == k {
				v[i] -= alpha
			}
			vnorm = math.Hypot(vnorm, v[i])
		}
		if vnorm == 0 {
			continue
		}
		for i := k; i < m; i++ {
			v[i] /= vnorm
		}
		// R <- (I - 2vvᵀ) R
		for j := k; j < n; j++ {
			dot := 0.0
			for i := k; i < m; i++ {
				dot += v[i] * r.At(i, j)
			}
			for i := k; i < m; i++ {
				r.Set(i, j, r.At(i, j)-2*dot*v[i])
			}
		}
		// Q <- Q (I - 2vvᵀ)
		for i := 0; i < m; i++ {
			dot := 0.0
			for j := k; j < m; j++ {
				dot += q.At(i, j) * v[j]
			}
			for j := k; j < m; j++ {
				q.Set(i, j, q.At(i, j)-2*dot*v[j])
			}
		}
	}
	// Zero the numerically-negligible subdiagonal of R.
	for i := 1; i < m; i++ {
		for j := 0; j < i && j < n; j++ {
			r.Set(i, j, 0)
		}
	}
	return &QR{Q: q, R: r}, nil
}
