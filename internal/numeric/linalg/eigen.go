package linalg

import (
	"errors"
	"math"
	"sort"
)

// Complex128 avoidance: eigenvalues are reported as (real, imag) pairs so
// that downstream code can stay on float64 slices.

// Eigenvalue is one eigenvalue of a real matrix.
type Eigenvalue struct {
	Re, Im float64
}

// SymmetricEigen computes all eigenvalues (ascending) and an orthonormal
// eigenvector matrix of a symmetric matrix using the cyclic Jacobi method.
// Column j of the returned matrix is the eigenvector for eigenvalue j.
// Only the symmetric part of a is used.
func SymmetricEigen(a *Matrix) ([]float64, *Matrix, error) {
	if a.Rows != a.Cols {
		return nil, nil, errors.New("linalg: eigen requires a square matrix")
	}
	n := a.Rows
	// Work on the symmetrized copy.
	w := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			w.Set(i, j, 0.5*(a.At(i, j)+a.At(j, i)))
		}
	}
	v := Identity(n)
	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += w.At(i, j) * w.At(i, j)
			}
		}
		if off < 1e-30 {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app, aqq := w.At(p, p), w.At(q, q)
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				// Apply rotation J(p,q,θ) on both sides.
				for k := 0; k < n; k++ {
					akp, akq := w.At(k, p), w.At(k, q)
					w.Set(k, p, c*akp-s*akq)
					w.Set(k, q, s*akp+c*akq)
				}
				for k := 0; k < n; k++ {
					apk, aqk := w.At(p, k), w.At(q, k)
					w.Set(p, k, c*apk-s*aqk)
					w.Set(q, k, s*apk+c*aqk)
				}
				for k := 0; k < n; k++ {
					vkp, vkq := v.At(k, p), v.At(k, q)
					v.Set(k, p, c*vkp-s*vkq)
					v.Set(k, q, s*vkp+c*vkq)
				}
			}
		}
	}
	vals := make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = w.At(i, i)
	}
	// Sort ascending, permuting eigenvectors along.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return vals[idx[i]] < vals[idx[j]] })
	sortedVals := make([]float64, n)
	sortedVecs := NewMatrix(n, n)
	for newJ, oldJ := range idx {
		sortedVals[newJ] = vals[oldJ]
		for i := 0; i < n; i++ {
			sortedVecs.Set(i, newJ, v.At(i, oldJ))
		}
	}
	return sortedVals, sortedVecs, nil
}

// hessenberg reduces a (square) to upper Hessenberg form in place using
// stabilized elementary transformations (EISPACK elmhes).
func hessenberg(a *Matrix) {
	n := a.Rows
	for m := 1; m < n-1; m++ {
		x := 0.0
		pivot := m
		for j := m; j < n; j++ {
			if math.Abs(a.At(j, m-1)) > math.Abs(x) {
				x = a.At(j, m-1)
				pivot = j
			}
		}
		if pivot != m {
			for j := m - 1; j < n; j++ {
				tmp := a.At(pivot, j)
				a.Set(pivot, j, a.At(m, j))
				a.Set(m, j, tmp)
			}
			for i := 0; i < n; i++ {
				tmp := a.At(i, pivot)
				a.Set(i, pivot, a.At(i, m))
				a.Set(i, m, tmp)
			}
		}
		if x != 0 {
			for i := m + 1; i < n; i++ {
				y := a.At(i, m-1)
				if y == 0 {
					continue
				}
				y /= x
				a.Set(i, m-1, y)
				for j := m; j < n; j++ {
					a.Set(i, j, a.At(i, j)-y*a.At(m, j))
				}
				for j := 0; j < n; j++ {
					a.Set(j, m, a.At(j, m)+y*a.At(j, i))
				}
			}
		}
	}
	// The entries below the subdiagonal now hold multipliers; zero them so
	// the QR iteration sees a clean Hessenberg matrix.
	for i := 2; i < n; i++ {
		for j := 0; j < i-1; j++ {
			a.Set(i, j, 0)
		}
	}
}

// Eigenvalues computes all eigenvalues of a general real square matrix via
// Hessenberg reduction followed by the Francis double-shift QR algorithm
// (EISPACK hqr). The input is not modified. Results are sorted by
// descending real part, then descending imaginary part.
func Eigenvalues(a *Matrix) ([]Eigenvalue, error) {
	if a.Rows != a.Cols {
		return nil, errors.New("linalg: eigen requires a square matrix")
	}
	n := a.Rows
	h := a.Clone()
	hessenberg(h)
	wr := make([]float64, n)
	wi := make([]float64, n)
	if err := hqr(h, wr, wi); err != nil {
		return nil, err
	}
	out := make([]Eigenvalue, n)
	for i := range out {
		out[i] = Eigenvalue{Re: wr[i], Im: wi[i]}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Re != out[j].Re {
			return out[i].Re > out[j].Re
		}
		return out[i].Im > out[j].Im
	})
	return out, nil
}

// MaxRealPart returns the largest eigenvalue real part (the stability
// abscissa). A negative value means the linearization is asymptotically
// stable.
func MaxRealPart(eigs []Eigenvalue) float64 {
	m := math.Inf(-1)
	for _, e := range eigs {
		if e.Re > m {
			m = e.Re
		}
	}
	return m
}

// hqr finds all eigenvalues of the upper Hessenberg matrix a, storing real
// parts in wr and imaginary parts in wi. Direct port of the classic EISPACK
// HQR routine (as presented in Numerical Recipes) to 0-based indexing.
// a is destroyed.
func hqr(a *Matrix, wr, wi []float64) error {
	n := a.Rows
	anorm := 0.0
	for i := 0; i < n; i++ {
		jLo := i - 1
		if jLo < 0 {
			jLo = 0
		}
		for j := jLo; j < n; j++ {
			anorm += math.Abs(a.At(i, j))
		}
	}
	if anorm == 0 {
		// Zero matrix: all eigenvalues zero.
		return nil
	}
	nn := n - 1
	t := 0.0
	for nn >= 0 {
		its := 0
		var l int
		for {
			// Find a single small subdiagonal element.
			for l = nn; l >= 1; l-- {
				s := math.Abs(a.At(l-1, l-1)) + math.Abs(a.At(l, l))
				if s == 0 {
					s = anorm
				}
				if math.Abs(a.At(l, l-1))+s == s {
					a.Set(l, l-1, 0)
					break
				}
			}
			if l < 0 {
				l = 0
			}
			x := a.At(nn, nn)
			if l == nn { // one root found
				wr[nn] = x + t
				wi[nn] = 0
				nn--
				break
			}
			y := a.At(nn-1, nn-1)
			w := a.At(nn, nn-1) * a.At(nn-1, nn)
			if l == nn-1 { // two roots found
				p := 0.5 * (y - x)
				q := p*p + w
				z := math.Sqrt(math.Abs(q))
				x += t
				if q >= 0 { // real pair
					z = p + math.Copysign(z, p)
					wr[nn-1] = x + z
					wr[nn] = wr[nn-1]
					if z != 0 {
						wr[nn] = x - w/z
					}
					wi[nn-1], wi[nn] = 0, 0
				} else { // complex pair
					wr[nn-1] = x + p
					wr[nn] = x + p
					wi[nn-1] = -z
					wi[nn] = z
				}
				nn -= 2
				break
			}
			// No root yet: QR iteration.
			if its == 30 {
				return errors.New("linalg: too many QR iterations in hqr")
			}
			if its == 10 || its == 20 { // exceptional shift
				t += x
				for i := 0; i <= nn; i++ {
					a.Set(i, i, a.At(i, i)-x)
				}
				s := math.Abs(a.At(nn, nn-1)) + math.Abs(a.At(nn-1, nn-2))
				y = 0.75 * s
				x = y
				w = -0.4375 * s * s
			}
			its++
			// Form shift; look for two consecutive small subdiagonals.
			var m int
			var p, q, r float64
			for m = nn - 2; m >= l; m-- {
				z := a.At(m, m)
				rr := x - z
				ss := y - z
				p = (rr*ss-w)/a.At(m+1, m) + a.At(m, m+1)
				q = a.At(m+1, m+1) - z - rr - ss
				r = a.At(m+2, m+1)
				s := math.Abs(p) + math.Abs(q) + math.Abs(r)
				p /= s
				q /= s
				r /= s
				if m == l {
					break
				}
				u := math.Abs(a.At(m, m-1)) * (math.Abs(q) + math.Abs(r))
				v := math.Abs(p) * (math.Abs(a.At(m-1, m-1)) + math.Abs(z) + math.Abs(a.At(m+1, m+1)))
				if u+v == v {
					break
				}
			}
			if m < l {
				m = l
			}
			for i := m + 2; i <= nn; i++ {
				a.Set(i, i-2, 0)
				if i != m+2 {
					a.Set(i, i-3, 0)
				}
			}
			// Double QR step on rows l..nn, columns m..nn.
			for k := m; k <= nn-1; k++ {
				if k != m {
					p = a.At(k, k-1)
					q = a.At(k+1, k-1)
					r = 0
					if k != nn-1 {
						r = a.At(k+2, k-1)
					}
					x = math.Abs(p) + math.Abs(q) + math.Abs(r)
					if x != 0 {
						p /= x
						q /= x
						r /= x
					}
				}
				s := math.Copysign(math.Sqrt(p*p+q*q+r*r), p)
				if s == 0 {
					continue
				}
				if k == m {
					if l != m {
						a.Set(k, k-1, -a.At(k, k-1))
					}
				} else {
					a.Set(k, k-1, -s*x)
				}
				p += s
				x = p / s
				y = q / s
				z := r / s
				q /= p
				r /= p
				// Row modification.
				for j := k; j <= nn; j++ {
					pp := a.At(k, j) + q*a.At(k+1, j)
					if k != nn-1 {
						pp += r * a.At(k+2, j)
						a.Set(k+2, j, a.At(k+2, j)-pp*z)
					}
					a.Set(k+1, j, a.At(k+1, j)-pp*y)
					a.Set(k, j, a.At(k, j)-pp*x)
				}
				mmin := nn
				if k+3 < nn {
					mmin = k + 3
				}
				// Column modification.
				for i := l; i <= mmin; i++ {
					pp := x*a.At(i, k) + y*a.At(i, k+1)
					if k != nn-1 {
						pp += z * a.At(i, k+2)
						a.Set(i, k+2, a.At(i, k+2)-pp*r)
					}
					a.Set(i, k+1, a.At(i, k+1)-pp*q)
					a.Set(i, k, a.At(i, k)-pp)
				}
			}
		}
	}
	return nil
}
