package linalg

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"mfdl/internal/rng"
)

func TestMatrixBasics(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Fatal("At wrong")
	}
	m.Set(0, 0, 9)
	if m.At(0, 0) != 9 {
		t.Fatal("Set wrong")
	}
	c := m.Clone()
	c.Set(0, 0, 0)
	if m.At(0, 0) != 9 {
		t.Fatal("Clone aliases")
	}
}

func TestTranspose(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.T()
	if tr.Rows != 3 || tr.Cols != 2 || tr.At(2, 1) != 6 || tr.At(0, 1) != 4 {
		t.Fatalf("transpose wrong:\n%v", tr)
	}
}

func TestMul(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	c := a.Mul(b)
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	for i := range c.Data {
		if c.Data[i] != want.Data[i] {
			t.Fatalf("Mul wrong:\n%v", c)
		}
	}
}

func TestMulIdentityProperty(t *testing.T) {
	src := rng.New(1)
	f := func(nRaw uint8) bool {
		n := int(nRaw%5) + 1
		a := NewMatrix(n, n)
		for i := range a.Data {
			a.Data[i] = src.Float64()*4 - 2
		}
		prod := a.Mul(Identity(n))
		for i := range prod.Data {
			if prod.Data[i] != a.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMulVec(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	got := a.MulVec([]float64{1, 1})
	if got[0] != 3 || got[1] != 7 {
		t.Fatalf("MulVec = %v", got)
	}
}

func TestAddScale(t *testing.T) {
	a := FromRows([][]float64{{1, 2}})
	b := a.Add(a.Scale(2))
	if b.At(0, 0) != 3 || b.At(0, 1) != 6 {
		t.Fatalf("Add/Scale wrong: %v", b)
	}
}

func TestLUSolve(t *testing.T) {
	a := FromRows([][]float64{
		{2, 1, 1},
		{4, -6, 0},
		{-2, 7, 2},
	})
	x, err := Solve(a, []float64{5, -2, 9})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 1, 2}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-12 {
			t.Fatalf("x = %v, want %v", x, want)
		}
	}
}

func TestLUSolveResidualProperty(t *testing.T) {
	src := rng.New(2)
	f := func(nRaw uint8) bool {
		n := int(nRaw%6) + 2
		a := NewMatrix(n, n)
		for i := range a.Data {
			a.Data[i] = src.Float64()*2 - 1
		}
		// Diagonal dominance ensures nonsingularity.
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n))
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = src.Float64()*10 - 5
		}
		x, err := Solve(a, b)
		if err != nil {
			return false
		}
		r := a.MulVec(x)
		for i := range r {
			if math.Abs(r[i]-b[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLUSingular(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := Solve(a, []float64{1, 2}); err == nil {
		t.Fatal("singular matrix accepted")
	}
}

func TestLUDet(t *testing.T) {
	a := FromRows([][]float64{{3, 8}, {4, 6}})
	f, err := NewLU(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.Det()-(-14)) > 1e-12 {
		t.Fatalf("det = %v, want -14", f.Det())
	}
	if math.Abs(NewLUOrDie(Identity(5)).Det()-1) > 1e-12 {
		t.Fatal("det(I) != 1")
	}
}

func NewLUOrDie(a *Matrix) *LU {
	f, err := NewLU(a)
	if err != nil {
		panic(err)
	}
	return f
}

func TestInverse(t *testing.T) {
	a := FromRows([][]float64{{4, 7}, {2, 6}})
	inv, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	prod := a.Mul(inv)
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(prod.At(i, j)-want) > 1e-12 {
				t.Fatalf("A·A⁻¹ =\n%v", prod)
			}
		}
	}
}

func TestQRReconstruction(t *testing.T) {
	src := rng.New(3)
	for trial := 0; trial < 20; trial++ {
		n := 2 + trial%5
		a := NewMatrix(n, n)
		for i := range a.Data {
			a.Data[i] = src.Float64()*4 - 2
		}
		qr, err := NewQR(a)
		if err != nil {
			t.Fatal(err)
		}
		// Q orthonormal.
		qtq := qr.Q.T().Mul(qr.Q)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				want := 0.0
				if i == j {
					want = 1
				}
				if math.Abs(qtq.At(i, j)-want) > 1e-10 {
					t.Fatalf("QᵀQ not identity:\n%v", qtq)
				}
			}
		}
		// R upper triangular and QR = A.
		back := qr.Q.Mul(qr.R)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if j < i && math.Abs(qr.R.At(i, j)) > 1e-12 {
					t.Fatalf("R not upper triangular:\n%v", qr.R)
				}
				if math.Abs(back.At(i, j)-a.At(i, j)) > 1e-10 {
					t.Fatalf("QR != A")
				}
			}
		}
	}
}

func TestQRRejectsWide(t *testing.T) {
	if _, err := NewQR(NewMatrix(2, 3)); err == nil {
		t.Fatal("wide matrix accepted")
	}
}

func TestSymmetricEigenDiagonal(t *testing.T) {
	a := FromRows([][]float64{{3, 0}, {0, -1}})
	vals, _, err := SymmetricEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vals[0]-(-1)) > 1e-12 || math.Abs(vals[1]-3) > 1e-12 {
		t.Fatalf("vals = %v", vals)
	}
}

func TestSymmetricEigenKnown(t *testing.T) {
	// Eigenvalues of [[2,1],[1,2]] are 1 and 3.
	a := FromRows([][]float64{{2, 1}, {1, 2}})
	vals, vecs, err := SymmetricEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vals[0]-1) > 1e-10 || math.Abs(vals[1]-3) > 1e-10 {
		t.Fatalf("vals = %v", vals)
	}
	// A·v = λ·v for each eigenpair.
	for j := 0; j < 2; j++ {
		v := []float64{vecs.At(0, j), vecs.At(1, j)}
		av := a.MulVec(v)
		for i := range v {
			if math.Abs(av[i]-vals[j]*v[i]) > 1e-10 {
				t.Fatalf("eigenpair %d violated", j)
			}
		}
	}
}

func TestSymmetricEigenTraceAndResidualProperty(t *testing.T) {
	src := rng.New(4)
	f := func(nRaw uint8) bool {
		n := int(nRaw%6) + 2
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				v := src.Float64()*4 - 2
				a.Set(i, j, v)
				a.Set(j, i, v)
			}
		}
		vals, vecs, err := SymmetricEigen(a)
		if err != nil {
			return false
		}
		// Trace preservation.
		trace, sum := 0.0, 0.0
		for i := 0; i < n; i++ {
			trace += a.At(i, i)
			sum += vals[i]
		}
		if math.Abs(trace-sum) > 1e-9 {
			return false
		}
		// Residual of each eigenpair.
		for j := 0; j < n; j++ {
			v := make([]float64, n)
			for i := range v {
				v[i] = vecs.At(i, j)
			}
			av := a.MulVec(v)
			for i := range v {
				if math.Abs(av[i]-vals[j]*v[i]) > 1e-8 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func sortEig(e []Eigenvalue) {
	sort.Slice(e, func(i, j int) bool {
		if e[i].Re != e[j].Re {
			return e[i].Re < e[j].Re
		}
		return e[i].Im < e[j].Im
	})
}

func TestEigenvaluesTriangular(t *testing.T) {
	a := FromRows([][]float64{
		{1, 5, -3},
		{0, 4, 2},
		{0, 0, -2},
	})
	eigs, err := Eigenvalues(a)
	if err != nil {
		t.Fatal(err)
	}
	sortEig(eigs)
	want := []float64{-2, 1, 4}
	for i, w := range want {
		if math.Abs(eigs[i].Re-w) > 1e-9 || math.Abs(eigs[i].Im) > 1e-9 {
			t.Fatalf("eigs = %v", eigs)
		}
	}
}

func TestEigenvaluesRotation(t *testing.T) {
	// Rotation by θ has eigenvalues cosθ ± i·sinθ.
	theta := 0.7
	a := FromRows([][]float64{
		{math.Cos(theta), -math.Sin(theta)},
		{math.Sin(theta), math.Cos(theta)},
	})
	eigs, err := Eigenvalues(a)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range eigs {
		if math.Abs(e.Re-math.Cos(theta)) > 1e-9 || math.Abs(math.Abs(e.Im)-math.Sin(theta)) > 1e-9 {
			t.Fatalf("eigs = %v", eigs)
		}
	}
}

func TestEigenvaluesCompanion(t *testing.T) {
	// Companion matrix of p(x) = x³ - 6x² + 11x - 6 = (x-1)(x-2)(x-3).
	a := FromRows([][]float64{
		{6, -11, 6},
		{1, 0, 0},
		{0, 1, 0},
	})
	eigs, err := Eigenvalues(a)
	if err != nil {
		t.Fatal(err)
	}
	sortEig(eigs)
	want := []float64{1, 2, 3}
	for i, w := range want {
		if math.Abs(eigs[i].Re-w) > 1e-8 || math.Abs(eigs[i].Im) > 1e-8 {
			t.Fatalf("eigs = %v", eigs)
		}
	}
}

func TestEigenvaluesTracePreservedProperty(t *testing.T) {
	src := rng.New(5)
	f := func(nRaw uint8) bool {
		n := int(nRaw%7) + 2
		a := NewMatrix(n, n)
		for i := range a.Data {
			a.Data[i] = src.Float64()*4 - 2
		}
		eigs, err := Eigenvalues(a)
		if err != nil {
			return false
		}
		trace, reSum, imSum := 0.0, 0.0, 0.0
		for i := 0; i < n; i++ {
			trace += a.At(i, i)
		}
		for _, e := range eigs {
			reSum += e.Re
			imSum += e.Im
		}
		return math.Abs(trace-reSum) < 1e-7 && math.Abs(imSum) < 1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestEigenvaluesDetPreservedProperty(t *testing.T) {
	// Product of eigenvalues equals determinant (complex pairs contribute
	// |λ|² since they come in conjugates).
	src := rng.New(6)
	f := func(nRaw uint8) bool {
		n := int(nRaw%5) + 2
		a := NewMatrix(n, n)
		for i := range a.Data {
			a.Data[i] = src.Float64()*2 - 1
		}
		lu, err := NewLU(a)
		if err != nil {
			return true // singular draw; skip
		}
		det := lu.Det()
		eigs, err := Eigenvalues(a)
		if err != nil {
			return false
		}
		prodRe, prodIm := 1.0, 0.0
		for _, e := range eigs {
			prodRe, prodIm = prodRe*e.Re-prodIm*e.Im, prodRe*e.Im+prodIm*e.Re
		}
		return math.Abs(prodRe-det) < 1e-6*(1+math.Abs(det)) && math.Abs(prodIm) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestEigenvaluesZeroMatrix(t *testing.T) {
	eigs, err := Eigenvalues(NewMatrix(3, 3))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range eigs {
		if e.Re != 0 || e.Im != 0 {
			t.Fatalf("eigs = %v", eigs)
		}
	}
}

func TestMaxRealPart(t *testing.T) {
	eigs := []Eigenvalue{{-3, 0}, {-0.5, 2}, {-1, 0}}
	if got := MaxRealPart(eigs); got != -0.5 {
		t.Fatalf("MaxRealPart = %v", got)
	}
}

func TestEigenvaluesStableFluidJacobian(t *testing.T) {
	// Jacobian of the single-torrent fluid model at its fixed point
	// (from Qiu–Srikant): must be stable for γ > μ.
	mu, eta, gamma := 0.02, 0.5, 0.05
	a := FromRows([][]float64{
		{-mu * eta, -mu},
		{mu * eta, mu - gamma},
	})
	eigs, err := Eigenvalues(a)
	if err != nil {
		t.Fatal(err)
	}
	if MaxRealPart(eigs) >= 0 {
		t.Fatalf("fluid Jacobian unstable: %v", eigs)
	}
}

func BenchmarkEigenvalues10(b *testing.B) {
	src := rng.New(7)
	a := NewMatrix(10, 10)
	for i := range a.Data {
		a.Data[i] = src.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Eigenvalues(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLUSolve65(b *testing.B) {
	src := rng.New(8)
	n := 65
	a := NewMatrix(n, n)
	for i := range a.Data {
		a.Data[i] = src.Float64()
	}
	for i := 0; i < n; i++ {
		a.Set(i, i, a.At(i, i)+float64(n))
	}
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = src.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(a, rhs); err != nil {
			b.Fatal(err)
		}
	}
}
