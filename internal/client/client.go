// Package client is a minimal but real BitTorrent peer built on
// internal/wire and internal/storage: it handshakes over any net.Conn,
// exchanges bitfields and have messages, requests verified pieces, serves
// held pieces to its neighbors, and keeps seeding after completion.
//
// Its download policy is where the paper's multi-file torrent schemes
// become concrete:
//
//   - PolicyConcurrent wants every piece of every requested file at once —
//     MFCD, what stock clients do.
//   - PolicySequential wants the requested files one at a time in order —
//     CMFSD's download side. Because the client serves every piece it
//     holds, a sequential peer that has finished its first file is exactly
//     the paper's "partial seed" for that file's subtorrent.
//
// The client is deliberately small: no tracker integration (callers wire
// connections themselves or via internal/tracker), no endgame mode, no
// tit-for-tat throttling (every interested peer is unchoked) — bandwidth
// competition is the fluid models' and simulators' job; this package proves
// the protocol path end to end.
package client

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"mfdl/internal/metainfo"
	"mfdl/internal/storage"
	"mfdl/internal/wire"
)

// Policy selects the piece-request order.
type Policy int

// Download policies.
const (
	// PolicyConcurrent requests across all wanted files (MFCD).
	PolicyConcurrent Policy = iota
	// PolicySequential finishes file k before requesting file k+1 (CMFSD).
	PolicySequential
)

// Config parameterizes a peer.
type Config struct {
	Info  *metainfo.Info
	Store *storage.Store
	// PeerID is this peer's wire identity.
	PeerID [20]byte
	// Policy is the request order (ignored for seeds).
	Policy Policy
	// Files lists requested file indices in download order; nil means
	// all files in torrent order.
	Files []int
	// MaxOutstanding bounds in-flight piece requests per connection
	// (default 4).
	MaxOutstanding int
	// UnchokeSlots, when positive, enables the tit-for-tat choker with
	// that many slots (including the optimistic one). Zero keeps the
	// simple always-unchoke behaviour.
	UnchokeSlots int
	// RechokeEvery is the choker period (default 100ms; only used when
	// UnchokeSlots > 0).
	RechokeEvery time.Duration
	// RequestTimeout, when positive, bounds how long a piece request may
	// stay in flight: a per-connection watchdog drops timed-out requests
	// and immediately re-requests the pieces (on this or any other
	// connection), so a stalled remote costs a timeout, not a deadlock.
	// Zero disables the watchdog.
	RequestTimeout time.Duration
}

// Client is one peer. Create with New, attach connections with AddConn.
type Client struct {
	cfg      Config
	infoHash [20]byte
	wanted   []int // piece indices in request order

	mu             sync.Mutex
	conns          map[*conn]struct{}
	done           chan struct{}
	errs           []error
	chokerQuit     chan struct{}
	closeOnce      sync.Once
	optimisticTurn int
}

type conn struct {
	c          *Client
	nc         net.Conn
	out        chan *wire.Message
	quit       chan struct{}
	remoteHave wire.Bitfield

	mu               sync.Mutex
	remoteChoking    bool // remote is choking us
	weChoking        bool // we are choking the remote (choker mode only)
	remoteInterested bool
	weInterested     bool
	windowBytes      int64 // bytes received this rechoke window
	inflight         map[int]time.Time // piece -> request time
	closed           bool
}

// New validates the configuration and returns an idle client.
func New(cfg Config) (*Client, error) {
	if cfg.Info == nil || cfg.Store == nil {
		return nil, errors.New("client: nil info or store")
	}
	if err := cfg.Info.Validate(); err != nil {
		return nil, err
	}
	if cfg.MaxOutstanding <= 0 {
		cfg.MaxOutstanding = 4
	}
	files := cfg.Files
	if files == nil {
		files = make([]int, len(cfg.Info.Files))
		for i := range files {
			files[i] = i
		}
	}
	ranges := cfg.Info.FilePieces()
	perFile := make([][]int, 0, len(files))
	for _, f := range files {
		if f < 0 || f >= len(ranges) {
			return nil, fmt.Errorf("client: file index %d out of range", f)
		}
		r := ranges[f]
		pieces := make([]int, 0, r.Count())
		for p := r.First; p <= r.Last; p++ {
			pieces = append(pieces, p)
		}
		perFile = append(perFile, pieces)
	}
	seen := map[int]bool{}
	var wanted []int
	push := func(p int) {
		if !seen[p] {
			seen[p] = true
			wanted = append(wanted, p)
		}
	}
	switch cfg.Policy {
	case PolicySequential:
		// File order: finish file k before touching file k+1 (CMFSD).
		for _, pieces := range perFile {
			for _, p := range pieces {
				push(p)
			}
		}
	default:
		// Round-robin across files: all requested files progress together
		// (MFCD's "download the chunks randomly" up to determinism).
		for i := 0; ; i++ {
			advanced := false
			for _, pieces := range perFile {
				if i < len(pieces) {
					push(pieces[i])
					advanced = true
				}
			}
			if !advanced {
				break
			}
		}
	}
	h, err := cfg.Info.InfoHash()
	if err != nil {
		return nil, err
	}
	if cfg.RechokeEvery <= 0 {
		cfg.RechokeEvery = 100 * time.Millisecond
	}
	c := &Client{
		cfg:        cfg,
		infoHash:   h,
		wanted:     wanted,
		conns:      map[*conn]struct{}{},
		done:       make(chan struct{}),
		chokerQuit: make(chan struct{}),
	}
	if c.complete() {
		close(c.done)
	}
	if cfg.UnchokeSlots > 0 {
		c.startChoker()
	}
	return c, nil
}

// complete reports whether every wanted piece is held.
func (c *Client) complete() bool {
	for _, p := range c.wanted {
		if !c.cfg.Store.Has(p) {
			return false
		}
	}
	return true
}

// Done is closed once every requested file is fully downloaded and
// verified. A seed's Done is closed immediately.
func (c *Client) Done() <-chan struct{} { return c.done }

// Errors returns connection errors collected so far (excluding clean EOFs
// after completion).
func (c *Client) Errors() []error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]error(nil), c.errs...)
}

// Close terminates all connections and stops the choker.
func (c *Client) Close() {
	c.closeOnce.Do(func() { close(c.chokerQuit) })
	c.mu.Lock()
	conns := make([]*conn, 0, len(c.conns))
	for pc := range c.conns {
		conns = append(conns, pc)
	}
	c.mu.Unlock()
	for _, pc := range conns {
		pc.close()
	}
}

// AddConn performs the handshake on nc and starts the protocol loops.
// The handshake is written and read concurrently, so either side of a
// symmetric pipe can call AddConn.
func (c *Client) AddConn(nc net.Conn) error {
	writeErr := make(chan error, 1)
	go func() {
		writeErr <- wire.WriteHandshake(nc, wire.Handshake{InfoHash: c.infoHash, PeerID: c.cfg.PeerID})
	}()
	theirs, err := wire.ReadHandshake(nc)
	if err != nil {
		nc.Close()
		return err
	}
	if err := <-writeErr; err != nil {
		nc.Close()
		return err
	}
	if theirs.InfoHash != c.infoHash {
		nc.Close()
		return fmt.Errorf("client: info-hash mismatch")
	}
	pc := &conn{
		c:  c,
		nc: nc,
		// The queue must absorb a whole torrent's worth of traffic so
		// that two peers' read loops can never deadlock on each other's
		// unbuffered (net.Pipe) writes.
		out:           make(chan *wire.Message, 4*c.cfg.Info.NumPieces()+64),
		quit:          make(chan struct{}),
		remoteHave:    wire.NewBitfield(c.cfg.Info.NumPieces()),
		remoteChoking: true,
		weChoking:     c.cfg.UnchokeSlots > 0, // choker mode starts choked
		inflight:      map[int]time.Time{},
	}
	c.mu.Lock()
	c.conns[pc] = struct{}{}
	c.mu.Unlock()
	go pc.writeLoop()
	if err := pc.send(&wire.Message{Type: wire.MsgBitfield, Payload: c.cfg.Store.Bitfield()}); err != nil {
		pc.close()
		return err
	}
	go pc.readLoop()
	if c.cfg.RequestTimeout > 0 {
		go pc.requestWatchdog(c.cfg.RequestTimeout)
	}
	return nil
}

// requestWatchdog re-requests pieces whose in-flight request exceeded the
// timeout. Dropping the entry is enough: the next updateInterestAndRequest
// treats the piece as unrequested and pipelines it again, on this
// connection or a faster one.
func (pc *conn) requestWatchdog(timeout time.Duration) {
	every := timeout / 4
	if every < time.Millisecond {
		every = time.Millisecond
	}
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-pc.quit:
			return
		case now := <-tick.C:
			pc.mu.Lock()
			expired := 0
			for p, at := range pc.inflight {
				if now.Sub(at) >= timeout {
					delete(pc.inflight, p)
					expired++
				}
			}
			pc.mu.Unlock()
			if expired > 0 {
				_ = pc.updateInterestAndRequest()
			}
		}
	}
}

// send enqueues one message for the writer goroutine.
func (pc *conn) send(msg *wire.Message) error {
	select {
	case pc.out <- msg:
		return nil
	case <-pc.quit:
		return errors.New("client: connection closed")
	}
}

// writeLoop drains the outgoing queue onto the socket.
func (pc *conn) writeLoop() {
	for {
		select {
		case msg := <-pc.out:
			if err := wire.WriteMessage(pc.nc, msg); err != nil {
				pc.fail(err)
				return
			}
		case <-pc.quit:
			return
		}
	}
}

func (pc *conn) close() {
	pc.mu.Lock()
	already := pc.closed
	pc.closed = true
	pc.mu.Unlock()
	if already {
		return
	}
	close(pc.quit)
	pc.nc.Close()
	pc.c.mu.Lock()
	delete(pc.c.conns, pc)
	rest := make([]*conn, 0, len(pc.c.conns))
	for other := range pc.c.conns {
		rest = append(rest, other)
	}
	pc.c.mu.Unlock()
	// Pieces that were in flight on this connection are lost; kick the
	// surviving connections so they re-request instead of stalling until
	// the next unrelated event.
	for _, other := range rest {
		go func(o *conn) { _ = o.updateInterestAndRequest() }(other)
	}
}

// readLoop dispatches incoming messages until the connection dies.
func (pc *conn) readLoop() {
	for {
		msg, err := wire.ReadMessage(pc.nc)
		if err != nil {
			pc.fail(err)
			return
		}
		if msg == nil { // keep-alive
			continue
		}
		if err := pc.handle(msg); err != nil {
			pc.fail(err)
			return
		}
	}
}

// fail records an abnormal termination (clean shutdowns after completion
// are not interesting) and closes the connection.
func (pc *conn) fail(err error) {
	pc.mu.Lock()
	closed := pc.closed
	pc.mu.Unlock()
	if !closed {
		select {
		case <-pc.c.done:
			// Completed: remote hangups are expected.
		default:
			pc.c.mu.Lock()
			pc.c.errs = append(pc.c.errs, err)
			pc.c.mu.Unlock()
		}
	}
	pc.close()
}

func (pc *conn) handle(msg *wire.Message) error {
	switch msg.Type {
	case wire.MsgBitfield:
		pc.mu.Lock()
		copy(pc.remoteHave, msg.Payload)
		pc.mu.Unlock()
		return pc.updateInterestAndRequest()
	case wire.MsgHave:
		pc.mu.Lock()
		pc.remoteHave.Set(int(msg.Index))
		pc.mu.Unlock()
		return pc.updateInterestAndRequest()
	case wire.MsgInterested:
		pc.mu.Lock()
		pc.remoteInterested = true
		pc.mu.Unlock()
		if pc.c.cfg.UnchokeSlots > 0 {
			// The choker decides at the next rechoke tick.
			return nil
		}
		return pc.send(&wire.Message{Type: wire.MsgUnchoke})
	case wire.MsgNotInterested:
		pc.mu.Lock()
		pc.remoteInterested = false
		pc.mu.Unlock()
		return nil
	case wire.MsgChoke:
		pc.mu.Lock()
		pc.remoteChoking = true
		pc.inflight = map[int]time.Time{}
		pc.mu.Unlock()
		return nil
	case wire.MsgUnchoke:
		pc.mu.Lock()
		pc.remoteChoking = false
		pc.mu.Unlock()
		return pc.updateInterestAndRequest()
	case wire.MsgRequest:
		if pc.c.cfg.UnchokeSlots > 0 {
			pc.mu.Lock()
			choking := pc.weChoking
			pc.mu.Unlock()
			if choking {
				return nil // requests while choked are dropped (BEP-3)
			}
		}
		block, err := pc.c.cfg.Store.Block(int(msg.Index), int64(msg.Begin), int64(msg.Length))
		if err != nil {
			return fmt.Errorf("client: request for %d/%d+%d: %w", msg.Index, msg.Begin, msg.Length, err)
		}
		return pc.send(&wire.Message{
			Type: wire.MsgPiece, Index: msg.Index, Begin: msg.Begin, Payload: block,
		})
	case wire.MsgPiece:
		return pc.onPiece(msg)
	case wire.MsgCancel:
		return nil // whole-piece transfers complete immediately; nothing queued
	default:
		return fmt.Errorf("client: unexpected message %v", msg.Type)
	}
}

// onPiece verifies, stores and propagates a received piece.
func (pc *conn) onPiece(msg *wire.Message) error {
	p := int(msg.Index)
	if msg.Begin != 0 || int64(len(msg.Payload)) != pc.c.cfg.Store.PieceSize(p) {
		return fmt.Errorf("client: partial piece %d (begin %d, %d bytes)", p, msg.Begin, len(msg.Payload))
	}
	if err := pc.c.cfg.Store.Put(p, msg.Payload); err != nil {
		return err
	}
	pc.mu.Lock()
	delete(pc.inflight, p)
	pc.windowBytes += int64(len(msg.Payload))
	pc.mu.Unlock()
	// Tell every neighbor.
	pc.c.mu.Lock()
	conns := make([]*conn, 0, len(pc.c.conns))
	for other := range pc.c.conns {
		conns = append(conns, other)
	}
	complete := pc.c.complete()
	var done chan struct{}
	if complete {
		select {
		case <-pc.c.done:
		default:
			done = pc.c.done
		}
	}
	pc.c.mu.Unlock()
	if done != nil {
		close(done)
	}
	for _, other := range conns {
		// Have errors surface on that connection's own loop eventually.
		_ = other.send(&wire.Message{Type: wire.MsgHave, Index: msg.Index})
	}
	return pc.updateInterestAndRequest()
}

// nextWanted returns up to n un-held, un-requested pieces this remote can
// provide, in policy order.
func (pc *conn) nextWanted(n int) []int {
	c := pc.c
	var out []int
	pc.mu.Lock()
	defer pc.mu.Unlock()
	for _, p := range c.wanted {
		if len(out) >= n {
			break
		}
		if c.cfg.Store.Has(p) || !pc.remoteHave.Has(p) {
			continue
		}
		if _, busy := pc.inflight[p]; busy {
			continue
		}
		// c.wanted is in file order, so for PolicySequential taking the
		// first missing pieces is exactly "current file first"; for
		// PolicyConcurrent the order across files is immaterial because
		// the pipeline keeps several files' pieces in flight at once.
		out = append(out, p)
	}
	return out
}

// updateInterestAndRequest advances this connection's download state
// machine: declare interest, and once unchoked keep the request pipeline
// full.
func (pc *conn) updateInterestAndRequest() error {
	c := pc.c
	want := pc.nextWanted(c.cfg.MaxOutstanding)
	pc.mu.Lock()
	interested := len(want) > 0
	sendInterested := interested && !pc.weInterested
	pc.weInterested = interested || pc.weInterested
	choked := pc.remoteChoking
	room := c.cfg.MaxOutstanding - len(pc.inflight)
	pc.mu.Unlock()

	if sendInterested {
		if err := pc.send(&wire.Message{Type: wire.MsgInterested}); err != nil {
			return err
		}
	}
	if choked || !interested || room <= 0 {
		return nil
	}
	if len(want) > room {
		want = want[:room]
	}
	for _, p := range want {
		pc.mu.Lock()
		if _, busy := pc.inflight[p]; busy {
			pc.mu.Unlock()
			continue
		}
		pc.inflight[p] = time.Now()
		pc.mu.Unlock()
		err := pc.send(&wire.Message{
			Type:   wire.MsgRequest,
			Index:  uint32(p),
			Length: uint32(c.cfg.Store.PieceSize(p)),
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// Connect dials two clients together over an in-memory duplex pipe and
// registers the connection on both. Useful for in-process swarms and tests.
func Connect(a, b *Client) error {
	ca, cb := net.Pipe()
	errc := make(chan error, 1)
	go func() { errc <- b.AddConn(cb) }()
	if err := a.AddConn(ca); err != nil {
		return err
	}
	return <-errc
}
