package client

import (
	"bytes"
	"fmt"
	"net"
	"testing"
	"time"

	"mfdl/internal/metainfo"
	"mfdl/internal/rng"
	"mfdl/internal/storage"
)

// torrent builds a K-file test torrent with deterministic content.
func torrent(t *testing.T, k int, fileSize, pieceLen int64) (*metainfo.MetaInfo, []byte) {
	t.Helper()
	src := rng.New(21)
	data := make([]byte, int64(k)*fileSize)
	for i := range data {
		data[i] = byte(src.Uint32())
	}
	files := make([]metainfo.FileEntry, k)
	for i := range files {
		files[i] = metainfo.FileEntry{Path: fmt.Sprintf("s/e%02d", i+1), Length: fileSize}
	}
	m, err := metainfo.Build("s", "/announce", pieceLen, files, metainfo.BytesSource(data))
	if err != nil {
		t.Fatal(err)
	}
	return m, data
}

func seedClient(t *testing.T, m *metainfo.MetaInfo, data []byte) *Client {
	t.Helper()
	st, err := storage.NewSeeded(&m.Info, metainfo.BytesSource(data))
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(Config{Info: &m.Info, Store: st, PeerID: [20]byte{'s'}})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func leechClient(t *testing.T, m *metainfo.MetaInfo, policy Policy, files []int, id byte) *Client {
	t.Helper()
	st, err := storage.New(&m.Info)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(Config{Info: &m.Info, Store: st, PeerID: [20]byte{id}, Policy: policy, Files: files})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func waitDone(t *testing.T, c *Client, within time.Duration) {
	t.Helper()
	select {
	case <-c.Done():
	case <-time.After(within):
		t.Fatalf("download did not complete in %v (errors: %v, have %d/%d)",
			within, c.Errors(), c.cfg.Store.Count(), c.cfg.Info.NumPieces())
	}
}

func TestNewValidation(t *testing.T) {
	m, data := torrent(t, 2, 1024, 256)
	st, _ := storage.New(&m.Info)
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	if _, err := New(Config{Info: &m.Info, Store: st, Files: []int{5}}); err == nil {
		t.Fatal("bad file index accepted")
	}
	_ = data
}

func TestSeedIsDoneImmediately(t *testing.T) {
	m, data := torrent(t, 2, 1024, 256)
	seed := seedClient(t, m, data)
	select {
	case <-seed.Done():
	default:
		t.Fatal("seed not done")
	}
}

func TestSingleLeecherDownloadsFromSeed(t *testing.T) {
	m, data := torrent(t, 3, 2048, 512)
	seed := seedClient(t, m, data)
	leech := leechClient(t, m, PolicySequential, nil, 'a')
	defer seed.Close()
	defer leech.Close()
	if err := Connect(leech, seed); err != nil {
		t.Fatal(err)
	}
	waitDone(t, leech, 10*time.Second)
	// Every file reassembles to the original content.
	var off int64
	for f := range m.Info.Files {
		got, err := leech.cfg.Store.AssembleFile(f)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data[off:off+m.Info.Files[f].Length]) {
			t.Fatalf("file %d content corrupted", f)
		}
		off += m.Info.Files[f].Length
	}
}

func TestDownloadOverRealTCP(t *testing.T) {
	m, data := torrent(t, 2, 4096, 1024)
	seed := seedClient(t, m, data)
	leech := leechClient(t, m, PolicyConcurrent, nil, 'b')
	defer seed.Close()
	defer leech.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan error, 1)
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			accepted <- err
			return
		}
		accepted <- seed.AddConn(nc)
	}()
	nc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if err := leech.AddConn(nc); err != nil {
		t.Fatal(err)
	}
	if err := <-accepted; err != nil {
		t.Fatal(err)
	}
	waitDone(t, leech, 10*time.Second)
}

func TestPartialFileSelection(t *testing.T) {
	// A class-2 user requests only files 0 and 2 of a 4-file torrent.
	m, data := torrent(t, 4, 1024, 256)
	seed := seedClient(t, m, data)
	leech := leechClient(t, m, PolicySequential, []int{0, 2}, 'c')
	defer seed.Close()
	defer leech.Close()
	if err := Connect(leech, seed); err != nil {
		t.Fatal(err)
	}
	waitDone(t, leech, 10*time.Second)
	if !leech.cfg.Store.FileComplete(0) || !leech.cfg.Store.FileComplete(2) {
		t.Fatal("requested files incomplete")
	}
	// File 1 may share boundary pieces but must not be fully fetched
	// unless it shares every piece (it doesn't at these sizes).
	if leech.cfg.Store.FileComplete(1) && leech.cfg.Store.FileComplete(3) {
		t.Fatal("unrequested files downloaded")
	}
}

func TestSequentialCompletesFilesInOrder(t *testing.T) {
	// Interrupt a sequential download halfway: early files must be the
	// complete ones. (This is the partial-seed property CMFSD uses.)
	m, data := torrent(t, 4, 4096, 512)
	st, _ := storage.New(&m.Info)
	leech, err := New(Config{Info: &m.Info, Store: st, PeerID: [20]byte{'d'}, Policy: PolicySequential})
	if err != nil {
		t.Fatal(err)
	}
	seed := seedClient(t, m, data)
	defer seed.Close()
	defer leech.Close()
	if err := Connect(leech, seed); err != nil {
		t.Fatal(err)
	}
	// Wait until at least half the pieces landed, then snapshot.
	deadline := time.Now().Add(10 * time.Second)
	for st.Count() < m.Info.NumPieces()/2 {
		if time.Now().After(deadline) {
			t.Fatalf("stalled at %d pieces (errors %v)", st.Count(), leech.Errors())
		}
		time.Sleep(time.Millisecond)
	}
	if !st.FileComplete(0) {
		t.Fatalf("sequential policy: file 0 incomplete at %d/%d pieces",
			st.Count(), m.Info.NumPieces())
	}
	waitDone(t, leech, 10*time.Second)
}

func TestConcurrentPolicyInterleaves(t *testing.T) {
	// The concurrent wanted order must round-robin across files.
	m, _ := torrent(t, 3, 1024, 256) // 4 pieces per file, no shared pieces
	st, _ := storage.New(&m.Info)
	c, err := New(Config{Info: &m.Info, Store: st, PeerID: [20]byte{'e'}, Policy: PolicyConcurrent})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 4, 8, 1, 5, 9, 2, 6, 10, 3, 7, 11}
	for i, p := range want {
		if c.wanted[i] != p {
			t.Fatalf("wanted order %v, want %v", c.wanted, want)
		}
	}
}

func TestLeecherToLeecherRelay(t *testing.T) {
	// B is connected only to A (not the seed). A sequentially downloads
	// and serves finished pieces; B must complete through A alone — the
	// partial-seed relay that CMFSD builds on.
	m, data := torrent(t, 3, 2048, 512)
	seed := seedClient(t, m, data)
	a := leechClient(t, m, PolicySequential, nil, 'A')
	b := leechClient(t, m, PolicySequential, nil, 'B')
	defer seed.Close()
	defer a.Close()
	defer b.Close()
	if err := Connect(a, seed); err != nil {
		t.Fatal(err)
	}
	if err := Connect(b, a); err != nil {
		t.Fatal(err)
	}
	waitDone(t, a, 10*time.Second)
	waitDone(t, b, 15*time.Second)
	if len(b.Errors()) > 0 {
		t.Fatalf("relay errors: %v", b.Errors())
	}
}

func TestManyLeechersOneSeed(t *testing.T) {
	m, data := torrent(t, 2, 2048, 512)
	seed := seedClient(t, m, data)
	defer seed.Close()
	var leeches []*Client
	for i := 0; i < 5; i++ {
		l := leechClient(t, m, PolicyConcurrent, nil, byte('0'+i))
		defer l.Close()
		if err := Connect(l, seed); err != nil {
			t.Fatal(err)
		}
		leeches = append(leeches, l)
	}
	for _, l := range leeches {
		waitDone(t, l, 15*time.Second)
	}
}

func TestInfoHashMismatchRejected(t *testing.T) {
	m1, data1 := torrent(t, 2, 1024, 256)
	src := rng.New(99)
	data2 := make([]byte, 2048)
	for i := range data2 {
		data2[i] = byte(src.Uint32())
	}
	m2, err := metainfo.Build("other", "/a", 256, []metainfo.FileEntry{
		{Path: "other/x", Length: 2048},
	}, metainfo.BytesSource(data2))
	if err != nil {
		t.Fatal(err)
	}
	a := seedClient(t, m1, data1)
	st, _ := storage.New(&m2.Info)
	b, err := New(Config{Info: &m2.Info, Store: st, PeerID: [20]byte{'x'}})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	defer b.Close()
	if err := Connect(a, b); err == nil {
		t.Fatal("cross-torrent connection accepted")
	}
}

func TestChokerLimitsAndRotates(t *testing.T) {
	// A seed with 2 unchoke slots serving 4 leechers: tit-for-tat plus the
	// rotating optimistic slot must still let everyone finish.
	m, data := torrent(t, 2, 4096, 512)
	st, err := storage.NewSeeded(&m.Info, metainfo.BytesSource(data))
	if err != nil {
		t.Fatal(err)
	}
	seed, err := New(Config{
		Info: &m.Info, Store: st, PeerID: [20]byte{'S'},
		UnchokeSlots: 2, RechokeEvery: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer seed.Close()
	var leeches []*Client
	for i := 0; i < 4; i++ {
		l := leechClient(t, m, PolicySequential, nil, byte('k'+i))
		defer l.Close()
		if err := Connect(l, seed); err != nil {
			t.Fatal(err)
		}
		leeches = append(leeches, l)
	}
	for i, l := range leeches {
		select {
		case <-l.Done():
		case <-time.After(30 * time.Second):
			t.Fatalf("leecher %d starved under choker: %v", i, l.Errors())
		}
	}
}

func TestChokedRequestsAreDropped(t *testing.T) {
	// Against a choking seed that never rechokes (absurdly long period),
	// a leecher must stay incomplete: requests before unchoke are dropped.
	m, data := torrent(t, 1, 1024, 256)
	st, err := storage.NewSeeded(&m.Info, metainfo.BytesSource(data))
	if err != nil {
		t.Fatal(err)
	}
	seed, err := New(Config{
		Info: &m.Info, Store: st, PeerID: [20]byte{'S'},
		UnchokeSlots: 1, RechokeEvery: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer seed.Close()
	l := leechClient(t, m, PolicySequential, nil, 'z')
	defer l.Close()
	if err := Connect(l, seed); err != nil {
		t.Fatal(err)
	}
	select {
	case <-l.Done():
		t.Fatal("download completed despite permanent choke")
	case <-time.After(300 * time.Millisecond):
		// Expected: still choked, nothing transferred.
	}
	if l.cfg.Store.Count() != 0 {
		t.Fatalf("%d pieces leaked through a choked connection", l.cfg.Store.Count())
	}
}

func TestFailoverWhenPeerDies(t *testing.T) {
	// Leecher connected to two seeds; the first dies mid-download. The
	// in-flight pieces must be re-requested from the survivor.
	m, data := torrent(t, 4, 8192, 512)
	seedA := seedClient(t, m, data)
	seedB := seedClient(t, m, data)
	leech := leechClient(t, m, PolicyConcurrent, nil, 'f')
	defer seedA.Close()
	defer seedB.Close()
	defer leech.Close()
	if err := Connect(leech, seedA); err != nil {
		t.Fatal(err)
	}
	if err := Connect(leech, seedB); err != nil {
		t.Fatal(err)
	}
	// Kill seed A once a few pieces have landed.
	deadline := time.Now().Add(10 * time.Second)
	for leech.cfg.Store.Count() < 4 {
		if time.Now().After(deadline) {
			t.Fatalf("no initial progress: %v", leech.Errors())
		}
		time.Sleep(time.Millisecond)
	}
	seedA.Close()
	waitDone(t, leech, 15*time.Second)
}

func BenchmarkEndToEndDownload(b *testing.B) {
	src := rng.New(21)
	data := make([]byte, 64<<10)
	for i := range data {
		data[i] = byte(src.Uint32())
	}
	m, err := metainfo.Build("b", "/a", 8<<10,
		[]metainfo.FileEntry{{Path: "b/x", Length: int64(len(data))}},
		metainfo.BytesSource(data))
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seedStore, _ := storage.NewSeeded(&m.Info, metainfo.BytesSource(data))
		seed, _ := New(Config{Info: &m.Info, Store: seedStore, PeerID: [20]byte{'s'}})
		leechStore, _ := storage.New(&m.Info)
		leech, _ := New(Config{Info: &m.Info, Store: leechStore, PeerID: [20]byte{'l'}})
		if err := Connect(leech, seed); err != nil {
			b.Fatal(err)
		}
		<-leech.Done()
		seed.Close()
		leech.Close()
	}
}
