package client

import (
	"encoding/binary"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"mfdl/internal/storage"
	"mfdl/internal/wire"
)

// evilPeer completes a raw handshake+bitfield exchange on nc, claiming to
// hold every piece, and streams every incoming message to the returned
// channel. It is the scriptable counterpart for fault-path tests.
func evilPeer(t *testing.T, nc net.Conn, infoHash [20]byte, numPieces int) <-chan *wire.Message {
	t.Helper()
	writeErr := make(chan error, 1)
	go func() {
		writeErr <- wire.WriteHandshake(nc, wire.Handshake{InfoHash: infoHash, PeerID: [20]byte{'e', 'v', 'i', 'l'}})
	}()
	if _, err := wire.ReadHandshake(nc); err != nil {
		t.Fatalf("evil handshake read: %v", err)
	}
	if err := <-writeErr; err != nil {
		t.Fatalf("evil handshake write: %v", err)
	}
	all := wire.NewBitfield(numPieces)
	for i := 0; i < numPieces; i++ {
		all.Set(i)
	}
	if err := wire.WriteMessage(nc, &wire.Message{Type: wire.MsgBitfield, Payload: all}); err != nil {
		t.Fatalf("evil bitfield: %v", err)
	}
	msgs := make(chan *wire.Message, 256)
	go func() {
		defer close(msgs)
		for {
			msg, err := wire.ReadMessage(nc)
			if err != nil {
				return
			}
			if msg != nil {
				msgs <- msg
			}
		}
	}()
	return msgs
}

// waitRequest drains msgs until the first piece request (answering
// interest with an unchoke along the way) or the timeout.
func waitRequest(t *testing.T, nc net.Conn, msgs <-chan *wire.Message, within time.Duration) *wire.Message {
	t.Helper()
	deadline := time.After(within)
	for {
		select {
		case msg, ok := <-msgs:
			if !ok {
				t.Fatal("evil peer connection died before a request arrived")
			}
			switch msg.Type {
			case wire.MsgInterested:
				if err := wire.WriteMessage(nc, &wire.Message{Type: wire.MsgUnchoke}); err != nil {
					t.Fatalf("evil unchoke: %v", err)
				}
			case wire.MsgRequest:
				return msg
			}
		case <-deadline:
			t.Fatalf("no piece request within %v", within)
		}
	}
}

// TestDisconnectMidPieceSurfacesError is the peer-churn robustness
// contract: a remote that dies mid-message (length prefix written, body
// never completed) must surface an error on the client and release the
// outstanding requests — the download then completes through another
// peer instead of deadlocking on requests that can never be answered.
func TestDisconnectMidPieceSurfacesError(t *testing.T) {
	m, data := torrent(t, 2, 2048, 512)
	leech := leechClient(t, m, PolicySequential, nil, 'v')
	defer leech.Close()

	ours, theirs := net.Pipe()
	attach := make(chan error, 1)
	go func() { attach <- leech.AddConn(ours) }()
	msgs := evilPeer(t, theirs, leech.infoHash, m.Info.NumPieces())
	if err := <-attach; err != nil {
		t.Fatal(err)
	}
	_ = waitRequest(t, theirs, msgs, 5*time.Second)

	// Truncate mid-piece: a 13-byte frame is promised, 5 bytes arrive,
	// then the wire goes dead.
	if err := binary.Write(theirs, binary.BigEndian, uint32(13)); err != nil {
		t.Fatal(err)
	}
	if _, err := theirs.Write([]byte{byte(wire.MsgPiece), 0, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	theirs.Close()

	deadline := time.Now().Add(5 * time.Second)
	for len(leech.Errors()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("truncated message never surfaced as an error")
		}
		time.Sleep(time.Millisecond)
	}

	// The failed connection's in-flight pieces must be free again: a
	// fresh seed connection has to finish the whole download.
	seed := seedClient(t, m, data)
	defer seed.Close()
	if err := Connect(leech, seed); err != nil {
		t.Fatal(err)
	}
	waitDone(t, leech, 10*time.Second)
}

// TestRequestWatchdogRerequests: against a black-hole peer that accepts
// requests and never answers, the request-timeout watchdog must drop the
// stale in-flight entries and pipeline the pieces again.
func TestRequestWatchdogRerequests(t *testing.T) {
	m, _ := torrent(t, 1, 2048, 512)
	st, err := storage.New(&m.Info)
	if err != nil {
		t.Fatal(err)
	}
	leech, err := New(Config{
		Info: &m.Info, Store: st, PeerID: [20]byte{'w'},
		RequestTimeout: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer leech.Close()

	ours, theirs := net.Pipe()
	attach := make(chan error, 1)
	go func() { attach <- leech.AddConn(ours) }()
	msgs := evilPeer(t, theirs, leech.infoHash, m.Info.NumPieces())
	if err := <-attach; err != nil {
		t.Fatal(err)
	}

	seen := map[uint32]int{}
	deadline := time.After(5 * time.Second)
	for {
		select {
		case msg, ok := <-msgs:
			if !ok {
				t.Fatal("black-hole connection died")
			}
			switch msg.Type {
			case wire.MsgInterested:
				if err := wire.WriteMessage(theirs, &wire.Message{Type: wire.MsgUnchoke}); err != nil {
					t.Fatal(err)
				}
			case wire.MsgRequest:
				seen[msg.Index]++
				if seen[msg.Index] >= 2 {
					return // timed-out request was re-pipelined
				}
			}
		case <-deadline:
			t.Fatalf("no piece re-requested after timeout (seen %v)", seen)
		}
	}
}

// trackerOKBody is a minimal valid bencoded announce response.
const trackerOKBody = "d8:completei1e10:incompletei2e8:intervali1800e5:peerslee"

func TestAnnounceWithRetryRecoversFrom5xx(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, "overloaded", http.StatusServiceUnavailable)
			return
		}
		_, _ = w.Write([]byte(trackerOKBody))
	}))
	defer srv.Close()

	var waits []time.Duration
	resp, err := AnnounceWithRetry(srv.URL, [20]byte{1}, [20]byte{2}, "127.0.0.1", 6881, 1, "started",
		RetryPolicy{Tries: 5, BaseDelay: 10 * time.Millisecond, Seed: 1,
			Sleep: func(d time.Duration) { waits = append(waits, d) }})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Complete != 1 || resp.Incomplete != 2 || resp.Interval != 1800*time.Second {
		t.Fatalf("parsed response %+v", resp)
	}
	if n := calls.Load(); n != 3 {
		t.Fatalf("tracker saw %d announces, want 3", n)
	}
	if len(waits) != 2 {
		t.Fatalf("backoffs = %v, want 2 waits", waits)
	}
	// Exponential shape with jitter in [0.5, 1.0]: attempt k waits within
	// (0, base<<k] and at least half of it.
	for k, d := range waits {
		hi := 10 * time.Millisecond << uint(k)
		if d < hi/2 || d > hi {
			t.Fatalf("backoff %d = %v outside [%v, %v]", k, d, hi/2, hi)
		}
	}
}

func TestAnnounceWithRetryGivesUp(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "down", http.StatusBadGateway)
	}))
	defer srv.Close()
	_, err := AnnounceWithRetry(srv.URL, [20]byte{1}, [20]byte{2}, "127.0.0.1", 6881, 1, "",
		RetryPolicy{Tries: 3, BaseDelay: time.Millisecond, Sleep: func(time.Duration) {}})
	if err == nil {
		t.Fatal("permanently broken tracker reported success")
	}
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusBadGateway {
		t.Fatalf("error %v, want StatusError 502", err)
	}
	if n := calls.Load(); n != 3 {
		t.Fatalf("tracker saw %d announces, want 3", n)
	}
}

func TestAnnounceWithRetryDoesNotRetryRejections(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		_, _ = w.Write([]byte("d14:failure reason12:unregisterede"))
	}))
	defer srv.Close()
	_, err := AnnounceWithRetry(srv.URL, [20]byte{1}, [20]byte{2}, "127.0.0.1", 6881, 1, "",
		RetryPolicy{Tries: 5, BaseDelay: time.Millisecond, Sleep: func(time.Duration) {}})
	if err == nil || !strings.Contains(err.Error(), "unregistered") {
		t.Fatalf("err = %v, want tracker failure reason", err)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("application-level rejection retried: %d announces", n)
	}
}

func TestReconnectRetriesDial(t *testing.T) {
	m, data := torrent(t, 1, 1024, 256)
	seed := seedClient(t, m, data)
	defer seed.Close()
	leech := leechClient(t, m, PolicySequential, nil, 'r')
	defer leech.Close()

	ln, err := Listen(seed, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	if err := Reconnect(leech, ln.Addr().String(), 3,
		RetryPolicy{BaseDelay: time.Millisecond, Sleep: func(time.Duration) {}}); err != nil {
		t.Fatal(err)
	}
	waitDone(t, leech, 10*time.Second)

	// A dead address exhausts the attempts and reports the last error.
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := dead.Addr().String()
	dead.Close()
	waits := 0
	if err := Reconnect(leech, addr, 2,
		RetryPolicy{BaseDelay: time.Millisecond, Sleep: func(time.Duration) { waits++ }}); err == nil {
		t.Fatal("reconnect to a dead address succeeded")
	}
	if waits != 1 {
		t.Fatalf("backoffs = %d, want 1", waits)
	}
}
