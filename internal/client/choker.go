package client

import (
	"sort"
	"time"

	"mfdl/internal/wire"
)

// This file implements the tit-for-tat choker of the BitTorrent incentive
// mechanism (the behaviour the paper's η < 1 abstracts): a peer with a
// bounded number of unchoke slots periodically grants them to the
// neighbors it downloaded the most from in the last window, plus one
// rotating optimistic unchoke so newcomers can bootstrap.
//
// The choker is optional: with Config.UnchokeSlots == 0 (the default)
// every interested neighbor is unchoked immediately, which is the right
// setting for correctness tests and tiny in-process swarms.

// startChoker launches the periodic rechoke loop; stopped by Close.
func (c *Client) startChoker() {
	go func() {
		ticker := time.NewTicker(c.cfg.RechokeEvery)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				c.rechoke()
			case <-c.chokerQuit:
				return
			}
		}
	}()
}

// rechoke reassigns the unchoke slots by recent download rate.
func (c *Client) rechoke() {
	c.mu.Lock()
	type cand struct {
		pc    *conn
		bytes int64
	}
	var interested []cand
	for pc := range c.conns {
		pc.mu.Lock()
		if pc.remoteInterested {
			interested = append(interested, cand{pc, pc.windowBytes})
		}
		pc.windowBytes = 0
		pc.mu.Unlock()
	}
	c.mu.Unlock()

	sort.Slice(interested, func(i, j int) bool {
		return interested[i].bytes > interested[j].bytes
	})
	unchoke := map[*conn]bool{}
	regular := c.cfg.UnchokeSlots - 1
	if regular < 0 {
		regular = 0
	}
	for i := 0; i < len(interested) && i < regular; i++ {
		unchoke[interested[i].pc] = true
	}
	// Optimistic slot: rotate deterministically through the remaining
	// interested peers.
	var rest []*conn
	for _, cd := range interested {
		if !unchoke[cd.pc] {
			rest = append(rest, cd.pc)
		}
	}
	if len(rest) > 0 {
		c.mu.Lock()
		c.optimisticTurn++
		pick := rest[c.optimisticTurn%len(rest)]
		c.mu.Unlock()
		unchoke[pick] = true
	}
	// Apply the transitions.
	for _, cd := range interested {
		cd.pc.setChoked(!unchoke[cd.pc])
	}
}

// setChoked moves our choke state for the remote and notifies it on change.
func (pc *conn) setChoked(choked bool) {
	pc.mu.Lock()
	changed := pc.weChoking != choked
	pc.weChoking = choked
	pc.mu.Unlock()
	if !changed {
		return
	}
	t := wire.MsgUnchoke
	if choked {
		t = wire.MsgChoke
	}
	_ = pc.send(&wire.Message{Type: t})
}
