package client

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strings"
	"time"

	"mfdl/internal/bencode"
)

// This file connects the peer to the paper's centralized components
// (internal/tracker): announce over HTTP, parse the bencoded peer list,
// dial the returned peers, and accept inbound connections — the complete
// client loop of Section 3.1.

// Listen accepts inbound peer connections for c on a TCP address (use
// "127.0.0.1:0" for tests) until the listener is closed. It returns the
// listener so the caller knows the bound port and can stop the loop.
func Listen(c *Client, addr string) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			// Handshake errors surface through Errors(); a bad inbound
			// peer must not stop the accept loop.
			go func() { _ = c.AddConn(nc) }()
		}
	}()
	return ln, nil
}

// TrackerPeer is one peer returned by an announce.
type TrackerPeer struct {
	ID   string
	Addr string // host:port
}

// TrackerResponse is a parsed announce response.
type TrackerResponse struct {
	Interval             time.Duration
	Complete, Incomplete int
	Peers                []TrackerPeer
}

// Announce performs one HTTP announce against trackerURL (the /announce
// endpoint) and parses the bencoded response.
func Announce(trackerURL string, infoHash, peerID [20]byte, ip string, port int, left int64, event string) (*TrackerResponse, error) {
	q := url.Values{}
	q.Set("info_hash", string(infoHash[:]))
	q.Set("peer_id", string(peerID[:]))
	q.Set("ip", ip)
	q.Set("port", fmt.Sprintf("%d", port))
	q.Set("left", fmt.Sprintf("%d", left))
	if event != "" {
		q.Set("event", event)
	}
	sep := "?"
	if strings.Contains(trackerURL, "?") {
		sep = "&"
	}
	resp, err := http.Get(trackerURL + sep + q.Encode())
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return nil, err
	}
	v, err := bencode.Unmarshal(body)
	if err != nil {
		return nil, fmt.Errorf("client: tracker response: %w", err)
	}
	d, ok := v.(map[string]any)
	if !ok {
		return nil, fmt.Errorf("client: tracker response is not a dict")
	}
	if reason, ok := d["failure reason"].(string); ok {
		return nil, fmt.Errorf("client: tracker failure: %s", reason)
	}
	out := &TrackerResponse{}
	if iv, ok := d["interval"].(int64); ok {
		out.Interval = time.Duration(iv) * time.Second
	}
	if n, ok := d["complete"].(int64); ok {
		out.Complete = int(n)
	}
	if n, ok := d["incomplete"].(int64); ok {
		out.Incomplete = int(n)
	}
	switch peers := d["peers"].(type) {
	case []any:
		for _, p := range peers {
			pd, ok := p.(map[string]any)
			if !ok {
				continue
			}
			ip, _ := pd["ip"].(string)
			port, _ := pd["port"].(int64)
			id, _ := pd["peer id"].(string)
			if ip == "" || port <= 0 {
				continue
			}
			out.Peers = append(out.Peers, TrackerPeer{
				ID:   id,
				Addr: net.JoinHostPort(ip, fmt.Sprintf("%d", port)),
			})
		}
	case string:
		// BEP-23 compact form: consecutive 6-byte IPv4+port entries.
		for i := 0; i+6 <= len(peers); i += 6 {
			ip := net.IPv4(peers[i], peers[i+1], peers[i+2], peers[i+3])
			port := int(peers[i+4])<<8 | int(peers[i+5])
			if port <= 0 {
				continue
			}
			out.Peers = append(out.Peers, TrackerPeer{
				Addr: net.JoinHostPort(ip.String(), fmt.Sprintf("%d", port)),
			})
		}
	}
	return out, nil
}

// Left returns the announce "left" value: bytes still wanted (approximated
// at piece granularity, which is what trackers use it for).
func (c *Client) Left() int64 {
	var left int64
	for _, p := range c.wanted {
		if !c.cfg.Store.Has(p) {
			left += c.cfg.Store.PieceSize(p)
		}
	}
	return left
}

// Bootstrap announces to the tracker as a starting peer listening on
// ip:port and dials every peer the tracker returns. Dial failures are
// collected but do not abort the remaining peers; an error is returned
// only when the announce itself fails or no advertised peer was reachable
// while some were advertised.
func (c *Client) Bootstrap(announceURL, ip string, port int) error {
	resp, err := Announce(announceURL, c.infoHash, c.cfg.PeerID, ip, port, c.Left(), "started")
	if err != nil {
		return err
	}
	if len(resp.Peers) == 0 {
		return nil
	}
	connected := 0
	var lastErr error
	for _, p := range resp.Peers {
		nc, err := net.DialTimeout("tcp", p.Addr, 5*time.Second)
		if err != nil {
			lastErr = err
			continue
		}
		if err := c.AddConn(nc); err != nil {
			lastErr = err
			continue
		}
		connected++
	}
	if connected == 0 {
		return fmt.Errorf("client: no advertised peer reachable: %w", lastErr)
	}
	return nil
}
