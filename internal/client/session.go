package client

import (
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strings"
	"time"

	"mfdl/internal/bencode"
	"mfdl/internal/rng"
)

// This file connects the peer to the paper's centralized components
// (internal/tracker): announce over HTTP, parse the bencoded peer list,
// dial the returned peers, and accept inbound connections — the complete
// client loop of Section 3.1.

// Listen accepts inbound peer connections for c on a TCP address (use
// "127.0.0.1:0" for tests) until the listener is closed. It returns the
// listener so the caller knows the bound port and can stop the loop.
func Listen(c *Client, addr string) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			// Handshake errors surface through Errors(); a bad inbound
			// peer must not stop the accept loop.
			go func() { _ = c.AddConn(nc) }()
		}
	}()
	return ln, nil
}

// TrackerPeer is one peer returned by an announce.
type TrackerPeer struct {
	ID   string
	Addr string // host:port
}

// TrackerResponse is a parsed announce response.
type TrackerResponse struct {
	Interval             time.Duration
	Complete, Incomplete int
	Peers                []TrackerPeer
}

// announceClient is the HTTP client every announce goes through. The
// explicit timeout bounds the whole exchange (dial, request, response
// body), so a hung or half-dead tracker fails the announce instead of
// wedging the peer forever.
var announceClient = &http.Client{Timeout: 10 * time.Second}

// StatusError is an announce answered with an HTTP error status. It is
// the retryable class of tracker failure for 5xx codes: the tracker (or a
// proxy in front of it) is broken, not our request.
type StatusError struct {
	Code int
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("client: tracker returned HTTP %d", e.Code)
}

// retryableAnnounceError reports whether an announce failure is worth
// retrying: transport errors and server-side (5xx / 429) statuses are;
// malformed responses and explicit tracker failure reasons are not — the
// tracker answered, it just said no.
func retryableAnnounceError(err error) bool {
	var se *StatusError
	if errors.As(err, &se) {
		return se.Code >= 500 || se.Code == http.StatusTooManyRequests
	}
	var ue *url.Error
	return errors.As(err, &ue)
}

// RetryPolicy shapes AnnounceWithRetry's backoff.
type RetryPolicy struct {
	// Tries is the total number of attempts (<= 1 means a single try).
	Tries int
	// BaseDelay is the wait after the first failure; it doubles per
	// attempt (default 100ms).
	BaseDelay time.Duration
	// MaxDelay caps the backoff (default 5s).
	MaxDelay time.Duration
	// Seed drives the deterministic jitter stream.
	Seed uint64
	// Sleep replaces time.Sleep in tests; nil uses the real clock.
	Sleep func(time.Duration)
}

// backoff returns the wait before retry number attempt (0-based): an
// exponentially growing delay with multiplicative jitter in [0.5, 1.0]
// drawn from a deterministic stream, so synchronized peers fan out instead
// of hammering a recovering tracker in lockstep.
func (p RetryPolicy) backoff(src *rng.Source, attempt int) time.Duration {
	base := p.BaseDelay
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	max := p.MaxDelay
	if max <= 0 {
		max = 5 * time.Second
	}
	d := base << uint(attempt)
	if d <= 0 || d > max {
		d = max
	}
	return time.Duration((0.5 + 0.5*src.Float64()) * float64(d))
}

// AnnounceWithRetry announces like Announce but survives transient
// tracker outages: transport errors and 5xx responses are retried up to
// pol.Tries times with exponential backoff plus deterministic jitter.
// Application-level rejections (bencoded failure reasons, 4xx) fail
// immediately.
func AnnounceWithRetry(trackerURL string, infoHash, peerID [20]byte, ip string, port int, left int64, event string, pol RetryPolicy) (*TrackerResponse, error) {
	tries := pol.Tries
	if tries < 1 {
		tries = 1
	}
	sleep := pol.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	src := rng.New(pol.Seed)
	var lastErr error
	for attempt := 0; attempt < tries; attempt++ {
		resp, err := Announce(trackerURL, infoHash, peerID, ip, port, left, event)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if !retryableAnnounceError(err) || attempt == tries-1 {
			break
		}
		sleep(pol.backoff(src, attempt))
	}
	return nil, lastErr
}

// Announce performs one HTTP announce against trackerURL (the /announce
// endpoint) and parses the bencoded response.
func Announce(trackerURL string, infoHash, peerID [20]byte, ip string, port int, left int64, event string) (*TrackerResponse, error) {
	q := url.Values{}
	q.Set("info_hash", string(infoHash[:]))
	q.Set("peer_id", string(peerID[:]))
	q.Set("ip", ip)
	q.Set("port", fmt.Sprintf("%d", port))
	q.Set("left", fmt.Sprintf("%d", left))
	if event != "" {
		q.Set("event", event)
	}
	sep := "?"
	if strings.Contains(trackerURL, "?") {
		sep = "&"
	}
	resp, err := announceClient.Get(trackerURL + sep + q.Encode())
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode >= 400 {
		return nil, &StatusError{Code: resp.StatusCode}
	}
	v, err := bencode.Unmarshal(body)
	if err != nil {
		return nil, fmt.Errorf("client: tracker response: %w", err)
	}
	d, ok := v.(map[string]any)
	if !ok {
		return nil, fmt.Errorf("client: tracker response is not a dict")
	}
	if reason, ok := d["failure reason"].(string); ok {
		return nil, fmt.Errorf("client: tracker failure: %s", reason)
	}
	out := &TrackerResponse{}
	if iv, ok := d["interval"].(int64); ok {
		out.Interval = time.Duration(iv) * time.Second
	}
	if n, ok := d["complete"].(int64); ok {
		out.Complete = int(n)
	}
	if n, ok := d["incomplete"].(int64); ok {
		out.Incomplete = int(n)
	}
	switch peers := d["peers"].(type) {
	case []any:
		for _, p := range peers {
			pd, ok := p.(map[string]any)
			if !ok {
				continue
			}
			ip, _ := pd["ip"].(string)
			port, _ := pd["port"].(int64)
			id, _ := pd["peer id"].(string)
			if ip == "" || port <= 0 {
				continue
			}
			out.Peers = append(out.Peers, TrackerPeer{
				ID:   id,
				Addr: net.JoinHostPort(ip, fmt.Sprintf("%d", port)),
			})
		}
	case string:
		// BEP-23 compact form: consecutive 6-byte IPv4+port entries.
		for i := 0; i+6 <= len(peers); i += 6 {
			ip := net.IPv4(peers[i], peers[i+1], peers[i+2], peers[i+3])
			port := int(peers[i+4])<<8 | int(peers[i+5])
			if port <= 0 {
				continue
			}
			out.Peers = append(out.Peers, TrackerPeer{
				Addr: net.JoinHostPort(ip.String(), fmt.Sprintf("%d", port)),
			})
		}
	}
	return out, nil
}

// Left returns the announce "left" value: bytes still wanted (approximated
// at piece granularity, which is what trackers use it for).
func (c *Client) Left() int64 {
	var left int64
	for _, p := range c.wanted {
		if !c.cfg.Store.Has(p) {
			left += c.cfg.Store.PieceSize(p)
		}
	}
	return left
}

// Bootstrap announces to the tracker as a starting peer listening on
// ip:port and dials every peer the tracker returns. Dial failures are
// collected but do not abort the remaining peers; an error is returned
// only when the announce itself fails or no advertised peer was reachable
// while some were advertised.
func (c *Client) Bootstrap(announceURL, ip string, port int) error {
	resp, err := Announce(announceURL, c.infoHash, c.cfg.PeerID, ip, port, c.Left(), "started")
	if err != nil {
		return err
	}
	if len(resp.Peers) == 0 {
		return nil
	}
	connected := 0
	var lastErr error
	for _, p := range resp.Peers {
		nc, err := net.DialTimeout("tcp", p.Addr, 5*time.Second)
		if err != nil {
			lastErr = err
			continue
		}
		if err := c.AddConn(nc); err != nil {
			lastErr = err
			continue
		}
		connected++
	}
	if connected == 0 {
		return fmt.Errorf("client: no advertised peer reachable: %w", lastErr)
	}
	return nil
}

// Reconnect dials addr and attaches the connection to c, retrying the
// dial+handshake up to tries times with the policy's backoff. It is the
// recovery path after a peer connection drops: the surviving client calls
// Reconnect to rebuild the link instead of waiting for the next announce.
func Reconnect(c *Client, addr string, tries int, pol RetryPolicy) error {
	if tries < 1 {
		tries = 1
	}
	sleep := pol.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	src := rng.New(pol.Seed)
	var lastErr error
	for attempt := 0; attempt < tries; attempt++ {
		nc, err := net.DialTimeout("tcp", addr, 5*time.Second)
		if err == nil {
			if err = c.AddConn(nc); err == nil {
				return nil
			}
		}
		lastErr = err
		if attempt < tries-1 {
			sleep(pol.backoff(src, attempt))
		}
	}
	return fmt.Errorf("client: reconnect %s: %w", addr, lastErr)
}
