package client

import (
	"net"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"mfdl/internal/tracker"
)

// TestTrackerDrivenSwarm exercises the complete Section-3.1 loop with real
// components: publish to the tracker, seed announces and listens, a leecher
// bootstraps via announce, dials the seed over TCP, and downloads the whole
// multi-file torrent.
func TestTrackerDrivenSwarm(t *testing.T) {
	m, data := torrent(t, 3, 4096, 1024)

	reg := tracker.NewRegistry(1)
	if _, err := reg.Publish(m); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(tracker.Handler(reg))
	defer srv.Close()
	announceURL := srv.URL + "/announce"

	// Seed comes online and registers itself.
	seed := seedClient(t, m, data)
	defer seed.Close()
	ln, err := Listen(seed, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	host, portStr, err := net.SplitHostPort(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	port, _ := strconv.Atoi(portStr)
	if err := seed.Bootstrap(announceURL, host, port); err != nil {
		t.Fatal(err) // empty swarm: announce succeeds, nothing to dial
	}
	if seed.Left() != 0 {
		t.Fatalf("seed left = %d", seed.Left())
	}

	// Leecher discovers the seed through the tracker.
	leech := leechClient(t, m, PolicySequential, nil, 'L')
	defer leech.Close()
	if leech.Left() != m.Info.TotalLength() {
		t.Fatalf("leech left = %d, want %d", leech.Left(), m.Info.TotalLength())
	}
	if err := leech.Bootstrap(announceURL, "127.0.0.1", 54321); err != nil {
		t.Fatal(err)
	}
	waitDone(t, leech, 15*time.Second)

	// The tracker index now shows two peers.
	entries := reg.Scrape()
	if len(entries) != 1 {
		t.Fatalf("scrape entries %d", len(entries))
	}
	if got := entries[0].Complete + entries[0].Incomplete; got != 2 {
		t.Fatalf("tracker sees %d peers, want 2", got)
	}
}

func TestAnnounceParsesCounts(t *testing.T) {
	m, data := torrent(t, 2, 1024, 256)
	reg := tracker.NewRegistry(1)
	h, err := reg.Publish(m)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(tracker.Handler(reg))
	defer srv.Close()
	_ = data

	var id [20]byte
	copy(id[:], "announcer-000000000")
	resp, err := Announce(srv.URL+"/announce", h, id, "10.1.2.3", 7000, 0, "completed")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Complete != 1 || resp.Incomplete != 0 {
		t.Fatalf("counts %d/%d", resp.Complete, resp.Incomplete)
	}
	if resp.Interval <= 0 {
		t.Fatal("no interval")
	}
	// Second announcer sees the first with its advertised address.
	var id2 [20]byte
	copy(id2[:], "announcer-111111111")
	resp, err = Announce(srv.URL+"/announce", h, id2, "10.1.2.4", 7001, 100, "started")
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Peers) != 1 || resp.Peers[0].Addr != "10.1.2.3:7000" {
		t.Fatalf("peers %+v", resp.Peers)
	}
}

func TestAnnounceFailureSurfaces(t *testing.T) {
	reg := tracker.NewRegistry(1)
	srv := httptest.NewServer(tracker.Handler(reg))
	defer srv.Close()
	var h, id [20]byte
	if _, err := Announce(srv.URL+"/announce", h, id, "1.2.3.4", 1, 0, ""); err == nil {
		t.Fatal("unknown torrent announce succeeded")
	}
}

func TestBootstrapUnreachablePeers(t *testing.T) {
	m, data := torrent(t, 2, 1024, 256)
	reg := tracker.NewRegistry(1)
	if _, err := reg.Publish(m); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(tracker.Handler(reg))
	defer srv.Close()
	_ = data

	// A ghost peer that nobody can dial.
	var ghost [20]byte
	copy(ghost[:], "ghost-peer-00000000")
	h, _ := m.Info.InfoHash()
	if _, err := Announce(srv.URL+"/announce", h, ghost, "127.0.0.1", 1, 100, "started"); err != nil {
		t.Fatal(err)
	}
	leech := leechClient(t, m, PolicyConcurrent, nil, 'X')
	defer leech.Close()
	if err := leech.Bootstrap(srv.URL+"/announce", "127.0.0.1", 2); err == nil {
		t.Fatal("bootstrap with only unreachable peers succeeded")
	}
}

func TestAnnounceParsesCompactPeers(t *testing.T) {
	m, data := torrent(t, 2, 1024, 256)
	reg := tracker.NewRegistry(1)
	h, err := reg.Publish(m)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(tracker.Handler(reg))
	defer srv.Close()
	_ = data

	var id [20]byte
	copy(id[:], "compact-seed-000000")
	if _, err := Announce(srv.URL+"/announce", h, id, "10.2.3.4", 6999, 0, "completed"); err != nil {
		t.Fatal(err)
	}
	var id2 [20]byte
	copy(id2[:], "compact-leech-00000")
	resp, err := Announce(srv.URL+"/announce?compact=1", h, id2, "10.2.3.5", 7000, 100, "started")
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Peers) != 1 || resp.Peers[0].Addr != "10.2.3.4:6999" {
		t.Fatalf("compact peers %+v", resp.Peers)
	}
}
