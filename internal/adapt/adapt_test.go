package adapt

import (
	"testing"
)

func controller(t *testing.T, cfg Config) *Controller {
	t.Helper()
	c, err := NewController(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestValidation(t *testing.T) {
	if err := DefaultConfig.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultConfig
	bad.Lower, bad.Upper = 1, -1
	if bad.Validate() == nil {
		t.Fatal("inverted thresholds accepted")
	}
	bad = DefaultConfig
	bad.StepUp = 0
	if bad.Validate() == nil {
		t.Fatal("zero step accepted")
	}
	bad = DefaultConfig
	bad.Period = 0
	if bad.Validate() == nil {
		t.Fatal("zero period accepted")
	}
	bad = DefaultConfig
	bad.InitialRho = 2
	if bad.Validate() == nil {
		t.Fatal("ρ=2 accepted")
	}
	bad = DefaultConfig
	bad.Consecutive = 0
	if bad.Validate() == nil {
		t.Fatal("Consecutive=0 accepted")
	}
}

func TestStartsAtInitialRho(t *testing.T) {
	cfg := DefaultConfig
	cfg.InitialRho = 0.3
	c := controller(t, cfg)
	if c.Rho() != 0.3 {
		t.Fatalf("initial ρ = %v", c.Rho())
	}
	if c.Period() != cfg.Period {
		t.Fatalf("period = %v", c.Period())
	}
}

func TestRaisesOnSustainedOverContribution(t *testing.T) {
	cfg := DefaultConfig
	cfg.Consecutive = 2
	c := controller(t, cfg)
	c.Observe(0.01) // first vote — no move yet
	if c.Rho() != 0 {
		t.Fatalf("moved after one window: %v", c.Rho())
	}
	c.Observe(0.01) // second consecutive vote — raise
	if c.Rho() != cfg.StepUp {
		t.Fatalf("ρ = %v, want %v", c.Rho(), cfg.StepUp)
	}
}

func TestLowersOnSustainedBenefit(t *testing.T) {
	cfg := DefaultConfig
	cfg.InitialRho = 1
	cfg.Consecutive = 1
	c := controller(t, cfg)
	c.Observe(-0.01)
	if c.Rho() != 1-cfg.StepDown {
		t.Fatalf("ρ = %v", c.Rho())
	}
}

func TestNeutralWindowResetsRun(t *testing.T) {
	cfg := DefaultConfig
	cfg.Consecutive = 2
	c := controller(t, cfg)
	c.Observe(0.01)
	c.Observe(0) // inside [Lower, Upper]: resets the streak
	c.Observe(0.01)
	if c.Rho() != 0 {
		t.Fatalf("streak not reset: ρ = %v", c.Rho())
	}
}

func TestOppositeVoteResetsRun(t *testing.T) {
	cfg := DefaultConfig
	cfg.Consecutive = 2
	c := controller(t, cfg)
	c.Observe(0.01)
	c.Observe(-0.01)
	c.Observe(0.01)
	if c.Rho() != 0 {
		t.Fatalf("opposite vote did not reset streak: ρ = %v", c.Rho())
	}
}

func TestClampsToUnitInterval(t *testing.T) {
	cfg := DefaultConfig
	cfg.Consecutive = 1
	cfg.StepUp = 0.4
	c := controller(t, cfg)
	for i := 0; i < 10; i++ {
		c.Observe(1)
	}
	if c.Rho() != 1 {
		t.Fatalf("ρ = %v, want clamp at 1", c.Rho())
	}
	for i := 0; i < 100; i++ {
		c.Observe(-1)
	}
	if c.Rho() != 0 {
		t.Fatalf("ρ = %v, want clamp at 0", c.Rho())
	}
}

func TestDriftToMFCDUnderSustainedDeficit(t *testing.T) {
	// The paper's degeneracy prediction: when peers consistently give
	// more than they get, every obedient peer ends at ρ = 1.
	cfg := DefaultConfig
	cfg.Consecutive = 1
	c := controller(t, cfg)
	for i := 0; i < 50; i++ {
		c.Observe(0.05)
	}
	if c.Rho() != 1 {
		t.Fatalf("ρ = %v, want 1 (MFCD degeneration)", c.Rho())
	}
}
