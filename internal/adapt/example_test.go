package adapt_test

import (
	"fmt"
	"log"

	"mfdl/internal/adapt"
)

// A peer that keeps giving more than it gets raises its ρ step by step.
func ExampleController() {
	ctrl, err := adapt.NewController(adapt.Config{
		Lower: -0.005, Upper: 0.005,
		StepUp: 0.25, StepDown: 0.1,
		Period: 50, InitialRho: 0, Consecutive: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	for window := 0; window < 4; window++ {
		rho := ctrl.Observe(0.02) // uploads 0.02 more than it receives
		fmt.Printf("after window %d: ρ = %.2f\n", window+1, rho)
	}
	// Output:
	// after window 1: ρ = 0.00
	// after window 2: ρ = 0.25
	// after window 3: ρ = 0.25
	// after window 4: ρ = 0.50
}
