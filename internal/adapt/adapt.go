// Package adapt implements the paper's Adapt mechanism (Section 4.3): a
// distributed controller with which each obedient CMFSD peer tunes its own
// bandwidth allocation ratio ρ from local observations.
//
// While serving as a partial seed, a peer monitors the bandwidth it spends
// uploading through its virtual seed and the bandwidth it receives from
// other peers' virtual seeds, and forms the difference Δ = up − down over
// each observation window. If Δ stays above the upper threshold the peer is
// over-contributing and raises ρ by StepUp (protecting itself); if Δ stays
// below the lower threshold it lowers ρ by StepDown (helping the system).
// ρ is clamped to [0, 1]. The paper writes the thresholds φ₁ ≤ φ₂ with φ₁
// the raise trigger; for the comparisons to be mutually exclusive this
// package uses Lower ≤ Upper with raise on Δ > Upper and lower on Δ <
// Lower — the natural hysteresis reading of the mechanism.
//
// A peer starts at ρ = 0 (the paper's recommended initial setting). When
// correlation is low or most peers cheat, Δ stays positive and every
// obedient peer drifts to ρ = 1, degenerating gracefully to MFCD — the
// behaviour the paper predicts.
package adapt

import (
	"errors"
	"fmt"
)

// Config holds the Adapt controller parameters (φ₁, φ₂, υ₁, υ₂ in the
// paper, plus the observation window).
type Config struct {
	// Lower is the decrease threshold: Δ < Lower lowers ρ.
	Lower float64
	// Upper is the increase threshold: Δ > Upper raises ρ. Must satisfy
	// Lower <= Upper.
	Upper float64
	// StepUp is υ₁, the ρ increment.
	StepUp float64
	// StepDown is υ₂, the ρ decrement.
	StepDown float64
	// Period is the observation window between adaptations (simulated
	// time units).
	Period float64
	// InitialRho is the starting allocation ratio (the paper recommends
	// 0).
	InitialRho float64
	// Consecutive is how many successive windows must agree before ρ
	// moves ("consistently larger/smaller" in the paper). Minimum 1.
	Consecutive int
}

// DefaultConfig is a reasonable operating point used by the experiments:
// symmetric thresholds at ±25% of the paper's upload bandwidth μ = 0.02 and
// gentle steps. The margin matters: even with everyone obedient, Δ has a
// small positive bias (peers still on their first file receive virtual-seed
// service without yet contributing any), so thresholds much tighter than
// that bias make ρ creep upward in a healthy swarm.
var DefaultConfig = Config{
	Lower:       -0.005,
	Upper:       0.005,
	StepUp:      0.1,
	StepDown:    0.05,
	Period:      50,
	InitialRho:  0,
	Consecutive: 2,
}

// Validate checks the controller parameters.
func (c Config) Validate() error {
	if c.Lower > c.Upper {
		return fmt.Errorf("adapt: Lower %v > Upper %v", c.Lower, c.Upper)
	}
	if c.StepUp <= 0 || c.StepDown <= 0 {
		return errors.New("adapt: steps must be positive")
	}
	if c.Period <= 0 {
		return errors.New("adapt: period must be positive")
	}
	if c.InitialRho < 0 || c.InitialRho > 1 {
		return fmt.Errorf("adapt: initial ρ = %v outside [0,1]", c.InitialRho)
	}
	if c.Consecutive < 1 {
		return errors.New("adapt: Consecutive must be >= 1")
	}
	return nil
}

// Controller is the per-peer Adapt state machine. The zero value is not
// usable; construct with NewController.
type Controller struct {
	cfg Config
	rho float64
	// run counts successive windows voting in the same direction:
	// positive for raises, negative for lowers.
	run int
}

// NewController returns a controller at the configured initial ρ.
func NewController(cfg Config) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Controller{cfg: cfg, rho: cfg.InitialRho}, nil
}

// Rho returns the current allocation ratio.
func (c *Controller) Rho() float64 { return c.rho }

// Period returns the observation window length.
func (c *Controller) Period() float64 { return c.cfg.Period }

// Observe feeds one window's Δ = (virtual-seed upload − virtual-seed
// download)/window and returns the possibly-updated ρ.
func (c *Controller) Observe(delta float64) float64 {
	switch {
	case delta > c.cfg.Upper:
		if c.run < 0 {
			c.run = 0
		}
		c.run++
		if c.run >= c.cfg.Consecutive {
			c.rho += c.cfg.StepUp
			if c.rho > 1 {
				c.rho = 1
			}
			c.run = 0
		}
	case delta < c.cfg.Lower:
		if c.run > 0 {
			c.run = 0
		}
		c.run--
		if -c.run >= c.cfg.Consecutive {
			c.rho -= c.cfg.StepDown
			if c.rho < 0 {
				c.rho = 0
			}
			c.run = 0
		}
	default:
		c.run = 0
	}
	return c.rho
}
