package experiments

import (
	"fmt"
	"math"

	"mfdl/internal/cmfsd"
	"mfdl/internal/table"
)

// CheatingRow is one cheater-fraction setting of the fluid cheating sweep.
type CheatingRow struct {
	CheaterFraction float64
	// SystemAvg is the overall average online time per file.
	SystemAvg float64
	// ObedientClassK / CheaterClassK are the class-K download times per
	// file for each group (NaN when the group is empty).
	ObedientClassK, CheaterClassK float64
}

// CheatingResult is the fluid counterpart of the Adapt simulation (E8): it
// quantifies, from Eq. (5) generalized to mixed populations, how much a
// fixed cheater fraction gains individually and costs collectively.
type CheatingResult struct {
	Config      Config
	P           float64
	ObedientRho float64
	Rows        []CheatingRow
}

// CheatingSweep evaluates the mixed CMFSD model over cheater fractions.
// Obedient peers play ρ = obedientRho; cheaters pin ρ = 1.
func CheatingSweep(cfg Config, p, obedientRho float64, fractions []float64) (*CheatingResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	corr, err := cfg.corr(p)
	if err != nil {
		return nil, err
	}
	res := &CheatingResult{Config: cfg, P: p, ObedientRho: obedientRho}
	for _, cf := range fractions {
		var groups []cmfsd.Group
		if cf < 1 {
			groups = append(groups, cmfsd.Group{Name: "obedient", Fraction: 1 - cf, Rho: obedientRho})
		}
		if cf > 0 {
			groups = append(groups, cmfsd.Group{Name: "cheater", Fraction: cf, Rho: 1})
		}
		m, err := cmfsd.NewMixed(cfg.Params, corr, groups)
		if err != nil {
			return nil, err
		}
		out, err := m.Evaluate()
		if err != nil {
			return nil, fmt.Errorf("experiments: cheating fraction %v: %w", cf, err)
		}
		row := CheatingRow{
			CheaterFraction: cf,
			SystemAvg:       out.AvgOnlinePerFile(),
			ObedientClassK:  math.NaN(),
			CheaterClassK:   math.NaN(),
		}
		for _, g := range out.Groups {
			ck, _ := g.Result.Class(cfg.K)
			switch g.Group.Name {
			case "obedient":
				row.ObedientClassK = ck.DownloadPerFile()
			case "cheater":
				row.CheaterClassK = ck.DownloadPerFile()
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Table renders the fluid cheating sweep.
func (r *CheatingResult) Table() *table.Table {
	tb := table.New(
		fmt.Sprintf("Fluid cheating sweep (p=%.1f, obedient ρ=%.1f, cheaters ρ=1)",
			r.P, r.ObedientRho),
		"cheater fraction", "system avg online/file",
		fmt.Sprintf("obedient class-%d dl/file", r.Config.K),
		fmt.Sprintf("cheater class-%d dl/file", r.Config.K))
	for _, row := range r.Rows {
		fmtOrDash := func(v float64) string {
			if math.IsNaN(v) {
				return "-"
			}
			return table.Fmt(v)
		}
		tb.MustAddRow(fmt.Sprintf("%.2f", row.CheaterFraction),
			table.Fmt(row.SystemAvg),
			fmtOrDash(row.ObedientClassK), fmtOrDash(row.CheaterClassK))
	}
	return tb
}
