package experiments

import (
	"context"
	"strings"
	"testing"
)

// churnSettings is a fast operating point with enough completions for the
// fluid comparison to be meaningful.
func churnSettings() SimSettings {
	s := DefaultSimSettings
	s.Horizon = 2500
	s.Warmup = 500
	return s
}

func TestChurnSweepAbortAxis(t *testing.T) {
	// Mild churn (θ·T ≈ 0.03–0.3 across schemes): the memoryless-service
	// drift of the fluid θ-extension stays inside finite-size noise here;
	// see the ChurnSweep doc comment.
	res, err := ChurnSweep(context.Background(), churnSettings(), 1, 42,
		[]float64{0, 0.005}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 { // {MTSD, MTCD, CMFSD} × {0, 0.005}
		t.Fatalf("rows = %d", len(res.Rows))
	}
	byScheme := map[string][2]ChurnRow{}
	for _, row := range res.Rows {
		if row.Completed < 100 {
			t.Fatalf("%s θ=%v: only %d completions", row.Scheme, row.Theta, row.Completed)
		}
		if row.Theta == 0 && row.Aborted != 0 {
			t.Fatalf("%s θ=0: %d aborted users", row.Scheme, row.Aborted)
		}
		if row.Theta > 0 && row.Aborted == 0 {
			t.Fatalf("%s θ=%v: no aborted users", row.Scheme, row.Theta)
		}
		if row.RelErr > 0.25 {
			t.Fatalf("%s θ=%v: fluid %v vs sim %v (err %.1f%%)",
				row.Scheme, row.Theta, row.Fluid, row.Simulated, 100*row.RelErr)
		}
		pair := byScheme[row.Scheme]
		if row.Theta == 0 {
			pair[0] = row
		} else {
			pair[1] = row
		}
		byScheme[row.Scheme] = pair
	}
	for sc, pair := range byScheme {
		// Churn truncates residences: the fluid prediction must fall, and
		// the simulation must lose completions to aborts.
		if pair[1].Fluid >= pair[0].Fluid {
			t.Fatalf("%s: fluid did not fall with θ: %v -> %v", sc, pair[0].Fluid, pair[1].Fluid)
		}
		if pair[1].Completed >= pair[0].Completed {
			t.Fatalf("%s: completions did not fall with θ: %d -> %d", sc, pair[0].Completed, pair[1].Completed)
		}
	}
	out := res.Table().String()
	if !strings.Contains(out, "MTSD") || !strings.Contains(out, "aborted") {
		t.Fatalf("table incomplete:\n%s", out)
	}
}

func TestChurnSweepSeedQuitAxis(t *testing.T) {
	res, err := ChurnSweep(context.Background(), churnSettings(), 1, 42,
		nil, []float64{0.05})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.QuitRows) != 1 {
		t.Fatalf("quit rows = %d", len(res.QuitRows))
	}
	row := res.QuitRows[0]
	if row.SeedQuits == 0 {
		t.Fatalf("quit rate %v: no seed quits", row.QuitRate)
	}
	if row.Completed < 100 {
		t.Fatalf("only %d completions", row.Completed)
	}
	// Departing virtual seeds withdraw upload capacity: the swarm cannot be
	// faster than the quit-free ideal.
	if row.Simulated < row.Ideal*0.95 {
		t.Fatalf("quitting seeds sped up the swarm: ideal %v, simulated %v",
			row.Ideal, row.Simulated)
	}
	if !strings.Contains(res.QuitTable().String(), "seed quits") {
		t.Fatalf("quit table incomplete:\n%s", res.QuitTable().String())
	}
}

// TestChurnSweepDeterministic is the chaos-golden check: the same chaos
// seed must yield byte-identical tables at any worker count.
func TestChurnSweepDeterministic(t *testing.T) {
	render := func(workers int) string {
		set := churnSettings()
		set.Horizon = 1200
		set.Warmup = 300
		set.Replicas = 3
		set.Workers = workers
		res, err := ChurnSweep(context.Background(), set, 1, 7,
			[]float64{0, 0.03}, []float64{0.05})
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		for _, tb := range res.Tables() {
			sb.WriteString(tb.String())
		}
		return sb.String()
	}
	serial := render(1)
	pooled := render(8)
	if serial != pooled {
		t.Fatalf("churn tables differ across worker counts:\n-- workers=1 --\n%s\n-- workers=8 --\n%s", serial, pooled)
	}
}
