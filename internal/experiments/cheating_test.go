package experiments

import (
	"math"
	"strings"
	"testing"
)

func TestCheatingSweepShape(t *testing.T) {
	res, err := CheatingSweep(PaperConfig, 0.9, 0, []float64{0, 0.5, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// System average degrades monotonically with cheating.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].SystemAvg < res.Rows[i-1].SystemAvg-1e-6 {
			t.Fatalf("system average not monotone at fraction %v", res.Rows[i].CheaterFraction)
		}
	}
	// All-obedient and all-cheater endpoints: no opposing group column.
	if !math.IsNaN(res.Rows[0].CheaterClassK) {
		t.Fatal("cheater column should be empty at fraction 0")
	}
	if !math.IsNaN(res.Rows[2].ObedientClassK) {
		t.Fatal("obedient column should be empty at fraction 1")
	}
	// At fraction 0.5 cheaters beat obedient peers individually.
	mid := res.Rows[1]
	if !(mid.CheaterClassK < mid.ObedientClassK) {
		t.Fatalf("cheaters (%v) should beat obedient (%v)", mid.CheaterClassK, mid.ObedientClassK)
	}
	// All-cheater system equals the MFCD value 97.78 (p=0.9 closed form).
	if math.Abs(res.Rows[2].SystemAvg-97.78) > 0.5 {
		t.Fatalf("all-cheater avg %v, want ≈97.78", res.Rows[2].SystemAvg)
	}
	out := res.Table().String()
	if !strings.Contains(out, "cheater fraction") || !strings.Contains(out, "-") {
		t.Fatalf("table wrong:\n%s", out)
	}
}

func TestCheatingSweepRejectsBadConfig(t *testing.T) {
	bad := PaperConfig
	bad.K = 0
	if _, err := CheatingSweep(bad, 0.9, 0, []float64{0}); err == nil {
		t.Fatal("bad config accepted")
	}
}
