package experiments

import (
	"context"
	"fmt"
	"math"

	"mfdl/internal/adapt"
	"mfdl/internal/eventsim"
	"mfdl/internal/fluid"
	"mfdl/internal/obs"
	"mfdl/internal/replica"
	"mfdl/internal/runner"
	"mfdl/internal/scheme"
	"mfdl/internal/sim"
	"mfdl/internal/stats"
	"mfdl/internal/swarm"
	"mfdl/internal/table"
)

// SimSettings controls the simulator-based experiments. The default uses a
// time-rescaled parameter set (μ and γ ×10 relative to the paper) so swarm
// populations stay small; all fluid predictions rescale exactly.
type SimSettings struct {
	Params  fluid.Params
	K       int
	Lambda0 float64
	Horizon float64
	Warmup  float64
	// Options is the shared execution-option surface: Seed anchors the
	// replica seed derivation, Replicas is the number of independently
	// seeded simulation replicas behind every table row (0 or 1 runs a
	// single replica, reproducing the unreplicated tables byte-for-byte;
	// R > 1 reports every simulated metric as mean ± 95% CI), Workers
	// bounds the fan-out pool (0 = all cores; output is byte-identical at
	// any count), and Obs instruments the replica engine and the runner
	// pool beneath it (byte-identical with or without).
	Options
	// Seed is the pre-Options spelling of Options.Seed.
	//
	// Deprecated: set Options.Seed. A non-zero value here still wins.
	Seed uint64
	// Replicas is the pre-Options spelling of Options.Replicas.
	//
	// Deprecated: set Options.Replicas. A non-zero value here still wins.
	Replicas int
	// Workers is the pre-Options spelling of Options.Workers.
	//
	// Deprecated: set Options.Workers. A non-zero value here still wins.
	Workers int
	// Obs is the pre-Options spelling of Options.Obs.
	//
	// Deprecated: set Options.Obs. A non-nil value here still wins.
	Obs *obs.Registry
}

// DefaultSimSettings is the fast validation operating point.
var DefaultSimSettings = SimSettings{
	Params:  fluid.Params{Mu: 0.2, Eta: 0.5, Gamma: 0.5},
	K:       10,
	Lambda0: 1,
	Horizon: 4000,
	Warmup:  800,
	Seed:    1,
}

// effSeed, effReplicas, effWorkers and effObs merge the deprecated
// pass-through fields with the embedded Options (deprecated wins when
// set), so both spellings keep producing byte-identical tables.
func (s SimSettings) effSeed() uint64 {
	if s.Seed != 0 {
		return s.Seed
	}
	return s.Options.Seed
}

func (s SimSettings) effReplicas() int {
	if s.Replicas != 0 {
		return s.Replicas
	}
	return s.Options.Replicas
}

func (s SimSettings) effWorkers() int {
	if s.Workers != 0 {
		return s.Workers
	}
	return s.Options.Workers
}

func (s SimSettings) effObs() *obs.Registry {
	if s.Obs != nil {
		return s.Obs
	}
	return s.Options.Obs
}

// replicated reports whether the settings ask for error bars.
func (s SimSettings) replicated() bool { return s.effReplicas() > 1 }

// options assembles the replica-engine options for these settings.
func (s SimSettings) options() replica.Options {
	return replica.Options{
		Replicas: s.effReplicas(), Workers: s.effWorkers(),
		Seed: s.effSeed(), Obs: s.effObs(),
	}
}

// stopping assembles the sequential-stopping rule for these settings;
// metric is the experiment's headline metric, overridden by CIMetric.
func (s SimSettings) stopping(metric string) replica.Stopping {
	if s.Options.CIMetric != "" {
		metric = s.Options.CIMetric
	}
	return replica.Stopping{
		Metric: metric, Target: s.Options.CITarget,
		MaxReplicas: s.Options.ReplicasMax,
	}
}

// runSimJob executes a sim-replica job for these settings through the job
// layer — the same execution path a fabric coordinator drives — so an
// attached sample store (Options.Samples) is shared between local and
// distributed runs: a re-run with more replicas replays every stored
// sample. With CITarget set the replica counts grow per cell under the
// sequential-stopping rule; otherwise the spec's fixed count runs,
// numerically identical to the pre-job-layer replica.Run over the same
// cells.
func (s SimSettings) runSimJob(ctx context.Context, spec runner.JobSpec, metric string) ([]replica.Agg, error) {
	env := runner.JobEnv{Samples: s.Options.Samples, Obs: s.effObs()}
	if stop := s.stopping(metric); stop.Enabled() {
		return sim.RunJobStopping(ctx, spec, env, s.effWorkers(), stop)
	}
	return sim.RunJob(ctx, spec, env, runner.Options{Workers: s.effWorkers(), Obs: s.effObs()})
}

// ciCell formats a ± cell with table.Fmt precision.
func ciCell(ci float64) string { return "±" + table.Fmt(ci) }

// SimValidateRow compares one scheme's simulated and fluid-predicted
// average online time per file.
type SimValidateRow struct {
	Scheme string
	P      float64
	Rho    float64 // CMFSD only; NaN otherwise
	Fluid  float64
	// Simulated is the across-replica mean of the average online time per
	// file (the single run's value when Replicas <= 1).
	Simulated float64
	// SimCI95 is the half-width of the 95% confidence interval of
	// Simulated (0 when Replicas <= 1).
	SimCI95 float64
	RelErr  float64
	// Completed counts completed users summed over all replicas.
	Completed int
}

// SimValidateResult is the E9 experiment output.
type SimValidateResult struct {
	Settings SimSettings
	Rows     []SimValidateRow
}

// simValidateSpec is one planned row: a scheme/ρ setting at one
// correlation, with its fluid prediction attached.
type simValidateSpec struct {
	scheme    string
	p, rho    float64 // rho is NaN for the non-CMFSD schemes
	fluid     float64
	simScheme scheme.SimScheme
}

// SimValidatePlan is the job-layer decomposition of SimValidate: the
// sim-replica JobSpec whose grid cells are the table rows, plus the fluid
// predictions needed to fold the simulated aggregates back into the
// result. A fabric coordinator can serve Spec to remote workers, reduce
// the collected payloads with sim.ReduceJob, and hand the aggregates to
// Result — rendering the same table a local SimValidate produces.
type SimValidatePlan struct {
	// Spec is the runnable sim-replica job, one grid cell per table row.
	Spec  runner.JobSpec
	set   SimSettings
	specs []simValidateSpec
}

// PlanSimValidate solves the fluid predictions (cheap, memoized) and
// lowers the simulation matrix — every scheme at every correlation in ps —
// into a sim-replica JobSpec. ps must be non-empty.
func PlanSimValidate(set SimSettings, ps []float64) (*SimValidatePlan, error) {
	cache := runner.NewCache()
	predict := func(sc scheme.Scheme, p, rho float64) (float64, error) {
		r, err := cache.Evaluate(runner.Key{
			Scheme: sc, Params: set.Params,
			K: set.K, P: p, Lambda0: set.Lambda0, Rho: rho,
		})
		if err != nil {
			return 0, err
		}
		return r.AvgOnlinePerFile(), nil
	}
	var specs []simValidateSpec
	for _, p := range ps {
		plan := []struct {
			scheme    scheme.Scheme
			rho       float64
			simScheme scheme.SimScheme
		}{
			{scheme.MTSD, math.NaN(), scheme.SimMTSD},
			{scheme.MTCD, math.NaN(), scheme.SimMTCD},
			// In the fluid model MFCD coincides with MTCD (Section 3.4).
			{scheme.MTCD, math.NaN(), scheme.SimMFCD},
			{scheme.CMFSD, 0, scheme.SimCMFSD},
			{scheme.CMFSD, 0.5, scheme.SimCMFSD},
			{scheme.CMFSD, 1, scheme.SimCMFSD},
		}
		for _, pl := range plan {
			rho := pl.rho
			if math.IsNaN(rho) {
				rho = 0
			}
			fluidVal, err := predict(pl.scheme, p, rho)
			if err != nil {
				return nil, err
			}
			specs = append(specs, simValidateSpec{
				scheme: pl.simScheme.String(), p: p, rho: pl.rho,
				fluid: fluidVal, simScheme: pl.simScheme,
			})
		}
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("experiments: SimValidate needs at least one correlation")
	}
	cells := make([]sim.JobCell, len(specs))
	for i, sp := range specs {
		sc := eventsim.Config{
			Params: set.Params, K: set.K, Lambda0: set.Lambda0, P: sp.p,
			Horizon: set.Horizon, Warmup: set.Warmup,
		}
		if !math.IsNaN(sp.rho) {
			sc.Rho = sp.rho
		}
		cells[i] = sim.JobCell{Scheme: sp.simScheme, Config: sim.Config{Flow: &sc}}
	}
	spec, err := sim.NewJobSpec(cells, set.effSeed(), set.effReplicas())
	if err != nil {
		return nil, err
	}
	return &SimValidatePlan{Spec: spec, set: set, specs: specs}, nil
}

// Result folds the per-cell aggregates — computed locally or reduced from
// a coordinator's payloads — into the experiment result.
func (pl *SimValidatePlan) Result(aggs []replica.Agg) (*SimValidateResult, error) {
	if len(aggs) != len(pl.specs) {
		return nil, fmt.Errorf("experiments: SimValidate has %d aggregates, want %d", len(aggs), len(pl.specs))
	}
	res := &SimValidateResult{Settings: pl.set}
	for i, agg := range aggs {
		sp := pl.specs[i]
		simulated := agg.Mean(replica.OnlinePerFile)
		res.Rows = append(res.Rows, SimValidateRow{
			Scheme: sp.scheme, P: sp.p, Rho: sp.rho,
			Fluid:     sp.fluid,
			Simulated: simulated,
			SimCI95:   agg.CI95(replica.OnlinePerFile),
			RelErr:    stats.RelErr(simulated, sp.fluid, 1),
			Completed: int(agg.Count(replica.Completed)),
		})
	}
	return res, nil
}

// SimValidate runs the flow-level simulator for every scheme and compares
// the measured average online time per file against the fluid prediction
// (experiment E9 in DESIGN.md). The fluid predictions are memoized solves;
// the simulations — the expensive part — run as a sim-replica job:
// R = max(1, Settings.Replicas) independently seeded replicas per row, all
// rows and replicas sharing one worker pool, with Options.Samples and
// Options.CITarget honoured (see runSimJob). The result table is identical
// at every worker count; with R = 1 it is identical to the unreplicated
// tables this function produced before the replica engine existed.
// Canceling ctx aborts the remaining simulations.
func SimValidate(ctx context.Context, set SimSettings, ps []float64) (*SimValidateResult, error) {
	if len(ps) == 0 {
		return &SimValidateResult{Settings: set}, nil
	}
	plan, err := PlanSimValidate(set, ps)
	if err != nil {
		return nil, err
	}
	aggs, err := set.runSimJob(ctx, plan.Spec, replica.OnlinePerFile)
	if err != nil {
		return nil, err
	}
	return plan.Result(aggs)
}

// Table renders the fluid-vs-simulation comparison. With more than one
// replica a ±95% column follows the simulated mean.
func (r *SimValidateResult) Table() *table.Table {
	cols := []string{"scheme", "p", "rho", "fluid", "simulated", "rel err", "completed"}
	if r.Settings.replicated() {
		cols = []string{"scheme", "p", "rho", "fluid", "simulated", "±95%", "rel err", "completed"}
	}
	tb := table.New("Fluid model vs flow-level simulation: average online time per file", cols...)
	for _, row := range r.Rows {
		rho := "-"
		if !math.IsNaN(row.Rho) {
			rho = fmt.Sprintf("%.1f", row.Rho)
		}
		cells := []string{row.Scheme, fmt.Sprintf("%.2f", row.P), rho,
			table.Fmt(row.Fluid), table.Fmt(row.Simulated)}
		if r.Settings.replicated() {
			cells = append(cells, ciCell(row.SimCI95))
		}
		cells = append(cells, fmt.Sprintf("%.1f%%", 100*row.RelErr), fmt.Sprintf("%d", row.Completed))
		tb.MustAddRow(cells...)
	}
	return tb
}

// AdaptRow is one cheater-fraction setting of the Adapt sweep.
type AdaptRow struct {
	CheaterFraction float64
	// MeanFinalRho is the across-replica mean of the per-run mean final ρ;
	// RhoCI95 its 95% confidence half-width (0 when Replicas <= 1).
	MeanFinalRho float64
	RhoCI95      float64
	// AvgOnline is the across-replica mean online time per file, with
	// OnlineCI95 its confidence half-width.
	AvgOnline  float64
	OnlineCI95 float64
	Completed  int
}

// AdaptSweepResult is the E8 experiment output.
type AdaptSweepResult struct {
	Settings SimSettings
	P        float64
	Adapt    adapt.Config
	Rows     []AdaptRow
}

// AdaptSweep evaluates the Adapt mechanism (the paper's future-work item)
// under increasing cheater fractions: obedient peers should converge to
// small ρ in a healthy swarm and drift toward ρ = 1 (MFCD behaviour) as
// cheating spreads. Every fraction runs R replicas on the replica engine.
func AdaptSweep(ctx context.Context, set SimSettings, p float64, ac adapt.Config, cheaterFractions []float64) (*AdaptSweepResult, error) {
	res := &AdaptSweepResult{Settings: set, P: p, Adapt: ac}
	if len(cheaterFractions) == 0 {
		return res, nil
	}
	sims := make([]replica.Sim, len(cheaterFractions))
	for i, frac := range cheaterFractions {
		s, err := sim.New(scheme.SimCMFSD, sim.Config{Flow: &eventsim.Config{
			Params: set.Params, K: set.K, Lambda0: set.Lambda0, P: p,
			Adapt: &ac, CheaterFraction: frac,
			Horizon: set.Horizon, Warmup: set.Warmup,
		}})
		if err != nil {
			return nil, err
		}
		sims[i] = s
	}
	aggs, err := replica.Run(ctx, len(cheaterFractions), func(cell int) replica.Sim {
		return sims[cell]
	}, set.options())
	if err != nil {
		return nil, err
	}
	for i, agg := range aggs {
		res.Rows = append(res.Rows, AdaptRow{
			CheaterFraction: cheaterFractions[i],
			MeanFinalRho:    agg.Mean(replica.FinalRho),
			RhoCI95:         agg.CI95(replica.FinalRho),
			AvgOnline:       agg.Mean(replica.OnlinePerFile),
			OnlineCI95:      agg.CI95(replica.OnlinePerFile),
			Completed:       int(agg.Count(replica.Completed)),
		})
	}
	return res, nil
}

// Table renders the Adapt sweep; replicated settings add ±95% columns.
func (r *AdaptSweepResult) Table() *table.Table {
	cols := []string{"cheater fraction", "mean final rho", "avg online/file", "completed"}
	if r.Settings.replicated() {
		cols = []string{"cheater fraction", "mean final rho", "±95%", "avg online/file", "±95%", "completed"}
	}
	tb := table.New(
		fmt.Sprintf("Adapt mechanism under cheating (p=%.1f, φ=[%.3f,%.3f], υ=[%.2f,%.2f])",
			r.P, r.Adapt.Lower, r.Adapt.Upper, r.Adapt.StepUp, r.Adapt.StepDown),
		cols...)
	for _, row := range r.Rows {
		cells := []string{fmt.Sprintf("%.2f", row.CheaterFraction),
			fmt.Sprintf("%.3f", row.MeanFinalRho)}
		if r.Settings.replicated() {
			cells = append(cells, fmt.Sprintf("±%.3f", row.RhoCI95))
		}
		cells = append(cells, table.Fmt(row.AvgOnline))
		if r.Settings.replicated() {
			cells = append(cells, ciCell(row.OnlineCI95))
		}
		cells = append(cells, fmt.Sprintf("%d", row.Completed))
		tb.MustAddRow(cells...)
	}
	return tb
}

// SwarmRow is one scheme/ρ setting of the chunk-level comparison.
type SwarmRow struct {
	Scheme string
	Rho    float64
	// OnlinePerFile is the across-replica mean of online rounds per file;
	// OnlineCI95 its 95% confidence half-width (0 when replicas <= 1).
	OnlinePerFile float64
	OnlineCI95    float64
	Completed     int
}

// SwarmCompareResult is the chunk-level MFCD-vs-CMFSD comparison.
type SwarmCompareResult struct {
	Config   swarm.Config
	Replicas int
	Rows     []SwarmRow
}

// SwarmCompare runs the chunk-level simulator for MFCD, MTSD and CMFSD
// over a ρ grid with otherwise identical parameters — the mechanism-level
// replay of Figure 4(a)'s ordering plus the multi-torrent sequential
// behaviour embedded in one swarm. Every row runs max(1, replicas)
// independently seeded replicas; rows and replicas fan out over one
// worker pool, the base config's seed anchors the seed derivation, and
// the table is byte-identical at any worker count (and, with one replica,
// to the pre-replica-engine serial sweep). Canceling ctx aborts the
// remaining runs. ob, when non-nil, instruments the replica fan-out
// (results are byte-identical with or without it).
func SwarmCompare(ctx context.Context, base swarm.Config, rhos []float64, replicas int, ob *obs.Registry) (*SwarmCompareResult, error) {
	res := &SwarmCompareResult{Config: base, Replicas: replicas}
	type rowSpec struct {
		scheme scheme.SimScheme
		rho    float64 // NaN for the schemes that ignore ρ
	}
	specs := []rowSpec{
		{scheme.SimMFCD, math.NaN()},
		{scheme.SimMTSD, math.NaN()},
	}
	for _, rho := range rhos {
		specs = append(specs, rowSpec{scheme.SimCMFSD, rho})
	}
	sims := make([]replica.Sim, len(specs))
	for i, sp := range specs {
		c := base
		if !math.IsNaN(sp.rho) {
			c.Rho = sp.rho
		}
		s, err := sim.New(sp.scheme, sim.Config{Chunk: &c})
		if err != nil {
			return nil, err
		}
		sims[i] = s
	}
	aggs, err := replica.Run(ctx, len(specs), func(cell int) replica.Sim {
		return sims[cell]
	}, replica.Options{Replicas: replicas, Seed: base.Seed, Obs: ob})
	if err != nil {
		return nil, err
	}
	for i, agg := range aggs {
		sp := specs[i]
		res.Rows = append(res.Rows, SwarmRow{
			Scheme: sp.scheme.String(), Rho: sp.rho,
			OnlinePerFile: agg.Mean(replica.OnlinePerFile),
			OnlineCI95:    agg.CI95(replica.OnlinePerFile),
			Completed:     int(agg.Count(replica.Completed)),
		})
	}
	return res, nil
}

// Table renders the chunk-level comparison; with more than one replica a
// ±95% column follows the online-rounds mean.
func (r *SwarmCompareResult) Table() *table.Table {
	cols := []string{"scheme", "rho", "online rounds/file", "completed"}
	if r.Replicas > 1 {
		cols = []string{"scheme", "rho", "online rounds/file", "±95%", "completed"}
	}
	tb := table.New(
		fmt.Sprintf("Chunk-level swarm: online rounds per file (K=%d, %d chunks/file, p=%.1f, η=%.2f)",
			r.Config.K, r.Config.ChunksPerFile, r.Config.P, r.Config.TFTEfficiency),
		cols...)
	for _, row := range r.Rows {
		rho := "-"
		if !math.IsNaN(row.Rho) {
			rho = fmt.Sprintf("%.1f", row.Rho)
		}
		cells := []string{row.Scheme, rho, table.Fmt(row.OnlinePerFile)}
		if r.Replicas > 1 {
			cells = append(cells, ciCell(row.OnlineCI95))
		}
		cells = append(cells, fmt.Sprintf("%d", row.Completed))
		tb.MustAddRow(cells...)
	}
	return tb
}
