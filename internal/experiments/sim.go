package experiments

import (
	"context"
	"fmt"
	"math"

	"mfdl/internal/adapt"
	"mfdl/internal/eventsim"
	"mfdl/internal/fluid"
	"mfdl/internal/rng"
	"mfdl/internal/runner"
	"mfdl/internal/scheme"
	"mfdl/internal/stats"
	"mfdl/internal/swarm"
	"mfdl/internal/table"
)

// SimSettings controls the simulator-based experiments. The default uses a
// time-rescaled parameter set (μ and γ ×10 relative to the paper) so swarm
// populations stay small; all fluid predictions rescale exactly.
type SimSettings struct {
	Params  fluid.Params
	K       int
	Lambda0 float64
	Horizon float64
	Warmup  float64
	Seed    uint64
}

// DefaultSimSettings is the fast validation operating point.
var DefaultSimSettings = SimSettings{
	Params:  fluid.Params{Mu: 0.2, Eta: 0.5, Gamma: 0.5},
	K:       10,
	Lambda0: 1,
	Horizon: 4000,
	Warmup:  800,
	Seed:    1,
}

// SimValidateRow compares one scheme's simulated and fluid-predicted
// average online time per file.
type SimValidateRow struct {
	Scheme    string
	P         float64
	Rho       float64 // CMFSD only; NaN otherwise
	Fluid     float64
	Simulated float64
	RelErr    float64
	Completed int
}

// SimValidateResult is the E9 experiment output.
type SimValidateResult struct {
	Settings SimSettings
	Rows     []SimValidateRow
}

// simValidateSpec is one planned row: a scheme/ρ setting at one
// correlation, with its fluid prediction attached.
type simValidateSpec struct {
	scheme    string
	p, rho    float64 // rho is NaN for the non-CMFSD schemes
	fluid     float64
	simScheme eventsim.Scheme
}

// SimValidate runs the flow-level simulator for every scheme and compares
// the measured average online time per file against the fluid prediction
// (experiment E9 in DESIGN.md). The fluid predictions are memoized solves;
// the simulation runs — the expensive part — fan out over all cores. Each
// run keeps its own fixed seed, so the result table is identical at every
// worker count.
func SimValidate(set SimSettings, ps []float64) (*SimValidateResult, error) {
	res := &SimValidateResult{Settings: set}
	cache := runner.NewCache()
	predict := func(sc scheme.Scheme, p, rho float64) (float64, error) {
		r, err := cache.Evaluate(runner.Key{
			Scheme: sc, Params: set.Params,
			K: set.K, P: p, Lambda0: set.Lambda0, Rho: rho,
		})
		if err != nil {
			return 0, err
		}
		return r.AvgOnlinePerFile(), nil
	}
	var specs []simValidateSpec
	for _, p := range ps {
		plan := []struct {
			scheme    scheme.Scheme
			rho       float64
			simScheme eventsim.Scheme
		}{
			{scheme.MTSD, math.NaN(), eventsim.MTSD},
			{scheme.MTCD, math.NaN(), eventsim.MTCD},
			// In the fluid model MFCD coincides with MTCD (Section 3.4).
			{scheme.MTCD, math.NaN(), eventsim.MFCD},
			{scheme.CMFSD, 0, eventsim.CMFSD},
			{scheme.CMFSD, 0.5, eventsim.CMFSD},
			{scheme.CMFSD, 1, eventsim.CMFSD},
		}
		for _, pl := range plan {
			rho := pl.rho
			if math.IsNaN(rho) {
				rho = 0
			}
			fluidVal, err := predict(pl.scheme, p, rho)
			if err != nil {
				return nil, err
			}
			specs = append(specs, simValidateSpec{
				scheme: pl.simScheme.String(), p: p, rho: pl.rho,
				fluid: fluidVal, simScheme: pl.simScheme,
			})
		}
	}
	if len(specs) == 0 {
		return res, nil
	}
	grid, err := runner.Indexed("row", len(specs))
	if err != nil {
		return nil, err
	}
	rows, err := runner.Run(context.Background(), grid,
		func(_ context.Context, pt runner.Point, _ *rng.Source) (SimValidateRow, error) {
			sp := specs[pt.Index]
			sc := eventsim.Config{
				Params: set.Params, K: set.K, Lambda0: set.Lambda0, P: sp.p,
				Scheme: sp.simScheme, Rho: sp.rho,
				Horizon: set.Horizon, Warmup: set.Warmup, Seed: set.Seed,
			}
			if math.IsNaN(sp.rho) {
				sc.Rho = 0
			}
			out, err := eventsim.Run(sc)
			if err != nil {
				return SimValidateRow{}, err
			}
			return SimValidateRow{
				Scheme: sp.scheme, P: sp.p, Rho: sp.rho,
				Fluid:     sp.fluid,
				Simulated: out.AvgOnlinePerFile,
				RelErr:    stats.RelErr(out.AvgOnlinePerFile, sp.fluid, 1),
				Completed: out.CompletedUsers,
			}, nil
		}, runner.Options{Seed: set.Seed})
	if err != nil {
		return nil, err
	}
	res.Rows = rows
	return res, nil
}

// Table renders the fluid-vs-simulation comparison.
func (r *SimValidateResult) Table() *table.Table {
	tb := table.New("Fluid model vs flow-level simulation: average online time per file",
		"scheme", "p", "rho", "fluid", "simulated", "rel err", "completed")
	for _, row := range r.Rows {
		rho := "-"
		if !math.IsNaN(row.Rho) {
			rho = fmt.Sprintf("%.1f", row.Rho)
		}
		tb.MustAddRow(row.Scheme, fmt.Sprintf("%.2f", row.P), rho,
			table.Fmt(row.Fluid), table.Fmt(row.Simulated),
			fmt.Sprintf("%.1f%%", 100*row.RelErr), fmt.Sprintf("%d", row.Completed))
	}
	return tb
}

// AdaptRow is one cheater-fraction setting of the Adapt sweep.
type AdaptRow struct {
	CheaterFraction float64
	MeanFinalRho    float64
	AvgOnline       float64
	Completed       int
}

// AdaptSweepResult is the E8 experiment output.
type AdaptSweepResult struct {
	Settings SimSettings
	P        float64
	Adapt    adapt.Config
	Rows     []AdaptRow
}

// AdaptSweep evaluates the Adapt mechanism (the paper's future-work item)
// under increasing cheater fractions: obedient peers should converge to
// small ρ in a healthy swarm and drift toward ρ = 1 (MFCD behaviour) as
// cheating spreads.
func AdaptSweep(set SimSettings, p float64, ac adapt.Config, cheaterFractions []float64) (*AdaptSweepResult, error) {
	res := &AdaptSweepResult{Settings: set, P: p, Adapt: ac}
	if len(cheaterFractions) == 0 {
		return res, nil
	}
	grid, err := runner.NewGrid(runner.Dim{Name: "cheaters", Values: cheaterFractions})
	if err != nil {
		return nil, err
	}
	rows, err := runner.Run(context.Background(), grid,
		func(_ context.Context, pt runner.Point, _ *rng.Source) (AdaptRow, error) {
			cf, _ := pt.Value("cheaters")
			cfg := eventsim.Config{
				Params: set.Params, K: set.K, Lambda0: set.Lambda0, P: p,
				Scheme: eventsim.CMFSD, Adapt: &ac, CheaterFraction: cf,
				Horizon: set.Horizon, Warmup: set.Warmup, Seed: set.Seed,
			}
			out, err := eventsim.Run(cfg)
			if err != nil {
				return AdaptRow{}, err
			}
			return AdaptRow{
				CheaterFraction: cf,
				MeanFinalRho:    out.FinalRho.Mean(),
				AvgOnline:       out.AvgOnlinePerFile,
				Completed:       out.CompletedUsers,
			}, nil
		}, runner.Options{Seed: set.Seed})
	if err != nil {
		return nil, err
	}
	res.Rows = rows
	return res, nil
}

// Table renders the Adapt sweep.
func (r *AdaptSweepResult) Table() *table.Table {
	tb := table.New(
		fmt.Sprintf("Adapt mechanism under cheating (p=%.1f, φ=[%.3f,%.3f], υ=[%.2f,%.2f])",
			r.P, r.Adapt.Lower, r.Adapt.Upper, r.Adapt.StepUp, r.Adapt.StepDown),
		"cheater fraction", "mean final rho", "avg online/file", "completed")
	for _, row := range r.Rows {
		tb.MustAddRow(fmt.Sprintf("%.2f", row.CheaterFraction),
			fmt.Sprintf("%.3f", row.MeanFinalRho),
			table.Fmt(row.AvgOnline), fmt.Sprintf("%d", row.Completed))
	}
	return tb
}

// SwarmRow is one scheme/ρ setting of the chunk-level comparison.
type SwarmRow struct {
	Scheme        string
	Rho           float64
	OnlinePerFile float64
	Completed     int
}

// SwarmCompareResult is the chunk-level MFCD-vs-CMFSD comparison.
type SwarmCompareResult struct {
	Config swarm.Config
	Rows   []SwarmRow
}

// SwarmCompare runs the chunk-level simulator for MFCD, MTSD and CMFSD
// over a ρ grid with otherwise identical parameters — the mechanism-level
// replay of Figure 4(a)'s ordering plus the multi-torrent sequential
// behaviour embedded in one swarm. The runs are independent simulations,
// so they fan out over the runner pool; every row keeps the base config's
// seed, so the table is byte-identical to the serial sweep at any worker
// count. Canceling ctx aborts the remaining rows.
func SwarmCompare(ctx context.Context, base swarm.Config, rhos []float64) (*SwarmCompareResult, error) {
	res := &SwarmCompareResult{Config: base}
	type rowSpec struct {
		scheme swarm.Scheme
		rho    float64 // NaN for the schemes that ignore ρ
	}
	specs := []rowSpec{
		{swarm.MFCD, math.NaN()},
		{swarm.MTSD, math.NaN()},
	}
	for _, rho := range rhos {
		specs = append(specs, rowSpec{swarm.CMFSD, rho})
	}
	grid, err := runner.Indexed("row", len(specs))
	if err != nil {
		return nil, err
	}
	rows, err := runner.Run(ctx, grid,
		func(_ context.Context, pt runner.Point, _ *rng.Source) (SwarmRow, error) {
			sp := specs[pt.Index]
			c := base
			c.Scheme = sp.scheme
			if !math.IsNaN(sp.rho) {
				c.Rho = sp.rho
			}
			out, err := swarm.Run(c)
			if err != nil {
				return SwarmRow{}, err
			}
			return SwarmRow{
				Scheme: sp.scheme.String(), Rho: sp.rho,
				OnlinePerFile: out.AvgOnlinePerFile, Completed: out.CompletedUsers,
			}, nil
		}, runner.Options{Seed: base.Seed})
	if err != nil {
		return nil, err
	}
	res.Rows = rows
	return res, nil
}

// Table renders the chunk-level comparison.
func (r *SwarmCompareResult) Table() *table.Table {
	tb := table.New(
		fmt.Sprintf("Chunk-level swarm: online rounds per file (K=%d, %d chunks/file, p=%.1f, η=%.2f)",
			r.Config.K, r.Config.ChunksPerFile, r.Config.P, r.Config.TFTEfficiency),
		"scheme", "rho", "online rounds/file", "completed")
	for _, row := range r.Rows {
		rho := "-"
		if !math.IsNaN(row.Rho) {
			rho = fmt.Sprintf("%.1f", row.Rho)
		}
		tb.MustAddRow(row.Scheme, rho, table.Fmt(row.OnlinePerFile), fmt.Sprintf("%d", row.Completed))
	}
	return tb
}
