package experiments

import (
	"context"
	"fmt"
	"os"
	"path/filepath"

	"mfdl/internal/rng"
	"mfdl/internal/runner"
	"mfdl/internal/table"
)

// Report writes every fluid-model artifact of the reproduction (E1–E7,
// E10, E11, E14, crossover, cheating) into outDir as CSV files, one per
// table, and returns the written file names. It is the "make artifacts"
// entry point: a reviewer can diff the directory against a previous run.
//
// The artifacts are independent, so their tables are generated in
// parallel over the runner pool (sharing cfg.Cache when one is set — the
// figures overlap heavily in the solves they need); the files are then
// written serially in the fixed artifact order so the returned listing
// and the directory contents are deterministic.
func Report(ctx context.Context, cfg Config, outDir string) ([]string, error) {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return nil, err
	}
	type artifact struct {
		name string
		gen  func() (*table.Table, error)
	}
	artifacts := []artifact{
		{"validate", func() (*table.Table, error) {
			r, err := Validate(cfg)
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"fig2", func() (*table.Table, error) {
			r, err := Fig2(cfg, PGrid(0, 1, 20))
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"fig3_p01", func() (*table.Table, error) {
			r, err := Fig3(cfg, 0.1)
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"fig3_p10", func() (*table.Table, error) {
			r, err := Fig3(cfg, 1.0)
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"fig4a", func() (*table.Table, error) {
			r, err := Fig4A(ctx, cfg, PGrid(0.1, 1, 9), PGrid(0, 1, 10))
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"fig4b", func() (*table.Table, error) {
			r, err := Fig4BC(cfg, 0.9, 0.1, 0.9)
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"fig4c", func() (*table.Table, error) {
			r, err := Fig4BC(cfg, 0.1, 0.1, 0.9)
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"crossover", func() (*table.Table, error) {
			r, err := Crossover(cfg)
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"stability", func() (*table.Table, error) {
			_, tb, err := StabilityTable(cfg)
			return tb, err
		}},
		{"eta_ablation", func() (*table.Table, error) {
			r, err := EtaAblation(ctx, cfg, []float64{0.25, 0.5, 0.75, 1.0}, PGrid(0, 1, 20))
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"cheating", func() (*table.Table, error) {
			r, err := CheatingSweep(cfg, 0.9, 0, []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 1})
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"kscaling", func() (*table.Table, error) {
			r, err := KScaling(cfg, 0.9, []int{1, 2, 3, 5, 8, 10, 12, 15, 20})
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
	}
	grid, err := runner.Indexed("artifact", len(artifacts))
	if err != nil {
		return nil, err
	}
	tables, err := runner.Run(ctx, grid,
		func(_ context.Context, pt runner.Point, _ *rng.Source) (*table.Table, error) {
			a := artifacts[pt.Index]
			tb, err := a.gen()
			if err != nil {
				return nil, fmt.Errorf("experiments: report %s: %w", a.name, err)
			}
			return tb, nil
		}, runner.Options{})
	if err != nil {
		return nil, err
	}
	var written []string
	for i, a := range artifacts {
		path := filepath.Join(outDir, a.name+".csv")
		f, err := os.Create(path)
		if err != nil {
			return written, err
		}
		if err := tables[i].WriteCSV(f); err != nil {
			f.Close()
			return written, err
		}
		if err := f.Close(); err != nil {
			return written, err
		}
		written = append(written, path)
	}
	return written, nil
}
