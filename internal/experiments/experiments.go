// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 4) plus the extension studies listed in DESIGN.md:
//
//	Fig2        — average online time per file vs file correlation p,
//	              MTCD vs MTSD (E2)
//	Fig3        — per-class online/download time per file, MTCD vs MTSD,
//	              at p = 0.1 and p = 1.0 (E3)
//	Fig4A       — CMFSD average online time per file over a p × ρ grid (E4)
//	Fig4BC      — per-class times, CMFSD ρ ∈ {0.1, 0.9} vs MFCD, at
//	              p = 0.9 and p = 0.1 (E5/E6)
//	Validate    — K = 1 degeneracy against the Qiu–Srikant closed form (E7)
//	AdaptSweep / AdaptParams — the Adapt mechanism under cheating and its
//	              φ/υ/period parameter probe (E8/E16, the paper's future work)
//	SimValidate — fluid vs flow-level simulation for all schemes (E9)
//	EtaAblation — Fig-2 replay at η ∈ {0.25, 0.5, 0.75, 1.0} (E10)
//	StabilityTable — Jacobian spectral abscissas at the operating points (E11)
//	SwarmCompare — chunk-level scheme comparison (E12)
//	Transient   — flash-crowd trajectory, fluid vs simulation (E13)
//	KScaling    — collaboration gain vs torrent size (E14)
//	Hetero      — multi-class fluid vs heterogeneous simulation (E15)
//	Crossover   — per-class correlation threshold where MTCD stops beating
//	              MTSD
//	CheatingSweep — mixed obedient/cheater fluid populations
//	Report      — every fluid artifact exported as CSV
//
// Every function returns both structured series (for tests and benchmarks)
// and a *table.Table rendering of exactly the rows the paper plots.
package experiments

import (
	"context"
	"fmt"
	"math"

	"mfdl/internal/cmfsd"
	"mfdl/internal/correlation"
	"mfdl/internal/fluid"
	"mfdl/internal/metrics"
	"mfdl/internal/mtcd"
	"mfdl/internal/numeric/rootfind"
	"mfdl/internal/obs"
	"mfdl/internal/rng"
	"mfdl/internal/runner"
	"mfdl/internal/runner/diskcache"
	"mfdl/internal/scheme"
	"mfdl/internal/table"
)

// Options is the execution-option surface shared by the whole experiment
// family. It used to be scattered across Config (cache), SweepSpec
// (workers, obs) and SimSettings (seed, replicas, workers, obs) with one
// spelling per struct; those structs now embed Options, and their old
// fields remain as deprecated pass-throughs — a non-zero deprecated field
// takes precedence over the embedded one, so existing callers keep their
// exact behaviour and tables stay byte-identical.
type Options struct {
	// Cache, when non-nil, memoizes every steady-state solve — across
	// figures, across calls and (when the cache carries a disk tier)
	// across processes. Nil solves directly (or through whatever the
	// concrete experiment wires, e.g. SweepSpec.CacheDir).
	Cache *runner.Cache
	// Obs, when non-nil, instruments the run: the runner pool's cell
	// metrics, the solve cache's counters, the replica engine's
	// histograms. Results are byte-identical with or without it.
	Obs *obs.Registry
	// Seed is the base seed every cell/replica stream is split from.
	Seed uint64
	// Replicas is R, the independently seeded replicas behind every
	// simulated table row; 0 or 1 reproduces unreplicated tables
	// byte-for-byte. Fluid solves ignore it (they are deterministic) but
	// carry it in the job identity.
	Replicas int
	// Workers bounds the worker pool; <= 0 means all cores.
	Workers int
	// Samples, when non-nil, is the keyed replica-sample store the
	// simulator-backed experiments read and write through the job layer:
	// a re-run with a larger Replicas (or a tighter CITarget) replays
	// every stored sample and simulates only the missing ones. Fluid
	// solves ignore it.
	Samples *diskcache.SampleStore
	// CITarget, when > 0, enables sequential stopping for the
	// simulator-backed experiments: each table row's replica count grows
	// (doubling, bounded by ReplicasMax) until the 95% confidence
	// half-width of CIMetric reaches CITarget. Zero keeps the fixed
	// Replicas count.
	CITarget float64
	// CIMetric names the stopping metric (a replica Sample.Values key);
	// empty uses each experiment's headline metric.
	CIMetric string
	// ReplicasMax bounds sequential-stopping growth per row; values below
	// the starting replica count are raised to it.
	ReplicasMax int
}

// Config holds the evaluation setting shared by all experiments.
type Config struct {
	fluid.Params
	// K is the number of files (and torrents/subtorrents).
	K int
	// Lambda0 is the web-server visiting rate λ₀.
	Lambda0 float64
	// Options is the shared execution-option surface; Config consumes its
	// Cache field.
	Options
	// Cache is the pre-Options spelling of Options.Cache.
	//
	// Deprecated: set Options.Cache. A non-nil value here still wins, so
	// existing callers are unaffected.
	Cache *runner.Cache
}

// cache returns the effective solve cache: the deprecated field when set,
// the embedded Options otherwise.
func (c Config) cache() *runner.Cache {
	if c.Cache != nil {
		return c.Cache
	}
	return c.Options.Cache
}

// PaperConfig reproduces the parameters used in every figure of the paper:
// K = 10, μ = 0.02, η = 0.5, γ = 0.05 (λ₀ = 1; all times are λ₀-invariant).
var PaperConfig = Config{Params: fluid.PaperParams, K: 10, Lambda0: 1}

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := c.Params.Validate(); err != nil {
		return err
	}
	if c.K < 1 {
		return fmt.Errorf("experiments: K = %d must be >= 1", c.K)
	}
	if c.Lambda0 <= 0 {
		return fmt.Errorf("experiments: λ₀ = %v must be positive", c.Lambda0)
	}
	return nil
}

func (c Config) corr(p float64) (*correlation.Model, error) {
	return correlation.New(c.K, p, c.Lambda0)
}

// eval solves one scheme at one operating point, through the shared cache
// when the Config carries one.
func (c Config) eval(sc scheme.Scheme, p, rho float64) (*metrics.SchemeResult, error) {
	if cc := c.cache(); cc != nil {
		return cc.Evaluate(runner.Key{
			Scheme: sc, Params: c.Params, K: c.K, P: p, Lambda0: c.Lambda0, Rho: rho,
		})
	}
	corr, err := c.corr(p)
	if err != nil {
		return nil, err
	}
	return scheme.Evaluate(sc, c.Params, corr, scheme.Options{Rho: rho})
}

// PGrid returns n+1 evenly spaced correlation values from lo to hi.
func PGrid(lo, hi float64, n int) []float64 {
	if n < 1 {
		n = 1
	}
	out := make([]float64, n+1)
	for i := 0; i <= n; i++ {
		out[i] = lo + (hi-lo)*float64(i)/float64(n)
	}
	return out
}

// Fig2Point is one x-position of Figure 2.
type Fig2Point struct {
	P          float64
	MTCDOnline float64 // average online time per file under MTCD
	MTSDOnline float64 // same under MTSD (flat in p)
}

// Fig2Result holds the Figure 2 series.
type Fig2Result struct {
	Config Config
	Points []Fig2Point
}

// Fig2 evaluates the MTCD and MTSD average online time per file over the
// given correlation grid (Figure 2 of the paper).
func Fig2(cfg Config, pGrid []float64) (*Fig2Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	res := &Fig2Result{Config: cfg}
	for _, p := range pGrid {
		pt := Fig2Point{P: p}
		if p == 0 {
			// No arrivals: both schemes degenerate to the single-torrent
			// limit.
			st, err := fluid.NewSingleTorrent(cfg.Params, 1)
			if err != nil {
				return nil, err
			}
			t, err := st.OnlineTime()
			if err != nil {
				return nil, err
			}
			pt.MTCDOnline, pt.MTSDOnline = t, t
		} else {
			rc, err := cfg.eval(scheme.MTCD, p, 0)
			if err != nil {
				return nil, fmt.Errorf("experiments: MTCD at p=%v: %w", p, err)
			}
			rs, err := cfg.eval(scheme.MTSD, p, 0)
			if err != nil {
				return nil, fmt.Errorf("experiments: MTSD at p=%v: %w", p, err)
			}
			pt.MTCDOnline = rc.AvgOnlinePerFile()
			pt.MTSDOnline = rs.AvgOnlinePerFile()
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// Table renders the Figure 2 series.
func (r *Fig2Result) Table() *table.Table {
	tb := table.New(
		fmt.Sprintf("Figure 2: average online time per file vs file correlation (K=%d, μ=%g, η=%g, γ=%g)",
			r.Config.K, r.Config.Mu, r.Config.Eta, r.Config.Gamma),
		"p", "MTCD", "MTSD")
	for _, pt := range r.Points {
		tb.MustAddRow(fmt.Sprintf("%.2f", pt.P), table.Fmt(pt.MTCDOnline), table.Fmt(pt.MTSDOnline))
	}
	return tb
}

// Fig3Row is one class of Figure 3 at one correlation value.
type Fig3Row struct {
	Class                      int
	MTCDOnline, MTSDOnline     float64 // online time per file
	MTCDDownload, MTSDDownload float64 // download time per file
}

// Fig3Result holds the per-class series for one correlation value.
type Fig3Result struct {
	Config Config
	P      float64
	Rows   []Fig3Row
}

// Fig3 evaluates the per-class online and download time per file under
// MTCD and MTSD at the given correlation (the paper plots p = 0.1 and 1.0).
func Fig3(cfg Config, p float64) (*Fig3Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rc, err := cfg.eval(scheme.MTCD, p, 0)
	if err != nil {
		return nil, err
	}
	rs, err := cfg.eval(scheme.MTSD, p, 0)
	if err != nil {
		return nil, err
	}
	res := &Fig3Result{Config: cfg, P: p}
	for i := 1; i <= cfg.K; i++ {
		cc, _ := rc.Class(i)
		cs, _ := rs.Class(i)
		res.Rows = append(res.Rows, Fig3Row{
			Class:        i,
			MTCDOnline:   cc.OnlinePerFile(),
			MTSDOnline:   cs.OnlinePerFile(),
			MTCDDownload: cc.DownloadPerFile(),
			MTSDDownload: cs.DownloadPerFile(),
		})
	}
	return res, nil
}

// Table renders the Figure 3 series for this correlation value.
func (r *Fig3Result) Table() *table.Table {
	tb := table.New(
		fmt.Sprintf("Figure 3 (p=%.1f): per-class times per file", r.P),
		"class", "MTCD online", "MTSD online", "MTCD download", "MTSD download")
	for _, row := range r.Rows {
		tb.MustAddRow(fmt.Sprintf("%d", row.Class),
			table.Fmt(row.MTCDOnline), table.Fmt(row.MTSDOnline),
			table.Fmt(row.MTCDDownload), table.Fmt(row.MTSDDownload))
	}
	return tb
}

// Fig4AResult is the p × ρ surface of Figure 4(a).
type Fig4AResult struct {
	Config  Config
	PGrid   []float64
	RhoGrid []float64
	// Online[i][j] is the CMFSD average online time per file at
	// p = PGrid[i], ρ = RhoGrid[j].
	Online [][]float64
}

// Fig4A evaluates the CMFSD average online time per file over the given
// correlation and allocation-ratio grids (Figure 4(a)). The grid cells are
// independent 65-state relaxations, fanned out over all cores by the
// runner engine; canceling ctx aborts the remaining cells promptly.
func Fig4A(ctx context.Context, cfg Config, pGrid, rhoGrid []float64) (*Fig4AResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	res := &Fig4AResult{Config: cfg, PGrid: pGrid, RhoGrid: rhoGrid}
	res.Online = make([][]float64, len(pGrid))
	for i := range res.Online {
		res.Online[i] = make([]float64, len(rhoGrid))
	}
	if len(pGrid) == 0 || len(rhoGrid) == 0 {
		return res, nil
	}
	grid, err := runner.NewGrid(
		runner.Dim{Name: "p", Values: pGrid},
		runner.Dim{Name: "rho", Values: rhoGrid},
	)
	if err != nil {
		return nil, err
	}
	online, err := runner.Run(ctx, grid,
		func(_ context.Context, pt runner.Point, _ *rng.Source) (float64, error) {
			p, _ := pt.Value("p")
			rho, _ := pt.Value("rho")
			r, err := cfg.eval(scheme.CMFSD, p, rho)
			if err != nil {
				return 0, fmt.Errorf("experiments: CMFSD: %w", err)
			}
			return r.AvgOnlinePerFile(), nil
		}, runner.Options{})
	if err != nil {
		return nil, err
	}
	for i := range pGrid {
		copy(res.Online[i], online[i*len(rhoGrid):(i+1)*len(rhoGrid)])
	}
	return res, nil
}

// Table renders the Figure 4(a) surface with one row per p.
func (r *Fig4AResult) Table() *table.Table {
	cols := []string{"p \\ rho"}
	for _, rho := range r.RhoGrid {
		cols = append(cols, fmt.Sprintf("%.2f", rho))
	}
	tb := table.New("Figure 4(a): CMFSD average online time per file", cols...)
	for i, p := range r.PGrid {
		cells := []string{fmt.Sprintf("%.2f", p)}
		for _, v := range r.Online[i] {
			cells = append(cells, table.Fmt(v))
		}
		tb.MustAddRow(cells...)
	}
	return tb
}

// Fig4BCRow is one class of Figure 4(b) or (c).
type Fig4BCRow struct {
	Class int
	// Online and download time per file under CMFSD with the low and
	// high ρ settings, and under the MFCD baseline.
	OnlineLowRho, OnlineHighRho, OnlineMFCD       float64
	DownloadLowRho, DownloadHighRho, DownloadMFCD float64
}

// Fig4BCResult holds one panel of Figure 4(b)/(c).
type Fig4BCResult struct {
	Config          Config
	P               float64
	LowRho, HighRho float64
	Rows            []Fig4BCRow
}

// Fig4BC evaluates the per-class times under CMFSD at two ρ settings and
// under MFCD, at the given correlation (the paper uses ρ ∈ {0.1, 0.9} with
// p = 0.9 for panel (b) and p = 0.1 for panel (c)).
func Fig4BC(cfg Config, p, lowRho, highRho float64) (*Fig4BCResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	low, err := cfg.eval(scheme.CMFSD, p, lowRho)
	if err != nil {
		return nil, err
	}
	high, err := cfg.eval(scheme.CMFSD, p, highRho)
	if err != nil {
		return nil, err
	}
	mfcd, err := cfg.eval(scheme.MFCD, p, 0)
	if err != nil {
		return nil, err
	}
	res := &Fig4BCResult{Config: cfg, P: p, LowRho: lowRho, HighRho: highRho}
	for i := 1; i <= cfg.K; i++ {
		cl, _ := low.Class(i)
		ch, _ := high.Class(i)
		cm, _ := mfcd.Class(i)
		res.Rows = append(res.Rows, Fig4BCRow{
			Class:           i,
			OnlineLowRho:    cl.OnlinePerFile(),
			OnlineHighRho:   ch.OnlinePerFile(),
			OnlineMFCD:      cm.OnlinePerFile(),
			DownloadLowRho:  cl.DownloadPerFile(),
			DownloadHighRho: ch.DownloadPerFile(),
			DownloadMFCD:    cm.DownloadPerFile(),
		})
	}
	return res, nil
}

// Table renders one panel of Figure 4(b)/(c).
func (r *Fig4BCResult) Table() *table.Table {
	tb := table.New(
		fmt.Sprintf("Figure 4 (p=%.1f): per-class times per file, CMFSD ρ=%.1f / ρ=%.1f vs MFCD",
			r.P, r.LowRho, r.HighRho),
		"class",
		fmt.Sprintf("online ρ=%.1f", r.LowRho), fmt.Sprintf("online ρ=%.1f", r.HighRho), "online MFCD",
		fmt.Sprintf("download ρ=%.1f", r.LowRho), fmt.Sprintf("download ρ=%.1f", r.HighRho), "download MFCD")
	for _, row := range r.Rows {
		tb.MustAddRow(fmt.Sprintf("%d", row.Class),
			table.Fmt(row.OnlineLowRho), table.Fmt(row.OnlineHighRho), table.Fmt(row.OnlineMFCD),
			table.Fmt(row.DownloadLowRho), table.Fmt(row.DownloadHighRho), table.Fmt(row.DownloadMFCD))
	}
	return tb
}

// ValidationResult compares the degenerate K = 1 instances of every scheme
// against the Qiu–Srikant closed form (the paper's model-correctness
// argument at the end of Section 3.3).
type ValidationResult struct {
	SingleDownload float64 // closed-form T
	SingleOnline   float64 // closed-form T + 1/γ
	MTCDOnline     float64
	MTSDOnline     float64
	CMFSDOnline    float64
	MaxRelErr      float64
}

// Validate runs the degeneracy check (E7).
func Validate(cfg Config) (*ValidationResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	one := cfg
	one.K = 1
	st, err := fluid.NewSingleTorrent(one.Params, one.Lambda0)
	if err != nil {
		return nil, err
	}
	tDl, err := st.DownloadTime()
	if err != nil {
		return nil, err
	}
	tOn := tDl + 1/one.Gamma
	rc, err := one.eval(scheme.MTCD, 0.8, 0)
	if err != nil {
		return nil, err
	}
	rs, err := one.eval(scheme.MTSD, 0.8, 0)
	if err != nil {
		return nil, err
	}
	rf, err := one.eval(scheme.CMFSD, 0.8, 0.5)
	if err != nil {
		return nil, err
	}
	c1, _ := rc.Class(1)
	s1, _ := rs.Class(1)
	f1, _ := rf.Class(1)
	res := &ValidationResult{
		SingleDownload: tDl,
		SingleOnline:   tOn,
		MTCDOnline:     c1.OnlineTime,
		MTSDOnline:     s1.OnlineTime,
		CMFSDOnline:    f1.OnlineTime,
	}
	for _, v := range []float64{res.MTCDOnline, res.MTSDOnline, res.CMFSDOnline} {
		if e := math.Abs(v-tOn) / tOn; e > res.MaxRelErr {
			res.MaxRelErr = e
		}
	}
	return res, nil
}

// Table renders the degeneracy check.
func (r *ValidationResult) Table() *table.Table {
	tb := table.New("Model validation: K=1 degeneracy vs Qiu–Srikant closed form",
		"quantity", "value")
	tb.MustAddRow("closed-form download time T", table.Fmt(r.SingleDownload))
	tb.MustAddRow("closed-form online time T+1/γ", table.Fmt(r.SingleOnline))
	tb.MustAddRow("MTCD online time (K=1)", table.Fmt(r.MTCDOnline))
	tb.MustAddRow("MTSD online time (K=1)", table.Fmt(r.MTSDOnline))
	tb.MustAddRow("CMFSD online time (K=1)", table.Fmt(r.CMFSDOnline))
	tb.MustAddRow("max relative error", fmt.Sprintf("%.2e", r.MaxRelErr))
	return tb
}

// EtaAblationResult replays Figure 2's MTCD curve for several sharing
// efficiencies η (the paper argues for η = 0.5 against [7]'s η ≈ 1).
type EtaAblationResult struct {
	Config Config
	Etas   []float64
	PGrid  []float64
	// Online[e][i] is the MTCD average online time per file with
	// η = Etas[e] at p = PGrid[i].
	Online [][]float64
}

// EtaAblation runs the η sensitivity study (E10). The η × p grid of MTCD
// solves fans out over the runner pool — each cell is independent — and
// the result is byte-identical to the serial Fig-2 replay it replaces.
func EtaAblation(ctx context.Context, cfg Config, etas, pGrid []float64) (*EtaAblationResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	res := &EtaAblationResult{Config: cfg, Etas: etas, PGrid: pGrid}
	if len(etas) == 0 || len(pGrid) == 0 {
		return res, nil
	}
	grid, err := runner.NewGrid(
		runner.Dim{Name: "eta", Values: etas},
		runner.Dim{Name: "p", Values: pGrid},
	)
	if err != nil {
		return nil, err
	}
	online, err := runner.Run(ctx, grid,
		func(_ context.Context, pt runner.Point, _ *rng.Source) (float64, error) {
			eta, _ := pt.Value("eta")
			p, _ := pt.Value("p")
			c := cfg
			c.Eta = eta
			if p == 0 {
				// No arrivals: the single-torrent limit, as in Fig2.
				st, err := fluid.NewSingleTorrent(c.Params, 1)
				if err != nil {
					return 0, err
				}
				return st.OnlineTime()
			}
			r, err := c.eval(scheme.MTCD, p, 0)
			if err != nil {
				return 0, fmt.Errorf("experiments: η=%v: %w", eta, err)
			}
			return r.AvgOnlinePerFile(), nil
		}, runner.Options{})
	if err != nil {
		return nil, err
	}
	for e := range etas {
		res.Online = append(res.Online, online[e*len(pGrid):(e+1)*len(pGrid)])
	}
	return res, nil
}

// Table renders the η ablation with one row per p.
func (r *EtaAblationResult) Table() *table.Table {
	cols := []string{"p"}
	for _, eta := range r.Etas {
		cols = append(cols, fmt.Sprintf("MTCD η=%.2f", eta))
	}
	tb := table.New("Ablation: MTCD average online time per file vs η", cols...)
	for i, p := range r.PGrid {
		cells := []string{fmt.Sprintf("%.2f", p)}
		for e := range r.Etas {
			cells = append(cells, table.Fmt(r.Online[e][i]))
		}
		tb.MustAddRow(cells...)
	}
	return tb
}

// StabilityRow is the spectral abscissa of one model's fixed point.
type StabilityRow struct {
	Model    string
	Abscissa float64
	Stable   bool
}

// StabilityTable linearizes the MTCD and CMFSD fixed points at the paper's
// operating points and reports the spectral abscissas (E11).
func StabilityTable(cfg Config) ([]StabilityRow, *table.Table, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	var rows []StabilityRow
	add := func(name string, rep *fluid.StabilityReport) {
		rows = append(rows, StabilityRow{Model: name, Abscissa: rep.Abscissa, Stable: rep.Stable})
	}
	for _, p := range []float64{0.1, 0.9} {
		corr, err := cfg.corr(p)
		if err != nil {
			return nil, nil, err
		}
		mc, err := mtcd.New(cfg.Params, corr)
		if err != nil {
			return nil, nil, err
		}
		x, y, err := mc.SteadyStatePopulations()
		if err != nil {
			return nil, nil, err
		}
		state := append(append([]float64{}, x...), y...)
		rep, err := fluid.Stability(mc.NewODE(), state)
		if err != nil {
			return nil, nil, err
		}
		add(fmt.Sprintf("MTCD/MFCD Eq.(1) p=%.1f", p), rep)
		for _, rho := range []float64{0.1, 0.9} {
			mf, err := cmfsd.New(cfg.Params, corr, rho)
			if err != nil {
				return nil, nil, err
			}
			ss, err := mf.SteadyState(fluid.SteadyStateOptions{})
			if err != nil {
				return nil, nil, err
			}
			rep, err := mf.Stability(ss)
			if err != nil {
				return nil, nil, err
			}
			add(fmt.Sprintf("CMFSD Eq.(5) p=%.1f ρ=%.1f", p, rho), rep)
		}
	}
	tb := table.New("Stability: spectral abscissas of the fluid fixed points",
		"model", "abscissa", "stable")
	for _, r := range rows {
		tb.MustAddRow(r.Model, fmt.Sprintf("%.5f", r.Abscissa), fmt.Sprintf("%v", r.Stable))
	}
	return rows, tb, nil
}

// CrossoverResult reports, per class, the correlation threshold p* above
// which MTCD's per-file online time exceeds MTSD's (classes ≥ 2 benefit
// from concurrency only below p*).
type CrossoverResult struct {
	Config Config
	// PStar[i-1] is the threshold for class i; NaN when no crossover
	// exists in (0, 1).
	PStar []float64
}

// Crossover locates the per-class MTCD/MTSD break-even correlation with
// Brent's method on A(p) − T − (1/γ)(1 − 1/i) (E2 follow-up analysis).
func Crossover(cfg Config) (*CrossoverResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	tSingle := (cfg.Gamma - cfg.Mu) / (cfg.Gamma * cfg.Mu * cfg.Eta)
	if !cfg.UploadConstrained() {
		return nil, fluid.ErrNotUploadConstrained
	}
	res := &CrossoverResult{Config: cfg, PStar: make([]float64, cfg.K)}
	for i := 1; i <= cfg.K; i++ {
		gap := (1 / cfg.Gamma) * (1 - 1/float64(i))
		f := func(p float64) float64 {
			corr, err := cfg.corr(p)
			if err != nil {
				return math.NaN()
			}
			m, err := mtcd.New(cfg.Params, corr)
			if err != nil {
				return math.NaN()
			}
			a, err := m.SharedFactor()
			if err != nil {
				return math.NaN()
			}
			return a - tSingle - gap
		}
		lo, hi, ok := rootfind.FindBracket(f, 1e-6, 1, 200)
		if !ok {
			res.PStar[i-1] = math.NaN()
			continue
		}
		p, err := rootfind.Brent(f, lo, hi, 1e-10)
		if err != nil {
			return nil, fmt.Errorf("experiments: crossover class %d: %w", i, err)
		}
		res.PStar[i-1] = p
	}
	return res, nil
}

// Table renders the crossover thresholds.
func (r *CrossoverResult) Table() *table.Table {
	tb := table.New("Crossover: correlation p* above which MTCD is worse than MTSD per class",
		"class", "p*")
	for i, p := range r.PStar {
		cell := "none in (0,1)"
		if !math.IsNaN(p) {
			cell = fmt.Sprintf("%.4f", p)
		}
		tb.MustAddRow(fmt.Sprintf("%d", i+1), cell)
	}
	return tb
}
