package experiments

import (
	"context"
	"testing"
)

// Every experiment must surface configuration errors instead of panicking
// or silently computing nonsense.
func TestExperimentsRejectBadConfig(t *testing.T) {
	bad := PaperConfig
	bad.K = 0
	if _, err := Fig2(bad, PGrid(0, 1, 2)); err == nil {
		t.Fatal("Fig2 accepted K=0")
	}
	if _, err := Fig3(bad, 0.5); err == nil {
		t.Fatal("Fig3 accepted K=0")
	}
	if _, err := Fig4A(context.Background(), bad, []float64{0.5}, []float64{0}); err == nil {
		t.Fatal("Fig4A accepted K=0")
	}
	if _, err := EtaAblation(context.Background(), bad, []float64{0.5}, []float64{0.5}); err == nil {
		t.Fatal("EtaAblation accepted K=0")
	}
	if _, err := Fig4BC(bad, 0.5, 0.1, 0.9); err == nil {
		t.Fatal("Fig4BC accepted K=0")
	}
	if _, err := Validate(bad); err == nil {
		t.Fatal("Validate accepted K=0")
	}
	if _, _, err := StabilityTable(bad); err == nil {
		t.Fatal("StabilityTable accepted K=0")
	}
	if _, err := Crossover(bad); err == nil {
		t.Fatal("Crossover accepted K=0")
	}
	if _, err := CheatingSweep(bad, 0.9, 0, []float64{0}); err == nil {
		t.Fatal("CheatingSweep accepted K=0")
	}
}

func TestExperimentsRejectBadCorrelation(t *testing.T) {
	if _, err := Fig3(PaperConfig, 2); err == nil {
		t.Fatal("Fig3 accepted p=2")
	}
	if _, err := Fig4A(context.Background(), PaperConfig, []float64{2}, []float64{0}); err == nil {
		t.Fatal("Fig4A accepted p=2")
	}
	if _, err := Fig4BC(PaperConfig, 0.5, -1, 0.9); err == nil {
		t.Fatal("Fig4BC accepted ρ=-1")
	}
}

func TestCrossoverRequiresUploadConstraint(t *testing.T) {
	bad := PaperConfig
	bad.Gamma = 0.01 // below μ
	if _, err := Crossover(bad); err == nil {
		t.Fatal("crossover accepted γ<μ")
	}
}
