package experiments

import (
	"context"
	"fmt"
	"math"

	"mfdl/internal/cmfsd"
	"mfdl/internal/eventsim"
	"mfdl/internal/numeric/ode"
	"mfdl/internal/replica"
	"mfdl/internal/scheme"
	"mfdl/internal/table"
	"mfdl/internal/trace"
)

// Transient metric keys (local to this experiment).
const (
	transientRMSDownloaders = "rms_downloaders"
	transientRMSSeeds       = "rms_seeds"
	transientPeakSimT       = "peak_sim_t"
)

// TransientResult compares the fluid Eq. (5) trajectory against the
// flow-level simulation after a flash crowd: FlashCrowd users appear
// at t = 0 in an empty torrent (plus the normal Poisson arrivals), and the
// downloader/seed populations are tracked to steady state. This probes the
// regime fluid models are usually trusted least in — the transient — which
// the paper never examines (experiment E13 in DESIGN.md).
type TransientResult struct {
	Settings   SimSettings
	P, Rho     float64
	FlashCrowd int
	// Fluid and Sim hold "downloaders" and "seeds" series; Sim is the
	// path of the first replica (the one seeded with Settings.Seed).
	Fluid, Sim *trace.Recorder
	// RMSDownloaders and RMSSeeds are root-mean-square gaps between the
	// fluid and simulated population paths, normalized by the flash size
	// and averaged across replicas; the CI95 fields carry their 95%
	// confidence half-widths (0 when Replicas <= 1).
	RMSDownloaders, RMSSeeds         float64
	RMSDownloadersCI95, RMSSeedsCI95 float64
	// PeakFluidT / PeakSimT are when the downloader populations peak
	// (PeakSimT averaged across replicas).
	PeakFluidT, PeakSimT float64
}

// Transient runs the flash-crowd comparison for CMFSD with the given
// correlation and allocation ratio. Settings.Replicas independent
// simulation paths are compared against the one deterministic fluid
// trajectory; their RMS gaps are reported as mean ± 95% CI.
func Transient(ctx context.Context, set SimSettings, p, rho float64, flash int) (*TransientResult, error) {
	cfg := Config{Params: set.Params, K: set.K, Lambda0: set.Lambda0}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	corr, err := cfg.corr(p)
	if err != nil {
		return nil, err
	}
	model, err := cmfsd.New(set.Params, corr, rho)
	if err != nil {
		return nil, err
	}

	// Fluid path: flash crowd enters as class-i first-file downloaders in
	// proportion to the class arrival rates; everything else starts empty.
	state := make([]float64, model.Dim())
	total := corr.TotalUserRate()
	for i := 1; i <= set.K; i++ {
		state[model.XIndex(i, 1)] = float64(flash) * corr.UserRate(i) / total
	}
	sampleEvery := set.Horizon / 200
	samples, err := ode.Trajectory(ode.NewRK4(model.Dim()), model.RHS,
		0, set.Horizon, state, math.Min(0.5, sampleEvery), 1)
	if err != nil {
		return nil, err
	}
	fluidRec := trace.NewRecorder()
	lastT := -math.Inf(1)
	for _, s := range samples {
		if s.T-lastT < sampleEvery && s.T != samples[len(samples)-1].T {
			continue
		}
		lastT = s.T
		dl, seeds := 0.0, 0.0
		for i := 1; i <= set.K; i++ {
			for j := 1; j <= i; j++ {
				dl += s.X[model.XIndex(i, j)]
			}
			seeds += s.X[model.YIndex(i)]
		}
		if err := fluidRec.Record("downloaders", s.T, dl); err != nil {
			return nil, err
		}
		if err := fluidRec.Record("seeds", s.T, seeds); err != nil {
			return nil, err
		}
	}

	// Simulated paths: R independently seeded replicas, each compared
	// against the (fully built, read-only) fluid trajectory. Traces leave
	// the engine out of band, one slot per replica.
	scale := float64(flash)
	if scale < 1 {
		scale = 1
	}
	rCount := set.effReplicas()
	if rCount < 1 {
		rCount = 1
	}
	traces := make([]*trace.Recorder, rCount)
	aggs, err := replica.Run(ctx, 1, func(int) replica.Sim {
		return replica.SimFunc(func(_ context.Context, rep replica.Rep) (replica.Sample, error) {
			sc := eventsim.Config{
				Params: set.Params, K: set.K, Lambda0: set.Lambda0, P: p,
				Scheme: scheme.SimCMFSD, Rho: rho,
				Horizon: set.Horizon, Warmup: 0, Seed: rep.Seed,
				FlashCrowd: flash, SampleEvery: sampleEvery,
			}
			out, err := eventsim.Run(sc)
			if err != nil {
				return replica.Sample{}, err
			}
			traces[rep.Replica] = out.Trace
			dDl, err := trace.RMSDistance(fluidRec.Series("downloaders"), out.Trace.Series("downloaders"), 200)
			if err != nil {
				return replica.Sample{}, err
			}
			dSeeds, err := trace.RMSDistance(fluidRec.Series("seeds"), out.Trace.Series("seeds"), 200)
			if err != nil {
				return replica.Sample{}, err
			}
			peakT, _ := out.Trace.Series("downloaders").Max()
			return replica.Sample{Values: map[string]float64{
				transientRMSDownloaders: dDl / scale,
				transientRMSSeeds:       dSeeds / scale,
				transientPeakSimT:       peakT,
			}}, nil
		})
	}, set.options())
	if err != nil {
		return nil, err
	}
	agg := aggs[0]

	res := &TransientResult{
		Settings: set, P: p, Rho: rho, FlashCrowd: flash,
		Fluid: fluidRec, Sim: traces[0],
		RMSDownloaders:     agg.Mean(transientRMSDownloaders),
		RMSDownloadersCI95: agg.CI95(transientRMSDownloaders),
		RMSSeeds:           agg.Mean(transientRMSSeeds),
		RMSSeedsCI95:       agg.CI95(transientRMSSeeds),
		PeakSimT:           agg.Mean(transientPeakSimT),
	}
	res.PeakFluidT, _ = fluidRec.Series("downloaders").Max()
	return res, nil
}

// Table renders the two paths at a dozen checkpoints. The simulated
// columns show the first replica's path; the RMS row aggregates all
// replicas, with a ±95% row added when there is more than one.
func (r *TransientResult) Table() *table.Table {
	tb := table.New(
		fmt.Sprintf("Flash crowd transient (CMFSD, %d peers at t=0, p=%.1f, ρ=%.1f)",
			r.FlashCrowd, r.P, r.Rho),
		"t", "fluid downloaders", "sim downloaders", "fluid seeds", "sim seeds")
	fd := r.Fluid.Series("downloaders")
	fs := r.Fluid.Series("seeds")
	sd := r.Sim.Series("downloaders")
	ss := r.Sim.Series("seeds")
	horizon := r.Settings.Horizon
	for i := 0; i <= 12; i++ {
		t := horizon * float64(i) / 12
		tb.MustAddRow(fmt.Sprintf("%.0f", t),
			table.Fmt(fd.At(t)), table.Fmt(sd.At(t)),
			table.Fmt(fs.At(t)), table.Fmt(ss.At(t)))
	}
	tb.MustAddRow("RMS/flash", fmt.Sprintf("%.3f", r.RMSDownloaders), "",
		fmt.Sprintf("%.3f", r.RMSSeeds), "")
	if r.Settings.replicated() {
		tb.MustAddRow("±95%", fmt.Sprintf("%.3f", r.RMSDownloadersCI95), "",
			fmt.Sprintf("%.3f", r.RMSSeedsCI95), "")
	}
	return tb
}
