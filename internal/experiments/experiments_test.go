package experiments

import (
	"context"
	"math"
	"strings"
	"testing"
)

func TestConfigValidate(t *testing.T) {
	if err := PaperConfig.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := PaperConfig
	bad.K = 0
	if bad.Validate() == nil {
		t.Fatal("K=0 accepted")
	}
	bad = PaperConfig
	bad.Lambda0 = 0
	if bad.Validate() == nil {
		t.Fatal("λ₀=0 accepted")
	}
}

func TestPGrid(t *testing.T) {
	g := PGrid(0, 1, 4)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	if len(g) != 5 {
		t.Fatalf("grid %v", g)
	}
	for i := range want {
		if math.Abs(g[i]-want[i]) > 1e-12 {
			t.Fatalf("grid %v", g)
		}
	}
	if g := PGrid(0, 1, 0); len(g) != 2 {
		t.Fatalf("degenerate grid %v", g)
	}
}

func TestFig2Shape(t *testing.T) {
	res, err := Fig2(PaperConfig, PGrid(0, 1, 10))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 11 {
		t.Fatalf("points = %d", len(res.Points))
	}
	for i, pt := range res.Points {
		// MTSD is flat at 80 for the paper parameters.
		if math.Abs(pt.MTSDOnline-80) > 1e-9 {
			t.Fatalf("MTSD at p=%v: %v, want 80", pt.P, pt.MTSDOnline)
		}
		// MTCD starts at the MTSD value and grows monotonically to 98.
		if pt.MTCDOnline < 80-1e-9 {
			t.Fatalf("MTCD below MTSD at p=%v", pt.P)
		}
		if i > 0 && pt.MTCDOnline < res.Points[i-1].MTCDOnline-1e-9 {
			t.Fatalf("MTCD not monotone at p=%v", pt.P)
		}
	}
	last := res.Points[len(res.Points)-1]
	if math.Abs(last.MTCDOnline-98) > 1e-6 {
		t.Fatalf("MTCD at p=1: %v, want 98", last.MTCDOnline)
	}
	out := res.Table().String()
	if !strings.Contains(out, "Figure 2") || !strings.Contains(out, "98") {
		t.Fatalf("table rendering wrong:\n%s", out)
	}
}

func TestFig3Shapes(t *testing.T) {
	// p = 1.0: MTCD uniformly worse than MTSD in both metrics.
	hi, err := Fig3(PaperConfig, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range hi.Rows {
		if row.MTCDDownload <= row.MTSDDownload {
			t.Fatalf("p=1 class %d: MTCD download %v not worse than MTSD %v",
				row.Class, row.MTCDDownload, row.MTSDDownload)
		}
		if row.MTCDOnline <= row.MTSDOnline {
			t.Fatalf("p=1 class %d: MTCD online %v not worse than MTSD %v",
				row.Class, row.MTCDOnline, row.MTSDOnline)
		}
	}
	// p = 0.1: class-1 peers do worse under MTCD, multi-file classes do
	// better (paper's observation).
	lo, err := Fig3(PaperConfig, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if lo.Rows[0].MTCDOnline <= lo.Rows[0].MTSDOnline {
		t.Fatal("p=0.1 class 1 should be worse under MTCD")
	}
	last := lo.Rows[len(lo.Rows)-1]
	if last.MTCDOnline >= last.MTSDOnline {
		t.Fatal("p=0.1 class 10 should be better under MTCD")
	}
	// MTCD online per file decreases with class (Figure 3's slope).
	for i := 1; i < len(lo.Rows); i++ {
		if lo.Rows[i].MTCDOnline >= lo.Rows[i-1].MTCDOnline {
			t.Fatalf("MTCD online per file not decreasing at class %d", i+1)
		}
	}
	if !strings.Contains(lo.Table().String(), "p=0.1") {
		t.Fatal("table title missing correlation")
	}
}

func TestFig4ASmallGrid(t *testing.T) {
	pGrid := []float64{0.3, 0.9}
	rhoGrid := []float64{0, 0.5, 1}
	res, err := Fig4A(context.Background(), PaperConfig, pGrid, rhoGrid)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Online) != 2 || len(res.Online[0]) != 3 {
		t.Fatalf("surface shape %dx%d", len(res.Online), len(res.Online[0]))
	}
	for i := range pGrid {
		// Monotone in ρ (less collaboration is never better).
		if !(res.Online[i][0] <= res.Online[i][1]+1e-6 && res.Online[i][1] <= res.Online[i][2]+1e-6) {
			t.Fatalf("p=%v row not monotone in ρ: %v", pGrid[i], res.Online[i])
		}
	}
	// Improvement at ρ=0 is larger at higher correlation.
	gainLow := res.Online[0][2] - res.Online[0][0]
	gainHigh := res.Online[1][2] - res.Online[1][0]
	if gainHigh <= gainLow {
		t.Fatalf("collaboration gain should grow with p: %v vs %v", gainLow, gainHigh)
	}
	if !strings.Contains(res.Table().String(), "Figure 4(a)") {
		t.Fatal("table title wrong")
	}
}

func TestFig4BCShapes(t *testing.T) {
	// Panel (b): p = 0.9 — CMFSD ρ=0.1 beats MFCD for every class.
	b, err := Fig4BC(PaperConfig, 0.9, 0.1, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range b.Rows {
		if row.OnlineLowRho >= row.OnlineMFCD {
			t.Fatalf("p=0.9 class %d: ρ=0.1 online %v not better than MFCD %v",
				row.Class, row.OnlineLowRho, row.OnlineMFCD)
		}
	}
	// Panel (c): p = 0.1 — unfairness: class 1 downloads faster per file
	// than class 10 under large ρ.
	c, err := Fig4BC(PaperConfig, 0.1, 0.1, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	first, last := c.Rows[0], c.Rows[len(c.Rows)-1]
	if first.DownloadHighRho >= last.DownloadHighRho {
		t.Fatalf("p=0.1 ρ=0.9: class-1 download %v should beat class-10 %v",
			first.DownloadHighRho, last.DownloadHighRho)
	}
	if !strings.Contains(c.Table().String(), "MFCD") {
		t.Fatal("table missing MFCD column")
	}
}

func TestValidateDegeneracy(t *testing.T) {
	res, err := Validate(PaperConfig)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.SingleOnline-80) > 1e-9 {
		t.Fatalf("closed-form online %v, want 80", res.SingleOnline)
	}
	if res.MaxRelErr > 1e-3 {
		t.Fatalf("degeneracy error %v too large", res.MaxRelErr)
	}
	if !strings.Contains(res.Table().String(), "Qiu") {
		t.Fatal("table title wrong")
	}
}

func TestEtaAblation(t *testing.T) {
	res, err := EtaAblation(context.Background(), PaperConfig, []float64{0.25, 0.5, 1.0}, []float64{0.5, 1})
	if err != nil {
		t.Fatal(err)
	}
	// Larger η means faster downloads: online time decreases with η.
	for pi := range res.PGrid {
		for e := 1; e < len(res.Etas); e++ {
			if res.Online[e][pi] >= res.Online[e-1][pi] {
				t.Fatalf("η ablation not decreasing at p=%v", res.PGrid[pi])
			}
		}
	}
	if !strings.Contains(res.Table().String(), "η=0.25") {
		t.Fatal("table missing η column")
	}
}

func TestStabilityTable(t *testing.T) {
	rows, tb, err := StabilityTable(PaperConfig)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	for _, r := range rows {
		if !r.Stable {
			t.Fatalf("%s reported unstable (abscissa %v)", r.Model, r.Abscissa)
		}
	}
	if !strings.Contains(tb.String(), "abscissa") {
		t.Fatal("table header wrong")
	}
}

func TestCrossover(t *testing.T) {
	res, err := Crossover(PaperConfig)
	if err != nil {
		t.Fatal(err)
	}
	// Class 1 never benefits from concurrency: no crossover.
	if !math.IsNaN(res.PStar[0]) {
		t.Fatalf("class 1 crossover %v, want none", res.PStar[0])
	}
	// Classes ≥ 2 cross somewhere inside (0,1), at increasing p.
	prev := 0.0
	for i := 2; i <= PaperConfig.K; i++ {
		p := res.PStar[i-1]
		if math.IsNaN(p) || p <= 0 || p >= 1 {
			t.Fatalf("class %d crossover %v outside (0,1)", i, p)
		}
		if p < prev {
			t.Fatalf("crossover not increasing at class %d", i)
		}
		prev = p
	}
	if !strings.Contains(res.Table().String(), "none in (0,1)") {
		t.Fatal("table missing class-1 row")
	}
}
