package experiments

import (
	"context"
	"strings"
	"testing"
)

func TestAdaptParamsStudy(t *testing.T) {
	set := fastSettings()
	res, err := AdaptParams(context.Background(), set, 0.9, 0.8,
		[]float64{0.05, 0.25}, // |φ| as fraction of μ: tight vs generous
		[]float64{0.2},
		[]float64{5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clean) != 2 || len(res.Cheated) != 2 {
		t.Fatalf("rows %d/%d", len(res.Clean), len(res.Cheated))
	}
	// Against a cheating majority, every setting must raise ρ well above
	// its clean-swarm equilibrium.
	for i := range res.Clean {
		if res.Cheated[i].MeanFinalRho <= res.Clean[i].MeanFinalRho {
			t.Fatalf("setting %s: cheated ρ %v not above clean %v",
				res.Clean[i].Label, res.Cheated[i].MeanFinalRho, res.Clean[i].MeanFinalRho)
		}
	}
	// The tight threshold (|φ| = 0.05μ, inside the structural Δ bias)
	// must drift upward even in a clean swarm; the generous one must not.
	if res.Clean[0].MeanFinalRho <= res.Clean[1].MeanFinalRho {
		t.Fatalf("tight threshold clean ρ %v should exceed generous %v",
			res.Clean[0].MeanFinalRho, res.Clean[1].MeanFinalRho)
	}
	// Best() must prefer the generous threshold.
	if best := res.Best(); res.Clean[best].Threshold != 0.25 {
		t.Fatalf("best setting %v, want the generous threshold", res.Clean[best].Label)
	}
	if !strings.Contains(res.Table().String(), "cheated rho") {
		t.Fatal("table header wrong")
	}
}
