package experiments

import (
	"context"
	"fmt"

	"mfdl/internal/adapt"
	"mfdl/internal/eventsim"
	"mfdl/internal/replica"
	"mfdl/internal/scheme"
	"mfdl/internal/sim"
	"mfdl/internal/table"
)

// AdaptParamRow is one controller setting of the parameter study.
type AdaptParamRow struct {
	Label     string
	Threshold float64 // symmetric |φ| as a fraction of μ
	StepUp    float64
	StepDown  float64
	Period    float64
	// MeanFinalRho / AvgOnline are across-replica means; the CI95 fields
	// carry their 95% confidence half-widths (0 when Replicas <= 1).
	MeanFinalRho float64
	RhoCI95      float64
	AvgOnline    float64
	OnlineCI95   float64
}

// AdaptParamsResult answers the paper's explicit future-work question:
// "the effectiveness of the Adapt mechanism needs to be systematically
// evaluated, probing the proper settings for the parameters φ₁, φ₂, υ₁ and
// υ₂." Every setting is run twice — in an all-obedient swarm and against a
// cheating majority — because a good controller must hold ρ ≈ 0 in the
// first and drive ρ → 1 in the second.
type AdaptParamsResult struct {
	Settings        SimSettings
	P               float64
	CheaterFraction float64
	// Clean and Cheated hold one row per setting, same order.
	Clean, Cheated []AdaptParamRow
}

// AdaptParams sweeps the controller parameters. thresholds are symmetric
// |φ| values as fractions of μ; steps are (υ₁, υ₂) pairs; periods are
// observation windows. All settings × {clean, cheated} × replicas fan out
// over one replica-engine pool.
func AdaptParams(ctx context.Context, set SimSettings, p, cheaterFraction float64,
	thresholds, stepUps, periods []float64) (*AdaptParamsResult, error) {
	res := &AdaptParamsResult{Settings: set, P: p, CheaterFraction: cheaterFraction}
	type spec struct {
		ac     adapt.Config
		label  string
		th, up float64
		cheat  float64
	}
	var specs []spec
	for _, th := range thresholds {
		for _, up := range stepUps {
			for _, period := range periods {
				ac := adapt.Config{
					Lower:       -th * set.Params.Mu,
					Upper:       th * set.Params.Mu,
					StepUp:      up,
					StepDown:    up / 2,
					Period:      period,
					InitialRho:  0,
					Consecutive: 2,
				}
				label := fmt.Sprintf("|φ|=%.2fμ υ₁=%.2f T=%g", th, up, period)
				specs = append(specs,
					spec{ac: ac, label: label, th: th, up: up, cheat: 0},
					spec{ac: ac, label: label, th: th, up: up, cheat: cheaterFraction})
			}
		}
	}
	if len(specs) == 0 {
		return res, nil
	}
	sims := make([]replica.Sim, len(specs))
	for i, sp := range specs {
		ac := sp.ac
		s, err := sim.New(scheme.SimCMFSD, sim.Config{Flow: &eventsim.Config{
			Params: set.Params, K: set.K, Lambda0: set.Lambda0, P: p,
			Adapt: &ac, CheaterFraction: sp.cheat,
			Horizon: set.Horizon, Warmup: set.Warmup,
		}})
		if err != nil {
			return nil, err
		}
		sims[i] = s
	}
	aggs, err := replica.Run(ctx, len(specs), func(cell int) replica.Sim {
		return sims[cell]
	}, set.options())
	if err != nil {
		return nil, err
	}
	for i := 0; i < len(specs); i += 2 {
		sp := specs[i]
		mk := func(agg replica.Agg) AdaptParamRow {
			return AdaptParamRow{
				Label:        sp.label,
				Threshold:    sp.th,
				StepUp:       sp.up,
				StepDown:     sp.up / 2,
				Period:       sp.ac.Period,
				MeanFinalRho: agg.Mean(replica.FinalRho),
				RhoCI95:      agg.CI95(replica.FinalRho),
				AvgOnline:    agg.Mean(replica.OnlinePerFile),
				OnlineCI95:   agg.CI95(replica.OnlinePerFile),
			}
		}
		res.Clean = append(res.Clean, mk(aggs[i]))
		res.Cheated = append(res.Cheated, mk(aggs[i+1]))
	}
	return res, nil
}

// Table renders the parameter study: for each setting, the equilibrium ρ
// and performance in the clean and cheated swarms. Replicated settings
// add ±95% columns after each ρ.
func (r *AdaptParamsResult) Table() *table.Table {
	cols := []string{"setting", "clean rho", "clean online/file", "cheated rho", "cheated online/file"}
	if r.Settings.replicated() {
		cols = []string{"setting", "clean rho", "±95%", "clean online/file", "cheated rho", "±95%", "cheated online/file"}
	}
	tb := table.New(
		fmt.Sprintf("Adapt parameter study (p=%.1f; cheated runs at %.0f%% cheaters)",
			r.P, 100*r.CheaterFraction),
		cols...)
	for i := range r.Clean {
		cells := []string{r.Clean[i].Label, fmt.Sprintf("%.3f", r.Clean[i].MeanFinalRho)}
		if r.Settings.replicated() {
			cells = append(cells, fmt.Sprintf("±%.3f", r.Clean[i].RhoCI95))
		}
		cells = append(cells, table.Fmt(r.Clean[i].AvgOnline),
			fmt.Sprintf("%.3f", r.Cheated[i].MeanFinalRho))
		if r.Settings.replicated() {
			cells = append(cells, fmt.Sprintf("±%.3f", r.Cheated[i].RhoCI95))
		}
		cells = append(cells, table.Fmt(r.Cheated[i].AvgOnline))
		tb.MustAddRow(cells...)
	}
	return tb
}

// Score summarizes one setting's quality: lower is better. It charges the
// clean swarm's performance loss relative to the best possible (ρ stays 0)
// plus the cheated swarm's failure to protect obedient peers (ρ should
// rise toward 1).
func (r *AdaptParamsResult) Score(i int) float64 {
	return r.Clean[i].MeanFinalRho + (1 - r.Cheated[i].MeanFinalRho)
}

// Best returns the index of the best-scoring setting.
func (r *AdaptParamsResult) Best() int {
	best, bestScore := 0, r.Score(0)
	for i := 1; i < len(r.Clean); i++ {
		if s := r.Score(i); s < bestScore {
			best, bestScore = i, s
		}
	}
	return best
}
