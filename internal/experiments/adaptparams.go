package experiments

import (
	"fmt"

	"mfdl/internal/adapt"
	"mfdl/internal/eventsim"
	"mfdl/internal/table"
)

// AdaptParamRow is one controller setting of the parameter study.
type AdaptParamRow struct {
	Label        string
	Threshold    float64 // symmetric |φ| as a fraction of μ
	StepUp       float64
	StepDown     float64
	Period       float64
	MeanFinalRho float64
	AvgOnline    float64
}

// AdaptParamsResult answers the paper's explicit future-work question:
// "the effectiveness of the Adapt mechanism needs to be systematically
// evaluated, probing the proper settings for the parameters φ₁, φ₂, υ₁ and
// υ₂." Every setting is run twice — in an all-obedient swarm and against a
// cheating majority — because a good controller must hold ρ ≈ 0 in the
// first and drive ρ → 1 in the second.
type AdaptParamsResult struct {
	Settings        SimSettings
	P               float64
	CheaterFraction float64
	// Clean and Cheated hold one row per setting, same order.
	Clean, Cheated []AdaptParamRow
}

// AdaptParams sweeps the controller parameters. thresholds are symmetric
// |φ| values as fractions of μ; steps are (υ₁, υ₂) pairs; periods are
// observation windows.
func AdaptParams(set SimSettings, p, cheaterFraction float64,
	thresholds, stepUps, periods []float64) (*AdaptParamsResult, error) {
	res := &AdaptParamsResult{Settings: set, P: p, CheaterFraction: cheaterFraction}
	runOne := func(ac adapt.Config, cheat float64) (AdaptParamRow, error) {
		cfg := eventsim.Config{
			Params: set.Params, K: set.K, Lambda0: set.Lambda0, P: p,
			Scheme: eventsim.CMFSD, Adapt: &ac, CheaterFraction: cheat,
			Horizon: set.Horizon, Warmup: set.Warmup, Seed: set.Seed,
		}
		out, err := eventsim.Run(cfg)
		if err != nil {
			return AdaptParamRow{}, err
		}
		return AdaptParamRow{
			MeanFinalRho: out.FinalRho.Mean(),
			AvgOnline:    out.AvgOnlinePerFile,
		}, nil
	}
	for _, th := range thresholds {
		for _, up := range stepUps {
			for _, period := range periods {
				ac := adapt.Config{
					Lower:       -th * set.Params.Mu,
					Upper:       th * set.Params.Mu,
					StepUp:      up,
					StepDown:    up / 2,
					Period:      period,
					InitialRho:  0,
					Consecutive: 2,
				}
				label := fmt.Sprintf("|φ|=%.2fμ υ₁=%.2f T=%g", th, up, period)
				clean, err := runOne(ac, 0)
				if err != nil {
					return nil, fmt.Errorf("experiments: adapt params %s clean: %w", label, err)
				}
				cheated, err := runOne(ac, cheaterFraction)
				if err != nil {
					return nil, fmt.Errorf("experiments: adapt params %s cheated: %w", label, err)
				}
				for _, row := range []*AdaptParamRow{&clean, &cheated} {
					row.Label = label
					row.Threshold = th
					row.StepUp = up
					row.StepDown = up / 2
					row.Period = period
				}
				res.Clean = append(res.Clean, clean)
				res.Cheated = append(res.Cheated, cheated)
			}
		}
	}
	return res, nil
}

// Table renders the parameter study: for each setting, the equilibrium ρ
// and performance in the clean and cheated swarms.
func (r *AdaptParamsResult) Table() *table.Table {
	tb := table.New(
		fmt.Sprintf("Adapt parameter study (p=%.1f; cheated runs at %.0f%% cheaters)",
			r.P, 100*r.CheaterFraction),
		"setting", "clean rho", "clean online/file", "cheated rho", "cheated online/file")
	for i := range r.Clean {
		tb.MustAddRow(r.Clean[i].Label,
			fmt.Sprintf("%.3f", r.Clean[i].MeanFinalRho),
			table.Fmt(r.Clean[i].AvgOnline),
			fmt.Sprintf("%.3f", r.Cheated[i].MeanFinalRho),
			table.Fmt(r.Cheated[i].AvgOnline))
	}
	return tb
}

// Score summarizes one setting's quality: lower is better. It charges the
// clean swarm's performance loss relative to the best possible (ρ stays 0)
// plus the cheated swarm's failure to protect obedient peers (ρ should
// rise toward 1).
func (r *AdaptParamsResult) Score(i int) float64 {
	return r.Clean[i].MeanFinalRho + (1 - r.Cheated[i].MeanFinalRho)
}

// Best returns the index of the best-scoring setting.
func (r *AdaptParamsResult) Best() int {
	best, bestScore := 0, r.Score(0)
	for i := 1; i < len(r.Clean); i++ {
		if s := r.Score(i); s < bestScore {
			best, bestScore = i, s
		}
	}
	return best
}
