package experiments

import (
	"context"
	"fmt"

	"mfdl/internal/eventsim"
	"mfdl/internal/fluid"
	"mfdl/internal/replica"
	"mfdl/internal/scheme"
	"mfdl/internal/sim"
	"mfdl/internal/stats"
	"mfdl/internal/table"
)

// HeteroRow compares one bandwidth class across fluid and simulation.
type HeteroRow struct {
	Name          string
	FluidDownload float64
	// SimDownload is the across-replica mean download time; SimCI95 its
	// 95% confidence half-width (0 when Replicas <= 1).
	SimDownload float64
	SimCI95     float64
	RelErr      float64
	// Completed counts completed class users summed over all replicas.
	Completed int
}

// HeteroResult is the E15 experiment: the Section-2 multi-class fluid
// model validated by the event simulator on a single heterogeneous
// torrent.
type HeteroResult struct {
	Eta      float64
	Replicas int
	Rows     []HeteroRow
}

// HeteroClass describes one class for the E15 experiment.
type HeteroClass struct {
	Name     string
	Mu       float64
	Weight   float64
	Fraction float64
}

// Hetero runs the heterogeneous-swarm validation: one torrent (K = 1),
// the given bandwidth classes, MTSD peers. The simulation side runs
// Settings.Replicas independently seeded replicas on the replica engine.
func Hetero(ctx context.Context, set SimSettings, lambda0 float64, classes []HeteroClass) (*HeteroResult, error) {
	bw := make([]eventsim.BandwidthClass, len(classes))
	fl := make([]fluid.Class, len(classes))
	for i, c := range classes {
		bw[i] = eventsim.BandwidthClass{Name: c.Name, Mu: c.Mu, Weight: c.Weight, Fraction: c.Fraction}
		fl[i] = fluid.Class{Name: c.Name, Mu: c.Mu, C: c.Weight, Lambda: lambda0 * c.Fraction, Gamma: set.Params.Gamma}
	}
	fm, err := fluid.NewMultiClass(set.Params.Eta, fl)
	if err != nil {
		return nil, err
	}
	ss, err := fluid.SteadyState(fm, fluid.SteadyStateOptions{MaxTime: 2e6})
	if err != nil {
		return nil, err
	}
	dl, _, err := fm.ClassTimes(ss)
	if err != nil {
		return nil, err
	}
	hsim, err := sim.New(scheme.SimMTSD, sim.Config{Flow: &eventsim.Config{
		Params:    set.Params,
		K:         1,
		Lambda0:   lambda0,
		P:         1,
		Horizon:   set.Horizon,
		Warmup:    set.Warmup,
		Bandwidth: bw,
	}})
	if err != nil {
		return nil, err
	}
	aggs, err := replica.Run(ctx, 1, func(int) replica.Sim {
		return hsim
	}, set.options())
	if err != nil {
		return nil, err
	}
	agg := aggs[0]
	res := &HeteroResult{Eta: set.Params.Eta, Replicas: set.effReplicas()}
	for i, c := range classes {
		got := agg.Mean(replica.BandwidthKey(c.Name, replica.DownloadPerFile))
		res.Rows = append(res.Rows, HeteroRow{
			Name:          c.Name,
			FluidDownload: dl[i],
			SimDownload:   got,
			SimCI95:       agg.CI95(replica.BandwidthKey(c.Name, replica.DownloadPerFile)),
			RelErr:        stats.RelErr(got, dl[i], 1),
			Completed:     int(agg.Count(replica.BandwidthKey(c.Name, replica.Completed))),
		})
	}
	return res, nil
}

// Table renders the heterogeneous validation; with more than one replica
// a ±95% column follows the simulated mean.
func (r *HeteroResult) Table() *table.Table {
	cols := []string{"class", "fluid download", "sim download", "rel err", "completed"}
	if r.Replicas > 1 {
		cols = []string{"class", "fluid download", "sim download", "±95%", "rel err", "completed"}
	}
	tb := table.New(
		fmt.Sprintf("Heterogeneous swarm: multi-class fluid vs simulation (η=%.2f)", r.Eta),
		cols...)
	for _, row := range r.Rows {
		cells := []string{row.Name,
			table.Fmt(row.FluidDownload), table.Fmt(row.SimDownload)}
		if r.Replicas > 1 {
			cells = append(cells, ciCell(row.SimCI95))
		}
		cells = append(cells, fmt.Sprintf("%.1f%%", 100*row.RelErr), fmt.Sprintf("%d", row.Completed))
		tb.MustAddRow(cells...)
	}
	return tb
}
