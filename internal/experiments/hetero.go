package experiments

import (
	"fmt"

	"mfdl/internal/eventsim"
	"mfdl/internal/fluid"
	"mfdl/internal/stats"
	"mfdl/internal/table"
)

// HeteroRow compares one bandwidth class across fluid and simulation.
type HeteroRow struct {
	Name          string
	FluidDownload float64
	SimDownload   float64
	RelErr        float64
	Completed     int
}

// HeteroResult is the E15 experiment: the Section-2 multi-class fluid
// model validated by the event simulator on a single heterogeneous
// torrent.
type HeteroResult struct {
	Eta  float64
	Rows []HeteroRow
}

// HeteroClass describes one class for the E15 experiment.
type HeteroClass struct {
	Name     string
	Mu       float64
	Weight   float64
	Fraction float64
}

// Hetero runs the heterogeneous-swarm validation: one torrent (K = 1),
// the given bandwidth classes, MTSD peers.
func Hetero(set SimSettings, lambda0 float64, classes []HeteroClass) (*HeteroResult, error) {
	bw := make([]eventsim.BandwidthClass, len(classes))
	fl := make([]fluid.Class, len(classes))
	for i, c := range classes {
		bw[i] = eventsim.BandwidthClass{Name: c.Name, Mu: c.Mu, Weight: c.Weight, Fraction: c.Fraction}
		fl[i] = fluid.Class{Name: c.Name, Mu: c.Mu, C: c.Weight, Lambda: lambda0 * c.Fraction, Gamma: set.Params.Gamma}
	}
	fm, err := fluid.NewMultiClass(set.Params.Eta, fl)
	if err != nil {
		return nil, err
	}
	ss, err := fluid.SteadyState(fm, fluid.SteadyStateOptions{MaxTime: 2e6})
	if err != nil {
		return nil, err
	}
	dl, _, err := fm.ClassTimes(ss)
	if err != nil {
		return nil, err
	}
	cfg := eventsim.Config{
		Params:    set.Params,
		K:         1,
		Lambda0:   lambda0,
		P:         1,
		Scheme:    eventsim.MTSD,
		Horizon:   set.Horizon,
		Warmup:    set.Warmup,
		Seed:      set.Seed,
		Bandwidth: bw,
	}
	out, err := eventsim.Run(cfg)
	if err != nil {
		return nil, err
	}
	res := &HeteroResult{Eta: set.Params.Eta}
	for i, bs := range out.Bandwidth {
		got := bs.DownloadTime.Mean()
		res.Rows = append(res.Rows, HeteroRow{
			Name:          bs.Name,
			FluidDownload: dl[i],
			SimDownload:   got,
			RelErr:        stats.RelErr(got, dl[i], 1),
			Completed:     bs.Completed,
		})
	}
	return res, nil
}

// Table renders the heterogeneous validation.
func (r *HeteroResult) Table() *table.Table {
	tb := table.New(
		fmt.Sprintf("Heterogeneous swarm: multi-class fluid vs simulation (η=%.2f)", r.Eta),
		"class", "fluid download", "sim download", "rel err", "completed")
	for _, row := range r.Rows {
		tb.MustAddRow(row.Name,
			table.Fmt(row.FluidDownload), table.Fmt(row.SimDownload),
			fmt.Sprintf("%.1f%%", 100*row.RelErr), fmt.Sprintf("%d", row.Completed))
	}
	return tb
}
