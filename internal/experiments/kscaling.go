package experiments

import (
	"context"
	"fmt"

	"mfdl/internal/rng"
	"mfdl/internal/runner"
	"mfdl/internal/scheme"
	"mfdl/internal/table"
)

// KScalingRow is one torrent size of the K-scaling study.
type KScalingRow struct {
	K           int
	MFCD        float64 // avg online time per file
	CMFSD       float64 // same at ρ = 0
	GainPercent float64 // 100·(1 − CMFSD/MFCD)
}

// KScalingResult asks how the collaboration gain grows with the number of
// files in the torrent — the publisher's question ("should I split the
// season?") that the paper's fixed K = 10 leaves open (E14 in DESIGN.md).
type KScalingResult struct {
	Config Config // K field ignored; P taken from the argument
	P      float64
	Rows   []KScalingRow
}

// KScaling evaluates MFCD vs CMFSD(ρ=0) over torrent sizes. The per-K
// relaxations are independent, so they run in parallel on the runner pool.
func KScaling(cfg Config, p float64, ks []int) (*KScalingResult, error) {
	res := &KScalingResult{Config: cfg, P: p}
	if len(ks) == 0 {
		return res, nil
	}
	grid, err := runner.Indexed("k", len(ks))
	if err != nil {
		return nil, err
	}
	rows, err := runner.Run(context.Background(), grid,
		func(_ context.Context, pt runner.Point, _ *rng.Source) (KScalingRow, error) {
			k := ks[pt.Index]
			c := cfg
			c.K = k
			if err := c.Validate(); err != nil {
				return KScalingRow{}, err
			}
			corr, err := c.corr(p)
			if err != nil {
				return KScalingRow{}, err
			}
			mfcd, err := scheme.Evaluate(scheme.MFCD, c.Params, corr, scheme.Options{})
			if err != nil {
				return KScalingRow{}, fmt.Errorf("experiments: MFCD K=%d: %w", k, err)
			}
			collab, err := scheme.Evaluate(scheme.CMFSD, c.Params, corr, scheme.Options{Rho: 0})
			if err != nil {
				return KScalingRow{}, fmt.Errorf("experiments: CMFSD K=%d: %w", k, err)
			}
			row := KScalingRow{
				K:     k,
				MFCD:  mfcd.AvgOnlinePerFile(),
				CMFSD: collab.AvgOnlinePerFile(),
			}
			row.GainPercent = 100 * (1 - row.CMFSD/row.MFCD)
			return row, nil
		}, runner.Options{})
	if err != nil {
		return nil, err
	}
	res.Rows = rows
	return res, nil
}

// Table renders the K-scaling study.
func (r *KScalingResult) Table() *table.Table {
	tb := table.New(
		fmt.Sprintf("Collaboration gain vs torrent size (p=%.1f, ρ=0)", r.P),
		"K", "MFCD online/file", "CMFSD online/file", "gain")
	for _, row := range r.Rows {
		tb.MustAddRow(fmt.Sprintf("%d", row.K),
			table.Fmt(row.MFCD), table.Fmt(row.CMFSD),
			fmt.Sprintf("%.1f%%", row.GainPercent))
	}
	return tb
}
