package experiments

import (
	"context"
	"testing"

	"mfdl/internal/runner"
	"mfdl/internal/scheme"
)

// The consolidation contract: a spec written with the deprecated
// per-struct fields and one written with the embedded Options surface
// must produce byte-identical tables.

func TestSweepOptionsSpellingGolden(t *testing.T) {
	g, err := runner.NewGrid(runner.Dim{Name: "rho", Values: runner.Linspace(0, 1, 4)})
	if err != nil {
		t.Fatal(err)
	}
	oldStyle := SweepSpec{
		Config: PaperConfig, P: 0.9, Scheme: scheme.CMFSD, Grid: g,
		Workers: 3, // deprecated field
	}
	newStyle := SweepSpec{
		Config: PaperConfig, P: 0.9, Scheme: scheme.CMFSD, Grid: g,
		Options: Options{Workers: 3},
	}
	var tables []string
	for _, spec := range []SweepSpec{oldStyle, newStyle} {
		res, err := Sweep(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		tables = append(tables, res.Table().String())
	}
	if tables[0] != tables[1] {
		t.Fatalf("Options spelling changed the sweep table:\n%s\nvs\n%s", tables[0], tables[1])
	}
}

func TestSimValidateOptionsSpellingGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation golden comparison")
	}
	base := DefaultSimSettings
	base.Horizon, base.Warmup = 600, 100
	oldStyle := base
	oldStyle.Seed, oldStyle.Replicas, oldStyle.Workers = 7, 2, 2 // deprecated fields
	newStyle := base
	newStyle.Seed = 0 // DefaultSimSettings seeds the deprecated field; clear it
	newStyle.Options = Options{Seed: 7, Replicas: 2, Workers: 2}
	var tables []string
	for _, set := range []SimSettings{oldStyle, newStyle} {
		res, err := SimValidate(context.Background(), set, []float64{0.9})
		if err != nil {
			t.Fatal(err)
		}
		tables = append(tables, res.Table().String())
	}
	if tables[0] != tables[1] {
		t.Fatalf("Options spelling changed the simulation table:\n%s\nvs\n%s", tables[0], tables[1])
	}
}

// Deprecated fields must win over the embedded Options when both are set —
// existing callers mutating the old fields keep their meaning even if a
// future default populates Options.
func TestDeprecatedFieldsTakePrecedence(t *testing.T) {
	s := SimSettings{Seed: 5, Options: Options{Seed: 9, Replicas: 3}}
	if got := s.effSeed(); got != 5 {
		t.Errorf("effSeed = %d, want the deprecated 5", got)
	}
	if got := s.effReplicas(); got != 3 {
		t.Errorf("effReplicas = %d, want the Options 3", got)
	}
	sw := SweepSpec{Workers: 2, Options: Options{Workers: 8}}
	if got := sw.effWorkers(); got != 2 {
		t.Errorf("effWorkers = %d, want the deprecated 2", got)
	}
}
