package experiments

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestKScalingShape(t *testing.T) {
	res, err := KScaling(PaperConfig, 0.9, []int{1, 2, 5, 10, 15})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// K = 1: nothing to collaborate on — both schemes equal (gain ≈ 0).
	if g := res.Rows[0].GainPercent; g > 1 || g < -1 {
		t.Fatalf("K=1 gain %v%%, want ≈0", g)
	}
	// Gain grows monotonically with K.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].GainPercent < res.Rows[i-1].GainPercent-0.2 {
			t.Fatalf("gain not monotone at K=%d: %v after %v",
				res.Rows[i].K, res.Rows[i].GainPercent, res.Rows[i-1].GainPercent)
		}
	}
	// At the paper's K = 10 the gain is substantial (≈47% at p=0.9).
	k10 := res.Rows[3]
	if k10.GainPercent < 35 {
		t.Fatalf("K=10 gain %v%% suspiciously small", k10.GainPercent)
	}
	if !strings.Contains(res.Table().String(), "gain") {
		t.Fatal("table header wrong")
	}
}

func TestKScalingRejectsBadConfig(t *testing.T) {
	if _, err := KScaling(PaperConfig, 0.9, []int{0}); err == nil {
		t.Fatal("K=0 accepted")
	}
}

func TestReportWritesAllArtifacts(t *testing.T) {
	dir := t.TempDir()
	files, err := Report(context.Background(), PaperConfig, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 12 {
		t.Fatalf("wrote %d artifacts, want 12", len(files))
	}
	for _, f := range files {
		info, err := os.Stat(f)
		if err != nil {
			t.Fatal(err)
		}
		if info.Size() == 0 {
			t.Fatalf("%s is empty", f)
		}
	}
	// Spot-check one artifact's content.
	data, err := os.ReadFile(filepath.Join(dir, "fig2.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "p,MTCD,MTSD") {
		t.Fatalf("fig2.csv header missing:\n%s", data)
	}
}
