package experiments

import (
	"context"
	"strings"
	"testing"
)

func TestTransientFlashCrowd(t *testing.T) {
	set := DefaultSimSettings
	set.Horizon = 150 // rescaled units: ~10 residence times
	res, err := Transient(context.Background(), set, 0.9, 0, 300)
	if err != nil {
		t.Fatal(err)
	}
	// The flash crowd must drain: both paths end far below the initial
	// 300 downloaders.
	if final := res.Fluid.Series("downloaders").Final(); final > 100 {
		t.Fatalf("fluid did not drain: %v downloaders at horizon", final)
	}
	if final := res.Sim.Series("downloaders").Final(); final > 100 {
		t.Fatalf("sim did not drain: %v downloaders at horizon", final)
	}
	// Fluid and simulation must agree to within ~20% of the flash size
	// along the whole path. The residual gap is systematic, not noise:
	// the fluid model drains the cohort exponentially (Markovian service)
	// while simulated peers carry deterministic per-file work and finish
	// in sharper waves (documented in EXPERIMENTS.md E13).
	if res.RMSDownloaders > 0.2 {
		t.Fatalf("downloader paths diverge: RMS/flash = %v", res.RMSDownloaders)
	}
	if res.RMSSeeds > 0.2 {
		t.Fatalf("seed paths diverge: RMS/flash = %v", res.RMSSeeds)
	}
	// After the transient the two paths must meet at the same steady
	// state (within small-swarm noise).
	fluidSteady := res.Fluid.Series("downloaders").Final()
	simSteady := res.Sim.Series("downloaders").Final()
	if fluidSteady <= 0 || simSteady <= 0 || simSteady > 2*fluidSteady || fluidSteady > 2*simSteady {
		t.Fatalf("steady states disagree: fluid %v, sim %v", fluidSteady, simSteady)
	}
	// Both paths peak during the flash drain — inside the first third of
	// the horizon (ongoing arrivals push the peak slightly past t = 0).
	if res.PeakFluidT > set.Horizon/3 || res.PeakSimT > set.Horizon/3 {
		t.Fatalf("peaks late: fluid %v, sim %v", res.PeakFluidT, res.PeakSimT)
	}
	out := res.Table().String()
	if !strings.Contains(out, "Flash crowd") || !strings.Contains(out, "RMS/flash") {
		t.Fatalf("table wrong:\n%s", out)
	}
}

func TestTransientSeedsRiseThenSettle(t *testing.T) {
	set := DefaultSimSettings
	set.Horizon = 150
	res, err := Transient(context.Background(), set, 0.9, 0, 300)
	if err != nil {
		t.Fatal(err)
	}
	seeds := res.Fluid.Series("seeds")
	_, peak := seeds.Max()
	// The flash converts into a seed wave well above the steady state.
	steady := seeds.Final()
	if peak < 2*steady {
		t.Fatalf("no seed wave: peak %v vs steady %v", peak, steady)
	}
}
