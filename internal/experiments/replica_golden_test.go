package experiments

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"mfdl/internal/adapt"
	"mfdl/internal/fluid"
	"mfdl/internal/swarm"
	"mfdl/internal/table"
)

// goldenSettings are the exact settings the pre-refactor tables in
// testdata/ were captured at. Do not change them: the golden files pin
// the promise that Replicas = 1 reproduces the unreplicated experiment
// output byte-for-byte across the replica-engine refactor.
func goldenSettings() SimSettings {
	return SimSettings{
		Params:  fluid.Params{Mu: 0.2, Eta: 0.5, Gamma: 0.5},
		K:       10,
		Lambda0: 1,
		Horizon: 1500,
		Warmup:  300,
		Seed:    7,
	}
}

// render draws a table the way the golden capture did.
func render(t *testing.T, tb *table.Table) string {
	t.Helper()
	var buf bytes.Buffer
	if err := tb.Write(&buf, "ascii"); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// checkGolden compares got against testdata/<name> byte-for-byte.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	want, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("%s: output diverged from pre-refactor golden\n--- got ---\n%s--- want ---\n%s", name, got, want)
	}
}

func TestSimValidateGolden(t *testing.T) {
	res, err := SimValidate(context.Background(), goldenSettings(), []float64{0.9})
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "golden_simvalidate.txt", render(t, res.Table()))
}

func TestAdaptSweepGolden(t *testing.T) {
	ac := adaptGoldenConfig()
	res, err := AdaptSweep(context.Background(), goldenSettings(), 0.9, ac, []float64{0, 0.8})
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "golden_adaptsweep.txt", render(t, res.Table()))
}

func TestSwarmCompareGolden(t *testing.T) {
	base := swarm.DefaultConfig
	base.Horizon = 800
	base.Warmup = 200
	base.Seed = 7
	res, err := SwarmCompare(context.Background(), base, []float64{0, 1}, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "golden_swarmcompare.txt", render(t, res.Table()))
}

func TestTransientGolden(t *testing.T) {
	set := goldenSettings()
	set.Horizon = 150
	res, err := Transient(context.Background(), set, 0.9, 0, 300)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "golden_transient.txt", render(t, res.Table()))
}

func TestHeteroGolden(t *testing.T) {
	res, err := Hetero(context.Background(), goldenSettings(), 2, heteroGoldenClasses())
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "golden_hetero.txt", render(t, res.Table()))
}

func TestAdaptParamsGolden(t *testing.T) {
	set := goldenSettings()
	set.Horizon = 600
	set.Warmup = 150
	res, err := AdaptParams(context.Background(), set, 0.9, 0.8,
		[]float64{0.1, 0.25}, []float64{0.2}, []float64{10})
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "golden_adaptparams.txt", render(t, res.Table()))
}

// TestSimValidateReplicatedDeterminism is the acceptance check for the
// replica engine at R > 1: the full rendered table, confidence columns
// included, must be byte-identical at every worker count.
func TestSimValidateReplicatedDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("replicated determinism check is slow")
	}
	run := func(workers int) string {
		set := goldenSettings()
		set.Horizon = 400
		set.Warmup = 100
		set.Replicas = 4
		set.Workers = workers
		res, err := SimValidate(context.Background(), set, []float64{0.9})
		if err != nil {
			t.Fatal(err)
		}
		return render(t, res.Table())
	}
	want := run(1)
	got := run(8)
	if got != want {
		t.Errorf("R=4 table differs between workers=1 and workers=8\n--- workers=8 ---\n%s--- workers=1 ---\n%s", got, want)
	}
	if !bytes.Contains([]byte(want), []byte("±")) {
		t.Errorf("replicated table carries no ± column:\n%s", want)
	}
}

// TestSimValidateReplicasExtend checks the seed-scheme promise at the
// experiment level: the first replica of every cell is the base-seed run,
// so the R = 2 mean moves from the R = 1 value only by adding replicas.
func TestSimValidateReplicasExtend(t *testing.T) {
	set := goldenSettings()
	set.Horizon = 400
	set.Warmup = 100
	one, err := SimValidate(context.Background(), set, []float64{0.9})
	if err != nil {
		t.Fatal(err)
	}
	set.Replicas = 2
	two, err := SimValidate(context.Background(), set, []float64{0.9})
	if err != nil {
		t.Fatal(err)
	}
	if len(one.Rows) != len(two.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(one.Rows), len(two.Rows))
	}
	for i := range one.Rows {
		r1, r2 := one.Rows[i], two.Rows[i]
		// The replicated mean averages the R=1 value with one extra
		// replica, so it must stay within the [min, max] envelope — here
		// checked loosely: same scheme labels and a positive CI.
		if r1.Scheme != r2.Scheme || r1.P != r2.P {
			t.Fatalf("row %d identity changed: %+v vs %+v", i, r1, r2)
		}
		if r2.SimCI95 < 0 {
			t.Errorf("row %d: negative CI %v", i, r2.SimCI95)
		}
		if r1.SimCI95 != 0 {
			t.Errorf("row %d: R=1 should report zero CI, got %v", i, r1.SimCI95)
		}
	}
}

// adaptGoldenConfig is the controller configuration the adapt golden was
// captured with.
func adaptGoldenConfig() adapt.Config {
	return adapt.Config{
		Lower:       -0.05,
		Upper:       0.05,
		StepUp:      0.2,
		StepDown:    0.1,
		Period:      5,
		InitialRho:  0,
		Consecutive: 2,
	}
}

// heteroGoldenClasses are the bandwidth classes the hetero golden was
// captured with.
func heteroGoldenClasses() []HeteroClass {
	return []HeteroClass{
		{Name: "broadband", Mu: 0.4, Weight: 4, Fraction: 0.3},
		{Name: "cable", Mu: 0.2, Weight: 2, Fraction: 0.4},
		{Name: "dsl", Mu: 0.1, Weight: 1, Fraction: 0.3},
	}
}
