package experiments

import (
	"context"
	"strings"
	"testing"

	"mfdl/internal/runner"
	"mfdl/internal/scheme"
)

func sweepGrid(t *testing.T) runner.Grid {
	t.Helper()
	g, err := runner.NewGrid(
		runner.Dim{Name: "p", Values: runner.Linspace(0.1, 0.9, 4)},
		runner.Dim{Name: "rho", Values: runner.Linspace(0, 1, 4)},
	)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// The acceptance bar for the whole runner stack: the same grid rendered at
// workers=1 and workers=8 must produce byte-identical tables.
func TestSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	spec := SweepSpec{
		Config: PaperConfig, P: 0.9, Scheme: scheme.CMFSD, Grid: sweepGrid(t),
	}
	var base string
	for _, workers := range []int{1, 8} {
		spec.Workers = workers
		res, err := Sweep(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		out := res.Table().String()
		if base == "" {
			base = out
			continue
		}
		if out != base {
			t.Fatalf("workers=%d table differs from workers=1:\n%s\nvs\n%s", workers, out, base)
		}
	}
	if want := 5 * 5; len(strings.Split(strings.TrimSpace(base), "\n")) != want+3 {
		t.Fatalf("unexpected table:\n%s", base)
	}
}

// Sweeping ρ under MTSD (which ignores ρ) must collapse to one solve.
func TestSweepMemoizesInsensitiveDims(t *testing.T) {
	g, err := runner.NewGrid(runner.Dim{Name: "rho", Values: runner.Linspace(0, 1, 9)})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Sweep(context.Background(), SweepSpec{
		Config: PaperConfig, P: 0.9, Scheme: scheme.MTSD, Grid: g, Workers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cache.Misses != 1 || res.Cache.Hits != 9 {
		t.Fatalf("hits=%d misses=%d, want 9/1", res.Cache.Hits, res.Cache.Misses)
	}
	for _, c := range res.Cells[1:] {
		if c.AvgOnline != res.Cells[0].AvgOnline {
			t.Fatal("MTSD varied with rho")
		}
	}
}

func TestSweepCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Sweep(ctx, SweepSpec{
		Config: PaperConfig, P: 0.9, Scheme: scheme.CMFSD, Grid: sweepGrid(t),
	}); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestSweepRejectsBadInput(t *testing.T) {
	g, err := runner.NewGrid(runner.Dim{Name: "flux", Values: []float64{1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Sweep(context.Background(), SweepSpec{
		Config: PaperConfig, P: 0.9, Scheme: scheme.CMFSD, Grid: g,
	}); err == nil || !strings.Contains(err.Error(), "flux") {
		t.Fatalf("unknown dimension accepted: %v", err)
	}
	bad := PaperConfig
	bad.K = 0
	if _, err := Sweep(context.Background(), SweepSpec{
		Config: bad, P: 0.9, Scheme: scheme.CMFSD, Grid: sweepGrid(t),
	}); err == nil {
		t.Fatal("K=0 accepted")
	}
	pg, err := runner.NewGrid(runner.Dim{Name: "p", Values: []float64{0.5, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Sweep(context.Background(), SweepSpec{
		Config: PaperConfig, P: 0.9, Scheme: scheme.MTSD, Grid: pg,
	}); err == nil {
		t.Fatal("p=2 cell accepted")
	}
}

// The determinism half of the disk-cache acceptance bar: the same grid
// rendered without a cache, with a cold cache, and with a warm cache must
// be byte-identical, and the warm run must serve every solve from disk.
func TestSweepDiskCacheDeterministicAndWarm(t *testing.T) {
	g, err := runner.NewGrid(
		runner.Dim{Name: "p", Values: runner.Linspace(0.3, 0.9, 1)},
		runner.Dim{Name: "rho", Values: runner.Linspace(0, 1, 2)},
	)
	if err != nil {
		t.Fatal(err)
	}
	spec := SweepSpec{Config: PaperConfig, P: 0.9, Scheme: scheme.CMFSD, Grid: g, Workers: 4}
	plain, err := Sweep(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	want := plain.Table().String()

	spec.CacheDir = t.TempDir()
	cold, err := Sweep(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := cold.Table().String(); got != want {
		t.Fatalf("cold cached run differs from uncached:\n%s\nvs\n%s", got, want)
	}
	if s := cold.Cache; s.Disk.Hits != 0 || s.Disk.Stores != s.Misses {
		t.Fatalf("cold stats: %+v", s)
	}

	warm, err := Sweep(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := warm.Table().String(); got != want {
		t.Fatalf("warm cached run differs from uncached:\n%s\nvs\n%s", got, want)
	}
	s := warm.Cache
	if s.Disk.Hits != s.Misses || s.Disk.Misses != 0 || s.Solves() != 0 {
		t.Fatalf("warm run re-solved: %+v", s)
	}
}

// KScaling's gain ordering must survive the parallel migration.
func TestSweepKDimensionMatchesDirectEvaluation(t *testing.T) {
	g, err := runner.NewGrid(runner.Dim{Name: "k", Values: []float64{2, 5, 10}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Sweep(context.Background(), SweepSpec{
		Config: PaperConfig, P: 0.9, Scheme: scheme.CMFSD, Grid: g, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ks, err := KScaling(PaperConfig, 0.9, []int{2, 5, 10})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range res.Cells {
		if c.AvgOnline != ks.Rows[i].CMFSD {
			t.Fatalf("k=%v: sweep %v != kscaling %v", c.Values[0], c.AvgOnline, ks.Rows[i].CMFSD)
		}
	}
}
