package experiments

import (
	"context"
	"fmt"
	"strings"

	"mfdl/internal/obs"
	"mfdl/internal/runner"
	"mfdl/internal/runner/diskcache"
	"mfdl/internal/scheme"
	"mfdl/internal/table"
)

// SweepDims lists the dimension names Sweep understands: every swept axis
// maps onto one knob of the server–torrent system. It aliases the runner's
// job-dimension list — the sweep is just a JobSpec in experiment clothing.
var SweepDims = runner.KeyDims

// SweepSpec describes a multi-dimensional parameter study of one scheme:
// a base operating point plus an N-dimensional grid of overrides. Cells
// are independent steady-state solves, so Sweep fans them out over a
// worker pool and memoizes solves that coincide (e.g. sweeping ρ under a
// scheme that ignores it).
//
// A SweepSpec lowers to a serializable runner.JobSpec (see JobSpec), so
// the same study can run locally, resume from checkpoints, or be
// distributed across fabric workers — all byte-identically.
type SweepSpec struct {
	// Config is the base operating point; swept dimensions override its
	// fields cell by cell.
	Config Config
	// P is the base file correlation.
	P float64
	// Rho is the base CMFSD allocation ratio.
	Rho float64
	// Theta is the base downloader abort rate θ (0 keeps the paper's
	// closed forms).
	Theta float64
	// Scheme is the evaluated scheme.
	Scheme scheme.Scheme
	// Grid holds the swept dimensions; names must come from SweepDims.
	Grid runner.Grid
	// Options is the shared execution-option surface (workers, obs, seed,
	// cache). Options.Cache, when set, takes precedence over CacheDir.
	Options
	// Workers is the pre-Options spelling of Options.Workers.
	//
	// Deprecated: set Options.Workers. A non-zero value here still wins.
	Workers int
	// Retries is how many times a panicking cell is re-attempted before
	// failing the sweep (see runner.Options.Retries).
	Retries int
	// CacheDir, when non-empty, backs the solve cache with a persistent
	// cross-process store in that directory: cells already solved by any
	// previous run (or process) are decoded instead of re-solved, and
	// fresh solves are persisted for the next run. Results are
	// byte-identical with or without it.
	CacheDir string
	// CheckpointDir, when non-empty, persists each completed cell to that
	// directory and replays persisted cells on a re-run: a killed sweep
	// resumed with the identical spec emits a byte-identical final table.
	// The checkpoints of a sweep that completes are cleared.
	CheckpointDir string
	// Hooks observe per-cell progress.
	Hooks runner.Hooks
	// Obs is the pre-Options spelling of Options.Obs.
	//
	// Deprecated: set Options.Obs. A non-nil value here still wins.
	Obs *obs.Registry
}

// effWorkers/effObs merge the deprecated pass-through fields with the
// embedded Options (deprecated wins when set).
func (s SweepSpec) effWorkers() int {
	if s.Workers != 0 {
		return s.Workers
	}
	return s.Options.Workers
}

func (s SweepSpec) effObs() *obs.Registry {
	if s.Obs != nil {
		return s.Obs
	}
	return s.Options.Obs
}

// JobSpec lowers the sweep to its serializable job description — the one
// type the local runner, the fabric coordinator, its workers and the
// checkpoint store all speak. Two specs that lower to the same JobSpec
// fingerprint compute bit-identical tables.
func (s SweepSpec) JobSpec() runner.JobSpec {
	return runner.JobSpec{
		Schema: runner.JobSpecSchemaVersion,
		Kind:   runner.JobKindFluidSweep,
		Base: runner.Key{
			Scheme: s.Scheme, Params: s.Config.Params,
			K: s.Config.K, P: s.P, Lambda0: s.Config.Lambda0, Rho: s.Rho,
			Theta: s.Theta,
		},
		Dims:     s.Grid.Dims(),
		Seed:     s.Options.Seed,
		Replicas: s.Options.Replicas,
	}
}

// SweepCell is the evaluation of one grid cell. It is the runner's
// CellValue — the exact payload that crosses checkpoint files and the
// fabric wire.
type SweepCell = runner.CellValue

// SweepResult holds the evaluated grid in row-major cell order.
type SweepResult struct {
	Spec  SweepSpec
	Cells []SweepCell
	// Cache reports how the grid's cells collapsed into shared (memory
	// tier) and pre-computed (disk tier) solves.
	Cache runner.CacheStats
}

// applyDim overrides one knob of a solve key, keeping the experiment
// package's error vocabulary over the runner's job-dimension table.
func applyDim(key *runner.Key, name string, v float64) error {
	if err := runner.SetKeyDim(key, name, v); err != nil {
		return fmt.Errorf("experiments: unknown sweep dimension %q (have %s)",
			name, strings.Join(SweepDims, ", "))
	}
	return nil
}

// Sweep evaluates the scheme over every cell of the grid. Results are
// deterministic: cell order, values and errors are independent of the
// worker count — and of whether the cells were computed locally or by
// fabric workers against the same JobSpec.
func Sweep(ctx context.Context, spec SweepSpec) (*SweepResult, error) {
	if err := spec.Config.Validate(); err != nil {
		return nil, err
	}
	job := spec.JobSpec()
	// Reject unknown dimensions before spinning up the pool.
	for _, d := range spec.Grid.Dims() {
		probe := job.Base
		if err := applyDim(&probe, d.Name, d.Values[0]); err != nil {
			return nil, err
		}
	}
	cache := spec.Options.Cache
	if cache == nil {
		cache = runner.NewCache()
		if spec.CacheDir != "" {
			disk, err := diskcache.Open(spec.CacheDir)
			if err != nil {
				return nil, err
			}
			cache = runner.NewDiskCache(disk)
		}
	}
	ob := spec.effObs()
	cache.WithObs(ob)
	var ckpt *runner.Checkpoint
	if spec.CheckpointDir != "" {
		store, err := diskcache.OpenCheckpoint(spec.CheckpointDir)
		if err != nil {
			return nil, err
		}
		store.WithObs(ob)
		ckpt = runner.NewCheckpoint(store, job.Fingerprint())
	}
	cells, err := runner.RunJob(ctx, job, cache, runner.Options{
		Workers: spec.effWorkers(), Hooks: spec.Hooks, Obs: ob,
		Retries: spec.Retries, Checkpoint: ckpt,
	})
	if err != nil {
		return nil, err
	}
	// The sweep completed: its checkpoints have served their purpose.
	_ = ckpt.Clear()
	return &SweepResult{Spec: spec, Cells: cells, Cache: cache.Stats()}, nil
}

// Table renders the sweep with one row per cell: the swept values followed
// by the per-file aggregates.
func (r *SweepResult) Table() *table.Table {
	dims := r.Spec.Grid.Dims()
	names := make([]string, len(dims))
	for i, d := range dims {
		names[i] = d.Name
	}
	cols := append(append([]string{}, names...), "avg online/file", "avg download/file")
	title := fmt.Sprintf("Sweep of %s for %s (K=%d, p=%g, ρ=%g, μ=%g, η=%g, γ=%g",
		strings.Join(names, ","), r.Spec.Scheme, r.Spec.Config.K, r.Spec.P, r.Spec.Rho,
		r.Spec.Config.Mu, r.Spec.Config.Eta, r.Spec.Config.Gamma)
	if r.Spec.Theta != 0 {
		title += fmt.Sprintf(", θ=%g", r.Spec.Theta)
	}
	title += ")"
	tb := table.New(title, cols...)
	for _, c := range r.Cells {
		cells := make([]string, 0, len(cols))
		for _, v := range c.Values {
			cells = append(cells, table.Fmt(v))
		}
		cells = append(cells, table.Fmt(c.AvgOnline), table.Fmt(c.AvgDownload))
		tb.MustAddRow(cells...)
	}
	return tb
}
