package experiments

import (
	"context"
	"fmt"
	"math"
	"strings"

	"mfdl/internal/obs"
	"mfdl/internal/rng"
	"mfdl/internal/runner"
	"mfdl/internal/runner/diskcache"
	"mfdl/internal/scheme"
	"mfdl/internal/table"
)

// SweepDims lists the dimension names Sweep understands: every swept axis
// maps onto one knob of the server–torrent system.
var SweepDims = []string{"p", "rho", "k", "mu", "gamma", "eta", "lambda0", "theta"}

// SweepSpec describes a multi-dimensional parameter study of one scheme:
// a base operating point plus an N-dimensional grid of overrides. Cells
// are independent steady-state solves, so Sweep fans them out over a
// worker pool and memoizes solves that coincide (e.g. sweeping ρ under a
// scheme that ignores it).
type SweepSpec struct {
	// Config is the base operating point; swept dimensions override its
	// fields cell by cell.
	Config Config
	// P is the base file correlation.
	P float64
	// Rho is the base CMFSD allocation ratio.
	Rho float64
	// Theta is the base downloader abort rate θ (0 keeps the paper's
	// closed forms).
	Theta float64
	// Scheme is the evaluated scheme.
	Scheme scheme.Scheme
	// Grid holds the swept dimensions; names must come from SweepDims.
	Grid runner.Grid
	// Workers bounds the pool (<= 0 means all cores).
	Workers int
	// Retries is how many times a panicking cell is re-attempted before
	// failing the sweep (see runner.Options.Retries).
	Retries int
	// CacheDir, when non-empty, backs the solve cache with a persistent
	// cross-process store in that directory: cells already solved by any
	// previous run (or process) are decoded instead of re-solved, and
	// fresh solves are persisted for the next run. Results are
	// byte-identical with or without it.
	CacheDir string
	// CheckpointDir, when non-empty, persists each completed cell to that
	// directory and replays persisted cells on a re-run: a killed sweep
	// resumed with the identical spec emits a byte-identical final table.
	// The checkpoints of a sweep that completes are cleared.
	CheckpointDir string
	// Hooks observe per-cell progress.
	Hooks runner.Hooks
	// Obs, when non-nil, instruments the sweep: the runner pool's cell
	// latency / utilization metrics plus the solve cache's
	// solvecache_* / diskcache_* counters all land in this registry.
	// Results are byte-identical with or without it.
	Obs *obs.Registry
}

// SweepCell is the evaluation of one grid cell.
type SweepCell struct {
	// Values are the swept dimension values, in grid dimension order.
	Values []float64
	// AvgOnline and AvgDownload are the paper's per-file aggregates.
	AvgOnline, AvgDownload float64
}

// SweepResult holds the evaluated grid in row-major cell order.
type SweepResult struct {
	Spec  SweepSpec
	Cells []SweepCell
	// Cache reports how the grid's cells collapsed into shared (memory
	// tier) and pre-computed (disk tier) solves.
	Cache runner.CacheStats
}

// applyDim overrides one knob of a solve key.
func applyDim(key *runner.Key, name string, v float64) error {
	switch name {
	case "p":
		key.P = v
	case "rho":
		key.Rho = v
	case "k":
		key.K = int(math.Round(v))
	case "mu":
		key.Params.Mu = v
	case "gamma":
		key.Params.Gamma = v
	case "eta":
		key.Params.Eta = v
	case "lambda0":
		key.Lambda0 = v
	case "theta":
		key.Theta = v
	default:
		return fmt.Errorf("experiments: unknown sweep dimension %q (have %s)",
			name, strings.Join(SweepDims, ", "))
	}
	return nil
}

// Sweep evaluates the scheme over every cell of the grid. Results are
// deterministic: cell order, values and errors are independent of the
// worker count.
func Sweep(ctx context.Context, spec SweepSpec) (*SweepResult, error) {
	if err := spec.Config.Validate(); err != nil {
		return nil, err
	}
	base := runner.Key{
		Scheme: spec.Scheme, Params: spec.Config.Params,
		K: spec.Config.K, P: spec.P, Lambda0: spec.Config.Lambda0, Rho: spec.Rho,
		Theta: spec.Theta,
	}
	// Reject unknown dimensions before spinning up the pool.
	for _, d := range spec.Grid.Dims() {
		probe := base
		if err := applyDim(&probe, d.Name, d.Values[0]); err != nil {
			return nil, err
		}
	}
	cache := runner.NewCache()
	if spec.CacheDir != "" {
		disk, err := diskcache.Open(spec.CacheDir)
		if err != nil {
			return nil, err
		}
		cache = runner.NewDiskCache(disk)
	}
	cache.WithObs(spec.Obs)
	var ckpt *runner.Checkpoint
	if spec.CheckpointDir != "" {
		store, err := diskcache.OpenCheckpoint(spec.CheckpointDir)
		if err != nil {
			return nil, err
		}
		store.WithObs(spec.Obs)
		ckpt = runner.NewCheckpoint(store, sweepRunKey(base, spec.Grid))
	}
	cells, err := runner.Run(ctx, spec.Grid,
		func(_ context.Context, pt runner.Point, _ *rng.Source) (SweepCell, error) {
			key := base
			for _, d := range spec.Grid.Dims() {
				v, _ := pt.Value(d.Name)
				if err := applyDim(&key, d.Name, v); err != nil {
					return SweepCell{}, err
				}
			}
			res, err := cache.Evaluate(key)
			if err != nil {
				return SweepCell{}, err
			}
			return SweepCell{
				Values:      pt.Values(),
				AvgOnline:   res.AvgOnlinePerFile(),
				AvgDownload: res.AvgDownloadPerFile(),
			}, nil
		}, runner.Options{
			Workers: spec.Workers, Hooks: spec.Hooks, Obs: spec.Obs,
			Retries: spec.Retries, Checkpoint: ckpt,
		})
	if err != nil {
		return nil, err
	}
	// The sweep completed: its checkpoints have served their purpose.
	_ = ckpt.Clear()
	return &SweepResult{Spec: spec, Cells: cells, Cache: cache.Stats()}, nil
}

// sweepRunKey renders everything that determines the sweep's cell values —
// the base solve key plus the exact grid — as the checkpoint run key, so a
// resumed run can only ever replay cells of the identical study. Values
// are encoded as IEEE-754 bits: two grids share a key iff they solve
// bit-identically.
func sweepRunKey(base runner.Key, g runner.Grid) string {
	var sb strings.Builder
	sb.WriteString("sweep ")
	sb.WriteString(base.Fingerprint())
	for _, d := range g.Dims() {
		fmt.Fprintf(&sb, " %s=[", d.Name)
		for i, v := range d.Values {
			if i > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "%016x", math.Float64bits(v))
		}
		sb.WriteByte(']')
	}
	return sb.String()
}

// Table renders the sweep with one row per cell: the swept values followed
// by the per-file aggregates.
func (r *SweepResult) Table() *table.Table {
	dims := r.Spec.Grid.Dims()
	names := make([]string, len(dims))
	for i, d := range dims {
		names[i] = d.Name
	}
	cols := append(append([]string{}, names...), "avg online/file", "avg download/file")
	title := fmt.Sprintf("Sweep of %s for %s (K=%d, p=%g, ρ=%g, μ=%g, η=%g, γ=%g",
		strings.Join(names, ","), r.Spec.Scheme, r.Spec.Config.K, r.Spec.P, r.Spec.Rho,
		r.Spec.Config.Mu, r.Spec.Config.Eta, r.Spec.Config.Gamma)
	if r.Spec.Theta != 0 {
		title += fmt.Sprintf(", θ=%g", r.Spec.Theta)
	}
	title += ")"
	tb := table.New(title, cols...)
	for _, c := range r.Cells {
		cells := make([]string, 0, len(cols))
		for _, v := range c.Values {
			cells = append(cells, table.Fmt(v))
		}
		cells = append(cells, table.Fmt(c.AvgOnline), table.Fmt(c.AvgDownload))
		tb.MustAddRow(cells...)
	}
	return tb
}
