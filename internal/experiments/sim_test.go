package experiments

import (
	"context"
	"math"
	"strings"
	"testing"

	"mfdl/internal/adapt"
	"mfdl/internal/swarm"
)

func fastSettings() SimSettings {
	s := DefaultSimSettings
	s.Horizon = 2500
	s.Warmup = 500
	return s
}

func TestSimValidateAgreement(t *testing.T) {
	res, err := SimValidate(context.Background(), fastSettings(), []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 { // MTSD, MTCD, MFCD, CMFSD ρ∈{0,0.5,1}
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Completed < 100 {
			t.Fatalf("%s: only %d completions", row.Scheme, row.Completed)
		}
		if row.RelErr > 0.2 {
			t.Fatalf("%s p=%v ρ=%v: fluid %v vs sim %v (err %.1f%%)",
				row.Scheme, row.P, row.Rho, row.Fluid, row.Simulated, 100*row.RelErr)
		}
	}
	out := res.Table().String()
	if !strings.Contains(out, "MTSD") || !strings.Contains(out, "CMFSD") {
		t.Fatalf("table incomplete:\n%s", out)
	}
}

func TestAdaptSweepMonotoneRho(t *testing.T) {
	ac := adapt.Config{
		Lower: -0.05, Upper: 0.05, StepUp: 0.2, StepDown: 0.1,
		Period: 5, InitialRho: 0, Consecutive: 2,
	}
	res, err := AdaptSweep(context.Background(), fastSettings(), 0.9, ac, []float64{0, 0.8})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	clean, cheated := res.Rows[0], res.Rows[1]
	if cheated.MeanFinalRho <= clean.MeanFinalRho {
		t.Fatalf("cheating should raise ρ: clean %v, cheated %v",
			clean.MeanFinalRho, cheated.MeanFinalRho)
	}
	if !strings.Contains(res.Table().String(), "cheater fraction") {
		t.Fatal("table header wrong")
	}
}

func TestSwarmCompareOrdering(t *testing.T) {
	base := swarm.DefaultConfig
	base.Horizon = 2000
	base.Warmup = 300
	res, err := SwarmCompare(context.Background(), base, []float64{0, 1}, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	var mfcd, rho0 float64
	for _, row := range res.Rows {
		if row.Completed < 50 {
			t.Fatalf("%s thin: %d", row.Scheme, row.Completed)
		}
		if row.Scheme == "MFCD" {
			mfcd = row.OnlinePerFile
		}
		if row.Scheme == "CMFSD" && row.Rho == 0 {
			rho0 = row.OnlinePerFile
		}
	}
	if math.IsNaN(mfcd) || rho0 >= mfcd {
		t.Fatalf("chunk-level CMFSD ρ=0 (%v) should beat MFCD (%v)", rho0, mfcd)
	}
	if !strings.Contains(res.Table().String(), "Chunk-level") {
		t.Fatal("table title wrong")
	}
}
