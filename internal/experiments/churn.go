package experiments

import (
	"context"
	"fmt"
	"math"

	"mfdl/internal/eventsim"
	"mfdl/internal/faults"
	"mfdl/internal/replica"
	"mfdl/internal/runner"
	"mfdl/internal/scheme"
	"mfdl/internal/sim"
	"mfdl/internal/stats"
	"mfdl/internal/table"
)

// ChurnRow compares one scheme's mean download time per file under abort
// rate θ: the fluid prediction (the θ-extended model) against the
// flow-level simulation with a matching fault plan.
type ChurnRow struct {
	Scheme string
	Theta  float64
	Rho    float64 // CMFSD only; NaN otherwise
	Fluid  float64
	// Simulated is the across-replica mean download time per file; aborted
	// users contribute their partial times (Little's law, like the fluid
	// θ·x term) but never the completion counts.
	Simulated float64
	SimCI95   float64
	RelErr    float64
	Completed int
	Aborted   int
}

// SeedQuitRow tracks CMFSD degradation as virtual seeds depart: the
// quit-free fluid prediction against simulation with seed-quit faults.
type SeedQuitRow struct {
	QuitRate float64
	// Ideal is the fluid CMFSD prediction with no departures (the same
	// value on every row — the baseline the simulated column drifts from).
	Ideal     float64
	Simulated float64
	SimCI95   float64
	Completed int
	SeedQuits int
}

// ChurnSweepResult is the fault-injection experiment output: the abort
// axis over all schemes, plus the CMFSD virtual-seed-departure axis.
type ChurnSweepResult struct {
	Settings  SimSettings
	P         float64
	ChaosSeed uint64
	Rows      []ChurnRow
	QuitRows  []SeedQuitRow
}

// churnSpec is one planned simulation cell of either axis.
type churnSpec struct {
	scheme    string
	theta     float64
	rho       float64 // NaN for the non-CMFSD schemes
	fluid     float64
	simScheme scheme.SimScheme
	quitAxis  bool
	quitRate  float64
}

// ChurnSweep measures resilience to churn. For every abort rate θ in
// thetas it runs MTSD, MTCD and CMFSD (ρ=0.5) through the flow-level
// simulator with a deterministic fault plan derived from chaosSeed, and
// compares the mean download time per file against the θ-extended fluid
// model. For every rate in quitRates it runs CMFSD with virtual-seed
// departures and reports the drift from the quit-free fluid ideal. All
// cells and replicas fan out over one worker pool; the same chaosSeed
// yields a byte-identical result at any worker count. When Settings.Obs
// is non-nil the aggregate injected-fault counts are recorded on the
// faults_* counters. Canceling ctx aborts the remaining simulations.
//
// The fluid θ-extension keeps the Qiu–Srikant min-flux service, which is
// memoryless: a downloader's residence under abort hazard θ is
// 1/(θ + 1/T). Real downloads are a fixed unit of data, so the simulated
// residence is the larger (1 − e^(−θT))/θ — the fluid column drifts below
// the simulation as θ·T grows. At mild churn (θ·T ≲ 0.1) the two agree to
// within the usual finite-size error.
func ChurnSweep(ctx context.Context, set SimSettings, p float64, chaosSeed uint64, thetas, quitRates []float64) (*ChurnSweepResult, error) {
	res := &ChurnSweepResult{Settings: set, P: p, ChaosSeed: chaosSeed}
	cache := runner.NewCache()
	predict := func(sc scheme.Scheme, rho, theta float64) (float64, error) {
		r, err := cache.Evaluate(runner.Key{
			Scheme: sc, Params: set.Params,
			K: set.K, P: p, Lambda0: set.Lambda0, Rho: rho, Theta: theta,
		})
		if err != nil {
			return 0, err
		}
		return r.AvgDownloadPerFile(), nil
	}
	var specs []churnSpec
	for _, th := range thetas {
		plan := []struct {
			scheme    scheme.Scheme
			rho       float64
			simScheme scheme.SimScheme
		}{
			{scheme.MTSD, math.NaN(), scheme.SimMTSD},
			{scheme.MTCD, math.NaN(), scheme.SimMTCD},
			{scheme.CMFSD, 0.5, scheme.SimCMFSD},
		}
		for _, pl := range plan {
			rho := pl.rho
			if math.IsNaN(rho) {
				rho = 0
			}
			fluidVal, err := predict(pl.scheme, rho, th)
			if err != nil {
				return nil, err
			}
			specs = append(specs, churnSpec{
				scheme: pl.simScheme.String(), theta: th, rho: pl.rho,
				fluid: fluidVal, simScheme: pl.simScheme,
			})
		}
	}
	if len(quitRates) > 0 {
		ideal, err := predict(scheme.CMFSD, 0.5, 0)
		if err != nil {
			return nil, err
		}
		for _, q := range quitRates {
			specs = append(specs, churnSpec{
				scheme: scheme.SimCMFSD.String(), rho: 0.5, fluid: ideal,
				simScheme: scheme.SimCMFSD, quitAxis: true, quitRate: q,
			})
		}
	}
	if len(specs) == 0 {
		return res, nil
	}
	cells := make([]sim.JobCell, len(specs))
	for i, sp := range specs {
		fc := faults.Config{Seed: chaosSeed}
		if sp.quitAxis {
			fc.SeedQuitRate = sp.quitRate
		} else {
			fc.AbortRate = sp.theta
		}
		sc := eventsim.Config{
			Params: set.Params, K: set.K, Lambda0: set.Lambda0, P: p,
			Horizon: set.Horizon, Warmup: set.Warmup,
			Faults: fc,
		}
		if !math.IsNaN(sp.rho) {
			sc.Rho = sp.rho
		}
		cells[i] = sim.JobCell{Scheme: sp.simScheme, Config: sim.Config{Flow: &sc}}
	}
	// The fault plan rides inside the configs (Faults.Seed), so it is part
	// of every cell's job and sample-store identity: a different chaos seed
	// never replays another seed's samples.
	spec, err := sim.NewJobSpec(cells, set.effSeed(), set.effReplicas())
	if err != nil {
		return nil, err
	}
	aggs, err := set.runSimJob(ctx, spec, replica.DownloadPerFile)
	if err != nil {
		return nil, err
	}
	var aborts, quits uint64
	for i, agg := range aggs {
		sp := specs[i]
		simulated := agg.Mean(replica.DownloadPerFile)
		aborts += uint64(agg.Count(replica.Aborted))
		quits += uint64(agg.Count(replica.SeedQuits))
		if sp.quitAxis {
			res.QuitRows = append(res.QuitRows, SeedQuitRow{
				QuitRate:  sp.quitRate,
				Ideal:     sp.fluid,
				Simulated: simulated,
				SimCI95:   agg.CI95(replica.DownloadPerFile),
				Completed: int(agg.Count(replica.Completed)),
				SeedQuits: int(agg.Count(replica.SeedQuits)),
			})
			continue
		}
		res.Rows = append(res.Rows, ChurnRow{
			Scheme: sp.scheme, Theta: sp.theta, Rho: sp.rho,
			Fluid:     sp.fluid,
			Simulated: simulated,
			SimCI95:   agg.CI95(replica.DownloadPerFile),
			RelErr:    stats.RelErr(simulated, sp.fluid, 1),
			Completed: int(agg.Count(replica.Completed)),
			Aborted:   int(agg.Count(replica.Aborted)),
		})
	}
	set.effObs().Counter("faults_aborts_total").Add(aborts)
	set.effObs().Counter("faults_seed_quits_total").Add(quits)
	return res, nil
}

// Table renders the abort axis: fluid vs simulated mean download time per
// file as θ grows. Replicated settings add a ±95% column.
func (r *ChurnSweepResult) Table() *table.Table {
	cols := []string{"scheme", "theta", "rho", "fluid", "simulated", "rel err", "completed", "aborted"}
	if r.Settings.replicated() {
		cols = []string{"scheme", "theta", "rho", "fluid", "simulated", "±95%", "rel err", "completed", "aborted"}
	}
	tb := table.New(
		fmt.Sprintf("Churn: mean download time per file vs abort rate θ (p=%.2f, chaos seed %d)",
			r.P, r.ChaosSeed),
		cols...)
	for _, row := range r.Rows {
		rho := "-"
		if !math.IsNaN(row.Rho) {
			rho = fmt.Sprintf("%.1f", row.Rho)
		}
		cells := []string{row.Scheme, table.Fmt(row.Theta), rho,
			table.Fmt(row.Fluid), table.Fmt(row.Simulated)}
		if r.Settings.replicated() {
			cells = append(cells, ciCell(row.SimCI95))
		}
		cells = append(cells, fmt.Sprintf("%.1f%%", 100*row.RelErr),
			fmt.Sprintf("%d", row.Completed), fmt.Sprintf("%d", row.Aborted))
		tb.MustAddRow(cells...)
	}
	return tb
}

// QuitTable renders the virtual-seed-departure axis.
func (r *ChurnSweepResult) QuitTable() *table.Table {
	cols := []string{"quit rate", "fluid ideal", "simulated", "completed", "seed quits"}
	if r.Settings.replicated() {
		cols = []string{"quit rate", "fluid ideal", "simulated", "±95%", "completed", "seed quits"}
	}
	tb := table.New(
		fmt.Sprintf("Churn: CMFSD (ρ=0.5) download time per file vs virtual-seed departure (p=%.2f, chaos seed %d)",
			r.P, r.ChaosSeed),
		cols...)
	for _, row := range r.QuitRows {
		cells := []string{table.Fmt(row.QuitRate),
			table.Fmt(row.Ideal), table.Fmt(row.Simulated)}
		if r.Settings.replicated() {
			cells = append(cells, ciCell(row.SimCI95))
		}
		cells = append(cells, fmt.Sprintf("%d", row.Completed), fmt.Sprintf("%d", row.SeedQuits))
		tb.MustAddRow(cells...)
	}
	return tb
}

// Tables returns the rendered axes that have rows, abort axis first.
func (r *ChurnSweepResult) Tables() []*table.Table {
	var out []*table.Table
	if len(r.Rows) > 0 {
		out = append(out, r.Table())
	}
	if len(r.QuitRows) > 0 {
		out = append(out, r.QuitTable())
	}
	return out
}
