package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestReproducibleBySeed(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestDistinctSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d/100 identical draws from different seeds", same)
	}
}

func TestDistinctStreamsDiffer(t *testing.T) {
	a := NewStream(7, 1)
	b := NewStream(7, 2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d/100 identical draws from different streams", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(9)
	child := parent.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d/100 identical draws from split streams", same)
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(4)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(5)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnUniform(t *testing.T) {
	s := New(6)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[s.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("bucket %d count %d, want ~%v", i, c, want)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestExpMoments(t *testing.T) {
	s := New(8)
	const n = 200000
	lambda := 0.05
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.Exp(lambda)
		if v < 0 {
			t.Fatalf("negative exponential variate %v", v)
		}
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	if math.Abs(mean-1/lambda) > 0.3 {
		t.Fatalf("exp mean %v, want ~%v", mean, 1/lambda)
	}
	variance := sumSq/n - mean*mean
	if math.Abs(variance-1/(lambda*lambda)) > 0.05/(lambda*lambda) {
		t.Fatalf("exp variance %v, want ~%v", variance, 1/(lambda*lambda))
	}
}

func TestExpPanicsOnNonPositiveRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exp(0) did not panic")
		}
	}()
	New(1).Exp(0)
}

func TestPoissonMoments(t *testing.T) {
	s := New(10)
	for _, mean := range []float64{0.5, 3, 12, 80} {
		const n = 100000
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += float64(s.Poisson(mean))
		}
		got := sum / n
		if math.Abs(got-mean) > 0.05*mean+0.05 {
			t.Fatalf("Poisson(%v) mean %v", mean, got)
		}
	}
}

func TestPoissonZeroMean(t *testing.T) {
	s := New(11)
	if v := s.Poisson(0); v != 0 {
		t.Fatalf("Poisson(0) = %d, want 0", v)
	}
	if v := s.Poisson(-1); v != 0 {
		t.Fatalf("Poisson(-1) = %d, want 0", v)
	}
}

func TestBinomialMoments(t *testing.T) {
	s := New(12)
	for _, tc := range []struct {
		n int
		p float64
	}{{10, 0.3}, {50, 0.9}, {1000, 0.02}, {500, 0.5}} {
		const draws = 50000
		sum := 0.0
		for i := 0; i < draws; i++ {
			v := s.Binomial(tc.n, tc.p)
			if v < 0 || v > tc.n {
				t.Fatalf("Binomial(%d,%v) = %d out of range", tc.n, tc.p, v)
			}
			sum += float64(v)
		}
		mean := sum / draws
		want := float64(tc.n) * tc.p
		if math.Abs(mean-want) > 0.05*want+0.1 {
			t.Fatalf("Binomial(%d,%v) mean %v, want ~%v", tc.n, tc.p, mean, want)
		}
	}
}

func TestBinomialEdges(t *testing.T) {
	s := New(13)
	if v := s.Binomial(10, 0); v != 0 {
		t.Fatalf("Binomial(10,0) = %d", v)
	}
	if v := s.Binomial(10, 1); v != 10 {
		t.Fatalf("Binomial(10,1) = %d", v)
	}
	if v := s.Binomial(0, 0.5); v != 0 {
		t.Fatalf("Binomial(0,0.5) = %d", v)
	}
}

func TestNormMoments(t *testing.T) {
	s := New(14)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.Norm()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	if math.Abs(mean) > 0.01 {
		t.Fatalf("normal mean %v, want ~0", mean)
	}
	variance := sumSq/n - mean*mean
	if math.Abs(variance-1) > 0.02 {
		t.Fatalf("normal variance %v, want ~1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(15)
	f := func(nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := s.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	s := New(16)
	vals := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range vals {
		sum += v
	}
	s.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	got := 0
	for _, v := range vals {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed contents: sum %d, want %d", got, sum)
	}
}

func TestBernoulliFrequency(t *testing.T) {
	s := New(17)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if s.Bernoulli(0.3) {
			hits++
		}
	}
	freq := float64(hits) / n
	if math.Abs(freq-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) frequency %v", freq)
	}
}

func TestZeroValueUsable(t *testing.T) {
	var s Source
	// Must not hang or panic; determinism across zero values is documented.
	_ = s.Uint64()
	_ = s.Float64()
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}

func BenchmarkExp(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Exp(0.05)
	}
}

func TestPermIntoMatchesPerm(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 64, 1000} {
		a := New(42)
		b := New(42)
		var buf []int
		for round := 0; round < 3; round++ {
			want := a.Perm(n)
			buf = b.PermInto(buf, n)
			if len(buf) != len(want) {
				t.Fatalf("n=%d round=%d: length %d, want %d", n, round, len(buf), len(want))
			}
			for i := range want {
				if buf[i] != want[i] {
					t.Fatalf("n=%d round=%d: PermInto[%d] = %d, Perm[%d] = %d", n, round, i, buf[i], i, want[i])
				}
			}
		}
		// The two sources must remain in lockstep: identical draw counts.
		if a.Uint64() != b.Uint64() {
			t.Fatalf("n=%d: draw sequences diverged after permutations", n)
		}
	}
}

func TestPermIntoReusesBuffer(t *testing.T) {
	s := New(7)
	buf := make([]int, 0, 50)
	got := s.PermInto(buf, 50)
	if &got[0] != &buf[:1][0] {
		t.Fatal("PermInto allocated despite sufficient capacity")
	}
}
