// Package rng provides a small, deterministic, seedable pseudo-random
// number generator together with the variate generators the simulators in
// this repository need (uniform, exponential, Poisson, binomial, normal).
//
// The generator is PCG-XSH-RR 64/32 (O'Neill, 2014): a 64-bit linear
// congruential state with an output permutation. It is hand-rolled here so
// that experiment results are bit-reproducible across Go releases (the
// stdlib math/rand algorithm is not guaranteed stable) and so that streams
// can be split deterministically for independent simulation entities.
package rng

import "math"

const (
	pcgMultiplier = 6364136223846793005
	pcgIncrement  = 1442695040888963407
)

// Source is a deterministic PCG-XSH-RR 64/32 generator. The zero value is
// usable but every zero-value Source produces the same stream; use New or
// Seed for distinct streams.
type Source struct {
	state uint64
	inc   uint64
}

// New returns a Source seeded with seed on the default stream.
func New(seed uint64) *Source {
	s := &Source{}
	s.Seed(seed)
	return s
}

// NewStream returns a Source seeded with seed on a specific stream. Distinct
// stream values yield statistically independent sequences for the same seed.
func NewStream(seed, stream uint64) *Source {
	s := &Source{inc: (stream << 1) | 1}
	s.state = 0
	s.next()
	s.state += seed
	s.next()
	return s
}

// Seed resets the generator to a state derived from seed on the default
// stream.
func (s *Source) Seed(seed uint64) {
	*s = *NewStream(seed, pcgIncrement>>1)
}

// Split derives a new, deterministically-related but statistically
// independent Source from s. The parent stream advances by one draw.
func (s *Source) Split() *Source {
	return NewStream(s.next64(), s.next()|1)
}

// next advances the state and returns 32 permuted bits.
func (s *Source) next() uint64 {
	old := s.state
	s.state = old*pcgMultiplier + s.inc
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint32(old >> 59)
	return uint64(xorshifted>>rot | xorshifted<<((-rot)&31))
}

// next64 returns 64 random bits by combining two 32-bit outputs.
func (s *Source) next64() uint64 {
	return s.next()<<32 | s.next()
}

// Uint64 returns a uniformly distributed 64-bit value.
func (s *Source) Uint64() uint64 { return s.next64() }

// Uint32 returns a uniformly distributed 32-bit value.
func (s *Source) Uint32() uint32 { return uint32(s.next()) }

// Float64 returns a uniform variate in [0, 1) with 53 bits of precision.
func (s *Source) Float64() float64 {
	return float64(s.next64()>>11) / (1 << 53)
}

// Intn returns a uniform variate in [0, n). It panics if n <= 0.
// Lemire's nearly-divisionless bounded rejection method.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive bound")
	}
	bound := uint64(n)
	for {
		v := s.next64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aHi*bLo + (aLo*bLo)>>32
	w1 := t & mask
	w2 := t >> 32
	w1 += aLo * bHi
	hi = aHi*bHi + w2 + (w1 >> 32)
	lo = a * b
	return hi, lo
}

// Perm returns a uniformly random permutation of [0, n) (Fisher–Yates).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// PermInto fills dst with a pseudo-random permutation of [0, n) and
// returns it, growing dst only when its capacity is below n. The draw
// sequence is identical to Perm's, so the two are interchangeable in
// deterministic simulations; PermInto exists for hot paths that must not
// allocate per call.
func (s *Source) PermInto(dst []int, n int) []int {
	if cap(dst) < n {
		dst = make([]int, n)
	}
	dst = dst[:n]
	for i := range dst {
		dst[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		dst[i], dst[j] = dst[j], dst[i]
	}
	return dst
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// Exp returns an exponential variate with rate lambda (mean 1/lambda).
// It panics if lambda <= 0.
func (s *Source) Exp(lambda float64) float64 {
	if lambda <= 0 {
		panic("rng: Exp with non-positive rate")
	}
	for {
		u := s.Float64()
		if u > 0 {
			return -math.Log(u) / lambda
		}
	}
}

// Bernoulli returns true with probability p (clamped to [0, 1]).
func (s *Source) Bernoulli(p float64) bool {
	return s.Float64() < p
}

// Poisson returns a Poisson variate with the given mean. For small means it
// uses Knuth's product method; for large means the PTRS transformed
// rejection method would be usual, but since every caller in this repository
// uses small means the simpler normal approximation with continuity
// correction is used beyond 30 (error far below the simulators' noise).
func (s *Source) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean < 30 {
		limit := math.Exp(-mean)
		prod := s.Float64()
		n := 0
		for prod >= limit {
			prod *= s.Float64()
			n++
		}
		return n
	}
	v := mean + math.Sqrt(mean)*s.Norm() + 0.5
	if v < 0 {
		return 0
	}
	return int(v)
}

// Binomial returns a Binomial(n, p) variate by inversion for small n and
// by the normal approximation for large n·p·(1−p).
func (s *Source) Binomial(n int, p float64) int {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	if n <= 64 {
		k := 0
		for i := 0; i < n; i++ {
			if s.Float64() < p {
				k++
			}
		}
		return k
	}
	mean := float64(n) * p
	sd := math.Sqrt(mean * (1 - p))
	v := math.Round(mean + sd*s.Norm())
	if v < 0 {
		return 0
	}
	if v > float64(n) {
		return n
	}
	return int(v)
}

// Norm returns a standard normal variate (Marsaglia polar method).
func (s *Source) Norm() float64 {
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q > 0 && q < 1 {
			return u * math.Sqrt(-2*math.Log(q)/q)
		}
	}
}
