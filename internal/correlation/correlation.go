// Package correlation implements the file-correlation model of Section 4.1
// of the paper: a server publishes K files; a visiting user requests each
// file independently with probability p, so users requesting exactly i of
// the K files arrive at rate
//
//	λ_i = λ₀·C(K,i)·pⁱ·(1−p)^(K−i),   i = 1..K,
//
// and, for any particular torrent, the entry rate of class-i peers (peers
// whose user requested i files including this one) is
//
//	λ_j^i = λ₀·C(K−1,i−1)·pⁱ·(1−p)^(K−i).
//
// Users with i = 0 never enter the system and are excluded from all rates.
package correlation

import (
	"errors"
	"fmt"

	"mfdl/internal/stats"
)

// Model is a binomial file-correlation model.
type Model struct {
	// K is the number of files published in the system.
	K int
	// P is the per-file request probability (the "file correlation").
	P float64
	// Lambda0 is the web-server visiting rate λ₀.
	Lambda0 float64
}

// New validates and returns a correlation model.
func New(k int, p, lambda0 float64) (*Model, error) {
	m := &Model{K: k, P: p, Lambda0: lambda0}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// Validate checks the model parameters.
func (m *Model) Validate() error {
	if m.K < 1 {
		return errors.New("correlation: K must be >= 1")
	}
	if m.P < 0 || m.P > 1 {
		return fmt.Errorf("correlation: p = %v outside [0,1]", m.P)
	}
	if m.Lambda0 <= 0 {
		return fmt.Errorf("correlation: λ₀ = %v must be positive", m.Lambda0)
	}
	return nil
}

// UserRate returns λ_i, the arrival rate of users requesting exactly i
// files, for i in 1..K (0 outside that range).
func (m *Model) UserRate(i int) float64 {
	if i < 1 || i > m.K {
		return 0
	}
	return m.Lambda0 * stats.BinomialPMF(m.K, i, m.P)
}

// UserRates returns [λ_1, ..., λ_K] indexed from 0 (class i at index i-1).
func (m *Model) UserRates() []float64 {
	out := make([]float64, m.K)
	for i := 1; i <= m.K; i++ {
		out[i-1] = m.UserRate(i)
	}
	return out
}

// TorrentClassRate returns λ_j^i, the entry rate of class-i peers into one
// particular torrent, for i in 1..K (0 outside that range). By symmetry it
// is the same for every torrent j.
func (m *Model) TorrentClassRate(i int) float64 {
	if i < 1 || i > m.K {
		return 0
	}
	// λ₀·C(K−1,i−1)·pⁱ·(1−p)^(K−i) = λ_i · i / K  (each class-i user joins
	// i of the K torrents chosen uniformly).
	return m.UserRate(i) * float64(i) / float64(m.K)
}

// TorrentClassRates returns [λ_j^1, ..., λ_j^K] indexed from 0.
func (m *Model) TorrentClassRates() []float64 {
	out := make([]float64, m.K)
	for i := 1; i <= m.K; i++ {
		out[i-1] = m.TorrentClassRate(i)
	}
	return out
}

// TotalUserRate returns Σ_{i≥1} λ_i = λ₀·(1−(1−p)^K), the rate of users who
// request at least one file.
func (m *Model) TotalUserRate() float64 {
	s := 0.0
	for i := 1; i <= m.K; i++ {
		s += m.UserRate(i)
	}
	return s
}

// TotalFileRate returns Σ_i i·λ_i = λ₀·K·p, the aggregate rate at which
// file requests enter the system.
func (m *Model) TotalFileRate() float64 {
	s := 0.0
	for i := 1; i <= m.K; i++ {
		s += float64(i) * m.UserRate(i)
	}
	return s
}

// MeanFilesPerUser returns E[i | i ≥ 1] = K·p / (1−(1−p)^K).
func (m *Model) MeanFilesPerUser() float64 {
	tot := m.TotalUserRate()
	if tot == 0 {
		return 0
	}
	return m.TotalFileRate() / tot
}
