package correlation

import (
	"math"
	"testing"
	"testing/quick"
)

func mustNew(t *testing.T, k int, p, l0 float64) *Model {
	t.Helper()
	m, err := New(k, p, l0)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestValidation(t *testing.T) {
	if _, err := New(0, 0.5, 1); err == nil {
		t.Fatal("K=0 accepted")
	}
	if _, err := New(10, -0.1, 1); err == nil {
		t.Fatal("p<0 accepted")
	}
	if _, err := New(10, 1.1, 1); err == nil {
		t.Fatal("p>1 accepted")
	}
	if _, err := New(10, 0.5, 0); err == nil {
		t.Fatal("λ₀=0 accepted")
	}
	if _, err := New(10, 0.5, 1); err != nil {
		t.Fatal("valid model rejected")
	}
}

func TestUserRateOutOfRange(t *testing.T) {
	m := mustNew(t, 5, 0.5, 1)
	if m.UserRate(0) != 0 || m.UserRate(6) != 0 || m.UserRate(-1) != 0 {
		t.Fatal("out-of-range class rate not 0")
	}
}

func TestUserRatesSumAndMass(t *testing.T) {
	m := mustNew(t, 10, 0.3, 2)
	// Σλ_i = λ₀(1 − (1−p)^K).
	want := 2 * (1 - math.Pow(0.7, 10))
	if got := m.TotalUserRate(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("total user rate %v, want %v", got, want)
	}
	// Total file rate = λ₀·K·p.
	if got := m.TotalFileRate(); math.Abs(got-2*10*0.3) > 1e-9 {
		t.Fatalf("total file rate %v, want %v", got, 2*10*0.3)
	}
}

func TestExtremes(t *testing.T) {
	// p = 1: every user requests all K files.
	m := mustNew(t, 10, 1, 1)
	if got := m.UserRate(10); math.Abs(got-1) > 1e-12 {
		t.Fatalf("p=1 class-K rate %v, want 1", got)
	}
	for i := 1; i < 10; i++ {
		if m.UserRate(i) != 0 {
			t.Fatalf("p=1 class-%d rate nonzero", i)
		}
	}
	// p = 0: nobody requests anything.
	m0 := mustNew(t, 10, 0, 1)
	if m0.TotalUserRate() != 0 {
		t.Fatal("p=0 should give zero arrivals")
	}
	if m0.MeanFilesPerUser() != 0 {
		t.Fatal("p=0 mean files per user should be 0")
	}
}

func TestTorrentClassRateIdentity(t *testing.T) {
	// λ_j^i must equal λ₀·C(K−1,i−1)·pⁱ·(1−p)^{K−i}; check against the
	// direct combinatorial formula.
	m := mustNew(t, 10, 0.4, 3)
	choose := func(n, k int) float64 {
		c := 1.0
		for i := 0; i < k; i++ {
			c = c * float64(n-i) / float64(i+1)
		}
		return c
	}
	for i := 1; i <= 10; i++ {
		want := 3 * choose(9, i-1) * math.Pow(0.4, float64(i)) * math.Pow(0.6, float64(10-i))
		if got := m.TorrentClassRate(i); math.Abs(got-want) > 1e-12 {
			t.Fatalf("λ_j^%d = %v, want %v", i, got, want)
		}
	}
}

func TestTorrentRatesBalanceFileRate(t *testing.T) {
	// K torrents, each receiving Σ_i λ_j^i peers, must together receive
	// the total file request rate λ₀·K·p.
	f := func(pRaw uint8, kRaw uint8) bool {
		p := float64(pRaw) / 255
		k := int(kRaw%15) + 1
		m, err := New(k, p, 1.5)
		if err != nil {
			return false
		}
		perTorrent := 0.0
		for i := 1; i <= k; i++ {
			perTorrent += m.TorrentClassRate(i)
		}
		return math.Abs(float64(k)*perTorrent-m.TotalFileRate()) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLambda0Linearity(t *testing.T) {
	f := func(pRaw uint8) bool {
		p := float64(pRaw) / 255
		a, err1 := New(10, p, 1)
		b, err2 := New(10, p, 7)
		if err1 != nil || err2 != nil {
			return false
		}
		for i := 1; i <= 10; i++ {
			if math.Abs(b.UserRate(i)-7*a.UserRate(i)) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeanFilesPerUser(t *testing.T) {
	m := mustNew(t, 10, 1, 1)
	if got := m.MeanFilesPerUser(); math.Abs(got-10) > 1e-9 {
		t.Fatalf("mean files per user at p=1: %v, want 10", got)
	}
	// Small p: conditional mean approaches 1.
	mSmall := mustNew(t, 10, 1e-6, 1)
	if got := mSmall.MeanFilesPerUser(); math.Abs(got-1) > 1e-4 {
		t.Fatalf("mean files per user at p→0: %v, want ~1", got)
	}
}

func TestRateSlicesMatchScalars(t *testing.T) {
	m := mustNew(t, 8, 0.25, 2)
	ur := m.UserRates()
	tr := m.TorrentClassRates()
	if len(ur) != 8 || len(tr) != 8 {
		t.Fatal("rate slice lengths wrong")
	}
	for i := 1; i <= 8; i++ {
		if ur[i-1] != m.UserRate(i) || tr[i-1] != m.TorrentClassRate(i) {
			t.Fatal("slice/scalar mismatch")
		}
	}
}
