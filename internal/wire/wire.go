// Package wire implements the BitTorrent peer wire protocol (BEP-3): the
// 68-byte handshake and the length-prefixed peer messages (choke, unchoke,
// interested, not interested, have, bitfield, request, piece, cancel).
// Together with internal/metainfo and internal/tracker it completes the
// protocol stack of the system the paper analyzes; internal/client uses it
// to move real multi-file torrents between in-process peers.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// protocolString is the BEP-3 protocol identifier.
const protocolString = "BitTorrent protocol"

// HandshakeLen is the fixed handshake size.
const HandshakeLen = 1 + len(protocolString) + 8 + 20 + 20

// Handshake is the connection preamble.
type Handshake struct {
	InfoHash [20]byte
	PeerID   [20]byte
}

// WriteHandshake sends the handshake.
func WriteHandshake(w io.Writer, h Handshake) error {
	buf := make([]byte, 0, HandshakeLen)
	buf = append(buf, byte(len(protocolString)))
	buf = append(buf, protocolString...)
	buf = append(buf, make([]byte, 8)...) // reserved
	buf = append(buf, h.InfoHash[:]...)
	buf = append(buf, h.PeerID[:]...)
	_, err := w.Write(buf)
	return err
}

// ReadHandshake reads and validates a handshake.
func ReadHandshake(r io.Reader) (Handshake, error) {
	var h Handshake
	buf := make([]byte, HandshakeLen)
	if _, err := io.ReadFull(r, buf); err != nil {
		return h, fmt.Errorf("wire: handshake read: %w", err)
	}
	if int(buf[0]) != len(protocolString) || string(buf[1:1+len(protocolString)]) != protocolString {
		return h, errors.New("wire: not a BitTorrent handshake")
	}
	copy(h.InfoHash[:], buf[1+len(protocolString)+8:])
	copy(h.PeerID[:], buf[1+len(protocolString)+8+20:])
	return h, nil
}

// MessageType identifies a peer message.
type MessageType uint8

// BEP-3 message ids.
const (
	MsgChoke         MessageType = 0
	MsgUnchoke       MessageType = 1
	MsgInterested    MessageType = 2
	MsgNotInterested MessageType = 3
	MsgHave          MessageType = 4
	MsgBitfield      MessageType = 5
	MsgRequest       MessageType = 6
	MsgPiece         MessageType = 7
	MsgCancel        MessageType = 8
)

// String implements fmt.Stringer.
func (t MessageType) String() string {
	names := []string{"choke", "unchoke", "interested", "not-interested",
		"have", "bitfield", "request", "piece", "cancel"}
	if int(t) < len(names) {
		return names[t]
	}
	return fmt.Sprintf("msg(%d)", uint8(t))
}

// Message is one decoded peer message. KeepAlive is represented by a nil
// *Message from ReadMessage.
type Message struct {
	Type MessageType
	// Index is the piece index (have, request, piece, cancel).
	Index uint32
	// Begin is the block offset within the piece (request, piece, cancel).
	Begin uint32
	// Length is the requested block length (request, cancel).
	Length uint32
	// Payload is the bitfield bytes (bitfield) or block data (piece).
	Payload []byte
}

// MaxMessageSize bounds accepted messages (1 MiB covers any sane piece).
const MaxMessageSize = 1 << 20

// WriteMessage encodes and sends msg; a nil msg sends a keep-alive.
func WriteMessage(w io.Writer, msg *Message) error {
	if msg == nil {
		return binary.Write(w, binary.BigEndian, uint32(0))
	}
	var body []byte
	switch msg.Type {
	case MsgChoke, MsgUnchoke, MsgInterested, MsgNotInterested:
		body = []byte{byte(msg.Type)}
	case MsgHave:
		body = make([]byte, 5)
		body[0] = byte(msg.Type)
		binary.BigEndian.PutUint32(body[1:], msg.Index)
	case MsgBitfield:
		body = append([]byte{byte(msg.Type)}, msg.Payload...)
	case MsgRequest, MsgCancel:
		body = make([]byte, 13)
		body[0] = byte(msg.Type)
		binary.BigEndian.PutUint32(body[1:], msg.Index)
		binary.BigEndian.PutUint32(body[5:], msg.Begin)
		binary.BigEndian.PutUint32(body[9:], msg.Length)
	case MsgPiece:
		body = make([]byte, 9+len(msg.Payload))
		body[0] = byte(msg.Type)
		binary.BigEndian.PutUint32(body[1:], msg.Index)
		binary.BigEndian.PutUint32(body[5:], msg.Begin)
		copy(body[9:], msg.Payload)
	default:
		return fmt.Errorf("wire: cannot encode message type %v", msg.Type)
	}
	if err := binary.Write(w, binary.BigEndian, uint32(len(body))); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// ReadMessage decodes one message; keep-alives return (nil, nil).
func ReadMessage(r io.Reader) (*Message, error) {
	var length uint32
	if err := binary.Read(r, binary.BigEndian, &length); err != nil {
		return nil, err
	}
	if length == 0 {
		return nil, nil // keep-alive
	}
	if length > MaxMessageSize {
		return nil, fmt.Errorf("wire: message of %d bytes exceeds limit", length)
	}
	body := make([]byte, length)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, fmt.Errorf("wire: message body: %w", err)
	}
	msg := &Message{Type: MessageType(body[0])}
	rest := body[1:]
	switch msg.Type {
	case MsgChoke, MsgUnchoke, MsgInterested, MsgNotInterested:
		if len(rest) != 0 {
			return nil, fmt.Errorf("wire: %v with %d payload bytes", msg.Type, len(rest))
		}
	case MsgHave:
		if len(rest) != 4 {
			return nil, fmt.Errorf("wire: have with %d payload bytes", len(rest))
		}
		msg.Index = binary.BigEndian.Uint32(rest)
	case MsgBitfield:
		msg.Payload = rest
	case MsgRequest, MsgCancel:
		if len(rest) != 12 {
			return nil, fmt.Errorf("wire: %v with %d payload bytes", msg.Type, len(rest))
		}
		msg.Index = binary.BigEndian.Uint32(rest)
		msg.Begin = binary.BigEndian.Uint32(rest[4:])
		msg.Length = binary.BigEndian.Uint32(rest[8:])
	case MsgPiece:
		if len(rest) < 8 {
			return nil, fmt.Errorf("wire: piece with %d payload bytes", len(rest))
		}
		msg.Index = binary.BigEndian.Uint32(rest)
		msg.Begin = binary.BigEndian.Uint32(rest[4:])
		msg.Payload = rest[8:]
	default:
		return nil, fmt.Errorf("wire: unknown message type %d", body[0])
	}
	return msg, nil
}

// Bitfield is a piece-availability bitmap, most significant bit first
// within each byte (BEP-3 layout).
type Bitfield []byte

// NewBitfield returns an all-zero bitfield for n pieces.
func NewBitfield(n int) Bitfield {
	return make(Bitfield, (n+7)/8)
}

// Has reports whether piece i is set (false out of range).
func (b Bitfield) Has(i int) bool {
	if i < 0 || i/8 >= len(b) {
		return false
	}
	return b[i/8]&(1<<(7-uint(i%8))) != 0
}

// Set marks piece i (no-op out of range).
func (b Bitfield) Set(i int) {
	if i < 0 || i/8 >= len(b) {
		return
	}
	b[i/8] |= 1 << (7 - uint(i%8))
}

// Count returns the number of set pieces.
func (b Bitfield) Count() int {
	n := 0
	for _, by := range b {
		for ; by != 0; by &= by - 1 {
			n++
		}
	}
	return n
}

// Clone returns a copy.
func (b Bitfield) Clone() Bitfield { return append(Bitfield(nil), b...) }
