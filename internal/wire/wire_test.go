package wire

import (
	"bytes"
	"io"
	"net"
	"testing"
	"testing/quick"
)

func TestHandshakeRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	h := Handshake{}
	copy(h.InfoHash[:], bytes.Repeat([]byte{0xAB}, 20))
	copy(h.PeerID[:], []byte("-MF0001-abcdefghijkl"))
	if err := WriteHandshake(&buf, h); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != HandshakeLen {
		t.Fatalf("handshake length %d, want %d", buf.Len(), HandshakeLen)
	}
	back, err := ReadHandshake(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back != h {
		t.Fatalf("round trip changed handshake")
	}
}

func TestHandshakeRejectsGarbage(t *testing.T) {
	if _, err := ReadHandshake(bytes.NewReader(make([]byte, HandshakeLen))); err == nil {
		t.Fatal("zero handshake accepted")
	}
	if _, err := ReadHandshake(bytes.NewReader([]byte("short"))); err == nil {
		t.Fatal("short handshake accepted")
	}
}

func roundTrip(t *testing.T, msg *Message) *Message {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteMessage(&buf, msg); err != nil {
		t.Fatal(err)
	}
	back, err := ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return back
}

func TestMessageRoundTrips(t *testing.T) {
	msgs := []*Message{
		{Type: MsgChoke},
		{Type: MsgUnchoke},
		{Type: MsgInterested},
		{Type: MsgNotInterested},
		{Type: MsgHave, Index: 42},
		{Type: MsgBitfield, Payload: []byte{0xF0, 0x01}},
		{Type: MsgRequest, Index: 3, Begin: 16384, Length: 16384},
		{Type: MsgCancel, Index: 3, Begin: 16384, Length: 16384},
		{Type: MsgPiece, Index: 7, Begin: 0, Payload: []byte("block data")},
	}
	for _, m := range msgs {
		back := roundTrip(t, m)
		if back.Type != m.Type || back.Index != m.Index || back.Begin != m.Begin || back.Length != m.Length {
			t.Fatalf("%v: header fields lost: %+v vs %+v", m.Type, back, m)
		}
		if !bytes.Equal(back.Payload, m.Payload) {
			t.Fatalf("%v: payload lost", m.Type)
		}
	}
}

func TestKeepAlive(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMessage(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 4 {
		t.Fatalf("keep-alive length %d", buf.Len())
	}
	msg, err := ReadMessage(&buf)
	if err != nil || msg != nil {
		t.Fatalf("keep-alive decode: %v %v", msg, err)
	}
}

func TestReadMessageRejectsMalformed(t *testing.T) {
	cases := [][]byte{
		{0, 0, 0, 2, byte(MsgChoke), 99},           // choke with payload
		{0, 0, 0, 3, byte(MsgHave), 0, 0},          // short have
		{0, 0, 0, 5, byte(MsgRequest), 0, 0, 0, 0}, // short request
		{0, 0, 0, 3, byte(MsgPiece), 0, 0},         // short piece
		{0, 0, 0, 1, 99},                           // unknown type
		{0xFF, 0xFF, 0xFF, 0xFF},                   // absurd length
	}
	for i, c := range cases {
		if _, err := ReadMessage(bytes.NewReader(c)); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
}

func TestReadMessageEOF(t *testing.T) {
	if _, err := ReadMessage(bytes.NewReader(nil)); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
	// Truncated body.
	if _, err := ReadMessage(bytes.NewReader([]byte{0, 0, 0, 9, byte(MsgPiece)})); err == nil {
		t.Fatal("truncated body accepted")
	}
}

func TestBitfieldBasics(t *testing.T) {
	b := NewBitfield(10)
	if len(b) != 2 {
		t.Fatalf("bitfield size %d", len(b))
	}
	b.Set(0)
	b.Set(7)
	b.Set(9)
	for i := 0; i < 10; i++ {
		want := i == 0 || i == 7 || i == 9
		if b.Has(i) != want {
			t.Fatalf("bit %d = %v", i, b.Has(i))
		}
	}
	if b.Count() != 3 {
		t.Fatalf("count %d", b.Count())
	}
	// MSB-first layout: piece 0 is the high bit of byte 0.
	if b[0]&0x80 == 0 {
		t.Fatal("piece 0 not in MSB")
	}
}

func TestBitfieldOutOfRange(t *testing.T) {
	b := NewBitfield(8)
	if b.Has(-1) || b.Has(8) {
		t.Fatal("out-of-range Has true")
	}
	b.Set(-1)
	b.Set(8) // must not panic
	if b.Count() != 0 {
		t.Fatal("out-of-range Set changed bits")
	}
}

func TestBitfieldCloneIndependent(t *testing.T) {
	a := NewBitfield(8)
	a.Set(1)
	c := a.Clone()
	c.Set(2)
	if a.Has(2) {
		t.Fatal("clone aliases original")
	}
}

func TestBitfieldSetHasProperty(t *testing.T) {
	f := func(bits []uint8) bool {
		b := NewBitfield(64)
		seen := map[int]bool{}
		for _, raw := range bits {
			i := int(raw % 64)
			b.Set(i)
			seen[i] = true
		}
		for i := 0; i < 64; i++ {
			if b.Has(i) != seen[i] {
				return false
			}
		}
		return b.Count() == len(seen)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMessagesOverRealConn(t *testing.T) {
	// The codec must work across a real socket boundary.
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	done := make(chan error, 1)
	go func() {
		if err := WriteHandshake(a, Handshake{InfoHash: [20]byte{1}, PeerID: [20]byte{2}}); err != nil {
			done <- err
			return
		}
		done <- WriteMessage(a, &Message{Type: MsgPiece, Index: 5, Payload: []byte("xyz")})
	}()
	h, err := ReadHandshake(b)
	if err != nil {
		t.Fatal(err)
	}
	if h.InfoHash[0] != 1 {
		t.Fatal("handshake corrupted over pipe")
	}
	msg, err := ReadMessage(b)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Index != 5 || string(msg.Payload) != "xyz" {
		t.Fatalf("message corrupted: %+v", msg)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPieceMessageRoundTrip(b *testing.B) {
	payload := bytes.Repeat([]byte{0xAB}, 16384)
	var buf bytes.Buffer
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := WriteMessage(&buf, &Message{Type: MsgPiece, Index: 7, Payload: payload}); err != nil {
			b.Fatal(err)
		}
		if _, err := ReadMessage(&buf); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(payload)))
}

func BenchmarkBitfieldCount(b *testing.B) {
	bf := NewBitfield(4096)
	for i := 0; i < 4096; i += 3 {
		bf.Set(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = bf.Count()
	}
}
