package metainfo_test

import (
	"fmt"
	"log"

	"mfdl/internal/metainfo"
)

// Build a two-episode multi-file torrent and inspect its subtorrents.
func ExampleBuild() {
	content := make([]byte, 3000)
	meta, err := metainfo.Build("season", "http://tracker/announce", 1024,
		[]metainfo.FileEntry{
			{Path: "season/e01.mkv", Length: 1800},
			{Path: "season/e02.mkv", Length: 1200},
		}, metainfo.BytesSource(content))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("pieces:", meta.Info.NumPieces())
	for i, r := range meta.Info.FilePieces() {
		fmt.Printf("file %d: pieces %d-%d\n", i, r.First, r.Last)
	}
	// Output:
	// pieces: 3
	// file 0: pieces 0-1
	// file 1: pieces 1-2
}
