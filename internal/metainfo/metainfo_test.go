package metainfo

import (
	"bytes"
	"crypto/sha1"
	"testing"

	"mfdl/internal/rng"
)

// season builds a 3-file torrent over deterministic content.
func season(t *testing.T, pieceLength int64) (*MetaInfo, []byte) {
	t.Helper()
	src := rng.New(5)
	sizes := []int64{1000, 700, 1300}
	var data []byte
	var files []FileEntry
	names := []string{"e01.mkv", "e02.mkv", "e03.mkv"}
	for i, n := range sizes {
		for j := int64(0); j < n; j++ {
			data = append(data, byte(src.Uint32()))
		}
		files = append(files, FileEntry{Path: "season/" + names[i], Length: n})
	}
	m, err := Build("season", "http://tracker.local/announce", pieceLength, files, BytesSource(data))
	if err != nil {
		t.Fatal(err)
	}
	return m, data
}

func TestBuildPieceCount(t *testing.T) {
	m, data := season(t, 256)
	want := (len(data) + 255) / 256
	if m.Info.NumPieces() != want {
		t.Fatalf("pieces = %d, want %d", m.Info.NumPieces(), want)
	}
	if m.Info.TotalLength() != int64(len(data)) {
		t.Fatalf("total length %d", m.Info.TotalLength())
	}
}

func TestPieceHashesMatchContent(t *testing.T) {
	m, data := season(t, 512)
	for p := 0; p < m.Info.NumPieces(); p++ {
		lo := p * 512
		hi := lo + 512
		if hi > len(data) {
			hi = len(data)
		}
		want := sha1.Sum(data[lo:hi])
		got := m.Info.Pieces[p*20 : p*20+20]
		if !bytes.Equal(got, want[:]) {
			t.Fatalf("piece %d hash mismatch", p)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	m, _ := season(t, 256)
	m.Comment = "repro"
	enc, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(enc)
	if err != nil {
		t.Fatal(err)
	}
	if back.Announce != m.Announce || back.Comment != "repro" {
		t.Fatal("header fields lost")
	}
	if len(back.Info.Files) != 3 || back.Info.Files[1].Path != "season/e02.mkv" {
		t.Fatalf("files lost: %+v", back.Info.Files)
	}
	if !bytes.Equal(back.Info.Pieces, m.Info.Pieces) {
		t.Fatal("pieces lost")
	}
	// Info-hash must survive the round trip (identity on the tracker).
	h1, err := m.Info.InfoHash()
	if err != nil {
		t.Fatal(err)
	}
	h2, err := back.Info.InfoHash()
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatal("info-hash changed across round trip")
	}
}

func TestInfoHashSensitivity(t *testing.T) {
	a, _ := season(t, 256)
	b, _ := season(t, 512) // different piece length → different identity
	ha, _ := a.Info.InfoHash()
	hb, _ := b.Info.InfoHash()
	if ha == hb {
		t.Fatal("info-hash ignored piece length")
	}
	// Announce is outside the info dict: changing it keeps the identity.
	c, _ := season(t, 256)
	c.Announce = "http://other/announce"
	hc, _ := c.Info.InfoHash()
	if ha != hc {
		t.Fatal("info-hash depends on announce URL")
	}
}

func TestSingleFileShape(t *testing.T) {
	data := bytes.Repeat([]byte{7}, 1000)
	m, err := Build("file.bin", "http://t/a", 256,
		[]FileEntry{{Path: "file.bin", Length: 1000}}, BytesSource(data))
	if err != nil {
		t.Fatal(err)
	}
	enc, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	// Single-file torrents use the "length" form, not "files".
	if bytes.Contains(enc, []byte("5:files")) {
		t.Fatal("single-file torrent used multi-file form")
	}
	back, err := Unmarshal(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Info.Files) != 1 || back.Info.Files[0].Length != 1000 {
		t.Fatalf("single-file parse: %+v", back.Info.Files)
	}
}

func TestFilePiecesSubtorrents(t *testing.T) {
	// Files of 1000, 700, 1300 bytes at piece length 256:
	// file 0: bytes [0,1000)    → pieces 0..3
	// file 1: bytes [1000,1700) → pieces 3..6   (shares piece 3)
	// file 2: bytes [1700,3000) → pieces 6..11  (shares piece 6)
	m, _ := season(t, 256)
	pr := m.Info.FilePieces()
	want := []PieceRange{{0, 3}, {3, 6}, {6, 11}}
	for i, r := range pr {
		if r != want[i] {
			t.Fatalf("file %d range %+v, want %+v", i, r, want[i])
		}
	}
	if pr[0].Count() != 4 || pr[2].Count() != 6 {
		t.Fatal("range counts wrong")
	}
}

func TestFilePiecesEmptyFile(t *testing.T) {
	files := []FileEntry{
		{Path: "a", Length: 100},
		{Path: "b", Length: 0},
		{Path: "c", Length: 100},
	}
	data := make([]byte, 200)
	m, err := Build("x", "http://t/a", 64, files, BytesSource(data))
	if err != nil {
		t.Fatal(err)
	}
	pr := m.Info.FilePieces()
	if !pr[1].Empty() || pr[1].Count() != 0 {
		t.Fatalf("empty file range %+v", pr[1])
	}
}

func TestValidateRejects(t *testing.T) {
	good, _ := season(t, 256)
	cases := []func(*Info){
		func(i *Info) { i.Name = "" },
		func(i *Info) { i.PieceLength = 0 },
		func(i *Info) { i.Files = nil },
		func(i *Info) { i.Files[0].Path = "../evil" },
		func(i *Info) { i.Files[0].Path = "/abs" },
		func(i *Info) { i.Files[0].Length = -1 },
		func(i *Info) { i.Pieces = i.Pieces[:len(i.Pieces)-1] },
		func(i *Info) { i.Pieces = i.Pieces[:len(i.Pieces)-20] },
	}
	for idx, mutate := range cases {
		info := good.Info
		info.Files = append([]FileEntry(nil), good.Info.Files...)
		info.Pieces = append([]byte(nil), good.Info.Pieces...)
		mutate(&info)
		if info.Validate() == nil {
			t.Fatalf("case %d accepted", idx)
		}
	}
}

func TestUnmarshalRejectsMalformed(t *testing.T) {
	bad := [][]byte{
		[]byte("i3e"),           // not a dict
		[]byte("d4:info3:xyze"), // info not a dict
		[]byte("d4:infodee"),    // neither files nor length
		[]byte("de"),            // missing info
	}
	for i, b := range bad {
		if _, err := Unmarshal(b); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
}

func TestBytesSourceBounds(t *testing.T) {
	src := BytesSource([]byte{1, 2, 3})
	buf := make([]byte, 2)
	if err := src.ReadAt(buf, 2); err == nil {
		t.Fatal("out-of-range read accepted")
	}
	if err := src.ReadAt(buf, -1); err == nil {
		t.Fatal("negative offset accepted")
	}
	if err := src.ReadAt(buf, 1); err != nil || buf[0] != 2 || buf[1] != 3 {
		t.Fatalf("read wrong: %v %v", buf, err)
	}
}
