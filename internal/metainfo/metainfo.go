// Package metainfo builds and parses BitTorrent metadata (.torrent files)
// with multi-file support — the artifact a publisher uploads to the web
// server in the paper's server–torrent architecture (Section 3.1), and the
// thing that makes a "multi-file torrent" (Sections 3.4–3.5) a single
// swarm: one info dictionary, one info-hash, K files laid out back to back
// over a shared piece space.
//
// The subtorrent decomposition the paper analyzes is implemented by
// FilePieces: the piece-index range of each file, with shared boundary
// pieces attributed to both neighbours (those are exactly the pieces that
// couple adjacent subtorrents in a real deployment).
package metainfo

import (
	"crypto/sha1"
	"errors"
	"fmt"
	"strings"

	"mfdl/internal/bencode"
)

// FileEntry is one file of a multi-file torrent.
type FileEntry struct {
	// Path is the slash-separated relative path inside the torrent.
	Path string
	// Length is the file size in bytes.
	Length int64
}

// Info is the torrent's info dictionary.
type Info struct {
	// Name is the torrent (directory) name.
	Name string
	// PieceLength is the piece size in bytes.
	PieceLength int64
	// Pieces holds the concatenated 20-byte SHA-1 piece hashes.
	Pieces []byte
	// Files lists the contained files in order. A single-file torrent
	// has exactly one entry whose Path is Name.
	Files []FileEntry
}

// MetaInfo is a parsed .torrent.
type MetaInfo struct {
	// Announce is the tracker URL.
	Announce string
	// Comment is free-form publisher text.
	Comment string
	Info    Info
}

// TotalLength returns the sum of all file lengths.
func (i *Info) TotalLength() int64 {
	var n int64
	for _, f := range i.Files {
		n += f.Length
	}
	return n
}

// NumPieces returns the number of pieces.
func (i *Info) NumPieces() int { return len(i.Pieces) / sha1.Size }

// Validate checks structural consistency.
func (i *Info) Validate() error {
	if i.Name == "" {
		return errors.New("metainfo: empty name")
	}
	if i.PieceLength <= 0 {
		return fmt.Errorf("metainfo: piece length %d", i.PieceLength)
	}
	if len(i.Files) == 0 {
		return errors.New("metainfo: no files")
	}
	for _, f := range i.Files {
		if f.Length < 0 {
			return fmt.Errorf("metainfo: file %q has negative length", f.Path)
		}
		if f.Path == "" || strings.HasPrefix(f.Path, "/") || strings.Contains(f.Path, "..") {
			return fmt.Errorf("metainfo: unsafe file path %q", f.Path)
		}
	}
	if len(i.Pieces)%sha1.Size != 0 {
		return fmt.Errorf("metainfo: pieces length %d not a multiple of %d", len(i.Pieces), sha1.Size)
	}
	total := i.TotalLength()
	want := int((total + i.PieceLength - 1) / i.PieceLength)
	if total == 0 {
		want = 0
	}
	if i.NumPieces() != want {
		return fmt.Errorf("metainfo: %d pieces for %d bytes at piece length %d (want %d)",
			i.NumPieces(), total, i.PieceLength, want)
	}
	return nil
}

// PieceRange is a half-open piece-index interval [First, Last].
type PieceRange struct {
	First, Last int // inclusive piece indices; Last < First means empty
}

// Empty reports whether the range contains no pieces.
func (r PieceRange) Empty() bool { return r.Last < r.First }

// Count returns the number of pieces in the range.
func (r PieceRange) Count() int {
	if r.Empty() {
		return 0
	}
	return r.Last - r.First + 1
}

// FilePieces returns, per file, the pieces that contain any of its bytes —
// the paper's subtorrents. Boundary pieces shared by adjacent files appear
// in both ranges.
func (i *Info) FilePieces() []PieceRange {
	out := make([]PieceRange, len(i.Files))
	var offset int64
	for idx, f := range i.Files {
		if f.Length == 0 {
			out[idx] = PieceRange{First: 0, Last: -1}
			continue
		}
		first := int(offset / i.PieceLength)
		last := int((offset + f.Length - 1) / i.PieceLength)
		out[idx] = PieceRange{First: first, Last: last}
		offset += f.Length
	}
	return out
}

// DataSource supplies torrent content for hashing, piece by piece, as one
// contiguous stream over the concatenated files.
type DataSource interface {
	// ReadAt fills p with torrent bytes starting at off; short reads are
	// errors. The source length must equal Info.TotalLength().
	ReadAt(p []byte, off int64) error
}

// BytesSource adapts an in-memory byte slice.
type BytesSource []byte

// ReadAt implements DataSource.
func (b BytesSource) ReadAt(p []byte, off int64) error {
	if off < 0 || off+int64(len(p)) > int64(len(b)) {
		return fmt.Errorf("metainfo: read [%d,%d) outside %d bytes", off, off+int64(len(p)), len(b))
	}
	copy(p, b[off:])
	return nil
}

// Build assembles a MetaInfo for the given files, hashing content from src.
func Build(name, announce string, pieceLength int64, files []FileEntry, src DataSource) (*MetaInfo, error) {
	info := Info{Name: name, PieceLength: pieceLength, Files: files}
	if pieceLength <= 0 {
		return nil, errors.New("metainfo: piece length must be positive")
	}
	total := info.TotalLength()
	buf := make([]byte, pieceLength)
	var pieces []byte
	for off := int64(0); off < total; off += pieceLength {
		n := pieceLength
		if off+n > total {
			n = total - off
		}
		if err := src.ReadAt(buf[:n], off); err != nil {
			return nil, err
		}
		h := sha1.Sum(buf[:n])
		pieces = append(pieces, h[:]...)
	}
	info.Pieces = pieces
	if err := info.Validate(); err != nil {
		return nil, err
	}
	return &MetaInfo{Announce: announce, Info: info}, nil
}

// infoDict returns the canonical bencode value of the info dictionary.
func (i *Info) infoDict() map[string]any {
	d := map[string]any{
		"name":         i.Name,
		"piece length": i.PieceLength,
		"pieces":       string(i.Pieces),
	}
	if len(i.Files) == 1 && i.Files[0].Path == i.Name {
		d["length"] = i.Files[0].Length
		return d
	}
	var files []any
	for _, f := range i.Files {
		var path []any
		for _, seg := range strings.Split(f.Path, "/") {
			path = append(path, seg)
		}
		files = append(files, map[string]any{"length": f.Length, "path": path})
	}
	d["files"] = files
	return d
}

// InfoHash returns the SHA-1 of the canonical bencoded info dictionary —
// the torrent's identity on the tracker.
func (i *Info) InfoHash() ([20]byte, error) {
	enc, err := bencode.Marshal(i.infoDict())
	if err != nil {
		return [20]byte{}, err
	}
	return sha1.Sum(enc), nil
}

// Marshal encodes the full .torrent file.
func (m *MetaInfo) Marshal() ([]byte, error) {
	if err := m.Info.Validate(); err != nil {
		return nil, err
	}
	d := map[string]any{
		"announce": m.Announce,
		"info":     m.Info.infoDict(),
	}
	if m.Comment != "" {
		d["comment"] = m.Comment
	}
	return bencode.Marshal(d)
}

// Unmarshal parses a .torrent file.
func Unmarshal(data []byte) (*MetaInfo, error) {
	v, err := bencode.Unmarshal(data)
	if err != nil {
		return nil, err
	}
	top, ok := v.(map[string]any)
	if !ok {
		return nil, errors.New("metainfo: top-level value is not a dict")
	}
	m := &MetaInfo{}
	if s, ok := top["announce"].(string); ok {
		m.Announce = s
	}
	if s, ok := top["comment"].(string); ok {
		m.Comment = s
	}
	infoRaw, ok := top["info"].(map[string]any)
	if !ok {
		return nil, errors.New("metainfo: missing info dict")
	}
	name, _ := infoRaw["name"].(string)
	pieceLen, _ := infoRaw["piece length"].(int64)
	pieces, _ := infoRaw["pieces"].(string)
	m.Info = Info{Name: name, PieceLength: pieceLen, Pieces: []byte(pieces)}
	switch {
	case infoRaw["files"] != nil:
		list, ok := infoRaw["files"].([]any)
		if !ok {
			return nil, errors.New("metainfo: files is not a list")
		}
		for _, e := range list {
			fd, ok := e.(map[string]any)
			if !ok {
				return nil, errors.New("metainfo: file entry is not a dict")
			}
			length, _ := fd["length"].(int64)
			pathList, ok := fd["path"].([]any)
			if !ok {
				return nil, errors.New("metainfo: file path missing")
			}
			var segs []string
			for _, s := range pathList {
				seg, ok := s.(string)
				if !ok {
					return nil, errors.New("metainfo: non-string path segment")
				}
				segs = append(segs, seg)
			}
			m.Info.Files = append(m.Info.Files, FileEntry{
				Path: strings.Join(segs, "/"), Length: length,
			})
		}
	case infoRaw["length"] != nil:
		length, _ := infoRaw["length"].(int64)
		m.Info.Files = []FileEntry{{Path: name, Length: length}}
	default:
		return nil, errors.New("metainfo: neither files nor length present")
	}
	if err := m.Info.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}
