package metainfo

import (
	"testing"
)

// FuzzUnmarshal checks the .torrent parser never panics and that every
// accepted torrent survives a marshal/unmarshal round trip with a stable
// info-hash.
func FuzzUnmarshal(f *testing.F) {
	// A valid 2-file torrent as a seed.
	data := make([]byte, 600)
	m, err := Build("x", "http://t/a", 256, []FileEntry{
		{Path: "x/a", Length: 400},
		{Path: "x/b", Length: 200},
	}, BytesSource(data))
	if err != nil {
		f.Fatal(err)
	}
	enc, err := m.Marshal()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(enc)
	f.Add([]byte("de"))
	f.Add([]byte("d4:infodee"))
	f.Add([]byte("d4:infod4:name1:x12:piece lengthi1e6:pieces0:6:lengthi0eee"))
	f.Fuzz(func(t *testing.T, raw []byte) {
		parsed, err := Unmarshal(raw)
		if err != nil {
			return
		}
		h1, err := parsed.Info.InfoHash()
		if err != nil {
			t.Fatalf("accepted torrent has unhashable info: %v", err)
		}
		re, err := parsed.Marshal()
		if err != nil {
			t.Fatalf("accepted torrent failed to marshal: %v", err)
		}
		back, err := Unmarshal(re)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		h2, err := back.Info.InfoHash()
		if err != nil {
			t.Fatal(err)
		}
		if h1 != h2 {
			t.Fatal("info-hash changed across round trip")
		}
	})
}
