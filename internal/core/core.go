// Package core is the high-level facade over the multiple-file-downloading
// models: it names the four schemes the paper analyzes, couples the fluid
// parameters with the file-correlation model, and evaluates any scheme into
// the shared metrics types.
//
// A System describes one server–torrent deployment (Section 3.1): K files,
// a visiting rate λ₀, a per-file request probability p, and homogeneous
// peers with upload bandwidth μ, sharing efficiency η and seed departure
// rate γ. Example:
//
//	sys, _ := core.NewSystem(core.Config{
//	    Params: fluid.PaperParams, K: 10, Lambda0: 1, P: 0.9,
//	})
//	res, _ := sys.Evaluate(core.CMFSD, core.WithRho(0.1))
//	fmt.Println(res.AvgOnlinePerFile())
package core

import (
	"errors"
	"fmt"

	"mfdl/internal/correlation"
	"mfdl/internal/fluid"
	"mfdl/internal/metrics"
	"mfdl/internal/scheme"
)

// Scheme identifies one of the paper's downloading schemes. It aliases
// scheme.Scheme so core values flow directly into the scheme.New factory.
type Scheme = scheme.Scheme

// The four schemes of the paper (see the scheme package for details).
const (
	MTCD  = scheme.MTCD
	MTSD  = scheme.MTSD
	MFCD  = scheme.MFCD
	CMFSD = scheme.CMFSD
)

// Schemes lists all schemes in paper order.
var Schemes = scheme.Schemes

// ParseScheme converts a string to a Scheme.
func ParseScheme(s string) (Scheme, error) {
	sc, err := scheme.Parse(s)
	if err != nil {
		return "", fmt.Errorf("core: unknown scheme %q", s)
	}
	return sc, nil
}

// Config describes a server–torrent system.
type Config struct {
	fluid.Params
	// K is the number of files.
	K int
	// Lambda0 is the web-server visiting rate λ₀.
	Lambda0 float64
	// P is the file correlation (per-file request probability).
	P float64
}

// System evaluates downloading schemes on one configuration.
type System struct {
	cfg  Config
	corr *correlation.Model
}

// NewSystem validates the configuration and returns a System.
func NewSystem(cfg Config) (*System, error) {
	if err := cfg.Params.Validate(); err != nil {
		return nil, err
	}
	corr, err := correlation.New(cfg.K, cfg.P, cfg.Lambda0)
	if err != nil {
		return nil, err
	}
	return &System{cfg: cfg, corr: corr}, nil
}

// Config returns the system configuration.
func (s *System) Config() Config { return s.cfg }

// Correlation returns the underlying file-correlation model.
func (s *System) Correlation() *correlation.Model { return s.corr }

// evalOptions collects per-call options.
type evalOptions struct {
	rho float64
}

// Option customizes Evaluate.
type Option func(*evalOptions)

// WithRho sets the CMFSD bandwidth allocation ratio ρ (ignored by the other
// schemes). The default is the paper's recommended initial setting ρ = 0.
func WithRho(rho float64) Option {
	return func(o *evalOptions) { o.rho = rho }
}

// Evaluate computes the steady-state per-class metrics for the scheme.
func (s *System) Evaluate(sc Scheme, opts ...Option) (*metrics.SchemeResult, error) {
	var o evalOptions
	for _, opt := range opts {
		opt(&o)
	}
	m, err := scheme.New(sc, s.cfg.Params, s.corr, scheme.Options{Rho: o.rho})
	if err != nil {
		return nil, err
	}
	return m.Evaluate()
}

// Comparison pairs a scheme with its evaluation.
type Comparison struct {
	Scheme Scheme
	Result *metrics.SchemeResult
}

// Compare evaluates several schemes on the same system.
func (s *System) Compare(schemes []Scheme, opts ...Option) ([]Comparison, error) {
	if len(schemes) == 0 {
		return nil, errors.New("core: no schemes to compare")
	}
	out := make([]Comparison, 0, len(schemes))
	for _, sc := range schemes {
		res, err := s.Evaluate(sc, opts...)
		if err != nil {
			return nil, fmt.Errorf("core: %s: %w", sc, err)
		}
		out = append(out, Comparison{Scheme: sc, Result: res})
	}
	return out, nil
}

// Best returns the scheme with the lowest average online time per file.
func Best(comparisons []Comparison) (Comparison, error) {
	if len(comparisons) == 0 {
		return Comparison{}, errors.New("core: empty comparison")
	}
	best := comparisons[0]
	for _, c := range comparisons[1:] {
		if c.Result.AvgOnlinePerFile() < best.Result.AvgOnlinePerFile() {
			best = c
		}
	}
	return best, nil
}
