package core_test

import (
	"fmt"
	"log"

	"mfdl/internal/core"
	"mfdl/internal/fluid"
)

// Evaluate all four downloading schemes on a highly correlated 10-file
// system and report the paper's headline metric.
func Example() {
	sys, err := core.NewSystem(core.Config{
		Params:  fluid.PaperParams, // μ=0.02, η=0.5, γ=0.05
		K:       10,
		Lambda0: 1,
		P:       0.9,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, scheme := range []core.Scheme{core.MTSD, core.MFCD} {
		res, err := sys.Evaluate(scheme)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s %.2f\n", scheme, res.AvgOnlinePerFile())
	}
	// Output:
	// MTSD 80.00
	// MFCD 97.78
}

// The paper's proposal with full collaboration beats MFCD by ~47% at high
// correlation.
func ExampleSystem_Evaluate() {
	sys, err := core.NewSystem(core.Config{
		Params: fluid.PaperParams, K: 10, Lambda0: 1, P: 0.9,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := sys.Evaluate(core.CMFSD, core.WithRho(0))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CMFSD %.1f\n", res.AvgOnlinePerFile())
	// Output:
	// CMFSD 51.9
}
