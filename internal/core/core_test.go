package core

import (
	"math"
	"testing"

	"mfdl/internal/fluid"
)

func system(t *testing.T, p float64) *System {
	t.Helper()
	s, err := NewSystem(Config{Params: fluid.PaperParams, K: 10, Lambda0: 1, P: p})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestParseScheme(t *testing.T) {
	for _, sc := range Schemes {
		got, err := ParseScheme(string(sc))
		if err != nil || got != sc {
			t.Fatalf("ParseScheme(%q) = %v, %v", sc, got, err)
		}
	}
	if _, err := ParseScheme("FTP"); err == nil {
		t.Fatal("unknown scheme parsed")
	}
}

func TestNewSystemValidation(t *testing.T) {
	if _, err := NewSystem(Config{}); err == nil {
		t.Fatal("zero config accepted")
	}
	if _, err := NewSystem(Config{Params: fluid.PaperParams, K: 10, Lambda0: 1, P: 2}); err == nil {
		t.Fatal("p=2 accepted")
	}
}

func TestEvaluateAllSchemes(t *testing.T) {
	s := system(t, 0.9)
	for _, sc := range Schemes {
		res, err := s.Evaluate(sc, WithRho(0.1))
		if err != nil {
			t.Fatalf("%s: %v", sc, err)
		}
		if string(sc) != res.Scheme {
			t.Fatalf("scheme label %q for %s", res.Scheme, sc)
		}
		avg := res.AvgOnlinePerFile()
		if math.IsNaN(avg) || avg <= 0 {
			t.Fatalf("%s: bad average %v", sc, avg)
		}
	}
}

func TestEvaluateUnknownScheme(t *testing.T) {
	if _, err := system(t, 0.5).Evaluate(Scheme("bogus")); err == nil {
		t.Fatal("bogus scheme evaluated")
	}
}

func TestMFCDEqualsMTCDInFluidModel(t *testing.T) {
	// Section 3.4: MFCD is equivalent to MTCD in the fluid model.
	s := system(t, 0.7)
	a, err := s.Evaluate(MTCD)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Evaluate(MFCD)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.AvgOnlinePerFile()-b.AvgOnlinePerFile()) > 1e-9 {
		t.Fatalf("MFCD %v != MTCD %v", b.AvgOnlinePerFile(), a.AvgOnlinePerFile())
	}
}

func TestCompareAndBest(t *testing.T) {
	s := system(t, 0.9)
	comps, err := s.Compare(Schemes, WithRho(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(comps) != 4 {
		t.Fatalf("comparisons = %d", len(comps))
	}
	best, err := Best(comps)
	if err != nil {
		t.Fatal(err)
	}
	// At p=0.9 with ρ=0 the paper's proposal wins.
	if best.Scheme != CMFSD {
		t.Fatalf("best scheme %s, want CMFSD", best.Scheme)
	}
}

func TestCompareEmpty(t *testing.T) {
	if _, err := system(t, 0.5).Compare(nil); err == nil {
		t.Fatal("empty compare accepted")
	}
	if _, err := Best(nil); err == nil {
		t.Fatal("empty Best accepted")
	}
}

func TestWithRhoDefaultIsZero(t *testing.T) {
	s := system(t, 0.9)
	def, err := s.Evaluate(CMFSD)
	if err != nil {
		t.Fatal(err)
	}
	explicit, err := s.Evaluate(CMFSD, WithRho(0))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(def.AvgOnlinePerFile()-explicit.AvgOnlinePerFile()) > 1e-9 {
		t.Fatal("default ρ is not 0")
	}
}

func TestConfigAccessors(t *testing.T) {
	s := system(t, 0.4)
	if s.Config().K != 10 || s.Correlation().P != 0.4 {
		t.Fatal("accessors wrong")
	}
}
