// Package mtsd implements Multi-Torrent Sequential Downloading (Section 3.3
// of the paper, Eqs. 3–4): a user who requested i files enters one torrent
// at a time with its full bandwidth, so each torrent behaves exactly like
// the Qiu–Srikant single torrent and the user's total times are i times the
// single-torrent times:
//
//	T_i^MTSD = i·(T + 1/γ),  T = (γ−μ)/(γμη),  γ > μ.
package mtsd

import (
	"fmt"

	"mfdl/internal/correlation"
	"mfdl/internal/fluid"
	"mfdl/internal/metrics"
)

// Scheme is the scheme name reported in results.
const Scheme = "MTSD"

// Model couples the fluid parameters with a file-correlation model.
type Model struct {
	fluid.Params
	Corr *correlation.Model
	// Theta is the downloader abort rate θ ≥ 0. θ = 0 keeps the paper's
	// closed form; θ > 0 solves the single-torrent model numerically with
	// the abort term.
	Theta float64
}

// New validates and returns an MTSD model.
func New(p fluid.Params, corr *correlation.Model) (*Model, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if corr == nil {
		return nil, fmt.Errorf("mtsd: nil correlation model")
	}
	if err := corr.Validate(); err != nil {
		return nil, err
	}
	return &Model{Params: p, Corr: corr}, nil
}

// SingleDownloadTime returns T = (γ−μ)/(γμη), the per-file download time.
func (m *Model) SingleDownloadTime() (float64, error) {
	if !m.UploadConstrained() {
		return 0, fluid.ErrNotUploadConstrained
	}
	return (m.Gamma - m.Mu) / (m.Gamma * m.Mu * m.Eta), nil
}

// Evaluate returns the steady-state per-class metrics (Eq. 4). Every class
// has the same per-file times; the correlation model only weights the
// average.
func (m *Model) Evaluate() (*metrics.SchemeResult, error) {
	t, seedT := 0.0, 0.0
	if m.Theta > 0 {
		// With aborts the torrent is the Qiu–Srikant model with −θ·x.
		// Its RHS is homogeneous of degree 1 in (λ, x, y), so per-file
		// times x/λ and seed residence y/λ are λ-invariant; solve at
		// λ = 1. y/λ is the completion fraction times 1/γ — aborters
		// never seed, so the per-file online time shrinks accordingly.
		st := &fluid.SingleTorrent{Params: m.Params, Lambda: 1, Theta: m.Theta}
		x, y, err := st.SteadyStateNumeric(fluid.SteadyStateOptions{})
		if err != nil {
			return nil, fmt.Errorf("mtsd: θ>0 relaxation: %w", err)
		}
		t, seedT = x, y
	} else {
		var err error
		t, err = m.SingleDownloadTime()
		if err != nil {
			return nil, err
		}
		seedT = 1 / m.Gamma
	}
	res := &metrics.SchemeResult{Scheme: Scheme}
	for i := 1; i <= m.Corr.K; i++ {
		fi := float64(i)
		res.Classes = append(res.Classes, metrics.PerClass{
			Class:        i,
			EntryRate:    m.Corr.UserRate(i),
			DownloadTime: fi * t,
			OnlineTime:   fi * (t + seedT),
		})
	}
	if err := res.Validate(); err != nil {
		return nil, err
	}
	return res, nil
}

// TorrentPopulation returns the steady-state downloader and seed counts in
// one torrent under MTSD. Each torrent j sees the aggregate arrival rate of
// peers currently scheduled on it; in steady state with randomized
// sequential order that is Σ_i λ_j^i (the same peer-arrival mass as MTCD,
// spread over time instead of concurrently).
func (m *Model) TorrentPopulation() (x, y float64, err error) {
	lambda := 0.0
	for i := 1; i <= m.Corr.K; i++ {
		lambda += m.Corr.TorrentClassRate(i)
	}
	if lambda <= 0 {
		return 0, 0, fmt.Errorf("mtsd: zero torrent arrival rate (p = %v)", m.Corr.P)
	}
	st, err := fluid.NewSingleTorrent(m.Params, lambda)
	if err != nil {
		return 0, 0, err
	}
	return st.SteadyStateClosed()
}
