package mtsd

import (
	"math"
	"testing"

	"mfdl/internal/correlation"
	"mfdl/internal/fluid"
)

func model(t *testing.T, p float64) *Model {
	t.Helper()
	corr, err := correlation.New(10, p, 1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(fluid.PaperParams, corr)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewValidation(t *testing.T) {
	corr, _ := correlation.New(10, 0.5, 1)
	if _, err := New(fluid.Params{}, corr); err == nil {
		t.Fatal("zero params accepted")
	}
	if _, err := New(fluid.PaperParams, nil); err == nil {
		t.Fatal("nil correlation accepted")
	}
}

func TestSingleDownloadTimePaperValue(t *testing.T) {
	m := model(t, 0.5)
	tDl, err := m.SingleDownloadTime()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tDl-60) > 1e-12 {
		t.Fatalf("T = %v, want 60", tDl)
	}
}

func TestEvaluatePerClassScaling(t *testing.T) {
	m := model(t, 0.5)
	res, err := m.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Classes) != 10 {
		t.Fatalf("classes = %d", len(res.Classes))
	}
	for _, c := range res.Classes {
		// Per-file times are class-independent under MTSD.
		if math.Abs(c.DownloadPerFile()-60) > 1e-9 {
			t.Fatalf("class %d download per file %v, want 60", c.Class, c.DownloadPerFile())
		}
		if math.Abs(c.OnlinePerFile()-80) > 1e-9 {
			t.Fatalf("class %d online per file %v, want 80", c.Class, c.OnlinePerFile())
		}
	}
}

func TestAvgOnlinePerFileFlatInP(t *testing.T) {
	// The MTSD headline metric does not depend on the correlation p.
	for _, p := range []float64{0.05, 0.3, 0.7, 1.0} {
		res, err := model(t, p).Evaluate()
		if err != nil {
			t.Fatal(err)
		}
		if got := res.AvgOnlinePerFile(); math.Abs(got-80) > 1e-9 {
			t.Fatalf("p=%v avg online per file %v, want 80", p, got)
		}
	}
}

func TestNotUploadConstrainedRejected(t *testing.T) {
	corr, _ := correlation.New(10, 0.5, 1)
	m, err := New(fluid.Params{Mu: 0.1, Eta: 0.5, Gamma: 0.05}, corr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Evaluate(); err == nil {
		t.Fatal("γ<μ accepted")
	}
}

func TestTorrentPopulation(t *testing.T) {
	m := model(t, 1)
	x, y, err := m.TorrentPopulation()
	if err != nil {
		t.Fatal(err)
	}
	// At p=1 each torrent sees λ = λ₀ = 1 peer-arrivals (class-10 users
	// enter all 10 torrents over time at total rate 1 per torrent).
	if math.Abs(y-1/0.05) > 1e-9 {
		t.Fatalf("seeds %v, want 20", y)
	}
	if math.Abs(x-60) > 1e-9 {
		t.Fatalf("downloaders %v, want 60 (λ·T)", x)
	}
}

func TestTorrentPopulationZeroRate(t *testing.T) {
	m := model(t, 0)
	if _, _, err := m.TorrentPopulation(); err == nil {
		t.Fatal("p=0 population computed")
	}
}
