// Package mtcd implements Multi-Torrent Concurrent Downloading (Section 3.2
// of the paper): a user who requested i files runs one peer in each of the
// i torrents simultaneously, splitting its upload and download bandwidth i
// ways. The per-torrent fluid model is Eq. (1); its steady state is the
// closed form Eq. (2):
//
//	x_j^i = i·λ_j^i · A,  A = (γ·Σ_l λ_j^l − μ·Σ_l λ_j^l/l) / (γμη·Σ_l λ_j^l)
//	y_j^i = λ_j^i / γ
//
// giving the class-i user online time T_i = i·A + 1/γ (Eq. 2 via Little's
// law). The same closed form evaluates MFCD (Section 3.4), which the paper
// shows is equivalent in the fluid model.
//
// Because a class-i user's i peers run concurrently, the user's wall-clock
// download time equals the per-peer residence time i·A, and the per-file
// download time A is identical for all classes — the fairness property the
// paper points out in Figure 3.
package mtcd

import (
	"errors"
	"fmt"
	"math"

	"mfdl/internal/correlation"
	"mfdl/internal/fluid"
	"mfdl/internal/metrics"
	"mfdl/internal/numeric/ode"
)

// Scheme is the scheme name reported in results.
const Scheme = "MTCD"

// Model couples the fluid parameters with a file-correlation model.
type Model struct {
	fluid.Params
	Corr *correlation.Model
	// Theta is the downloader abort rate θ ≥ 0 (Qiu–Srikant churn).
	// θ = 0 is the paper's assumption and keeps the closed form Eq. (2);
	// θ > 0 switches Evaluate to numeric relaxation of Eq. (1) with an
	// abort term −θ·x in every downloader class.
	Theta float64
}

// New validates and returns an MTCD model.
func New(p fluid.Params, corr *correlation.Model) (*Model, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if corr == nil {
		return nil, errors.New("mtcd: nil correlation model")
	}
	if err := corr.Validate(); err != nil {
		return nil, err
	}
	return &Model{Params: p, Corr: corr}, nil
}

// ErrNotSeedLimited is returned when γ·Σλ ≤ μ·Σλ/l, outside the regime in
// which Eq. (2) yields non-negative downloader populations.
var ErrNotSeedLimited = errors.New("mtcd: Eq. (2) requires γ·Σλ > μ·Σ(λ/l)")

// SharedFactor returns A, the class-independent per-file download time of
// Eq. (2). For p → 0 it degenerates to the single-torrent T = (γ−μ)/(γμη);
// that limit is returned when the total torrent arrival rate vanishes.
func (m *Model) SharedFactor() (float64, error) {
	sum, weighted := 0.0, 0.0
	for l := 1; l <= m.Corr.K; l++ {
		r := m.Corr.TorrentClassRate(l)
		sum += r
		weighted += r / float64(l)
	}
	if sum <= 0 {
		// p = 0 limit: only class-1 mass remains and A → T.
		if !m.UploadConstrained() {
			return 0, fluid.ErrNotUploadConstrained
		}
		return (m.Gamma - m.Mu) / (m.Gamma * m.Mu * m.Eta), nil
	}
	a := (m.Gamma*sum - m.Mu*weighted) / (m.Gamma * m.Mu * m.Eta * sum)
	if a <= 0 {
		return 0, ErrNotSeedLimited
	}
	return a, nil
}

// Evaluate returns the steady-state per-class metrics: the closed form
// Eq. (2) for θ = 0, numeric relaxation with the abort term for θ > 0.
func (m *Model) Evaluate() (*metrics.SchemeResult, error) {
	if m.Theta > 0 {
		return m.evaluateTheta()
	}
	a, err := m.SharedFactor()
	if err != nil {
		return nil, err
	}
	res := &metrics.SchemeResult{Scheme: Scheme}
	for i := 1; i <= m.Corr.K; i++ {
		fi := float64(i)
		res.Classes = append(res.Classes, metrics.PerClass{
			Class:        i,
			EntryRate:    m.Corr.UserRate(i),
			DownloadTime: fi * a,
			OnlineTime:   fi*a + 1/m.Gamma,
		})
	}
	if err := res.Validate(); err != nil {
		return nil, err
	}
	return res, nil
}

// evaluateTheta handles θ > 0: it relaxes Eq. (1) with the −θ·x abort
// term to its fixed point and converts populations to times via Little's
// law. A class-i user's i peers run concurrently, so its wall-clock
// download time equals one peer's residence x/λ, and the seed population
// adds y/λ (which equals the completion fraction times 1/γ: aborters
// never seed).
func (m *Model) evaluateTheta() (*metrics.SchemeResult, error) {
	sum := 0.0
	for l := 1; l <= m.Corr.K; l++ {
		sum += m.Corr.TorrentClassRate(l)
	}
	res := &metrics.SchemeResult{Scheme: Scheme}
	if sum <= 0 {
		// p → 0 limit: each torrent degenerates to a Qiu–Srikant single
		// torrent with aborts. Its RHS is homogeneous of degree 1 in
		// (λ, x, y), so per-file times are λ-invariant; solve at λ = 1.
		st := &fluid.SingleTorrent{Params: m.Params, Lambda: 1, Theta: m.Theta}
		x, y, err := st.SteadyStateNumeric(fluid.SteadyStateOptions{})
		if err != nil {
			return nil, fmt.Errorf("mtcd: θ>0 single-torrent limit: %w", err)
		}
		for i := 1; i <= m.Corr.K; i++ {
			fi := float64(i)
			res.Classes = append(res.Classes, metrics.PerClass{
				Class: i, EntryRate: m.Corr.UserRate(i),
				DownloadTime: fi * x,
				OnlineTime:   fi*x + y,
			})
		}
		return res, res.Validate()
	}
	ss, err := fluid.SteadyStateHybrid(m.NewODE(), ode.SteadyStateOptions{})
	if err != nil {
		return nil, fmt.Errorf("mtcd: θ>0 relaxation: %w", err)
	}
	k := m.Corr.K
	x, y := ss[:k], ss[k:]
	for i := 1; i <= k; i++ {
		rate := m.Corr.TorrentClassRate(i)
		pc := metrics.PerClass{Class: i, EntryRate: m.Corr.UserRate(i)}
		if rate > 0 {
			pc.DownloadTime = x[i-1] / rate
			pc.OnlineTime = (x[i-1] + y[i-1]) / rate
		} else {
			pc.DownloadTime = math.NaN()
			pc.OnlineTime = math.NaN()
		}
		res.Classes = append(res.Classes, pc)
	}
	return res, res.Validate()
}

// SteadyStatePopulations returns the closed-form per-class downloader and
// seed populations (x_j^i, y_j^i) in one torrent, indexed by class-1 at
// index 0.
func (m *Model) SteadyStatePopulations() (x, y []float64, err error) {
	a, err := m.SharedFactor()
	if err != nil {
		return nil, nil, err
	}
	x = make([]float64, m.Corr.K)
	y = make([]float64, m.Corr.K)
	for i := 1; i <= m.Corr.K; i++ {
		r := m.Corr.TorrentClassRate(i)
		x[i-1] = float64(i) * r * a
		y[i-1] = r / m.Gamma
	}
	return x, y, nil
}

// ODE exposes the per-torrent fluid model Eq. (1) as a fluid.Model with
// state [x^1..x^K, y^1..y^K] so that the closed form can be cross-checked
// by relaxation and the fixed point's stability analyzed.
type ODE struct {
	m *Model
}

// NewODE wraps the model's Eq. (1) dynamics.
func (m *Model) NewODE() *ODE { return &ODE{m: m} }

// Dim implements fluid.Model.
func (o *ODE) Dim() int { return 2 * o.m.Corr.K }

// RHS implements fluid.Model: Eq. (1) for one torrent.
func (o *ODE) RHS(_ float64, s, dst []float64) {
	k := o.m.Corr.K
	mu, eta, gamma := o.m.Mu, o.m.Eta, o.m.Gamma
	// Share denominator Σ_l x^l/l and seed service Σ_l (μ/l)·y^l.
	shareDen, seedService := 0.0, 0.0
	for l := 1; l <= k; l++ {
		x := s[l-1]
		if x < 0 {
			x = 0
		}
		y := s[k+l-1]
		if y < 0 {
			y = 0
		}
		shareDen += x / float64(l)
		seedService += mu / float64(l) * y
	}
	for i := 1; i <= k; i++ {
		x := s[i-1]
		if x < 0 {
			x = 0
		}
		y := s[k+i-1]
		if y < 0 {
			y = 0
		}
		fromPeers := eta * mu / float64(i) * x
		fromSeeds := 0.0
		if shareDen > 0 {
			fromSeeds = (x / float64(i)) / shareDen * seedService
		}
		served := fromPeers + fromSeeds
		dst[i-1] = o.m.Corr.TorrentClassRate(i) - o.m.Theta*x - served
		dst[k+i-1] = served - gamma*y
	}
}

// InitialState implements fluid.Model.
func (o *ODE) InitialState() []float64 {
	k := o.m.Corr.K
	s := make([]float64, 2*k)
	for i := 1; i <= k; i++ {
		r := o.m.Corr.TorrentClassRate(i)
		s[i-1] = r*10 + 1e-6
		s[k+i-1] = r/o.m.Gamma*0.5 + 1e-6
	}
	return s
}

var _ fluid.Model = (*ODE)(nil)

// SteadyStateODE relaxes Eq. (1) numerically and returns per-class (x, y),
// for cross-validation against the closed form.
func (m *Model) SteadyStateODE(opt ode.SteadyStateOptions) (x, y []float64, err error) {
	o := m.NewODE()
	ss, err := fluid.SteadyState(o, opt)
	if err != nil {
		return nil, nil, fmt.Errorf("mtcd: relaxation failed: %w", err)
	}
	k := m.Corr.K
	return ss[:k], ss[k:], nil
}
