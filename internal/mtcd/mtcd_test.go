package mtcd

import (
	"math"
	"testing"
	"testing/quick"

	"mfdl/internal/correlation"
	"mfdl/internal/fluid"
	"mfdl/internal/numeric/ode"
)

func model(t *testing.T, k int, p float64) *Model {
	t.Helper()
	corr, err := correlation.New(k, p, 1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(fluid.PaperParams, corr)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewValidation(t *testing.T) {
	corr, _ := correlation.New(10, 0.5, 1)
	if _, err := New(fluid.Params{}, corr); err == nil {
		t.Fatal("zero params accepted")
	}
	if _, err := New(fluid.PaperParams, nil); err == nil {
		t.Fatal("nil correlation accepted")
	}
}

func TestSharedFactorKnownValues(t *testing.T) {
	// Hand-computed from Eq. (2) with K=10, μ=0.02, η=0.5, γ=0.05, λ₀=1:
	// A(p=1) = (0.05·1 − 0.02·0.1)/(0.0005·1) = 96
	// A(p=0.1) uses Σλ = p, Σλ/l = (1−0.9¹⁰)/10 → A ≈ 73.9474.
	m1 := model(t, 10, 1)
	a, err := m1.SharedFactor()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-96) > 1e-9 {
		t.Fatalf("A(p=1) = %v, want 96", a)
	}
	m01 := model(t, 10, 0.1)
	a01, err := m01.SharedFactor()
	if err != nil {
		t.Fatal(err)
	}
	want := (0.05*0.1 - 0.02*(1-math.Pow(0.9, 10))/10) / (0.05 * 0.02 * 0.5 * 0.1)
	if math.Abs(a01-want) > 1e-9 {
		t.Fatalf("A(p=0.1) = %v, want %v", a01, want)
	}
	if math.Abs(want-73.9474) > 0.01 {
		t.Fatalf("hand-computed reference drifted: %v", want)
	}
}

func TestDegeneratesToSingleTorrentAtK1(t *testing.T) {
	// Paper Section 3.3: with K=1 (hence only class 1) the model must
	// reproduce the Qiu–Srikant single-torrent result T = 60.
	m := model(t, 1, 0.8)
	a, err := m.SharedFactor()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-60) > 1e-9 {
		t.Fatalf("K=1 factor %v, want 60", a)
	}
	res, err := m.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	c, _ := res.Class(1)
	if math.Abs(c.OnlineTime-80) > 1e-9 {
		t.Fatalf("K=1 online time %v, want 80", c.OnlineTime)
	}
}

func TestZeroCorrelationLimitEqualsMTSD(t *testing.T) {
	m := model(t, 10, 0)
	a, err := m.SharedFactor()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-60) > 1e-9 {
		t.Fatalf("p=0 limit %v, want 60", a)
	}
}

func TestSharedFactorMonotoneInP(t *testing.T) {
	// More correlation ⇒ relatively fewer class-1 fast-seeding peers per
	// torrent ⇒ larger A. Check monotonicity on a grid.
	prev := -math.MaxFloat64
	for step := 1; step <= 20; step++ {
		p := float64(step) / 20
		m := model(t, 10, p)
		a, err := m.SharedFactor()
		if err != nil {
			t.Fatalf("p=%v: %v", p, err)
		}
		if a < prev {
			t.Fatalf("A not monotone at p=%v: %v < %v", p, a, prev)
		}
		prev = a
	}
}

func TestEvaluateFairnessAndOnlineTimes(t *testing.T) {
	m := model(t, 10, 0.5)
	res, err := m.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	a, _ := m.SharedFactor()
	for _, c := range res.Classes {
		// Download time per file is class-independent (fairness).
		if math.Abs(c.DownloadPerFile()-a) > 1e-9 {
			t.Fatalf("class %d download per file %v, want %v", c.Class, c.DownloadPerFile(), a)
		}
		// Online per file decreases with class: A + 1/(iγ).
		want := a + 1/(float64(c.Class)*0.05)
		if math.Abs(c.OnlinePerFile()-want) > 1e-9 {
			t.Fatalf("class %d online per file %v, want %v", c.Class, c.OnlinePerFile(), want)
		}
	}
}

func TestAvgOnlineAtFullCorrelation(t *testing.T) {
	res, err := model(t, 10, 1).Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	// Only class 10 exists: avg per file = A + 1/(10·γ) = 96 + 2 = 98.
	if got := res.AvgOnlinePerFile(); math.Abs(got-98) > 1e-9 {
		t.Fatalf("avg online per file at p=1: %v, want 98", got)
	}
}

func TestMTCDWorseThanMTSDAtHighP(t *testing.T) {
	// Figure 2's shape: MTCD ≈ MTSD (80) as p→0 and worse at p→1.
	low, err := model(t, 10, 0.01).Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(low.AvgOnlinePerFile()-80) > 1 {
		t.Fatalf("p→0 avg %v, want ≈80", low.AvgOnlinePerFile())
	}
	high, err := model(t, 10, 1).Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if high.AvgOnlinePerFile() <= 80 {
		t.Fatalf("p=1 avg %v should exceed MTSD's 80", high.AvgOnlinePerFile())
	}
}

func TestSteadyStatePopulationsFlowBalance(t *testing.T) {
	// γ·y_i must equal the class entry rate (every arrival eventually
	// seeds and departs).
	m := model(t, 10, 0.6)
	_, y, err := m.SteadyStatePopulations()
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 10; i++ {
		if math.Abs(0.05*y[i-1]-m.Corr.TorrentClassRate(i)) > 1e-12 {
			t.Fatalf("class %d flow imbalance", i)
		}
	}
}

func TestODESteadyStateMatchesClosedForm(t *testing.T) {
	for _, p := range []float64{0.1, 0.5, 0.9} {
		m := model(t, 10, p)
		xc, yc, err := m.SteadyStatePopulations()
		if err != nil {
			t.Fatal(err)
		}
		xo, yo, err := m.SteadyStateODE(ode.SteadyStateOptions{Step: 1, MaxTime: 2e6, Tol: 1e-12})
		if err != nil {
			t.Fatalf("p=%v: %v", p, err)
		}
		for i := 0; i < 10; i++ {
			if xc[i] > 1e-9 && math.Abs(xo[i]-xc[i]) > 1e-4*xc[i]+1e-6 {
				t.Fatalf("p=%v class %d: ODE x=%v closed=%v", p, i+1, xo[i], xc[i])
			}
			if yc[i] > 1e-9 && math.Abs(yo[i]-yc[i]) > 1e-4*yc[i]+1e-6 {
				t.Fatalf("p=%v class %d: ODE y=%v closed=%v", p, i+1, yo[i], yc[i])
			}
		}
	}
}

func TestODEFixedPointResidual(t *testing.T) {
	m := model(t, 10, 0.7)
	x, y, err := m.SteadyStatePopulations()
	if err != nil {
		t.Fatal(err)
	}
	state := append(append([]float64{}, x...), y...)
	if r := fluid.Residual(m.NewODE(), state); r > 1e-10 {
		t.Fatalf("closed form is not a fixed point of Eq. (1): residual %v", r)
	}
}

func TestODEFixedPointStable(t *testing.T) {
	m := model(t, 10, 0.9)
	x, y, err := m.SteadyStatePopulations()
	if err != nil {
		t.Fatal(err)
	}
	state := append(append([]float64{}, x...), y...)
	rep, err := fluid.Stability(m.NewODE(), state)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Stable {
		t.Fatalf("Eq. (1) fixed point unstable: abscissa %v", rep.Abscissa)
	}
}

func TestLambda0InvarianceOfTimes(t *testing.T) {
	f := func(scaleRaw uint8) bool {
		scale := float64(scaleRaw%20) + 1
		c1, err1 := correlation.New(10, 0.4, 1)
		c2, err2 := correlation.New(10, 0.4, scale)
		if err1 != nil || err2 != nil {
			return false
		}
		m1, _ := New(fluid.PaperParams, c1)
		m2, _ := New(fluid.PaperParams, c2)
		a1, e1 := m1.SharedFactor()
		a2, e2 := m2.SharedFactor()
		return e1 == nil && e2 == nil && math.Abs(a1-a2) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNotSeedLimitedDetected(t *testing.T) {
	// γ barely above μ but μΣλ/l can exceed γΣλ when most mass is in
	// class 1... construct γ < μ case via direct params: γ=0.021, μ=0.02,
	// p tiny so Σλ/l ≈ Σλ: A = (γ−μ)/(γμη) > 0 still. Make γ < μ:
	corr, _ := correlation.New(10, 0.01, 1)
	m, err := New(fluid.Params{Mu: 0.05, Eta: 0.5, Gamma: 0.02}, corr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.SharedFactor(); err == nil {
		t.Fatal("non-seed-limited regime accepted")
	}
}

func TestEtaOneIdentity(t *testing.T) {
	// At η = 1 the MTCD average online time per file is exactly 1/μ for
	// every correlation: avg = A + (1/γ)(W/S) and the W/S terms cancel
	// (found during the E10 ablation; see EXPERIMENTS.md).
	for _, p := range []float64{0.05, 0.3, 0.7, 1} {
		corr, err := correlation.New(10, p, 1)
		if err != nil {
			t.Fatal(err)
		}
		m, err := New(fluid.Params{Mu: 0.02, Eta: 1, Gamma: 0.05}, corr)
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Evaluate()
		if err != nil {
			t.Fatal(err)
		}
		if got := res.AvgOnlinePerFile(); math.Abs(got-50) > 1e-9 {
			t.Fatalf("p=%v: avg %v, want exactly 1/μ = 50", p, got)
		}
	}
}
