// The sim-replica job kind: simulator replica batches as distributable
// jobs. A spec's params carry one simulator configuration per grid cell;
// the executable cells are the (grid cell × replica index) pairs, seeded
// by the replica engine's derivation scheme, so a distributed run draws
// exactly the samples a local replica.Run would — byte-identical at any
// worker count, with R = 1 pinned to the unreplicated goldens.
package sim

import (
	"context"
	"encoding/json"
	"fmt"

	"mfdl/internal/replica"
	"mfdl/internal/rng"
	"mfdl/internal/runner"
	"mfdl/internal/scheme"
)

// JobKindSimReplica is the job kind of a replicated simulation sweep.
const JobKindSimReplica = "sim-replica"

// JobCell is one grid cell's simulator selection: a scheme plus exactly
// one simulator configuration, exactly as sim.New takes them. The
// embedded configuration must carry Seed 0 (replica seeds are derived by
// the engine) and a Scheme equal to the cell's — NewJobSpec normalizes
// both, Validate enforces them, so equal configurations always encode to
// equal bytes and therefore share sample-store entries.
type JobCell struct {
	// Scheme is the downloading scheme the cell simulates.
	Scheme scheme.SimScheme `json:"scheme"`
	// Config selects and parameterizes the simulator.
	Config Config `json:"config"`
}

// SampleKey renders the cell's sample-store identity: everything that
// determines its samples except the replica seed. Cells with equal
// configurations share a key — and therefore share stored samples — no
// matter which spec, grid position or base seed they appear under. Only
// normalized cells (as produced by NewJobSpec) key correctly; local
// callers should derive keys from Params(spec), not from raw inputs.
func (c JobCell) SampleKey() (string, error) {
	data, err := json.Marshal(c)
	if err != nil {
		return "", fmt.Errorf("sim: job cell: %w", err)
	}
	return "sample v" + fmt.Sprint(replica.SampleSchemaVersion) + " " + string(data), nil
}

// JobParams is the sim-replica kind's JobSpec.Params payload.
type JobParams struct {
	// Cells holds one simulator configuration per grid cell, in cell
	// order.
	Cells []JobCell `json:"cells"`
}

// NewJobSpec lowers a list of simulator cells into a runnable JobSpec:
// Dims is the degenerate "cell" axis indexing the configurations, Seed
// and Replicas carry the replica engine's settings, and Params holds the
// normalized cells (embedded Seed zeroed, embedded Scheme aligned — the
// engine-derived replica seeds and the cell's scheme are authoritative).
func NewJobSpec(cells []JobCell, seed uint64, replicas int) (runner.JobSpec, error) {
	if len(cells) == 0 {
		return runner.JobSpec{}, fmt.Errorf("sim: job needs at least one cell")
	}
	if replicas < 0 {
		return runner.JobSpec{}, fmt.Errorf("sim: job replicas %d must be >= 0", replicas)
	}
	norm := make([]JobCell, len(cells))
	for i, c := range cells {
		nc := JobCell{Scheme: c.Scheme}
		switch {
		case c.Config.Chunk != nil && c.Config.Flow != nil:
			return runner.JobSpec{}, fmt.Errorf("sim: job cell %d: Chunk and Flow are mutually exclusive", i)
		case c.Config.Chunk != nil:
			cfg := *c.Config.Chunk
			cfg.Seed = 0
			cfg.Scheme = c.Scheme
			nc.Config.Chunk = &cfg
		case c.Config.Flow != nil:
			cfg := *c.Config.Flow
			cfg.Seed = 0
			cfg.Scheme = c.Scheme
			nc.Config.Flow = &cfg
		default:
			return runner.JobSpec{}, fmt.Errorf("sim: job cell %d: one of Chunk or Flow must be set", i)
		}
		norm[i] = nc
	}
	params, err := json.Marshal(JobParams{Cells: norm})
	if err != nil {
		return runner.JobSpec{}, fmt.Errorf("sim: job params: %w", err)
	}
	g, err := runner.Indexed("cell", len(norm))
	if err != nil {
		return runner.JobSpec{}, err
	}
	spec := runner.JobSpec{
		Schema:   runner.JobSpecSchemaVersion,
		Kind:     JobKindSimReplica,
		Dims:     g.Dims(),
		Seed:     seed,
		Replicas: replicas,
		Params:   params,
	}
	if err := spec.Validate(); err != nil {
		return runner.JobSpec{}, err
	}
	return spec, nil
}

// Params decodes a sim-replica spec's cell configurations.
func Params(spec runner.JobSpec) (JobParams, error) {
	if spec.Kind != JobKindSimReplica {
		return JobParams{}, fmt.Errorf("sim: spec kind %q is not %q", spec.Kind, JobKindSimReplica)
	}
	var p JobParams
	if err := json.Unmarshal(spec.Params, &p); err != nil {
		return JobParams{}, fmt.Errorf("sim: job params: %w", err)
	}
	return p, nil
}

// jobReplicas normalizes the spec's replica count (0 means 1, as in the
// replica engine).
func jobReplicas(spec runner.JobSpec) int {
	if spec.Replicas <= 0 {
		return 1
	}
	return spec.Replicas
}

// init registers the sim-replica kind. The registration reaches every
// binary that can construct a simulator (experiments, the sweep CLIs,
// fabric workers) through their existing imports of this package; a
// process without it rejects sim-replica specs as an unknown kind, which
// is the correct refusal for a build that could not execute them anyway.
func init() {
	runner.RegisterJobKind(runner.JobKind{
		Name:      JobKindSimReplica,
		Validate:  validateJob,
		Cells:     jobCells,
		Evaluate:  evaluateJobCell,
		SampleRef: jobSampleRef,
	})
}

func validateJob(spec runner.JobSpec) error {
	p, err := Params(spec)
	if err != nil {
		return err
	}
	if len(p.Cells) == 0 {
		return fmt.Errorf("sim: job has no cells")
	}
	if len(spec.Dims) != 1 || spec.Dims[0].Name != "cell" {
		return fmt.Errorf("sim: job dims must be the single %q axis", "cell")
	}
	if len(spec.Dims[0].Values) != len(p.Cells) {
		return fmt.Errorf("sim: job sweeps %d cells but params carry %d",
			len(spec.Dims[0].Values), len(p.Cells))
	}
	for i, v := range spec.Dims[0].Values {
		if v != float64(i) {
			return fmt.Errorf("sim: job cell axis value %d is %v, want %d", i, v, i)
		}
	}
	for i, c := range p.Cells {
		var embeddedSeed uint64
		var embeddedScheme scheme.SimScheme
		switch {
		case c.Config.Chunk != nil:
			embeddedSeed, embeddedScheme = c.Config.Chunk.Seed, c.Config.Chunk.Scheme
		case c.Config.Flow != nil:
			embeddedSeed, embeddedScheme = c.Config.Flow.Seed, c.Config.Flow.Scheme
		}
		if embeddedSeed != 0 {
			return fmt.Errorf("sim: job cell %d embeds seed %d; replica seeds are engine-derived (see NewJobSpec)",
				i, embeddedSeed)
		}
		if _, err := New(c.Scheme, c.Config); err != nil {
			return fmt.Errorf("sim: job cell %d: %w", i, err)
		}
		if embeddedScheme != c.Scheme {
			return fmt.Errorf("sim: job cell %d embeds scheme %v, cell says %v", i, embeddedScheme, c.Scheme)
		}
	}
	return nil
}

func jobCells(spec runner.JobSpec) (int, error) {
	p, err := Params(spec)
	if err != nil {
		return 0, err
	}
	return len(p.Cells) * jobReplicas(spec), nil
}

// evaluateJobCell computes executable cell i — replica i%R of grid cell
// i/R — and returns its canonical sample encoding. The replica's seed is
// replica.SeedOf(spec.Seed, cell, rep), exactly what a local replica.Run
// over the same cells derives, and the sample store (env.Samples) is
// consulted before simulating, so stored samples are replayed identically
// everywhere.
func evaluateJobCell(ctx context.Context, spec runner.JobSpec, env runner.JobEnv, i int, _ *rng.Source) ([]byte, error) {
	p, err := Params(spec)
	if err != nil {
		return nil, err
	}
	r := jobReplicas(spec)
	cell, rep := i/r, i%r
	if cell >= len(p.Cells) {
		return nil, fmt.Errorf("sim: cell %d outside job of %d", i, len(p.Cells)*r)
	}
	jc := p.Cells[cell]
	s, err := New(jc.Scheme, jc.Config)
	if err != nil {
		return nil, err
	}
	key, err := jc.SampleKey()
	if err != nil {
		return nil, err
	}
	sample, err := replica.SimulateStored(ctx, s,
		replica.Rep{Cell: cell, Replica: rep, Seed: replica.SeedOf(spec.Seed, cell, rep)},
		key, env.Samples, env.Obs)
	if err != nil {
		return nil, err
	}
	return replica.EncodeSample(sample)
}

func jobSampleRef(spec runner.JobSpec, i int) (string, uint64, bool) {
	p, err := Params(spec)
	if err != nil {
		return "", 0, false
	}
	r := jobReplicas(spec)
	cell, rep := i/r, i%r
	if cell >= len(p.Cells) {
		return "", 0, false
	}
	key, err := p.Cells[cell].SampleKey()
	if err != nil {
		return "", 0, false
	}
	return key, replica.SeedOf(spec.Seed, cell, rep), true
}

// RunJob executes a sim-replica job locally over the runner pool and
// reduces each grid cell's replicas into an Agg — numerically identical
// to replica.Run over the same cells, and byte-identical whether the
// payloads were computed here, replayed from a checkpoint, or assembled by
// a fabric coordinator.
func RunJob(ctx context.Context, spec runner.JobSpec, env runner.JobEnv, opts runner.Options) ([]replica.Agg, error) {
	if spec.Kind != JobKindSimReplica {
		return nil, fmt.Errorf("sim: spec kind %q is not %q", spec.Kind, JobKindSimReplica)
	}
	payloads, err := runner.RunJobPayloads(ctx, spec, env, opts)
	if err != nil {
		return nil, err
	}
	return ReduceJob(spec, payloads)
}

// RunJobStopping executes a sim-replica job locally through the replica
// engine's sequential-stopping rule: every grid cell starts at the spec's
// replica count and grows until the CI95 half-width of stop.Metric reaches
// stop.Target (see replica.RunSequential). The spec's Seed keeps the
// derivation identical to RunJob, and env.Samples — keyed exactly as the
// fabric keys them — means every round, and every later re-run at any
// replica count, replays the samples already drawn instead of resampling.
// A disabled rule degrades to plain replica.Run over the same cells.
func RunJobStopping(ctx context.Context, spec runner.JobSpec, env runner.JobEnv, workers int, stop replica.Stopping) ([]replica.Agg, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	p, err := Params(spec)
	if err != nil {
		return nil, err
	}
	sims := make([]replica.Sim, len(p.Cells))
	keys := make([]string, len(p.Cells))
	for i, c := range p.Cells {
		if sims[i], err = New(c.Scheme, c.Config); err != nil {
			return nil, err
		}
		if keys[i], err = c.SampleKey(); err != nil {
			return nil, err
		}
	}
	opts := replica.Options{
		Replicas: spec.Replicas, Workers: workers,
		Seed: spec.Seed, Obs: env.Obs,
	}
	if env.Samples != nil {
		opts.Samples = env.Samples
		opts.SampleKey = func(cell int) string { return keys[cell] }
	}
	return replica.RunSequential(ctx, len(p.Cells), func(cell int) replica.Sim {
		return sims[cell]
	}, opts, stop)
}

// ReduceJob folds a sim-replica job's payloads — in executable-cell order,
// as returned by RunJobPayloads or Coordinator.Payloads — into per-grid-
// cell aggregates via the replica engine's reduction.
func ReduceJob(spec runner.JobSpec, payloads [][]byte) ([]replica.Agg, error) {
	p, err := Params(spec)
	if err != nil {
		return nil, err
	}
	r := jobReplicas(spec)
	if want := len(p.Cells) * r; len(payloads) != want {
		return nil, fmt.Errorf("sim: job has %d payloads, want %d", len(payloads), want)
	}
	out := make([]replica.Agg, len(p.Cells))
	samples := make([]replica.Sample, r)
	for cell := range out {
		for rep := 0; rep < r; rep++ {
			s, err := replica.DecodeSample(payloads[cell*r+rep])
			if err != nil {
				return nil, fmt.Errorf("sim: cell %d replica %d: %w", cell, rep, err)
			}
			samples[rep] = s
		}
		out[cell] = replica.Reduce(samples)
	}
	return out, nil
}
