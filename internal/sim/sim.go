// Package sim unifies the two simulators' entry points behind one
// constructor. The repository has a flow-level event simulator
// (internal/eventsim) and a chunk-level swarm simulator (internal/swarm);
// both adapt to the replica engine through structurally identical
// Sim{Config} wrappers, so every experiment used to switch on the package
// itself. sim.New is that switch, written once: callers pick a scheme and
// fill in whichever simulator configuration they mean, and get back a
// replica.Sim ready for replica.Run.
//
//	s, err := sim.New(scheme.SimCMFSD, sim.Config{Flow: &eventsim.Config{...}})
//	aggs, err := replica.Run(ctx, 1, func(int) replica.Sim { return s }, opts)
//
// The concrete packages remain available for callers that need
// simulator-specific machinery (result structs, traces, population series).
package sim

import (
	"errors"
	"fmt"

	"mfdl/internal/eventsim"
	"mfdl/internal/replica"
	"mfdl/internal/scheme"
	"mfdl/internal/swarm"
)

// Config selects and parameterizes one simulator. Exactly one of the two
// fields must be non-nil; the selected configuration's Scheme field is
// overwritten by the scheme passed to New.
type Config struct {
	// Chunk selects the chunk-level swarm simulator (internal/swarm).
	Chunk *swarm.Config
	// Flow selects the flow-level event simulator (internal/eventsim).
	Flow *eventsim.Config
}

// Validate checks that exactly one simulator is selected and that its
// configuration is valid. Underlying validation errors keep their package
// prefixes ("swarm: ...", "eventsim: ...") so error-message goldens do not
// depend on which entry point a caller used.
func (c Config) Validate() error {
	switch {
	case c.Chunk != nil && c.Flow != nil:
		return errors.New("sim: Chunk and Flow are mutually exclusive")
	case c.Chunk != nil:
		return c.Chunk.Validate()
	case c.Flow != nil:
		return c.Flow.Validate()
	default:
		return errors.New("sim: one of Chunk or Flow must be set")
	}
}

// New returns a replica.Sim running the given scheme on whichever
// simulator cfg selects. The pointed-to configuration is copied, its
// Scheme field replaced by sc, and the result validated; the caller's
// configuration is never mutated. Replica seeding follows the engine's
// scheme: the wrapper reruns the copied configuration at each
// engine-derived seed.
func New(sc scheme.SimScheme, cfg Config) (replica.Sim, error) {
	switch {
	case cfg.Chunk != nil && cfg.Flow != nil:
		return nil, errors.New("sim: Chunk and Flow are mutually exclusive")
	case cfg.Chunk != nil:
		if sc == scheme.SimMTCD {
			// Not a generic validation failure: the scheme exists, just not
			// at chunk level. Point at the simulator that has it.
			return nil, fmt.Errorf("sim: %v has no chunk-level simulator (one swarm per torrent); use Flow", sc)
		}
		c := *cfg.Chunk
		c.Scheme = sc
		if err := c.Validate(); err != nil {
			return nil, err
		}
		return swarm.Sim{Config: c}, nil
	case cfg.Flow != nil:
		c := *cfg.Flow
		c.Scheme = sc
		if err := c.Validate(); err != nil {
			return nil, err
		}
		return eventsim.Sim{Config: c}, nil
	default:
		return nil, errors.New("sim: one of Chunk or Flow must be set")
	}
}
