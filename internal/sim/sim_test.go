package sim

import (
	"context"
	"strings"
	"testing"

	"mfdl/internal/eventsim"
	"mfdl/internal/fluid"
	"mfdl/internal/replica"
	"mfdl/internal/scheme"
	"mfdl/internal/swarm"
)

// The simulators' scheme enums must stay aliases of the shared identifier:
// a constant from either package is the same value as the scheme.Sim* one.
func TestSchemeAliases(t *testing.T) {
	cases := []struct {
		got  scheme.SimScheme
		want scheme.SimScheme
	}{
		{eventsim.MTCD, scheme.SimMTCD},
		{eventsim.MTSD, scheme.SimMTSD},
		{eventsim.MFCD, scheme.SimMFCD},
		{eventsim.CMFSD, scheme.SimCMFSD},
		{swarm.MFCD, scheme.SimMFCD},
		{swarm.CMFSD, scheme.SimCMFSD},
		{swarm.MTSD, scheme.SimMTSD},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("alias %v != shared %v", c.got, c.want)
		}
	}
}

func flowConfig() *eventsim.Config {
	return &eventsim.Config{
		Params:  fluid.Params{Mu: 0.2, Eta: 0.5, Gamma: 0.5},
		K:       4,
		Lambda0: 1,
		P:       1,
		Horizon: 300,
		Warmup:  50,
		Seed:    1,
	}
}

func chunkConfig() *swarm.Config {
	cfg := swarm.DefaultConfig
	cfg.Horizon = 120
	cfg.Warmup = 20
	return &cfg
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want string // substring of the error; "" means valid
	}{
		{"neither", Config{}, "sim: one of Chunk or Flow"},
		{"both", Config{Chunk: chunkConfig(), Flow: flowConfig()}, "sim: Chunk and Flow"},
		{"flow ok", Config{Flow: flowConfig()}, ""},
		{"chunk ok", Config{Chunk: chunkConfig()}, ""},
	}
	// Invalid underlying configs keep their package prefixes.
	badFlow := flowConfig()
	badFlow.K = 0
	cases = append(cases, struct {
		name string
		cfg  Config
		want string
	}{"flow invalid", Config{Flow: badFlow}, "eventsim: "})
	badChunk := chunkConfig()
	badChunk.K = 0
	cases = append(cases, struct {
		name string
		cfg  Config
		want string
	}{"chunk invalid", Config{Chunk: badChunk}, "swarm: "})
	for _, c := range cases {
		err := c.cfg.Validate()
		if c.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", c.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %v, want substring %q", c.name, err, c.want)
		}
	}
}

func TestNewErrors(t *testing.T) {
	if _, err := New(scheme.SimCMFSD, Config{}); err == nil {
		t.Error("New accepted an empty Config")
	}
	if _, err := New(scheme.SimCMFSD, Config{Chunk: chunkConfig(), Flow: flowConfig()}); err == nil {
		t.Error("New accepted both simulators")
	}
	if _, err := New(scheme.SimMTCD, Config{Chunk: chunkConfig()}); err == nil ||
		!strings.Contains(err.Error(), "no chunk-level simulator") {
		t.Errorf("New(MTCD, Chunk) error = %v, want chunk-level rejection", err)
	}
	bad := flowConfig()
	bad.Lambda0 = 0
	if _, err := New(scheme.SimMTCD, Config{Flow: bad}); err == nil ||
		!strings.HasPrefix(err.Error(), "eventsim: ") {
		t.Errorf("invalid flow config error = %v, want eventsim prefix", err)
	}
}

// TestNewMatchesDirectConstruction checks that the unified constructor is a
// pure repackaging: the sample it produces is identical to wiring the
// simulator's own Sim wrapper by hand, and the caller's config is left
// untouched.
func TestNewMatchesDirectConstruction(t *testing.T) {
	rep := replica.Rep{Cell: 0, Replica: 0, Seed: 7}

	flow := flowConfig()
	flow.Scheme = eventsim.MTSD // overwritten by New
	s, err := New(scheme.SimCMFSD, Config{Flow: flow})
	if err != nil {
		t.Fatal(err)
	}
	if flow.Scheme != eventsim.MTSD {
		t.Fatalf("New mutated the caller's config: Scheme = %v", flow.Scheme)
	}
	direct := *flowConfig()
	direct.Scheme = eventsim.CMFSD
	got, err := s.Simulate(context.Background(), rep)
	if err != nil {
		t.Fatal(err)
	}
	want, err := eventsim.Sim{Config: direct}.Simulate(context.Background(), rep)
	if err != nil {
		t.Fatal(err)
	}
	for key, v := range want.Values {
		if got.Values[key] != v {
			t.Errorf("flow value %q: %v != %v", key, got.Values[key], v)
		}
	}
	for key, v := range want.Counts {
		if got.Counts[key] != v {
			t.Errorf("flow count %q: %v != %v", key, got.Counts[key], v)
		}
	}

	chunk := chunkConfig()
	cs, err := New(scheme.SimMTSD, Config{Chunk: chunk})
	if err != nil {
		t.Fatal(err)
	}
	directChunk := *chunkConfig()
	directChunk.Scheme = swarm.MTSD
	gotC, err := cs.Simulate(context.Background(), rep)
	if err != nil {
		t.Fatal(err)
	}
	wantC, err := swarm.Sim{Config: directChunk}.Simulate(context.Background(), rep)
	if err != nil {
		t.Fatal(err)
	}
	for key, v := range wantC.Values {
		if gotC.Values[key] != v {
			t.Errorf("chunk value %q: %v != %v", key, gotC.Values[key], v)
		}
	}
}
