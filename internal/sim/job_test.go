package sim

import (
	"context"
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"

	"mfdl/internal/replica"
	"mfdl/internal/runner"
	"mfdl/internal/runner/diskcache"
	"mfdl/internal/scheme"
)

// testJobCells builds a fast two-cell flow-level grid (p = 0.5, 0.9).
func testJobCells(t *testing.T) []JobCell {
	t.Helper()
	mk := func(p float64) JobCell {
		cfg := *flowConfig()
		cfg.Horizon = 120
		cfg.Warmup = 20
		cfg.P = p
		return JobCell{Scheme: scheme.SimMTCD, Config: Config{Flow: &cfg}}
	}
	return []JobCell{mk(0.5), mk(0.9)}
}

func testJobSpec(t *testing.T, seed uint64, replicas int) runner.JobSpec {
	t.Helper()
	spec, err := NewJobSpec(testJobCells(t), seed, replicas)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// NewJobSpec normalizes every cell — embedded seed zeroed, embedded scheme
// aligned to the cell's — without touching the caller's config, and frames
// the degenerate "cell" axis over the configurations.
func TestNewJobSpecNormalizes(t *testing.T) {
	cfg := *flowConfig()
	cfg.Seed = 99                // engine-derived: must be zeroed
	cfg.Scheme = scheme.SimCMFSD // cell's scheme is authoritative
	cells := []JobCell{{Scheme: scheme.SimMTCD, Config: Config{Flow: &cfg}}}
	spec, err := NewJobSpec(cells, 7, 3)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Seed != 99 || cfg.Scheme != scheme.SimCMFSD {
		t.Error("NewJobSpec mutated the caller's config")
	}
	if spec.Kind != JobKindSimReplica || spec.Seed != 7 || spec.Replicas != 3 {
		t.Fatalf("spec header %+v", spec)
	}
	if len(spec.Dims) != 1 || spec.Dims[0].Name != "cell" || len(spec.Dims[0].Values) != 1 {
		t.Fatalf("dims %+v, want single cell axis", spec.Dims)
	}
	p, err := Params(spec)
	if err != nil {
		t.Fatal(err)
	}
	norm := p.Cells[0].Config.Flow
	if norm.Seed != 0 || norm.Scheme != scheme.SimMTCD {
		t.Errorf("normalized cell carries seed %d scheme %v, want 0 / MTCD", norm.Seed, norm.Scheme)
	}
	if !strings.Contains(spec.Fingerprint(), "params=sha256:") {
		t.Errorf("fingerprint %q lacks the params digest", spec.Fingerprint())
	}
}

// Equal configurations key identically no matter the grid position or base
// seed; different configurations never share a key.
func TestJobCellSampleKeyIdentity(t *testing.T) {
	a := testJobSpec(t, 1, 2)
	b := testJobSpec(t, 999, 8) // different seed and R: same configs
	pa, _ := Params(a)
	pb, _ := Params(b)
	for i := range pa.Cells {
		ka, err := pa.Cells[i].SampleKey()
		if err != nil {
			t.Fatal(err)
		}
		kb, err := pb.Cells[i].SampleKey()
		if err != nil {
			t.Fatal(err)
		}
		if ka != kb {
			t.Errorf("cell %d keys differ across specs:\n%s\n%s", i, ka, kb)
		}
	}
	k0, _ := pa.Cells[0].SampleKey()
	k1, _ := pa.Cells[1].SampleKey()
	if k0 == k1 {
		t.Error("distinct configurations share a sample key")
	}
}

func TestNewJobSpecErrors(t *testing.T) {
	good := testJobCells(t)
	if _, err := NewJobSpec(nil, 1, 1); err == nil {
		t.Error("no cells accepted")
	}
	if _, err := NewJobSpec(good, 1, -1); err == nil {
		t.Error("negative replicas accepted")
	}
	if _, err := NewJobSpec([]JobCell{{Scheme: scheme.SimMTCD}}, 1, 1); err == nil {
		t.Error("cell with no simulator accepted")
	}
	both := good[0]
	both.Config.Chunk = chunkConfig()
	if _, err := NewJobSpec([]JobCell{both}, 1, 1); err == nil {
		t.Error("cell with both simulators accepted")
	}
}

// Hand-built specs that dodge NewJobSpec's normalization are rejected by
// Validate — the same gate ParseJobSpec, the coordinator and every worker
// apply before executing anything.
func TestValidateJobRejections(t *testing.T) {
	base := testJobSpec(t, 7, 2)
	reparams := func(t *testing.T, spec runner.JobSpec, mutate func(*JobParams)) runner.JobSpec {
		t.Helper()
		p, err := Params(spec)
		if err != nil {
			t.Fatal(err)
		}
		mutate(&p)
		data, err := json.Marshal(p)
		if err != nil {
			t.Fatal(err)
		}
		spec.Params = data
		return spec
	}
	cases := []struct {
		name string
		spec runner.JobSpec
		want string
	}{
		{"embedded-seed", reparams(t, base, func(p *JobParams) {
			cfg := *p.Cells[0].Config.Flow
			cfg.Seed = 5
			p.Cells[0].Config.Flow = &cfg
		}), "embeds seed"},
		{"embedded-scheme", reparams(t, base, func(p *JobParams) {
			cfg := *p.Cells[0].Config.Flow
			cfg.Scheme = scheme.SimCMFSD
			p.Cells[0].Config.Flow = &cfg
		}), "scheme"},
		{"cell-count", reparams(t, base, func(p *JobParams) {
			p.Cells = p.Cells[:1]
		}), "params carry"},
		{"no-cells", reparams(t, base, func(p *JobParams) {
			p.Cells = nil
		}), "no cells"},
		{"bad-params", func() runner.JobSpec {
			s := base
			s.Params = []byte("{")
			return s
		}(), "job params"},
	}
	wrongAxis := base
	wrongAxis.Dims = []runner.Dim{{Name: "p", Values: []float64{0, 1}}}
	cases = append(cases, struct {
		name string
		spec runner.JobSpec
		want string
	}{"wrong-axis", wrongAxis, "cell"})
	shifted := base
	shifted.Dims = []runner.Dim{{Name: "cell", Values: []float64{0, 5}}}
	cases = append(cases, struct {
		name string
		spec runner.JobSpec
		want string
	}{"shifted-axis", shifted, "axis value"})
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.spec.Validate()
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("Validate() = %v, want substring %q", err, c.want)
			}
		})
	}
}

func TestParamsWrongKind(t *testing.T) {
	spec := testJobSpec(t, 1, 1)
	spec.Kind = "fluid-sweep"
	if _, err := Params(spec); err == nil {
		t.Error("Params accepted a foreign kind")
	}
}

// The job route is the replica engine: RunJob over a spec equals
// replica.Run over the same simulators, bit for bit.
func TestRunJobMatchesReplicaRun(t *testing.T) {
	spec := testJobSpec(t, 9, 3)
	got, err := RunJob(context.Background(), spec, runner.JobEnv{}, runner.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	p, err := Params(spec)
	if err != nil {
		t.Fatal(err)
	}
	sims := make([]replica.Sim, len(p.Cells))
	for i, c := range p.Cells {
		if sims[i], err = New(c.Scheme, c.Config); err != nil {
			t.Fatal(err)
		}
	}
	want, err := replica.Run(context.Background(), len(p.Cells),
		func(cell int) replica.Sim { return sims[cell] },
		replica.Options{Replicas: 3, Seed: 9, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("RunJob != replica.Run")
	}
}

// R = 1 is the unreplicated golden: every aggregate is exactly the single
// sample the simulator produces under the base seed.
func TestRunJobR1MatchesUnreplicated(t *testing.T) {
	spec := testJobSpec(t, 4, 1)
	aggs, err := RunJob(context.Background(), spec, runner.JobEnv{}, runner.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := Params(spec)
	if err != nil {
		t.Fatal(err)
	}
	for cell, c := range p.Cells {
		s, err := New(c.Scheme, c.Config)
		if err != nil {
			t.Fatal(err)
		}
		direct, err := s.Simulate(context.Background(),
			replica.Rep{Cell: cell, Replica: 0, Seed: spec.Seed})
		if err != nil {
			t.Fatal(err)
		}
		for k, v := range direct.Values {
			if got := aggs[cell].Mean(k); math.Float64bits(got) != math.Float64bits(v) &&
				!(math.IsNaN(got) && math.IsNaN(v)) {
				t.Errorf("cell %d value %q: %v, want unreplicated %v", cell, k, got, v)
			}
		}
	}
}

// A sample store turns the second identical run into pure replay.
func TestRunJobReusesStoredSamples(t *testing.T) {
	store, err := diskcache.OpenSamples(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	spec := testJobSpec(t, 2, 2)
	env := runner.JobEnv{Samples: store}
	want, err := RunJob(context.Background(), spec, env, runner.Options{})
	if err != nil {
		t.Fatal(err)
	}
	before := store.Stats()
	if before.Stores != 4 { // 2 cells × 2 replicas
		t.Fatalf("first run stored %d samples, want 4", before.Stores)
	}
	got, err := RunJob(context.Background(), spec, env, runner.Options{})
	if err != nil {
		t.Fatal(err)
	}
	after := store.Stats()
	if after.Hits-before.Hits != 4 || after.Stores != before.Stores {
		t.Fatalf("re-run hits %d stores %d, want 4 replays and no new stores",
			after.Hits-before.Hits, after.Stores-before.Stores)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("replayed aggregates differ")
	}
}

// RunJobStopping keys the store exactly as the fabric's per-cell evaluate
// path does: samples drawn under sequential stopping replay in a plain
// RunJob of the same spec, and vice versa.
func TestRunJobStoppingSharesSampleKeys(t *testing.T) {
	store, err := diskcache.OpenSamples(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	spec := testJobSpec(t, 6, 2)
	env := runner.JobEnv{Samples: store}
	// A huge target converges every cell at the starting R = 2, so the
	// store ends up with exactly the samples RunJob(R=2) needs.
	stop := replica.Stopping{Metric: replica.OnlinePerFile, Target: 1e9, MaxReplicas: 4}
	seq, err := RunJobStopping(context.Background(), spec, env, 0, stop)
	if err != nil {
		t.Fatal(err)
	}
	before := store.Stats()
	plain, err := RunJob(context.Background(), spec, env, runner.Options{})
	if err != nil {
		t.Fatal(err)
	}
	after := store.Stats()
	if after.Hits-before.Hits != 4 || after.Stores != before.Stores {
		t.Fatalf("RunJob after RunJobStopping: %d hits, %d new stores — keys diverge",
			after.Hits-before.Hits, after.Stores-before.Stores)
	}
	if !reflect.DeepEqual(seq, plain) {
		t.Fatal("sequential and plain aggregates differ at equal R")
	}
}

// A disabled stopping rule makes RunJobStopping numerically identical to
// RunJob.
func TestRunJobStoppingDisabledMatchesRunJob(t *testing.T) {
	spec := testJobSpec(t, 5, 2)
	seq, err := RunJobStopping(context.Background(), spec, runner.JobEnv{}, 0, replica.Stopping{})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := RunJob(context.Background(), spec, runner.JobEnv{}, runner.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, plain) {
		t.Fatal("disabled stopping diverges from RunJob")
	}
}

func TestReduceJobErrors(t *testing.T) {
	spec := testJobSpec(t, 1, 2)
	if _, err := ReduceJob(spec, make([][]byte, 3)); err == nil ||
		!strings.Contains(err.Error(), "payloads") {
		t.Errorf("wrong payload count error = %v", err)
	}
	payloads := make([][]byte, 4)
	for i := range payloads {
		payloads[i] = []byte("garbage")
	}
	if _, err := ReduceJob(spec, payloads); err == nil {
		t.Error("undecodable payloads accepted")
	}
}
