package fluid

import (
	"math"
	"testing"
	"testing/quick"
)

func TestParamsValidate(t *testing.T) {
	if err := PaperParams.Validate(); err != nil {
		t.Fatalf("paper params invalid: %v", err)
	}
	bad := []Params{
		{Mu: 0, Eta: 0.5, Gamma: 0.05},
		{Mu: 0.02, Eta: 0, Gamma: 0.05},
		{Mu: 0.02, Eta: 1.5, Gamma: 0.05},
		{Mu: 0.02, Eta: 0.5, Gamma: 0},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("bad params %d accepted", i)
		}
	}
}

func TestUploadConstrained(t *testing.T) {
	if !PaperParams.UploadConstrained() {
		t.Fatal("paper params should be upload constrained (γ > μ)")
	}
	p := Params{Mu: 0.1, Eta: 0.5, Gamma: 0.05}
	if p.UploadConstrained() {
		t.Fatal("γ < μ misreported as upload constrained")
	}
}

func TestSingleTorrentValidation(t *testing.T) {
	if _, err := NewSingleTorrent(PaperParams, 0); err == nil {
		t.Fatal("λ=0 accepted")
	}
	m, err := NewSingleTorrent(PaperParams, 1)
	if err != nil {
		t.Fatal(err)
	}
	m.C = -1
	if err := m.Validate(); err == nil {
		t.Fatal("negative c accepted")
	}
	m.C = 0
	m.Theta = -1
	if err := m.Validate(); err == nil {
		t.Fatal("negative θ accepted")
	}
}

func TestSingleTorrentClosedForm(t *testing.T) {
	m, err := NewSingleTorrent(PaperParams, 1)
	if err != nil {
		t.Fatal(err)
	}
	tDl, err := m.DownloadTime()
	if err != nil {
		t.Fatal(err)
	}
	// (0.05-0.02)/(0.05·0.02·0.5) = 60.
	if math.Abs(tDl-60) > 1e-12 {
		t.Fatalf("download time %v, want 60", tDl)
	}
	tOn, err := m.OnlineTime()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tOn-80) > 1e-12 {
		t.Fatalf("online time %v, want 80", tOn)
	}
}

func TestSingleTorrentSteadyStateMatchesClosedForm(t *testing.T) {
	m, err := NewSingleTorrent(PaperParams, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := SteadyState(m, SteadyStateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	x, y, err := m.SteadyStateClosed()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got[0]-x) > 1e-6*x || math.Abs(got[1]-y) > 1e-6*y {
		t.Fatalf("steady state %v, want (%v, %v)", got, x, y)
	}
}

func TestSingleTorrentLittleLaw(t *testing.T) {
	// x*/λ must equal the closed-form download time.
	m, _ := NewSingleTorrent(PaperParams, 3)
	x, _, err := m.SteadyStateClosed()
	if err != nil {
		t.Fatal(err)
	}
	tDl, _ := m.DownloadTime()
	if math.Abs(x/m.Lambda-tDl) > 1e-12 {
		t.Fatalf("Little's law broken: x/λ = %v, T = %v", x/m.Lambda, tDl)
	}
}

func TestClosedFormRequiresUploadConstraint(t *testing.T) {
	m := &SingleTorrent{Params: Params{Mu: 0.1, Eta: 0.5, Gamma: 0.05}, Lambda: 1}
	if _, err := m.DownloadTime(); err != ErrNotUploadConstrained {
		t.Fatalf("err = %v, want ErrNotUploadConstrained", err)
	}
	if _, _, err := m.SteadyStateClosed(); err != ErrNotUploadConstrained {
		t.Fatalf("err = %v", err)
	}
	if _, err := m.OnlineTime(); err == nil {
		t.Fatal("online time with γ<μ accepted")
	}
}

func TestLambdaHomogeneity(t *testing.T) {
	// Populations scale linearly with λ; times are invariant.
	f := func(scaleRaw uint8) bool {
		scale := float64(scaleRaw%50) + 1
		a, err1 := NewSingleTorrent(PaperParams, 1)
		b, err2 := NewSingleTorrent(PaperParams, scale)
		if err1 != nil || err2 != nil {
			return false
		}
		xa, ya, _ := a.SteadyStateClosed()
		xb, yb, _ := b.SteadyStateClosed()
		ta, _ := a.DownloadTime()
		tb, _ := b.DownloadTime()
		return math.Abs(xb-scale*xa) < 1e-9 &&
			math.Abs(yb-scale*ya) < 1e-9 && ta == tb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDownloadConstrainedRegime(t *testing.T) {
	// With a tiny download bandwidth c the served rate is c·x, so the
	// steady state has x = λ/(c+θ)... with θ=0: c·x = γ·y and λ = c·x.
	m, err := NewSingleTorrent(PaperParams, 1)
	if err != nil {
		t.Fatal(err)
	}
	m.C = 0.001 // far below μη
	got, err := SteadyState(m, SteadyStateOptions{MaxTime: 5e6})
	if err != nil {
		t.Fatal(err)
	}
	// At the fixed point: served = λ, so c·x = λ → x = 1000, y = λ/γ = 20.
	if math.Abs(got[0]-1000) > 1 || math.Abs(got[1]-20) > 0.1 {
		t.Fatalf("download-constrained steady state %v, want ≈(1000, 20)", got)
	}
}

func TestAbortRateReducesCompletions(t *testing.T) {
	m, err := NewSingleTorrent(PaperParams, 1)
	if err != nil {
		t.Fatal(err)
	}
	m.Theta = 0.01
	got, err := SteadyState(m, SteadyStateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Completion rate γ·y must now be below λ (some peers abort).
	if compl := m.Gamma * got[1]; compl >= 1 {
		t.Fatalf("completions %v should be < λ = 1 with aborts", compl)
	}
}

func TestStabilityOfSingleTorrent(t *testing.T) {
	m, err := NewSingleTorrent(PaperParams, 1)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := SteadyState(m, SteadyStateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Stability(m, ss)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Stable {
		t.Fatalf("single-torrent fixed point reported unstable: %+v", rep)
	}
	if len(rep.Eigenvalues) != 2 {
		t.Fatalf("want 2 eigenvalues, got %d", len(rep.Eigenvalues))
	}
}

func TestJacobianMatchesAnalytic(t *testing.T) {
	// For θ=0, unconstrained c, in the upload-limited branch:
	// J = [[-μη, -μ], [μη, μ-γ]].
	m, err := NewSingleTorrent(PaperParams, 1)
	if err != nil {
		t.Fatal(err)
	}
	j := Jacobian(m, []float64{30, 20})
	want := [2][2]float64{
		{-m.Mu * m.Eta, -m.Mu},
		{m.Mu * m.Eta, m.Mu - m.Gamma},
	}
	for i := 0; i < 2; i++ {
		for k := 0; k < 2; k++ {
			if math.Abs(j.At(i, k)-want[i][k]) > 1e-6 {
				t.Fatalf("J[%d][%d] = %v, want %v", i, k, j.At(i, k), want[i][k])
			}
		}
	}
}

func TestResidualAtFixedPoint(t *testing.T) {
	m, err := NewSingleTorrent(PaperParams, 1)
	if err != nil {
		t.Fatal(err)
	}
	x, y, _ := m.SteadyStateClosed()
	if r := Residual(m, []float64{x, y}); r > 1e-12 {
		t.Fatalf("residual at analytic fixed point = %v", r)
	}
}

func TestSteadyStateHybridMatchesRelaxation(t *testing.T) {
	m, err := NewSingleTorrent(PaperParams, 2)
	if err != nil {
		t.Fatal(err)
	}
	hybrid, err := SteadyStateHybrid(m, SteadyStateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	relaxed, err := SteadyState(m, SteadyStateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range hybrid {
		if math.Abs(hybrid[i]-relaxed[i]) > 1e-6*(1+relaxed[i]) {
			t.Fatalf("component %d: hybrid %v vs relaxed %v", i, hybrid[i], relaxed[i])
		}
	}
	if r := Residual(m, hybrid); r > 1e-10 {
		t.Fatalf("hybrid residual %v", r)
	}
}

func TestSteadyStateHybridMultiClass(t *testing.T) {
	m, err := NewMultiClass(0.5, []Class{
		{Name: "a", Mu: 0.04, C: 4, Lambda: 1, Gamma: 0.05},
		{Name: "b", Mu: 0.01, C: 1, Lambda: 2, Gamma: 0.05},
	})
	if err != nil {
		t.Fatal(err)
	}
	ss, err := SteadyStateHybrid(m, SteadyStateOptions{MaxTime: 2e6})
	if err != nil {
		t.Fatal(err)
	}
	n := len(m.Classes)
	for i, c := range m.Classes {
		if got := c.Gamma * ss[n+i]; math.Abs(got-c.Lambda) > 1e-6+1e-6*c.Lambda {
			t.Fatalf("class %d flow: γy = %v, λ = %v", i, got, c.Lambda)
		}
	}
}

// badDim violates the Model contract to exercise the error paths.
type badDim struct{ SingleTorrent }

func (b *badDim) InitialState() []float64 { return []float64{1} }

func TestSteadyStateRejectsDimensionMismatch(t *testing.T) {
	st, err := NewSingleTorrent(PaperParams, 1)
	if err != nil {
		t.Fatal(err)
	}
	bad := &badDim{*st}
	if _, err := SteadyState(bad, SteadyStateOptions{}); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
	if _, err := SteadyStateHybrid(bad, SteadyStateOptions{}); err == nil {
		t.Fatal("hybrid dimension mismatch accepted")
	}
}

func TestRHSClampsNegativeInputs(t *testing.T) {
	// The RHS must treat slightly-negative populations (integrator dust)
	// as zero rather than producing nonsense rates.
	m, err := NewSingleTorrent(PaperParams, 1)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]float64, 2)
	m.RHS(0, []float64{-1e-9, -1e-9}, dst)
	if dst[0] != m.Lambda {
		t.Fatalf("dx at empty swarm = %v, want λ = %v", dst[0], m.Lambda)
	}
	if dst[1] != 0 {
		t.Fatalf("dy at empty swarm = %v, want 0", dst[1])
	}
}
