package fluid

import (
	"math"
	"testing"
)

func paperClass(name string, lambda float64) Class {
	return Class{Name: name, Mu: 0.02, C: 2, Lambda: lambda, Gamma: 0.05}
}

func TestMultiClassValidation(t *testing.T) {
	if _, err := NewMultiClass(0.5, nil); err == nil {
		t.Fatal("no classes accepted")
	}
	if _, err := NewMultiClass(0, []Class{paperClass("a", 1)}); err == nil {
		t.Fatal("η=0 accepted")
	}
	bad := paperClass("a", 1)
	bad.Mu = 0
	if _, err := NewMultiClass(0.5, []Class{bad}); err == nil {
		t.Fatal("μ=0 class accepted")
	}
}

func TestMultiClassHomogeneousMatchesSingleTorrent(t *testing.T) {
	// One class with the paper parameters must reproduce T = 60.
	m, err := NewMultiClass(0.5, []Class{paperClass("all", 1)})
	if err != nil {
		t.Fatal(err)
	}
	ss, err := SteadyState(m, SteadyStateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	dl, online, err := m.ClassTimes(ss)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dl[0]-60) > 0.01 || math.Abs(online[0]-80) > 0.01 {
		t.Fatalf("homogeneous times %v/%v, want 60/80", dl[0], online[0])
	}
}

func TestMultiClassSplitIsNeutral(t *testing.T) {
	// Splitting one class into two identical halves must not change the
	// per-class times.
	whole, _ := NewMultiClass(0.5, []Class{paperClass("all", 2)})
	split, _ := NewMultiClass(0.5, []Class{paperClass("a", 1), paperClass("b", 1)})
	ssW, err := SteadyState(whole, SteadyStateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ssS, err := SteadyState(split, SteadyStateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	dlW, _, _ := whole.ClassTimes(ssW)
	dlS, _, _ := split.ClassTimes(ssS)
	for i := range dlS {
		if math.Abs(dlS[i]-dlW[0]) > 1e-4*dlW[0] {
			t.Fatalf("split class %d time %v != whole %v", i, dlS[i], dlW[0])
		}
	}
}

func TestMultiClassFlowConservation(t *testing.T) {
	m, _ := NewMultiClass(0.5, []Class{
		{Name: "broadband", Mu: 0.04, C: 4, Lambda: 1, Gamma: 0.05},
		{Name: "dsl", Mu: 0.01, C: 1, Lambda: 2, Gamma: 0.05},
	})
	ss, err := SteadyState(m, SteadyStateOptions{MaxTime: 2e6})
	if err != nil {
		t.Fatal(err)
	}
	// γ_i·y_i = λ_i per class at the fixed point.
	n := len(m.Classes)
	for i, c := range m.Classes {
		if got := c.Gamma * ss[n+i]; math.Abs(got-c.Lambda) > 1e-6+1e-4*c.Lambda {
			t.Fatalf("class %d flow: γy = %v, λ = %v", i, got, c.Lambda)
		}
	}
}

func TestMultiClassFasterUploadersDownloadFaster(t *testing.T) {
	// Higher μ means more TFT service received (assumption 1): the
	// broadband class must finish sooner even with equal download caps.
	m, _ := NewMultiClass(0.5, []Class{
		{Name: "broadband", Mu: 0.04, C: 2, Lambda: 1, Gamma: 0.05},
		{Name: "dsl", Mu: 0.01, C: 2, Lambda: 1, Gamma: 0.05},
	})
	ss, err := SteadyState(m, SteadyStateOptions{MaxTime: 2e6})
	if err != nil {
		t.Fatal(err)
	}
	dl, _, _ := m.ClassTimes(ss)
	if dl[0] >= dl[1] {
		t.Fatalf("broadband %v not faster than dsl %v", dl[0], dl[1])
	}
}

func TestMultiClassDownloadCapacityBiasesSeedService(t *testing.T) {
	// Equal uploads but asymmetric download capacity: the high-c class
	// receives a larger seed share (assumption 2) and finishes faster.
	m, _ := NewMultiClass(0.5, []Class{
		{Name: "fat-pipe", Mu: 0.02, C: 8, Lambda: 1, Gamma: 0.05},
		{Name: "thin-pipe", Mu: 0.02, C: 1, Lambda: 1, Gamma: 0.05},
	})
	ss, err := SteadyState(m, SteadyStateOptions{MaxTime: 2e6})
	if err != nil {
		t.Fatal(err)
	}
	dl, _, _ := m.ClassTimes(ss)
	if dl[0] >= dl[1] {
		t.Fatalf("fat-pipe %v not faster than thin-pipe %v", dl[0], dl[1])
	}
}

func TestMultiClassStability(t *testing.T) {
	m, _ := NewMultiClass(0.5, []Class{
		{Name: "a", Mu: 0.04, C: 4, Lambda: 1, Gamma: 0.05},
		{Name: "b", Mu: 0.01, C: 1, Lambda: 2, Gamma: 0.08},
	})
	ss, err := SteadyState(m, SteadyStateOptions{MaxTime: 2e6})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Stability(m, ss)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Stable {
		t.Fatalf("multi-class fixed point unstable: %v", rep.Abscissa)
	}
}

func TestMultiClassClassTimesBadState(t *testing.T) {
	m, _ := NewMultiClass(0.5, []Class{paperClass("a", 1)})
	if _, _, err := m.ClassTimes([]float64{1}); err == nil {
		t.Fatal("bad dimension accepted")
	}
}
