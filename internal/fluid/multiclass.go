package fluid

import (
	"errors"
	"fmt"
)

// Class describes one bandwidth class C_i(μ_i, c_i) of Section 2's
// heterogeneous-peer framework: upload bandwidth Mu, download bandwidth C,
// arrival rate Lambda and seed departure rate Gamma.
type Class struct {
	// Name labels the class in reports ("broadband", "dsl", ...).
	Name string
	// Mu is the upload bandwidth μ_i.
	Mu float64
	// C is the download bandwidth c_i (used only to split the seeds'
	// altruistic service, per assumption 2).
	C float64
	// Lambda is the class arrival rate λ_i.
	Lambda float64
	// Gamma is the class seed departure rate γ_i.
	Gamma float64
}

// Validate checks one class.
func (c Class) Validate() error {
	if c.Mu <= 0 || c.C <= 0 || c.Lambda <= 0 || c.Gamma <= 0 {
		return fmt.Errorf("fluid: class %q has non-positive parameter (μ=%v c=%v λ=%v γ=%v)",
			c.Name, c.Mu, c.C, c.Lambda, c.Gamma)
	}
	return nil
}

// MultiClass is the heterogeneous single-torrent fluid model built on the
// two assumptions of Section 2:
//
//  1. downloaders of class i receive tit-for-tat service η·μ_i·x_i
//     (proportional to their own upload capacity), and
//  2. the seeds' aggregate service Σ_l μ_l·y_l is split across classes
//     proportionally to download capacity: x_i·c_i / Σ_l x_l·c_l.
//
// Dynamics (state [x_1..x_S, y_1..y_S]):
//
//	dx_i/dt = λ_i − η·μ_i·x_i − (x_i·c_i/Σx_l·c_l)·Σμ_l·y_l
//	dy_i/dt = η·μ_i·x_i + (x_i·c_i/Σx_l·c_l)·Σμ_l·y_l − γ_i·y_i
//
// The paper introduces this framework and then specializes to homogeneous
// peers; the general model is implemented here as a substrate (and feeds
// the heterogeneous-swarm example).
type MultiClass struct {
	// Eta is the shared downloader efficiency η.
	Eta     float64
	Classes []Class
}

// NewMultiClass validates and returns the model.
func NewMultiClass(eta float64, classes []Class) (*MultiClass, error) {
	if eta <= 0 || eta > 1 {
		return nil, fmt.Errorf("fluid: η = %v outside (0,1]", eta)
	}
	if len(classes) == 0 {
		return nil, errors.New("fluid: no classes")
	}
	for _, c := range classes {
		if err := c.Validate(); err != nil {
			return nil, err
		}
	}
	return &MultiClass{Eta: eta, Classes: classes}, nil
}

// Dim implements Model.
func (m *MultiClass) Dim() int { return 2 * len(m.Classes) }

// RHS implements Model.
func (m *MultiClass) RHS(_ float64, s, dst []float64) {
	n := len(m.Classes)
	shareDen, seedService := 0.0, 0.0
	for i, c := range m.Classes {
		x := s[i]
		if x < 0 {
			x = 0
		}
		y := s[n+i]
		if y < 0 {
			y = 0
		}
		shareDen += x * c.C
		seedService += c.Mu * y
	}
	for i, c := range m.Classes {
		x := s[i]
		if x < 0 {
			x = 0
		}
		y := s[n+i]
		if y < 0 {
			y = 0
		}
		served := m.Eta * c.Mu * x
		if shareDen > 0 {
			served += x * c.C / shareDen * seedService
		}
		dst[i] = c.Lambda - served
		dst[n+i] = served - c.Gamma*y
	}
}

// InitialState implements Model.
func (m *MultiClass) InitialState() []float64 {
	n := len(m.Classes)
	s := make([]float64, 2*n)
	for i, c := range m.Classes {
		s[i] = c.Lambda*10 + 1e-6
		s[n+i] = c.Lambda/c.Gamma*0.5 + 1e-6
	}
	return s
}

var _ Model = (*MultiClass)(nil)

// ClassTimes converts a steady state into per-class download and online
// times via Little's law.
func (m *MultiClass) ClassTimes(ss []float64) (download, online []float64, err error) {
	if len(ss) != m.Dim() {
		return nil, nil, errors.New("fluid: state dimension mismatch")
	}
	n := len(m.Classes)
	download = make([]float64, n)
	online = make([]float64, n)
	for i, c := range m.Classes {
		download[i] = ss[i] / c.Lambda
		online[i] = download[i] + 1/c.Gamma
	}
	return download, online, nil
}
