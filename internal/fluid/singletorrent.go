package fluid

import (
	"errors"
	"fmt"
	"math"
)

// SingleTorrent is the Qiu–Srikant single-file single-torrent fluid model
// (SIGCOMM 2004, Section 2 of the paper):
//
//	dx/dt = λ − θ·x − min(c·x, μ(η·x + y))
//	dy/dt = min(c·x, μ(η·x + y)) − γ·y
//
// with x downloaders and y seeds. The paper's Eq. (3) is the special case
// θ = 0, c = ∞ (download bandwidth never binds); that case has the closed
// forms implemented by DownloadTime and SteadyStateClosed.
type SingleTorrent struct {
	Params
	// Lambda is the peer arrival rate λ.
	Lambda float64
	// C is the per-peer download bandwidth c; 0 or +Inf means
	// unconstrained (the paper's assumption).
	C float64
	// Theta is the downloader abort rate θ; 0 in the paper.
	Theta float64
}

// NewSingleTorrent returns the paper's Eq. (3) instance (θ = 0, c
// unconstrained) for the given parameters.
func NewSingleTorrent(p Params, lambda float64) (*SingleTorrent, error) {
	m := &SingleTorrent{Params: p, Lambda: lambda}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// Validate extends Params.Validate with arrival-rate checks.
func (m *SingleTorrent) Validate() error {
	if err := m.Params.Validate(); err != nil {
		return err
	}
	if m.Lambda <= 0 {
		return fmt.Errorf("fluid: λ = %v must be positive", m.Lambda)
	}
	if m.C < 0 {
		return fmt.Errorf("fluid: c = %v must be non-negative", m.C)
	}
	if m.Theta < 0 {
		return fmt.Errorf("fluid: θ = %v must be non-negative", m.Theta)
	}
	return nil
}

// Dim implements Model.
func (m *SingleTorrent) Dim() int { return 2 }

// downloadCapacity returns the effective service rate min(c·x, μ(ηx+y)).
func (m *SingleTorrent) downloadCapacity(x, y float64) float64 {
	up := m.Mu * (m.Eta*x + y)
	if m.C > 0 && !math.IsInf(m.C, 1) {
		if dn := m.C * x; dn < up {
			return dn
		}
	}
	return up
}

// RHS implements Model.
func (m *SingleTorrent) RHS(_ float64, s, dst []float64) {
	x, y := s[0], s[1]
	if x < 0 {
		x = 0
	}
	if y < 0 {
		y = 0
	}
	served := m.downloadCapacity(x, y)
	dst[0] = m.Lambda - m.Theta*x - served
	dst[1] = served - m.Gamma*y
}

// InitialState implements Model.
func (m *SingleTorrent) InitialState() []float64 {
	return []float64{m.Lambda, m.Lambda / m.Gamma * 0.1}
}

// SteadyStateNumeric relaxes the model to its fixed point for the general
// case (θ > 0 or a finite download bandwidth c) where no closed form
// exists. The RHS is homogeneous of degree 1 in (λ, x, y), so the
// per-peer times x/λ and (x+y)/λ are λ-invariant; callers that only need
// times can solve at λ = 1 for the best numerical conditioning.
func (m *SingleTorrent) SteadyStateNumeric(opt SteadyStateOptions) (x, y float64, err error) {
	if err := m.Validate(); err != nil {
		return 0, 0, err
	}
	ss, err := SteadyStateHybrid(m, opt)
	if err != nil {
		return 0, 0, err
	}
	return ss[0], ss[1], nil
}

// ErrNotUploadConstrained is returned by the closed forms when γ <= μ, where
// the paper's expressions turn negative (seeds then accumulate and the
// download time is governed by the seed residence time instead).
var ErrNotUploadConstrained = errors.New("fluid: closed form requires γ > μ (upload-constrained regime)")

// SteadyStateClosed returns the analytic fixed point (x*, y*) of Eq. (3)
// for θ = 0, c unconstrained.
func (m *SingleTorrent) SteadyStateClosed() (x, y float64, err error) {
	if !m.UploadConstrained() {
		return 0, 0, ErrNotUploadConstrained
	}
	y = m.Lambda / m.Gamma
	x = m.Lambda * (m.Gamma - m.Mu) / (m.Mu * m.Eta * m.Gamma)
	return x, y, nil
}

// DownloadTime returns the paper's Eq. (4) average download time
// T = (γ−μ)/(γμη) (Little's law on the downloader population).
func (m *SingleTorrent) DownloadTime() (float64, error) {
	if !m.UploadConstrained() {
		return 0, ErrNotUploadConstrained
	}
	return (m.Gamma - m.Mu) / (m.Gamma * m.Mu * m.Eta), nil
}

// OnlineTime returns the mean downloader residence plus the mean seeding
// time 1/γ.
func (m *SingleTorrent) OnlineTime() (float64, error) {
	t, err := m.DownloadTime()
	if err != nil {
		return 0, err
	}
	return t + 1/m.Gamma, nil
}
