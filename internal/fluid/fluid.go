// Package fluid provides the shared fluid-model framework used by every
// downloading-scheme model in this repository (Section 2 of the paper): a
// Model interface over autonomous ODE systems, steady-state solvers,
// finite-difference Jacobians with eigenvalue-based stability reports, and
// the Qiu–Srikant single-torrent model with its closed forms.
//
// Conventions: populations are continuous ("fluid") peer counts; time is in
// the same unit as 1/μ (the paper uses file-per-time-unit bandwidths, e.g.
// μ = 0.02 means a peer uploads one full file per 50 time units).
package fluid

import (
	"errors"
	"fmt"
	"math"

	"mfdl/internal/numeric/linalg"
	"mfdl/internal/numeric/ode"
)

// Params holds the per-peer rates shared by all models (Table 1 of the
// paper, plus the seed-departure rate).
type Params struct {
	// Mu is the peer upload bandwidth μ (files per time unit).
	Mu float64 `json:"mu"`
	// Eta is the downloader sharing efficiency η ∈ (0, 1]; the paper uses
	// 0.5 (a downloader uploads at half the effectiveness of a seed).
	Eta float64 `json:"eta"`
	// Gamma is the seed departure rate γ.
	Gamma float64 `json:"gamma"`
}

// PaperParams are the parameter values used in every figure of the paper.
var PaperParams = Params{Mu: 0.02, Eta: 0.5, Gamma: 0.05}

// Validate checks rate positivity.
func (p Params) Validate() error {
	if p.Mu <= 0 {
		return fmt.Errorf("fluid: μ = %v must be positive", p.Mu)
	}
	if p.Eta <= 0 || p.Eta > 1 {
		return fmt.Errorf("fluid: η = %v outside (0,1]", p.Eta)
	}
	if p.Gamma <= 0 {
		return fmt.Errorf("fluid: γ = %v must be positive", p.Gamma)
	}
	return nil
}

// UploadConstrained reports whether the system is in the regime the paper's
// closed forms require: seeds leave fast enough that download time is
// governed by upload capacity (γ > μ).
func (p Params) UploadConstrained() bool { return p.Gamma > p.Mu }

// Model is an autonomous fluid model.
type Model interface {
	// Dim returns the state dimension.
	Dim() int
	// RHS evaluates dx/dt into dst.
	RHS(t float64, x, dst []float64)
	// InitialState returns a fresh, strictly positive starting state for
	// relaxation (small seed populations avoid 0/0 in share terms).
	InitialState() []float64
}

// SteadyStateOptions re-exports the ODE relaxation knobs.
type SteadyStateOptions = ode.SteadyStateOptions

// SteadyState relaxes the model to its fixed point with RK4 and returns the
// steady-state vector.
func SteadyState(m Model, opt SteadyStateOptions) ([]float64, error) {
	x := m.InitialState()
	if len(x) != m.Dim() {
		return nil, errors.New("fluid: InitialState dimension mismatch")
	}
	stepper := ode.NewRK4(m.Dim())
	if _, err := ode.SteadyState(stepper, m.RHS, x, opt); err != nil {
		return nil, err
	}
	for i, v := range x {
		// Relaxation can leave tiny negative dust in components whose
		// fixed point is 0; clamp it, but reject genuinely negative states.
		if v < 0 {
			if v > -1e-6 {
				x[i] = 0
				continue
			}
			return nil, fmt.Errorf("fluid: negative steady-state component %d = %v", i, v)
		}
	}
	return x, nil
}

// SteadyStateHybrid finds the fixed point by a short RK4 relaxation into
// the basin of attraction followed by damped-Newton polishing — typically
// an order of magnitude faster than relaxing all the way down for the
// larger models (CMFSD's 65 states, the mixed-population variants). It
// falls back to full relaxation when Newton stalls.
func SteadyStateHybrid(m Model, opt SteadyStateOptions) ([]float64, error) {
	coarse := opt
	if coarse.Tol <= 0 || coarse.Tol < 1e-4 {
		coarse.Tol = 1e-4
	}
	x := m.InitialState()
	if len(x) != m.Dim() {
		return nil, errors.New("fluid: InitialState dimension mismatch")
	}
	stepper := ode.NewRK4(m.Dim())
	if _, err := ode.SteadyState(stepper, m.RHS, x, coarse); err != nil {
		return nil, err
	}
	tol := opt.Tol
	if tol <= 0 {
		tol = 1e-12
	}
	polished := append([]float64(nil), x...)
	if err := ode.NewtonSteadyState(m.RHS, polished, ode.NewtonOptions{Tol: tol}); err == nil {
		ok := true
		for i, v := range polished {
			if v < 0 {
				if v > -1e-6 {
					polished[i] = 0
					continue
				}
				ok = false
				break
			}
		}
		if ok {
			return polished, nil
		}
	}
	// Newton left the physical region or stalled: finish by relaxation.
	fine := opt
	if _, err := ode.SteadyState(stepper, m.RHS, x, fine); err != nil {
		return nil, err
	}
	for i, v := range x {
		if v < 0 {
			if v > -1e-6 {
				x[i] = 0
				continue
			}
			return nil, fmt.Errorf("fluid: negative steady-state component %d = %v", i, v)
		}
	}
	return x, nil
}

// Jacobian computes the finite-difference Jacobian ∂f/∂x of the model at
// state x using central differences.
func Jacobian(m Model, x []float64) *linalg.Matrix {
	n := m.Dim()
	j := linalg.NewMatrix(n, n)
	fPlus := make([]float64, n)
	fMinus := make([]float64, n)
	xp := append([]float64(nil), x...)
	for col := 0; col < n; col++ {
		h := 1e-6 * math.Max(1, math.Abs(x[col]))
		orig := xp[col]
		xp[col] = orig + h
		m.RHS(0, xp, fPlus)
		xp[col] = orig - h
		m.RHS(0, xp, fMinus)
		xp[col] = orig
		for row := 0; row < n; row++ {
			j.Set(row, col, (fPlus[row]-fMinus[row])/(2*h))
		}
	}
	return j
}

// StabilityReport describes the linearization of a model at a fixed point.
type StabilityReport struct {
	// Eigenvalues of the Jacobian, sorted by descending real part.
	Eigenvalues []linalg.Eigenvalue
	// Abscissa is the largest real part; negative means asymptotically
	// stable.
	Abscissa float64
	// Stable is Abscissa < 0.
	Stable bool
}

// Stability linearizes the model at state x and reports eigenvalue-based
// local stability.
func Stability(m Model, x []float64) (*StabilityReport, error) {
	j := Jacobian(m, x)
	eigs, err := linalg.Eigenvalues(j)
	if err != nil {
		return nil, err
	}
	abscissa := linalg.MaxRealPart(eigs)
	return &StabilityReport{Eigenvalues: eigs, Abscissa: abscissa, Stable: abscissa < 0}, nil
}

// Residual returns ‖f(x)‖∞ for the model at x — a cheap fixed-point check.
func Residual(m Model, x []float64) float64 {
	dst := make([]float64, m.Dim())
	m.RHS(0, x, dst)
	return ode.MaxNorm(dst)
}
