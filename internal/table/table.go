// Package table renders experiment results as aligned ASCII tables, CSV, or
// TSV, so every figure and table of the paper can be regenerated as a
// machine-diffable artifact.
package table

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-ordered table with a title.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// New returns an empty table with the given title and column headers.
func New(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; the cell count must match the column count.
func (t *Table) AddRow(cells ...string) error {
	if len(cells) != len(t.Columns) {
		return fmt.Errorf("table: row has %d cells, want %d", len(cells), len(t.Columns))
	}
	t.Rows = append(t.Rows, cells)
	return nil
}

// MustAddRow is AddRow that panics on arity mismatch (programmer error).
func (t *Table) MustAddRow(cells ...string) {
	if err := t.AddRow(cells...); err != nil {
		panic(err)
	}
}

// AddFloats appends a row of formatted floats after a leading label.
func (t *Table) AddFloats(label string, format string, vals ...float64) error {
	cells := make([]string, 0, len(vals)+1)
	cells = append(cells, label)
	for _, v := range vals {
		cells = append(cells, fmt.Sprintf(format, v))
	}
	return t.AddRow(cells...)
}

// Fmt formats one float with the table's default precision.
func Fmt(v float64) string { return fmt.Sprintf("%.4g", v) }

// WriteASCII renders the table with aligned columns.
func (t *Table) WriteASCII(w io.Writer) error {
	if len(t.Columns) == 0 {
		return errors.New("table: no columns")
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "# %s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	total := len(widths) - 1
	for _, w := range widths {
		total += w + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the ASCII form.
func (t *Table) String() string {
	var b strings.Builder
	if err := t.WriteASCII(&b); err != nil {
		return fmt.Sprintf("table error: %v", err)
	}
	return b.String()
}

// WriteCSV renders the table as RFC-4180 CSV (header row first; the title
// is emitted as a comment line).
func (t *Table) WriteCSV(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "# %s\n", t.Title); err != nil {
			return err
		}
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTSV renders tab-separated values without alignment or comments.
func (t *Table) WriteTSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, strings.Join(t.Columns, "\t")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, strings.Join(row, "\t")); err != nil {
			return err
		}
	}
	return nil
}

// WriteMarkdown renders a GitHub-flavoured markdown table (the format
// EXPERIMENTS.md uses), with the title as a bold caption line.
func (t *Table) WriteMarkdown(w io.Writer) error {
	if len(t.Columns) == 0 {
		return errors.New("table: no columns")
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.Title)
	}
	escape := func(s string) string { return strings.ReplaceAll(s, "|", "\\|") }
	b.WriteString("|")
	for _, c := range t.Columns {
		b.WriteString(" " + escape(c) + " |")
	}
	b.WriteString("\n|")
	for range t.Columns {
		b.WriteString("---|")
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString("|")
		for _, cell := range row {
			b.WriteString(" " + escape(cell) + " |")
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Write renders in the named format: "ascii", "csv", "tsv", or "markdown".
func (t *Table) Write(w io.Writer, format string) error {
	switch format {
	case "", "ascii":
		return t.WriteASCII(w)
	case "csv":
		return t.WriteCSV(w)
	case "tsv":
		return t.WriteTSV(w)
	case "markdown", "md":
		return t.WriteMarkdown(w)
	default:
		return fmt.Errorf("table: unknown format %q", format)
	}
}
