package table

import (
	"strings"
	"testing"
)

func sample() *Table {
	tb := New("demo", "p", "MTCD", "MTSD")
	tb.MustAddRow("0.1", "81.2", "80")
	tb.MustAddRow("1.0", "98", "80")
	return tb
}

func TestAddRowArity(t *testing.T) {
	tb := New("x", "a", "b")
	if err := tb.AddRow("1"); err == nil {
		t.Fatal("short row accepted")
	}
	if err := tb.AddRow("1", "2", "3"); err == nil {
		t.Fatal("long row accepted")
	}
	if err := tb.AddRow("1", "2"); err != nil {
		t.Fatal(err)
	}
}

func TestMustAddRowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustAddRow did not panic")
		}
	}()
	New("x", "a").MustAddRow("1", "2")
}

func TestAddFloats(t *testing.T) {
	tb := New("x", "label", "v1", "v2")
	if err := tb.AddFloats("row", "%.2f", 1.234, 5.678); err != nil {
		t.Fatal(err)
	}
	if tb.Rows[0][1] != "1.23" || tb.Rows[0][2] != "5.68" {
		t.Fatalf("formatted row = %v", tb.Rows[0])
	}
	if err := tb.AddFloats("bad", "%.2f", 1.0); err == nil {
		t.Fatal("arity mismatch accepted")
	}
}

func TestASCIIOutput(t *testing.T) {
	out := sample().String()
	if !strings.Contains(out, "# demo") {
		t.Fatalf("missing title:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// title, header, rule, 2 rows
	if len(lines) != 5 {
		t.Fatalf("line count %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[1], "p ") {
		t.Fatalf("header misaligned: %q", lines[1])
	}
	if !strings.Contains(lines[3], "81.2") {
		t.Fatalf("row content missing: %q", lines[3])
	}
}

func TestASCIIEmptyColumns(t *testing.T) {
	var b strings.Builder
	if err := (&Table{}).WriteASCII(&b); err == nil {
		t.Fatal("empty table rendered")
	}
}

func TestCSVOutput(t *testing.T) {
	var b strings.Builder
	if err := sample().WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "p,MTCD,MTSD\n") {
		t.Fatalf("csv header missing:\n%s", out)
	}
	if !strings.Contains(out, "1.0,98,80\n") {
		t.Fatalf("csv row missing:\n%s", out)
	}
}

func TestTSVOutput(t *testing.T) {
	var b strings.Builder
	if err := sample().WriteTSV(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "0.1\t81.2\t80\n") {
		t.Fatalf("tsv row missing:\n%s", b.String())
	}
}

func TestMarkdownOutput(t *testing.T) {
	var b strings.Builder
	if err := sample().WriteMarkdown(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "**demo**") {
		t.Fatalf("caption missing:\n%s", out)
	}
	if !strings.Contains(out, "| p | MTCD | MTSD |") {
		t.Fatalf("header missing:\n%s", out)
	}
	if !strings.Contains(out, "|---|---|---|") {
		t.Fatalf("rule missing:\n%s", out)
	}
	if !strings.Contains(out, "| 1.0 | 98 | 80 |") {
		t.Fatalf("row missing:\n%s", out)
	}
	// Pipes in cells must be escaped.
	tb := New("", "a")
	tb.MustAddRow("x|y")
	b.Reset()
	if err := tb.WriteMarkdown(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `x\|y`) {
		t.Fatalf("pipe not escaped:\n%s", b.String())
	}
	if err := (&Table{}).WriteMarkdown(&b); err == nil {
		t.Fatal("empty table rendered")
	}
}

func TestWriteDispatch(t *testing.T) {
	var b strings.Builder
	for _, f := range []string{"", "ascii", "csv", "tsv", "markdown", "md"} {
		b.Reset()
		if err := sample().Write(&b, f); err != nil {
			t.Fatalf("format %q: %v", f, err)
		}
		if b.Len() == 0 {
			t.Fatalf("format %q produced nothing", f)
		}
	}
	if err := sample().Write(&b, "xml"); err == nil {
		t.Fatal("unknown format accepted")
	}
}

func TestFmt(t *testing.T) {
	if Fmt(80.0) != "80" {
		t.Fatalf("Fmt(80) = %q", Fmt(80.0))
	}
	if Fmt(73.94738) != "73.95" {
		t.Fatalf("Fmt = %q", Fmt(73.94738))
	}
}
