package stats

import (
	"math"
	"testing"

	"mfdl/internal/rng"
)

// ulpsApart returns how many representable float64s lie between a and b
// (0 when bit-identical). Only meaningful for finite same-sign values.
func ulpsApart(a, b float64) uint64 {
	ab, bb := math.Float64bits(a), math.Float64bits(b)
	if ab > bb {
		ab, bb = bb, ab
	}
	return bb - ab
}

// checkMergeMatchesAdd merges the summaries of the given chunks of xs and
// compares against one single-stream Add over all of xs. The count, min
// and max must match exactly; the mean to within a handful of ULPs; the
// variance to a small relative error. Chan et al.'s pairwise update and
// Welford's streaming update accumulate m2 in different orders, so
// bit-equality is not expected there; the bounds below were chosen
// empirically to hold with margin even in the worst conditioned trials
// (mean offset ~1e6 with spread ~1e-3, where both algorithms lose digits
// to cancellation).
func checkMergeMatchesAdd(t *testing.T, xs []float64, chunks [][]float64) {
	t.Helper()
	var want Summary
	want.AddAll(xs)
	var got Summary
	for _, chunk := range chunks {
		var part Summary
		part.AddAll(chunk)
		got.Merge(&part)
	}
	if got.N() != want.N() {
		t.Fatalf("N = %d, want %d", got.N(), want.N())
	}
	if got.Min() != want.Min() || got.Max() != want.Max() {
		t.Errorf("min/max = %v/%v, want %v/%v", got.Min(), got.Max(), want.Min(), want.Max())
	}
	if u := ulpsApart(got.Mean(), want.Mean()); u > 16 {
		t.Errorf("mean %v vs %v: %d ULPs apart", got.Mean(), want.Mean(), u)
	}
	if want.N() >= 2 {
		relErr := math.Abs(got.Variance()-want.Variance()) /
			math.Max(want.Variance(), 1e-300)
		if want.Variance() == 0 {
			relErr = math.Abs(got.Variance())
		}
		if relErr > 1e-6 {
			t.Errorf("variance %v vs %v: rel err %g", got.Variance(), want.Variance(), relErr)
		}
	}
}

// TestMergeMatchesSingleStream is the property test for the replica
// engine's reduction: merging per-replica summaries must agree with one
// summary fed the concatenated observations.
func TestMergeMatchesSingleStream(t *testing.T) {
	src := rng.New(2024)
	for trial := 0; trial < 200; trial++ {
		n := 1 + src.Intn(400)
		xs := make([]float64, n)
		// Mix scales and signs, including an offset far from zero — the
		// regime where naive sum-of-squares variance loses digits.
		offset := (src.Float64() - 0.5) * 1e6
		scale := math.Pow(10, float64(src.Intn(7))-3)
		for i := range xs {
			xs[i] = offset + (src.Float64()-0.5)*scale
		}
		// Random partition into 1..8 chunks, some possibly empty.
		k := 1 + src.Intn(8)
		chunks := make([][]float64, k)
		for _, x := range xs {
			c := src.Intn(k)
			chunks[c] = append(chunks[c], x)
		}
		checkMergeMatchesAdd(t, xs, chunks)
	}
}

// TestMergeEdgeCases covers the empty and single-observation summaries
// the replica engine produces at R = 1 and for metrics a replica never
// emitted.
func TestMergeEdgeCases(t *testing.T) {
	// Merging an empty summary is a no-op.
	var s, empty Summary
	s.AddAll([]float64{1, 2, 3})
	before := s
	s.Merge(&empty)
	if s != before {
		t.Errorf("merging an empty summary changed %v to %v", before, s)
	}
	// Merging into an empty summary copies bit-for-bit.
	var dst Summary
	dst.Merge(&before)
	if dst != before {
		t.Errorf("merge into empty: %v, want %v", dst, before)
	}
	// Two empties stay empty.
	var a, b Summary
	a.Merge(&b)
	if a.N() != 0 || a.Mean() != 0 || a.Variance() != 0 {
		t.Errorf("empty+empty is not empty: %v", a)
	}
	// A chain of single-observation summaries must agree with Add exactly
	// on the mean when the values coincide (the R=1 byte-compat lever).
	var one Summary
	one.Add(3.141592653589793)
	var merged Summary
	merged.Merge(&one)
	if merged.Mean() != 3.141592653589793 || merged.N() != 1 {
		t.Errorf("single-value merge: mean %v n %d", merged.Mean(), merged.N())
	}
	// Singles vs stream, exact partition check.
	xs := []float64{1e9, -1e9, 2.5, 1e-9, 7}
	chunks := make([][]float64, len(xs))
	for i, x := range xs {
		chunks[i] = []float64{x}
	}
	checkMergeMatchesAdd(t, xs, chunks)
}
